// Parameterized sweep of the staged-16 psum storage policy across psum
// formats and layer geometries: the staged datapath must match its
// pass-order reference bit for bit, and must agree with the wide policy
// whenever the format has headroom.
#include <gtest/gtest.h>

#include "chain/accelerator.hpp"
#include "common/rng.hpp"
#include "nn/golden.hpp"

namespace chainnn::chain {
namespace {

struct StagedCase {
  int psum_frac;
  std::int64_t c, m, hw, k, stride, pad, groups;
  bool expect_equal_to_wide;  // headroom regime
};

class StagedSweep : public ::testing::TestWithParam<StagedCase> {};

TEST_P(StagedSweep, MatchesStagedReference) {
  const StagedCase& sc = GetParam();
  nn::ConvLayerParams p;
  p.name = "staged";
  p.in_channels = sc.c;
  p.out_channels = sc.m;
  p.in_height = p.in_width = sc.hw;
  p.kernel = sc.k;
  p.stride = sc.stride;
  p.pad = sc.pad;
  p.groups = sc.groups;
  p.validate();

  AcceleratorConfig cfg;
  cfg.array.num_pes = 128;
  cfg.array.kmem_words_per_pe = 64;
  cfg.psum_storage = PsumStorage::kStaged16;
  cfg.psum_fmt = fixed::FixedFormat{sc.psum_frac};
  cfg.ofmap_fmt = fixed::FixedFormat{sc.psum_frac};

  Rng rng(static_cast<std::uint64_t>(sc.psum_frac) * 31 + sc.k);
  Tensor<std::int16_t> x(Shape{1, p.in_channels, p.in_height, p.in_width});
  Tensor<std::int16_t> w(
      Shape{p.out_channels, p.channels_per_group(), p.kernel, p.kernel});
  x.fill_random(rng, -24, 24);
  w.fill_random(rng, -6, 6);

  ChainAccelerator acc(cfg);
  const LayerRunResult res = acc.run_layer(p, x, w);

  // 1) Bit-exact vs the staged pass-order reference.
  const Tensor<std::int64_t> ref = staged_reference(cfg, res.plan, x, w);
  ASSERT_EQ(res.accumulators, ref) << p.to_string();

  // 2) Headroom regime: matches the wide policy after requantization.
  if (sc.expect_equal_to_wide) {
    AcceleratorConfig wide = cfg;
    wide.psum_storage = PsumStorage::kWide;
    ChainAccelerator acc_wide(wide);
    const LayerRunResult res_wide = acc_wide.run_layer(p, x, w);
    EXPECT_EQ(res.ofmaps, res_wide.ofmaps) << p.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, StagedSweep,
    ::testing::Values(
        // Plenty of headroom: small fractions, small data.
        StagedCase{2, 2, 2, 8, 3, 1, 0, 1, true},
        StagedCase{4, 2, 3, 9, 3, 1, 1, 1, true},
        StagedCase{4, 4, 4, 8, 3, 1, 1, 2, true},
        StagedCase{3, 1, 2, 13, 5, 2, 2, 1, true},
        StagedCase{2, 1, 1, 15, 11, 4, 0, 1, true},
        // Tight formats where staging may clip (reference must still
        // match exactly; wide equality not required).
        StagedCase{10, 3, 2, 8, 3, 1, 0, 1, false},
        StagedCase{12, 2, 2, 10, 5, 1, 2, 1, false},
        StagedCase{14, 2, 2, 7, 3, 1, 1, 1, false}));

TEST(StagedPolicy, ClippingIsDeterministicAndSaturating) {
  // Force clipping: large operands, maximal psum fraction.
  nn::ConvLayerParams p;
  p.name = "clip";
  p.in_channels = 4;
  p.out_channels = 1;
  p.in_height = p.in_width = 6;
  p.kernel = 3;
  p.validate();

  AcceleratorConfig cfg;
  cfg.array.num_pes = 36;
  cfg.array.kmem_words_per_pe = 16;
  cfg.psum_storage = PsumStorage::kStaged16;
  cfg.psum_fmt = fixed::FixedFormat{15};

  Tensor<std::int16_t> x(Shape{1, 4, 6, 6}, std::int16_t{3000});
  Tensor<std::int16_t> w(Shape{1, 4, 3, 3}, std::int16_t{3000});
  ChainAccelerator acc(cfg);
  const LayerRunResult res = acc.run_layer(p, x, w);
  // Every partial saturates at +32767 (positive operands).
  for (std::int64_t i = 0; i < res.accumulators.num_elements(); ++i)
    EXPECT_EQ(res.accumulators.at_flat(i), 32767);
  // And matches the reference under identical staging.
  EXPECT_EQ(res.accumulators, staged_reference(cfg, res.plan, x, w));
}

}  // namespace
}  // namespace chainnn::chain
