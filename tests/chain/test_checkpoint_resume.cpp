// NetworkRunner checkpoint/resume: a run preempted at any inter-layer
// boundary and resumed from its RunCheckpoint must be bit-identical to
// an uninterrupted run — ofmaps, accumulators, cycles, traffic and the
// default weight stream all continue exactly where they stopped. Edge
// cases pinned here: checkpoint at layer 0 (nothing executed yet),
// checkpoint at the last boundary (one layer left), a chain of
// checkpoints at every boundary, resume on a *different* ArrayShape
// (re-plans, value-identical ofmaps), and cancel-beats-preempt ordering.
#include "chain/network_runner.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "serve/inference_server.hpp"  // network_runs_identical

namespace chainnn::chain {
namespace {

// Three conv layers so there are two interior boundaries besides the
// layer-0 one; pooling after layer 1 exercises resolved geometry across
// a resume.
nn::NetworkModel three_layer_net() {
  nn::NetworkModel net;
  net.name = "ckpt3";
  nn::ConvLayerParams l1;
  l1.name = "c1";
  l1.in_channels = 2;
  l1.out_channels = 4;
  l1.in_height = l1.in_width = 12;
  l1.kernel = 3;
  l1.pad = 1;
  nn::ConvLayerParams l2;
  l2.name = "c2";
  l2.in_channels = 4;
  l2.out_channels = 4;
  l2.in_height = l2.in_width = 6;
  l2.kernel = 3;
  l2.pad = 1;
  nn::ConvLayerParams l3;
  l3.name = "c3";
  l3.in_channels = 4;
  l3.out_channels = 2;
  l3.in_height = l3.in_width = 6;
  l3.kernel = 3;
  l3.pad = 1;
  net.conv_layers = {l1, l2, l3};
  return net;
}

AcceleratorConfig small_cfg() {
  AcceleratorConfig cfg;
  cfg.array.num_pes = 64;
  cfg.array.kmem_words_per_pe = 64;
  return cfg;
}

NetworkRunOptions base_options() {
  NetworkRunOptions opts;
  opts.inter_layer = {InterLayerOp{true, true, nn::PoolParams{2, 2, 0}},
                      InterLayerOp{true, false, {}},
                      InterLayerOp{true, false, {}}};
  return opts;
}

Tensor<std::int16_t> test_input() {
  Tensor<std::int16_t> input(Shape{2, 2, 12, 12});
  Rng rng(11);
  input.fill_random(rng, -64, 64);
  return input;
}

// Runs to completion with a preemption forced at conv-layer boundary
// `boundary`, then resumes on `resume_acc` (may be the same accelerator)
// and returns the stitched result plus the captured checkpoint.
struct PreemptedRun {
  std::shared_ptr<RunCheckpoint> checkpoint;
  NetworkRunResult result;
};

PreemptedRun run_with_preemption_at(ChainAccelerator& acc,
                                    ChainAccelerator& resume_acc,
                                    const nn::NetworkModel& net,
                                    const Tensor<std::int16_t>& input,
                                    std::int64_t boundary) {
  const auto energy = energy::EnergyModel::paper_calibrated();
  NetworkRunner runner(acc, energy);
  NetworkRunOptions opts = base_options();
  std::int64_t polls = 0;
  opts.preempt_check = [&polls, boundary] { return polls++ == boundary; };

  PreemptedRun out;
  try {
    (void)runner.run(net, input, opts);
    ADD_FAILURE() << "run was not preempted";
  } catch (const RunPreempted& preempted) {
    out.checkpoint = preempted.checkpoint();
  }
  EXPECT_EQ(out.checkpoint->next_layer, boundary);
  EXPECT_EQ(out.checkpoint->layers.size(),
            static_cast<std::size_t>(boundary));

  NetworkRunner resume_runner(resume_acc, energy);
  NetworkRunOptions resume_opts = base_options();
  resume_opts.resume = out.checkpoint;
  out.result = resume_runner.run(net, input, resume_opts);
  return out;
}

TEST(CheckpointResume, EveryBoundaryIsBitIdenticalToUninterrupted) {
  const nn::NetworkModel net = three_layer_net();
  const Tensor<std::int16_t> input = test_input();
  const auto energy = energy::EnergyModel::paper_calibrated();

  ChainAccelerator plain_acc(small_cfg());
  NetworkRunner plain(plain_acc, energy);
  const NetworkRunResult uninterrupted =
      plain.run(net, input, base_options());
  ASSERT_EQ(uninterrupted.layers.size(), 3u);

  // Boundary 0 = before any layer (checkpoint carries the raw input);
  // boundary 2 = before the last layer (one layer left to resume).
  for (std::int64_t boundary = 0; boundary < 3; ++boundary) {
    SCOPED_TRACE("boundary " + std::to_string(boundary));
    ChainAccelerator acc(small_cfg());
    const PreemptedRun preempted =
        run_with_preemption_at(acc, acc, net, input, boundary);
    if (boundary == 0) {
      EXPECT_TRUE(preempted.checkpoint->layers.empty());
      EXPECT_TRUE(preempted.checkpoint->activations == input);
    }
    std::string why;
    EXPECT_TRUE(serve::network_runs_identical(uninterrupted,
                                              preempted.result, &why))
        << why;
    EXPECT_TRUE(preempted.result.all_verified());
  }
}

TEST(CheckpointResume, ChainOfCheckpointsAtEveryBoundary) {
  const nn::NetworkModel net = three_layer_net();
  const Tensor<std::int16_t> input = test_input();
  const auto energy = energy::EnergyModel::paper_calibrated();

  ChainAccelerator plain_acc(small_cfg());
  NetworkRunner plain(plain_acc, energy);
  const NetworkRunResult uninterrupted =
      plain.run(net, input, base_options());

  // Preempt at every boundary in turn: each resume immediately yields a
  // fresh checkpoint one layer further, and the final resume completes.
  ChainAccelerator acc(small_cfg());
  NetworkRunner runner(acc, energy);
  std::shared_ptr<RunCheckpoint> checkpoint;
  for (std::int64_t boundary = 1; boundary < 3; ++boundary) {
    NetworkRunOptions opts = base_options();
    opts.resume = checkpoint;
    std::int64_t polls = checkpoint ? checkpoint->next_layer : 0;
    opts.preempt_check = [&polls, boundary] {
      return polls++ == boundary;
    };
    try {
      (void)runner.run(net, input, opts);
      FAIL() << "expected preemption at boundary " << boundary;
    } catch (const RunPreempted& preempted) {
      checkpoint = preempted.checkpoint();
    }
    EXPECT_EQ(checkpoint->next_layer, boundary);
  }
  NetworkRunOptions final_opts = base_options();
  final_opts.resume = checkpoint;
  const NetworkRunResult resumed = runner.run(net, input, final_opts);

  std::string why;
  EXPECT_TRUE(serve::network_runs_identical(uninterrupted, resumed, &why))
      << why;
}

TEST(CheckpointResume, ResumeOnDifferentArrayReplansValueIdentical) {
  const nn::NetworkModel net = three_layer_net();
  const Tensor<std::int16_t> input = test_input();
  const auto energy = energy::EnergyModel::paper_calibrated();

  ChainAccelerator plain_acc(small_cfg());
  NetworkRunner plain(plain_acc, energy);
  const NetworkRunResult uninterrupted =
      plain.run(net, input, base_options());

  // Preempt after layer 1 on the 64-PE chip, resume on a 144-PE chip at
  // a different clock: the remaining layers re-plan for the new chain.
  AcceleratorConfig other = small_cfg();
  other.array.num_pes = 144;
  other.array.clock_hz = 350e6;
  ChainAccelerator acc(small_cfg());
  ChainAccelerator other_acc(other);
  const PreemptedRun moved =
      run_with_preemption_at(acc, other_acc, net, input, /*boundary=*/1);

  ASSERT_EQ(moved.result.layers.size(), 3u);
  // The checkpointed prefix keeps its original plan; the resumed layers
  // carry the new chip's.
  EXPECT_EQ(moved.result.layers[0].run.plan.array.num_pes, 64);
  EXPECT_EQ(moved.result.layers[1].run.plan.array.num_pes, 144);
  EXPECT_EQ(moved.result.layers[2].run.plan.array.num_pes, 144);
  // Value identity: the chain computes the same fixed-point math on any
  // shape, so every ofmap (and the final activations) matches the
  // uninterrupted single-chip run even though cycle accounting differs.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(moved.result.layers[i].run.ofmaps ==
                uninterrupted.layers[i].run.ofmaps)
        << "ofmaps differ at layer " << i;
  }
  EXPECT_TRUE(moved.result.final_activations ==
              uninterrupted.final_activations);
  EXPECT_TRUE(moved.result.all_verified());
  // And the resumed layers really were re-planned: a 144-PE chain with
  // the same kernel cannot have the same active-PE count pattern as the
  // 64-PE one here.
  EXPECT_NE(moved.result.layers[1].run.plan.active_pes,
            uninterrupted.layers[1].run.plan.active_pes);
}

TEST(CheckpointResume, CancelBeatsPreemptAtTheSameBoundary) {
  const nn::NetworkModel net = three_layer_net();
  const Tensor<std::int16_t> input = test_input();
  const auto energy = energy::EnergyModel::paper_calibrated();
  ChainAccelerator acc(small_cfg());
  NetworkRunner runner(acc, energy);

  NetworkRunOptions opts = base_options();
  opts.cancel_check = [] { return true; };
  opts.preempt_check = [] { return true; };
  // A request that is both dead and preemptible is dead: no checkpoint
  // is built for work nobody will resume.
  EXPECT_THROW((void)runner.run(net, input, opts), RunCancelled);
}

TEST(CheckpointResume, ResumeValidatesCheckpointShape) {
  const nn::NetworkModel net = three_layer_net();
  const Tensor<std::int16_t> input = test_input();
  const auto energy = energy::EnergyModel::paper_calibrated();
  ChainAccelerator acc(small_cfg());
  NetworkRunner runner(acc, energy);

  // next_layer pointing past the network is rejected.
  auto bogus = std::make_shared<RunCheckpoint>();
  bogus->next_layer = 7;
  bogus->activations = input;
  NetworkRunOptions opts = base_options();
  opts.resume = bogus;
  EXPECT_THROW((void)runner.run(net, input, opts), std::logic_error);

  // A checkpoint whose layer list disagrees with next_layer is rejected.
  auto skewed = std::make_shared<RunCheckpoint>();
  skewed->next_layer = 1;
  skewed->activations = input;
  NetworkRunOptions opts2 = base_options();
  opts2.resume = skewed;
  EXPECT_THROW((void)runner.run(net, input, opts2), std::logic_error);
}

}  // namespace
}  // namespace chainnn::chain
