#include "chain/chain_core.hpp"

#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace chainnn::chain {
namespace {

TEST(ChannelRing, TapAgeZeroIsCurrentInput) {
  ChannelRing ring(8);
  ring.push(5);
  EXPECT_EQ(ring.tap(0), 5);
  ring.push(7);
  EXPECT_EQ(ring.tap(0), 7);
  EXPECT_EQ(ring.tap(1), 5);
}

TEST(ChannelRing, UnpushedHistoryReadsZero) {
  ChannelRing ring(8);
  ring.push(9);
  EXPECT_EQ(ring.tap(3), 0);  // register still in reset state
}

TEST(ChannelRing, ResetClearsHistory) {
  ChannelRing ring(4);
  ring.push(1);
  ring.push(2);
  ring.reset();
  ring.push(3);
  EXPECT_EQ(ring.tap(0), 3);
  EXPECT_EQ(ring.tap(1), 0);
}

TEST(ChannelRing, TapBoundsChecked) {
  ChannelRing ring(4);
  EXPECT_THROW((void)ring.tap(5), std::logic_error);
}

TEST(Primitive, KmemoryLoadAndLatch) {
  SystolicPrimitive prim(4, 8);
  prim.load_kmemory(0, 2, 11);
  prim.load_kmemory(3, 2, -7);
  const std::int64_t reads = prim.latch_weights(4, 2);
  EXPECT_EQ(reads, 4);
  EXPECT_EQ(prim.pe(0).weight, 11);
  EXPECT_EQ(prim.pe(3).weight, -7);
}

TEST(Primitive, MaskedTailGetsZeroWeight) {
  SystolicPrimitive prim(9, 4);
  for (std::int64_t p = 0; p < 9; ++p) prim.load_kmemory(p, 0, 5);
  const std::int64_t reads = prim.latch_weights(6, 0);
  EXPECT_EQ(reads, 6);
  EXPECT_EQ(prim.pe(5).weight, 5);
  EXPECT_EQ(prim.pe(6).weight, 0);
  EXPECT_EQ(prim.pe(8).weight, 0);
}

TEST(Primitive, LoadRejectsBadWord) {
  SystolicPrimitive prim(2, 4);
  EXPECT_THROW(prim.load_kmemory(0, 4, 1), std::logic_error);
  EXPECT_THROW(prim.load_kmemory(2, 0, 1), std::logic_error);
}

// 1D correlation sanity check: a K_r=1, K_c=3 primitive on a single-row
// strip computes y(c0) = sum_dc w[dc] * x[c0+dc].
TEST(Chain, OneDimensionalCorrelation) {
  const std::int64_t k_cols = 3;
  const StripPattern pattern(1, k_cols, 1, 8, 1, true);
  SystolicChain chain(1, k_cols, 4);
  // Scan s = dc; PE p holds w_scan[T-1-p].
  const std::int16_t w[3] = {2, -1, 3};
  for (std::int64_t p = 0; p < 3; ++p)
    chain.primitive(0).load_kmemory(p, 0, w[3 - 1 - p]);
  (void)chain.latch_weights(3, 0);

  const std::int16_t x[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<std::int64_t> outputs;
  for (std::int64_t slot = 0; slot < pattern.num_slots() + 3; ++slot) {
    std::int16_t in0 = 0, in1 = 0;
    if (auto px = pattern.pixel_at(slot, 0)) { in0 = x[px->col]; }
    if (auto px = pattern.pixel_at(slot, 1)) in1 = x[px->col];
    chain.step(pattern, slot, in0, in1);
    if (auto comp = pattern.completion_at(slot - 2))
      outputs.push_back(chain.output(0));
  }
  ASSERT_EQ(outputs.size(), 6u);
  for (std::int64_t c0 = 0; c0 < 6; ++c0) {
    const std::int64_t want =
        2 * x[c0] + -1 * x[c0 + 1] + 3 * x[c0 + 2];
    EXPECT_EQ(outputs[static_cast<std::size_t>(c0)], want) << "c0=" << c0;
  }
}

// Full 2D check at the chain-core level (no controller): one 3x3
// primitive over a 5-row strip must produce all 3*(cols-2) windows.
TEST(Chain, TwoDimensionalConvolutionSingle3x3Primitive) {
  const std::int64_t k = 3, cols = 7;
  const StripPattern pattern(k, k, 2 * k - 1, cols, k, true);
  SystolicChain chain(1, k * k, 4);

  Rng rng(77);
  std::int16_t strip[5][7];
  for (auto& row : strip)
    for (auto& v : row)
      v = static_cast<std::int16_t>(rng.uniform_int(-50, 50));
  std::int16_t w[3][3];
  for (auto& row : w)
    for (auto& v : row)
      v = static_cast<std::int16_t>(rng.uniform_int(-10, 10));

  // Load: PE p holds scan position s = T-1-p; scan s = (dr, dc) =
  // (s % K, s / K).
  for (std::int64_t p = 0; p < 9; ++p) {
    const std::int64_t s = 8 - p;
    chain.primitive(0).load_kmemory(p, 0, w[s % 3][s / 3]);
  }
  (void)chain.latch_weights(9, 0);

  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> got;
  for (std::int64_t slot = 0; slot < pattern.num_slots() + 9; ++slot) {
    std::int16_t in0 = 0, in1 = 0;
    if (auto px = pattern.pixel_at(slot, 0)) in0 = strip[px->row][px->col];
    if (auto px = pattern.pixel_at(slot, 1)) in1 = strip[px->row][px->col];
    chain.step(pattern, slot, in0, in1);
    if (auto comp = pattern.completion_at(slot - 8))
      got[{comp->r0, comp->c0}] = chain.output(0);
  }

  ASSERT_EQ(got.size(), static_cast<std::size_t>(3 * 5));
  for (std::int64_t r0 = 0; r0 < 3; ++r0) {
    for (std::int64_t c0 = 0; c0 <= cols - 3; ++c0) {
      std::int64_t want = 0;
      for (std::int64_t dr = 0; dr < 3; ++dr)
        for (std::int64_t dc = 0; dc < 3; ++dc)
          want += static_cast<std::int64_t>(strip[r0 + dr][c0 + dc]) *
                  static_cast<std::int64_t>(w[dr][dc]);
      EXPECT_EQ((got[{r0, c0}]), want) << "(" << r0 << "," << c0 << ")";
    }
  }
}

// Two chained primitives see the same stream and compute two kernels.
TEST(Chain, TwoPrimitivesComputeTwoKernels) {
  const std::int64_t k = 2, cols = 6;
  const StripPattern pattern(k, k, 2 * k - 1, cols, k, true);
  SystolicChain chain(2, k * k, 4);

  std::int16_t strip[3][6];
  for (std::int64_t r = 0; r < 3; ++r)
    for (std::int64_t c = 0; c < 6; ++c)
      strip[r][c] = static_cast<std::int16_t>(10 * r + c);
  // Kernel 0 = all ones (window sum); kernel 1 = top-left delta.
  for (std::int64_t p = 0; p < 4; ++p) {
    chain.primitive(0).load_kmemory(p, 0, 1);
    const std::int64_t s = 3 - p;
    chain.primitive(1).load_kmemory(p, 0,
                                    (s == 0) ? std::int16_t{1}
                                             : std::int16_t{0});
  }
  (void)chain.latch_weights(4, 0);

  std::map<std::pair<std::int64_t, std::int64_t>,
           std::pair<std::int64_t, std::int64_t>>
      got;
  for (std::int64_t slot = 0; slot < pattern.num_slots() + 4; ++slot) {
    std::int16_t in0 = 0, in1 = 0;
    if (auto px = pattern.pixel_at(slot, 0)) in0 = strip[px->row][px->col];
    if (auto px = pattern.pixel_at(slot, 1)) in1 = strip[px->row][px->col];
    chain.step(pattern, slot, in0, in1);
    if (auto comp = pattern.completion_at(slot - 3))
      got[{comp->r0, comp->c0}] = {chain.output(0), chain.output(1)};
  }

  for (const auto& [rc, outs] : got) {
    const auto [r0, c0] = rc;
    const std::int64_t sum = strip[r0][c0] + strip[r0 + 1][c0] +
                             strip[r0][c0 + 1] + strip[r0 + 1][c0 + 1];
    EXPECT_EQ(outs.first, sum);
    EXPECT_EQ(outs.second, strip[r0][c0]);  // delta at scan 0 = top-left
  }
}

TEST(Chain, ResetPassStateClearsPsums) {
  SystolicChain chain(1, 4, 4);
  const StripPattern pattern(2, 2, 3, 5, 2, true);
  (void)chain.latch_weights(4, 0);
  chain.step(pattern, 0, 100, 100);
  chain.reset_pass_state();
  EXPECT_EQ(chain.output(0), 0);
}

}  // namespace
}  // namespace chainnn::chain
