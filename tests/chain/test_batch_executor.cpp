// BatchExecutor: sharding a batch across a worker pool must be an exact
// refactoring of the serial path — bit-identical ofmaps, accumulators,
// cycle counts and traffic for any worker count, including worker counts
// that do not divide the batch (and exceed it).
#include "chain/batch_executor.hpp"

#include <gtest/gtest.h>

#include "chain/network_runner.hpp"
#include "common/rng.hpp"
#include "energy/energy_model.hpp"
#include "nn/golden.hpp"
#include "nn/models.hpp"

namespace chainnn::chain {
namespace {

AcceleratorConfig small_config(std::int64_t pes = 64) {
  AcceleratorConfig cfg;
  cfg.array.num_pes = pes;
  cfg.array.kmem_words_per_pe = 64;
  return cfg;
}

nn::ConvLayerParams layer_of(std::int64_t n, std::int64_t c, std::int64_t m,
                             std::int64_t hw, std::int64_t k,
                             std::int64_t stride = 1, std::int64_t pad = 0,
                             std::int64_t groups = 1) {
  nn::ConvLayerParams p;
  p.name = "batch_test";
  p.batch = n;
  p.in_channels = c;
  p.out_channels = m;
  p.in_height = p.in_width = hw;
  p.kernel = k;
  p.stride = stride;
  p.pad = pad;
  p.groups = groups;
  p.validate();
  return p;
}

struct TestData {
  Tensor<std::int16_t> ifmaps;
  Tensor<std::int16_t> kernels;
};

TestData make_data(const nn::ConvLayerParams& p, std::uint64_t seed) {
  Rng rng(seed);
  TestData d{
      Tensor<std::int16_t>(
          Shape{p.batch, p.in_channels, p.in_height, p.in_width}),
      Tensor<std::int16_t>(
          Shape{p.out_channels, p.channels_per_group(), p.kernel, p.kernel})};
  d.ifmaps.fill_random(rng, -100, 100);
  d.kernels.fill_random(rng, -20, 20);
  return d;
}

void expect_identical(const LayerRunResult& serial,
                      const LayerRunResult& merged) {
  EXPECT_EQ(serial.accumulators, merged.accumulators);
  EXPECT_EQ(serial.ofmaps, merged.ofmaps);

  EXPECT_EQ(serial.stats.kernel_load_cycles, merged.stats.kernel_load_cycles);
  EXPECT_EQ(serial.stats.stream_cycles, merged.stats.stream_cycles);
  EXPECT_EQ(serial.stats.drain_cycles, merged.stats.drain_cycles);
  EXPECT_EQ(serial.stats.total_cycles(), merged.stats.total_cycles());
  EXPECT_EQ(serial.stats.windows_collected, merged.stats.windows_collected);
  EXPECT_EQ(serial.stats.macs_performed, merged.stats.macs_performed);
  EXPECT_EQ(serial.stats.passes, merged.stats.passes);

  EXPECT_EQ(serial.traffic.dram_bytes, merged.traffic.dram_bytes);
  EXPECT_EQ(serial.traffic.imemory_bytes, merged.traffic.imemory_bytes);
  EXPECT_EQ(serial.traffic.kmemory_bytes, merged.traffic.kmemory_bytes);
  EXPECT_EQ(serial.traffic.omemory_bytes, merged.traffic.omemory_bytes);

  EXPECT_EQ(serial.narrowing.count, merged.narrowing.count);
  EXPECT_EQ(serial.narrowing.saturations, merged.narrowing.saturations);

  EXPECT_DOUBLE_EQ(serial.seconds(), merged.seconds());
  EXPECT_DOUBLE_EQ(serial.utilization(), merged.utilization());
}

class BatchExecutorWorkers : public ::testing::TestWithParam<std::int64_t> {};

// Divisible and non-divisible batches: 8 images over {1, 2, 8} workers
// and 5 images over {1, 2, 8} workers (5 % 2 != 0 and 8 > 5, so the
// sharder must handle both remainders and idle workers).
TEST_P(BatchExecutorWorkers, BitIdenticalToSerialDivisibleBatch) {
  const auto p = layer_of(8, 2, 3, 8, 3);
  const TestData d = make_data(p, 11);
  ChainAccelerator acc(small_config());
  const LayerRunResult serial = acc.run_layer(p, d.ifmaps, d.kernels);

  BatchExecutor exec(small_config(), {.num_workers = GetParam()});
  expect_identical(serial, exec.run_layer(p, d.ifmaps, d.kernels));
}

TEST_P(BatchExecutorWorkers, BitIdenticalToSerialNonDivisibleBatch) {
  const auto p = layer_of(5, 2, 3, 8, 3);
  const TestData d = make_data(p, 12);
  ChainAccelerator acc(small_config());
  const LayerRunResult serial = acc.run_layer(p, d.ifmaps, d.kernels);

  BatchExecutor exec(small_config(), {.num_workers = GetParam()});
  expect_identical(serial, exec.run_layer(p, d.ifmaps, d.kernels));
}

// Strided + padded + grouped layer: exercises the sub-convolution phase
// decomposition, psum spills and multiple m-groups under sharding.
TEST_P(BatchExecutorWorkers, BitIdenticalToSerialStridedGrouped) {
  const auto p = layer_of(6, 4, 4, 9, 3, /*stride=*/2, /*pad=*/1,
                          /*groups=*/2);
  const TestData d = make_data(p, 13);
  ChainAccelerator acc(small_config());
  const LayerRunResult serial = acc.run_layer(p, d.ifmaps, d.kernels);

  BatchExecutor exec(small_config(), {.num_workers = GetParam()});
  expect_identical(serial, exec.run_layer(p, d.ifmaps, d.kernels));
}

// Asymmetric (per-axis) padding flows through the plan, the controller's
// pixel fetch and the merge unchanged.
TEST_P(BatchExecutorWorkers, BitIdenticalToSerialAsymmetricPadding) {
  auto p = layer_of(5, 2, 2, 8, 3);
  p.pad_h = 1;
  p.pad_w = 0;
  p.validate();
  const TestData d = make_data(p, 14);
  ChainAccelerator acc(small_config());
  const LayerRunResult serial = acc.run_layer(p, d.ifmaps, d.kernels);
  EXPECT_EQ(serial.accumulators,
            nn::conv2d_fixed_accum(p, d.ifmaps, d.kernels));

  BatchExecutor exec(small_config(), {.num_workers = GetParam()});
  expect_identical(serial, exec.run_layer(p, d.ifmaps, d.kernels));
}

// The staged 16-bit psum policy uses a different accumulate path; the
// merge must be exact there too.
TEST_P(BatchExecutorWorkers, BitIdenticalToSerialStaged16) {
  AcceleratorConfig cfg = small_config();
  cfg.psum_storage = PsumStorage::kStaged16;
  const auto p = layer_of(5, 2, 3, 8, 3);
  const TestData d = make_data(p, 15);
  ChainAccelerator acc(cfg);
  const LayerRunResult serial = acc.run_layer(p, d.ifmaps, d.kernels);

  BatchExecutor exec(cfg, {.num_workers = GetParam()});
  expect_identical(serial, exec.run_layer(p, d.ifmaps, d.kernels));
}

TEST_P(BatchExecutorWorkers, BitIdenticalToSerialWithBias) {
  const auto p = layer_of(5, 2, 3, 8, 3);
  const TestData d = make_data(p, 16);
  Rng rng(17);
  Tensor<std::int16_t> bias(Shape{p.out_channels});
  bias.fill_random(rng, -50, 50);

  ChainAccelerator acc(small_config());
  const LayerRunResult serial = acc.run_layer(p, d.ifmaps, d.kernels, &bias);

  BatchExecutor exec(small_config(), {.num_workers = GetParam()});
  expect_identical(serial, exec.run_layer(p, d.ifmaps, d.kernels, &bias));
}

INSTANTIATE_TEST_SUITE_P(Workers, BatchExecutorWorkers,
                         ::testing::Values<std::int64_t>(1, 2, 8));

TEST(BatchExecutor, ShardRangesPartitionTheBatch) {
  for (std::int64_t batch : {1, 2, 5, 7, 8, 16}) {
    for (std::int64_t workers : {1, 2, 3, 8}) {
      std::int64_t next = 0;
      std::int64_t largest = 0, smallest = batch;
      for (std::int64_t w = 0; w < workers; ++w) {
        const auto [first, last] = BatchExecutor::shard_range(batch, w,
                                                              workers);
        EXPECT_EQ(first, next) << "batch=" << batch << " w=" << w;
        EXPECT_LE(first, last);
        next = last;
        largest = std::max(largest, last - first);
        smallest = std::min(smallest, last - first);
      }
      EXPECT_EQ(next, batch);
      EXPECT_LE(largest - smallest, 1) << "unbalanced shards";
    }
  }
}

TEST(BatchExecutor, WorkerRngStreamsAreDeterministicAndIndependent) {
  BatchExecutor a(small_config(), {.num_workers = 4, .seed = 99});
  BatchExecutor b(small_config(), {.num_workers = 4, .seed = 99});
  for (std::int64_t w = 0; w < 4; ++w)
    EXPECT_EQ(a.worker_rng(w).next_u64(), b.worker_rng(w).next_u64())
        << "stream " << w << " not reproducible";

  BatchExecutor c(small_config(), {.num_workers = 4, .seed = 99});
  std::uint64_t first[4];
  for (std::int64_t w = 0; w < 4; ++w) first[w] = c.worker_rng(w).next_u64();
  for (std::int64_t i = 0; i < 4; ++i)
    for (std::int64_t j = i + 1; j < 4; ++j)
      EXPECT_NE(first[i], first[j]) << "streams " << i << "/" << j
                                    << " collide";
}

// NetworkRunner with num_workers > 1 must reproduce the serial network
// run exactly: activations, per-layer cycles/traffic, verification flags
// and the modelled power/energy roll-ups.
TEST(BatchExecutor, NetworkRunnerParallelMatchesSerial) {
  const auto energy = energy::EnergyModel::paper_calibrated();
  nn::NetworkModel net;
  net.name = "tiny2";
  net.conv_layers = {layer_of(1, 2, 4, 12, 3, 1, 1),
                     layer_of(1, 4, 4, 12, 3, 2, 1)};

  Rng rng(21);
  Tensor<std::int16_t> input(Shape{5, 2, 12, 12});
  input.fill_random(rng, -80, 80);

  ChainAccelerator acc_serial(small_config());
  NetworkRunner serial(acc_serial, energy);
  const NetworkRunResult rs = serial.run(net, input);

  ChainAccelerator acc_par(small_config());
  NetworkRunner parallel(acc_par, energy);
  NetworkRunOptions opts;
  opts.num_workers = 3;
  const NetworkRunResult rp = parallel.run(net, input, opts);

  ASSERT_EQ(rs.layers.size(), rp.layers.size());
  EXPECT_EQ(rs.final_activations, rp.final_activations);
  EXPECT_TRUE(rs.all_verified());
  EXPECT_TRUE(rp.all_verified());
  for (std::size_t i = 0; i < rs.layers.size(); ++i) {
    EXPECT_EQ(rs.layers[i].run.ofmaps, rp.layers[i].run.ofmaps);
    EXPECT_EQ(rs.layers[i].run.stats.total_cycles(),
              rp.layers[i].run.stats.total_cycles());
    EXPECT_EQ(rs.layers[i].run.traffic.dram_bytes,
              rp.layers[i].run.traffic.dram_bytes);
    EXPECT_DOUBLE_EQ(rs.layers[i].power.total(), rp.layers[i].power.total());
  }
  EXPECT_DOUBLE_EQ(rs.total_seconds(), rp.total_seconds());
  EXPECT_DOUBLE_EQ(rs.total_energy_j(), rp.total_energy_j());
  EXPECT_DOUBLE_EQ(rs.fps(5), rp.fps(5));
}

// Repeated parallel runs are deterministic run-to-run (no dependence on
// thread scheduling).
TEST(BatchExecutor, RunToRunDeterminism) {
  const auto p = layer_of(7, 2, 3, 10, 3, 1, 1);
  const TestData d = make_data(p, 31);
  BatchExecutor exec(small_config(), {.num_workers = 4});
  const LayerRunResult first = exec.run_layer(p, d.ifmaps, d.kernels);
  for (int i = 0; i < 3; ++i)
    expect_identical(first, exec.run_layer(p, d.ifmaps, d.kernels));
}

TEST(BatchExecutor, RejectsInvalidWorkerCount) {
  EXPECT_THROW(BatchExecutor(small_config(), {.num_workers = 0}),
               std::logic_error);
}

}  // namespace
}  // namespace chainnn::chain
