// Randomized differential testing: many random layer geometries and data
// distributions, chain simulator vs both golden references (direct fixed
// conv and float im2col within rounding tolerance). Seeds are fixed so
// failures reproduce; the generator prints the geometry on failure.
#include <gtest/gtest.h>

#include "chain/accelerator.hpp"
#include "common/rng.hpp"
#include "nn/golden.hpp"
#include "nn/im2col.hpp"
#include "nn/sparsity.hpp"

namespace chainnn::chain {
namespace {

nn::ConvLayerParams random_layer(Rng& rng) {
  nn::ConvLayerParams p;
  p.name = "fuzz";
  p.batch = rng.uniform_int(1, 2);
  p.groups = rng.uniform_int(1, 3);
  p.in_channels = p.groups * rng.uniform_int(1, 3);
  p.out_channels = p.groups * rng.uniform_int(1, 4);
  p.kernel = rng.uniform_int(1, 6);
  p.stride = rng.uniform_int(1, 3);
  p.pad = rng.uniform_int(0, p.kernel - 1);
  // Input large enough for at least 2x2 outputs where possible.
  const std::int64_t min_hw =
      std::max<std::int64_t>(p.kernel, p.kernel + p.stride - 2 * p.pad);
  p.in_height = min_hw + rng.uniform_int(0, 10);
  p.in_width = min_hw + rng.uniform_int(0, 10);
  p.validate();
  return p;
}

class FuzzSeed : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeed, ChainMatchesGoldenOnRandomGeometry) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int round = 0; round < 6; ++round) {
    const nn::ConvLayerParams p = random_layer(rng);

    Tensor<std::int16_t> x(
        Shape{p.batch, p.in_channels, p.in_height, p.in_width});
    Tensor<std::int16_t> w(
        Shape{p.out_channels, p.channels_per_group(), p.kernel, p.kernel});
    x.fill_random(rng, -128, 128);
    w.fill_random(rng, -32, 32);
    // Some rounds get sparse activations (post-ReLU-like distribution).
    if (round % 2 == 1) nn::inject_sparsity(x, 0.5, 99);

    AcceleratorConfig cfg;
    cfg.array.num_pes = 16 + 16 * rng.uniform_int(0, 8);
    cfg.array.kmem_words_per_pe = 16 << rng.uniform_int(0, 3);
    if (cfg.array.num_pes < p.kernel * p.kernel)
      cfg.array.num_pes = 576;  // ensure the kernel fits
    cfg.array.dual_channel = rng.uniform_int(0, 4) != 0;  // mostly dual

    ChainAccelerator acc(cfg);
    const LayerRunResult res = acc.run_layer(p, x, w);
    const Tensor<std::int64_t> golden = nn::conv2d_fixed_accum(p, x, w);
    ASSERT_EQ(res.accumulators, golden)
        << p.to_string() << " on " << cfg.array.to_string();
    ASSERT_EQ(res.stats.macs_performed, p.macs_total()) << p.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed, ::testing::Range(0, 12));

TEST(FuzzFloatCrossCheck, ChainTracksIm2colWithinRounding) {
  // Independent second oracle: float im2col conv, compared through the
  // quantization model.
  Rng rng(4242);
  for (int round = 0; round < 4; ++round) {
    const nn::ConvLayerParams p = random_layer(rng);
    Tensor<float> xf(Shape{p.batch, p.in_channels, p.in_height, p.in_width});
    Tensor<float> wf(
        Shape{p.out_channels, p.channels_per_group(), p.kernel, p.kernel});
    xf.fill_random(rng, -1.0, 1.0);
    wf.fill_random(rng, -0.25, 0.25);

    // Quantize to Q7.8 exactly representable values so fixed == float.
    Tensor<std::int16_t> x(xf.shape());
    Tensor<std::int16_t> w(wf.shape());
    for (std::int64_t i = 0; i < xf.num_elements(); ++i) {
      x.at_flat(i) = static_cast<std::int16_t>(
          std::lround(double{xf.at_flat(i)} * 256.0));
      xf.at_flat(i) = static_cast<float>(x.at_flat(i)) / 256.0f;
    }
    for (std::int64_t i = 0; i < wf.num_elements(); ++i) {
      w.at_flat(i) = static_cast<std::int16_t>(
          std::lround(double{wf.at_flat(i)} * 256.0));
      wf.at_flat(i) = static_cast<float>(w.at_flat(i)) / 256.0f;
    }

    AcceleratorConfig cfg;
    cfg.array.num_pes = 576;
    ChainAccelerator acc(cfg);
    const LayerRunResult res = acc.run_layer(p, x, w);
    const Tensor<float> ref = nn::conv2d_im2col(p, xf, wf);

    for (std::int64_t i = 0; i < ref.num_elements(); ++i) {
      const double got =
          static_cast<double>(res.accumulators.at_flat(i)) / 65536.0;
      ASSERT_NEAR(got, double{ref.at_flat(i)}, 2e-3) << p.to_string();
    }
  }
}

}  // namespace
}  // namespace chainnn::chain
