#include "chain/pass_dump.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace chainnn::chain {
namespace {

TEST(PassDump, ProducesWellFormedVcd) {
  const StripPattern pattern(3, 3, 5, 7, 3, true);
  Rng rng(1);
  Tensor<std::int16_t> strip(Shape{5, 7});
  Tensor<std::int16_t> kernel(Shape{3, 3});
  strip.fill_random(rng, -20, 20);
  kernel.fill_random(rng, -5, 5);

  const std::string vcd = dump_pass_vcd(pattern, strip, kernel);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(vcd.find("ch0_in"), std::string::npos);
  EXPECT_NE(vcd.find("ch1_in"), std::string::npos);
  EXPECT_NE(vcd.find("psum_out"), std::string::npos);
  EXPECT_NE(vcd.find("window_valid"), std::string::npos);
  // One pe scope per tap.
  for (int p = 0; p < 9; ++p)
    EXPECT_NE(vcd.find("$scope module pe" + std::to_string(p) + " $end"),
              std::string::npos)
        << p;
}

TEST(PassDump, WindowValidAssertsAfterWarmup) {
  const StripPattern pattern(2, 2, 3, 6, 2, true);
  Tensor<std::int16_t> strip(Shape{3, 6}, std::int16_t{1});
  Tensor<std::int16_t> kernel(Shape{2, 2}, std::int16_t{1});
  const std::string vcd = dump_pass_vcd(pattern, strip, kernel);
  // window_valid must toggle to 1 somewhere (completions exist).
  // Find the identifier code of window_valid from its declaration.
  const auto decl = vcd.find(" window_valid $end");
  ASSERT_NE(decl, std::string::npos);
  // "$var wire 1 <code> window_valid $end" — code precedes name.
  const auto line_start = vcd.rfind('\n', decl) + 1;
  const std::string line = vcd.substr(line_start, decl - line_start);
  const auto last_space = line.rfind(' ');
  const std::string code = line.substr(last_space + 1);
  EXPECT_NE(vcd.find("1" + code), std::string::npos);
}

TEST(PassDump, RejectsMismatchedKernelShape) {
  const StripPattern pattern(3, 3, 5, 7, 3, true);
  Tensor<std::int16_t> strip(Shape{5, 7});
  Tensor<std::int16_t> wrong(Shape{2, 2});
  EXPECT_THROW((void)dump_pass_vcd(pattern, strip, wrong),
               std::logic_error);
}

}  // namespace
}  // namespace chainnn::chain
