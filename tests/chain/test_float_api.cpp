#include <gtest/gtest.h>

#include "chain/accelerator.hpp"
#include "common/rng.hpp"
#include "nn/golden.hpp"

namespace chainnn::chain {
namespace {

nn::ConvLayerParams small_layer() {
  nn::ConvLayerParams p;
  p.name = "float";
  p.in_channels = 3;
  p.out_channels = 4;
  p.in_height = p.in_width = 10;
  p.kernel = 3;
  p.pad = 1;
  p.validate();
  return p;
}

TEST(FloatApi, TracksFloatGoldenWithinQuantizationError) {
  const auto p = small_layer();
  Rng rng(21);
  Tensor<float> x(Shape{1, 3, 10, 10});
  Tensor<float> w(Shape{4, 3, 3, 3});
  x.fill_random(rng, -1.0, 1.0);
  w.fill_random(rng, -0.3, 0.3);

  AcceleratorConfig cfg;
  cfg.array.num_pes = 72;
  cfg.array.kmem_words_per_pe = 16;
  ChainAccelerator acc(cfg);
  fixed::NarrowingStats qstats;
  const auto res = acc.run_layer_float(p, x, w, &qstats);

  const Tensor<float> golden = nn::conv2d_float(p, x, w);
  ASSERT_EQ(res.ofmaps.shape(), golden.shape());
  // 27 taps x (two quantized operands): worst case a few output LSBs.
  EXPECT_LT(max_abs_diff(res.ofmaps, golden), 0.05);
  EXPECT_GT(qstats.count, 0u);
  EXPECT_EQ(qstats.saturations, 0u);
}

TEST(FloatApi, RawResultConsistentWithFloatView) {
  const auto p = small_layer();
  Rng rng(22);
  Tensor<float> x(Shape{1, 3, 10, 10});
  Tensor<float> w(Shape{4, 3, 3, 3});
  x.fill_random(rng, -0.5, 0.5);
  w.fill_random(rng, -0.2, 0.2);

  AcceleratorConfig cfg;
  cfg.array.num_pes = 72;
  cfg.array.kmem_words_per_pe = 16;
  ChainAccelerator acc(cfg);
  const auto res = acc.run_layer_float(p, x, w);
  for (std::int64_t i = 0; i < res.ofmaps.num_elements(); ++i)
    EXPECT_FLOAT_EQ(res.ofmaps.at_flat(i),
                    static_cast<float>(res.raw.ofmaps.at_flat(i)) /
                        static_cast<float>(cfg.ofmap_fmt.scale()));
  EXPECT_GT(res.raw.stats.stream_cycles, 0);
}

TEST(FloatApi, SaturationReportedForOutOfRangeData) {
  const auto p = small_layer();
  Tensor<float> x(Shape{1, 3, 10, 10}, 1000.0f);  // >> Q7.8 max (~128)
  Tensor<float> w(Shape{4, 3, 3, 3}, 0.01f);
  AcceleratorConfig cfg;
  cfg.array.num_pes = 72;
  cfg.array.kmem_words_per_pe = 16;
  ChainAccelerator acc(cfg);
  fixed::NarrowingStats qstats;
  (void)acc.run_layer_float(p, x, w, &qstats);
  EXPECT_GT(qstats.saturations, 0u);
}

}  // namespace
}  // namespace chainnn::chain
