// Property sweep: the cycle-accurate chain must be bit-exact against the
// golden convolution over a randomized grid of layer geometries covering
// every architectural feature (kernel sizes, stride phases, padding,
// groups, partial strips, partial m-groups, c-tiling, channel counts).
#include <gtest/gtest.h>

#include "chain/accelerator.hpp"
#include "common/rng.hpp"
#include "nn/golden.hpp"

namespace chainnn::chain {
namespace {

struct SweepCase {
  std::int64_t pes;
  std::int64_t kmem_words;
  std::int64_t batch, c, m, h, w, k, stride, pad, groups;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& s = info.param;
  return "pes" + std::to_string(s.pes) + "_n" + std::to_string(s.batch) +
         "c" + std::to_string(s.c) + "m" + std::to_string(s.m) + "h" +
         std::to_string(s.h) + "w" + std::to_string(s.w) + "k" +
         std::to_string(s.k) + "s" + std::to_string(s.stride) + "p" +
         std::to_string(s.pad) + "g" + std::to_string(s.groups);
}

class AcceleratorSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(AcceleratorSweep, BitExactAndAccountingConsistent) {
  const SweepCase& sc = GetParam();
  nn::ConvLayerParams p;
  p.name = "sweep";
  p.batch = sc.batch;
  p.in_channels = sc.c;
  p.out_channels = sc.m;
  p.in_height = sc.h;
  p.in_width = sc.w;
  p.kernel = sc.k;
  p.stride = sc.stride;
  p.pad = sc.pad;
  p.groups = sc.groups;
  p.validate();

  AcceleratorConfig cfg;
  cfg.array.num_pes = sc.pes;
  cfg.array.kmem_words_per_pe = sc.kmem_words;

  Rng rng(static_cast<std::uint64_t>(sc.pes * 1000 + sc.k * 100 +
                                     sc.stride * 10 + sc.pad));
  Tensor<std::int16_t> x(Shape{p.batch, p.in_channels, p.in_height,
                               p.in_width});
  Tensor<std::int16_t> w(
      Shape{p.out_channels, p.channels_per_group(), p.kernel, p.kernel});
  x.fill_random(rng, -64, 64);
  w.fill_random(rng, -16, 16);

  ChainAccelerator acc(cfg);
  const LayerRunResult res = acc.run_layer(p, x, w);

  // 1) Bit-exact psums vs the golden model.
  const Tensor<std::int64_t> golden = nn::conv2d_fixed_accum(p, x, w);
  ASSERT_EQ(res.accumulators, golden) << p.to_string();

  // 2) Work accounting: every MAC of the layer was performed.
  EXPECT_EQ(res.stats.macs_performed, p.macs_total());

  // 3) Cycle accounting matches the closed-form plan.
  EXPECT_EQ(res.stats.stream_cycles + res.stats.drain_cycles,
            res.plan.cycles_per_image() * p.batch -
                res.plan.drain_cycles() * (p.batch - 1));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AcceleratorSweep,
    ::testing::Values(
        // Kernel-size sweep (Table II sizes) on small images.
        SweepCase{576, 256, 1, 1, 2, 8, 8, 3, 1, 0, 1},
        SweepCase{576, 256, 1, 1, 2, 10, 10, 5, 1, 0, 1},
        SweepCase{576, 256, 1, 1, 1, 12, 12, 7, 1, 0, 1},
        SweepCase{576, 256, 1, 1, 1, 14, 14, 9, 1, 0, 1},
        SweepCase{576, 256, 1, 1, 1, 15, 15, 11, 1, 0, 1},
        // Rectangular image, padding variants.
        SweepCase{64, 64, 1, 2, 3, 9, 13, 3, 1, 1, 1},
        SweepCase{64, 64, 1, 2, 2, 11, 7, 3, 1, 2, 1},
        // Strides (phase decomposition) with and without padding.
        SweepCase{128, 64, 1, 2, 2, 13, 13, 3, 2, 0, 1},
        SweepCase{128, 64, 1, 1, 2, 17, 17, 5, 3, 1, 1},
        SweepCase{256, 64, 1, 1, 1, 23, 23, 11, 4, 0, 1},
        SweepCase{128, 64, 1, 1, 2, 9, 9, 3, 5, 0, 1},  // S > K
        // Groups, including group+stride combinations.
        SweepCase{64, 64, 1, 4, 4, 8, 8, 3, 1, 1, 2},
        SweepCase{64, 64, 1, 6, 6, 10, 10, 3, 2, 1, 3},
        // Batch > 1.
        SweepCase{64, 64, 3, 2, 3, 7, 7, 3, 1, 0, 1},
        // Many m-groups (m >> primitives): 64 PEs -> 7 primitives of 9.
        SweepCase{64, 64, 1, 2, 23, 8, 8, 3, 1, 0, 1},
        // c-tiling: channels exceed kMemory words per PE.
        SweepCase{64, 8, 1, 12, 2, 8, 8, 3, 1, 0, 1},
        // 1x1 kernels (LeNet conv4 case).
        SweepCase{64, 64, 1, 3, 5, 6, 6, 1, 1, 0, 1},
        // Tiny chain: single primitive.
        SweepCase{9, 64, 1, 2, 2, 7, 7, 3, 1, 0, 1},
        // E_h smaller than K_r (single partial strip).
        SweepCase{64, 64, 1, 1, 1, 5, 9, 5, 1, 0, 1},
        // K = image (single output).
        SweepCase{64, 64, 1, 2, 3, 4, 4, 4, 1, 0, 1}),
    case_name);

}  // namespace
}  // namespace chainnn::chain
