#include "chain/scan_pattern.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace chainnn::chain {
namespace {

StripPattern full_dual(std::int64_t k, std::int64_t cols) {
  return StripPattern(k, k, 2 * k - 1, cols, k, /*dual_channel=*/true);
}

TEST(ScanPattern, ReproducesPaperFig5bTimestamps) {
  // Fig. 5(b): K=3, pixel (r,c) of the 5-row strip is numbered 3c+r+1
  // (1-indexed); our slots are the same minus 1. Odd/even columns ride
  // separate channels.
  const StripPattern p = full_dual(3, 7);
  for (std::int64_t c = 0; c < 7; ++c) {
    for (std::int64_t r = 0; r < 5; ++r) {
      const std::int64_t slot = 3 * c + r;  // paper timestamp - 1
      const int channel = static_cast<int>(c % 2);
      const auto px = p.pixel_at(slot, channel);
      ASSERT_TRUE(px.has_value()) << "slot " << slot;
      EXPECT_EQ(px->row, r);
      EXPECT_EQ(px->col, c);
    }
  }
}

TEST(ScanPattern, AtMostOnePixelPerChannelPerSlot) {
  const StripPattern p = full_dual(3, 9);
  for (std::int64_t slot = 0; slot < p.num_slots(); ++slot) {
    for (int ch = 0; ch < 2; ++ch) {
      const auto px = p.pixel_at(slot, ch);
      if (px) {
        EXPECT_EQ(px->channel, ch);
        EXPECT_EQ(static_cast<int>(px->col % 2), ch);
      }
    }
  }
}

TEST(ScanPattern, EveryPixelScheduledExactlyOnce) {
  const StripPattern p = full_dual(3, 8);
  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  for (const ScheduledPixel& px : p.schedule()) {
    const bool inserted = seen.insert({px.row, px.col}).second;
    EXPECT_TRUE(inserted) << "duplicate (" << px.row << "," << px.col << ")";
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(5 * 8));
}

TEST(ScanPattern, SteadyStateOneCompletionPerSlot) {
  // §IV.C: "pixels [t-K2+1, t] form a convolutional window since 9th
  // cycle for any given t" — after warm-up every slot completes a window.
  const StripPattern p = full_dual(3, 10);
  std::int64_t last_completion_slot = -1;
  std::int64_t count = 0;
  for (const WindowCompletion& w : p.completions()) {
    if (last_completion_slot >= 0) {
      EXPECT_EQ(w.slot, last_completion_slot + 1);
    }
    last_completion_slot = w.slot;
    ++count;
  }
  EXPECT_EQ(count, 3 * (10 - 3 + 1));  // K rows x E_w columns
  // First completion at slot T-1 = 8 (paper's "9th cycle", 1-indexed).
  EXPECT_EQ(p.completions().front().slot, 8);
}

TEST(ScanPattern, CompletionsCoverAllWindowsOnce) {
  const StripPattern p = full_dual(4, 9);
  std::set<std::pair<std::int64_t, std::int64_t>> seen;
  for (const WindowCompletion& w : p.completions()) {
    EXPECT_GE(w.r0, 0);
    EXPECT_LT(w.r0, 4);
    EXPECT_GE(w.c0, 0);
    EXPECT_LE(w.c0, 9 - 4);
    EXPECT_TRUE(seen.insert({w.r0, w.c0}).second);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(4 * 6));
}

// THE core invariant (§IV.B): scan position s of the window completing at
// slot t arrives at slot t-(T-1)+s on the channel of its column parity.
class SlidingWindowProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SlidingWindowProperty, ScanPixelsArriveContiguously) {
  const auto [kr, kc, cols] = GetParam();
  const std::int64_t t_taps = kr * kc;
  const StripPattern p(kr, kc, 2 * kr - 1, cols, kr, true);
  for (const WindowCompletion& w : p.completions()) {
    for (std::int64_t s = 0; s < t_taps; ++s) {
      const std::int64_t want_row = w.r0 + s % kr;
      const std::int64_t want_col = w.c0 + s / kr;
      const std::int64_t slot = w.slot - (t_taps - 1) + s;
      const int channel = static_cast<int>(want_col % 2);
      const auto px = p.pixel_at(slot, channel);
      ASSERT_TRUE(px.has_value())
          << "window(" << w.r0 << "," << w.c0 << ") scan " << s;
      EXPECT_EQ(px->row, want_row);
      EXPECT_EQ(px->col, want_col);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, SlidingWindowProperty,
    ::testing::Values(std::make_tuple(1, 1, 5), std::make_tuple(2, 2, 6),
                      std::make_tuple(3, 3, 9), std::make_tuple(3, 2, 8),
                      std::make_tuple(2, 3, 8), std::make_tuple(5, 5, 12),
                      std::make_tuple(7, 7, 16), std::make_tuple(4, 4, 11)));

TEST(ScanPattern, MuxSelectMatchesNeededChannel) {
  // For every completion and every PE position, the mux must select the
  // channel carrying that PE's operand at its MAC slot (PE p MACs for
  // window t at slot t + p, reading tap age 2p = entry slot t - p).
  const StripPattern p = full_dual(3, 9);
  const std::int64_t t_taps = p.taps();
  for (const WindowCompletion& w : p.completions()) {
    for (std::int64_t pe = 0; pe < t_taps; ++pe) {
      const std::int64_t s = t_taps - 1 - pe;
      const std::int64_t want_col = w.c0 + s / p.k_rows();
      const int want_channel = static_cast<int>(want_col % 2);
      EXPECT_EQ(p.mux_select(pe, w.slot + pe), want_channel)
          << "window slot " << w.slot << " pe " << pe;
    }
  }
}

TEST(ScanPattern, MuxSelectPeriodIs2K) {
  const StripPattern p = full_dual(3, 40);
  for (std::int64_t pe = 0; pe < 9; ++pe)
    for (std::int64_t slot = 20; slot < 60; ++slot)
      EXPECT_EQ(p.mux_select(pe, slot), p.mux_select(pe, slot + 6));
}

TEST(ScanPattern, PartialStripLimitsRows) {
  // out_rows = 2 with K = 3: strip has 4 rows; no window with r0 = 2.
  const StripPattern p(3, 3, 4, 8, 2, true);
  for (const WindowCompletion& w : p.completions()) EXPECT_LT(w.r0, 2);
  EXPECT_EQ(p.completions().size(), static_cast<std::size_t>(2 * 6));
}

TEST(ScanPattern, SingleChannelCompletesEveryKSlots) {
  // Fig. 5(a): one channel sustains one window per K cycles.
  const StripPattern p(3, 3, 5, 8, 3, /*dual_channel=*/false);
  const auto comps = p.completions();
  ASSERT_FALSE(comps.empty());
  for (std::size_t i = 1; i < comps.size(); ++i) {
    const std::int64_t gap = comps[i].slot - comps[i - 1].slot;
    // Within a row group: exactly K; across groups: larger.
    if (comps[i].r0 == comps[i - 1].r0) {
      EXPECT_EQ(gap, 3);
    }
  }
  EXPECT_EQ(comps.size(), static_cast<std::size_t>(3 * 6));
  // All pixels on channel 0.
  for (std::int64_t slot = 0; slot < p.num_slots(); ++slot)
    EXPECT_FALSE(p.pixel_at(slot, 1).has_value());
}

TEST(ScanPattern, SingleChannelSlidingProperty) {
  const StripPattern p(3, 3, 5, 8, 3, false);
  for (const WindowCompletion& w : p.completions()) {
    for (std::int64_t s = 0; s < 9; ++s) {
      const auto px = p.pixel_at(w.slot - 8 + s, 0);
      ASSERT_TRUE(px.has_value());
      EXPECT_EQ(px->row, w.r0 + s % 3);
      EXPECT_EQ(px->col, w.c0 + s / 3);
    }
  }
}

TEST(ScanPattern, ChannelUtilizationLeavesOneGapPer2K) {
  // Each channel is busy 2K-1 of every 2K slots in steady state.
  const StripPattern p = full_dual(3, 20);
  std::int64_t busy = 0;
  const std::int64_t window_start = 12, window_end = 48;  // steady state
  for (std::int64_t slot = window_start; slot < window_end; ++slot)
    if (p.pixel_at(slot, 0)) ++busy;
  const double frac =
      static_cast<double>(busy) / static_cast<double>(window_end -
                                                      window_start);
  EXPECT_NEAR(frac, 5.0 / 6.0, 0.03);
}

TEST(ScanPattern, RejectsBadGeometry) {
  EXPECT_THROW(StripPattern(3, 3, 5, 2, 3, true), std::logic_error);
  EXPECT_THROW(StripPattern(3, 3, 4, 8, 3, true), std::logic_error);
  EXPECT_THROW(StripPattern(0, 3, 5, 8, 3, true), std::logic_error);
}

}  // namespace
}  // namespace chainnn::chain
