// Exec-mode equivalence sweep: the analytical fast path must reproduce
// the cycle-accurate engine exactly — bit-identical ofmaps and
// accumulators, identical RunStats (every field) and identical per-level
// traffic — across strides, asymmetric padding, grouped convolutions,
// 1x1 kernels, staged psums, single-channel streaming, bias, batch
// sharding (BatchExecutor) and whole networks (NetworkRunner).
#include <gtest/gtest.h>

#include <vector>

#include "chain/accelerator.hpp"
#include "chain/batch_executor.hpp"
#include "chain/network_runner.hpp"
#include "common/rng.hpp"
#include "energy/energy_model.hpp"
#include "nn/models.hpp"

namespace chainnn::chain {
namespace {

AcceleratorConfig small_config(std::int64_t pes = 64) {
  AcceleratorConfig cfg;
  cfg.array.num_pes = pes;
  cfg.array.kmem_words_per_pe = 64;
  return cfg;
}

struct TestData {
  Tensor<std::int16_t> ifmaps;
  Tensor<std::int16_t> kernels;
};

TestData make_data(const nn::ConvLayerParams& p, std::uint64_t seed) {
  Rng rng(seed);
  TestData d{
      Tensor<std::int16_t>(
          Shape{p.batch, p.in_channels, p.in_height, p.in_width}),
      Tensor<std::int16_t>(
          Shape{p.out_channels, p.channels_per_group(), p.kernel, p.kernel})};
  d.ifmaps.fill_random(rng, -100, 100);
  d.kernels.fill_random(rng, -20, 20);
  return d;
}

// Asserts the full equivalence contract between the two modes for one
// (config, layer) point.
void expect_modes_equivalent(AcceleratorConfig cfg,
                             const nn::ConvLayerParams& p,
                             std::uint64_t seed,
                             const Tensor<std::int16_t>* bias = nullptr) {
  const TestData d = make_data(p, seed);
  cfg.exec_mode = ExecMode::kCycleAccurate;
  ChainAccelerator cycle(cfg);
  cfg.exec_mode = ExecMode::kAnalytical;
  ChainAccelerator fast(cfg);

  const LayerRunResult rc = cycle.run_layer(p, d.ifmaps, d.kernels, bias);
  const LayerRunResult ra = fast.run_layer(p, d.ifmaps, d.kernels, bias);
  const std::string ctx = p.to_string();

  EXPECT_EQ(ra.accumulators, rc.accumulators) << ctx;
  EXPECT_EQ(ra.ofmaps, rc.ofmaps) << ctx;

  EXPECT_EQ(ra.stats.kernel_load_cycles, rc.stats.kernel_load_cycles) << ctx;
  EXPECT_EQ(ra.stats.stream_cycles, rc.stats.stream_cycles) << ctx;
  EXPECT_EQ(ra.stats.drain_cycles, rc.stats.drain_cycles) << ctx;
  EXPECT_EQ(ra.stats.windows_collected, rc.stats.windows_collected) << ctx;
  EXPECT_EQ(ra.stats.macs_performed, rc.stats.macs_performed) << ctx;
  EXPECT_EQ(ra.stats.passes, rc.stats.passes) << ctx;

  EXPECT_EQ(ra.traffic.dram_bytes, rc.traffic.dram_bytes) << ctx;
  EXPECT_EQ(ra.traffic.imemory_bytes, rc.traffic.imemory_bytes) << ctx;
  EXPECT_EQ(ra.traffic.kmemory_bytes, rc.traffic.kmemory_bytes) << ctx;
  EXPECT_EQ(ra.traffic.omemory_bytes, rc.traffic.omemory_bytes) << ctx;

  EXPECT_EQ(ra.narrowing.count, rc.narrowing.count) << ctx;
  EXPECT_EQ(ra.narrowing.saturations, rc.narrowing.saturations) << ctx;
}

nn::ConvLayerParams layer_of(std::int64_t n, std::int64_t c, std::int64_t m,
                             std::int64_t hw, std::int64_t k,
                             std::int64_t stride = 1, std::int64_t pad = 0,
                             std::int64_t groups = 1) {
  nn::ConvLayerParams p;
  p.name = "sweep";
  p.batch = n;
  p.in_channels = c;
  p.out_channels = m;
  p.in_height = p.in_width = hw;
  p.kernel = k;
  p.stride = stride;
  p.pad = pad;
  p.groups = groups;
  p.validate();
  return p;
}

TEST(ExecModeEquivalence, ConvShapeSweep) {
  // Strides (incl. AlexNet-conv1-style phase decomposition), padding,
  // grouped convolution, 1x1 kernels, batches, multiple m-groups.
  const std::vector<nn::ConvLayerParams> sweep = {
      layer_of(1, 2, 3, 8, 3),              // vanilla 3x3
      layer_of(2, 2, 3, 9, 3, 1, 1),        // padded, batched
      layer_of(1, 2, 2, 11, 5, 2, 2),       // stride 2, pad 2
      layer_of(1, 1, 2, 27, 11, 4),         // stride 4, K=11 (16 phases)
      layer_of(1, 4, 6, 9, 3, 1, 1, 2),     // grouped
      layer_of(1, 3, 4, 5, 1),              // 1x1 kernel
      layer_of(2, 3, 5, 12, 5, 1, 2),       // 5x5, pad 2, batched
      layer_of(1, 4, 4, 10, 3, 1, 1, 2),    // grouped + padded
  };
  std::uint64_t seed = 100;
  for (const auto& p : sweep)
    expect_modes_equivalent(small_config(256), p, seed++);
}

TEST(ExecModeEquivalence, AsymmetricPadding) {
  nn::ConvLayerParams p = layer_of(1, 2, 3, 9, 3);
  p.pad_h = 2;
  p.pad_w = 0;
  p.validate();
  expect_modes_equivalent(small_config(), p, 21);
  p.in_width = 12;
  p.pad_h = 0;
  p.pad_w = 1;
  p.validate();
  expect_modes_equivalent(small_config(), p, 22);
}

TEST(ExecModeEquivalence, StagedPsumStorage) {
  AcceleratorConfig cfg = small_config();
  cfg.psum_storage = PsumStorage::kStaged16;
  expect_modes_equivalent(cfg, layer_of(1, 3, 2, 8, 3), 31);
  expect_modes_equivalent(cfg, layer_of(2, 2, 3, 9, 3, 1, 1), 32);
  expect_modes_equivalent(cfg, layer_of(1, 2, 2, 11, 5, 2, 2), 33);
}

TEST(ExecModeEquivalence, SingleChannelStreaming) {
  AcceleratorConfig cfg = small_config();
  cfg.array.dual_channel = false;
  expect_modes_equivalent(cfg, layer_of(1, 2, 2, 8, 3), 41);
  expect_modes_equivalent(cfg, layer_of(1, 1, 2, 10, 5), 42);
}

TEST(ExecModeEquivalence, BiasApplied) {
  Tensor<std::int16_t> bias(Shape{2});
  bias.at_flat(0) = 100;
  bias.at_flat(1) = -50;
  expect_modes_equivalent(small_config(), layer_of(1, 1, 2, 6, 3), 51, &bias);
  AcceleratorConfig staged = small_config();
  staged.psum_storage = PsumStorage::kStaged16;
  expect_modes_equivalent(staged, layer_of(1, 1, 2, 6, 3), 52, &bias);
}

TEST(ExecModeEquivalence, MultipleCTilesWithPsumSpill) {
  // channels_per_group beyond the kMemory residency forces c_tiles > 1
  // and the DRAM psum spill between residencies.
  AcceleratorConfig cfg = small_config(64);
  cfg.array.kmem_words_per_pe = 4;
  const auto p = layer_of(1, 8, 3, 7, 3);
  ChainAccelerator probe(cfg);
  ASSERT_GT(probe.plan(p).c_tiles, 1);
  expect_modes_equivalent(cfg, p, 61);
}

TEST(ExecModeEquivalence, BatchExecutorShardsAnalytically) {
  // Analytical mode under the worker pool: merged shard results must
  // equal the serial cycle-accurate run bit for bit.
  const auto p = layer_of(5, 2, 3, 9, 3, 1, 1);
  const TestData d = make_data(p, 71);
  AcceleratorConfig cfg = small_config();
  cfg.exec_mode = ExecMode::kCycleAccurate;
  ChainAccelerator cycle(cfg);
  const LayerRunResult rc = cycle.run_layer(p, d.ifmaps, d.kernels);

  cfg.exec_mode = ExecMode::kAnalytical;
  for (const std::int64_t workers : {1, 2, 4}) {
    BatchExecutor exec(cfg, {.num_workers = workers});
    const LayerRunResult ra = exec.run_layer(p, d.ifmaps, d.kernels);
    EXPECT_EQ(ra.ofmaps, rc.ofmaps) << workers << " workers";
    EXPECT_EQ(ra.accumulators, rc.accumulators) << workers << " workers";
    EXPECT_EQ(ra.stats.total_cycles(), rc.stats.total_cycles())
        << workers << " workers";
    EXPECT_EQ(ra.traffic.dram_bytes, rc.traffic.dram_bytes)
        << workers << " workers";
    EXPECT_EQ(ra.traffic.kmemory_bytes, rc.traffic.kmemory_bytes)
        << workers << " workers";
    EXPECT_EQ(ra.traffic.imemory_bytes, rc.traffic.imemory_bytes)
        << workers << " workers";
    EXPECT_EQ(ra.traffic.omemory_bytes, rc.traffic.omemory_bytes)
        << workers << " workers";
  }
}

TEST(ExecModeEquivalence, NetworkRunnerOverride) {
  // A cycle-accurate-configured accelerator profiles a small network on
  // the analytical path via the per-run override; totals must agree.
  nn::NetworkModel net;
  net.name = "tiny";
  net.conv_layers = {layer_of(1, 2, 3, 10, 3, 1, 1),
                     layer_of(1, 3, 4, 10, 3)};
  Rng rng(81);
  Tensor<std::int16_t> input(Shape{2, 2, 10, 10});
  input.fill_random(rng, -80, 80);

  const energy::EnergyModel energy = energy::EnergyModel::paper_calibrated();
  AcceleratorConfig cfg = small_config();

  ChainAccelerator acc_cycle(cfg);
  NetworkRunner runner_cycle(acc_cycle, energy);
  const NetworkRunResult rc = runner_cycle.run(net, input, {});

  ChainAccelerator acc_fast(cfg);
  NetworkRunner runner_fast(acc_fast, energy);
  NetworkRunOptions fast_opts;
  fast_opts.exec_mode = ExecMode::kAnalytical;
  const NetworkRunResult ra = runner_fast.run(net, input, fast_opts);

  EXPECT_TRUE(rc.all_verified());
  EXPECT_TRUE(ra.all_verified());
  EXPECT_EQ(ra.final_activations, rc.final_activations);
  ASSERT_EQ(ra.layers.size(), rc.layers.size());
  for (std::size_t i = 0; i < ra.layers.size(); ++i) {
    EXPECT_EQ(ra.layers[i].run.ofmaps, rc.layers[i].run.ofmaps) << i;
    EXPECT_EQ(ra.layers[i].run.stats.total_cycles(),
              rc.layers[i].run.stats.total_cycles())
        << i;
    EXPECT_EQ(ra.layers[i].run.traffic.dram_bytes,
              rc.layers[i].run.traffic.dram_bytes)
        << i;
  }
  EXPECT_DOUBLE_EQ(ra.total_seconds(), rc.total_seconds());
}

TEST(ExecModeEquivalence, DerivedFiguresMatch) {
  // seconds / throughput / utilization flow from cycles, so they must be
  // identical too.
  const auto p = layer_of(2, 2, 3, 9, 3, 1, 1);
  const TestData d = make_data(p, 91);
  AcceleratorConfig cfg = small_config();
  ChainAccelerator cycle(cfg);
  cfg.exec_mode = ExecMode::kAnalytical;
  ChainAccelerator fast(cfg);
  const LayerRunResult rc = cycle.run_layer(p, d.ifmaps, d.kernels);
  const LayerRunResult ra = fast.run_layer(p, d.ifmaps, d.kernels);
  EXPECT_DOUBLE_EQ(ra.seconds(), rc.seconds());
  EXPECT_DOUBLE_EQ(ra.achieved_ops_per_s(), rc.achieved_ops_per_s());
  EXPECT_DOUBLE_EQ(ra.utilization(), rc.utilization());
}

}  // namespace
}  // namespace chainnn::chain
