// FSM execution-procedure tests (§III.B): "1) The finite-state machine is
// initialized ... 2) It starts to load related kernels ... 3) The ifmaps
// are continuously streamed in".
#include <gtest/gtest.h>

#include "chain/accelerator.hpp"
#include "chain/controller.hpp"
#include "common/rng.hpp"

namespace chainnn::chain {
namespace {

struct Fixture {
  nn::ConvLayerParams layer;
  Tensor<std::int16_t> x{Shape{1}};
  Tensor<std::int16_t> w{Shape{1}};
  AcceleratorConfig cfg;

  explicit Fixture(std::int64_t m = 4) {
    layer.name = "fsm";
    layer.in_channels = 2;
    layer.out_channels = m;
    layer.in_height = layer.in_width = 8;
    layer.kernel = 3;
    layer.validate();
    Rng rng(1);
    x = Tensor<std::int16_t>(Shape{1, 2, 8, 8});
    w = Tensor<std::int16_t>(Shape{m, 2, 3, 3});
    x.fill_random(rng, -16, 16);
    w.fill_random(rng, -4, 4);
    cfg.array.num_pes = 18;  // two primitives
    cfg.array.kmem_words_per_pe = 8;
  }
};

TEST(ControllerFsm, SequenceStartsWithLoadAndEndsIdle) {
  Fixture f;
  mem::MemoryHierarchy hierarchy(f.cfg.memory);
  const auto plan = dataflow::plan_layer(f.layer, f.cfg.array, f.cfg.memory);
  LayerController ctrl(f.cfg, plan, hierarchy);
  RunStats stats;
  (void)ctrl.run(f.x, f.w, stats);

  const auto& trace = ctrl.fsm_trace();
  ASSERT_GE(trace.size(), 4u);
  EXPECT_EQ(trace.front(), ControllerState::kLoadKernels);
  EXPECT_EQ(trace[trace.size() - 2], ControllerState::kDrain);
  EXPECT_EQ(trace.back(), ControllerState::kIdle);
  EXPECT_EQ(ctrl.state(), ControllerState::kIdle);
}

TEST(ControllerFsm, OneLoadPerMGroupResidency) {
  Fixture f(5);  // 5 kernels, 2 primitives -> 3 m-groups
  mem::MemoryHierarchy hierarchy(f.cfg.memory);
  const auto plan = dataflow::plan_layer(f.layer, f.cfg.array, f.cfg.memory);
  ASSERT_EQ(plan.m_groups, 3);
  LayerController ctrl(f.cfg, plan, hierarchy);
  RunStats stats;
  (void)ctrl.run(f.x, f.w, stats);

  std::int64_t loads = 0;
  for (const ControllerState s : ctrl.fsm_trace())
    if (s == ControllerState::kLoadKernels) ++loads;
  EXPECT_EQ(loads, 3);
}

TEST(ControllerFsm, OneStreamStatePerPass) {
  Fixture f;
  mem::MemoryHierarchy hierarchy(f.cfg.memory);
  const auto plan = dataflow::plan_layer(f.layer, f.cfg.array, f.cfg.memory);
  LayerController ctrl(f.cfg, plan, hierarchy);
  RunStats stats;
  (void)ctrl.run(f.x, f.w, stats);

  std::int64_t streams = 0;
  for (const ControllerState s : ctrl.fsm_trace())
    if (s == ControllerState::kStream) ++streams;
  EXPECT_EQ(streams, stats.passes);
}

TEST(ControllerFsm, StateNames) {
  EXPECT_STREQ(state_name(ControllerState::kIdle), "IDLE");
  EXPECT_STREQ(state_name(ControllerState::kLoadKernels), "LOAD_KERNELS");
  EXPECT_STREQ(state_name(ControllerState::kStream), "STREAM");
  EXPECT_STREQ(state_name(ControllerState::kDrain), "DRAIN");
}

TEST(ControllerFsm, OmemoryReservationReleasedAtEnd) {
  Fixture f;
  mem::MemoryHierarchy hierarchy(f.cfg.memory);
  const auto plan = dataflow::plan_layer(f.layer, f.cfg.array, f.cfg.memory);
  LayerController ctrl(f.cfg, plan, hierarchy);
  RunStats stats;
  (void)ctrl.run(f.x, f.w, stats);
  EXPECT_EQ(hierarchy.omemory().reserved_bytes(), 0u);
}

TEST(ControllerFsm, OversizedBlockRejectedByPlan) {
  // A layer whose single-kernel block partials exceed oMemory must be
  // rejected at planning time (capacity is a hard constraint).
  nn::ConvLayerParams wide;
  wide.name = "wide";
  wide.in_channels = 1;
  wide.out_channels = 1;
  wide.in_height = 40;
  wide.in_width = 20000;
  wide.kernel = 3;
  wide.pad = 1;
  wide.validate();
  mem::HierarchyConfig mem_cfg;  // 25KB oMemory < 3*20000*2B
  EXPECT_THROW(
      (void)dataflow::plan_layer(wide, dataflow::ArrayShape{}, mem_cfg),
      std::logic_error);
}

}  // namespace
}  // namespace chainnn::chain
