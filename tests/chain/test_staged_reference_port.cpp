// Bit-identity regression for the raw-pointer port of staged_reference
// (the kStaged16 analytical path): the old accessor-based loop nest is
// kept here as the oracle and the production implementation must match
// it exactly — including pass order, per-pass 16-bit narrowing and the
// saturating staged accumulation — across strides, phases, groups,
// asymmetric padding, c-tiling and formats with too little headroom.
#include <gtest/gtest.h>

#include <algorithm>

#include "chain/accelerator.hpp"
#include "common/rng.hpp"
#include "dataflow/plan.hpp"

namespace chainnn::chain {
namespace {

// The pre-port implementation, verbatim (accessor-based loop nest with
// per-tap padding tests).
Tensor<std::int64_t> staged_reference_accessor(
    const AcceleratorConfig& cfg, const dataflow::ExecutionPlan& plan,
    const Tensor<std::int16_t>& ifmaps, const Tensor<std::int16_t>& kernels) {
  const nn::ConvLayerParams& layer = plan.layer;
  layer.validate();
  const int acc_frac = cfg.ifmap_fmt.frac_bits + cfg.kernel_fmt.frac_bits;
  Tensor<std::int64_t> partials(Shape{layer.batch, layer.out_channels,
                                      layer.out_height(), layer.out_width()});

  const std::int64_t m_per_g = layer.out_channels_per_group();
  const std::int64_t cg = layer.channels_per_group();

  for (std::int64_t n = 0; n < layer.batch; ++n) {
    for (std::int64_t m = 0; m < layer.out_channels; ++m) {
      const std::int64_t g = m / m_per_g;
      for (std::int64_t oy = 0; oy < layer.out_height(); ++oy) {
        for (std::int64_t ox = 0; ox < layer.out_width(); ++ox) {
          std::int64_t partial = 0;
          for (std::int64_t ct = 0; ct < plan.c_tiles; ++ct) {
            const std::int64_t c_base = ct * plan.c_tile;
            const std::int64_t c_limit = std::min(plan.c_tile, cg - c_base);
            for (const dataflow::SubConvPlan& sp : plan.subconvs) {
              const dataflow::SubConv& sub = sp.sub;
              for (std::int64_t cl = 0; cl < c_limit; ++cl) {
                const std::int64_t c = c_base + cl;
                const std::int64_t ic = g * cg + c;
                std::int64_t psum = 0;
                for (std::int64_t sky = 0; sky < sub.kernel_rows; ++sky) {
                  for (std::int64_t skx = 0; skx < sub.kernel_cols; ++skx) {
                    const std::int64_t ky =
                        sub.phase_row + layer.stride * sky;
                    const std::int64_t kx =
                        sub.phase_col + layer.stride * skx;
                    const std::int64_t iy =
                        oy * layer.stride + ky - layer.pad_rows();
                    const std::int64_t ix =
                        ox * layer.stride + kx - layer.pad_cols();
                    if (iy < 0 || iy >= layer.in_height || ix < 0 ||
                        ix >= layer.in_width)
                      continue;
                    psum += static_cast<std::int64_t>(
                                ifmaps.at(n, ic, iy, ix)) *
                            static_cast<std::int64_t>(
                                kernels.at(m, c, ky, kx));
                  }
                }
                const std::int16_t narrowed = fixed::narrow_to_fixed16(
                    psum, acc_frac, cfg.psum_fmt, cfg.rounding,
                    fixed::Overflow::kSaturate);
                partial = std::clamp<std::int64_t>(partial + narrowed,
                                                   -32768, 32767);
              }
            }
          }
          partials.at(n, m, oy, ox) = partial;
        }
      }
    }
  }
  return partials;
}

struct Case {
  const char* name;
  nn::ConvLayerParams layer;
  AcceleratorConfig cfg;
};

void expect_port_identical(const Case& c) {
  SCOPED_TRACE(c.name);
  nn::ConvLayerParams layer = c.layer;
  layer.name = c.name;
  layer.validate();

  Rng rng(0x57A6EDULL);
  Tensor<std::int16_t> x(
      Shape{layer.batch, layer.in_channels, layer.in_height, layer.in_width});
  Tensor<std::int16_t> w(Shape{layer.out_channels,
                               layer.channels_per_group(), layer.kernel,
                               layer.kernel});
  x.fill_random(rng, -512, 512);
  w.fill_random(rng, -128, 128);

  const dataflow::ExecutionPlan plan =
      dataflow::plan_layer(layer, c.cfg.array, c.cfg.memory);
  const auto expected = staged_reference_accessor(c.cfg, plan, x, w);
  const auto ported = staged_reference(c.cfg, plan, x, w);
  EXPECT_TRUE(ported == expected);
}

AcceleratorConfig staged_cfg() {
  AcceleratorConfig cfg;
  cfg.psum_storage = PsumStorage::kStaged16;
  return cfg;
}

TEST(StagedReferencePort, Stride1Kernel3) {
  Case c{"s1k3", {}, staged_cfg()};
  c.layer.batch = 2;
  c.layer.in_channels = 3;
  c.layer.out_channels = 4;
  c.layer.in_height = c.layer.in_width = 12;
  c.layer.kernel = 3;
  c.layer.pad = 1;
  expect_port_identical(c);
}

TEST(StagedReferencePort, StridedMultiPhase) {
  // AlexNet-conv1-like: stride 4 splits K=11 into 16 phases of mixed
  // sub-kernel sizes.
  Case c{"s4k11", {}, staged_cfg()};
  c.layer.in_channels = 3;
  c.layer.out_channels = 2;
  c.layer.in_height = c.layer.in_width = 35;
  c.layer.kernel = 11;
  c.layer.stride = 4;
  expect_port_identical(c);
}

TEST(StagedReferencePort, GroupedAsymmetricPadding) {
  Case c{"g2pad", {}, staged_cfg()};
  c.layer.in_channels = 4;
  c.layer.out_channels = 6;
  c.layer.groups = 2;
  c.layer.in_height = 9;
  c.layer.in_width = 14;
  c.layer.kernel = 3;
  c.layer.pad_h = 2;
  c.layer.pad_w = 0;
  expect_port_identical(c);
}

TEST(StagedReferencePort, ChannelTiling) {
  // kMemory shrunk so c_tile < channels_per_group: the pass order gains
  // an outer c_tile loop the port must replay in the same order.
  Case c{"ctile", {}, staged_cfg()};
  c.layer.in_channels = 12;
  c.layer.out_channels = 2;
  c.layer.in_height = c.layer.in_width = 8;
  c.layer.kernel = 3;
  c.layer.pad = 1;
  c.cfg.array.kmem_words_per_pe = 4;  // c_tile = 4 -> 3 tiles
  expect_port_identical(c);
}

TEST(StagedReferencePort, SaturatingPsumFormat) {
  // Small-headroom staged format: per-pass narrowing saturates and the
  // staged adds clip, so any pass-order or rounding drift shows up.
  Case c{"sat", {}, staged_cfg()};
  c.layer.in_channels = 8;
  c.layer.out_channels = 3;
  c.layer.in_height = c.layer.in_width = 10;
  c.layer.kernel = 5;
  c.layer.pad = 2;
  c.cfg.psum_fmt = fixed::FixedFormat{12};
  expect_port_identical(c);
}

TEST(StagedReferencePort, OneByOneKernelAndStrideOverKernel) {
  Case c{"k1s2", {}, staged_cfg()};
  c.layer.in_channels = 5;
  c.layer.out_channels = 4;
  c.layer.in_height = c.layer.in_width = 7;
  c.layer.kernel = 1;
  c.layer.stride = 2;
  expect_port_identical(c);

  Case d{"k2s3", {}, staged_cfg()};
  d.layer.in_channels = 2;
  d.layer.out_channels = 2;
  d.layer.in_height = d.layer.in_width = 11;
  d.layer.kernel = 2;
  d.layer.stride = 3;
  expect_port_identical(d);
}

}  // namespace
}  // namespace chainnn::chain
