#include "chain/network_runner.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace chainnn::chain {
namespace {

nn::NetworkModel tiny_net() {
  nn::NetworkModel net;
  net.name = "tiny";
  nn::ConvLayerParams l1;
  l1.name = "c1";
  l1.in_channels = 1;
  l1.out_channels = 4;
  l1.in_height = l1.in_width = 12;
  l1.kernel = 3;
  l1.pad = 1;
  nn::ConvLayerParams l2;
  l2.name = "c2";
  l2.in_channels = 4;
  l2.out_channels = 6;
  l2.in_height = l2.in_width = 6;  // resolved at run time anyway
  l2.kernel = 3;
  l2.pad = 1;
  net.conv_layers = {l1, l2};
  return net;
}

AcceleratorConfig small_cfg() {
  AcceleratorConfig cfg;
  cfg.array.num_pes = 64;
  cfg.array.kmem_words_per_pe = 32;
  return cfg;
}

TEST(NetworkRunner, RunsAndVerifiesTwoLayers) {
  AcceleratorConfig cfg = small_cfg();
  ChainAccelerator acc(cfg);
  const auto model = energy::EnergyModel::paper_calibrated();
  NetworkRunner runner(acc, model);

  Rng rng(3);
  Tensor<std::int16_t> input(Shape{1, 1, 12, 12});
  input.fill_random(rng, -64, 64);

  NetworkRunOptions opts;
  opts.inter_layer = {InterLayerOp{true, true, nn::PoolParams{2, 2, 0}},
                      InterLayerOp{true, false, {}}};
  const NetworkRunResult res = runner.run(tiny_net(), input, opts);

  ASSERT_EQ(res.layers.size(), 2u);
  EXPECT_TRUE(res.all_verified());
  // Layer 2's input size was resolved from the pooled layer-1 output.
  EXPECT_EQ(res.layers[1].layer.in_height, 6);
  // Final activations: 6 channels, 6x6 spatial (pad-1 conv keeps size).
  EXPECT_EQ(res.final_activations.shape(), Shape({1, 6, 6, 6}));
  EXPECT_GT(res.total_seconds(), 0.0);
  EXPECT_GT(res.total_energy_j(), 0.0);
  EXPECT_GT(res.kernel_load_seconds(), 0.0);
  EXPECT_LT(res.kernel_load_seconds(), res.total_seconds());
}

TEST(NetworkRunner, FpsImprovesWithBatchAmortization) {
  AcceleratorConfig cfg = small_cfg();
  ChainAccelerator acc(cfg);
  const auto model = energy::EnergyModel::paper_calibrated();
  NetworkRunner runner(acc, model);

  Rng rng(4);
  Tensor<std::int16_t> input(Shape{1, 1, 12, 12});
  input.fill_random(rng, -32, 32);
  const NetworkRunResult res = runner.run(tiny_net(), input);
  EXPECT_GT(res.fps(128), res.fps(1));
}

TEST(NetworkRunner, ChannelMismatchRejected) {
  AcceleratorConfig cfg = small_cfg();
  ChainAccelerator acc(cfg);
  const auto model = energy::EnergyModel::paper_calibrated();
  NetworkRunner runner(acc, model);
  Tensor<std::int16_t> bad_input(Shape{1, 3, 12, 12});  // net expects 1
  EXPECT_THROW((void)runner.run(tiny_net(), bad_input), std::logic_error);
}

TEST(NetworkRunner, CustomWeightInitUsed) {
  AcceleratorConfig cfg = small_cfg();
  ChainAccelerator acc(cfg);
  const auto model = energy::EnergyModel::paper_calibrated();
  NetworkRunner runner(acc, model);

  Tensor<std::int16_t> input(Shape{1, 1, 12, 12}, std::int16_t{256});
  NetworkRunOptions opts;
  opts.weight_init = [](std::int64_t, Tensor<std::int16_t>& w) {
    w.fill(0);  // all-zero kernels -> all-zero outputs
  };
  const NetworkRunResult res = runner.run(tiny_net(), input, opts);
  for (const std::int16_t v : res.final_activations.data())
    EXPECT_EQ(v, 0);
}

TEST(NetworkRunner, SkipVerificationStillRuns) {
  AcceleratorConfig cfg = small_cfg();
  ChainAccelerator acc(cfg);
  const auto model = energy::EnergyModel::paper_calibrated();
  NetworkRunner runner(acc, model);
  Rng rng(5);
  Tensor<std::int16_t> input(Shape{1, 1, 12, 12});
  input.fill_random(rng, -8, 8);
  NetworkRunOptions opts;
  opts.verify_against_golden = false;
  const NetworkRunResult res = runner.run(tiny_net(), input, opts);
  EXPECT_TRUE(res.all_verified());  // vacuously marked verified
}

TEST(NetworkRunner, CancelCheckStopsBetweenLayers) {
  AcceleratorConfig cfg = small_cfg();
  ChainAccelerator acc(cfg);
  const auto model = energy::EnergyModel::paper_calibrated();
  NetworkRunner runner(acc, model);

  Rng rng(3);
  Tensor<std::int16_t> input(Shape{1, 1, 12, 12});
  input.fill_random(rng, -64, 64);

  // Trip the token while layer 0's weights are drawn: the checkpoint
  // before layer 1 must abort the run with exactly one layer executed.
  bool cancel = false;
  NetworkRunOptions opts;
  opts.weight_init = [&cancel](std::int64_t layer_index,
                               Tensor<std::int16_t>& kernels) {
    if (layer_index == 0) cancel = true;
    Rng wrng(9);
    kernels.fill_random(wrng, -16, 16);
  };
  opts.cancel_check = [&cancel] { return cancel; };
  try {
    (void)runner.run(tiny_net(), input, opts);
    FAIL() << "expected RunCancelled";
  } catch (const RunCancelled& cancelled) {
    EXPECT_EQ(cancelled.completed_layers(), 1);
  }

  // A pre-tripped token cancels before any layer runs.
  opts.weight_init = nullptr;
  try {
    (void)runner.run(tiny_net(), input, opts);
    FAIL() << "expected RunCancelled";
  } catch (const RunCancelled& cancelled) {
    EXPECT_EQ(cancelled.completed_layers(), 0);
  }

  // And an untripped token leaves the run untouched.
  cancel = false;
  const NetworkRunResult res = runner.run(tiny_net(), input, opts);
  EXPECT_EQ(res.layers.size(), 2u);
}

}  // namespace
}  // namespace chainnn::chain
