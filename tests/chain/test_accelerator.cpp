#include "chain/accelerator.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/golden.hpp"

namespace chainnn::chain {
namespace {

// Small chain so tests exercise multiple m-groups quickly.
AcceleratorConfig small_config(std::int64_t pes = 64) {
  AcceleratorConfig cfg;
  cfg.array.num_pes = pes;
  cfg.array.kmem_words_per_pe = 64;
  return cfg;
}

nn::ConvLayerParams layer_of(std::int64_t n, std::int64_t c, std::int64_t m,
                             std::int64_t hw, std::int64_t k,
                             std::int64_t stride = 1, std::int64_t pad = 0,
                             std::int64_t groups = 1) {
  nn::ConvLayerParams p;
  p.name = "test";
  p.batch = n;
  p.in_channels = c;
  p.out_channels = m;
  p.in_height = p.in_width = hw;
  p.kernel = k;
  p.stride = stride;
  p.pad = pad;
  p.groups = groups;
  p.validate();
  return p;
}

struct TestData {
  Tensor<std::int16_t> ifmaps;
  Tensor<std::int16_t> kernels;
};

TestData make_data(const nn::ConvLayerParams& p, std::uint64_t seed) {
  Rng rng(seed);
  TestData d{
      Tensor<std::int16_t>(
          Shape{p.batch, p.in_channels, p.in_height, p.in_width}),
      Tensor<std::int16_t>(
          Shape{p.out_channels, p.channels_per_group(), p.kernel, p.kernel})};
  d.ifmaps.fill_random(rng, -100, 100);
  d.kernels.fill_random(rng, -20, 20);
  return d;
}

TEST(Accelerator, BitExactVsGoldenBasic3x3) {
  const auto p = layer_of(1, 2, 3, 8, 3);
  const TestData d = make_data(p, 1);
  ChainAccelerator acc(small_config());
  const LayerRunResult res = acc.run_layer(p, d.ifmaps, d.kernels);
  const Tensor<std::int64_t> golden =
      nn::conv2d_fixed_accum(p, d.ifmaps, d.kernels);
  EXPECT_EQ(res.accumulators, golden);
}

TEST(Accelerator, BitExactWithPadding) {
  const auto p = layer_of(1, 2, 2, 7, 3, 1, 1);
  const TestData d = make_data(p, 2);
  ChainAccelerator acc(small_config());
  const LayerRunResult res = acc.run_layer(p, d.ifmaps, d.kernels);
  EXPECT_EQ(res.accumulators, nn::conv2d_fixed_accum(p, d.ifmaps, d.kernels));
}

TEST(Accelerator, BitExactStride4LikeAlexNetConv1) {
  // Phase decomposition path: K=11, S=4 (16 sub-convolutions).
  const auto p = layer_of(1, 1, 2, 27, 11, 4);
  const TestData d = make_data(p, 3);
  ChainAccelerator acc(small_config(256));
  const LayerRunResult res = acc.run_layer(p, d.ifmaps, d.kernels);
  EXPECT_EQ(res.accumulators, nn::conv2d_fixed_accum(p, d.ifmaps, d.kernels));
}

TEST(Accelerator, BitExactStride2WithPad) {
  const auto p = layer_of(1, 2, 2, 11, 5, 2, 2);
  const TestData d = make_data(p, 4);
  ChainAccelerator acc(small_config(128));
  const LayerRunResult res = acc.run_layer(p, d.ifmaps, d.kernels);
  EXPECT_EQ(res.accumulators, nn::conv2d_fixed_accum(p, d.ifmaps, d.kernels));
}

TEST(Accelerator, BitExactGroupedConv) {
  const auto p = layer_of(1, 4, 6, 9, 3, 1, 1, 2);
  const TestData d = make_data(p, 5);
  ChainAccelerator acc(small_config());
  const LayerRunResult res = acc.run_layer(p, d.ifmaps, d.kernels);
  EXPECT_EQ(res.accumulators, nn::conv2d_fixed_accum(p, d.ifmaps, d.kernels));
}

TEST(Accelerator, BitExactBatch) {
  const auto p = layer_of(3, 2, 2, 6, 3);
  const TestData d = make_data(p, 6);
  ChainAccelerator acc(small_config());
  const LayerRunResult res = acc.run_layer(p, d.ifmaps, d.kernels);
  EXPECT_EQ(res.accumulators, nn::conv2d_fixed_accum(p, d.ifmaps, d.kernels));
}

TEST(Accelerator, BitExact1x1Kernel) {
  const auto p = layer_of(1, 3, 4, 5, 1);
  const TestData d = make_data(p, 7);
  ChainAccelerator acc(small_config());
  const LayerRunResult res = acc.run_layer(p, d.ifmaps, d.kernels);
  EXPECT_EQ(res.accumulators, nn::conv2d_fixed_accum(p, d.ifmaps, d.kernels));
}

TEST(Accelerator, BitExactSingleChannelMode) {
  AcceleratorConfig cfg = small_config();
  cfg.array.dual_channel = false;
  const auto p = layer_of(1, 2, 2, 8, 3);
  const TestData d = make_data(p, 8);
  ChainAccelerator acc(cfg);
  const LayerRunResult res = acc.run_layer(p, d.ifmaps, d.kernels);
  EXPECT_EQ(res.accumulators, nn::conv2d_fixed_accum(p, d.ifmaps, d.kernels));
}

TEST(Accelerator, SingleChannelCostsKTimesCycles) {
  const auto p = layer_of(1, 1, 1, 20, 3);
  const TestData d = make_data(p, 9);
  AcceleratorConfig dual = small_config();
  AcceleratorConfig single = small_config();
  single.array.dual_channel = false;
  ChainAccelerator a_dual(dual);
  ChainAccelerator a_single(single);
  const auto r_dual = a_dual.run_layer(p, d.ifmaps, d.kernels);
  const auto r_single = a_single.run_layer(p, d.ifmaps, d.kernels);
  EXPECT_EQ(r_single.accumulators, r_dual.accumulators);
  const double ratio =
      static_cast<double>(r_single.stats.stream_cycles) /
      static_cast<double>(r_dual.stats.stream_cycles);
  EXPECT_NEAR(ratio, 3.0, 0.35);
}

TEST(Accelerator, MeasuredCyclesMatchPlanClosedForm) {
  for (const auto& p :
       {layer_of(1, 2, 3, 9, 3), layer_of(2, 3, 5, 12, 5, 1, 2),
        layer_of(1, 2, 2, 13, 11, 4), layer_of(1, 4, 4, 10, 3, 1, 1, 2)}) {
    const TestData d = make_data(p, 10);
    ChainAccelerator acc(small_config(256));
    const LayerRunResult res = acc.run_layer(p, d.ifmaps, d.kernels);
    const dataflow::ExecutionPlan& plan = res.plan;
    EXPECT_EQ(res.stats.stream_cycles + res.stats.drain_cycles,
              plan.cycles_per_image() * p.batch -
                  plan.drain_cycles() * (p.batch - 1))
        << p.to_string();
    EXPECT_EQ(res.stats.kernel_load_cycles,
              plan.kernel_load_cycles_per_batch())
        << p.to_string();
  }
}

TEST(Accelerator, MeasuredTrafficMatchesAnalyticModel) {
  for (const auto& p :
       {layer_of(1, 2, 3, 9, 3), layer_of(2, 2, 4, 11, 5, 1, 2),
        layer_of(1, 2, 2, 13, 11, 4)}) {
    const TestData d = make_data(p, 11);
    ChainAccelerator acc(small_config(256));
    const LayerRunResult res = acc.run_layer(p, d.ifmaps, d.kernels);
    const dataflow::LayerTrafficModel model =
        dataflow::model_traffic(res.plan, p.batch,
                                {2, acc.config().memory.imemory_bytes, false});
    EXPECT_EQ(res.traffic.imemory_bytes,
              model.imem_reads + model.imem_writes)
        << p.to_string();
    EXPECT_EQ(res.traffic.kmemory_bytes,
              model.kmem_reads + model.kmem_writes)
        << p.to_string();
    EXPECT_EQ(res.traffic.omemory_bytes,
              model.omem_reads + model.omem_writes)
        << p.to_string();
    EXPECT_EQ(res.traffic.dram_bytes, model.dram_total()) << p.to_string();
  }
}

TEST(Accelerator, OfmapsMatchGoldenRequantization) {
  const auto p = layer_of(1, 2, 3, 8, 3);
  const TestData d = make_data(p, 12);
  ChainAccelerator acc(small_config());
  const LayerRunResult res = acc.run_layer(p, d.ifmaps, d.kernels);
  const nn::FixedConvResult golden = nn::conv2d_fixed(
      p, d.ifmaps, d.kernels, acc.config().ifmap_fmt,
      acc.config().kernel_fmt, acc.config().ofmap_fmt);
  EXPECT_EQ(res.ofmaps, golden.ofmaps);
}

TEST(Accelerator, BiasApplied) {
  const auto p = layer_of(1, 1, 2, 6, 3);
  const TestData d = make_data(p, 13);
  Tensor<std::int16_t> bias(Shape{2});
  bias.at_flat(0) = 100;
  bias.at_flat(1) = -50;
  ChainAccelerator acc(small_config());
  const LayerRunResult res = acc.run_layer(p, d.ifmaps, d.kernels, &bias);
  const nn::FixedConvResult golden = nn::conv2d_fixed(
      p, d.ifmaps, d.kernels, acc.config().ifmap_fmt,
      acc.config().kernel_fmt, acc.config().ofmap_fmt, &bias);
  EXPECT_EQ(res.ofmaps, golden.ofmaps);
}

TEST(Accelerator, StagedPsumMatchesStagedReference) {
  AcceleratorConfig cfg = small_config();
  cfg.psum_storage = PsumStorage::kStaged16;
  const auto p = layer_of(1, 3, 2, 8, 3);
  const TestData d = make_data(p, 14);
  ChainAccelerator acc(cfg);
  const LayerRunResult res = acc.run_layer(p, d.ifmaps, d.kernels);
  const Tensor<std::int64_t> ref =
      staged_reference(cfg, res.plan, d.ifmaps, d.kernels);
  EXPECT_EQ(res.accumulators, ref);
}

TEST(Accelerator, StagedEqualsWideWhenHeadroomSuffices) {
  // With small operands and a generous psum format, staged-16 partials
  // cannot clip, so both policies agree after requantization.
  AcceleratorConfig wide = small_config();
  AcceleratorConfig staged = small_config();
  staged.psum_storage = PsumStorage::kStaged16;
  // psum format: few fraction bits = lots of headroom.
  wide.psum_fmt = staged.psum_fmt = fixed::FixedFormat{4};
  wide.ofmap_fmt = staged.ofmap_fmt = fixed::FixedFormat{4};

  const auto p = layer_of(1, 2, 2, 7, 3);
  Rng rng(15);
  Tensor<std::int16_t> x(Shape{1, 2, 7, 7});
  Tensor<std::int16_t> w(Shape{2, 2, 3, 3});
  x.fill_random(rng, -16, 16);
  w.fill_random(rng, -4, 4);

  ChainAccelerator aw(wide);
  ChainAccelerator as(staged);
  const auto rw = aw.run_layer(p, x, w);
  const auto rs = as.run_layer(p, x, w);
  EXPECT_EQ(rw.ofmaps, rs.ofmaps);
}

TEST(Accelerator, UtilizationWithinBounds) {
  const auto p = layer_of(1, 4, 8, 16, 3);
  const TestData d = make_data(p, 16);
  ChainAccelerator acc(small_config());
  const LayerRunResult res = acc.run_layer(p, d.ifmaps, d.kernels);
  EXPECT_GT(res.utilization(), 0.3);
  EXPECT_LE(res.utilization(), 1.0);
  EXPECT_GT(res.seconds(), 0.0);
  EXPECT_GT(res.achieved_ops_per_s(), 0.0);
}

TEST(Accelerator, WindowsCollectedMatchesPlan) {
  const auto p = layer_of(2, 3, 5, 10, 3);
  const TestData d = make_data(p, 17);
  ChainAccelerator acc(small_config());
  const LayerRunResult res = acc.run_layer(p, d.ifmaps, d.kernels);
  EXPECT_EQ(res.stats.windows_collected,
            res.plan.windows_per_image() * p.batch);
  EXPECT_EQ(res.stats.macs_performed, p.macs_total());
}

}  // namespace
}  // namespace chainnn::chain
