// Determinism and idempotence of the simulator: identical inputs must
// produce identical results, stats and traffic across repeated runs and
// across separate accelerator instances — a prerequisite for the whole
// verification methodology (and for debugging regressions by diffing
// runs).
#include <gtest/gtest.h>

#include "chain/accelerator.hpp"
#include "common/rng.hpp"

namespace chainnn::chain {
namespace {

struct DetFixture {
  nn::ConvLayerParams layer;
  Tensor<std::int16_t> x{Shape{1}};
  Tensor<std::int16_t> w{Shape{1}};
  AcceleratorConfig cfg;

  DetFixture() {
    layer.name = "det";
    layer.batch = 2;
    layer.in_channels = 3;
    layer.out_channels = 5;
    layer.in_height = layer.in_width = 9;
    layer.kernel = 3;
    layer.pad = 1;
    layer.validate();
    Rng rng(123);
    x = Tensor<std::int16_t>(Shape{2, 3, 9, 9});
    w = Tensor<std::int16_t>(Shape{5, 3, 3, 3});
    x.fill_random(rng, -40, 40);
    w.fill_random(rng, -10, 10);
    cfg.array.num_pes = 45;  // five 9-PE primitives
    cfg.array.kmem_words_per_pe = 8;
  }
};

TEST(Determinism, RepeatedRunsIdentical) {
  DetFixture s;
  ChainAccelerator acc(s.cfg);
  const LayerRunResult a = acc.run_layer(s.layer, s.x, s.w);
  const LayerRunResult b = acc.run_layer(s.layer, s.x, s.w);
  EXPECT_EQ(a.accumulators, b.accumulators);
  EXPECT_EQ(a.ofmaps, b.ofmaps);
  EXPECT_EQ(a.stats.stream_cycles, b.stats.stream_cycles);
  EXPECT_EQ(a.stats.kernel_load_cycles, b.stats.kernel_load_cycles);
  EXPECT_EQ(a.stats.windows_collected, b.stats.windows_collected);
  EXPECT_EQ(a.stats.macs_performed, b.stats.macs_performed);
}

TEST(Determinism, SeparateInstancesIdentical) {
  DetFixture s;
  ChainAccelerator acc1(s.cfg);
  ChainAccelerator acc2(s.cfg);
  const LayerRunResult a = acc1.run_layer(s.layer, s.x, s.w);
  const LayerRunResult b = acc2.run_layer(s.layer, s.x, s.w);
  EXPECT_EQ(a.accumulators, b.accumulators);
  EXPECT_EQ(a.traffic.imemory_bytes, b.traffic.imemory_bytes);
  EXPECT_EQ(a.traffic.omemory_bytes, b.traffic.omemory_bytes);
  EXPECT_EQ(a.traffic.kmemory_bytes, b.traffic.kmemory_bytes);
  EXPECT_EQ(a.traffic.dram_bytes, b.traffic.dram_bytes);
}

TEST(Determinism, TrafficAccumulatesAcrossRunsOnSharedHierarchy) {
  // The hierarchy counters are cumulative; per-run traffic is reported
  // as a delta, so two identical runs report identical deltas while the
  // hierarchy totals double.
  DetFixture s;
  ChainAccelerator acc(s.cfg);
  const LayerRunResult a = acc.run_layer(s.layer, s.x, s.w);
  const std::uint64_t after_one = acc.hierarchy().imemory().stats().reads;
  const LayerRunResult b = acc.run_layer(s.layer, s.x, s.w);
  EXPECT_EQ(a.traffic.imemory_bytes, b.traffic.imemory_bytes);
  EXPECT_EQ(acc.hierarchy().imemory().stats().reads, 2 * after_one);
}

TEST(Determinism, ResultsIndependentOfUnrelatedConfig) {
  // The FSM trace cap / rounding of unrelated operands must not alter
  // psums: changing the ofmap format only changes the narrowed view.
  DetFixture s;
  AcceleratorConfig alt = s.cfg;
  alt.ofmap_fmt = fixed::FixedFormat{4};
  ChainAccelerator acc1(s.cfg);
  ChainAccelerator acc2(alt);
  const LayerRunResult a = acc1.run_layer(s.layer, s.x, s.w);
  const LayerRunResult b = acc2.run_layer(s.layer, s.x, s.w);
  EXPECT_EQ(a.accumulators, b.accumulators);
  EXPECT_NE(a.ofmaps, b.ofmaps);  // different requantization by design
}

}  // namespace
}  // namespace chainnn::chain
