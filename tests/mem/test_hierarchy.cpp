#include "mem/hierarchy.hpp"

#include <gtest/gtest.h>

namespace chainnn::mem {
namespace {

TEST(Hierarchy, PaperCapacities) {
  // §V.B: 32KB iMemory + 295KB kMemory + 25KB oMemory = 352KB on-chip.
  MemoryHierarchy h;
  EXPECT_EQ(h.imemory().size_bytes(), 32u * 1024);
  EXPECT_EQ(h.omemory().size_bytes(), 25u * 1024);
  EXPECT_EQ(h.kmemory().size_bytes(), 295u * 1024);
  EXPECT_EQ(h.total_onchip_bytes(), 352u * 1024);
}

TEST(Hierarchy, CustomConfig) {
  HierarchyConfig cfg;
  cfg.imemory_bytes = 1024;
  cfg.omemory_bytes = 2048;
  cfg.kmemory_bytes = 4096;
  MemoryHierarchy h(cfg);
  EXPECT_EQ(h.total_onchip_bytes(), 7u * 1024);
}

TEST(Hierarchy, SnapshotDeltaIsolatesOneLayer) {
  MemoryHierarchy h;
  h.imemory().read_words(100);  // pre-existing traffic
  const HierarchySnapshot before = snapshot(h);
  h.imemory().read_words(10);
  h.omemory().write_words(5);
  h.kmemory().read_words(3);
  h.dram().read_bytes(Operand::kIfmap, 64);
  const LayerTraffic t = traffic_since(h, before, "conv1");
  EXPECT_EQ(t.layer_name, "conv1");
  EXPECT_EQ(t.imemory_bytes, 20u);  // 10 words x 2B, pre-existing excluded
  EXPECT_EQ(t.omemory_bytes, 10u);
  EXPECT_EQ(t.kmemory_bytes, 6u);
  EXPECT_EQ(t.dram_bytes, 64u);
}

TEST(Hierarchy, ResetStatsClearsAll) {
  MemoryHierarchy h;
  h.imemory().read_words(1);
  h.dram().write_bytes(Operand::kOfmap, 8);
  h.reset_stats();
  EXPECT_EQ(h.imemory().stats().total_bytes(), 0u);
  EXPECT_EQ(h.dram().stats().total_bytes(), 0u);
}

}  // namespace
}  // namespace chainnn::mem
