#include "mem/dram.hpp"

#include <gtest/gtest.h>

namespace chainnn::mem {
namespace {

TEST(Dram, PerOperandCounting) {
  DramModel d;
  d.read_bytes(Operand::kIfmap, 100);
  d.read_bytes(Operand::kKernel, 50);
  d.write_bytes(Operand::kOfmap, 25);
  EXPECT_EQ(d.stats().read_bytes[static_cast<int>(Operand::kIfmap)], 100u);
  EXPECT_EQ(d.stats().read_bytes[static_cast<int>(Operand::kKernel)], 50u);
  EXPECT_EQ(d.stats().write_bytes[static_cast<int>(Operand::kOfmap)], 25u);
  EXPECT_EQ(d.stats().total_read_bytes(), 150u);
  EXPECT_EQ(d.stats().total_write_bytes(), 25u);
  EXPECT_EQ(d.stats().total_bytes(), 175u);
}

TEST(Dram, OperandNames) {
  EXPECT_STREQ(operand_name(Operand::kIfmap), "ifmap");
  EXPECT_STREQ(operand_name(Operand::kKernel), "kernel");
  EXPECT_STREQ(operand_name(Operand::kOfmap), "ofmap");
  EXPECT_STREQ(operand_name(Operand::kPsum), "psum");
}

TEST(Dram, StatsMerge) {
  DramStats a, b;
  a.read_bytes[0] = 1;
  b.read_bytes[0] = 2;
  b.write_bytes[3] = 5;
  a.merge(b);
  EXPECT_EQ(a.read_bytes[0], 3u);
  EXPECT_EQ(a.write_bytes[3], 5u);
}

TEST(Dram, ResetStats) {
  DramModel d;
  d.read_bytes(Operand::kIfmap, 10);
  d.reset_stats();
  EXPECT_EQ(d.stats().total_bytes(), 0u);
}

}  // namespace
}  // namespace chainnn::mem
