#include "mem/sram.hpp"

#include <gtest/gtest.h>

namespace chainnn::mem {
namespace {

TEST(Sram, CountsAccessesAndBytes) {
  SramModel m("iMemory", 32 * 1024, 2);
  m.read_words(10);
  m.write_words(3);
  EXPECT_EQ(m.stats().reads, 10u);
  EXPECT_EQ(m.stats().writes, 3u);
  EXPECT_EQ(m.stats().read_bytes, 20u);
  EXPECT_EQ(m.stats().write_bytes, 6u);
  EXPECT_EQ(m.stats().total_bytes(), 26u);
}

TEST(Sram, CapacityReservation) {
  SramModel m("oMemory", 100, 2);
  m.reserve(60);
  EXPECT_EQ(m.reserved_bytes(), 60u);
  EXPECT_EQ(m.free_bytes(), 40u);
  EXPECT_THROW(m.reserve(41), std::logic_error);
  m.release(60);
  EXPECT_NO_THROW(m.reserve(100));
}

TEST(Sram, ReleaseMoreThanReservedRejected) {
  SramModel m("x", 100);
  m.reserve(10);
  EXPECT_THROW(m.release(11), std::logic_error);
}

TEST(Sram, ActivityFactor) {
  SramModel m("kMemory", 295 * 1024, 2);
  m.read_words(22);
  EXPECT_DOUBLE_EQ(m.activity_factor(1000), 0.022);
  EXPECT_DOUBLE_EQ(m.activity_factor(0), 0.0);
}

TEST(Sram, ResetStats) {
  SramModel m("x", 100);
  m.read_words(5);
  m.reset_stats();
  EXPECT_EQ(m.stats().reads, 0u);
  EXPECT_EQ(m.stats().total_bytes(), 0u);
}

TEST(SramStats, Merge) {
  SramStats a{1, 2, 2, 4};
  SramStats b{10, 20, 20, 40};
  a.merge(b);
  EXPECT_EQ(a.reads, 11u);
  EXPECT_EQ(a.writes, 22u);
  EXPECT_EQ(a.read_bytes, 22u);
  EXPECT_EQ(a.write_bytes, 44u);
}

}  // namespace
}  // namespace chainnn::mem
