// The no-hierarchy closed-form point cost (dataflow::estimate_point_cost)
// must agree with the *executed* SweepDriver rollups: cycles exactly
// (identical integer closed forms), seconds and energy to double
// round-off (identical expressions, identical evaluation order). This is
// the fidelity contract the design-space search rests on.
#include <gtest/gtest.h>

#include <vector>

#include "dataflow/point_cost.hpp"
#include "serve/router.hpp"
#include "serve/sweep_driver.hpp"

namespace chainnn::dataflow {
namespace {

nn::NetworkModel tiny_net() {
  nn::NetworkModel net;
  net.name = "tiny";
  nn::ConvLayerParams l1;
  l1.name = "c1";
  l1.in_channels = 2;
  l1.out_channels = 4;
  l1.in_height = l1.in_width = 10;
  l1.kernel = 3;
  l1.pad = 1;
  l1.validate();
  nn::ConvLayerParams l2;
  l2.name = "c2";
  l2.in_channels = 4;
  l2.out_channels = 3;
  l2.in_height = l2.in_width = 10;
  l2.kernel = 3;
  l2.pad = 1;
  l2.validate();
  net.conv_layers = {l1, l2};
  return net;
}

// Executes every default sweep point and cross-checks the closed forms
// against the rolled-up run, at the given batch.
void cross_check_at_batch(std::int64_t batch) {
  const nn::NetworkModel net = tiny_net();
  serve::SweepOptions so;
  so.batch = batch;
  serve::SweepDriver driver(net, so);
  const auto executed = driver.run(serve::default_sweep_points());
  ASSERT_FALSE(executed.empty());

  const auto& first = net.conv_layers.front();
  const std::vector<nn::ConvLayerParams> layers =
      serve::resolve_network_layers(net, batch, first.in_height,
                                    first.in_width, {});
  for (const auto& r : executed) {
    SCOPED_TRACE(r.point.label + " batch " + std::to_string(batch));
    PointCostOptions opts;
    opts.batch = batch;
    const PointCost est =
        estimate_point_cost(layers, r.point.array, mem::HierarchyConfig{},
                            opts);
    ASSERT_TRUE(est.feasible) << est.infeasible_reason;
    EXPECT_EQ(est.total_cycles, r.total_cycles);
    EXPECT_NEAR(est.seconds, r.seconds, 1e-9 * r.seconds);
    EXPECT_NEAR(est.energy_j, r.energy_j, 1e-9 * r.energy_j);
  }
}

TEST(PointCost, MatchesExecutedSweepRollupsBatch1) { cross_check_at_batch(1); }

TEST(PointCost, MatchesExecutedSweepRollupsBatch3) { cross_check_at_batch(3); }

TEST(PointCost, SingleChannelModeMatchesExecution) {
  const nn::NetworkModel net = tiny_net();
  serve::SweepDriver driver(net, {});
  ArrayShape single;
  single.dual_channel = false;
  const auto executed = driver.run({{"single", single}});
  ASSERT_EQ(executed.size(), 1u);

  const auto& first = net.conv_layers.front();
  const PointCost est = estimate_point_cost(
      serve::resolve_network_layers(net, 1, first.in_height, first.in_width,
                                    {}),
      single, mem::HierarchyConfig{});
  ASSERT_TRUE(est.feasible);
  EXPECT_EQ(est.total_cycles, executed[0].total_cycles);
  EXPECT_NEAR(est.energy_j, executed[0].energy_j,
              1e-9 * executed[0].energy_j);
}

TEST(PointCost, UnmappableLayerYieldsInfeasibleNotThrow) {
  nn::NetworkModel net = tiny_net();
  net.conv_layers[0].kernel = 11;  // 11 taps on an 8-PE chain: unmappable
  net.conv_layers[0].pad = 5;
  net.conv_layers[0].validate();
  ArrayShape stub;
  stub.num_pes = 8;
  const auto& first = net.conv_layers.front();
  const PointCost bad = estimate_point_cost(
      serve::resolve_network_layers(net, 1, first.in_height, first.in_width,
                                    {}),
      stub, mem::HierarchyConfig{});
  EXPECT_FALSE(bad.feasible);
  EXPECT_FALSE(bad.infeasible_reason.empty());

  // An infeasible point neither dominates nor is dominated.
  PointCost good;
  good.total_cycles = 1;
  good.energy_j = 1.0;
  good.area_gates = 1.0;
  EXPECT_FALSE(good.dominates(bad));
  EXPECT_FALSE(bad.dominates(good));
}

TEST(PointCost, DominanceIsStrictOnEveryAxis) {
  PointCost a;
  a.total_cycles = 100;
  a.energy_j = 1.0;
  a.area_gates = 10.0;
  PointCost worse = a;
  worse.total_cycles = 101;
  worse.energy_j = 1.1;
  worse.area_gates = 10.5;
  EXPECT_TRUE(a.dominates(worse));
  EXPECT_FALSE(worse.dominates(a));

  // A clock variant — identical cycles and area, different energy — is
  // never eliminated: the tie blocks strict dominance.
  PointCost clocked = a;
  clocked.energy_j = 0.9;
  EXPECT_FALSE(clocked.dominates(a));
  EXPECT_FALSE(a.dominates(clocked));
  EXPECT_FALSE(a.dominates(a));
}

TEST(PointCost, SramBytesTrackTheChain) {
  const ArrayShape paper;  // 576 x 256 words x 2B
  const mem::HierarchyConfig mem;
  EXPECT_EQ(point_sram_bytes(paper, mem),
            32u * 1024 + 25u * 1024 + 576u * 256 * 2);

  ArrayShape longer = paper;
  longer.num_pes = 1152;
  EXPECT_EQ(point_sram_bytes(longer, mem) - point_sram_bytes(paper, mem),
            576u * 256 * 2);
}

TEST(PointCost, AreaOverloadAddsSramGateEquivalents) {
  const energy::AreaModel area;
  const double logic = area.total_gates(576);
  const std::uint64_t sram = 352 * 1024;
  EXPECT_DOUBLE_EQ(area.total_gates(576, sram),
                   logic + area.sram_gate_equiv_per_byte *
                               static_cast<double>(sram));
  EXPECT_GT(area.sram_gate_equiv_per_byte, 0.0);
}

}  // namespace
}  // namespace chainnn::dataflow
