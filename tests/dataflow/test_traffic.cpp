#include "dataflow/traffic.hpp"

#include <gtest/gtest.h>

#include "nn/models.hpp"
#include "report/paper_constants.hpp"

namespace chainnn::dataflow {
namespace {

nn::ConvLayerParams simple_layer(std::int64_t k, std::int64_t hw = 16,
                                 std::int64_t c = 2, std::int64_t m = 4) {
  nn::ConvLayerParams p;
  p.name = "L";
  p.in_channels = c;
  p.out_channels = m;
  p.in_height = p.in_width = hw;
  p.kernel = k;
  return p;
}

TEST(StripRealPixels, NoPaddingCountsFullStrip) {
  const ExecutionPlan plan = plan_layer(simple_layer(3), ArrayShape{});
  const SubConvPlan& sp = plan.subconvs[0];
  // Full strip: 5 rows x 16 cols.
  EXPECT_EQ(strip_real_pixels(plan.layer, sp.sub, sp.strips[0]), 5 * 16);
  // Last strip (2 out rows): 4 rows of which 14+... rows 12..15 all real.
  EXPECT_EQ(strip_real_pixels(plan.layer, sp.sub, sp.strips.back()), 4 * 16);
}

TEST(StripRealPixels, PaddingExcluded) {
  nn::ConvLayerParams p = simple_layer(3, 16);
  p.pad = 1;
  const ExecutionPlan plan = plan_layer(p, ArrayShape{});
  const SubConvPlan& sp = plan.subconvs[0];
  // First strip spans padded rows 0..4 = 1 pad + 4 real; cols: 1 pad +
  // 16 real + 1 pad -> 16 real cols.
  EXPECT_EQ(strip_real_pixels(p, sp.sub, sp.strips[0]), 4 * 16);
}

TEST(IfmapReuse, MatchesPaperFactor) {
  // §V.C: ifmap pixels are read (2K-1)/K times per m-group pass.
  const ExecutionPlan p3 = plan_layer(simple_layer(3), ArrayShape{});
  EXPECT_DOUBLE_EQ(ifmap_reuse_factor(p3), 5.0 / 3.0);
  const ExecutionPlan p5 = plan_layer(simple_layer(5, 20), ArrayShape{});
  EXPECT_DOUBLE_EQ(ifmap_reuse_factor(p5), 9.0 / 5.0);
}

TEST(KmemActivity, Conv3MatchesPaper) {
  // §V.C: "the activity factor is only 2.22% for the third layer".
  const ExecutionPlan plan =
      plan_layer(nn::alexnet().conv_layers[2], ArrayShape{});
  EXPECT_NEAR(kmem_activity_factor(plan), report::kKmemActivityConv3,
              0.003);
}

TEST(Traffic, OmemoryAccountsReadModifyWrite) {
  const nn::ConvLayerParams layer = simple_layer(3, 16, 2, 4);
  const ExecutionPlan plan = plan_layer(layer, ArrayShape{});
  const LayerTrafficModel t = model_traffic(plan, 1);
  const std::uint64_t completions = 14 * 14 * 4 * 2;
  const std::uint64_t outputs = 14 * 14 * 4;
  EXPECT_EQ(t.omem_writes, completions * 2);
  EXPECT_EQ(t.omem_reads, (completions - outputs) * 2);
}

TEST(Traffic, KernelBytesOncePerBatch) {
  const nn::ConvLayerParams layer = simple_layer(3, 16, 2, 4);
  const ExecutionPlan plan = plan_layer(layer, ArrayShape{});
  const LayerTrafficModel t1 = model_traffic(plan, 1);
  const LayerTrafficModel t4 = model_traffic(plan, 4);
  EXPECT_EQ(t1.dram_kernel,
            static_cast<std::uint64_t>(layer.weight_count()) * 2);
  EXPECT_EQ(t4.dram_kernel, t1.dram_kernel);  // batch-independent
  EXPECT_EQ(t4.imem_reads, 4 * t1.imem_reads);  // streaming scales
}

TEST(Traffic, PsumSpillOnlyWithMultipleCTiles) {
  const ExecutionPlan one = plan_layer(simple_layer(3, 16, 2, 4),
                                       ArrayShape{});
  EXPECT_EQ(model_traffic(one, 1).dram_psum, 0u);
  const ExecutionPlan two = plan_layer(simple_layer(3, 16, 512, 64),
                                       ArrayShape{});
  ASSERT_EQ(two.c_tiles, 2);
  const LayerTrafficModel t = model_traffic(two, 1);
  EXPECT_EQ(t.dram_psum, static_cast<std::uint64_t>(14 * 14 * 64) * 2 * 2);
}

TEST(Traffic, Table4ShapeReproduced) {
  // Table IV (batch 4): our counting rules must reproduce the paper's
  // *shape*: oMemory dominates, kMemory next, iMemory and DRAM smallest;
  // kMemory and oMemory within ~25% of the printed numbers for the
  // stride-1 layers (the paper's exact tiling for conv1 differs — see
  // EXPERIMENTS.md).
  const auto layers = nn::alexnet().conv_layers;
  for (std::size_t i = 1; i < layers.size(); ++i) {  // conv2..conv5
    const ExecutionPlan plan = plan_layer(layers[i], ArrayShape{});
    const LayerTrafficModel t = model_traffic(plan, 4);
    const double mb = 1024.0 * 1024.0;
    const auto& paper = report::kTable4[i];
    EXPECT_NEAR(static_cast<double>(t.omem_total()) / mb / paper.omem_mb,
                1.0, 0.25)
        << layers[i].name << " oMemory";
    EXPECT_NEAR(static_cast<double>(t.kmem_reads) / mb / paper.kmem_mb, 1.0,
                0.30)
        << layers[i].name << " kMemory";
    // Ordering within the row:
    EXPECT_GT(t.omem_total(), t.kmem_total());
    EXPECT_GT(t.kmem_total(), t.imem_reads / 4);  // kMem >> per-image iMem
  }
}

TEST(Traffic, Conv3IMemoryNearPaper) {
  const ExecutionPlan plan =
      plan_layer(nn::alexnet().conv_layers[2], ArrayShape{});
  const double mb = 1024.0 * 1024.0;
  // With materialized padding streamed from iMemory (the accounting the
  // paper's 4.8 MB corresponds to):
  TrafficModelOptions padded;
  padded.count_padding_as_stream = true;
  const LayerTrafficModel tp = model_traffic(plan, 4, padded);
  EXPECT_NEAR(static_cast<double>(tp.imem_reads) / mb, 4.8, 0.8);
  // With on-the-fly padding (our streamer's default) ~30% fewer reads:
  const LayerTrafficModel tr = model_traffic(plan, 4);
  EXPECT_NEAR(static_cast<double>(tr.imem_reads) / mb, 3.2, 0.3);
}

TEST(Traffic, SingleChannelStreamsKTimesMore) {
  ArrayShape single;
  single.dual_channel = false;
  const nn::ConvLayerParams layer = simple_layer(3, 31);
  const ExecutionPlan pd = plan_layer(layer, ArrayShape{});
  const ExecutionPlan ps = plan_layer(layer, single);
  const LayerTrafficModel td = model_traffic(pd, 1);
  const LayerTrafficModel ts = model_traffic(ps, 1);
  const double ratio = static_cast<double>(ts.imem_reads) /
                       static_cast<double>(td.imem_reads);
  EXPECT_GT(ratio, 1.5);  // row-at-a-time replays rows ~K/(2K/K)...
  EXPECT_LT(ratio, 3.1);
}

}  // namespace
}  // namespace chainnn::dataflow
