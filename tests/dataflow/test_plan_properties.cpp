// Plan invariants over the entire model zoo and randomized geometries —
// the properties every legal ExecutionPlan must satisfy regardless of
// layer shape (strips tile rows exactly, capacities respected, work
// conservation, cycle formulas consistent between views).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dataflow/plan.hpp"
#include "dataflow/traffic.hpp"
#include "nn/models.hpp"

namespace chainnn::dataflow {
namespace {

void check_plan_invariants(const nn::ConvLayerParams& layer,
                           const ArrayShape& array,
                           const mem::HierarchyConfig& memory) {
  const ExecutionPlan plan = plan_layer(layer, array, memory);
  const std::string ctx = layer.to_string();

  // Structure.
  ASSERT_GE(plan.primitives, 1) << ctx;
  EXPECT_EQ(plan.active_pes, plan.primitives * plan.taps) << ctx;
  EXPECT_LE(plan.active_pes, array.num_pes) << ctx;
  EXPECT_GE(plan.row_block, 1) << ctx;

  // Phases partition the kernel taps.
  std::int64_t taps_total = 0;
  for (const SubConvPlan& sp : plan.subconvs) {
    EXPECT_LE(sp.sub.taps(), plan.taps) << ctx;
    taps_total += sp.sub.taps();
  }
  EXPECT_EQ(taps_total, layer.kernel * layer.kernel) << ctx;

  // Strips tile the output rows exactly, never crossing blocks.
  for (const SubConvPlan& sp : plan.subconvs) {
    std::int64_t covered = 0;
    for (const Strip& s : sp.strips) {
      EXPECT_EQ(s.first_out_row, covered) << ctx;
      EXPECT_GE(s.out_rows, 1) << ctx;
      EXPECT_LE(s.out_rows, sp.sub.kernel_rows) << ctx;
      const std::int64_t block_of_first = s.first_out_row / plan.row_block;
      const std::int64_t block_of_last =
          (s.first_out_row + s.out_rows - 1) / plan.row_block;
      EXPECT_EQ(block_of_first, block_of_last) << ctx;
      covered += s.out_rows;
    }
    EXPECT_EQ(covered, layer.out_height()) << ctx;
  }

  // Residency capacities.
  const auto n_subs = static_cast<std::int64_t>(plan.subconvs.size());
  EXPECT_LE(plan.c_tile * n_subs, array.kmem_words_per_pe) << ctx;
  const std::int64_t block_words =
      plan.primitives * plan.row_block * layer.out_width();
  EXPECT_LE(static_cast<std::uint64_t>(block_words) * memory.word_bytes,
            memory.omemory_bytes)
      << ctx;

  // Work conservation: windows x taps over phases = layer MACs minus the
  // padding taps (windows carry masked-out padding contributions as
  // zero-weight MACs, so >=).
  std::int64_t window_macs = 0;
  for (const SubConvPlan& sp : plan.subconvs)
    window_macs += sp.out_rows * sp.out_cols * sp.sub.taps();
  window_macs *= layer.out_channels * layer.channels_per_group();
  EXPECT_GE(window_macs, layer.macs_per_image()) << ctx;

  // Cycle views consistent.
  EXPECT_GT(plan.cycles_per_image(), 0) << ctx;
  EXPECT_EQ(plan.cycles_per_batch(1),
            plan.kernel_load_cycles_per_batch() + plan.cycles_per_image())
      << ctx;
  EXPECT_GT(plan.utilization_per_image(), 0.0) << ctx;
  EXPECT_LE(plan.utilization_per_image(), 1.0) << ctx;

  // Traffic model sanity: all components positive and finite.
  const LayerTrafficModel t = model_traffic(plan, 2);
  EXPECT_GT(t.imem_reads, 0u) << ctx;
  EXPECT_GT(t.kmem_reads, 0u) << ctx;
  EXPECT_GT(t.omem_writes, 0u) << ctx;
  EXPECT_GE(t.omem_writes, t.omem_reads) << ctx;
  EXPECT_EQ(t.dram_kernel,
            static_cast<std::uint64_t>(layer.weight_count()) * 2)
      << ctx;
}

TEST(PlanProperties, HoldForEveryZooLayer) {
  const ArrayShape array;
  const mem::HierarchyConfig memory;
  for (const auto& net : nn::model_zoo())
    for (const auto& layer : net.conv_layers)
      check_plan_invariants(layer, array, memory);
}

TEST(PlanProperties, HoldForRandomGeometries) {
  Rng rng(31337);
  const mem::HierarchyConfig memory;
  for (int i = 0; i < 60; ++i) {
    nn::ConvLayerParams p;
    p.name = "rand" + std::to_string(i);
    p.groups = rng.uniform_int(1, 2);
    p.in_channels = p.groups * rng.uniform_int(1, 64);
    p.out_channels = p.groups * rng.uniform_int(1, 128);
    p.kernel = rng.uniform_int(1, 11);
    p.stride = rng.uniform_int(1, 4);
    p.pad = rng.uniform_int(0, p.kernel - 1);
    const std::int64_t min_hw = std::max<std::int64_t>(
        p.kernel, p.kernel + p.stride - 2 * p.pad);
    p.in_height = min_hw + rng.uniform_int(0, 60);
    p.in_width = min_hw + rng.uniform_int(0, 60);
    p.validate();

    ArrayShape array;
    array.num_pes = 64 * rng.uniform_int(1, 16);
    if (array.num_pes < p.kernel * p.kernel) continue;
    array.kmem_words_per_pe = 32 << rng.uniform_int(0, 3);
    check_plan_invariants(p, array, memory);
  }
}

TEST(PlanProperties, CyclesMonotoneInWork) {
  // More output channels can never take fewer cycles.
  const ArrayShape array;
  nn::ConvLayerParams p;
  p.in_channels = 8;
  p.in_height = p.in_width = 24;
  p.kernel = 3;
  std::int64_t prev = 0;
  for (const std::int64_t m : {8, 64, 128, 256}) {
    p.out_channels = m;
    const std::int64_t cycles = plan_layer(p, array).cycles_per_image();
    EXPECT_GE(cycles, prev) << m;
    prev = cycles;
  }
}

TEST(PlanProperties, BiggerChainNeverSlower) {
  nn::ConvLayerParams p;
  p.in_channels = 16;
  p.out_channels = 128;
  p.in_height = p.in_width = 32;
  p.kernel = 3;
  std::int64_t prev = std::numeric_limits<std::int64_t>::max();
  for (const std::int64_t pes : {72, 144, 288, 576, 1152}) {
    ArrayShape array;
    array.num_pes = pes;
    const std::int64_t cycles = plan_layer(p, array).cycles_per_image();
    EXPECT_LE(cycles, prev) << pes;
    prev = cycles;
  }
}

}  // namespace
}  // namespace chainnn::dataflow
