#include "dataflow/stride_decompose.hpp"

#include <gtest/gtest.h>

namespace chainnn::dataflow {
namespace {

nn::ConvLayerParams strided(std::int64_t k, std::int64_t s,
                            std::int64_t hw = 32, std::int64_t pad = 0) {
  nn::ConvLayerParams p;
  p.name = "strided";
  p.in_channels = 1;
  p.out_channels = 1;
  p.in_height = p.in_width = hw;
  p.kernel = k;
  p.stride = s;
  p.pad = pad;
  return p;
}

TEST(StrideDecompose, IdentityForStride1) {
  const auto subs = decompose_strided(strided(3, 1));
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].kernel_rows, 3);
  EXPECT_EQ(subs[0].kernel_cols, 3);
  EXPECT_EQ(subs[0].in_rows, 32);
  EXPECT_EQ(subs[0].in_cols, 32);
}

TEST(StrideDecompose, AlexNetConv1Phases) {
  // K=11, S=4: row phases get ceil((11-a)/4) = 3,3,3,2 rows.
  const auto subs = decompose_strided(strided(11, 4, 227));
  ASSERT_EQ(subs.size(), 16u);
  EXPECT_EQ(subs[0].kernel_rows, 3);
  EXPECT_EQ(subs[0].kernel_cols, 3);
  const auto& last = subs.back();  // phase (3,3)
  EXPECT_EQ(last.kernel_rows, 2);
  EXPECT_EQ(last.kernel_cols, 2);
}

TEST(StrideDecompose, TapCountsPartitionKernel) {
  for (const auto& [k, s] : std::vector<std::pair<std::int64_t, std::int64_t>>{
           {11, 4}, {7, 2}, {5, 3}, {3, 2}, {4, 4}, {5, 5}, {3, 5}}) {
    const auto subs = decompose_strided(strided(k, s, 64));
    std::int64_t taps = 0;
    for (const auto& sc : subs) taps += sc.taps();
    EXPECT_EQ(taps, k * k) << "K=" << k << " S=" << s;
  }
}

TEST(StrideDecompose, StrideLargerThanKernelHasKxKPhases) {
  // S=5 > K=3: only phases a,b < K carry taps; each sub-kernel is 1x1.
  const auto subs = decompose_strided(strided(3, 5, 64));
  ASSERT_EQ(subs.size(), 9u);
  for (const auto& sc : subs) EXPECT_EQ(sc.taps(), 1);
}

TEST(StrideDecompose, SubGridCoversOutputs) {
  // Every phase must provide at least E + K_r - 1 decimated rows.
  const auto layer = strided(11, 4, 227);
  const std::int64_t e = layer.out_height();
  for (const auto& sc : decompose_strided(layer)) {
    EXPECT_GE(sc.in_rows, e + sc.kernel_rows - 1)
        << "phase (" << sc.phase_row << "," << sc.phase_col << ")";
    EXPECT_GE(sc.in_cols, e + sc.kernel_cols - 1);
  }
}

TEST(StrideDecompose, MapTapRoundTrip) {
  const auto layer = strided(11, 4, 227);
  const auto subs = decompose_strided(layer);
  for (std::int64_t ky = 0; ky < 11; ++ky) {
    for (std::int64_t kx = 0; kx < 11; ++kx) {
      const TapMapping m = map_tap(layer, ky, kx);
      ASSERT_LT(m.sub_index, static_cast<std::int64_t>(subs.size()));
      const SubConv& sc = subs[static_cast<std::size_t>(m.sub_index)];
      EXPECT_EQ(sc.phase_row + layer.stride * m.sub_ky, ky);
      EXPECT_EQ(sc.phase_col + layer.stride * m.sub_kx, kx);
      EXPECT_LT(m.sub_ky, sc.kernel_rows);
      EXPECT_LT(m.sub_kx, sc.kernel_cols);
    }
  }
}

TEST(StrideDecompose, PaddedRowMapping) {
  EXPECT_EQ(padded_row_of(4, 1, 0), 1);
  EXPECT_EQ(padded_row_of(4, 1, 3), 13);
  EXPECT_EQ(padded_row_of(1, 0, 7), 7);
}

}  // namespace
}  // namespace chainnn::dataflow
