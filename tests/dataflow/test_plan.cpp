#include "dataflow/plan.hpp"

#include <gtest/gtest.h>

#include "nn/models.hpp"
#include "report/paper_constants.hpp"

namespace chainnn::dataflow {
namespace {

nn::ConvLayerParams simple_layer(std::int64_t k, std::int64_t hw = 16,
                                 std::int64_t c = 2, std::int64_t m = 4) {
  nn::ConvLayerParams p;
  p.name = "L";
  p.in_channels = c;
  p.out_channels = m;
  p.in_height = p.in_width = hw;
  p.kernel = k;
  return p;
}

TEST(UtilizationRow, ReproducesPaperTable2) {
  // Table II of the paper, including the 9x9 row where the paper prints
  // 100% but 567/576 is actually 98.4% — we assert the raw counts.
  const ArrayShape array;
  for (const auto& row : report::kTable2) {
    const UtilizationRow r = utilization_row(array, row.kernel);
    EXPECT_EQ(r.pes_per_primitive, row.pes_per_primitive) << row.kernel;
    EXPECT_EQ(r.active_primitives, row.active_primitives) << row.kernel;
    EXPECT_EQ(r.active_pes, row.active_pes) << row.kernel;
  }
  // Efficiency values the paper prints correctly:
  EXPECT_DOUBLE_EQ(utilization_row(array, 3).efficiency, 1.0);
  EXPECT_NEAR(utilization_row(array, 5).efficiency, 0.998, 0.0005);
  EXPECT_NEAR(utilization_row(array, 7).efficiency, 0.936, 0.0005);
  EXPECT_NEAR(utilization_row(array, 11).efficiency, 0.840, 0.0005);
  // And the 9x9 discrepancy:
  EXPECT_NEAR(utilization_row(array, 9).efficiency, 567.0 / 576.0, 1e-12);
}

TEST(Plan, Stride1SingleSubConv) {
  const ExecutionPlan plan = plan_layer(simple_layer(3), ArrayShape{});
  ASSERT_EQ(plan.subconvs.size(), 1u);
  EXPECT_EQ(plan.taps, 9);
  EXPECT_EQ(plan.primitives, 64);
  EXPECT_EQ(plan.active_pes, 576);
  EXPECT_EQ(plan.row_block, 3);
  EXPECT_EQ(plan.c_tiles, 1);
}

TEST(Plan, StripsPartitionOutputRows) {
  // E_h = 14, K = 3 -> strips of 3,3,3,3,2.
  const ExecutionPlan plan = plan_layer(simple_layer(3), ArrayShape{});
  const auto& strips = plan.subconvs[0].strips;
  ASSERT_EQ(strips.size(), 5u);
  std::int64_t covered = 0;
  for (const Strip& s : strips) {
    EXPECT_EQ(s.first_out_row, covered);
    covered += s.out_rows;
    EXPECT_LE(s.out_rows, 3);
  }
  EXPECT_EQ(covered, 14);
  EXPECT_EQ(strips.back().out_rows, 2);
}

TEST(Plan, SlotsFormula) {
  const ExecutionPlan plan = plan_layer(simple_layer(3), ArrayShape{});
  const SubConvPlan& sp = plan.subconvs[0];
  // Full strip: K*(in_cols-1) + 2K-1 = 3*15 + 5 = 50.
  EXPECT_EQ(sp.slots_for(sp.strips[0]), 50);
  // Partial strip (2 rows): 3*15 + 4 = 49.
  EXPECT_EQ(sp.slots_for(sp.strips.back()), 49);
}

TEST(Plan, MGroupsRespectConvGroups) {
  nn::ConvLayerParams p = simple_layer(3, 16, 4, 256);
  p.groups = 2;
  const ExecutionPlan plan = plan_layer(p, ArrayShape{});
  // 128 ofmaps per group, 64 primitives -> 2 chunks per group x 2 groups.
  EXPECT_EQ(plan.m_groups, 4);
}

TEST(Plan, CTileLimitedByKmemWords) {
  nn::ConvLayerParams p = simple_layer(3, 16, 512, 64);
  const ExecutionPlan plan = plan_layer(p, ArrayShape{});
  EXPECT_EQ(plan.c_tile, 256);  // kMemory holds 256 words per PE
  EXPECT_EQ(plan.c_tiles, 2);
}

TEST(Plan, OmemoryCapsPrimitives) {
  // Wide output rows: 64 primitives x 3 rows x 224 cols of 16-bit
  // partials would blow the 25KB oMemory; the plan must cap residency.
  nn::ConvLayerParams p = simple_layer(3, 224, 4, 256);
  p.pad = 1;
  const ExecutionPlan plan = plan_layer(p, ArrayShape{});
  EXPECT_LT(plan.primitives, 64);
  const std::int64_t words = plan.primitives * plan.row_block * 224;
  EXPECT_LE(words * 2, 25 * 1024);
}

TEST(Plan, StridedLayerRowBlockIsLcm) {
  nn::ConvLayerParams p = simple_layer(11, 227, 3, 96);
  p.stride = 4;
  const ExecutionPlan plan = plan_layer(p, ArrayShape{});
  ASSERT_EQ(plan.subconvs.size(), 16u);
  EXPECT_EQ(plan.taps, 9);       // largest phase kernel 3x3
  EXPECT_EQ(plan.row_block, 6);  // lcm(3, 2)
}

TEST(Plan, KernelLoadCyclesEqualWeightCount) {
  for (const auto& layer : nn::alexnet().conv_layers) {
    const ExecutionPlan plan = plan_layer(layer, ArrayShape{});
    EXPECT_EQ(plan.kernel_load_cycles_per_batch(), layer.weight_count());
  }
}

TEST(Plan, PaperModelMatchesFig9) {
  // Every Fig. 9 layer time is reproduced within 17% by one of the two
  // documented models: the paper's idealized model (MACs/active-PEs x
  // stride — exact for conv1/3/4/5) or our strip-schedule closed form
  // (which captures the grouped-conv m-group overhead the idealized
  // model misses on conv2).
  const ArrayShape array;
  const auto layers = nn::alexnet().conv_layers;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const ExecutionPlan plan = plan_layer(layers[i], array);
    const double paper =
        report::kFig9[i].conv_ms + report::kFig9[i].kernel_load_ms;
    const double idealized =
        plan.paper_model_seconds_per_batch(128) * 1e3;
    const double ours = plan.seconds_per_batch(128) * 1e3;
    const double err = std::min(std::abs(idealized / paper - 1.0),
                                std::abs(ours / paper - 1.0));
    EXPECT_LT(err, 0.17) << layers[i].name << ": idealized " << idealized
                         << "ms, ours " << ours << "ms vs paper " << paper
                         << "ms";
  }
}

TEST(Plan, PaperModelConv1IsStrideTimesBound) {
  const auto conv1 = nn::alexnet().conv_layers[0];
  const ExecutionPlan plan = plan_layer(conv1, ArrayShape{});
  const std::int64_t bound =
      (conv1.macs_per_image() + 483) / 484;  // 484 active PEs for 11x11
  EXPECT_NEAR(static_cast<double>(plan.paper_model_cycles_per_image()),
              4.0 * static_cast<double>(bound), 4.0);
}

TEST(Plan, SingleChannelIsKTimesSlower) {
  ArrayShape dual;
  ArrayShape single;
  single.dual_channel = false;
  const nn::ConvLayerParams layer = simple_layer(3, 32);
  const ExecutionPlan pd = plan_layer(layer, dual);
  const ExecutionPlan ps = plan_layer(layer, single);
  // Fig. 5: single-channel PEs reach only 1/K of the streaming
  // throughput (drain latency is common to both, so compare streams).
  const double ratio =
      static_cast<double>(ps.stream_slots_per_channel_pass()) /
      static_cast<double>(pd.stream_slots_per_channel_pass());
  EXPECT_NEAR(ratio, 3.0, 0.25);
}

TEST(Plan, UtilizationBelowOneAboveHalf) {
  const ExecutionPlan plan =
      plan_layer(nn::alexnet().conv_layers[2], ArrayShape{});
  EXPECT_GT(plan.utilization_per_image(), 0.5);
  EXPECT_LE(plan.utilization_per_image(), 1.0);
}

TEST(Plan, RejectsOversizedKernel) {
  nn::ConvLayerParams p = simple_layer(25, 30);
  EXPECT_THROW((void)plan_layer(p, ArrayShape{}), std::logic_error);
}

TEST(Plan, WindowsPerImageCountsAllPasses) {
  const nn::ConvLayerParams layer = simple_layer(3, 16, 2, 4);
  const ExecutionPlan plan = plan_layer(layer, ArrayShape{});
  // 14x14 outputs x M4 x C2, one phase.
  EXPECT_EQ(plan.windows_per_image(), 14 * 14 * 4 * 2);
}

TEST(Plan, AllKernelsResidentSmallLayer) {
  const ExecutionPlan small = plan_layer(simple_layer(3, 16, 2, 4),
                                         ArrayShape{});
  EXPECT_TRUE(small.all_kernels_resident);
  const ExecutionPlan big =
      plan_layer(nn::alexnet().conv_layers[2], ArrayShape{});
  EXPECT_FALSE(big.all_kernels_resident);  // 6 m-groups x 256 channels
}

}  // namespace
}  // namespace chainnn::dataflow
