#include "baseline/memory_centric.hpp"

#include <gtest/gtest.h>

#include "nn/models.hpp"
#include "report/paper_constants.hpp"

namespace chainnn::baseline {
namespace {

TEST(MemoryCentric, PeakThroughputMatchesPublished) {
  const MemoryCentricModel m;
  // 288x16 MACs @ 606 MHz x 2 ops = 5584.9 GOPS (Table V).
  EXPECT_NEAR(m.peak_ops_per_s() / 1e9, 5584.9, 1.0);
}

TEST(MemoryCentric, EfficiencyMatchesTable5) {
  const MemoryCentricModel m;
  EXPECT_NEAR(m.efficiency_gops_per_w(),
              report::kDaDianNao.efficiency_gops_per_w, 1.0);
}

TEST(MemoryCentric, CoreOnlyEfficiencyMatchesFig10) {
  const MemoryCentricModel m;
  // Fig. 10: 3035.3 GOPS/W when only the 1.84W core is counted.
  EXPECT_NEAR(m.core_only_efficiency_gops_per_w(),
              report::kDaDianNaoCoreOnlyGopsPerW, 5.0);
}

TEST(MemoryCentric, MemoryDominatesEnergy) {
  const MemoryCentricModel m;
  // The taxonomy point (§III.A.1): memory, not compute, dominates.
  EXPECT_GT(m.memory_energy_per_mac_j(), 5.0 * m.core_energy_per_mac_j());
}

TEST(MemoryCentric, TimingScalesWithMacs) {
  const MemoryCentricModel m;
  const auto layers = nn::alexnet().conv_layers;
  const std::int64_t c3 = m.cycles_per_image(layers[2]);
  const std::int64_t c5 = m.cycles_per_image(layers[4]);
  const double mac_ratio =
      static_cast<double>(layers[2].macs_per_image()) /
      static_cast<double>(layers[4].macs_per_image());
  EXPECT_NEAR(static_cast<double>(c3) / static_cast<double>(c5), mac_ratio,
              0.05);
}

TEST(MemoryCentric, SmallLayerUnderutilizes) {
  const MemoryCentricModel m;
  nn::ConvLayerParams tiny;
  tiny.in_channels = 1;
  tiny.out_channels = 1;
  tiny.in_height = tiny.in_width = 8;
  tiny.kernel = 3;
  // Output sites (36) < MAC units (4608): utilization-limited, so cycles
  // = MACs / sites.
  EXPECT_EQ(m.cycles_per_image(tiny), 9);
}

TEST(MemoryCentric, EnergyPerImagePositiveAndMacProportional) {
  const MemoryCentricModel m;
  const auto layers = nn::alexnet().conv_layers;
  const double e1 = m.energy_per_image_j(layers[0]);
  const double e3 = m.energy_per_image_j(layers[2]);
  EXPECT_GT(e1, 0.0);
  EXPECT_NEAR(e3 / e1,
              static_cast<double>(layers[2].macs_per_image()) /
                  static_cast<double>(layers[0].macs_per_image()),
              1e-9);
}

}  // namespace
}  // namespace chainnn::baseline
