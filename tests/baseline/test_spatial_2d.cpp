#include "baseline/spatial_2d.hpp"

#include <gtest/gtest.h>

#include "nn/models.hpp"
#include "report/paper_constants.hpp"

namespace chainnn::baseline {
namespace {

TEST(Spatial2d, PeakThroughputMatchesPublished) {
  const Spatial2dModel m;
  EXPECT_EQ(m.num_pes(), 168);
  EXPECT_NEAR(m.peak_ops_per_s() / 1e9, 84.0, 0.1);  // Table V
}

TEST(Spatial2d, EfficiencyFromPeakAndPower) {
  const Spatial2dModel m;
  EXPECT_NEAR(m.efficiency_gops_per_w(), 84.0 / 0.45, 0.5);
}

TEST(Spatial2d, MappingUtilizationDropsForTallKernels) {
  const Spatial2dModel m;
  const auto layers = nn::alexnet().conv_layers;
  // conv3 (K=3, E=13): 4 vertical sets x 3 rows x 13 cols = 156/168.
  EXPECT_NEAR(m.mapping_utilization(layers[2]), 156.0 / 168.0, 1e-9);
  // conv1 (K=11): only one 11-row set fits 12 rows -> 11*14/168.
  EXPECT_NEAR(m.mapping_utilization(layers[0]), 11.0 * 14.0 / 168.0, 1e-9);
  // 2D placement constraint: conv1 maps worse than conv3 (§III.A.2).
  EXPECT_LT(m.mapping_utilization(layers[0]),
            m.mapping_utilization(layers[2]));
}

TEST(Spatial2d, KernelTallerThanArrayFailsToMap) {
  const Spatial2dModel m;
  nn::ConvLayerParams p;
  p.in_channels = 1;
  p.out_channels = 1;
  p.in_height = p.in_width = 20;
  p.kernel = 13;  // > 12 rows
  EXPECT_DOUBLE_EQ(m.mapping_utilization(p), 0.0);
  EXPECT_THROW((void)m.cycles_per_image(p), std::logic_error);
}

TEST(Spatial2d, CyclesInverseToUtilization) {
  const Spatial2dModel m;
  const auto conv3 = nn::alexnet().conv_layers[2];
  const double util = m.mapping_utilization(conv3);
  const double expect =
      static_cast<double>(conv3.macs_per_image()) / (168.0 * util);
  EXPECT_NEAR(static_cast<double>(m.cycles_per_image(conv3)), expect, 1.0);
}

TEST(Spatial2d, ChainNNBeatsEyerissEfficiencyBy2_5x) {
  // The abstract's headline: "at least 2.5x" the best prior efficiency,
  // against Eyeriss scaled to 28 nm. 1421.0/570.1 = 2.49, which the
  // paper rounds to 2.5.
  const double chain_nn = report::kEfficiencyGopsPerW;
  const double eyeriss_scaled = report::kEyerissScaledTo28nmGopsPerW;
  EXPECT_GE(chain_nn / eyeriss_scaled, report::kMinEfficiencyGain - 0.02);
}

}  // namespace
}  // namespace chainnn::baseline
