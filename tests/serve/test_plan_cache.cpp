// PlanCache: hit/miss accounting, key discrimination (plan-irrelevant
// config fields share an entry, plan-relevant ones don't), equivalence
// with direct plan_layer calls, and concurrent lookups.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "serve/plan_cache.hpp"

namespace chainnn::serve {
namespace {

nn::ConvLayerParams base_layer() {
  nn::ConvLayerParams p;
  p.name = "base";
  p.batch = 2;
  p.in_channels = 8;
  p.out_channels = 6;
  p.in_height = p.in_width = 16;
  p.kernel = 3;
  p.pad = 1;
  p.validate();
  return p;
}

// Field-for-field equality of a cached plan against a fresh
// plan_layer() result (ExecutionPlan intentionally has no operator==;
// this spells out exactly what must match).
void expect_plan_identical(const dataflow::ExecutionPlan& a,
                           const dataflow::ExecutionPlan& b) {
  EXPECT_TRUE(a.layer == b.layer);
  EXPECT_EQ(a.array.num_pes, b.array.num_pes);
  EXPECT_EQ(a.array.kmem_words_per_pe, b.array.kmem_words_per_pe);
  EXPECT_EQ(a.array.clock_hz, b.array.clock_hz);
  EXPECT_EQ(a.array.pipeline_stages, b.array.pipeline_stages);
  EXPECT_EQ(a.array.dual_channel, b.array.dual_channel);
  EXPECT_EQ(a.memory.imemory_bytes, b.memory.imemory_bytes);
  EXPECT_EQ(a.memory.omemory_bytes, b.memory.omemory_bytes);
  EXPECT_EQ(a.memory.kmemory_bytes, b.memory.kmemory_bytes);
  EXPECT_EQ(a.memory.word_bytes, b.memory.word_bytes);
  EXPECT_EQ(a.taps, b.taps);
  EXPECT_EQ(a.primitives, b.primitives);
  EXPECT_EQ(a.active_pes, b.active_pes);
  EXPECT_EQ(a.m_groups, b.m_groups);
  EXPECT_EQ(a.c_tile, b.c_tile);
  EXPECT_EQ(a.c_tiles, b.c_tiles);
  EXPECT_EQ(a.row_block, b.row_block);
  EXPECT_EQ(a.all_kernels_resident, b.all_kernels_resident);
  ASSERT_EQ(a.subconvs.size(), b.subconvs.size());
  for (std::size_t i = 0; i < a.subconvs.size(); ++i) {
    EXPECT_EQ(a.subconvs[i].sub.phase_row, b.subconvs[i].sub.phase_row);
    EXPECT_EQ(a.subconvs[i].sub.phase_col, b.subconvs[i].sub.phase_col);
    EXPECT_EQ(a.subconvs[i].sub.kernel_rows, b.subconvs[i].sub.kernel_rows);
    EXPECT_EQ(a.subconvs[i].sub.kernel_cols, b.subconvs[i].sub.kernel_cols);
    EXPECT_EQ(a.subconvs[i].sub.in_rows, b.subconvs[i].sub.in_rows);
    EXPECT_EQ(a.subconvs[i].sub.in_cols, b.subconvs[i].sub.in_cols);
    EXPECT_EQ(a.subconvs[i].out_rows, b.subconvs[i].out_rows);
    EXPECT_EQ(a.subconvs[i].out_cols, b.subconvs[i].out_cols);
    EXPECT_TRUE(a.subconvs[i].strips == b.subconvs[i].strips);
  }
  // Derived timing must agree too (it reads the patched array/layer).
  EXPECT_EQ(a.cycles_per_image(), b.cycles_per_image());
  EXPECT_EQ(a.drain_cycles(), b.drain_cycles());
  EXPECT_EQ(a.passes_per_image(), b.passes_per_image());
  EXPECT_EQ(a.windows_per_image(), b.windows_per_image());
  EXPECT_EQ(a.kernel_load_cycles_per_batch(),
            b.kernel_load_cycles_per_batch());
}

TEST(PlanCache, HitMissAccounting) {
  PlanCache cache;
  const dataflow::ArrayShape array;
  const mem::HierarchyConfig memory;
  nn::ConvLayerParams a = base_layer();

  PlanCache::Lookup lookup;
  (void)cache.plan_for(a, array, memory, &lookup);
  EXPECT_FALSE(lookup.hit);
  EXPECT_EQ(lookup.entries, 1u);

  (void)cache.plan_for(a, array, memory, &lookup);
  EXPECT_TRUE(lookup.hit);
  EXPECT_EQ(lookup.entries, 1u);

  nn::ConvLayerParams b = a;
  b.kernel = 5;
  b.pad = 2;
  (void)cache.plan_for(b, array, memory, &lookup);
  EXPECT_FALSE(lookup.hit);
  EXPECT_EQ(lookup.entries, 2u);

  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.lookups(), 3u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 1.0 / 3.0);

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().lookups(), 0u);
}

TEST(PlanCache, IrrelevantFieldsShareAnEntry) {
  PlanCache cache;
  const mem::HierarchyConfig memory;
  const dataflow::ArrayShape array;
  nn::ConvLayerParams layer = base_layer();
  (void)cache.plan_for(layer, array, memory);
  ASSERT_EQ(cache.size(), 1u);

  // Batch and name are carried verbatim but shape nothing.
  nn::ConvLayerParams renamed = layer;
  renamed.name = "other";
  renamed.batch = 64;
  PlanCache::Lookup lookup;
  const auto plan = cache.plan_for(renamed, array, memory, &lookup);
  EXPECT_TRUE(lookup.hit);
  EXPECT_EQ(plan.layer.name, "other");  // re-stamped, not the cached name
  EXPECT_EQ(plan.layer.batch, 64);

  // Clock, pipeline depth and channel mode are query-time-only.
  dataflow::ArrayShape clocked = array;
  clocked.clock_hz = 900e6;
  clocked.pipeline_stages = 5;
  clocked.dual_channel = false;
  (void)cache.plan_for(layer, clocked, memory, &lookup);
  EXPECT_TRUE(lookup.hit);

  // iMemory / kMemory sizes don't shape the plan (kMemory's effect comes
  // through kmem_words_per_pe).
  mem::HierarchyConfig other_mem = memory;
  other_mem.imemory_bytes *= 2;
  other_mem.kmemory_bytes *= 2;
  (void)cache.plan_for(layer, array, other_mem, &lookup);
  EXPECT_TRUE(lookup.hit);

  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, RelevantFieldsGetOwnEntries) {
  PlanCache cache;
  const mem::HierarchyConfig memory;
  const dataflow::ArrayShape array;
  const nn::ConvLayerParams layer = base_layer();
  (void)cache.plan_for(layer, array, memory);

  dataflow::ArrayShape shorter = array;
  shorter.num_pes = 144;
  PlanCache::Lookup lookup;
  (void)cache.plan_for(layer, shorter, memory, &lookup);
  EXPECT_FALSE(lookup.hit);

  dataflow::ArrayShape small_kmem = array;
  small_kmem.kmem_words_per_pe = 4;
  (void)cache.plan_for(layer, small_kmem, memory, &lookup);
  EXPECT_FALSE(lookup.hit);

  mem::HierarchyConfig small_omem = memory;
  small_omem.omemory_bytes = 2 * 1024;
  (void)cache.plan_for(layer, array, small_omem, &lookup);
  EXPECT_FALSE(lookup.hit);

  nn::ConvLayerParams strided = layer;
  strided.stride = 2;
  (void)cache.plan_for(strided, array, memory, &lookup);
  EXPECT_FALSE(lookup.hit);

  // Effective padding discriminates even through the pad_h/pad_w
  // override fields.
  nn::ConvLayerParams padded = layer;
  padded.pad = 0;
  padded.pad_h = 1;
  padded.pad_w = 1;
  (void)cache.plan_for(padded, array, memory, &lookup);
  EXPECT_TRUE(lookup.hit);  // effective (1, 1) == base_layer's pad = 1
  padded.pad_w = 0;
  (void)cache.plan_for(padded, array, memory, &lookup);
  EXPECT_FALSE(lookup.hit);

  EXPECT_EQ(cache.size(), 6u);
}

TEST(PlanCache, CachedPlanIdenticalToDirectPlan) {
  PlanCache cache;
  struct Point {
    nn::ConvLayerParams layer;
    dataflow::ArrayShape array;
    mem::HierarchyConfig memory;
  };
  std::vector<Point> points;
  {
    Point p;
    p.layer = base_layer();
    points.push_back(p);
    p.layer.stride = 4;
    p.layer.kernel = 11;
    p.layer.in_height = p.layer.in_width = 35;
    p.layer.pad = 0;
    points.push_back(p);
    Point g;
    g.layer = base_layer();
    g.layer.groups = 2;
    g.array.num_pes = 288;
    g.array.clock_hz = 350e6;
    points.push_back(g);
    Point c;
    c.layer = base_layer();
    c.layer.in_channels = 12;
    c.array.kmem_words_per_pe = 4;
    c.memory.omemory_bytes = 4 * 1024;
    points.push_back(c);
  }
  for (auto& p : points) p.layer.validate();

  // Twice over every point: the second pass is all hits and must still
  // reproduce the direct plan exactly (including batch/name/clock
  // re-stamping against a different original insertion).
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "pass " << pass << " point " << i);
      nn::ConvLayerParams layer = points[i].layer;
      layer.batch = pass == 0 ? 1 : 7;
      layer.name = pass == 0 ? "first" : "second";
      const auto cached =
          cache.plan_for(layer, points[i].array, points[i].memory);
      const auto direct =
          dataflow::plan_layer(layer, points[i].array, points[i].memory);
      expect_plan_identical(cached, direct);
    }
  }
  EXPECT_EQ(cache.stats().misses, points.size());
  EXPECT_EQ(cache.stats().hits, points.size());
}

TEST(PlanCache, InvalidLayerStillThrowsOnHitPath) {
  PlanCache cache;
  const dataflow::ArrayShape array;
  const mem::HierarchyConfig memory;
  nn::ConvLayerParams layer = base_layer();
  (void)cache.plan_for(layer, array, memory);
  layer.batch = 0;  // batch is outside the key; validation must not be
  EXPECT_ANY_THROW((void)cache.plan_for(layer, array, memory));  // skipped
}

TEST(PlanCache, ConcurrentLookupsReturnIdenticalPlans) {
  PlanCache cache;
  const dataflow::ArrayShape array;
  const mem::HierarchyConfig memory;
  std::vector<nn::ConvLayerParams> layers;
  for (const std::int64_t k : {1, 3, 5}) {
    nn::ConvLayerParams p = base_layer();
    p.kernel = k;
    p.pad = k / 2;
    p.validate();
    layers.push_back(p);
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::vector<std::vector<dataflow::ExecutionPlan>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r)
        for (const auto& layer : layers)
          got[static_cast<std::size_t>(t)].push_back(
              cache.plan_for(layer, array, memory));
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(got[static_cast<std::size_t>(t)].size(),
              layers.size() * kRounds);
    for (std::size_t i = 0; i < got[static_cast<std::size_t>(t)].size();
         ++i) {
      const auto direct = dataflow::plan_layer(layers[i % layers.size()],
                                               array, memory);
      expect_plan_identical(got[static_cast<std::size_t>(t)][i], direct);
    }
  }
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, layers.size());
  EXPECT_EQ(stats.lookups(),
            static_cast<std::uint64_t>(kThreads) * kRounds * layers.size());
  // Racing misses may double-plan, but never more than one miss per
  // thread per key.
  EXPECT_GE(stats.misses, layers.size());
  EXPECT_LE(stats.misses, static_cast<std::uint64_t>(kThreads) *
                              layers.size());
}

TEST(PlanCache, LruEvictionUnderByteBudget) {
  const dataflow::ArrayShape array;
  const mem::HierarchyConfig memory;

  // Size the budget from a real plan so the test tracks footprint
  // changes: room for roughly two entries.
  const std::uint64_t one_plan =
      plan_footprint_bytes(dataflow::plan_layer(base_layer(), array, memory));
  PlanCache cache(PlanCacheOptions{.max_bytes = 2 * one_plan + one_plan / 2});

  constexpr int kLayers = 6;
  std::vector<nn::ConvLayerParams> layers;
  for (int i = 0; i < kLayers; ++i) {
    nn::ConvLayerParams p = base_layer();
    p.in_width = 16 + 2 * i;  // distinct PlanKeys
    p.validate();
    layers.push_back(p);
  }
  for (const auto& layer : layers)
    (void)cache.plan_for(layer, array, memory);

  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, static_cast<std::uint64_t>(kLayers));
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LT(stats.entries, static_cast<std::uint64_t>(kLayers));
  EXPECT_EQ(stats.entries + stats.evictions,
            static_cast<std::uint64_t>(kLayers));
  EXPECT_LE(stats.bytes, cache.options().max_bytes);

  // An evicted key misses again but the recomputed plan is still
  // field-for-field what a direct plan_layer call builds.
  const dataflow::ExecutionPlan refetched =
      cache.plan_for(layers.front(), array, memory);
  expect_plan_identical(refetched,
                        dataflow::plan_layer(layers.front(), array, memory));
  EXPECT_EQ(cache.stats().misses, static_cast<std::uint64_t>(kLayers) + 1);
}

TEST(PlanCache, LruEvictsColdEntriesFirst) {
  const dataflow::ArrayShape array;
  const mem::HierarchyConfig memory;
  const std::uint64_t one_plan =
      plan_footprint_bytes(dataflow::plan_layer(base_layer(), array, memory));
  PlanCache cache(PlanCacheOptions{.max_bytes = 2 * one_plan + one_plan / 2});

  nn::ConvLayerParams a = base_layer();
  nn::ConvLayerParams b = base_layer();
  b.in_width = 18;
  nn::ConvLayerParams c = base_layer();
  c.in_width = 20;
  for (const auto* p : {&a, &b}) (void)cache.plan_for(*p, array, memory);
  // Touch `a` so `b` becomes the LRU victim when `c` arrives.
  (void)cache.plan_for(a, array, memory);
  (void)cache.plan_for(c, array, memory);

  const std::uint64_t hits_before = cache.stats().hits;
  (void)cache.plan_for(a, array, memory);  // still resident
  EXPECT_EQ(cache.stats().hits, hits_before + 1);
  (void)cache.plan_for(b, array, memory);  // evicted -> miss
  EXPECT_EQ(cache.stats().hits, hits_before + 1);
  EXPECT_EQ(cache.stats().misses, 4u);  // a, b, c, b-again
}

TEST(PlanCache, BudgetBelowOnePlanKeepsTheNewestEntry) {
  const dataflow::ArrayShape array;
  const mem::HierarchyConfig memory;
  PlanCache cache(PlanCacheOptions{.max_bytes = 1});  // absurdly small

  nn::ConvLayerParams a = base_layer();
  nn::ConvLayerParams b = base_layer();
  b.in_width = 18;
  (void)cache.plan_for(a, array, memory);
  (void)cache.plan_for(b, array, memory);
  // The cache degrades to one (most recent) entry instead of emptying.
  EXPECT_EQ(cache.stats().entries, 1u);
  const std::uint64_t hits_before = cache.stats().hits;
  (void)cache.plan_for(b, array, memory);
  EXPECT_EQ(cache.stats().hits, hits_before + 1);
}

TEST(PlanCache, UnboundedByDefault) {
  PlanCache cache;
  EXPECT_EQ(cache.options().max_bytes, 0u);
  const dataflow::ArrayShape array;
  const mem::HierarchyConfig memory;
  for (int i = 0; i < 8; ++i) {
    nn::ConvLayerParams p = base_layer();
    p.in_width = 16 + 2 * i;
    p.validate();
    (void)cache.plan_for(p, array, memory);
  }
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 8u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_GT(stats.bytes, 0u);
}

}  // namespace
}  // namespace chainnn::serve
