// Fleet::recover: kill a journaled fleet at an arbitrary byte of its
// journal and prove the replacement fleet reconstructs exactly the
// requests that had no terminal record — bit-identical results (ofmaps
// AND cycles, the same-chip pinning guarantee), no lost and no
// duplicated requests — including resuming from a journaled preemption
// checkpoint, handing a checkpoint off across chips when the original
// chip is gone, PlanCache warm-starts, and recovery idempotence.
//
// Recovered replays draw the default weight stream (weight_init is
// deliberately not journaled), so every request here uses default
// weights — the serving common case recovery is specified for.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "chain/network_runner.hpp"
#include "common/rng.hpp"
#include "serve/durable.hpp"
#include "serve/fleet.hpp"
#include "serve/journal.hpp"

namespace chainnn::serve {
namespace {

std::string temp_path(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("chainnn_recovery_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  return (dir / name).string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

nn::NetworkModel tiny_net(int layers) {
  nn::NetworkModel net;
  net.name = "tiny" + std::to_string(layers);
  std::int64_t channels = 2;
  for (int i = 0; i < layers; ++i) {
    nn::ConvLayerParams l;
    l.name = "c" + std::to_string(i + 1);
    l.in_channels = channels;
    l.out_channels = (i + 1 == layers) ? 2 : 3;
    l.in_height = l.in_width = 8;
    l.kernel = 3;
    l.pad = 1;
    channels = l.out_channels;
    net.conv_layers.push_back(l);
  }
  return net;
}

Tensor<std::int16_t> request_input(const nn::NetworkModel& net,
                                   std::int64_t batch, std::uint64_t seed) {
  const nn::ConvLayerParams& first = net.conv_layers.front();
  Tensor<std::int16_t> input(
      Shape{batch, first.in_channels, first.in_height, first.in_width});
  Rng rng(seed);
  input.fill_random(rng, -64, 64);
  return input;
}

chain::AcceleratorConfig chip_config(const ChipSpec& chip) {
  chain::AcceleratorConfig cfg = analytical_accelerator_config();
  cfg.array = chip.array;
  cfg.memory = chip.memory;
  return cfg;
}

// Reference execution, undisturbed, default weight stream: what any
// recovery of the request must reproduce.
chain::NetworkRunResult direct_run(const nn::NetworkModel& net,
                                   const Tensor<std::int16_t>& input,
                                   const chain::AcceleratorConfig& cfg) {
  chain::ChainAccelerator acc(cfg);
  const auto energy = energy::EnergyModel::paper_calibrated();
  chain::NetworkRunner runner(acc, energy);
  chain::NetworkRunOptions ro;
  ro.verify_against_golden = false;
  return runner.run(net, input, ro);
}

std::shared_ptr<chain::RunCheckpoint> capture_checkpoint(
    const nn::NetworkModel& net, const Tensor<std::int16_t>& input,
    const chain::AcceleratorConfig& cfg, std::int64_t after_layers) {
  chain::ChainAccelerator acc(cfg);
  const auto energy = energy::EnergyModel::paper_calibrated();
  chain::NetworkRunner runner(acc, energy);
  chain::NetworkRunOptions ro;
  ro.verify_against_golden = false;
  std::int64_t polls = 0;
  ro.preempt_check = [&polls, after_layers] {
    return polls++ == after_layers;
  };
  try {
    (void)runner.run(net, input, ro);
  } catch (const chain::RunPreempted& preempted) {
    return preempted.checkpoint();
  }
  ADD_FAILURE() << "run was not preempted";
  return nullptr;
}

// Byte offsets of every clean cut point in a journal file: after the
// header, and after each whole record. A cut at any *other* offset lands
// mid-record (the torn-tail case).
struct JournalLayout {
  std::vector<std::size_t> boundaries;  // [0] = header-only
  std::vector<RecordType> types;        // type of record ending at [i+1]
};

JournalLayout journal_layout(const std::string& bytes) {
  JournalLayout out;
  std::size_t pos = 12;  // magic + version
  out.boundaries.push_back(pos);
  const JournalReadResult log =
      read_records(std::string_view(bytes).substr(pos));
  EXPECT_FALSE(log.truncated_tail);
  EXPECT_EQ(log.checksum_errors, 0);
  for (const JournalRecord& rec : log.records) {
    pos += 12 + 1 + rec.payload.size();
    out.boundaries.push_back(pos);
    out.types.push_back(rec.type);
  }
  EXPECT_EQ(pos, bytes.size());
  return out;
}

FleetOptions journaled_fleet_options(const std::string& journal_path,
                                     std::vector<ChipSpec> chips = {}) {
  FleetOptions opts;
  opts.chips = std::move(chips);
  opts.threads_per_chip = 1;
  opts.preemption = true;
  JournalOptions jo;
  jo.path = journal_path;
  jo.fsync_every_records = 0;  // crash-cut simulation slices bytes itself
  opts.journal = std::make_shared<Journal>(jo);
  return opts;
}

// Recovers the first `cut` bytes of `journal_bytes` into a fresh fleet
// and asserts the whole contract: exactly the journal's in-flight
// requests are replayed, in order, each bit-identical to its pre-crash
// baseline result on the same chip, and the post-recovery accounting
// balances (no lost or duplicated requests). Returns the recovery
// journal path when `journaled` (for idempotence checks).
struct CutVerdict {
  RecoveryReport report;
  std::string recovery_journal;
};

CutVerdict verify_recovery_at_cut(
    const std::string& journal_bytes, std::size_t cut,
    const std::map<std::uint64_t, InferenceResult>& baseline,
    const std::vector<ChipSpec>& chips, const std::string& label,
    bool journaled = false) {
  SCOPED_TRACE(label);
  CutVerdict out;
  const std::string cut_path = temp_path(label + ".jrnl");
  write_file(cut_path, std::string_view(journal_bytes).substr(0, cut));

  // The oracle: a pure analysis of the very bytes recover() will read.
  const JournalAnalysis oracle = analyze_journal_file(cut_path);

  FleetOptions opts;
  opts.chips = chips;
  opts.threads_per_chip = 1;
  opts.preemption = true;
  if (journaled) {
    out.recovery_journal = temp_path(label + ".recovery.jrnl");
    JournalOptions jo;
    jo.path = out.recovery_journal;
    jo.fsync_every_records = 0;
    opts.journal = std::make_shared<Journal>(jo);
  }
  Fleet fleet(opts);
  RecoveryReport rep = fleet.recover(cut_path);

  EXPECT_EQ(rep.journal_submits, oracle.submits);
  EXPECT_EQ(rep.journal_completed, oracle.completed);
  EXPECT_EQ(rep.journal_cancelled, oracle.cancelled);
  EXPECT_EQ(rep.journal_rejected, oracle.rejected);
  EXPECT_EQ(rep.truncated_tail, oracle.truncated_tail);
  EXPECT_EQ(rep.checksum_errors, oracle.checksum_errors);
  EXPECT_EQ(rep.replayed,
            static_cast<std::int64_t>(oracle.in_flight.size()));
  EXPECT_EQ(rep.futures.size(), oracle.in_flight.size());

  for (std::size_t i = 0;
       i < rep.futures.size() && i < oracle.in_flight.size(); ++i) {
    const std::uint64_t tag = rep.futures[i].first;
    EXPECT_EQ(tag, oracle.in_flight[i].submit.tag) << "replay order";
    const InferenceResult replayed = rep.futures[i].second.get();
    EXPECT_EQ(replayed.tag, tag);
    EXPECT_EQ(replayed.status, RequestStatus::kOk) << "tag " << tag;
    const auto base = baseline.find(tag);
    if (base == baseline.end()) {
      ADD_FAILURE() << "replayed unknown tag " << tag;
      continue;
    }
    // Same chip as before the crash (the pin), hence bit identity —
    // ofmaps, accumulators, cycles, traffic, final activations.
    EXPECT_EQ(replayed.chip, base->second.chip) << "tag " << tag;
    std::string why;
    EXPECT_TRUE(
        network_runs_identical(base->second.run, replayed.run, &why))
        << "tag " << tag << ": " << why;
  }

  fleet.wait_idle();
  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.recovered_requests, rep.replayed);
  EXPECT_EQ(stats.submitted, rep.replayed);
  EXPECT_EQ(stats.completed + stats.cancelled + stats.failed,
            rep.replayed);
  EXPECT_EQ(stats.checkpoint_handoffs, 0);  // same topology: always pinned
  out.report = std::move(rep);
  return out;
}

// Runs a journaled baseline fleet over a mixed trace to completion and
// returns every result keyed by durable tag, plus the journal bytes.
struct Baseline {
  std::map<std::uint64_t, InferenceResult> by_tag;
  std::string journal_bytes;
  std::vector<ChipSpec> chips;
  FleetStats stats;
};

Baseline run_baseline(const std::string& journal_path) {
  Baseline out;
  const nn::NetworkModel net2 = tiny_net(2);
  const nn::NetworkModel net3 = tiny_net(3);
  {
    Fleet fleet(journaled_fleet_options(journal_path));
    out.chips = fleet.chips();
    std::vector<std::future<InferenceResult>> futures;
    for (int i = 0; i < 8; ++i) {
      const nn::NetworkModel& net = (i % 2 == 0) ? net2 : net3;
      RequestOptions options;
      options.priority = (i % 3 == 2) ? 2 : 0;
      if (i % 2 == 0) {
        // Explicit input (journaled verbatim in the SUBMIT record).
        futures.push_back(fleet.submit(
            net, request_input(net, 1 + i % 2, 100 + i), options));
      } else {
        // Generated input (journaled too — the journaling path derives
        // it from the durable tag so a replay regenerates nothing).
        futures.push_back(fleet.submit(net, /*batch=*/2, options));
      }
    }
    for (std::future<InferenceResult>& f : futures) {
      InferenceResult r = f.get();
      EXPECT_EQ(r.status, RequestStatus::kOk);
      EXPECT_NE(r.tag, 0u);
      out.by_tag.emplace(r.tag, std::move(r));
    }
    fleet.wait_idle();
    out.stats = fleet.stats();
    EXPECT_EQ(out.stats.submitted, 8);
    EXPECT_EQ(out.stats.completed, 8);
    EXPECT_EQ(out.stats.journal.records_appended,
              8 + 8 + out.stats.preemptions);  // SUBMIT+COMPLETE+CHECKPOINT
  }  // fleet and journal destroyed: file synced and closed
  out.journal_bytes = read_file(journal_path);
  return out;
}

TEST(Recovery, KillAtEveryRecordBoundary) {
  const Baseline base = run_baseline(temp_path("kill_boundary.jrnl"));
  ASSERT_EQ(base.by_tag.size(), 8u);

  const JournalLayout layout = journal_layout(base.journal_bytes);
  ASSERT_GE(layout.boundaries.size(), 17u);  // header + >= 16 records

  // Every clean cut: from "crashed before anything happened" (header
  // only — an empty journal recovers to an empty fleet) through "crashed
  // after the last terminal record" (nothing to replay).
  for (std::size_t i = 0; i < layout.boundaries.size(); ++i) {
    const CutVerdict v = verify_recovery_at_cut(
        base.journal_bytes, layout.boundaries[i], base.by_tag, base.chips,
        "boundary_" + std::to_string(i));
    EXPECT_FALSE(v.report.truncated_tail);
    if (i == 0) EXPECT_EQ(v.report.replayed, 0);
    if (i + 1 == layout.boundaries.size())
      EXPECT_EQ(v.report.replayed, 0) << "fully terminal log";
  }
}

TEST(Recovery, KillMidRecordTruncatesAndRecovers) {
  const Baseline base = run_baseline(temp_path("kill_midrec.jrnl"));
  const JournalLayout layout = journal_layout(base.journal_bytes);
  ASSERT_GE(layout.boundaries.size(), 4u);

  // A tear inside record k loses exactly record k: the recovery equals a
  // clean cut at the previous boundary, with the tear flagged.
  const std::size_t picks[] = {0, layout.boundaries.size() / 2,
                               layout.boundaries.size() - 2};
  for (const std::size_t k : picks) {
    const std::size_t cut = layout.boundaries[k] + 5;  // mid length-prefix
    const CutVerdict torn = verify_recovery_at_cut(
        base.journal_bytes, cut, base.by_tag, base.chips,
        "midrec_" + std::to_string(k));
    EXPECT_TRUE(torn.report.truncated_tail);
    const CutVerdict clean = verify_recovery_at_cut(
        base.journal_bytes, layout.boundaries[k], base.by_tag, base.chips,
        "midrec_clean_" + std::to_string(k));
    EXPECT_EQ(torn.report.replayed, clean.report.replayed);
  }
}

TEST(Recovery, RecoveryIsIdempotent) {
  const Baseline base = run_baseline(temp_path("idempotent.jrnl"));
  const JournalLayout layout = journal_layout(base.journal_bytes);

  // Crash mid-stream, recover with a *journaled* fleet, drain; the
  // recovery's own journal must analyze to "everything terminal" — a
  // second recovery replays nothing (requests are never duplicated).
  const std::size_t cut = layout.boundaries[layout.boundaries.size() / 2];
  const CutVerdict v =
      verify_recovery_at_cut(base.journal_bytes, cut, base.by_tag,
                             base.chips, "idem", /*journaled=*/true);
  ASSERT_FALSE(v.recovery_journal.empty());

  const JournalAnalysis again = analyze_journal_file(v.recovery_journal);
  EXPECT_EQ(again.submits, v.report.replayed);
  EXPECT_TRUE(again.in_flight.empty());

  FleetOptions opts;
  opts.chips = base.chips;
  Fleet second(opts);
  RecoveryReport rep2 = second.recover(v.recovery_journal);
  EXPECT_EQ(rep2.replayed, 0);
  EXPECT_TRUE(rep2.futures.empty());
}

TEST(Recovery, LivePreemptionCheckpointSurvivesTheCrash) {
  // End-to-end through the serving stack: a real preemption journals its
  // checkpoint via the fleet's checkpoint hook; cutting the journal
  // right after that record (the crash window between preemption and
  // completion) recovers the preempted request *from the checkpoint*,
  // bit-identical to its pre-crash result.
  const std::vector<ChipSpec> one_chip = {default_fleet_chips()[1]};
  const nn::NetworkModel net = tiny_net(3);

  // Keep the chip busy with slow (cycle-accurate) low-priority work so
  // the high-priority arrival preempts whichever request is running.
  // The race is benign — submits take microseconds, runs milliseconds —
  // but a handful of attempts makes the test robust to any scheduler.
  for (int attempt = 0; attempt < 5; ++attempt) {
    const std::string path =
        temp_path("live_ckpt_" + std::to_string(attempt) + ".jrnl");
    std::map<std::uint64_t, InferenceResult> by_tag;
    std::int64_t preemptions = 0;
    {
      Fleet fleet(journaled_fleet_options(path, one_chip));
      std::vector<std::future<InferenceResult>> futures;
      for (int i = 0; i < 3; ++i) {
        RequestOptions slow;
        slow.priority = 0;
        slow.exec_mode = chain::ExecMode::kCycleAccurate;
        futures.push_back(
            fleet.submit(net, request_input(net, 2, 500 + i), slow));
      }
      RequestOptions urgent;
      urgent.priority = 2;
      futures.push_back(
          fleet.submit(net, request_input(net, 1, 900), urgent));
      for (std::future<InferenceResult>& f : futures) {
        InferenceResult r = f.get();
        EXPECT_EQ(r.status, RequestStatus::kOk);
        by_tag.emplace(r.tag, std::move(r));
      }
      fleet.wait_idle();
      preemptions = fleet.stats().preemptions;
    }
    if (preemptions == 0) continue;  // urgent arrived too late; retry

    const std::string bytes = read_file(path);
    const JournalLayout layout = journal_layout(bytes);
    std::size_t after_checkpoint = 0;
    for (std::size_t i = 0; i < layout.types.size(); ++i)
      if (layout.types[i] == RecordType::kCheckpoint) {
        after_checkpoint = layout.boundaries[i + 1];
        break;
      }
    ASSERT_GT(after_checkpoint, 0u) << "preemption did not journal";

    const CutVerdict v = verify_recovery_at_cut(
        bytes, after_checkpoint, by_tag, one_chip, "live_ckpt");
    EXPECT_GE(v.report.resumed_from_checkpoint, 1);
    EXPECT_EQ(v.report.checkpoint_handoffs, 0);
    return;
  }
  FAIL() << "no preemption in 5 attempts — is the chip too fast?";
}

TEST(Recovery, CheckpointResumesBitIdenticalOnTheSameChip) {
  // Deterministic (no races): hand-author the exact journal a crash
  // between CHECKPOINT and COMPLETE leaves behind.
  const std::vector<ChipSpec> chips = default_fleet_chips();
  const ChipSpec& chip = chips[1];
  const nn::NetworkModel net = tiny_net(3);
  const Tensor<std::int16_t> input = request_input(net, 1, 77);
  const chain::AcceleratorConfig cfg = chip_config(chip);

  const std::shared_ptr<chain::RunCheckpoint> cp =
      capture_checkpoint(net, input, cfg, /*after_layers=*/2);
  ASSERT_NE(cp, nullptr);

  const std::string path = temp_path("handcrafted.jrnl");
  {
    Journal journal({path, 1});
    SubmitRecord rec;
    rec.tag = 5;
    rec.chip_name = chip.name;
    rec.net = net;
    rec.input = input;
    journal.append(encode_submit(rec));
    journal.append(encode_checkpoint_payload(5, chip.name, *cp));
  }

  FleetOptions opts;
  opts.chips = chips;
  Fleet fleet(opts);
  RecoveryReport rep = fleet.recover(path);
  EXPECT_EQ(rep.replayed, 1);
  EXPECT_EQ(rep.resumed_from_checkpoint, 1);
  EXPECT_EQ(rep.checkpoint_handoffs, 0);
  ASSERT_EQ(rep.futures.size(), 1u);
  EXPECT_EQ(rep.futures[0].first, 5u);

  const InferenceResult r = rep.futures[0].second.get();
  EXPECT_EQ(r.status, RequestStatus::kOk);
  EXPECT_EQ(r.chip, chip.name);
  EXPECT_TRUE(r.resumed);
  // Only the layer past the checkpoint actually re-executed, yet the
  // result equals the uninterrupted run bit for bit.
  const chain::NetworkRunResult reference = direct_run(net, input, cfg);
  std::string why;
  EXPECT_TRUE(network_runs_identical(reference, r.run, &why)) << why;
}

TEST(Recovery, CheckpointHandsOffWhenTheChipIsGone) {
  const std::vector<ChipSpec> all = default_fleet_chips();
  const ChipSpec& origin = all[0];  // present before the crash...
  const std::vector<ChipSpec> survivors = {all[2]};  // ...gone after

  const nn::NetworkModel net = tiny_net(3);
  const Tensor<std::int16_t> input = request_input(net, 1, 33);
  const std::shared_ptr<chain::RunCheckpoint> cp =
      capture_checkpoint(net, input, chip_config(origin),
                         /*after_layers=*/1);
  ASSERT_NE(cp, nullptr);

  const std::string path = temp_path("handoff.jrnl");
  {
    Journal journal({path, 1});
    SubmitRecord rec;
    rec.tag = 9;
    rec.chip_name = origin.name;
    rec.net = net;
    rec.input = input;
    journal.append(encode_submit(rec));
    journal.append(encode_checkpoint_payload(9, origin.name, *cp));
  }

  FleetOptions opts;
  opts.chips = survivors;
  Fleet fleet(opts);
  RecoveryReport rep = fleet.recover(path);
  EXPECT_EQ(rep.replayed, 1);
  EXPECT_EQ(rep.resumed_from_checkpoint, 1);
  EXPECT_EQ(rep.checkpoint_handoffs, 1);

  ASSERT_EQ(rep.futures.size(), 1u);
  const InferenceResult r = rep.futures[0].second.get();
  EXPECT_EQ(r.status, RequestStatus::kOk);
  EXPECT_EQ(r.chip, survivors[0].name);
  // Cross-chip resume re-plans the remaining layers: value identity on
  // every ofmap (cycle accounting is the new chip's — the PR-5
  // guarantee), against an uninterrupted run on the origin chip.
  const chain::NetworkRunResult reference =
      direct_run(net, input, chip_config(origin));
  ASSERT_EQ(r.run.layers.size(), reference.layers.size());
  for (std::size_t i = 0; i < reference.layers.size(); ++i)
    EXPECT_TRUE(r.run.layers[i].run.ofmaps ==
                reference.layers[i].run.ofmaps)
        << "ofmaps differ at layer " << i;
  EXPECT_TRUE(r.run.final_activations == reference.final_activations);

  fleet.wait_idle();
  EXPECT_EQ(fleet.stats().checkpoint_handoffs, 1);
}

TEST(Recovery, PlanCacheWarmStartsFromSnapshot) {
  const std::vector<ChipSpec> chips = default_fleet_chips();
  const nn::NetworkModel net = tiny_net(3);

  PlanCache cache;
  for (const nn::ConvLayerParams& l : net.conv_layers)
    (void)cache.plan_for(l, chips[0].array, chips[0].memory);
  const std::string snapshot = temp_path("plans.snap");
  const std::int64_t saved = save_plan_cache(cache, snapshot);
  ASSERT_GT(saved, 0);

  const std::string journal_path = temp_path("warmstart.jrnl");
  { Journal journal({journal_path, 1}); }  // valid, empty journal

  FleetOptions opts;
  opts.chips = chips;
  Fleet fleet(opts);
  RecoveryReport rep = fleet.recover(journal_path, snapshot);
  EXPECT_EQ(rep.replayed, 0);
  EXPECT_EQ(rep.plan_cache_entries_loaded, saved);
  EXPECT_EQ(fleet.plan_cache()->size(),
            static_cast<std::uint64_t>(saved));

  // The warm entries actually serve: routing + running this net on the
  // snapshotted chip misses nothing it already holds.
  const std::uint64_t misses = fleet.plan_cache()->stats().misses;
  PlanCache::Lookup lookup;
  (void)fleet.plan_cache()->plan_for(net.conv_layers.front(),
                                     chips[0].array, chips[0].memory,
                                     &lookup);
  EXPECT_TRUE(lookup.hit);
  EXPECT_EQ(fleet.plan_cache()->stats().misses, misses);
}

TEST(Recovery, MissingOrGarbledJournalRefuses) {
  Fleet fleet{FleetOptions{}};
  EXPECT_THROW((void)fleet.recover(temp_path("never_written.jrnl")),
               JournalError);

  const std::string garbled = temp_path("garbled.jrnl");
  write_file(garbled, "this is not a journal at all, sorry");
  EXPECT_THROW((void)fleet.recover(garbled), JournalError);
}

}  // namespace
}  // namespace chainnn::serve
