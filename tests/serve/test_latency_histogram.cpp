// LatencyHistogram: log-bucket math, quantile error bounds (one bucket
// ratio, ~19%), overflow/garbage handling, and concurrent recording —
// the counters feeding the gateway's /metrics must be cheap AND right.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "serve/latency_histogram.hpp"

namespace chainnn::serve {
namespace {

// One log-bucket step: a reported quantile is the bucket's upper bound,
// so it can exceed the true value by at most this ratio.
constexpr double kBucketRatio = 1.1892071150027210667;  // 2^(1/4)

TEST(LatencyHistogram, CountsAndSumAreExact) {
  LatencyHistogram h;
  h.record(1.0);
  h.record(2.0);
  h.record(3.0);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum_ms, 6.0);
  // Prometheus consistency: _count equals the sum over buckets.
  std::uint64_t total = 0;
  for (const std::uint64_t c : snap.counts) total += c;
  EXPECT_EQ(total, snap.count);
}

TEST(LatencyHistogram, QuantilesWithinOneBucketRatio) {
  LatencyHistogram h;
  // 1..1000 ms uniform: p50 ~ 500, p99 ~ 990.
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const auto snap = h.snapshot();
  EXPECT_GE(snap.p50_ms(), 500.0 / kBucketRatio);
  EXPECT_LE(snap.p50_ms(), 500.0 * kBucketRatio);
  EXPECT_GE(snap.p99_ms(), 990.0 / kBucketRatio);
  EXPECT_LE(snap.p99_ms(), 990.0 * kBucketRatio);
  // Quantiles are monotone in p.
  EXPECT_LE(snap.p50_ms(), snap.p99_ms());
  EXPECT_LE(snap.p99_ms(), snap.p999_ms());
}

TEST(LatencyHistogram, BucketBoundsAreMonotoneAndCoverTheRange) {
  double prev = 0.0;
  for (int i = 0; i < LatencyHistogram::kFiniteBuckets; ++i) {
    const double upper = LatencyHistogram::bucket_upper_ms(i);
    EXPECT_GT(upper, prev);
    prev = upper;
  }
  // 96 quarter-octave buckets from 1us: top finite bound >= 10s.
  EXPECT_GE(prev, 10000.0);
}

TEST(LatencyHistogram, GarbageAndExtremesDoNotCrashOrLeak) {
  LatencyHistogram h;
  h.record(-1.0);               // clamped to the first bucket
  h.record(0.0);                // below kMinMs
  h.record(0.0 / 0.0);          // NaN
  h.record(1e12);               // overflow bucket
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_GT(snap.counts.front(), 0u);  // the tiny/garbage records
  EXPECT_GT(snap.counts.back(), 0u);   // the overflow record
  // The overflow bucket reports the last finite bound, not infinity.
  EXPECT_LE(snap.p999_ms(),
            LatencyHistogram::bucket_upper_ms(
                LatencyHistogram::kFiniteBuckets - 1) +
                1.0);
}

TEST(LatencyHistogram, EmptySnapshotIsZeroNotUB) {
  const auto snap = LatencyHistogram().snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.sum_ms, 0.0);
  EXPECT_DOUBLE_EQ(snap.p50_ms(), 0.0);
  EXPECT_DOUBLE_EQ(snap.p999_ms(), 0.0);
}

TEST(LatencyHistogram, ConcurrentRecordsAllLand) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i)
        h.record(0.5 + static_cast<double>((t * kPerThread + i) % 100));
    });
  for (auto& t : threads) t.join();
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t total = 0;
  for (const std::uint64_t c : snap.counts) total += c;
  EXPECT_EQ(total, snap.count);
}

}  // namespace
}  // namespace chainnn::serve
