// SweepDriver: executed design-space sweeps must share plans across
// points (hit rate > 0), and the cache must be semantics-free — a
// shared-cache sweep produces per-point executed cycles / energy / ofmaps
// identical to a cold-cache sweep.
#include <gtest/gtest.h>

#include <vector>

#include "serve/sweep_driver.hpp"

namespace chainnn::serve {
namespace {

nn::NetworkModel tiny_net() {
  nn::NetworkModel net;
  net.name = "tiny";
  nn::ConvLayerParams l1;
  l1.name = "c1";
  l1.in_channels = 2;
  l1.out_channels = 4;
  l1.in_height = l1.in_width = 10;
  l1.kernel = 3;
  l1.pad = 1;
  l1.validate();
  nn::ConvLayerParams l2;
  l2.name = "c2";
  l2.in_channels = 4;
  l2.out_channels = 3;
  l2.in_height = l2.in_width = 10;
  l2.kernel = 3;
  l2.pad = 1;
  l2.validate();
  net.conv_layers = {l1, l2};
  return net;
}

std::vector<SweepPointSpec> test_points() {
  std::vector<SweepPointSpec> points;
  points.push_back({"pes-576", dataflow::ArrayShape{}});
  dataflow::ArrayShape clocked;
  clocked.clock_hz = 350e6;
  points.push_back({"clk-350", clocked});
  dataflow::ArrayShape shorter;
  shorter.num_pes = 144;
  points.push_back({"pes-144", shorter});
  return points;
}

TEST(SweepDriver, SharedCacheHitsAcrossPoints) {
  SweepDriver driver(tiny_net(), {});
  const auto results = driver.run(test_points());
  ASSERT_EQ(results.size(), 3u);

  // Point 1 plans everything; the clock variant shares every plan (the
  // clock is outside the key); the shorter chain re-plans.
  EXPECT_EQ(results[0].cache_hits, 0u);
  EXPECT_EQ(results[0].cache_misses, 2u);
  EXPECT_EQ(results[1].cache_hits, 2u);
  EXPECT_EQ(results[1].cache_misses, 0u);
  EXPECT_DOUBLE_EQ(results[1].cache_hit_rate(), 1.0);
  EXPECT_EQ(results[2].cache_hits, 0u);
  EXPECT_EQ(results[2].cache_misses, 2u);

  const PlanCacheStats stats = driver.plan_cache()->stats();
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_GT(stats.hits, 0u);

  // The executed figures respond to the design point: half the clock
  // doubles the time at identical cycles; the shorter chain schedules
  // differently (on layers this small its 16-primitive drain is actually
  // cheaper than the 64-primitive one).
  EXPECT_EQ(results[0].total_cycles, results[1].total_cycles);
  EXPECT_NEAR(results[1].seconds, 2.0 * results[0].seconds,
              1e-12 * results[1].seconds);
  EXPECT_NE(results[2].total_cycles, results[0].total_cycles);
  for (const auto& r : results) {
    EXPECT_GT(r.fps, 0.0);
    EXPECT_GT(r.energy_j, 0.0);
  }
}

TEST(SweepDriver, CacheIsSemanticsFree) {
  // Shared-cache sweep vs per-point cold caches: identical executed
  // cycles, energy and activations at every point.
  const nn::NetworkModel net = tiny_net();
  const auto points = test_points();

  SweepOptions shared_opts;
  shared_opts.batch = 2;
  SweepDriver shared_driver(net, shared_opts);
  const auto shared = shared_driver.run(points);

  std::vector<SweepPointResult> cold;
  for (const auto& point : points) {
    SweepOptions cold_opts;
    cold_opts.batch = 2;
    SweepDriver cold_driver(net, cold_opts);  // fresh cache per point
    auto r = cold_driver.run({point});
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0].cache_hits, 0u);  // genuinely cold
    cold.push_back(std::move(r[0]));
  }

  ASSERT_EQ(shared.size(), cold.size());
  for (std::size_t i = 0; i < shared.size(); ++i) {
    SCOPED_TRACE(shared[i].point.label);
    EXPECT_EQ(shared[i].total_cycles, cold[i].total_cycles);
    EXPECT_DOUBLE_EQ(shared[i].seconds, cold[i].seconds);
    EXPECT_DOUBLE_EQ(shared[i].energy_j, cold[i].energy_j);
    EXPECT_DOUBLE_EQ(shared[i].fps, cold[i].fps);
    std::string why;
    EXPECT_TRUE(network_runs_identical(shared[i].run, cold[i].run, &why))
        << why;
  }
}

TEST(SweepDriver, FidelitySamplingAcrossPoints) {
  SweepOptions opts;
  opts.fidelity_sample_every_n = 1;  // every point cross-checked
  SweepDriver driver(tiny_net(), opts);
  const auto results = driver.run(test_points());
  for (const auto& r : results) {
    SCOPED_TRACE(r.point.label);
    EXPECT_TRUE(r.fidelity_sampled);
    EXPECT_FALSE(r.fidelity_diverged);
  }
}

TEST(SweepDriver, CycleAccurateSweepMatchesAnalytical) {
  const nn::NetworkModel net = tiny_net();
  const auto points = test_points();

  SweepOptions fast;
  SweepDriver fast_driver(net, fast);
  SweepOptions slow;
  slow.exec_mode = chain::ExecMode::kCycleAccurate;
  SweepDriver slow_driver(net, slow);

  const auto fr = fast_driver.run(points);
  const auto sr = slow_driver.run(points);
  ASSERT_EQ(fr.size(), sr.size());
  for (std::size_t i = 0; i < fr.size(); ++i) {
    SCOPED_TRACE(fr[i].point.label);
    std::string why;
    EXPECT_TRUE(network_runs_identical(fr[i].run, sr[i].run, &why)) << why;
    EXPECT_EQ(fr[i].total_cycles, sr[i].total_cycles);
  }
}

TEST(SweepDriver, WallTimeExcludesQueueWait) {
  // The sweep's wall_ms must be the server-side execution-only stamp,
  // with queue wait reported separately — co-tenant traffic on a shared
  // single-threaded server must land in queue_ms, never in wall_ms.
  // Regression for sweeps mistaking scheduling delay for point cost.
  ServerOptions so;
  so.num_threads = 1;
  InferenceServer server(so);
  const nn::NetworkModel net = tiny_net();
  RequestOptions slow;
  slow.exec_mode = chain::ExecMode::kCycleAccurate;  // ~50x analytical
  RequestOptions fast;
  fast.exec_mode = chain::ExecMode::kAnalytical;
  auto a = server.submit(net, /*batch=*/4, slow);
  auto b = server.submit(net, /*batch=*/4, fast);  // queues behind `a`
  const InferenceResult ra = a.get();
  const InferenceResult rb = b.get();
  ASSERT_EQ(ra.status, RequestStatus::kOk);
  ASSERT_EQ(rb.status, RequestStatus::kOk);
  EXPECT_GT(ra.wall_ms, 0.0);
  EXPECT_GT(rb.wall_ms, 0.0);
  // `b` sat in the queue for (at least most of) `a`'s execution…
  EXPECT_GE(rb.queue_ms, 0.5 * ra.wall_ms);
  // …and none of that wait leaked into its own wall time: the analytical
  // run is far cheaper than the cycle-accurate one it queued behind.
  EXPECT_LT(rb.wall_ms, rb.queue_ms);

  // Sweep-level: points are submitted and awaited in turn, so both
  // stamps flow through per point and no point queues behind another.
  SweepDriver driver(net, {});
  for (const auto& r : driver.run(test_points())) {
    SCOPED_TRACE(r.point.label);
    EXPECT_GT(r.wall_ms, 0.0);
    EXPECT_GE(r.queue_ms, 0.0);
    EXPECT_LT(r.queue_ms, r.wall_ms + 100.0);  // no co-tenant here
  }
}

TEST(ChannelReducedProxy, PreservesGeometryAndGrouping) {
  const nn::NetworkModel alex = nn::alexnet();
  const nn::NetworkModel proxy = channel_reduced_proxy(alex, 16);
  ASSERT_EQ(proxy.conv_layers.size(), alex.conv_layers.size());
  // Input channels of the first layer survive (RGB input).
  EXPECT_EQ(proxy.conv_layers.front().in_channels,
            alex.conv_layers.front().in_channels);
  for (std::size_t i = 0; i < proxy.conv_layers.size(); ++i) {
    const auto& p = proxy.conv_layers[i];
    const auto& a = alex.conv_layers[i];
    EXPECT_EQ(p.kernel, a.kernel);
    EXPECT_EQ(p.stride, a.stride);
    EXPECT_EQ(p.in_height, a.in_height);
    EXPECT_LE(p.out_channels, std::max<std::int64_t>(1, a.out_channels));
    EXPECT_NO_THROW(p.validate());
  }
  // Scale 1 is the identity on channels.
  const nn::NetworkModel same = channel_reduced_proxy(alex, 1);
  for (std::size_t i = 0; i < same.conv_layers.size(); ++i)
    EXPECT_EQ(same.conv_layers[i].out_channels,
              alex.conv_layers[i].out_channels);
}

}  // namespace
}  // namespace chainnn::serve
