// Journal framing + durable wire formats: torn tails truncate cleanly,
// checksum corruption is counted (not crashed on), version mismatches
// refuse, and every record/checkpoint/snapshot codec round-trips bit for
// bit. The byte layouts under test are specified in docs/WIRE_FORMATS.md.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chain/network_runner.hpp"
#include "common/rng.hpp"
#include "serve/durable.hpp"
#include "serve/inference_server.hpp"
#include "serve/journal.hpp"

namespace chainnn::serve {
namespace {

std::string temp_path(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("chainnn_journal_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  return (dir / name).string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

nn::NetworkModel tiny_net(int layers) {
  nn::NetworkModel net;
  net.name = "tiny" + std::to_string(layers);
  std::int64_t channels = 2;
  for (int i = 0; i < layers; ++i) {
    nn::ConvLayerParams l;
    l.name = "c" + std::to_string(i + 1);
    l.in_channels = channels;
    l.out_channels = (i + 1 == layers) ? 2 : 3;
    l.in_height = l.in_width = 8;
    l.kernel = 3;
    l.pad = 1;
    l.validate();
    channels = l.out_channels;
    net.conv_layers.push_back(l);
  }
  return net;
}

Tensor<std::int16_t> request_input(const nn::NetworkModel& net,
                                   std::int64_t batch, std::uint64_t seed) {
  const nn::ConvLayerParams& first = net.conv_layers.front();
  Tensor<std::int16_t> input(
      Shape{batch, first.in_channels, first.in_height, first.in_width});
  Rng rng(seed);
  input.fill_random(rng, -64, 64);
  return input;
}

// --- framing ---------------------------------------------------------------

TEST(JournalFraming, RoundTripsRecords) {
  std::string body;
  body += frame_record(encode_complete(1));
  body += frame_record(encode_cancel(2, CancelReason::kDeadline));
  body += frame_record(encode_reject(3));

  const JournalReadResult out = read_records(body);
  ASSERT_EQ(out.records.size(), 3u);
  EXPECT_FALSE(out.truncated_tail);
  EXPECT_EQ(out.checksum_errors, 0);
  EXPECT_EQ(out.valid_bytes, body.size());
  EXPECT_EQ(out.records[0].type, RecordType::kComplete);
  EXPECT_EQ(out.records[1].type, RecordType::kCancel);
  EXPECT_EQ(out.records[2].type, RecordType::kReject);
  EXPECT_EQ(decode_terminal(out.records[0].payload, out.records[0].type).tag,
            1u);
  const TerminalRecord cancel =
      decode_terminal(out.records[1].payload, out.records[1].type);
  EXPECT_EQ(cancel.tag, 2u);
  EXPECT_EQ(cancel.reason, CancelReason::kDeadline);
  EXPECT_EQ(decode_terminal(out.records[2].payload, out.records[2].type).tag,
            3u);
}

TEST(JournalFraming, TornTailTruncatesCleanly) {
  std::string body;
  body += frame_record(encode_complete(1));
  body += frame_record(encode_complete(2));
  const std::size_t boundary = body.size();
  body += frame_record(encode_complete(3));

  // Every possible tear inside the final record loses exactly that
  // record, flags the tear, and keeps the prefix intact.
  for (std::size_t cut = boundary + 1; cut < body.size(); ++cut) {
    const JournalReadResult out = read_records(body.substr(0, cut));
    ASSERT_EQ(out.records.size(), 2u) << "cut at " << cut;
    EXPECT_TRUE(out.truncated_tail) << "cut at " << cut;
    EXPECT_EQ(out.checksum_errors, 0) << "cut at " << cut;
    EXPECT_EQ(out.valid_bytes, boundary) << "cut at " << cut;
  }
  // A cut exactly on a record boundary is not a tear.
  const JournalReadResult clean = read_records(body.substr(0, boundary));
  EXPECT_EQ(clean.records.size(), 2u);
  EXPECT_FALSE(clean.truncated_tail);
}

TEST(JournalFraming, ChecksumCorruptionIsCountedNotFatal) {
  const std::string first = frame_record(encode_complete(1));
  std::string body = first;
  body += frame_record(encode_complete(2));
  body += frame_record(encode_complete(3));

  // Flip one payload byte of the middle record: the reader keeps the
  // clean prefix, counts exactly one checksum error, and stops (nothing
  // after a corrupt record can be trusted).
  std::string corrupt = body;
  corrupt[first.size() + 12] ^= 0x01;
  const JournalReadResult out = read_records(corrupt);
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_EQ(out.checksum_errors, 1);
  EXPECT_FALSE(out.truncated_tail);
  EXPECT_EQ(out.valid_bytes, first.size());

  // Corrupting the stored checksum itself is the same verdict.
  std::string bad_sum = body;
  bad_sum[first.size() + 5] ^= 0x80;
  const JournalReadResult out2 = read_records(bad_sum);
  EXPECT_EQ(out2.records.size(), 1u);
  EXPECT_EQ(out2.checksum_errors, 1);
}

TEST(JournalFraming, HeaderValidation) {
  // Missing file.
  EXPECT_THROW((void)read_journal_file(temp_path("nonexistent.jrnl")),
               JournalError);

  // Version mismatch refuses.
  const std::string path = temp_path("version.jrnl");
  {
    ByteWriter w;
    for (const char c : kJournalMagic) w.u8(static_cast<std::uint8_t>(c));
    w.u32(kJournalFormatVersion + 1);
    write_file(path, w.take());
  }
  EXPECT_THROW((void)read_journal_file(path), JournalError);

  // Wrong magic refuses (a snapshot is not a journal and vice versa).
  {
    ByteWriter w;
    for (const char c : kSnapshotMagic) w.u8(static_cast<std::uint8_t>(c));
    w.u32(kJournalFormatVersion);
    write_file(path, w.take());
  }
  EXPECT_THROW((void)read_journal_file(path), JournalError);
  EXPECT_NO_THROW((void)read_journal_file(path, kSnapshotMagic));

  // Shorter than a header refuses.
  write_file(path, "CNN");
  EXPECT_THROW((void)read_journal_file(path), JournalError);
}

TEST(Journal, EmptyJournalIsAJournal) {
  const std::string path = temp_path("empty.jrnl");
  { Journal journal({path, 1}); }
  const JournalReadResult out = read_journal_file(path);
  EXPECT_TRUE(out.records.empty());
  EXPECT_FALSE(out.truncated_tail);
  EXPECT_EQ(out.checksum_errors, 0);

  const JournalAnalysis analysis = analyze_journal_file(path);
  EXPECT_EQ(analysis.submits, 0);
  EXPECT_TRUE(analysis.in_flight.empty());
}

TEST(Journal, AppendsAndFsyncBatching) {
  const std::string path = temp_path("writer.jrnl");
  {
    Journal journal({path, /*fsync_every_records=*/3});
    for (std::uint64_t tag = 1; tag <= 7; ++tag)
      journal.append(encode_complete(tag));
    const JournalStats stats = journal.stats();
    EXPECT_EQ(stats.records_appended, 7);
    EXPECT_GT(stats.bytes_appended, 0);
    EXPECT_EQ(stats.fsyncs, 2);  // after records 3 and 6
    journal.sync();
    EXPECT_EQ(journal.stats().fsyncs, 3);
  }
  const JournalReadResult out = read_journal_file(path);
  ASSERT_EQ(out.records.size(), 7u);
  for (std::uint64_t tag = 1; tag <= 7; ++tag)
    EXPECT_EQ(decode_terminal(out.records[tag - 1].payload,
                              out.records[tag - 1].type)
                  .tag,
              tag);
}

TEST(Journal, ConcurrentAppendsNeverInterleave) {
  const std::string path = temp_path("concurrent.jrnl");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 64;
  {
    Journal journal({path, /*fsync_every_records=*/0});
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      threads.emplace_back([&journal, t] {
        for (std::uint64_t i = 0; i < kPerThread; ++i)
          journal.append(encode_complete(
              static_cast<std::uint64_t>(t) * kPerThread + i + 1));
      });
    for (std::thread& t : threads) t.join();
  }
  // Every record parses clean: appends serialized, none torn or mixed.
  const JournalReadResult out = read_journal_file(path);
  EXPECT_EQ(out.records.size(), kThreads * kPerThread);
  EXPECT_FALSE(out.truncated_tail);
  EXPECT_EQ(out.checksum_errors, 0);
}

// --- record codecs ---------------------------------------------------------

TEST(DurableCodecs, SubmitRecordRoundTrips) {
  SubmitRecord rec;
  rec.tag = 42;
  rec.chip_name = "pe576";
  rec.net = tiny_net(3);
  rec.input = request_input(rec.net, 2, 99);
  rec.priority = -3;
  rec.num_workers = 2;
  rec.verify_against_golden = true;
  rec.exec_mode = chain::ExecMode::kCycleAccurate;
  rec.array = dataflow::ArrayShape{};
  rec.array->num_pes = 288;
  rec.array->clock_hz = 9e8;
  chain::InterLayerOp op;
  op.relu = true;
  op.pool = true;
  op.pool_params.window = 2;
  op.pool_params.stride = 2;
  rec.inter_layer = {op, {}};

  // encode_* emits the full payload (leading type byte, as the journal
  // wants it); decode_* takes the bytes after the type byte, as the
  // framing reader hands them out.
  const std::string enc = encode_submit(rec);
  ASSERT_EQ(static_cast<RecordType>(enc[0]), RecordType::kSubmit);
  const SubmitRecord back =
      decode_submit(std::string_view(enc).substr(1));
  EXPECT_EQ(back.tag, rec.tag);
  EXPECT_EQ(back.chip_name, rec.chip_name);
  EXPECT_EQ(back.net.name, rec.net.name);
  ASSERT_EQ(back.net.conv_layers.size(), rec.net.conv_layers.size());
  for (std::size_t i = 0; i < rec.net.conv_layers.size(); ++i) {
    EXPECT_EQ(back.net.conv_layers[i].name, rec.net.conv_layers[i].name);
    EXPECT_EQ(back.net.conv_layers[i].out_channels,
              rec.net.conv_layers[i].out_channels);
  }
  EXPECT_TRUE(back.input == rec.input);
  EXPECT_EQ(back.priority, rec.priority);
  EXPECT_EQ(back.num_workers, rec.num_workers);
  EXPECT_TRUE(back.verify_against_golden);
  ASSERT_TRUE(back.exec_mode.has_value());
  EXPECT_EQ(*back.exec_mode, chain::ExecMode::kCycleAccurate);
  ASSERT_TRUE(back.array.has_value());
  EXPECT_EQ(back.array->num_pes, 288);
  EXPECT_EQ(back.array->clock_hz, 9e8);
  ASSERT_EQ(back.inter_layer.size(), 2u);
  EXPECT_TRUE(back.inter_layer[0].relu);
  EXPECT_TRUE(back.inter_layer[0].pool);
  EXPECT_EQ(back.inter_layer[0].pool_params.window, 2);
  EXPECT_TRUE(back.inter_layer[1].relu);  // default InterLayerOp
  EXPECT_FALSE(back.inter_layer[1].pool);

  // The defaults side: every optional absent.
  SubmitRecord plain;
  plain.tag = 7;
  plain.net = tiny_net(1);
  plain.input = request_input(plain.net, 1, 5);
  const std::string plain_enc = encode_submit(plain);
  const SubmitRecord plain_back =
      decode_submit(std::string_view(plain_enc).substr(1));
  EXPECT_FALSE(plain_back.exec_mode.has_value());
  EXPECT_FALSE(plain_back.array.has_value());
  EXPECT_TRUE(plain_back.inter_layer.empty());
  EXPECT_FALSE(plain_back.verify_against_golden);
}

// A real mid-run checkpoint: run one layer, preempt at the boundary.
std::shared_ptr<chain::RunCheckpoint> capture_checkpoint(
    const nn::NetworkModel& net, const Tensor<std::int16_t>& input,
    const chain::AcceleratorConfig& cfg, int after_layers) {
  chain::ChainAccelerator acc(cfg);
  const auto energy = energy::EnergyModel::paper_calibrated();
  chain::NetworkRunner runner(acc, energy);
  chain::NetworkRunOptions ro;
  int boundary = 0;
  ro.preempt_check = [&boundary, after_layers] {
    return boundary++ == after_layers;
  };
  try {
    (void)runner.run(net, input, ro);
  } catch (const chain::RunPreempted& preempted) {
    return preempted.checkpoint();
  }
  ADD_FAILURE() << "run was not preempted";
  return nullptr;
}

TEST(DurableCodecs, CheckpointRoundTripsAndResumesBitIdentical) {
  const nn::NetworkModel net = tiny_net(3);
  const Tensor<std::int16_t> input = request_input(net, 1, 11);
  const chain::AcceleratorConfig cfg = analytical_accelerator_config();

  const std::shared_ptr<chain::RunCheckpoint> cp =
      capture_checkpoint(net, input, cfg, /*after_layers=*/1);
  ASSERT_NE(cp, nullptr);
  ASSERT_EQ(cp->next_layer, 1);

  const std::string payload = encode_checkpoint_payload(99, "pe576", *cp);
  // Skip the type byte the framing would strip.
  const CheckpointRecord back = decode_checkpoint_record(
      std::string_view(payload).substr(1));
  EXPECT_EQ(back.tag, 99u);
  EXPECT_EQ(back.chip_name, "pe576");
  const chain::RunCheckpoint& rcp = back.checkpoint;
  ASSERT_EQ(rcp.next_layer, cp->next_layer);
  ASSERT_EQ(rcp.layers.size(), cp->layers.size());
  for (std::size_t i = 0; i < cp->layers.size(); ++i) {
    EXPECT_TRUE(rcp.layers[i].run.ofmaps == cp->layers[i].run.ofmaps);
    EXPECT_TRUE(rcp.layers[i].run.accumulators ==
                cp->layers[i].run.accumulators);
    EXPECT_EQ(rcp.layers[i].run.stats.total_cycles(),
              cp->layers[i].run.stats.total_cycles());
    EXPECT_EQ(rcp.layers[i].run.traffic.dram_bytes,
              cp->layers[i].run.traffic.dram_bytes);
    EXPECT_EQ(rcp.layers[i].verified, cp->layers[i].verified);
  }
  EXPECT_TRUE(rcp.activations == cp->activations);
  EXPECT_TRUE(rcp.weight_rng.snapshot() == cp->weight_rng.snapshot());

  // Load-bearing property: resuming the *decoded* checkpoint equals the
  // uninterrupted run bit for bit (ofmaps, cycles, traffic).
  chain::ChainAccelerator acc(cfg);
  const auto energy = energy::EnergyModel::paper_calibrated();
  chain::NetworkRunner runner(acc, energy);
  const chain::NetworkRunResult undisturbed =
      runner.run(net, input, {});
  chain::NetworkRunOptions resume_opts;
  resume_opts.resume = std::make_shared<chain::RunCheckpoint>(rcp);
  const chain::NetworkRunResult resumed =
      runner.run(net, input, resume_opts);
  std::string why;
  EXPECT_TRUE(network_runs_identical(undisturbed, resumed, &why)) << why;
}

TEST(DurableCodecs, AnalyzeJournalFindsInFlightRequests) {
  const nn::NetworkModel net = tiny_net(2);
  const chain::AcceleratorConfig cfg = analytical_accelerator_config();
  const std::string path = temp_path("analyze.jrnl");
  {
    Journal journal({path, 1});
    for (std::uint64_t tag = 1; tag <= 4; ++tag) {
      SubmitRecord rec;
      rec.tag = tag;
      rec.chip_name = "pe576";
      rec.net = net;
      rec.input = request_input(net, 1, tag);
      journal.append(encode_submit(rec));
    }
    const Tensor<std::int16_t> input3 = request_input(net, 1, 3);
    const std::shared_ptr<chain::RunCheckpoint> cp =
        capture_checkpoint(net, input3, cfg, /*after_layers=*/1);
    ASSERT_NE(cp, nullptr);
    journal.append(encode_checkpoint_payload(3, "pe576", *cp));
    journal.append(encode_complete(1));
    journal.append(encode_cancel(2, CancelReason::kToken));
  }

  const JournalAnalysis a = analyze_journal_file(path);
  EXPECT_EQ(a.submits, 4);
  EXPECT_EQ(a.completed, 1);
  EXPECT_EQ(a.cancelled, 1);
  EXPECT_EQ(a.rejected, 0);
  EXPECT_EQ(a.checkpoints, 1);
  EXPECT_EQ(a.max_tag, 4u);
  ASSERT_EQ(a.in_flight.size(), 2u);
  // Submission order, with the checkpoint attached to the right tag.
  EXPECT_EQ(a.in_flight[0].submit.tag, 3u);
  ASSERT_NE(a.in_flight[0].checkpoint, nullptr);
  EXPECT_EQ(a.in_flight[0].checkpoint->next_layer, 1);
  EXPECT_EQ(a.in_flight[0].checkpoint_chip, "pe576");
  EXPECT_EQ(a.in_flight[1].submit.tag, 4u);
  EXPECT_EQ(a.in_flight[1].checkpoint, nullptr);

  // Pure analysis: the same file analyzes identically every time
  // (recovery idempotence is built on this).
  const JournalAnalysis b = analyze_journal_file(path);
  EXPECT_EQ(b.submits, a.submits);
  ASSERT_EQ(b.in_flight.size(), a.in_flight.size());
  for (std::size_t i = 0; i < a.in_flight.size(); ++i)
    EXPECT_EQ(b.in_flight[i].submit.tag, a.in_flight[i].submit.tag);
}

// --- PlanCache snapshots ---------------------------------------------------

TEST(PlanCacheSnapshot, RoundTripsEntriesAndRecencyOrder) {
  const std::string path = temp_path("plans.snap");
  const dataflow::ArrayShape array{};
  const mem::HierarchyConfig memory{};

  PlanCache cache;
  const nn::NetworkModel net = tiny_net(3);
  for (const nn::ConvLayerParams& l : net.conv_layers)
    (void)cache.plan_for(l, array, memory);
  // Touch the first layer again so recency order differs from insert
  // order — the snapshot must preserve recency, not history.
  (void)cache.plan_for(net.conv_layers.front(), array, memory);
  const std::vector<PlanCache::EntryInputs> before = cache.entry_inputs();

  EXPECT_EQ(save_plan_cache(cache, path),
            static_cast<std::int64_t>(before.size()));

  PlanCache warmed;
  const SnapshotLoadResult loaded = load_plan_cache(warmed, path);
  EXPECT_EQ(loaded.entries_loaded, static_cast<std::int64_t>(before.size()));
  EXPECT_FALSE(loaded.truncated_tail);
  EXPECT_EQ(loaded.checksum_errors, 0);
  EXPECT_EQ(warmed.size(), cache.size());

  const std::vector<PlanCache::EntryInputs> after = warmed.entry_inputs();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(after[i].layer.name, before[i].layer.name) << "entry " << i;

  // Warm-start means warm: replaying the same lookups is all hits.
  const std::uint64_t misses_before = warmed.stats().misses;
  for (const nn::ConvLayerParams& l : net.conv_layers)
    (void)warmed.plan_for(l, array, memory);
  EXPECT_EQ(warmed.stats().misses, misses_before);

  // A torn snapshot tail degrades gracefully: the valid prefix warms.
  const std::string bytes = read_file(path);
  write_file(path, bytes.substr(0, bytes.size() - 3));
  PlanCache partial;
  const SnapshotLoadResult torn = load_plan_cache(partial, path);
  EXPECT_TRUE(torn.truncated_tail);
  EXPECT_EQ(torn.entries_loaded,
            static_cast<std::int64_t>(before.size()) - 1);
}

}  // namespace
}  // namespace chainnn::serve
