// Concurrency stress suite — small, deterministic-outcome hammering of
// the stacks whose lock discipline the thread-safety annotations pin
// statically and the TSan lane checks dynamically (this suite is the
// core of `ctest -L concurrency`). Iteration counts are deliberately
// modest: under TSan every interleaving is instrumented, and the point
// is to cross real thread boundaries — cache eviction under lookups,
// submit/cancel/preempt storms, HTTP scrapes racing submits — not to
// soak. Assertions stick to invariants that hold for every legal
// interleaving (conservation of request counts, monotone stats, parsed
// scrapes), so the suite is schedule-independent.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/gateway.hpp"
#include "net/http_client.hpp"
#include "serve/fleet.hpp"
#include "serve/plan_cache.hpp"

namespace chainnn::serve {
namespace {

constexpr int kThreads = 8;

nn::ConvLayerParams stress_layer(int variant) {
  nn::ConvLayerParams p;
  p.name = "stress" + std::to_string(variant);
  p.in_channels = 2 + variant % 3;
  p.out_channels = 2 + (variant / 3) % 3;
  p.in_height = p.in_width = 8 + 2 * (variant % 4);
  p.kernel = 3;
  p.pad = 1;
  p.validate();
  return p;
}

nn::NetworkModel two_layer_net() {
  nn::NetworkModel net;
  net.name = "stress";
  nn::ConvLayerParams l1;
  l1.name = "c1";
  l1.in_channels = 2;
  l1.out_channels = 3;
  l1.in_height = l1.in_width = 8;
  l1.kernel = 3;
  l1.pad = 1;
  l1.validate();
  nn::ConvLayerParams l2 = l1;
  l2.name = "c2";
  l2.in_channels = 3;
  l2.out_channels = 2;
  l2.validate();
  net.conv_layers = {l1, l2};
  return net;
}

// 8 threads looping lookups over more distinct shapes than the byte
// budget holds: every thread keeps hitting the evict/re-plan path while
// the others are mid-lookup. Plans must stay bit-equal to a cold cache's
// answer and the counters must conserve.
TEST(ConcurrencyStress, PlanCacheLookupsDuringLruEviction) {
  const dataflow::ArrayShape array;
  const mem::HierarchyConfig memory;
  constexpr int kVariants = 9;

  // Budget sized to roughly a third of the working set, so eviction
  // churns continuously without degenerating to a one-entry cache.
  std::uint64_t three_plans = 0;
  {
    PlanCache sizing;
    for (int v = 0; v < 3; ++v)
      (void)sizing.plan_for(stress_layer(v), array, memory);
    three_plans = sizing.stats().bytes;
  }
  PlanCacheOptions opts;
  opts.max_bytes = three_plans;
  PlanCache cache(opts);

  constexpr int kIters = 40;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const int v = (t + i) % kVariants;
        const auto plan = cache.plan_for(stress_layer(v), array, memory);
        // Cheap structural witness instead of the full field-by-field
        // comparison (test_plan_cache pins that): geometry mismatches
        // would show up here first.
        if (!(plan.layer == stress_layer(v)) ||
            plan.cycles_per_image() <= 0)
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (auto& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups(), static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, opts.max_bytes);
  EXPECT_EQ(stats.entries, cache.size());

  // Every evicted shape re-plans identically: the churned cache still
  // answers exactly what a cold one would.
  PlanCache cold;
  for (int v = 0; v < kVariants; ++v) {
    const auto warm = cache.plan_for(stress_layer(v), array, memory);
    const auto fresh = cold.plan_for(stress_layer(v), array, memory);
    EXPECT_EQ(warm.cycles_per_image(), fresh.cycles_per_image());
    EXPECT_EQ(warm.primitives, fresh.primitives);
  }
}

// Submit / cancel / preempt storm: 8 submitter threads mixing priority
// tiers, mid-flight token cancellations and already-expired deadlines
// against a preemptive fleet. Every future must resolve, and the fleet's
// books must conserve: submitted == completed + cancelled + failed.
TEST(ConcurrencyStress, FleetSubmitCancelPreemptStorm) {
  FleetOptions fo;
  fo.threads_per_chip = 2;
  fo.preemption = true;
  Fleet fleet(fo);
  const nn::NetworkModel net = two_layer_net();

  constexpr int kPerThread = 4;
  std::atomic<int> resolved{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        RequestOptions ro;
        ro.priority = (t + i) % 3;
        std::shared_ptr<std::atomic<bool>> token;
        if (i % 4 == 1) {
          // Cancelled while (possibly) queued or running.
          token = std::make_shared<std::atomic<bool>>(false);
          ro.cancel = token;
        } else if (i % 4 == 2) {
          ro.deadline_ms = -1.0;  // dead on arrival at pickup
        }
        std::future<InferenceResult> f = fleet.submit(net, /*batch=*/1, ro);
        if (token) token->store(true, std::memory_order_relaxed);
        const InferenceResult r = f.get();  // must always resolve
        EXPECT_TRUE(r.status == RequestStatus::kOk ||
                    r.status == RequestStatus::kCancelled)
            << static_cast<int>(r.status);
        if (r.status == RequestStatus::kOk)
          EXPECT_EQ(r.completed_layers, 2);
        resolved.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (auto& th : threads) th.join();
  fleet.wait_idle();

  EXPECT_EQ(resolved.load(), kThreads * kPerThread);
  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.completed + stats.cancelled, stats.submitted);
  // Every chip's modelled backlog fully retired after wait_idle().
  for (const double backlog : fleet.router().backlog_seconds())
    EXPECT_NEAR(backlog, 0.0, 1e-9);
}

// Concurrent gateway traffic: submitters POSTing /v1/submit while
// scrapers GET /metrics, all over live sockets. Answers must be 200s
// (the scrape never observes a torn state that breaks exposition) and
// the final books must balance.
TEST(ConcurrencyStress, GatewaySubmitsRacingMetricsScrapes) {
  serve::Fleet fleet;
  net::GatewayOptions go;
  go.model_scale = 4;  // channel-reduced lenet keeps each submit short
  net::Gateway gateway(fleet, go);

  constexpr int kSubmitters = 5;
  constexpr int kScrapers = 4;  // 9 client threads total
  constexpr int kPerThread = 3;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kSubmitters + kScrapers);
  for (int t = 0; t < kSubmitters; ++t)
    threads.emplace_back([&] {
      net::HttpClient client("127.0.0.1", gateway.port());
      for (int i = 0; i < kPerThread; ++i) {
        net::HttpResponse resp;
        if (!client.post_json("/v1/submit",
                              R"({"model": "lenet", "batch": 1})", &resp) ||
            resp.status != 200 ||
            resp.body.find("\"status\": \"ok\"") == std::string::npos)
          bad.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (int t = 0; t < kScrapers; ++t)
    threads.emplace_back([&] {
      net::HttpClient client("127.0.0.1", gateway.port());
      for (int i = 0; i < kPerThread; ++i) {
        net::HttpResponse resp;
        if (!client.get("/metrics", &resp) || resp.status != 200 ||
            resp.body.find("chainnn_gateway_submits_total") ==
                std::string::npos)
          bad.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (auto& th : threads) th.join();

  EXPECT_EQ(bad.load(), 0);
  fleet.wait_idle();
  const net::GatewayStats stats = gateway.stats();
  EXPECT_EQ(stats.submits_ok, kSubmitters * kPerThread);
  EXPECT_EQ(stats.submits_failed, 0);
  EXPECT_EQ(stats.bad_requests, 0);
  EXPECT_EQ(stats.http.responses_5xx, 0);
  // One final scrape agrees with the struct-level stats.
  net::HttpClient client("127.0.0.1", gateway.port());
  net::HttpResponse resp;
  ASSERT_TRUE(client.get("/metrics", &resp)) << client.error();
  EXPECT_NE(resp.body.find("chainnn_gateway_submits_total{outcome=\"ok\"} " +
                           std::to_string(kSubmitters * kPerThread)),
            std::string::npos);
  gateway.stop();
}

}  // namespace
}  // namespace chainnn::serve
