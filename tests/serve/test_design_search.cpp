// Randomized property harness for the parallel Pareto design-space
// search.
//
// For seeded random small grids (axes drawn from realistic values, per-
// layer channel modes on or off, random batch), the wave search must
// reproduce an exhaustive-enumeration oracle exactly:
//
//   * every reachable point is evaluated exactly once (the grid lattice
//     is connected under +-1 axis steps, so reachable == all);
//   * the frontier is the oracle's Pareto-maximal set — same canonical
//     ids, bit-identical costs;
//   * no pruned point is un-dominated: every feasible evaluated point
//     off the frontier is strictly dominated by a frontier member;
//   * stats balance: evaluated == infeasible + pruned + frontier.
//
// Worker-count independence is pinned separately: a serial run and a
// 4-worker run on a private pool must return identical results, also
// under max_points truncation.
//
// Seeds: three fixed seeds in tier-1; CHAINNN_SCHED_ROTATE rotates fresh
// triples in CI's sanitize lane and CHAINNN_SCHED_SEED replays a logged
// seed exactly (same contract as test_sched_properties.cpp).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/work_pool.hpp"
#include "serve/design_search.hpp"
#include "serve/router.hpp"

namespace chainnn::serve {
namespace {

std::vector<std::uint64_t> scheduling_seeds() {
  std::vector<std::uint64_t> seeds;
  if (const char* exact = std::getenv("CHAINNN_SCHED_SEED")) {
    seeds = {std::strtoull(exact, nullptr, 10)};
  } else if (const char* env = std::getenv("CHAINNN_SCHED_ROTATE")) {
    static std::atomic<std::uint64_t> rotation{0};
    const std::uint64_t n = rotation.fetch_add(1);
    const std::uint64_t base = 1024 * std::strtoull(env, nullptr, 10);
    seeds = {base + 3 * n, base + 3 * n + 1, base + 3 * n + 2};
  } else {
    seeds = {1, 2, 3};  // fixed tier-1 seeds
  }
  for (const std::uint64_t s : seeds)
    std::cout << "[sched-seed] " << s << "\n";
  return seeds;
}

nn::NetworkModel tiny_net(Rng& rng) {
  nn::NetworkModel net;
  net.name = "tiny";
  std::int64_t channels = rng.uniform_int(2, 4);
  for (int i = 0; i < 2; ++i) {
    nn::ConvLayerParams l;
    l.name = "c" + std::to_string(i);
    l.in_channels = channels;
    channels = rng.uniform_int(2, 5);
    l.out_channels = channels;
    l.in_height = l.in_width = 10;
    l.kernel = 3;
    l.pad = 1;
    l.validate();
    net.conv_layers.push_back(l);
  }
  return net;
}

// A random small grid: 2-3 strictly increasing values per axis, drawn
// from pools that include unmappably short chains (infeasible points are
// part of the property).
DesignSpaceGrid random_grid(Rng& rng) {
  const auto pick = [&rng](auto pool, std::size_t count) {
    decltype(pool) axis;
    while (axis.size() < count) {
      const auto v =
          pool[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(pool.size()) - 1))];
      bool dup = false;
      for (const auto& e : axis) dup = dup || e == v;
      if (!dup) axis.push_back(v);
    }
    std::sort(axis.begin(), axis.end());
    return axis;
  };
  DesignSpaceGrid g;
  g.num_pes = pick(std::vector<std::int64_t>{2, 8, 16, 64, 144, 576},
                   static_cast<std::size_t>(rng.uniform_int(2, 3)));
  g.clock_hz = pick(std::vector<double>{100e6, 350e6, 700e6, 1100e6},
                    static_cast<std::size_t>(rng.uniform_int(2, 3)));
  g.kmem_words_per_pe = pick(std::vector<std::int64_t>{32, 64, 128, 256},
                             static_cast<std::size_t>(rng.uniform_int(2, 3)));
  g.omemory_bytes =
      pick(std::vector<std::uint64_t>{2048, 4096, 8192, 25 * 1024},
           static_cast<std::size_t>(rng.uniform_int(2, 3)));
  g.per_layer_channel_modes = rng.uniform_int(0, 1) == 1;
  return g;
}

// Exhaustive oracle: cost every (configuration x mode mask) in the grid
// with the same per-layer model construction the search uses, and keep
// the Pareto-maximal feasible set.
std::map<DesignPointId, dataflow::PointCost> enumerate_all(
    const nn::NetworkModel& net, const DesignSpaceGrid& g,
    std::int64_t batch) {
  const auto& first = net.conv_layers.front();
  const std::vector<nn::ConvLayerParams> layers =
      resolve_network_layers(net, batch, first.in_height, first.in_width, {});
  const std::uint64_t masks =
      g.per_layer_channel_modes ? (1ull << layers.size()) : 1;
  const std::uint64_t all_dual = (1ull << layers.size()) - 1;
  const energy::EnergyModel energy = energy::EnergyModel::paper_calibrated();
  const energy::AreaModel area;

  std::map<DesignPointId, dataflow::PointCost> all;
  for (std::size_t pi = 0; pi < g.num_pes.size(); ++pi)
    for (std::size_t ki = 0; ki < g.kmem_words_per_pe.size(); ++ki)
      for (std::size_t oi = 0; oi < g.omemory_bytes.size(); ++oi) {
        dataflow::ArrayShape array;
        array.num_pes = g.num_pes[pi];
        array.kmem_words_per_pe = g.kmem_words_per_pe[ki];
        mem::HierarchyConfig memory;
        memory.omemory_bytes = g.omemory_bytes[oi];
        memory.kmemory_bytes = static_cast<std::uint64_t>(array.num_pes) *
                               static_cast<std::uint64_t>(
                                   array.kmem_words_per_pe) *
                               memory.word_bytes;
        const double gates = area.total_gates(
            array.num_pes, dataflow::point_sram_bytes(array, memory));

        // Per-layer models (both channel modes), or the infeasibility
        // that every mode/clock variant of this combo shares.
        std::vector<std::array<dataflow::LayerCostModel, 2>> models;
        bool feasible = true;
        std::string reason;
        for (const nn::ConvLayerParams& layer : layers) {
          try {
            dataflow::ExecutionPlan plan =
                dataflow::plan_layer(layer, array, memory);
            std::array<dataflow::LayerCostModel, 2> modes;
            plan.array.dual_channel = false;
            modes[0] = dataflow::layer_cost_model(plan);
            plan.array.dual_channel = true;
            modes[1] = dataflow::layer_cost_model(plan);
            models.push_back(modes);
          } catch (const std::exception&) {
            feasible = false;
            break;
          }
        }
        for (std::size_t ci = 0; ci < g.clock_hz.size(); ++ci)
          for (std::uint64_t mask = 0; mask < masks; ++mask) {
            DesignPointId id;
            id.pes = static_cast<std::int32_t>(pi);
            id.clock = static_cast<std::int32_t>(ci);
            id.kmem = static_cast<std::int32_t>(ki);
            id.omem = static_cast<std::int32_t>(oi);
            id.mode_mask = g.per_layer_channel_modes ? mask : all_dual;
            dataflow::PointCost cost;
            if (feasible) {
              std::vector<const dataflow::LayerCostModel*> refs;
              for (std::size_t l = 0; l < models.size(); ++l)
                refs.push_back(&models[l][(id.mode_mask >> l) & 1]);
              cost = dataflow::accumulate_point_cost(
                  refs, g.clock_hz[ci], array.num_pes, batch, energy, gates);
            } else {
              cost.feasible = false;
            }
            all.emplace(id, cost);
          }
      }
  return all;
}

TEST(DesignSearchProperties, FrontierMatchesExhaustiveOracle) {
  for (const std::uint64_t seed : scheduling_seeds()) {
    Rng rng(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    const nn::NetworkModel net = tiny_net(rng);
    const DesignSpaceGrid grid = random_grid(rng);
    const std::int64_t batch = rng.uniform_int(1, 3);

    DesignSearchOptions opts;
    opts.batch = batch;
    opts.max_points = 0;  // exhaust the grid
    opts.num_workers = 1;
    opts.collect_evaluated = true;
    DesignSearch search(net, grid, opts);
    const DesignSearchResult result = search.run();

    const auto oracle = enumerate_all(net, grid, batch);

    // Every point in the grid was evaluated exactly once.
    EXPECT_EQ(result.stats.evaluated,
              static_cast<std::int64_t>(oracle.size()));
    EXPECT_EQ(result.evaluated.size(), oracle.size());

    // The frontier is the oracle's Pareto-maximal feasible set.
    std::vector<std::pair<DesignPointId, dataflow::PointCost>> expected;
    for (const auto& [id, cost] : oracle) {
      if (!cost.feasible) continue;
      bool dominated = false;
      for (const auto& [id2, cost2] : oracle)
        dominated = dominated || (!(id2 == id) && cost2.dominates(cost));
      if (!dominated) expected.emplace_back(id, cost);
    }
    ASSERT_EQ(result.frontier.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.frontier[i].id, expected[i].first);  // same sort
      EXPECT_EQ(result.frontier[i].cost.total_cycles,
                expected[i].second.total_cycles);
      EXPECT_DOUBLE_EQ(result.frontier[i].cost.energy_j,
                       expected[i].second.energy_j);
      EXPECT_DOUBLE_EQ(result.frontier[i].cost.area_gates,
                       expected[i].second.area_gates);
    }

    // No pruned point is un-dominated: everything feasible off the
    // frontier loses to some frontier member.
    std::int64_t infeasible = 0;
    for (const EvaluatedDesignPoint& p : result.evaluated) {
      if (!p.cost.feasible) {
        ++infeasible;
        continue;
      }
      bool on_frontier = false;
      for (const EvaluatedDesignPoint& f : result.frontier)
        on_frontier = on_frontier || f.id == p.id;
      if (on_frontier) continue;
      bool dominated = false;
      for (const EvaluatedDesignPoint& f : result.frontier)
        dominated = dominated || f.cost.dominates(p.cost);
      EXPECT_TRUE(dominated) << "pruned but un-dominated: " << p.label;
    }
    EXPECT_EQ(result.stats.infeasible, infeasible);
    EXPECT_EQ(result.stats.evaluated, result.stats.infeasible +
                                          result.stats.pruned +
                                          result.stats.frontier);
  }
}

// Equal grids and options must produce equal results whatever the worker
// count — including under max_points truncation, where wave membership
// itself is at stake.
TEST(DesignSearchProperties, FrontierIsWorkerCountIndependent) {
  for (const std::uint64_t seed : scheduling_seeds()) {
    Rng rng(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    const nn::NetworkModel net = tiny_net(rng);
    const DesignSpaceGrid grid = random_grid(rng);
    const std::int64_t max_points = rng.uniform_int(0, 1) == 0
                                        ? 0
                                        : rng.uniform_int(10, 60);

    const auto run_with = [&](std::int64_t workers,
                              common::WorkPool* pool) {
      DesignSearchOptions opts;
      opts.max_points = max_points;
      opts.num_workers = workers;
      opts.pool = pool;
      DesignSearch search(net, grid, opts);
      return search.run();
    };
    common::WorkPool pool(4);
    const DesignSearchResult serial = run_with(1, nullptr);
    const DesignSearchResult parallel = run_with(4, &pool);

    EXPECT_EQ(serial.stats.evaluated, parallel.stats.evaluated);
    EXPECT_EQ(serial.stats.infeasible, parallel.stats.infeasible);
    EXPECT_EQ(serial.stats.pruned, parallel.stats.pruned);
    EXPECT_EQ(serial.stats.waves, parallel.stats.waves);
    ASSERT_EQ(serial.frontier.size(), parallel.frontier.size());
    for (std::size_t i = 0; i < serial.frontier.size(); ++i) {
      EXPECT_EQ(serial.frontier[i].id, parallel.frontier[i].id);
      EXPECT_EQ(serial.frontier[i].label, parallel.frontier[i].label);
      EXPECT_EQ(serial.frontier[i].cost.total_cycles,
                parallel.frontier[i].cost.total_cycles);
      EXPECT_DOUBLE_EQ(serial.frontier[i].cost.energy_j,
                       parallel.frontier[i].cost.energy_j);
      EXPECT_DOUBLE_EQ(serial.frontier[i].cost.area_gates,
                       parallel.frontier[i].cost.area_gates);
    }
  }
}

// The paper's instantiation stays Pareto-optimal on the default grid for
// the paper's workload — the same invariant bench_micro's "dse" section
// gates in CI, pinned here at a smaller budget (dominators of the seed
// can only shrink with the budget, so 12000-point CI runs imply this).
TEST(DesignSearch, PaperPointOnDefaultGridFrontier) {
  DesignSearchOptions opts;
  opts.max_points = 3000;
  DesignSearch search(nn::alexnet(), DesignSpaceGrid::paper_default(), opts);
  const DesignSearchResult result = search.run();
  EXPECT_EQ(result.stats.evaluated, 3000);
  EXPECT_TRUE(result.stats.contains_paper_point);
  EXPECT_GT(result.stats.frontier, 0);
  EXPECT_GT(result.stats.pruned, 0);
  EXPECT_EQ(result.stats.infeasible, 0);

  // The frontier reports uniform dual-channel for the paper point and a
  // label without a mode suffix.
  for (const EvaluatedDesignPoint& p : result.frontier)
    if (p.array.num_pes == 576 && p.array.clock_hz == 700e6 &&
        p.array.kmem_words_per_pe == 256 &&
        p.memory.omemory_bytes == 25 * 1024 && p.uniform_mode()) {
      EXPECT_EQ(p.label, "pes576-clk700-kw256-om25k");
      EXPECT_TRUE(p.cost.feasible);
    }
}

TEST(DesignSearch, RejectsMalformedGridsAndNetworks) {
  DesignSpaceGrid bad = DesignSpaceGrid::paper_default();
  bad.clock_hz = {700e6, 700e6};  // not strictly increasing
  EXPECT_THROW(DesignSearch(nn::alexnet(), bad), std::logic_error);

  DesignSpaceGrid empty_axis = DesignSpaceGrid::paper_default();
  empty_axis.omemory_bytes.clear();
  EXPECT_THROW(DesignSearch(nn::alexnet(), empty_axis), std::logic_error);

  EXPECT_THROW(DesignSearch(nn::NetworkModel{},
                            DesignSpaceGrid::paper_default()),
               std::logic_error);
}

}  // namespace
}  // namespace chainnn::serve
