// InferenceServer: request scheduling, per-request ExecMode / array
// overrides, and fidelity sampling — sampled cycle-accurate replays must
// be bit-identical to the analytical results, and an injected divergence
// must be caught and counted.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "serve/inference_server.hpp"

namespace chainnn::serve {
namespace {

// Two small conv layers; cycle-accurate runs finish in milliseconds.
nn::NetworkModel tiny_net() {
  nn::NetworkModel net;
  net.name = "tiny";
  nn::ConvLayerParams l1;
  l1.name = "c1";
  l1.in_channels = 2;
  l1.out_channels = 3;
  l1.in_height = l1.in_width = 8;
  l1.kernel = 3;
  l1.pad = 1;
  l1.validate();
  nn::ConvLayerParams l2;
  l2.name = "c2";
  l2.in_channels = 3;
  l2.out_channels = 2;
  l2.in_height = l2.in_width = 8;
  l2.kernel = 3;
  l2.pad = 1;
  l2.validate();
  net.conv_layers = {l1, l2};
  return net;
}

Tensor<std::int16_t> tiny_input(std::int64_t batch, std::uint64_t seed) {
  Tensor<std::int16_t> input(Shape{batch, 2, 8, 8});
  Rng rng(seed);
  input.fill_random(rng, -64, 64);
  return input;
}

TEST(InferenceServer, DrainsQueueAndCountsRequests) {
  ServerOptions so;
  so.num_threads = 2;
  so.max_queue = 4;  // smaller than the submission burst: backpressure
  InferenceServer server(so);

  const nn::NetworkModel net = tiny_net();
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 10; ++i)
    futures.push_back(server.submit(net, /*batch=*/2));
  for (auto& f : futures) {
    const InferenceResult r = f.get();
    EXPECT_EQ(r.exec_mode, chain::ExecMode::kAnalytical);
    EXPECT_EQ(r.run.layers.size(), 2u);
  }
  server.wait_idle();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 10);
  EXPECT_EQ(stats.completed, 10);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.analytical_runs, 10);
  EXPECT_LE(stats.peak_queue_depth, so.max_queue);
  // Every request after the first resolves its plans from the cache.
  EXPECT_GT(stats.plan_cache.hits, 0u);
  EXPECT_EQ(stats.plan_cache.entries, 2u);
}

TEST(InferenceServer, PerRequestExecModeMatchesBitForBit) {
  InferenceServer server{ServerOptions{}};
  const nn::NetworkModel net = tiny_net();
  const Tensor<std::int16_t> input = tiny_input(2, 42);

  RequestOptions fast;
  fast.exec_mode = chain::ExecMode::kAnalytical;
  RequestOptions slow;
  slow.exec_mode = chain::ExecMode::kCycleAccurate;
  auto fa = server.submit(net, input, fast);
  auto sa = server.submit(net, input, slow);
  const InferenceResult fr = fa.get();
  const InferenceResult sr = sa.get();
  EXPECT_EQ(fr.exec_mode, chain::ExecMode::kAnalytical);
  EXPECT_EQ(sr.exec_mode, chain::ExecMode::kCycleAccurate);

  std::string why;
  EXPECT_TRUE(network_runs_identical(fr.run, sr.run, &why)) << why;

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.analytical_runs, 1);
  EXPECT_EQ(stats.cycle_accurate_runs, 1);
}

TEST(InferenceServer, PerRequestArrayOverride) {
  InferenceServer server{ServerOptions{}};
  RequestOptions ro;
  dataflow::ArrayShape array;
  array.num_pes = 288;
  array.clock_hz = 350e6;
  ro.array = array;
  const InferenceResult r = server.submit(tiny_net(), 1, ro).get();
  for (const auto& layer : r.run.layers) {
    EXPECT_EQ(layer.run.plan.array.num_pes, 288);
    EXPECT_EQ(layer.run.plan.array.clock_hz, 350e6);
  }
}

TEST(InferenceServer, FidelitySamplesAreBitIdentical) {
  ServerOptions so;
  so.num_threads = 2;
  so.fidelity_sample_every_n = 3;  // requests 3, 6, 9, ...
  InferenceServer server(so);

  const nn::NetworkModel net = tiny_net();
  constexpr int kRequests = 9;
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < kRequests; ++i)
    futures.push_back(server.submit(net, /*batch=*/2));

  int sampled = 0;
  for (auto& f : futures) {
    const InferenceResult r = f.get();
    if (r.request_id % 3 == 0) {
      EXPECT_TRUE(r.fidelity.sampled) << "request " << r.request_id;
      ++sampled;
    } else {
      EXPECT_FALSE(r.fidelity.sampled) << "request " << r.request_id;
    }
    // The cycle-accurate replay must reproduce the analytical run
    // exactly — any divergence here is an engine bug.
    EXPECT_FALSE(r.fidelity.diverged) << r.fidelity.detail;
  }
  EXPECT_EQ(sampled, 3);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.fidelity_samples, 3);
  EXPECT_EQ(stats.fidelity_divergences, 0);
}

TEST(InferenceServer, InjectedDivergenceIsCaughtAndCounted) {
  ServerOptions so;
  so.fidelity_sample_every_n = 2;  // requests 2, 4
  // Corrupt one ofmap word of the replay of request 4 only: exactly one
  // of the two samples must report (and count) a divergence.
  so.fidelity_mutator_for_test = [](std::int64_t request_id,
                                    chain::NetworkRunResult& replay) {
    if (request_id != 4) return;
    auto& ofmaps = replay.layers.front().run.ofmaps;
    ofmaps.at_flat(0) = static_cast<std::int16_t>(ofmaps.at_flat(0) + 1);
  };
  InferenceServer server(so);

  const nn::NetworkModel net = tiny_net();
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 4; ++i)
    futures.push_back(server.submit(net, /*batch=*/1));

  int divergences = 0;
  for (auto& f : futures) {
    const InferenceResult r = f.get();
    if (r.request_id == 2) {
      EXPECT_TRUE(r.fidelity.sampled);
      EXPECT_FALSE(r.fidelity.diverged) << r.fidelity.detail;
    }
    if (r.request_id == 4) {
      EXPECT_TRUE(r.fidelity.sampled);
      EXPECT_TRUE(r.fidelity.diverged);
      EXPECT_FALSE(r.fidelity.detail.empty());
      ++divergences;
    }
  }
  EXPECT_EQ(divergences, 1);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.fidelity_samples, 2);
  EXPECT_EQ(stats.fidelity_divergences, 1);
}

TEST(InferenceServer, EnergyAndTrafficDivergencesAreCaught) {
  // The fidelity cross-check extends past ofmaps and cycles to the
  // LayerTraffic and energy rollups: a replay whose power or traffic
  // figures drift — identical activations, identical cycles — must
  // still be flagged and counted. Regression for cross-checks that
  // compared outputs only and let cost-model divergence through.
  const nn::NetworkModel net = tiny_net();
  const auto run_with_mutation =
      [&net](std::function<void(chain::NetworkRunResult&)> mutate) {
        ServerOptions so;
        so.fidelity_sample_every_n = 1;
        so.fidelity_mutator_for_test =
            [mutate = std::move(mutate)](std::int64_t,
                                         chain::NetworkRunResult& replay) {
              mutate(replay);
            };
        InferenceServer server(so);
        const InferenceResult r = server.submit(net, /*batch=*/1).get();
        EXPECT_TRUE(r.fidelity.sampled);
        EXPECT_EQ(server.stats().fidelity_divergences,
                  r.fidelity.diverged ? 1 : 0);
        return r;
      };

  // Per-layer power drift: caught, with the layer named.
  const InferenceResult power = run_with_mutation(
      [](chain::NetworkRunResult& replay) {
        replay.layers.front().power.chain_w *= 1.0 + 1e-6;
      });
  EXPECT_TRUE(power.fidelity.diverged);
  EXPECT_NE(power.fidelity.detail.find("power"), std::string::npos)
      << power.fidelity.detail;

  // Traffic drift (one stray kmemory byte): caught.
  const InferenceResult traffic = run_with_mutation(
      [](chain::NetworkRunResult& replay) {
        replay.layers.front().run.traffic.kmemory_bytes += 1;
      });
  EXPECT_TRUE(traffic.fidelity.diverged);
  EXPECT_NE(traffic.fidelity.detail.find("traffic"), std::string::npos)
      << traffic.fidelity.detail;

  // Identity mutation: clean — the extended cross-check introduces no
  // false positives.
  const InferenceResult clean =
      run_with_mutation([](chain::NetworkRunResult&) {});
  EXPECT_FALSE(clean.fidelity.diverged) << clean.fidelity.detail;
}

TEST(InferenceServer, SharedCacheAcrossServers) {
  // Two servers sharing one cache: the second server's requests hit on
  // the first server's plans.
  auto cache = std::make_shared<PlanCache>();
  const nn::NetworkModel net = tiny_net();
  {
    ServerOptions so;
    so.plan_cache = cache;
    InferenceServer first(so);
    (void)first.submit(net, 1).get();
  }
  const PlanCacheStats after_first = cache->stats();
  EXPECT_EQ(after_first.entries, 2u);

  ServerOptions so;
  so.plan_cache = cache;
  InferenceServer second(so);
  (void)second.submit(net, 1).get();
  const PlanCacheStats after_second = cache->stats();
  EXPECT_EQ(after_second.entries, 2u);
  EXPECT_GE(after_second.hits, after_first.hits + 2);
}

TEST(InferenceServer, RequestErrorsResolveTheFuture) {
  InferenceServer server{ServerOptions{}};
  nn::NetworkModel net = tiny_net();
  // Kernel taps exceed any chain: planning throws inside the worker and
  // the future must carry the error instead of hanging.
  net.conv_layers[0].kernel = 99;
  net.conv_layers[0].in_height = net.conv_layers[0].in_width = 99;
  auto future = server.submit(net, 1);
  EXPECT_ANY_THROW((void)future.get());
  server.wait_idle();
  EXPECT_EQ(server.stats().failed, 1);
}

TEST(InferenceServer, PastDeadlineAtSubmitResolvesCancelled) {
  InferenceServer server{ServerOptions{}};
  RequestOptions ro;
  ro.deadline_ms = -5.0;  // already missed when submitted
  const InferenceResult r = server.submit(tiny_net(), 1, ro).get();
  EXPECT_EQ(r.status, RequestStatus::kCancelled);
  EXPECT_EQ(r.completed_layers, 0);
  EXPECT_TRUE(r.run.layers.empty());
  EXPECT_FALSE(r.fidelity.sampled);
  server.wait_idle();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.failed, 0);
}

TEST(InferenceServer, CancelTokenStopsBetweenLayers) {
  ServerOptions so;
  so.num_threads = 1;
  so.fidelity_sample_every_n = 1;  // must NOT replay a cancelled run
  InferenceServer server(so);

  // The token is set while layer 0's weights are drawn, so the run
  // passes layer 0's checkpoint, executes it, and stops at layer 1's.
  auto token = std::make_shared<std::atomic<bool>>(false);
  RequestOptions ro;
  ro.cancel = token;
  ro.weight_init = [token](std::int64_t layer_index,
                           Tensor<std::int16_t>& kernels) {
    if (layer_index == 0) token->store(true);
    Rng rng(99);
    kernels.fill_random(rng, -16, 16);
  };
  const InferenceResult r = server.submit(tiny_net(), 1, ro).get();
  EXPECT_EQ(r.status, RequestStatus::kCancelled);
  EXPECT_EQ(r.completed_layers, 1);
  EXPECT_TRUE(r.run.layers.empty());  // partial work is not delivered
  EXPECT_FALSE(r.fidelity.sampled);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.fidelity_samples, 0);
}

TEST(InferenceServer, HighPriorityOvertakesQueuedLowPriority) {
  // Priority-inversion scenario: a long low-priority request is already
  // running (it blocks inside weight_init until released), a second
  // low-priority request is queued, then a high-priority one arrives.
  // With one worker the high-priority request must overtake the queued
  // low-priority one — completion order is observed via the hook.
  std::vector<std::int64_t> completion_order;
  std::mutex order_mu;
  std::promise<void> blocker_started;
  std::promise<void> release_blocker;
  std::shared_future<void> release = release_blocker.get_future().share();

  ServerOptions so;
  so.num_threads = 1;
  so.completion_hook = [&](const InferenceResult& r) {
    std::lock_guard<std::mutex> lock(order_mu);
    completion_order.push_back(r.request_id);
  };
  InferenceServer server(so);
  const nn::NetworkModel net = tiny_net();

  RequestOptions blocker;
  blocker.weight_init = [&](std::int64_t layer_index,
                            Tensor<std::int16_t>& kernels) {
    if (layer_index == 0) {
      blocker_started.set_value();
      release.wait();
    }
    Rng rng(7);
    kernels.fill_random(rng, -16, 16);
  };
  auto f1 = server.submit(net, 1, blocker);  // id 1, occupies the worker
  blocker_started.get_future().wait();

  RequestOptions low;   // id 2, tier 0
  RequestOptions high;  // id 3, tier 5
  high.priority = 5;
  auto f2 = server.submit(net, 1, low);
  auto f3 = server.submit(net, 1, high);
  release_blocker.set_value();
  (void)f1.get();
  (void)f2.get();
  (void)f3.get();
  server.wait_idle();

  ASSERT_EQ(completion_order.size(), 3u);
  EXPECT_EQ(completion_order[0], 1);  // the blocker finishes first
  EXPECT_EQ(completion_order[1], 3);  // high priority overtakes...
  EXPECT_EQ(completion_order[2], 2);  // ...the earlier low-priority one
}

TEST(InferenceServer, EarliestDeadlineFirstWithinATier) {
  std::vector<std::int64_t> completion_order;
  std::mutex order_mu;
  std::promise<void> blocker_started;
  std::promise<void> release_blocker;
  std::shared_future<void> release = release_blocker.get_future().share();

  ServerOptions so;
  so.num_threads = 1;
  so.completion_hook = [&](const InferenceResult& r) {
    std::lock_guard<std::mutex> lock(order_mu);
    completion_order.push_back(r.request_id);
  };
  InferenceServer server(so);
  const nn::NetworkModel net = tiny_net();

  RequestOptions blocker;
  blocker.weight_init = [&](std::int64_t layer_index,
                            Tensor<std::int16_t>& kernels) {
    if (layer_index == 0) {
      blocker_started.set_value();
      release.wait();
    }
    Rng rng(7);
    kernels.fill_random(rng, -16, 16);
  };
  auto f1 = server.submit(net, 1, blocker);
  blocker_started.get_future().wait();

  // Same tier; the later-submitted request has the earlier deadline and
  // a no-deadline request sorts after both.
  RequestOptions none;                   // id 2
  RequestOptions loose, tight;
  loose.deadline_ms = 60e3;              // id 3
  tight.deadline_ms = 30e3;              // id 4
  auto f2 = server.submit(net, 1, none);
  auto f3 = server.submit(net, 1, loose);
  auto f4 = server.submit(net, 1, tight);
  release_blocker.set_value();
  (void)f1.get();
  (void)f2.get();
  (void)f3.get();
  (void)f4.get();
  server.wait_idle();

  ASSERT_EQ(completion_order.size(), 4u);
  EXPECT_EQ(completion_order[0], 1);
  EXPECT_EQ(completion_order[1], 4);  // tightest deadline first
  EXPECT_EQ(completion_order[2], 3);
  EXPECT_EQ(completion_order[3], 2);  // no deadline goes last
}

TEST(InferenceServer, PreemptionCheckpointsAndResumesBitIdentical) {
  // One worker, preemption on: a tier-0 request is mid-run (blocked in
  // layer 0's weight_init) when a tier-1 request arrives. The worker
  // must checkpoint the tier-0 run at the layer-1 boundary, serve the
  // tier-1 request first, then resume the checkpoint — and the resumed
  // result must be bit-identical to running the request undisturbed.
  std::vector<std::int64_t> completion_order;
  std::mutex order_mu;
  std::promise<void> blocker_started;
  std::promise<void> release_blocker;
  std::shared_future<void> release = release_blocker.get_future().share();
  std::atomic<bool> gated{false};

  ServerOptions so;
  so.num_threads = 1;
  so.enable_preemption = true;
  so.completion_hook = [&](const InferenceResult& r) {
    std::lock_guard<std::mutex> lock(order_mu);
    completion_order.push_back(r.request_id);
  };
  InferenceServer server(so);
  const nn::NetworkModel net = tiny_net();
  const Tensor<std::int16_t> input = tiny_input(1, 321);

  // Per-layer-pure weights so the direct replay below draws the same
  // kernels without the gating side effects.
  const auto weights = [](std::int64_t layer, Tensor<std::int16_t>& k) {
    Rng rng(700 + static_cast<std::uint64_t>(layer));
    k.fill_random(rng, -16, 16);
  };
  RequestOptions victim;  // id 1, tier 0
  victim.weight_init = [&](std::int64_t layer, Tensor<std::int16_t>& k) {
    if (layer == 0 && !gated.exchange(true)) {
      blocker_started.set_value();
      release.wait();
    }
    weights(layer, k);
  };
  auto victim_future = server.submit(net, input, victim);
  blocker_started.get_future().wait();

  RequestOptions urgent;  // id 2, tier 1 — queued while the victim runs
  urgent.priority = 1;
  auto urgent_future = server.submit(net, 1, urgent);
  release_blocker.set_value();

  const InferenceResult vr = victim_future.get();
  const InferenceResult ur = urgent_future.get();
  server.wait_idle();

  EXPECT_EQ(vr.status, RequestStatus::kOk);
  EXPECT_EQ(ur.status, RequestStatus::kOk);
  EXPECT_EQ(vr.preemptions, 1);
  EXPECT_TRUE(vr.resumed);
  // wall_ms spans every attempt: the pre-preemption slice plus the
  // resumed run (queue time between them excluded).
  EXPECT_GT(vr.wall_ms, 0.0);
  EXPECT_FALSE(ur.resumed);
  ASSERT_EQ(completion_order.size(), 2u);
  EXPECT_EQ(completion_order[0], 2);  // the urgent request went first
  EXPECT_EQ(completion_order[1], 1);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.preemptions, 1);
  EXPECT_EQ(stats.resumes, 1);

  // Bit-identity of the preempted-and-resumed run vs the same request
  // executed undisturbed.
  chain::ChainAccelerator acc(so.accelerator);
  chain::NetworkRunner runner(acc, so.energy);
  chain::NetworkRunOptions ro;
  ro.verify_against_golden = false;
  ro.weight_init = weights;
  const chain::NetworkRunResult direct = runner.run(net, input, ro);
  std::string why;
  EXPECT_TRUE(network_runs_identical(vr.run, direct, &why)) << why;
}

TEST(InferenceServer, DeadHigherTierWaiterDoesNotPreempt) {
  // A queued higher-tier request that is already dead on arrival (cancel
  // token pre-set) resolves at pickup without touching the chip, so it
  // must not checkpoint the healthy lower-tier run that is in flight.
  std::promise<void> blocker_started;
  std::promise<void> release_blocker;
  std::shared_future<void> release = release_blocker.get_future().share();
  std::atomic<bool> gated{false};

  ServerOptions so;
  so.num_threads = 1;
  so.enable_preemption = true;
  InferenceServer server(so);
  const nn::NetworkModel net = tiny_net();

  RequestOptions victim;
  victim.weight_init = [&](std::int64_t layer, Tensor<std::int16_t>& k) {
    if (layer == 0 && !gated.exchange(true)) {
      blocker_started.set_value();
      release.wait();
    }
    Rng rng(7);
    k.fill_random(rng, -16, 16);
  };
  auto f1 = server.submit(net, 1, victim);
  blocker_started.get_future().wait();

  RequestOptions dead;
  dead.priority = 2;
  dead.cancel = std::make_shared<std::atomic<bool>>(true);
  auto f2 = server.submit(net, 1, dead);
  release_blocker.set_value();

  EXPECT_EQ(f1.get().status, RequestStatus::kOk);
  EXPECT_EQ(f2.get().status, RequestStatus::kCancelled);
  server.wait_idle();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.preemptions, 0);
  EXPECT_EQ(stats.resumes, 0);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.cancelled, 1);
}

TEST(InferenceServer, PreemptedThenCancelledAtPickupKeepsAttemptWallTime) {
  // Regression: a preempted request whose cancel token is set while it
  // waits to resume is resolved dead-on-arrival at pickup — and used to
  // report wall_ms = 0, silently dropping the execution time its first
  // attempt already accumulated. It also re-sampled the clock when
  // classifying the cancellation, so with a deadline attached the
  // token-cancel could masquerade as deadline_expired. Pin both fixes.
  std::promise<void> victim_started;
  std::promise<void> release_victim;
  std::shared_future<void> victim_gate = release_victim.get_future().share();
  std::promise<void> urgent_started;
  std::promise<void> release_urgent;
  std::shared_future<void> urgent_gate = release_urgent.get_future().share();
  std::atomic<bool> victim_gated{false};
  std::atomic<bool> urgent_gated{false};

  ServerOptions so;
  so.num_threads = 1;
  so.enable_preemption = true;
  InferenceServer server(so);
  const nn::NetworkModel net = tiny_net();

  RequestOptions victim;  // id 1, tier 0
  victim.deadline_ms = 60000.0;  // generous: any deadline_expired is a bug
  victim.cancel = std::make_shared<std::atomic<bool>>(false);
  victim.weight_init = [&](std::int64_t layer, Tensor<std::int16_t>& k) {
    if (layer == 0 && !victim_gated.exchange(true)) {
      victim_started.set_value();
      victim_gate.wait();
    }
    Rng rng(7);
    k.fill_random(rng, -16, 16);
  };
  auto victim_future = server.submit(net, 1, victim);
  victim_started.get_future().wait();

  RequestOptions urgent;  // id 2, tier 1 — forces the checkpoint
  urgent.priority = 1;
  urgent.weight_init = [&](std::int64_t layer, Tensor<std::int16_t>& k) {
    if (layer == 0 && !urgent_gated.exchange(true)) {
      urgent_started.set_value();
      urgent_gate.wait();
    }
    Rng rng(7);
    k.fill_random(rng, -16, 16);
  };
  auto urgent_future = server.submit(net, 1, urgent);
  release_victim.set_value();

  // The urgent request executing proves the victim was checkpointed and
  // re-enqueued; cancel it *while it waits to resume*, then let the
  // urgent request finish so the worker reaches the dead checkpoint.
  urgent_started.get_future().wait();
  victim.cancel->store(true);
  release_urgent.set_value();

  const InferenceResult ur = urgent_future.get();
  const InferenceResult vr = victim_future.get();
  server.wait_idle();

  EXPECT_EQ(ur.status, RequestStatus::kOk);
  EXPECT_EQ(ur.preemptions, 0);

  EXPECT_EQ(vr.status, RequestStatus::kCancelled);
  EXPECT_EQ(vr.preemptions, 1);
  EXPECT_EQ(vr.completed_layers, 1);  // the checkpointed layer still counts
  EXPECT_FALSE(vr.resumed);           // the terminal attempt never ran
  // The fixes under test: the first attempt's execution time survives,
  // and a token cancellation is never classified as a deadline expiry.
  EXPECT_GT(vr.wall_ms, 0.0);
  EXPECT_FALSE(vr.deadline_expired);
  EXPECT_FALSE(vr.deadline_missed);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.preemptions, 1);
  EXPECT_EQ(stats.resumes, 0);  // a cancelled checkpoint never resumes
  EXPECT_EQ(stats.deadline_expired, 0);
}

TEST(InferenceServer, NoPreemptionAcrossEqualTiers) {
  // Preemption requires a *strictly* higher tier: an equal-priority
  // arrival (even with a tighter deadline) never checkpoints the
  // running request.
  std::promise<void> blocker_started;
  std::promise<void> release_blocker;
  std::shared_future<void> release = release_blocker.get_future().share();
  std::atomic<bool> gated{false};

  ServerOptions so;
  so.num_threads = 1;
  so.enable_preemption = true;
  InferenceServer server(so);
  const nn::NetworkModel net = tiny_net();

  RequestOptions first;
  first.weight_init = [&](std::int64_t layer, Tensor<std::int16_t>& k) {
    if (layer == 0 && !gated.exchange(true)) {
      blocker_started.set_value();
      release.wait();
    }
    Rng rng(7);
    k.fill_random(rng, -16, 16);
  };
  auto f1 = server.submit(net, 1, first);
  blocker_started.get_future().wait();
  RequestOptions tight;
  tight.deadline_ms = 10e3;
  auto f2 = server.submit(net, 1, tight);
  release_blocker.set_value();
  (void)f1.get();
  (void)f2.get();
  server.wait_idle();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.preemptions, 0);
  EXPECT_EQ(stats.resumes, 0);
  EXPECT_EQ(stats.completed, 2);
}

TEST(InferenceServer, CompletedPastDeadlineCountsAsMiss) {
  ServerOptions so;
  so.num_threads = 1;
  InferenceServer server(so);

  // The deadline expires while the request is already executing (the
  // checkpoint gate sits *between* layers, so a single-layer network
  // always runs to completion): kOk, but flagged and counted as a miss.
  nn::NetworkModel net = tiny_net();
  net.conv_layers.resize(1);
  RequestOptions ro;
  ro.deadline_ms = 2000.0;  // generous: the pickup must beat it even on
                            // a loaded sanitizer runner...
  ro.weight_init = [&](std::int64_t, Tensor<std::int16_t>& kernels) {
    // ...and the execution must overshoot it.
    std::this_thread::sleep_for(std::chrono::milliseconds(3100));
    Rng rng(7);
    kernels.fill_random(rng, -16, 16);
  };
  const InferenceResult r = server.submit(net, 1, ro).get();
  EXPECT_EQ(r.status, RequestStatus::kOk);
  EXPECT_TRUE(r.deadline_missed);
  EXPECT_EQ(r.completed_layers, 1);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.deadline_misses, 1);
  EXPECT_EQ(stats.cancelled, 0);
}

}  // namespace
}  // namespace chainnn::serve
