// Randomized scheduling property harness for the preemptive,
// admission-controlled fleet.
//
// Seeded SplitMix64-derived traces (common/rng.hpp expands every seed
// through SplitMix64) of mixed priority / deadline / cancellation /
// admission requests are replayed against a single-threaded oracle
// scheduler, and the invariants that make the scheduler trustworthy are
// asserted on every trace:
//
//   * no lost or duplicated futures — every submitted request resolves
//     exactly once with a terminal status;
//   * every terminal status is accounted exactly once in ServerStats /
//     FleetStats (completed + cancelled + failed == submitted per chip,
//     plus fleet-level rejected covering the full trace);
//   * a preempted-and-resumed request's result is bit-identical to the
//     same request executed undisturbed (ofmaps, cycles, traffic);
//   * admission-rejected requests never execute and charge no backlog;
//   * all modelled backlog is retired exactly once (zero once idle —
//     double retirement would go negative-then-clamped, under-retirement
//     would leave residue).
//
// The traces only use features with *deterministic* terminal outcomes
// (pre-set cancel tokens, deadlines either already past or absurdly
// generous), so the oracle can predict every status single-threadedly
// even though the real fleet schedules across worker threads. Preemption
// changes interleavings, never outcomes — exactly the property under
// test.
//
// Seeds: three fixed seeds run in tier-1. CI's sanitize workflow sets
// CHAINNN_SCHED_ROTATE to rotate fresh seed triples every run (with
// --gtest_repeat each repetition advances the rotation); every seed is
// printed as "[sched-seed] N". To reproduce a logged failure, export
// CHAINNN_SCHED_SEED=<logged N>: every test then runs exactly that one
// seed, independent of test order, filters or repetition count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "chain/network_runner.hpp"
#include "common/rng.hpp"
#include "serve/fleet.hpp"

namespace chainnn::serve {
namespace {

std::vector<std::uint64_t> scheduling_seeds() {
  std::vector<std::uint64_t> seeds;
  if (const char* exact = std::getenv("CHAINNN_SCHED_SEED")) {
    // Reproduction mode: exactly this one seed in every test, so a seed
    // logged by a failing CI run replays regardless of which tests run
    // before it (the rotation below is process-global, so re-running the
    // whole binary would otherwise hand the triple to a different test).
    seeds = {std::strtoull(exact, nullptr, 10)};
  } else if (const char* env = std::getenv("CHAINNN_SCHED_ROTATE")) {
    // Rotating mode (CI): a fresh seed triple per call, offset by the
    // rotation counter so --gtest_repeat never replays a triple. The
    // base (CI passes the workflow run number) is strided by 1024 so
    // consecutive runs draw disjoint seed sets — one sanitize invocation
    // (3 tests x 5 repeats x 3 seeds = 45) stays well under the stride.
    static std::atomic<std::uint64_t> rotation{0};
    const std::uint64_t n = rotation.fetch_add(1);
    const std::uint64_t base = 1024 * std::strtoull(env, nullptr, 10);
    seeds = {base + 3 * n, base + 3 * n + 1, base + 3 * n + 2};
  } else {
    seeds = {1, 2, 3};  // fixed tier-1 seeds
  }
  for (const std::uint64_t s : seeds)
    std::cout << "[sched-seed] " << s << "\n";
  return seeds;
}

nn::NetworkModel tiny_net(int layers) {
  nn::NetworkModel net;
  net.name = "tiny" + std::to_string(layers);
  std::int64_t channels = 2;
  for (int i = 0; i < layers; ++i) {
    nn::ConvLayerParams l;
    l.name = "c" + std::to_string(i + 1);
    l.in_channels = channels;
    l.out_channels = (i + 1 == layers) ? 2 : 3;
    l.in_height = l.in_width = 8;
    l.kernel = 3;
    l.pad = 1;
    l.validate();
    channels = l.out_channels;
    net.conv_layers.push_back(l);
  }
  return net;
}

Tensor<std::int16_t> request_input(const nn::NetworkModel& net,
                                   std::int64_t batch, std::uint64_t seed) {
  const nn::ConvLayerParams& first = net.conv_layers.front();
  Tensor<std::int16_t> input(
      Shape{batch, first.in_channels, first.in_height, first.in_width});
  Rng rng(seed);
  input.fill_random(rng, -64, 64);
  return input;
}

// The chip configuration a fleet request actually executed under,
// recovered from the result's chip name (a per-request array override
// replaces the chip's array but keeps its memory, exactly as
// InferenceServer::execute_request does).
chain::AcceleratorConfig routed_chip_config(
    const Fleet& fleet, const std::string& chip_name,
    const std::optional<dataflow::ArrayShape>& array_override = {}) {
  for (const ChipSpec& chip : fleet.chips()) {
    if (chip.name != chip_name) continue;
    chain::AcceleratorConfig cfg = analytical_accelerator_config();
    cfg.array = array_override ? *array_override : chip.array;
    cfg.memory = chip.memory;
    return cfg;
  }
  ADD_FAILURE() << "unknown chip " << chip_name;
  return analytical_accelerator_config();
}

// Reference execution of one request, undisturbed: what the fleet must
// have computed regardless of preemptions, queue order or worker
// interleaving.
chain::NetworkRunResult direct_run(
    const nn::NetworkModel& net, const Tensor<std::int16_t>& input,
    const chain::AcceleratorConfig& cfg,
    const std::function<void(std::int64_t, Tensor<std::int16_t>&)>&
        weight_init) {
  chain::ChainAccelerator acc(cfg);
  const auto energy = energy::EnergyModel::paper_calibrated();
  chain::NetworkRunner runner(acc, energy);
  chain::NetworkRunOptions ro;
  ro.verify_against_golden = false;
  ro.weight_init = weight_init;
  return runner.run(net, input, ro);
}

// --- the single-threaded oracle scheduler ----------------------------------

// One request of a generated trace, with everything the oracle needs to
// predict and verify its terminal state.
struct TraceRequest {
  const nn::NetworkModel* net = nullptr;
  Tensor<std::int16_t> input;
  RequestOptions options;
  RequestStatus expected = RequestStatus::kOk;
  bool expected_deadline_expired = false;
};

// Replays the trace single-threadedly (submission order — the oracle
// needs no queue: the deterministic features decide each terminal status
// independently of scheduling) and tallies what the fleet counters must
// show afterwards.
struct OracleTally {
  std::int64_t ok = 0;
  std::int64_t cancelled = 0;
  std::int64_t expired = 0;
  std::int64_t rejected = 0;
};

OracleTally oracle_schedule(std::vector<TraceRequest>& trace) {
  OracleTally tally;
  for (TraceRequest& r : trace) {
    const bool past_deadline =
        r.options.deadline_ms && *r.options.deadline_ms <= 0.0;
    const bool token_set =
        r.options.cancel &&
        r.options.cancel->load(std::memory_order_relaxed);
    if (r.options.admission && past_deadline) {
      // Admission control sizes the request against the modelled backlog
      // and closed-form chain seconds; a deadline at or before zero is
      // infeasible on every chip by definition.
      r.expected = RequestStatus::kRejected;
      ++tally.rejected;
    } else if (token_set || past_deadline) {
      r.expected = RequestStatus::kCancelled;
      r.expected_deadline_expired = past_deadline;
      ++tally.cancelled;
      if (past_deadline) ++tally.expired;
    } else {
      r.expected = RequestStatus::kOk;
      ++tally.ok;
    }
  }
  return tally;
}

// Submits the trace, drains the fleet, and asserts every harness
// invariant against the oracle's prediction.
void run_trace_and_assert_invariants(Fleet& fleet,
                                     std::vector<TraceRequest>& trace) {
  const OracleTally tally = oracle_schedule(trace);

  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(trace.size());
  for (TraceRequest& r : trace)
    futures.push_back(fleet.submit(*r.net, r.input, r.options));

  // No lost futures: every one resolves (get() would throw or block
  // forever otherwise); no duplicated terminal states: each status is
  // observed exactly once per request and tallied here.
  OracleTally observed;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_TRUE(futures[i].valid());
    const InferenceResult r = futures[i].get();
    const TraceRequest& want = trace[i];
    EXPECT_EQ(r.status, want.expected) << "request " << i;
    // Exactly one terminal deadline classification per request: a
    // deadline is either missed (completed late, kOk) or expired
    // (cancelled in time's stead, kCancelled) — never both, and never
    // on the wrong status. These invariants pin the single-clock-sample
    // classification in the server: with independent re-samples at each
    // decision point, a request near its deadline could flip between
    // classes between the decision and its recording.
    EXPECT_FALSE(r.deadline_missed && r.deadline_expired) << "request " << i;
    if (r.deadline_missed)
      EXPECT_EQ(r.status, RequestStatus::kOk) << "request " << i;
    if (r.deadline_expired)
      EXPECT_EQ(r.status, RequestStatus::kCancelled) << "request " << i;
    switch (r.status) {
      case RequestStatus::kOk: {
        ++observed.ok;
        // Bit-identity regardless of preemptions: the fleet's result
        // must equal the same request executed undisturbed on the chip
        // it was routed to.
        const chain::NetworkRunResult reference =
            direct_run(*want.net, want.input,
                       routed_chip_config(fleet, r.chip),
                       want.options.weight_init);
        std::string why;
        EXPECT_TRUE(network_runs_identical(r.run, reference, &why))
            << "request " << i << " (preemptions " << r.preemptions
            << "): " << why;
        EXPECT_EQ(r.completed_layers,
                  static_cast<std::int64_t>(want.net->conv_layers.size()));
        break;
      }
      case RequestStatus::kCancelled:
        ++observed.cancelled;
        if (r.deadline_expired) ++observed.expired;
        EXPECT_EQ(r.deadline_expired, want.expected_deadline_expired)
            << "request " << i;
        EXPECT_TRUE(r.run.layers.empty());
        break;
      case RequestStatus::kRejected:
        ++observed.rejected;
        // Rejected requests never execute: no layers, no chip server
        // involvement (checked in aggregate below).
        EXPECT_EQ(r.completed_layers, 0) << "request " << i;
        EXPECT_TRUE(r.run.layers.empty());
        EXPECT_FALSE(r.resumed);
        break;
      case RequestStatus::kFailed:
        ADD_FAILURE() << "request " << i << " failed";
        break;
    }
  }
  fleet.wait_idle();

  EXPECT_EQ(observed.ok, tally.ok);
  EXPECT_EQ(observed.cancelled, tally.cancelled);
  EXPECT_EQ(observed.expired, tally.expired);
  EXPECT_EQ(observed.rejected, tally.rejected);

  // Conservation: every terminal status accounted exactly once in the
  // stats, per chip and fleet-wide, with rejected requests never having
  // reached a server.
  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.submitted + stats.rejected,
            static_cast<std::int64_t>(trace.size()));
  EXPECT_EQ(stats.completed, tally.ok);
  EXPECT_EQ(stats.cancelled, tally.cancelled);
  EXPECT_EQ(stats.deadline_expired, tally.expired);
  EXPECT_EQ(stats.rejected, tally.rejected);
  EXPECT_EQ(stats.failed, 0);
  // The classification subsets hold in aggregate too: expirations are
  // cancellations, misses are completions.
  EXPECT_LE(stats.deadline_expired, stats.cancelled);
  EXPECT_LE(stats.deadline_misses, stats.completed);
  for (const FleetChipStats& chip : stats.chips) {
    EXPECT_EQ(chip.server.completed + chip.server.cancelled +
                  chip.server.failed,
              chip.server.submitted)
        << chip.name;
    // All backlog retired exactly once: double retirement would have
    // been clamped away mid-run and starved the comparison above; under
    // retirement leaves residue here.
    EXPECT_NEAR(chip.backlog_seconds, 0.0, 1e-9) << chip.name;
  }
  // Every preemption that resumed is counted on both sides; a trace
  // without mid-run cancellations resumes every checkpoint it takes.
  EXPECT_EQ(stats.resumes, stats.preemptions);
}

TEST(SchedProperties, RandomizedMixedTraceMatchesOracle) {
  for (const std::uint64_t seed : scheduling_seeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const nn::NetworkModel net2 = tiny_net(2);
    const nn::NetworkModel net3 = tiny_net(3);

    FleetOptions fo;
    fo.threads_per_chip = 1;
    fo.preemption = true;
    Fleet fleet(fo);

    Rng rng(seed);
    std::vector<TraceRequest> trace;
    for (int i = 0; i < 18; ++i) {
      TraceRequest r;
      r.net = rng.uniform_int(0, 1) ? &net3 : &net2;
      const std::int64_t batch = rng.uniform_int(1, 2);
      r.input = request_input(*r.net, batch,
                              seed * 1000 + static_cast<std::uint64_t>(i));
      r.options.priority = static_cast<std::int32_t>(rng.uniform_int(0, 2));
      const std::int64_t deadline_class = rng.uniform_int(0, 9);
      if (deadline_class < 2) {
        r.options.deadline_ms = -1.0;  // already past at submit
      } else if (deadline_class < 4) {
        r.options.deadline_ms = 600e3;  // generous: never missed
      }
      if (r.options.deadline_ms && rng.uniform_int(0, 1))
        r.options.admission = true;
      if (rng.uniform_int(0, 9) == 0) {
        // Pre-set cancel token: dead on arrival, deterministically.
        r.options.cancel = std::make_shared<std::atomic<bool>>(true);
      }
      trace.push_back(std::move(r));
    }
    run_trace_and_assert_invariants(fleet, trace);
  }
}

TEST(SchedProperties, PreemptionBurstIsBitIdenticalToOracle) {
  // Engineered burst: one tier-0 victim per chip is held mid-layer-0
  // until six tier-2 requests are queued behind them, guaranteeing every
  // victim is preempted at its layer-1 boundary. The oracle (direct,
  // undisturbed execution) must match every result bit for bit, and the
  // preemption/resume counters must balance.
  for (const std::uint64_t seed : scheduling_seeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const nn::NetworkModel net = tiny_net(3);

    FleetOptions fo;
    fo.threads_per_chip = 1;
    fo.preemption = true;
    Fleet fleet(fo);
    const std::size_t num_chips = fleet.chips().size();
    ASSERT_EQ(num_chips, 3u);

    // Every burst request pins the same ArrayShape (the paper chip), so
    // its modelled seconds are identical on every chip and the
    // earliest-finish tie-break round-robins deterministically: victims
    // land one per chip, urgents two per chip — no dependence on the
    // chips' relative speeds for this shape.
    const dataflow::ArrayShape pinned;
    // Per-layer-pure weights, shared by the victims and the oracle.
    const auto weights = [seed](std::int64_t layer,
                                Tensor<std::int16_t>& k) {
      Rng rng(seed * 131 + static_cast<std::uint64_t>(layer));
      k.fill_random(rng, -16, 16);
    };

    std::promise<void> open_gate;
    std::shared_future<void> gate = open_gate.get_future().share();
    std::vector<std::promise<void>> started(num_chips);
    std::vector<std::future<InferenceResult>> victims;
    std::vector<Tensor<std::int16_t>> victim_inputs;
    for (std::size_t v = 0; v < num_chips; ++v) {
      auto once = std::make_shared<std::atomic<bool>>(false);
      RequestOptions ro;
      ro.array = pinned;
      std::promise<void>* my_started = &started[v];
      ro.weight_init = [gate, once, my_started, weights](
                           std::int64_t layer, Tensor<std::int16_t>& k) {
        if (layer == 0 && !once->exchange(true)) {
          my_started->set_value();
          gate.wait();
        }
        weights(layer, k);
      };
      victim_inputs.push_back(
          request_input(net, 1, seed * 77 + static_cast<std::uint64_t>(v)));
      victims.push_back(fleet.submit(net, victim_inputs.back(), ro));
    }
    // All three victims are mid-layer-0, one per chip, each pinning its
    // chip's only worker.
    for (std::promise<void>& p : started) p.get_future().wait();

    std::vector<std::future<InferenceResult>> urgent;
    std::vector<Tensor<std::int16_t>> urgent_inputs;
    for (int u = 0; u < 6; ++u) {
      RequestOptions ro;
      ro.priority = 2;
      ro.array = pinned;
      urgent_inputs.push_back(
          request_input(net, 1, seed * 99 + static_cast<std::uint64_t>(u)));
      urgent.push_back(fleet.submit(net, urgent_inputs.back(), ro));
    }
    open_gate.set_value();

    for (std::size_t v = 0; v < victims.size(); ++v) {
      const InferenceResult r = victims[v].get();
      EXPECT_EQ(r.status, RequestStatus::kOk);
      EXPECT_GE(r.preemptions, 1) << "victim " << v;
      EXPECT_TRUE(r.resumed) << "victim " << v;
      const chain::NetworkRunResult reference =
          direct_run(net, victim_inputs[v],
                     routed_chip_config(fleet, r.chip, pinned), weights);
      std::string why;
      EXPECT_TRUE(network_runs_identical(r.run, reference, &why))
          << "victim " << v << ": " << why;
    }
    for (std::size_t u = 0; u < urgent.size(); ++u) {
      const InferenceResult r = urgent[u].get();
      EXPECT_EQ(r.status, RequestStatus::kOk);
      EXPECT_EQ(r.preemptions, 0) << "urgent " << u;  // top tier
      const chain::NetworkRunResult reference =
          direct_run(net, urgent_inputs[u],
                     routed_chip_config(fleet, r.chip, pinned), {});
      std::string why;
      EXPECT_TRUE(network_runs_identical(r.run, reference, &why))
          << "urgent " << u << ": " << why;
    }
    fleet.wait_idle();

    const FleetStats stats = fleet.stats();
    EXPECT_GE(stats.preemptions, 3);  // every victim yielded at least once
    EXPECT_EQ(stats.resumes, stats.preemptions);
    EXPECT_EQ(stats.completed, 9);
    EXPECT_EQ(stats.failed, 0);
    for (const FleetChipStats& chip : stats.chips)
      EXPECT_NEAR(chip.backlog_seconds, 0.0, 1e-9) << chip.name;
  }
}

TEST(SchedProperties, AdmissionNeverIncreasesMissedDeadlines) {
  // The same randomized deadline-laden trace replayed on two fleets —
  // admission off, then on. Off: every doomed request burns a worker
  // pickup and counts as a missed deadline (expired or completed-late).
  // On: every doomed request is rejected at submit and counts as
  // nothing. Admission must strictly reduce missed deadlines here, and
  // rejected requests must never execute.
  for (const std::uint64_t seed : scheduling_seeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const nn::NetworkModel net2 = tiny_net(2);
    const nn::NetworkModel net3 = tiny_net(3);

    Rng rng(seed ^ 0xAD315510ull);
    struct Entry {
      const nn::NetworkModel* net;
      std::int64_t batch;
      bool doomed;
      std::int32_t priority;
    };
    std::vector<Entry> entries;
    std::int64_t doomed_count = 0;
    for (int i = 0; i < 12; ++i) {
      Entry e;
      e.net = rng.uniform_int(0, 1) ? &net3 : &net2;
      e.batch = rng.uniform_int(1, 2);
      e.priority = static_cast<std::int32_t>(rng.uniform_int(0, 1));
      e.doomed = rng.uniform_int(0, 2) == 0;  // ~1/3 infeasible
      if (e.doomed) ++doomed_count;
      entries.push_back(e);
    }
    if (doomed_count == 0) {  // the property needs at least one
      entries.front().doomed = true;
      doomed_count = 1;
    }

    const auto run_with_admission = [&](bool admission) {
      FleetOptions fo;
      fo.threads_per_chip = 1;
      fo.preemption = true;
      Fleet fleet(fo);
      std::vector<std::future<InferenceResult>> futures;
      for (const Entry& e : entries) {
        RequestOptions ro;
        ro.priority = e.priority;
        // Feasible requests get a generous deadline; doomed ones a
        // microscopic-but-positive one no chip can meet.
        ro.deadline_ms = e.doomed ? 1e-6 : 600e3;
        ro.admission = admission;
        futures.push_back(fleet.submit(*e.net, e.batch, ro));
      }
      for (std::size_t i = 0; i < futures.size(); ++i) {
        const InferenceResult r = futures[i].get();
        if (entries[i].doomed && admission) {
          EXPECT_EQ(r.status, RequestStatus::kRejected) << "entry " << i;
          EXPECT_EQ(r.completed_layers, 0);
          EXPECT_TRUE(r.run.layers.empty());
        } else if (!entries[i].doomed) {
          EXPECT_EQ(r.status, RequestStatus::kOk) << "entry " << i;
        }
      }
      fleet.wait_idle();
      return fleet.stats();
    };

    const FleetStats off = run_with_admission(false);
    const FleetStats on = run_with_admission(true);

    EXPECT_EQ(off.rejected, 0);
    EXPECT_EQ(on.rejected, doomed_count);
    // Rejected requests never reached a chip server.
    EXPECT_EQ(on.submitted,
              static_cast<std::int64_t>(entries.size()) - doomed_count);
    // Every doomed request costs the admission-off fleet a missed
    // deadline one way or the other; admission-on misses none.
    EXPECT_GE(off.missed_deadlines(), doomed_count);
    EXPECT_EQ(on.missed_deadlines(), 0);
    EXPECT_LT(on.missed_deadlines(), off.missed_deadlines());
  }
}

}  // namespace
}  // namespace chainnn::serve
