// Fleet: earliest-finish routing across heterogeneous chips, shared
// plan cache, deadline/cancellation accounting, and — the load-bearing
// guarantee — bit-identity of a fleet-routed run against direct
// execution on the routed chip, with fidelity sampling cross-checking
// both engines on every request.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "chain/network_runner.hpp"
#include "common/rng.hpp"
#include "serve/fleet.hpp"

namespace chainnn::serve {
namespace {

nn::NetworkModel tiny_net() {
  nn::NetworkModel net;
  net.name = "tiny";
  nn::ConvLayerParams l1;
  l1.name = "c1";
  l1.in_channels = 2;
  l1.out_channels = 3;
  l1.in_height = l1.in_width = 8;
  l1.kernel = 3;
  l1.pad = 1;
  l1.validate();
  nn::ConvLayerParams l2;
  l2.name = "c2";
  l2.in_channels = 3;
  l2.out_channels = 2;
  l2.in_height = l2.in_width = 8;
  l2.kernel = 3;
  l2.pad = 1;
  l2.validate();
  net.conv_layers = {l1, l2};
  return net;
}

TEST(Fleet, SpreadsIdenticalRequestsAcrossChips) {
  FleetOptions fo;
  fo.threads_per_chip = 1;
  Fleet fleet(fo);
  ASSERT_EQ(fleet.chips().size(), 3u);

  const nn::NetworkModel net = tiny_net();
  // Gate every execution until all nine requests are routed: no request
  // completes (and retires backlog) mid-submission, so the placement
  // sequence is a pure function of the modelled backlogs and the test
  // is independent of host timing.
  std::promise<void> open_gate;
  std::shared_future<void> gate = open_gate.get_future().share();
  RequestOptions gated;
  gated.weight_init = [gate](std::int64_t, Tensor<std::int16_t>& kernels) {
    gate.wait();
    Rng rng(7);
    kernels.fill_random(rng, -16, 16);
  };
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 9; ++i)
    futures.push_back(fleet.submit(net, /*batch=*/1, gated));
  open_gate.set_value();
  for (auto& f : futures) {
    const InferenceResult r = f.get();
    EXPECT_EQ(r.status, RequestStatus::kOk);
    EXPECT_FALSE(r.chip.empty());
    EXPECT_GT(r.modelled_seconds, 0.0);
  }
  fleet.wait_idle();

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.submitted, 9);
  EXPECT_EQ(stats.completed, 9);
  EXPECT_EQ(stats.failed, 0);
  // Identical requests + modelled backlog => round-robin-like spread:
  // every chip sees work (one chip serving all 9 would mean the backlog
  // term is being ignored).
  int chips_used = 0;
  for (const FleetChipStats& chip : stats.chips) {
    EXPECT_EQ(chip.routed, chip.server.submitted);
    if (chip.routed > 0) ++chips_used;
  }
  EXPECT_EQ(chips_used, 3);
  // All backlog retired once idle; cumulative busy time remains.
  for (const FleetChipStats& chip : stats.chips) {
    EXPECT_NEAR(chip.backlog_seconds, 0.0, 1e-12);
    if (chip.routed > 0) EXPECT_GT(chip.dispatched_seconds, 0.0);
  }
  EXPECT_GT(stats.modelled_makespan_seconds(), 0.0);
  // One shared cache fleet-wide: later chips hit on earlier chips' plans
  // only when shapes coincide; at minimum the per-chip second requests
  // hit. Entries cover (2 layers) x (3 arrays).
  EXPECT_GT(stats.plan_cache.hits, 0u);
}

TEST(Fleet, FleetVsDirectBitIdentityUnderFullFidelitySampling) {
  FleetOptions fo;
  fo.fidelity_sample_every_n = 1;  // cross-check every request
  Fleet fleet(fo);
  const nn::NetworkModel net = tiny_net();

  Tensor<std::int16_t> input(Shape{2, 2, 8, 8});
  Rng rng(1234);
  input.fill_random(rng, -64, 64);

  const InferenceResult r = fleet.submit(net, input, {}).get();
  ASSERT_EQ(r.status, RequestStatus::kOk);
  EXPECT_TRUE(r.fidelity.sampled);
  EXPECT_FALSE(r.fidelity.diverged) << r.fidelity.detail;

  // Replay directly (no fleet, no server) on the routed chip's exact
  // configuration: routing must only have chosen *where* the request
  // ran, never *what* it computed.
  const ChipSpec* routed = nullptr;
  for (const ChipSpec& chip : fleet.chips())
    if (chip.name == r.chip) routed = &chip;
  ASSERT_NE(routed, nullptr) << "unknown chip " << r.chip;

  chain::AcceleratorConfig cfg = analytical_accelerator_config();
  cfg.array = routed->array;
  cfg.memory = routed->memory;
  chain::ChainAccelerator acc(cfg);
  const auto energy = energy::EnergyModel::paper_calibrated();
  chain::NetworkRunner runner(acc, energy);
  chain::NetworkRunOptions ro;
  ro.verify_against_golden = false;
  const chain::NetworkRunResult direct = runner.run(net, input, ro);

  std::string why;
  EXPECT_TRUE(network_runs_identical(r.run, direct, &why)) << why;

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.fidelity_samples, 1);
  EXPECT_EQ(stats.fidelity_divergences, 0);
}

TEST(Fleet, PastDeadlineRequestRetiresItsBacklog) {
  FleetOptions fo;
  fo.threads_per_chip = 1;
  Fleet fleet(fo);
  const nn::NetworkModel net = tiny_net();

  RequestOptions late;
  late.deadline_ms = -1.0;
  const InferenceResult r = fleet.submit(net, 1, late).get();
  EXPECT_EQ(r.status, RequestStatus::kCancelled);
  fleet.wait_idle();

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.completed, 0);
  // The cancelled request's modelled seconds must not leak into the
  // backlog, or the router would permanently under-load that chip.
  for (const FleetChipStats& chip : stats.chips)
    EXPECT_NEAR(chip.backlog_seconds, 0.0, 1e-12);
}

TEST(Fleet, RejectedSubmitLeavesRouterUntouched) {
  FleetOptions fo;
  fo.threads_per_chip = 1;
  Fleet fleet(fo);
  const nn::NetworkModel net = tiny_net();

  RequestOptions bad;
  bad.num_workers = 0;
  EXPECT_THROW((void)fleet.submit(net, 1, bad), std::logic_error);

  // The rejected request must not have been charged to any chip: a
  // leaked dispatch would permanently skew placement away from the chip
  // it landed on.
  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.submitted, 0);
  for (const FleetChipStats& chip : stats.chips) {
    EXPECT_EQ(chip.routed, 0) << chip.name;
    EXPECT_NEAR(chip.backlog_seconds, 0.0, 1e-12) << chip.name;
    EXPECT_NEAR(chip.dispatched_seconds, 0.0, 1e-12) << chip.name;
  }
}

TEST(Fleet, PlanRouteMatchesSubmitPlacement) {
  FleetOptions fo;
  Fleet fleet(fo);
  const nn::NetworkModel net = tiny_net();

  const RouteDecision planned = fleet.plan_route(net, /*batch=*/1);
  const InferenceResult r = fleet.submit(net, 1, {}).get();
  EXPECT_EQ(r.chip, planned.chip_name);
  EXPECT_DOUBLE_EQ(r.modelled_seconds, planned.request_seconds);
  fleet.wait_idle();
}

TEST(Fleet, HonorsPerRequestArrayOverride) {
  Fleet fleet{FleetOptions{}};
  RequestOptions ro;
  dataflow::ArrayShape pinned;
  pinned.num_pes = 144;
  pinned.clock_hz = 350e6;
  ro.array = pinned;
  const InferenceResult r = fleet.submit(tiny_net(), 1, ro).get();
  ASSERT_EQ(r.status, RequestStatus::kOk);
  for (const auto& layer : r.run.layers) {
    EXPECT_EQ(layer.run.plan.array.num_pes, 144);
    EXPECT_EQ(layer.run.plan.array.clock_hz, 350e6);
  }
}

}  // namespace
}  // namespace chainnn::serve
