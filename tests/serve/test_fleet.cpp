// Fleet: earliest-finish routing across heterogeneous chips, shared
// plan cache, deadline/cancellation accounting, and — the load-bearing
// guarantee — bit-identity of a fleet-routed run against direct
// execution on the routed chip, with fidelity sampling cross-checking
// both engines on every request.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <vector>

#include "chain/network_runner.hpp"
#include "common/rng.hpp"
#include "serve/fleet.hpp"

namespace chainnn::serve {
namespace {

nn::NetworkModel tiny_net() {
  nn::NetworkModel net;
  net.name = "tiny";
  nn::ConvLayerParams l1;
  l1.name = "c1";
  l1.in_channels = 2;
  l1.out_channels = 3;
  l1.in_height = l1.in_width = 8;
  l1.kernel = 3;
  l1.pad = 1;
  l1.validate();
  nn::ConvLayerParams l2;
  l2.name = "c2";
  l2.in_channels = 3;
  l2.out_channels = 2;
  l2.in_height = l2.in_width = 8;
  l2.kernel = 3;
  l2.pad = 1;
  l2.validate();
  net.conv_layers = {l1, l2};
  return net;
}

TEST(Fleet, SpreadsIdenticalRequestsAcrossChips) {
  FleetOptions fo;
  fo.threads_per_chip = 1;
  Fleet fleet(fo);
  ASSERT_EQ(fleet.chips().size(), 3u);

  const nn::NetworkModel net = tiny_net();
  // Gate every execution until all nine requests are routed: no request
  // completes (and retires backlog) mid-submission, so the placement
  // sequence is a pure function of the modelled backlogs and the test
  // is independent of host timing.
  std::promise<void> open_gate;
  std::shared_future<void> gate = open_gate.get_future().share();
  RequestOptions gated;
  gated.weight_init = [gate](std::int64_t, Tensor<std::int16_t>& kernels) {
    gate.wait();
    Rng rng(7);
    kernels.fill_random(rng, -16, 16);
  };
  std::vector<std::future<InferenceResult>> futures;
  for (int i = 0; i < 9; ++i)
    futures.push_back(fleet.submit(net, /*batch=*/1, gated));
  open_gate.set_value();
  for (auto& f : futures) {
    const InferenceResult r = f.get();
    EXPECT_EQ(r.status, RequestStatus::kOk);
    EXPECT_FALSE(r.chip.empty());
    EXPECT_GT(r.modelled_seconds, 0.0);
  }
  fleet.wait_idle();

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.submitted, 9);
  EXPECT_EQ(stats.completed, 9);
  EXPECT_EQ(stats.failed, 0);
  // Identical requests + modelled backlog => round-robin-like spread:
  // every chip sees work (one chip serving all 9 would mean the backlog
  // term is being ignored).
  int chips_used = 0;
  for (const FleetChipStats& chip : stats.chips) {
    EXPECT_EQ(chip.routed, chip.server.submitted);
    if (chip.routed > 0) ++chips_used;
  }
  EXPECT_EQ(chips_used, 3);
  // All backlog retired once idle; cumulative busy time remains.
  for (const FleetChipStats& chip : stats.chips) {
    EXPECT_NEAR(chip.backlog_seconds, 0.0, 1e-12);
    if (chip.routed > 0) EXPECT_GT(chip.dispatched_seconds, 0.0);
  }
  EXPECT_GT(stats.modelled_makespan_seconds(), 0.0);
  // One shared cache fleet-wide: later chips hit on earlier chips' plans
  // only when shapes coincide; at minimum the per-chip second requests
  // hit. Entries cover (2 layers) x (3 arrays).
  EXPECT_GT(stats.plan_cache.hits, 0u);
}

TEST(Fleet, FleetVsDirectBitIdentityUnderFullFidelitySampling) {
  FleetOptions fo;
  fo.fidelity_sample_every_n = 1;  // cross-check every request
  Fleet fleet(fo);
  const nn::NetworkModel net = tiny_net();

  Tensor<std::int16_t> input(Shape{2, 2, 8, 8});
  Rng rng(1234);
  input.fill_random(rng, -64, 64);

  const InferenceResult r = fleet.submit(net, input, {}).get();
  ASSERT_EQ(r.status, RequestStatus::kOk);
  EXPECT_TRUE(r.fidelity.sampled);
  EXPECT_FALSE(r.fidelity.diverged) << r.fidelity.detail;

  // Replay directly (no fleet, no server) on the routed chip's exact
  // configuration: routing must only have chosen *where* the request
  // ran, never *what* it computed.
  const ChipSpec* routed = nullptr;
  for (const ChipSpec& chip : fleet.chips())
    if (chip.name == r.chip) routed = &chip;
  ASSERT_NE(routed, nullptr) << "unknown chip " << r.chip;

  chain::AcceleratorConfig cfg = analytical_accelerator_config();
  cfg.array = routed->array;
  cfg.memory = routed->memory;
  chain::ChainAccelerator acc(cfg);
  const auto energy = energy::EnergyModel::paper_calibrated();
  chain::NetworkRunner runner(acc, energy);
  chain::NetworkRunOptions ro;
  ro.verify_against_golden = false;
  const chain::NetworkRunResult direct = runner.run(net, input, ro);

  std::string why;
  EXPECT_TRUE(network_runs_identical(r.run, direct, &why)) << why;

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.fidelity_samples, 1);
  EXPECT_EQ(stats.fidelity_divergences, 0);
}

TEST(Fleet, PastDeadlineRequestRetiresItsBacklog) {
  FleetOptions fo;
  fo.threads_per_chip = 1;
  Fleet fleet(fo);
  const nn::NetworkModel net = tiny_net();

  RequestOptions late;
  late.deadline_ms = -1.0;
  const InferenceResult r = fleet.submit(net, 1, late).get();
  EXPECT_EQ(r.status, RequestStatus::kCancelled);
  fleet.wait_idle();

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.completed, 0);
  // The cancelled request's modelled seconds must not leak into the
  // backlog, or the router would permanently under-load that chip.
  for (const FleetChipStats& chip : stats.chips)
    EXPECT_NEAR(chip.backlog_seconds, 0.0, 1e-12);
}

TEST(Fleet, RejectedSubmitLeavesRouterUntouched) {
  FleetOptions fo;
  fo.threads_per_chip = 1;
  Fleet fleet(fo);
  const nn::NetworkModel net = tiny_net();

  RequestOptions bad;
  bad.num_workers = 0;
  EXPECT_THROW((void)fleet.submit(net, 1, bad), std::logic_error);

  // The rejected request must not have been charged to any chip: a
  // leaked dispatch would permanently skew placement away from the chip
  // it landed on.
  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.submitted, 0);
  for (const FleetChipStats& chip : stats.chips) {
    EXPECT_EQ(chip.routed, 0) << chip.name;
    EXPECT_NEAR(chip.backlog_seconds, 0.0, 1e-12) << chip.name;
    EXPECT_NEAR(chip.dispatched_seconds, 0.0, 1e-12) << chip.name;
  }
}

TEST(Fleet, PlanRouteMatchesSubmitPlacement) {
  FleetOptions fo;
  Fleet fleet(fo);
  const nn::NetworkModel net = tiny_net();

  const RouteDecision planned = fleet.plan_route(net, /*batch=*/1);
  const InferenceResult r = fleet.submit(net, 1, {}).get();
  EXPECT_EQ(r.chip, planned.chip_name);
  EXPECT_DOUBLE_EQ(r.modelled_seconds, planned.request_seconds);
  fleet.wait_idle();
}

TEST(Fleet, PreemptedThenCancelledIsNotDoubleRetracted) {
  // Regression for the preemption path of the backlog accounting: a
  // preemption retires the completed layers' modelled seconds
  // immediately, and the terminal hook retires only the remainder. A
  // request that is preempted and then cancelled before its resume must
  // retire exactly its modelled seconds once — retiring them twice would
  // (via the clamp in Router::complete) eat a *different* request's
  // backlog and permanently skew placement.
  ChipSpec only;
  only.name = "solo";
  FleetOptions fo;
  fo.chips = {only};  // single chip: placement is forced, timing is not
  fo.threads_per_chip = 1;
  fo.preemption = true;
  Fleet fleet(fo);
  const nn::NetworkModel net = tiny_net();
  const double modelled = fleet.plan_route(net, 1).request_seconds;
  ASSERT_GT(modelled, 0.0);

  std::promise<void> a_started, b_started;
  std::promise<void> release_a, release_b;
  std::shared_future<void> a_gate = release_a.get_future().share();
  std::shared_future<void> b_gate = release_b.get_future().share();
  std::atomic<bool> a_gated{false}, b_gated{false};
  auto token_a = std::make_shared<std::atomic<bool>>(false);

  // A (tier 0): blocks in layer 0 until C and B are queued, then gets
  // preempted by C at the layer-1 boundary.
  RequestOptions a;
  a.cancel = token_a;
  a.weight_init = [&](std::int64_t layer, Tensor<std::int16_t>& k) {
    if (layer == 0 && !a_gated.exchange(true)) {
      a_started.set_value();
      a_gate.wait();
    }
    Rng rng(7);
    k.fill_random(rng, -16, 16);
  };
  auto fa = fleet.submit(net, 1, a);
  a_started.get_future().wait();

  // C (tier 1): the preemptor; its weight_init cancels A, so A is
  // cancelled while checkpointed — before it can resume.
  RequestOptions c;
  c.priority = 1;
  c.weight_init = [&](std::int64_t, Tensor<std::int16_t>& k) {
    token_a->store(true);
    Rng rng(8);
    k.fill_random(rng, -16, 16);
  };
  auto fc = fleet.submit(net, 1, c);

  // B (tier 0): runs after A's cancellation and blocks so the test can
  // observe the backlog mid-flight.
  RequestOptions b;
  b.weight_init = [&](std::int64_t layer, Tensor<std::int16_t>& k) {
    if (layer == 0 && !b_gated.exchange(true)) {
      b_started.set_value();
      b_gate.wait();
    }
    Rng rng(9);
    k.fill_random(rng, -16, 16);
  };
  auto fb = fleet.submit(net, 1, b);
  release_a.set_value();

  const InferenceResult ra = fa.get();
  EXPECT_EQ(ra.status, RequestStatus::kCancelled);
  EXPECT_EQ(ra.preemptions, 1);
  EXPECT_EQ(ra.completed_layers, 1);  // the checkpointed layer counts
  EXPECT_GT(ra.modelled_seconds_retired, 0.0);
  EXPECT_LE(ra.modelled_seconds_retired, ra.modelled_seconds);
  (void)fc.get();

  // B is the only live request: with A (preempted, then cancelled) and C
  // retired exactly once each, the chip backlog must be exactly B's
  // modelled seconds. A double retraction of A would have eaten into it.
  b_started.get_future().wait();
  const FleetStats mid = fleet.stats();
  EXPECT_NEAR(mid.chips[0].backlog_seconds, modelled, 1e-12);

  release_b.set_value();
  (void)fb.get();
  fleet.wait_idle();

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.completed, 2);
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.preemptions, 1);
  EXPECT_EQ(stats.resumes, 0);  // cancelled while checkpointed
  EXPECT_NEAR(stats.chips[0].backlog_seconds, 0.0, 1e-12);
}

TEST(Fleet, AdmissionRejectsDeadlineInfeasibleOnEveryChip) {
  FleetOptions fo;
  fo.threads_per_chip = 1;
  Fleet fleet(fo);
  const nn::NetworkModel net = tiny_net();

  // Infeasible everywhere: the modelled chain seconds alone dwarf a
  // 1 ns deadline. With admission on, the future resolves kRejected at
  // submit; nothing reaches any server and nothing is charged.
  RequestOptions doomed;
  doomed.deadline_ms = 1e-6;
  doomed.admission = true;
  const InferenceResult r = fleet.submit(net, 1, doomed).get();
  EXPECT_EQ(r.status, RequestStatus::kRejected);
  EXPECT_EQ(r.completed_layers, 0);
  EXPECT_TRUE(r.run.layers.empty());
  EXPECT_GT(r.modelled_seconds, 0.0);  // the infeasible estimate, echoed

  FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.submitted, 0);  // never reached a chip server
  for (const FleetChipStats& chip : stats.chips) {
    EXPECT_EQ(chip.routed, 0);
    EXPECT_NEAR(chip.backlog_seconds, 0.0, 1e-12);
    EXPECT_NEAR(chip.dispatched_seconds, 0.0, 1e-12);
  }

  // The same deadline without admission executes the old path: picked up
  // past-deadline, resolved kCancelled, counted as expired.
  RequestOptions late = doomed;
  late.admission = false;
  const InferenceResult rl = fleet.submit(net, 1, late).get();
  EXPECT_EQ(rl.status, RequestStatus::kCancelled);
  EXPECT_TRUE(rl.deadline_expired);
  fleet.wait_idle();
  stats = fleet.stats();
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.deadline_expired, 1);
  EXPECT_EQ(stats.rejected, 1);

  // A feasible deadline passes admission and runs normally.
  RequestOptions fine;
  fine.deadline_ms = 600e3;
  fine.admission = true;
  const InferenceResult rf = fleet.submit(net, 1, fine).get();
  EXPECT_EQ(rf.status, RequestStatus::kOk);
  fleet.wait_idle();
  stats = fleet.stats();
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.completed, 1);
  for (const FleetChipStats& chip : stats.chips)
    EXPECT_NEAR(chip.backlog_seconds, 0.0, 1e-12);
}

TEST(Fleet, HonorsPerRequestArrayOverride) {
  Fleet fleet{FleetOptions{}};
  RequestOptions ro;
  dataflow::ArrayShape pinned;
  pinned.num_pes = 144;
  pinned.clock_hz = 350e6;
  ro.array = pinned;
  const InferenceResult r = fleet.submit(tiny_net(), 1, ro).get();
  ASSERT_EQ(r.status, RequestStatus::kOk);
  for (const auto& layer : r.run.layers) {
    EXPECT_EQ(layer.run.plan.array.num_pes, 144);
    EXPECT_EQ(layer.run.plan.array.clock_hz, 350e6);
  }
}

}  // namespace
}  // namespace chainnn::serve
