// Router: layer-geometry resolution matches NetworkRunner, modelled
// request seconds equal the plan closed forms, and earliest-finish-time
// placement over per-chip backlogs.
#include <gtest/gtest.h>

#include <memory>

#include "chain/network_runner.hpp"
#include "common/rng.hpp"
#include "serve/router.hpp"

namespace chainnn::serve {
namespace {

nn::NetworkModel pooled_net() {
  nn::NetworkModel net;
  net.name = "pooled";
  nn::ConvLayerParams l1;
  l1.name = "c1";
  l1.in_channels = 2;
  l1.out_channels = 4;
  l1.in_height = l1.in_width = 16;
  l1.kernel = 3;
  l1.pad = 1;
  l1.validate();
  nn::ConvLayerParams l2;
  l2.name = "c2";
  l2.in_channels = 4;
  l2.out_channels = 2;
  l2.in_height = l2.in_width = 8;  // nominal; resolution must recompute
  l2.kernel = 3;
  l2.pad = 1;
  l2.validate();
  net.conv_layers = {l1, l2};
  return net;
}

std::vector<chain::InterLayerOp> pool_after_first() {
  chain::InterLayerOp op;
  op.pool = true;
  op.pool_params = {2, 2, 0};
  return {op};
}

TEST(Router, ResolvedLayersMatchTheExecutedNetwork) {
  const nn::NetworkModel net = pooled_net();
  const auto inter = pool_after_first();
  const std::int64_t batch = 3;

  const std::vector<nn::ConvLayerParams> resolved =
      resolve_network_layers(net, batch, 16, 16, inter);
  ASSERT_EQ(resolved.size(), 2u);
  EXPECT_EQ(resolved[0].in_height, 16);
  EXPECT_EQ(resolved[1].in_height, 8);  // 16 -> conv(pad 1) 16 -> pool 8
  EXPECT_EQ(resolved[1].in_width, 8);
  EXPECT_EQ(resolved[0].batch, batch);

  // Cross-check against what NetworkRunner actually executed.
  chain::AcceleratorConfig cfg;
  cfg.exec_mode = chain::ExecMode::kAnalytical;
  chain::ChainAccelerator acc(cfg);
  const auto energy = energy::EnergyModel::paper_calibrated();
  chain::NetworkRunner runner(acc, energy);
  Tensor<std::int16_t> input(Shape{batch, 2, 16, 16});
  Rng rng(5);
  input.fill_random(rng, -64, 64);
  chain::NetworkRunOptions ro;
  ro.inter_layer = inter;
  const chain::NetworkRunResult run = runner.run(net, input, ro);
  ASSERT_EQ(run.layers.size(), resolved.size());
  for (std::size_t i = 0; i < resolved.size(); ++i)
    EXPECT_TRUE(resolved[i] == run.layers[i].layer)
        << "layer " << i << " geometry drifted from NetworkRunner";
}

TEST(Router, ModelledSecondsEqualPlanClosedForms) {
  auto cache = std::make_shared<PlanCache>();
  Router router(default_fleet_chips(), cache);
  const nn::NetworkModel net = pooled_net();
  const std::int64_t batch = 2;

  for (std::size_t c = 0; c < router.chips().size(); ++c) {
    const ChipSpec& chip = router.chips()[c];
    std::int64_t expect_cycles = 0;
    for (const nn::ConvLayerParams& layer :
         resolve_network_layers(net, batch, 16, 16, {})) {
      const auto plan = dataflow::plan_layer(layer, chip.array, chip.memory);
      expect_cycles += plan.cycles_per_batch(batch);
    }
    EXPECT_EQ(
        router.modelled_request_cycles(c, net, batch, 16, 16, {}).total(),
        expect_cycles)
        << chip.name;
    EXPECT_DOUBLE_EQ(
        router.modelled_request_seconds(c, net, batch, 16, 16, {}),
        static_cast<double>(expect_cycles) / chip.array.clock_hz)
        << chip.name;
  }
  // Sizing went through the shared cache.
  EXPECT_GT(cache->stats().lookups(), 0u);
}

TEST(Router, SharedPlanEstimateHonorsCallersNonKeyArrayFields) {
  // dual_channel and pipeline_stages shape the cycle closed forms but
  // sit outside PlanKey, so two arrays differing only there share one
  // cache entry. Costing through the shared entry must still use the
  // caller's values, not whichever array populated the entry first.
  PlanCache cache;
  nn::ConvLayerParams layer;
  layer.in_channels = 2;
  layer.out_channels = 3;
  layer.in_height = layer.in_width = 12;
  layer.kernel = 3;
  layer.pad = 1;
  layer.validate();
  const mem::HierarchyConfig memory;

  dataflow::ArrayShape first;  // populates the entry
  dataflow::ArrayShape second = first;
  second.pipeline_stages = first.pipeline_stages + 4;
  second.dual_channel = false;
  const std::int64_t batch = 2;

  const auto shared = cache.shared_plan_for(layer, first, memory);
  const auto cached_again = cache.shared_plan_for(layer, second, memory);
  EXPECT_EQ(shared.get(), cached_again.get());  // one entry, no copy
  EXPECT_EQ(cache.stats().hits, 1u);

  const auto direct = dataflow::plan_layer(layer, second, memory);
  EXPECT_EQ(dataflow::estimate_request_cycles(*shared, second, batch).total(),
            direct.cycles_per_batch(batch));
  // And the one-argument form still matches the plan's own array.
  EXPECT_EQ(dataflow::estimate_request_cycles(direct, batch).total(),
            direct.cycles_per_batch(batch));
}

TEST(Router, RoutesToEarliestModelledFinish) {
  auto cache = std::make_shared<PlanCache>();
  Router router(default_fleet_chips(), cache);
  const nn::NetworkModel net = pooled_net();

  // Empty fleet: the first request lands on the chip with the smallest
  // bare modelled time.
  const RouteDecision first = router.route(net, 1, 16, 16, {});
  double best = router.modelled_request_seconds(0, net, 1, 16, 16, {});
  std::size_t best_chip = 0;
  for (std::size_t c = 1; c < router.chips().size(); ++c) {
    const double s = router.modelled_request_seconds(c, net, 1, 16, 16, {});
    if (s < best) {
      best = s;
      best_chip = c;
    }
  }
  EXPECT_EQ(first.chip, best_chip);
  EXPECT_DOUBLE_EQ(first.request_seconds, best);
  EXPECT_DOUBLE_EQ(first.backlog_seconds, 0.0);

  // Pile modelled backlog onto that chip: the next identical request
  // must be placed elsewhere once the backlog outweighs the per-chip
  // modelled-time gap.
  RouteDecision loaded = first;
  loaded.request_seconds = 1.0;  // a second of modelled work
  router.dispatch(loaded);
  const RouteDecision second = router.route(net, 1, 16, 16, {});
  EXPECT_NE(second.chip, first.chip);

  // Retiring the backlog restores the original placement.
  router.complete(loaded.chip, loaded.request_seconds);
  const RouteDecision third = router.route(net, 1, 16, 16, {});
  EXPECT_EQ(third.chip, first.chip);
}

TEST(Router, DispatchAndCompleteKeepCounters) {
  auto cache = std::make_shared<PlanCache>();
  Router router(default_fleet_chips(), cache);
  const nn::NetworkModel net = pooled_net();

  const RouteDecision d = router.route(net, 1, 16, 16, {});
  router.dispatch(d);
  router.dispatch(d);
  EXPECT_EQ(router.routed_counts()[d.chip], 2);
  EXPECT_DOUBLE_EQ(router.backlog_seconds()[d.chip], 2 * d.request_seconds);
  EXPECT_DOUBLE_EQ(router.dispatched_seconds()[d.chip],
                   2 * d.request_seconds);

  router.complete(d.chip, d.request_seconds);
  EXPECT_DOUBLE_EQ(router.backlog_seconds()[d.chip], d.request_seconds);
  // Cumulative busy time never decreases.
  EXPECT_DOUBLE_EQ(router.dispatched_seconds()[d.chip],
                   2 * d.request_seconds);
}

TEST(Router, RouteAndDispatchCommitsAtomically) {
  auto cache = std::make_shared<PlanCache>();
  Router router(default_fleet_chips(), cache);
  const nn::NetworkModel net = pooled_net();

  // The decision and its backlog charge commit together, so the second
  // call must already see the first one's backlog.
  const RouteDecision d0 = router.route_and_dispatch(net, 1, 16, 16, {});
  const RouteDecision d1 = router.route_and_dispatch(net, 1, 16, 16, {});
  EXPECT_DOUBLE_EQ(d0.backlog_seconds, 0.0);
  EXPECT_DOUBLE_EQ(d1.backlog_seconds,
                   d0.chip == d1.chip ? d0.request_seconds : 0.0);

  std::int64_t routed_total = 0;
  double backlog_total = 0.0;
  for (std::size_t c = 0; c < router.chips().size(); ++c) {
    routed_total += router.routed_counts()[c];
    backlog_total += router.backlog_seconds()[c];
  }
  EXPECT_EQ(routed_total, 2);
  EXPECT_DOUBLE_EQ(backlog_total, d0.request_seconds + d1.request_seconds);
}

TEST(Router, ArrayOverrideStillGetsBacklogAwarePlacement) {
  auto cache = std::make_shared<PlanCache>();
  Router router(default_fleet_chips(), cache);
  const nn::NetworkModel net = pooled_net();
  dataflow::ArrayShape pinned;
  pinned.num_pes = 144;

  // With a pinned array every chip models the same request seconds, so
  // the decision is purely backlog-driven.
  const RouteDecision d0 = router.route(net, 1, 16, 16, {}, pinned);
  for (std::size_t c = 0; c < router.chips().size(); ++c)
    EXPECT_DOUBLE_EQ(
        router.modelled_request_seconds(c, net, 1, 16, 16, {}, pinned),
        d0.request_seconds);
  router.dispatch(d0);
  const RouteDecision d1 = router.route(net, 1, 16, 16, {}, pinned);
  EXPECT_NE(d1.chip, d0.chip);
}

}  // namespace
}  // namespace chainnn::serve
