#include "report/comparison.hpp"

#include <gtest/gtest.h>

namespace chainnn::report {
namespace {

TEST(Comparison, RendersPaperAndMeasured) {
  ComparisonTable t("Fig. 9", "time (ms)");
  t.add("conv1", 159.30, 160.0);
  const std::string out = t.render();
  EXPECT_NE(out.find("conv1"), std::string::npos);
  EXPECT_NE(out.find("159.30"), std::string::npos);
  EXPECT_NE(out.find("160.00"), std::string::npos);
  EXPECT_NE(out.find("1.004"), std::string::npos);
}

TEST(Comparison, MeasuredOnlyRowShowsDash) {
  ComparisonTable t("x", "v");
  t.add_measured_only("extra", 5.0);
  const std::string out = t.render();
  EXPECT_NE(out.find("extra"), std::string::npos);
  EXPECT_NE(out.find(" - "), std::string::npos);
}

TEST(Comparison, WorstRelativeError) {
  ComparisonTable t("x", "v");
  t.add("a", 100.0, 110.0);   // +10%
  t.add("b", 100.0, 95.0);    // -5%
  t.add_measured_only("c", 1e9);  // ignored
  EXPECT_NEAR(t.worst_relative_error(), 0.10, 1e-12);
}

TEST(Comparison, EmptyTableZeroError) {
  ComparisonTable t("x", "v");
  EXPECT_DOUBLE_EQ(t.worst_relative_error(), 0.0);
}

}  // namespace
}  // namespace chainnn::report
