#include "report/paper_constants.hpp"

#include <gtest/gtest.h>

namespace chainnn::report {
namespace {

TEST(PaperConstants, PeakGopsConsistentWithPesAndClock) {
  EXPECT_NEAR(2.0 * kNumPes * kClockHz / 1e9, kPeakGops, 0.1);
}

TEST(PaperConstants, ClockMatchesCriticalPath) {
  EXPECT_NEAR(1e9 / kCriticalPathNs / 1e6, kClockHz / 1e6, 1.0);
}

TEST(PaperConstants, EfficiencyConsistentWithPowerAndThroughput) {
  EXPECT_NEAR(kPeakGops / kPowerW, kEfficiencyGopsPerW, 1.0);
}

TEST(PaperConstants, OnChipMemoryAddsUp) {
  EXPECT_DOUBLE_EQ(kIMemoryKiB + kKMemoryKiB + kOMemoryKiB, kOnChipKiB);
}

TEST(PaperConstants, KmemoryPerPeIs256Words) {
  // 295KB over 576 PEs = 512B = 256 16-bit words per PE (§V.B).
  EXPECT_NEAR(kKMemoryKiB * 1024 / kNumPes / 2.0,
              static_cast<double>(kKernelWordsPerPe), 7.0);
}

TEST(PaperConstants, Table2ActivePesConsistent) {
  for (const auto& row : kTable2) {
    EXPECT_EQ(row.pes_per_primitive, row.kernel * row.kernel);
    EXPECT_EQ(row.active_pes, row.active_primitives * row.pes_per_primitive);
    EXPECT_EQ(row.active_primitives, kNumPes / row.pes_per_primitive);
  }
}

TEST(PaperConstants, Fig9KernelLoadTimesMatchWeightCountsAt1WordPerCycle) {
  // weight counts: conv1 34848, conv2 307200, conv3 884736, conv4 663552,
  // conv5 442368 — at 700 MHz, 1 word/cycle.
  const double counts[5] = {34848, 307200, 884736, 663552, 442368};
  for (int i = 0; i < 5; ++i) {
    const double ms = counts[i] / kClockHz * 1e3;
    EXPECT_NEAR(ms, kFig9[i].kernel_load_ms, 0.05) << "conv" << i + 1;
  }
}

TEST(PaperConstants, Fig9TotalsAndFps) {
  double conv_total = 0.0, load_total = 0.0;
  for (const auto& row : kFig9) {
    conv_total += row.conv_ms;
    load_total += row.kernel_load_ms;
  }
  EXPECT_NEAR(load_total, kKernelLoadTotalMs, 0.02);
  // fps at batch 128 from the published layer times:
  const double fps = 128.0 / ((conv_total + load_total) / 1e3);
  EXPECT_NEAR(fps, kFpsBatch128, 3.0);
  // Note: the printed batch time 349.92ms is inconsistent with the
  // printed per-layer times (which sum to 390.1ms); we pin both values
  // and discuss the discrepancy in EXPERIMENTS.md.
  EXPECT_NEAR(conv_total, 390.1, 0.1);
}

TEST(PaperConstants, Table4TotalsMatchRows) {
  double dram = 0, imem = 0, kmem = 0, omem = 0;
  for (const auto& row : kTable4) {
    dram += row.dram_mb;
    imem += row.imem_mb;
    kmem += row.kmem_mb;
    omem += row.omem_mb;
  }
  EXPECT_NEAR(dram, kTable4TotalDram, 0.01);
  EXPECT_NEAR(imem, kTable4TotalImem, 0.11);  // paper rounds rows
  EXPECT_NEAR(kmem, kTable4TotalKmem, 0.11);
  EXPECT_NEAR(omem, kTable4TotalOmem, 0.11);
}

TEST(PaperConstants, Fig10ComponentsSumToTotalPower) {
  const double sum =
      kChainPowerMw + kKmemPowerMw + kImemPowerMw + kOmemPowerMw;
  EXPECT_NEAR(sum, kPowerW * 1e3, 0.1);
}

TEST(PaperConstants, EfficiencyGainsVsBaselines) {
  // Abstract: "2.5 to 4.1x times better than the state-of-the-art".
  const double vs_dadiannao =
      kEfficiencyGopsPerW / kDaDianNao.efficiency_gops_per_w;
  const double vs_eyeriss_scaled =
      kEfficiencyGopsPerW / kEyerissScaledTo28nmGopsPerW;
  EXPECT_NEAR(vs_dadiannao, kMaxEfficiencyGain, 0.1);
  EXPECT_NEAR(vs_eyeriss_scaled, kMinEfficiencyGain, 0.1);
}

TEST(PaperConstants, GateCountPerPe) {
  // 6.51k/PE x 576 = 3749.8k; the remaining ~1.2k is shared control.
  EXPECT_NEAR(kGatesPerPeK * kNumPes, kGateCountK, 2.0);
}

}  // namespace
}  // namespace chainnn::report
