#include "energy/timing_model.hpp"

#include <gtest/gtest.h>

namespace chainnn::energy {
namespace {

TEST(TimingModel, ThreeStagesGivePaperCriticalPath) {
  // §V.B: "pipelined into three stages so that the critical path delay is
  // reduced to 1.428ns (700MHz)".
  const TimingModel t;
  EXPECT_NEAR(t.critical_path_s(3) * 1e9, 1.428, 1e-6);
  EXPECT_NEAR(t.max_clock_hz(3) / 1e6, 700.3, 0.5);
}

TEST(TimingModel, PeakThroughputAt3Stages) {
  const TimingModel t;
  EXPECT_NEAR(t.peak_ops_per_s(3, 576) / 1e9, 806.4, 1.0);
}

TEST(TimingModel, DeeperPipelineShortensPath) {
  const TimingModel t;
  EXPECT_GT(t.critical_path_s(1), t.critical_path_s(2));
  EXPECT_GT(t.critical_path_s(2), t.critical_path_s(3));
  EXPECT_GT(t.critical_path_s(3), t.critical_path_s(6));
}

TEST(TimingModel, RegisterOverheadBoundsFrequency) {
  // Even infinite pipelining cannot beat the register overhead.
  const TimingModel t;
  const double f_limit = 1.0 / t.register_overhead_s;
  EXPECT_LT(t.max_clock_hz(64), f_limit);
  EXPECT_GT(t.max_clock_hz(64), 0.5 * f_limit);
}

TEST(TimingModel, DiminishingReturns) {
  // Speedup from 1->2 stages exceeds speedup from 4->5 stages.
  const TimingModel t;
  const double gain_12 = t.max_clock_hz(2) / t.max_clock_hz(1);
  const double gain_45 = t.max_clock_hz(5) / t.max_clock_hz(4);
  EXPECT_GT(gain_12, gain_45);
}

TEST(TimingModel, EnergyScaleAnchoredAt3Stages) {
  const TimingModel t;
  EXPECT_DOUBLE_EQ(t.pe_energy_scale(3), 1.0);
  EXPECT_GT(t.pe_energy_scale(5), 1.0);
  EXPECT_LT(t.pe_energy_scale(1), 1.0);
}

TEST(TimingModel, InvalidStagesRejected) {
  const TimingModel t;
  EXPECT_THROW((void)t.critical_path_s(0), std::logic_error);
  EXPECT_THROW((void)t.pe_energy_scale(0), std::logic_error);
}

class StageSweep : public ::testing::TestWithParam<int> {};

TEST_P(StageSweep, ThroughputMonotoneInStages) {
  const TimingModel t;
  const int s = GetParam();
  EXPECT_GT(t.peak_ops_per_s(s + 1, 576), t.peak_ops_per_s(s, 576));
}

INSTANTIATE_TEST_SUITE_P(Stages, StageSweep, ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace chainnn::energy
