#include "energy/area_model.hpp"

#include <gtest/gtest.h>

#include "report/paper_constants.hpp"

namespace chainnn::energy {
namespace {

TEST(AreaModel, ReproducesPaperGateCount) {
  // Table V: 3751k gates for the 576-PE instantiation at 6.51k/PE.
  const AreaModel m;
  EXPECT_NEAR(m.total_gates(576) / 1e3, report::kGateCountK, 1.0);
}

TEST(AreaModel, ScalesLinearlyWithPes) {
  const AreaModel m;
  const double g1 = m.total_gates(576);
  const double g2 = m.total_gates(1152);
  EXPECT_NEAR((g2 - m.control_overhead_gates) /
                  (g1 - m.control_overhead_gates),
              2.0, 1e-9);
}

TEST(AreaModel, AreaEfficiencyRatioVsEyeriss) {
  // §V.D: "these contribute to the 1.7 times area efficiency".
  const double ratio =
      area_efficiency_ratio(report::kGatesPerPeK, report::kEyerissGatesPerPeK);
  EXPECT_NEAR(ratio, report::kAreaEfficiencyRatio, 0.01);
}

TEST(TechScaling, EyerissTo28nmMatchesPaperFootnote) {
  // Table V footnote: 245.6 GOPS/W at 65nm -> expected 570.1 at 28nm.
  const double scaled = scale_efficiency_to_node(245.6, 65.0, 28.0);
  EXPECT_NEAR(scaled, report::kEyerissScaledTo28nmGopsPerW, 1.0);
}

TEST(TechScaling, IdentityAtSameNode) {
  EXPECT_DOUBLE_EQ(scale_efficiency_to_node(100.0, 28.0, 28.0), 100.0);
}

TEST(TechScaling, RejectsBadNodes) {
  EXPECT_THROW((void)scale_efficiency_to_node(1.0, 0.0, 28.0),
               std::logic_error);
}

}  // namespace
}  // namespace chainnn::energy
