#include "energy/energy_model.hpp"

#include <gtest/gtest.h>

#include "nn/models.hpp"
#include "report/paper_constants.hpp"

namespace chainnn::energy {
namespace {

TEST(EnergyModel, CalibrationReproducesFig10Exactly) {
  const EnergyModel model = EnergyModel::paper_calibrated();
  const PowerBreakdown p =
      model.power(paper_calibration_rates(), 700e6, 576);
  EXPECT_NEAR(p.chain_w * 1e3, report::kChainPowerMw, 0.01);
  EXPECT_NEAR(p.kmem_w * 1e3, report::kKmemPowerMw, 0.01);
  EXPECT_NEAR(p.imem_w * 1e3, report::kImemPowerMw, 0.01);
  EXPECT_NEAR(p.omem_w * 1e3, report::kOmemPowerMw, 0.01);
  // Total 567.5 mW (§V.C).
  EXPECT_NEAR(p.total() * 1e3, 567.5, 0.5);
}

TEST(EnergyModel, CoreVsHierarchySplitMatchesPaper) {
  const EnergyModel model = EnergyModel::paper_calibrated();
  const PowerBreakdown p =
      model.power(paper_calibration_rates(), 700e6, 576);
  // §V.C: "around 90% of the power consumption is from the 1D chain
  // architecture including kMemory while only 10.55% is cost by the
  // memory hierarchy".
  EXPECT_NEAR(p.core_only() / p.total(), 0.893, 0.01);
  EXPECT_NEAR(p.memory_hierarchy() / p.total(), 0.107, 0.01);
}

TEST(EnergyModel, EfficiencyMatchesPaperHeadline) {
  const EnergyModel model = EnergyModel::paper_calibrated();
  const PowerBreakdown p =
      model.power(paper_calibration_rates(), 700e6, 576);
  const double peak_ops = 2.0 * 576 * 700e6;
  EXPECT_NEAR(efficiency_gops_per_w(peak_ops, p.total()),
              report::kEfficiencyGopsPerW, 15.0);
  EXPECT_NEAR(efficiency_gops_per_w(peak_ops, p.chain_w),
              report::kCoreOnlyGopsPerW, 25.0);
}

TEST(EnergyModel, PowerScalesWithClock) {
  const EnergyModel model = EnergyModel::paper_calibrated();
  const ActivityRates r = paper_calibration_rates();
  const PowerBreakdown p700 = model.power(r, 700e6, 576);
  const PowerBreakdown p350 = model.power(r, 350e6, 576);
  // Dynamic power halves; leakage does not.
  EXPECT_LT(p350.total(), p700.total());
  EXPECT_GT(p350.total(), 0.45 * p700.total());
}

TEST(EnergyModel, PowerScalesWithChainSize) {
  const EnergyModel model = EnergyModel::paper_calibrated();
  ActivityRates r = paper_calibration_rates();
  const PowerBreakdown p576 = model.power(r, 700e6, 576);
  // Same per-PE activity on a double-size chain: chain power ~doubles.
  r.kmem_accesses_per_cycle *= 2.0;
  const PowerBreakdown p1152 = model.power(r, 700e6, 1152);
  EXPECT_NEAR(p1152.chain_w / p576.chain_w, 2.0, 0.01);
}

TEST(EnergyModel, IdlePEsCostLess) {
  const EnergyModel model = EnergyModel::paper_calibrated();
  ActivityRates busy = paper_calibration_rates();
  ActivityRates idle = busy;
  idle.active_pe_fraction = 0.5;
  const double pb = model.power(busy, 700e6, 576).chain_w;
  const double pi = model.power(idle, 700e6, 576).chain_w;
  EXPECT_LT(pi, pb);
  EXPECT_GT(pi, 0.5 * pb);  // idle PEs still leak/clock at 10%
}

TEST(EnergyModel, EnergyIntegratesPowerOverCycles) {
  const EnergyModel model = EnergyModel::paper_calibrated();
  const ActivityRates r = paper_calibration_rates();
  const double p = model.power(r, 700e6, 576).total();
  const double e = model.energy_j(r, 700e6, 576, 700000000ULL);
  EXPECT_NEAR(e, p, 1e-9);  // 1 second worth of cycles
}

TEST(EnergyModel, RatesFromPlanReasonableForAlexNetConv3) {
  const auto plan = dataflow::plan_layer(nn::alexnet().conv_layers[2],
                                         dataflow::ArrayShape{});
  const ActivityRates r = rates_from_plan(plan);
  EXPECT_DOUBLE_EQ(r.active_pe_fraction, 1.0);  // 576/576 for K=3
  // kMemory ~ paper's 2.2% per PE x 576 = ~12.8 accesses/cycle.
  EXPECT_NEAR(r.kmem_accesses_per_cycle, 0.022 * 576, 3.0);
  // iMemory: close to 2 words/cycle in steady state.
  EXPECT_GT(r.imem_accesses_per_cycle, 1.0);
  EXPECT_LT(r.imem_accesses_per_cycle, 4.1);
}

TEST(Efficiency, GopsPerWatt) {
  EXPECT_DOUBLE_EQ(efficiency_gops_per_w(806.4e9, 0.5675),
                   806.4 / 0.5675);
  EXPECT_DOUBLE_EQ(efficiency_gops_per_w(1.0, 0.0), 0.0);
}

}  // namespace
}  // namespace chainnn::energy
