// Json: strict parsing (every malformed body the gateway must answer
// 400 for, not guess at), number round-tripping (splicing a section
// into BENCH_serve.json must not rewrite untouched values), and
// insertion-ordered objects.
#include <gtest/gtest.h>

#include <string>

#include "net/json.hpp"

namespace chainnn::net {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null")->is_null());
  EXPECT_TRUE(Json::parse("true")->as_bool());
  EXPECT_FALSE(Json::parse("false")->as_bool());
  EXPECT_EQ(Json::parse("42")->as_int(), 42);
  EXPECT_EQ(Json::parse("-7")->as_int(), -7);
  EXPECT_DOUBLE_EQ(Json::parse("2.5")->as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Json::parse("1e3")->as_double(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"")->as_string(), "hi");
}

TEST(Json, IntegerLexemesStayIntegral) {
  EXPECT_TRUE(Json::parse("42")->is_integer());
  EXPECT_FALSE(Json::parse("42.0")->is_integer());
  EXPECT_FALSE(Json::parse("4e2")->is_integer());
  // Out-of-int64 integer lexemes degrade to double instead of failing.
  const auto huge = Json::parse("123456789012345678901234567890");
  ASSERT_TRUE(huge.has_value());
  EXPECT_TRUE(huge->is_number());
  EXPECT_FALSE(huge->is_integer());
}

TEST(Json, ObjectsPreserveInsertionOrderAndRoundTrip) {
  const std::string doc =
      "{\"z\": 1, \"a\": [true, null, \"x\"], \"m\": {\"k\": 2.5}}";
  const auto parsed = Json::parse(doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dump(), doc);  // dump style matches the bench emitters
  ASSERT_NE(parsed->find("a"), nullptr);
  EXPECT_EQ(parsed->find("a")->as_array().size(), 3u);
  EXPECT_EQ(parsed->find("missing"), nullptr);
}

TEST(Json, SetReplacesInPlaceAndAppendsAtEnd) {
  auto doc = *Json::parse("{\"a\": 1, \"b\": 2}");
  doc.set("a", Json(9));
  doc.set("c", Json("new"));
  EXPECT_EQ(doc.dump(), "{\"a\": 9, \"b\": 2, \"c\": \"new\"}");
}

TEST(Json, DoublesUseShortestRoundTrip) {
  // A parse-edit-dump cycle over a bench JSON must not churn numbers.
  for (const char* lexeme : {"0.1", "1e-3", "806.4", "0.25", "3.5e8"}) {
    const auto v = Json::parse(lexeme);
    ASSERT_TRUE(v.has_value()) << lexeme;
    const auto reparsed = Json::parse(v->dump());
    ASSERT_TRUE(reparsed.has_value()) << lexeme;
    EXPECT_EQ(reparsed->as_double(), v->as_double()) << lexeme;
  }
}

TEST(Json, StringEscapesRoundTrip) {
  const auto v = Json::parse("\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "a\"b\\c\n\tA\xC3\xA9");
  // Dump re-escapes controls and quotes; the result parses back equal.
  EXPECT_EQ(Json::parse(v->dump())->as_string(), v->as_string());
}

TEST(Json, RejectsMalformedDocuments) {
  std::string error;
  for (const char* doc : {
           "",             // empty
           "{",            // unterminated object
           "[1, 2",        // unterminated array
           "\"abc",        // unterminated string
           "{\"a\" 1}",    // missing colon
           "{\"a\": 1,}",  // trailing comma
           "[1 2]",        // missing comma
           "01",           // leading zero
           "1.",           // digits required after '.'
           "1e",           // digits required in exponent
           "+1",           // no leading plus in JSON
           "nul",          // truncated literal
           "\"\\x41\"",    // invalid escape
           "\"\t\"",       // unescaped control character
           "{} {}",        // trailing garbage
           "1 2",          // trailing garbage after scalar
       }) {
    EXPECT_FALSE(Json::parse(doc, &error).has_value()) << doc;
    EXPECT_FALSE(error.empty()) << doc;
  }
}

TEST(Json, DepthLimitStopsHostileNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  EXPECT_FALSE(Json::parse(deep).has_value());
  // ... while reasonable nesting is fine.
  EXPECT_TRUE(Json::parse("[[[[[[[[[[1]]]]]]]]]]").has_value());
}

TEST(Json, JsonNumberHandlesNonFinite) {
  EXPECT_EQ(json_number(1.0 / 0.0), "0");  // JSON has no Inf
  EXPECT_EQ(json_number(0.25), "0.25");
}

}  // namespace
}  // namespace chainnn::net
