// Gateway integration over real sockets: routing/validation at the
// front door, wire responses bit-identical to direct Fleet::submit
// (the acceptance criterion of the HTTP layer — serialization must not
// perturb execution), a /metrics scrape that agrees with FleetStats,
// and sanitizer-clean concurrent connections.
#include <gtest/gtest.h>

#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "net/gateway.hpp"
#include "net/http_client.hpp"
#include "net/json.hpp"
#include "serve/sweep_driver.hpp"

namespace chainnn::net {
namespace {

constexpr std::int64_t kScale = 2;  // channel-reduced proxies keep it quick

GatewayOptions quick_gateway_options() {
  GatewayOptions go;
  go.model_scale = kScale;
  return go;
}

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

// First sample value for a metric line starting with `prefix`
// (e.g. "chainnn_fleet_completed_total " or
// "chainnn_chip_routed_total{chip=\"pe288\"}"). Returns NaN when absent.
double metric_value(const std::string& text, const std::string& prefix) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line = text.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? text.size() : eol + 1;
    if (line.rfind(prefix, 0) != 0) continue;
    return std::stod(line.substr(line.rfind(' ') + 1));
  }
  return std::nan("");
}

TEST(Gateway, HealthzRoutingAndMethodDiscipline) {
  serve::Fleet fleet;
  Gateway gateway(fleet, quick_gateway_options());
  HttpClient client("127.0.0.1", gateway.port());

  HttpResponse resp;
  ASSERT_TRUE(client.get("/healthz", &resp)) << client.error();
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "{\"status\": \"ok\"}");

  ASSERT_TRUE(client.get("/no/such/endpoint", &resp)) << client.error();
  EXPECT_EQ(resp.status, 404);

  ASSERT_TRUE(client.post_json("/healthz", "{}", &resp)) << client.error();
  EXPECT_EQ(resp.status, 405);
  ASSERT_TRUE(client.get("/v1/submit", &resp)) << client.error();
  EXPECT_EQ(resp.status, 405);

  // Keep-alive: all four exchanges rode one connection.
  EXPECT_EQ(gateway.stats().http.connections_accepted, 1);
  EXPECT_EQ(gateway.stats().http.requests, 4);
}

TEST(Gateway, MalformedSubmitBodiesAre400NotCrashes) {
  serve::Fleet fleet;
  Gateway gateway(fleet, quick_gateway_options());
  HttpClient client("127.0.0.1", gateway.port());

  const char* bad_bodies[] = {
      "",                                      // empty
      "not json",                              // parse error
      "[1, 2]",                                // not an object
      "{}",                                    // missing model
      "{\"model\": 3}",                        // model not a string
      "{\"model\": \"resnet152\"}",            // unknown model
      "{\"model\": \"lenet\", \"deadline\": 5}",        // typo'd key
      "{\"model\": \"lenet\", \"batch\": 0}",           // batch < 1
      "{\"model\": \"lenet\", \"batch\": 1e9}",         // batch not integral
      "{\"model\": \"lenet\", \"priority\": \"high\"}",  // wrong type
      "{\"model\": \"lenet\", \"exec_mode\": \"quantum\"}",
      "{\"model\": \"lenet\", \"array\": {\"num_pes\": 0}}",
      "{\"model\": \"lenet\", \"array\": {\"pes\": 4}}",  // unknown array key
  };
  for (const char* body : bad_bodies) {
    HttpResponse resp;
    ASSERT_TRUE(client.post_json("/v1/submit", body, &resp))
        << body << ": " << client.error();
    EXPECT_EQ(resp.status, 400) << body << " -> " << resp.body;
    const auto parsed = Json::parse(resp.body);
    ASSERT_TRUE(parsed.has_value()) << body;
    EXPECT_NE(parsed->find("error"), nullptr) << body;
  }
  const GatewayStats stats = gateway.stats();
  EXPECT_EQ(stats.bad_requests,
            static_cast<std::int64_t>(std::size(bad_bodies)));
  EXPECT_EQ(stats.submits_ok, 0);
  // Nothing malformed ever reached the fleet.
  EXPECT_EQ(fleet.stats().submitted, 0);
}

TEST(Gateway, RawProtocolGarbageIs400AndConnectionCloses) {
  serve::Fleet fleet;
  Gateway gateway(fleet, quick_gateway_options());
  HttpClient client("127.0.0.1", gateway.port());

  // serialize_request will happily emit a malformed request line for a
  // method with a space — the server-side parser must answer 400.
  HttpRequest req;
  req.method = "TWO TOKENS";
  req.target = "/healthz";
  HttpResponse resp;
  ASSERT_TRUE(client.request(req, &resp)) << client.error();
  EXPECT_EQ(resp.status, 400);
  EXPECT_FALSE(client.connected());  // server said Connection: close
  EXPECT_EQ(gateway.stats().http.parse_errors, 1);

  // The client transparently reconnects and the server still serves.
  ASSERT_TRUE(client.get("/healthz", &resp)) << client.error();
  EXPECT_EQ(resp.status, 200);
}

TEST(Gateway, SubmitIsBitIdenticalToDirectFleetSubmit) {
  // Twin fleets, identical options: the gateway drives one over HTTP,
  // the test drives the other directly. Sequential submission (each
  // response awaited before the next submit) makes routing — and
  // therefore per-server request ids and generated inputs — identical,
  // so cycles and the activations digest must match bit for bit.
  serve::Fleet wire_fleet;
  serve::Fleet direct_fleet;
  Gateway gateway(wire_fleet, quick_gateway_options());
  HttpClient client("127.0.0.1", gateway.port());

  struct Case {
    const char* body;
    const char* model;
    std::int64_t batch;
    std::int32_t priority;
  };
  const Case cases[] = {
      {"{\"model\": \"lenet\"}", "lenet", 1, 0},
      {"{\"model\": \"lenet\", \"batch\": 2, \"priority\": 1}", "lenet", 2, 1},
      {"{\"model\": \"cifar10\", \"batch\": 1}", "cifar10", 1, 0},
      {"{\"model\": \"lenet\", \"exec_mode\": \"analytical\"}", "lenet", 1, 0},
  };

  for (const Case& c : cases) {
    HttpResponse resp;
    ASSERT_TRUE(client.post_json("/v1/submit", c.body, &resp))
        << c.body << ": " << client.error();
    ASSERT_EQ(resp.status, 200) << c.body << " -> " << resp.body;
    const auto wire = Json::parse(resp.body);
    ASSERT_TRUE(wire.has_value()) << resp.body;

    const nn::NetworkModel proxy =
        serve::channel_reduced_proxy(nn::model_by_name(c.model), kScale);
    serve::RequestOptions options;
    options.priority = c.priority;
    const serve::InferenceResult direct =
        direct_fleet.submit(proxy, c.batch, options).get();

    ASSERT_EQ(direct.status, serve::RequestStatus::kOk) << c.body;
    EXPECT_EQ(wire->find("status")->as_string(), "ok") << c.body;
    EXPECT_EQ(wire->find("chip")->as_string(), direct.chip) << c.body;
    EXPECT_EQ(wire->find("id")->as_int(), direct.request_id) << c.body;
    EXPECT_EQ(wire->find("cycles")->as_int(), run_cycles(direct.run))
        << c.body;
    EXPECT_EQ(wire->find("digest")->as_string(), hex16(run_digest(direct.run)))
        << c.body;
    EXPECT_EQ(wire->find("completed_layers")->as_int(),
              direct.completed_layers)
        << c.body;
    EXPECT_DOUBLE_EQ(wire->find("modelled_seconds")->as_double(),
                     direct.modelled_seconds)
        << c.body;
  }
}

TEST(Gateway, PastDeadlineSubmitResolvesCancelledOverTheWire) {
  serve::Fleet fleet;
  Gateway gateway(fleet, quick_gateway_options());
  HttpClient client("127.0.0.1", gateway.port());

  HttpResponse resp;
  ASSERT_TRUE(client.post_json(
      "/v1/submit", "{\"model\": \"lenet\", \"deadline_ms\": -1}", &resp))
      << client.error();
  ASSERT_EQ(resp.status, 200) << resp.body;  // resolved, not errored
  const auto wire = Json::parse(resp.body);
  ASSERT_TRUE(wire.has_value());
  EXPECT_EQ(wire->find("status")->as_string(), "cancelled");
  EXPECT_TRUE(wire->find("deadline_expired")->as_bool());
  EXPECT_FALSE(wire->find("deadline_missed")->as_bool());
  EXPECT_EQ(gateway.stats().submits_cancelled, 1);
}

TEST(Gateway, MetricsScrapeAgreesWithFleetStats) {
  serve::Fleet fleet;
  Gateway gateway(fleet, quick_gateway_options());
  HttpClient client("127.0.0.1", gateway.port());

  HttpResponse resp;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        client.post_json("/v1/submit", "{\"model\": \"lenet\"}", &resp))
        << client.error();
    ASSERT_EQ(resp.status, 200) << resp.body;
  }

  ASSERT_TRUE(client.get("/metrics", &resp)) << client.error();
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.content_type.rfind("text/plain", 0), 0u);
  const std::string& text = resp.body;

  const serve::FleetStats stats = fleet.stats();
  EXPECT_EQ(metric_value(text, "chainnn_fleet_submitted_total "),
            static_cast<double>(stats.submitted));
  EXPECT_EQ(metric_value(text, "chainnn_fleet_completed_total "),
            static_cast<double>(stats.completed));
  EXPECT_EQ(metric_value(text, "chainnn_fleet_cancelled_total "),
            static_cast<double>(stats.cancelled));
  EXPECT_EQ(metric_value(text, "chainnn_plan_cache_hits_total "),
            static_cast<double>(stats.plan_cache.hits));
  EXPECT_EQ(metric_value(text, "chainnn_plan_cache_misses_total "),
            static_cast<double>(stats.plan_cache.misses));
  double routed = 0.0;
  for (const auto& chip : stats.chips) {
    const double v = metric_value(
        text, "chainnn_chip_routed_total{chip=\"" + chip.name + "\"}");
    EXPECT_EQ(v, static_cast<double>(chip.routed)) << chip.name;
    routed += v;
  }
  EXPECT_EQ(routed, 3.0);
  // The gateway's own accounting: 3 ok submits, all on tier 0.
  EXPECT_EQ(metric_value(text, "chainnn_gateway_submits_total{outcome=\"ok\"}"),
            3.0);
  EXPECT_EQ(metric_value(
                text, "chainnn_gateway_request_latency_ms_count{tier=\"0\"}"),
            3.0);
  EXPECT_EQ(
      metric_value(
          text, "chainnn_gateway_request_latency_ms_bucket{tier=\"0\",le=\"+Inf\"}"),
      3.0);
  // Quantiles are present and ordered.
  const double p50 = metric_value(
      text, "chainnn_gateway_latency_quantile_ms{tier=\"0\",quantile=\"0.5\"}");
  const double p999 = metric_value(
      text,
      "chainnn_gateway_latency_quantile_ms{tier=\"0\",quantile=\"0.999\"}");
  EXPECT_GT(p50, 0.0);
  EXPECT_GE(p999, p50);
}

TEST(Gateway, ConnectionCapAnswers503) {
  serve::Fleet fleet;
  GatewayOptions go = quick_gateway_options();
  go.http.max_connections = 1;
  Gateway gateway(fleet, go);

  HttpClient first("127.0.0.1", gateway.port());
  HttpResponse resp;
  ASSERT_TRUE(first.get("/healthz", &resp)) << first.error();
  ASSERT_EQ(resp.status, 200);  // first connection is now held open

  HttpClient second("127.0.0.1", gateway.port());
  ASSERT_TRUE(second.get("/healthz", &resp)) << second.error();
  EXPECT_EQ(resp.status, 503);
  EXPECT_EQ(gateway.stats().http.connections_rejected, 1);

  // The held connection still works.
  ASSERT_TRUE(first.get("/healthz", &resp)) << first.error();
  EXPECT_EQ(resp.status, 200);
}

TEST(Gateway, ConcurrentConnectionsServeCleanly) {
  // Sanitizer target (runs under ASan/UBSan in sanitize.yml): several
  // client threads hammer submits and scrapes over their own keep-alive
  // connections; every exchange must succeed and the books must balance.
  serve::Fleet fleet;
  Gateway gateway(fleet, quick_gateway_options());

  constexpr int kClients = 6;
  constexpr int kRequestsEach = 3;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < kClients; ++t)
    threads.emplace_back([&gateway, &ok] {
      HttpClient client("127.0.0.1", gateway.port());
      for (int i = 0; i < kRequestsEach; ++i) {
        HttpResponse resp;
        if (!client.post_json("/v1/submit", "{\"model\": \"lenet\"}", &resp) ||
            resp.status != 200)
          return;
        if (!client.get("/metrics", &resp) || resp.status != 200) return;
        ++ok;
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients * kRequestsEach);

  const GatewayStats stats = gateway.stats();
  EXPECT_EQ(stats.submits_ok, kClients * kRequestsEach);
  EXPECT_EQ(stats.http.parse_errors, 0);
  EXPECT_EQ(stats.http.responses_5xx, 0);
  EXPECT_EQ(fleet.stats().completed, kClients * kRequestsEach);
  gateway.stop();  // explicit stop with threads recently active
}

}  // namespace
}  // namespace chainnn::net
