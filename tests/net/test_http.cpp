// HTTP message layer: a hostile or sloppy peer costs one 4xx and a
// closed connection — never a crash, never an unbounded buffer, never a
// half-parsed request acted upon. Also pins keep-alive defaults,
// pipelining and the serializers the client/server pair rides on.
#include <gtest/gtest.h>

#include <string>

#include "net/http.hpp"

namespace chainnn::net {
namespace {

HttpParser::Status feed_one(const std::string& wire, HttpRequest* out,
                            HttpParser* parser) {
  parser->feed(wire);
  return parser->next(out);
}

TEST(HttpParser, ParsesSimpleGet) {
  HttpParser parser;
  HttpRequest req;
  ASSERT_EQ(feed_one("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n", &req,
                     &parser),
            HttpParser::Status::kReady);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/healthz");
  EXPECT_EQ(req.version, "HTTP/1.1");
  ASSERT_NE(req.header("host"), nullptr);  // case-insensitive
  EXPECT_EQ(*req.header("HOST"), "x");
  EXPECT_TRUE(req.body.empty());
  EXPECT_TRUE(req.keep_alive());  // 1.1 default
}

TEST(HttpParser, ParsesPostWithBodyAcrossFeeds) {
  HttpParser parser;
  HttpRequest req;
  parser.feed("POST /v1/submit HTTP/1.1\r\nContent-Le");
  EXPECT_EQ(parser.next(&req), HttpParser::Status::kNeedMore);
  parser.feed("ngth: 11\r\n\r\nhello");
  EXPECT_EQ(parser.next(&req), HttpParser::Status::kNeedMore);  // truncated
  EXPECT_TRUE(parser.mid_request());
  parser.feed(" world");
  ASSERT_EQ(parser.next(&req), HttpParser::Status::kReady);
  EXPECT_EQ(req.body, "hello world");
  EXPECT_FALSE(parser.mid_request());
}

TEST(HttpParser, PipelinedRequestsComeOutInOrder) {
  HttpParser parser;
  HttpRequest req;
  parser.feed(
      "GET /a HTTP/1.1\r\n\r\n"
      "POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nxy"
      "GET /c HTTP/1.1\r\n\r\n");
  ASSERT_EQ(parser.next(&req), HttpParser::Status::kReady);
  EXPECT_EQ(req.target, "/a");
  ASSERT_EQ(parser.next(&req), HttpParser::Status::kReady);
  EXPECT_EQ(req.target, "/b");
  EXPECT_EQ(req.body, "xy");
  ASSERT_EQ(parser.next(&req), HttpParser::Status::kReady);
  EXPECT_EQ(req.target, "/c");
  EXPECT_EQ(parser.next(&req), HttpParser::Status::kNeedMore);
}

TEST(HttpParser, LenientLineEndingsStrictEverythingElse) {
  HttpParser parser;
  HttpRequest req;
  ASSERT_EQ(feed_one("GET /x HTTP/1.1\nHost: y\n\n", &req, &parser),
            HttpParser::Status::kReady);
  EXPECT_EQ(req.target, "/x");
  ASSERT_NE(req.header("Host"), nullptr);
  EXPECT_EQ(*req.header("Host"), "y");
}

TEST(HttpParser, MalformedRequestLineIs400) {
  for (const char* wire : {
           "GARBAGE\r\n\r\n",                        // one token
           "GET /x\r\n\r\n",                         // missing version
           "GET /x HTTP/1.1 extra\r\n\r\n",          // four tokens
           "GET x HTTP/1.1\r\n\r\n",                 // target missing '/'
           "G@T /x HTTP/1.1\r\n\r\n",                // method not a token
           "GET /x HTTP/2.0\r\n\r\n",                // unsupported version
           "GET /x FTP/1.1\r\n\r\n",                 // not HTTP at all
       }) {
    HttpParser parser;
    HttpRequest req;
    ASSERT_EQ(feed_one(wire, &req, &parser), HttpParser::Status::kError)
        << wire;
    EXPECT_EQ(parser.error_status(), 400) << wire;
    EXPECT_FALSE(parser.error().empty()) << wire;
    // Poisoned: the connection must close, not resynchronize.
    EXPECT_EQ(parser.next(&req), HttpParser::Status::kError) << wire;
  }
}

TEST(HttpParser, MalformedHeadersAre400) {
  for (const char* wire : {
           "GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n",
           "GET /x HTTP/1.1\r\n: empty-name\r\n\r\n",
           "GET /x HTTP/1.1\r\nBad Name: v\r\n\r\n",  // space in name
       }) {
    HttpParser parser;
    HttpRequest req;
    ASSERT_EQ(feed_one(wire, &req, &parser), HttpParser::Status::kError)
        << wire;
    EXPECT_EQ(parser.error_status(), 400) << wire;
  }
}

TEST(HttpParser, BadContentLengthIs400) {
  for (const char* cl : {"abc", "-5", "12x", "", "9999999999999999999999"}) {
    HttpParser parser;
    HttpRequest req;
    const std::string wire = std::string("POST /x HTTP/1.1\r\nContent-Length: ") +
                             cl + "\r\n\r\n";
    ASSERT_EQ(feed_one(wire, &req, &parser), HttpParser::Status::kError) << cl;
    EXPECT_EQ(parser.error_status(), 400) << cl;
  }
  // Duplicate-but-agreeing lengths are tolerated; conflicting ones not.
  HttpParser parser;
  HttpRequest req;
  ASSERT_EQ(feed_one("POST /x HTTP/1.1\r\nContent-Length: 2\r\n"
                     "Content-Length: 3\r\n\r\n",
                     &req, &parser),
            HttpParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParser, TransferEncodingIs501) {
  HttpParser parser;
  HttpRequest req;
  ASSERT_EQ(feed_one("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                     &req, &parser),
            HttpParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParser, OversizedHeaderBlockIs431) {
  HttpLimits limits;
  limits.max_header_bytes = 256;
  HttpParser parser(limits);
  HttpRequest req;
  // Terminated but oversized.
  std::string wire = "GET /x HTTP/1.1\r\nX-Pad: " + std::string(300, 'a') +
                     "\r\n\r\n";
  ASSERT_EQ(feed_one(wire, &req, &parser), HttpParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 431);

  // Unterminated and growing: must fail while buffering, not at the
  // (never-arriving) terminator.
  HttpParser slow(limits);
  slow.feed("GET /x HTTP/1.1\r\nX-Pad: " + std::string(300, 'a'));
  ASSERT_EQ(slow.next(&req), HttpParser::Status::kError);
  EXPECT_EQ(slow.error_status(), 431);
}

TEST(HttpParser, OversizedBodyIs413) {
  HttpLimits limits;
  limits.max_body_bytes = 64;
  HttpParser parser(limits);
  HttpRequest req;
  ASSERT_EQ(feed_one("POST /x HTTP/1.1\r\nContent-Length: 65\r\n\r\n", &req,
                     &parser),
            HttpParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpRequest, KeepAliveDefaultsPerVersion) {
  HttpParser parser;
  HttpRequest req;
  ASSERT_EQ(feed_one("GET /x HTTP/1.1\r\nConnection: close\r\n\r\n", &req,
                     &parser),
            HttpParser::Status::kReady);
  EXPECT_FALSE(req.keep_alive());
  HttpParser p10;
  ASSERT_EQ(feed_one("GET /x HTTP/1.0\r\n\r\n", &req, &p10),
            HttpParser::Status::kReady);
  EXPECT_FALSE(req.keep_alive());  // 1.0 default: close
  HttpParser p10ka;
  ASSERT_EQ(feed_one("GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
                     &req, &p10ka),
            HttpParser::Status::kReady);
  EXPECT_TRUE(req.keep_alive());
}

TEST(HttpSerialize, ResponseRoundTripsThroughResponseHeadParser) {
  HttpResponse resp;
  resp.status = 200;
  resp.body = "{\"x\": 1}";
  const std::string wire = serialize_response(resp, /*keep_alive=*/true);
  const std::size_t head_end = wire.find("\r\n\r\n");
  ASSERT_NE(head_end, std::string::npos);
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string why;
  ASSERT_TRUE(parse_response_head(wire.substr(0, head_end), &status, &headers,
                                  &why))
      << why;
  EXPECT_EQ(status, 200);
  bool saw_length = false;
  for (const auto& [k, v] : headers)
    if (iequals(k, "Content-Length")) {
      saw_length = true;
      EXPECT_EQ(v, std::to_string(resp.body.size()));
    }
  EXPECT_TRUE(saw_length);
  EXPECT_EQ(wire.substr(head_end + 4), resp.body);
}

TEST(HttpSerialize, RequestParsesBackThroughRequestParser) {
  HttpRequest req;
  req.method = "POST";
  req.target = "/v1/submit";
  req.headers.emplace_back("Content-Type", "application/json");
  req.body = "{\"model\": \"lenet\"}";
  HttpParser parser;
  HttpRequest back;
  ASSERT_EQ(feed_one(serialize_request(req), &back, &parser),
            HttpParser::Status::kReady);
  EXPECT_EQ(back.method, "POST");
  EXPECT_EQ(back.target, "/v1/submit");
  EXPECT_EQ(back.body, req.body);
}

}  // namespace
}  // namespace chainnn::net
