#include "sim/vcd.hpp"

#include <gtest/gtest.h>

namespace chainnn::sim {
namespace {

TEST(Vcd, HeaderStructure) {
  VcdWriter vcd("1ns");
  (void)vcd.add_signal("top", "clk", 1);
  const std::string out = vcd.render();
  EXPECT_NE(out.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(out.find("$scope module top $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 ! clk $end"), std::string::npos);
  EXPECT_NE(out.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, ScalarChangesEmitted) {
  VcdWriter vcd;
  const auto clk = vcd.add_signal("top", "clk", 1);
  vcd.change(0, clk, 0);
  vcd.change(1, clk, 1);
  const std::string out = vcd.render();
  EXPECT_NE(out.find("#0\n0!"), std::string::npos);
  EXPECT_NE(out.find("#1\n1!"), std::string::npos);
}

TEST(Vcd, VectorChangesUseBinaryFormat) {
  VcdWriter vcd;
  const auto bus = vcd.add_signal("top", "bus", 4);
  vcd.change(5, bus, 0b1010);
  EXPECT_NE(vcd.render().find("#5\nb1010 !"), std::string::npos);
}

TEST(Vcd, UnchangedValuesSuppressed) {
  VcdWriter vcd;
  const auto s = vcd.add_signal("top", "s", 1);
  vcd.change(0, s, 1);
  vcd.change(1, s, 1);  // no change
  vcd.change(2, s, 0);
  const std::string out = vcd.render();
  EXPECT_EQ(out.find("#1\n"), std::string::npos);
  EXPECT_NE(out.find("#2\n"), std::string::npos);
}

TEST(Vcd, MultipleScopesGrouped) {
  VcdWriter vcd;
  (void)vcd.add_signal("pe0", "sel", 1);
  (void)vcd.add_signal("pe1", "sel", 1);
  const std::string out = vcd.render();
  EXPECT_NE(out.find("$scope module pe0 $end"), std::string::npos);
  EXPECT_NE(out.find("$scope module pe1 $end"), std::string::npos);
}

TEST(Vcd, IdentifierCodesUniqueFor100Signals) {
  VcdWriter vcd;
  for (int i = 0; i < 100; ++i)
    (void)vcd.add_signal("s", "sig" + std::to_string(i), 1);
  const std::string out = vcd.render();
  // 100 signals exceed one base-94 digit, so two-char codes appear.
  EXPECT_NE(out.find("sig99"), std::string::npos);
}

TEST(Vcd, DeclarationsAfterChangesRejected) {
  VcdWriter vcd;
  const auto s = vcd.add_signal("top", "s", 1);
  vcd.change(0, s, 1);
  EXPECT_THROW((void)vcd.add_signal("top", "late", 1), std::logic_error);
}

TEST(Vcd, OutOfOrderTimesAreSorted) {
  VcdWriter vcd;
  const auto a = vcd.add_signal("top", "a", 1);
  const auto b = vcd.add_signal("top", "b", 1);
  vcd.change(5, a, 1);
  vcd.change(2, b, 1);
  const std::string out = vcd.render();
  EXPECT_LT(out.find("#2"), out.find("#5"));
}

}  // namespace
}  // namespace chainnn::sim
