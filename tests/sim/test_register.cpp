#include "sim/register.hpp"

#include <gtest/gtest.h>

namespace chainnn::sim {
namespace {

TEST(Register, HoldsUntilCommit) {
  Register<int> r(0);
  r.set_next(5);
  EXPECT_EQ(r.get(), 0);  // visible value unchanged before commit
  r.commit();
  EXPECT_EQ(r.get(), 5);
}

TEST(Register, HoldsValueWithoutSetNext) {
  Register<int> r(7);
  r.commit();
  EXPECT_EQ(r.get(), 7);
}

TEST(Register, Reset) {
  Register<int> r(1);
  r.set_next(9);
  r.reset(3);
  r.commit();
  EXPECT_EQ(r.get(), 3);
}

TEST(ShiftChain, DelaysByTapDepth) {
  ShiftChain<int> ch(3, 0);
  ch.shift(1);
  ch.shift(2);
  ch.shift(3);
  EXPECT_EQ(ch.tap(0), 3);  // one delay
  EXPECT_EQ(ch.tap(1), 2);
  EXPECT_EQ(ch.tap(2), 1);
}

TEST(ShiftChain, DropsOldestValue) {
  ShiftChain<int> ch(2, 0);
  ch.shift(1);
  ch.shift(2);
  ch.shift(3);
  EXPECT_EQ(ch.tap(0), 3);
  EXPECT_EQ(ch.tap(1), 2);  // value 1 fell off the end
}

TEST(ShiftChain, TapBoundsChecked) {
  ShiftChain<int> ch(2, 0);
  EXPECT_THROW((void)ch.tap(2), std::logic_error);
}

TEST(ShiftChain, ResetClears) {
  ShiftChain<int> ch(2, 0);
  ch.shift(5);
  ch.reset(0);
  EXPECT_EQ(ch.tap(0), 0);
  EXPECT_EQ(ch.tap(1), 0);
}

TEST(DelayLine, ZeroLatencyPassThrough) {
  DelayLine<int> d(0);
  EXPECT_EQ(d.step(42), 42);
}

TEST(DelayLine, FixedLatency) {
  DelayLine<int> d(3, 0);
  EXPECT_EQ(d.step(1), 0);
  EXPECT_EQ(d.step(2), 0);
  EXPECT_EQ(d.step(3), 0);
  EXPECT_EQ(d.step(4), 1);
  EXPECT_EQ(d.step(5), 2);
}

TEST(DelayLine, ResetRefills) {
  DelayLine<int> d(2, 0);
  (void)d.step(1);
  d.reset(9);
  EXPECT_EQ(d.step(0), 9);
}

// Property: a DelayLine of latency L shifts any sequence by exactly L.
class DelayLatency : public ::testing::TestWithParam<int> {};

TEST_P(DelayLatency, ShiftBySequence) {
  const int latency = GetParam();
  DelayLine<int> d(static_cast<std::size_t>(latency), -1);
  for (int i = 0; i < 50; ++i) {
    const int out = d.step(i);
    if (i < latency)
      EXPECT_EQ(out, -1);
    else
      EXPECT_EQ(out, i - latency);
  }
}

INSTANTIATE_TEST_SUITE_P(Latencies, DelayLatency,
                         ::testing::Values(0, 1, 2, 5, 9));

}  // namespace
}  // namespace chainnn::sim
