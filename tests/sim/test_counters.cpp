#include "sim/counters.hpp"

#include <gtest/gtest.h>

namespace chainnn::sim {
namespace {

TEST(Counters, StartAtZero) {
  Counters c;
  EXPECT_EQ(c.get("anything"), 0u);
}

TEST(Counters, HandleIncrement) {
  Counters c;
  const auto h = c.handle("macs");
  c.add(h);
  c.add(h, 10);
  EXPECT_EQ(c.get("macs"), 11u);
  EXPECT_EQ(c.get(h), 11u);
}

TEST(Counters, HandleIsStable) {
  Counters c;
  const auto h1 = c.handle("x");
  const auto h2 = c.handle("x");
  c.add(h1);
  c.add(h2);
  EXPECT_EQ(c.get("x"), 2u);
}

TEST(Counters, SnapshotSortedByName) {
  Counters c;
  c.add(c.handle("b"), 2);
  c.add(c.handle("a"), 1);
  const auto snap = c.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.begin()->first, "a");
  EXPECT_EQ(snap.at("a"), 1u);
  EXPECT_EQ(snap.at("b"), 2u);
}

TEST(Counters, ResetZeroesAll) {
  Counters c;
  c.add(c.handle("x"), 5);
  c.reset();
  EXPECT_EQ(c.get("x"), 0u);
}

}  // namespace
}  // namespace chainnn::sim
