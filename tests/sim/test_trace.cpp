#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace chainnn::sim {
namespace {

TEST(Trace, DisabledByDefault) {
  Trace t;
  t.record(1, "pe", "x");
  EXPECT_TRUE(t.events().empty());
}

TEST(Trace, RecordsWhenEnabled) {
  Trace t;
  t.enable(true);
  t.record(1, "pe0", "mac");
  t.record(2, "pe1", "psum");
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].cycle, 1u);
  EXPECT_EQ(evs[0].source, "pe0");
  EXPECT_EQ(evs[1].message, "psum");
}

TEST(Trace, RingKeepsMostRecent) {
  Trace t(3);
  t.enable(true);
  for (std::uint64_t i = 0; i < 10; ++i)
    t.record(i, "s", std::to_string(i));
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].cycle, 7u);  // oldest surviving
  EXPECT_EQ(evs[2].cycle, 9u);
}

TEST(Trace, ToStringOneLinePerEvent) {
  Trace t;
  t.enable(true);
  t.record(5, "ctrl", "state=STREAM");
  const std::string s = t.to_string();
  EXPECT_NE(s.find("[5] ctrl: state=STREAM"), std::string::npos);
}

TEST(Trace, ClearEmpties) {
  Trace t;
  t.enable(true);
  t.record(1, "a", "b");
  t.clear();
  EXPECT_TRUE(t.events().empty());
}

}  // namespace
}  // namespace chainnn::sim
