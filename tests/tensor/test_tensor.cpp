#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

namespace chainnn {
namespace {

TEST(Tensor, ZeroInitialized) {
  Tensor<float> t(Shape{2, 3});
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FillValueConstructor) {
  Tensor<std::int16_t> t(Shape{4}, std::int16_t{7});
  for (auto v : t.data()) EXPECT_EQ(v, 7);
}

TEST(Tensor, FromVectorChecksSize) {
  EXPECT_NO_THROW(Tensor<int>(Shape{2, 2}, std::vector<int>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor<int>(Shape{2, 2}, std::vector<int>{1, 2}),
               std::logic_error);
}

TEST(Tensor, MultiIndexAccess) {
  Tensor<int> t(Shape{2, 3, 4});
  t.at(1, 2, 3) = 42;
  EXPECT_EQ(t.at(1, 2, 3), 42);
  EXPECT_EQ(t.at_flat(23), 42);
}

TEST(Tensor, FourDAccess) {
  Tensor<int> t(Shape{2, 2, 2, 2});
  t.at(1, 0, 1, 0) = 5;
  EXPECT_EQ((t({1, 0, 1, 0})), 5);
}

TEST(Tensor, FlatBoundsChecked) {
  Tensor<int> t(Shape{2});
  EXPECT_THROW((void)t.at_flat(2), std::logic_error);
  EXPECT_THROW((void)t.at_flat(-1), std::logic_error);
}

TEST(Tensor, ValueSemanticsDeepCopy) {
  Tensor<int> a(Shape{2});
  a.at_flat(0) = 1;
  Tensor<int> b = a;
  b.at_flat(0) = 2;
  EXPECT_EQ(a.at_flat(0), 1);
  EXPECT_EQ(b.at_flat(0), 2);
}

TEST(Tensor, EqualityIsElementwise) {
  Tensor<int> a(Shape{2}, 1);
  Tensor<int> b(Shape{2}, 1);
  EXPECT_EQ(a, b);
  b.at_flat(1) = 9;
  EXPECT_NE(a, b);
}

TEST(Tensor, FillRandomIntegralRange) {
  Rng rng(1);
  Tensor<std::int16_t> t(Shape{1000});
  t.fill_random(rng, -8, 8);
  for (auto v : t.data()) {
    EXPECT_GE(v, -8);
    EXPECT_LE(v, 8);
  }
}

TEST(Tensor, FillRandomFloatRange) {
  Rng rng(2);
  Tensor<float> t(Shape{1000});
  t.fill_random(rng, -1.0, 1.0);
  for (float v : t.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(Tensor, MaxAbsDiff) {
  Tensor<int> a(Shape{3}, 0);
  Tensor<int> b(Shape{3}, 0);
  b.at_flat(1) = -7;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 7.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, a), 0.0);
}

TEST(Tensor, MaxAbsDiffShapeChecked) {
  Tensor<int> a(Shape{3});
  Tensor<int> b(Shape{4});
  EXPECT_THROW((void)max_abs_diff(a, b), std::logic_error);
}

}  // namespace
}  // namespace chainnn
