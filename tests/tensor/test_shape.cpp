#include "tensor/shape.hpp"

#include <gtest/gtest.h>

namespace chainnn {
namespace {

TEST(Shape, RankAndDims) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.dim(2), 4);
  EXPECT_EQ(s.num_elements(), 24);
}

TEST(Shape, RankZeroScalar) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.num_elements(), 1);
}

TEST(Shape, RowMajorStrides) {
  const Shape s{2, 3, 4};
  const auto st = s.strides();
  ASSERT_EQ(st.size(), 3u);
  EXPECT_EQ(st[0], 12);
  EXPECT_EQ(st[1], 4);
  EXPECT_EQ(st[2], 1);
}

TEST(Shape, OffsetMatchesManualComputation) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.offset({0, 0, 0}), 0);
  EXPECT_EQ(s.offset({1, 2, 3}), 23);
  EXPECT_EQ(s.offset({1, 0, 2}), 14);
}

TEST(Shape, OffsetBoundsChecked) {
  const Shape s{2, 3};
  EXPECT_THROW((void)s.offset({2, 0}), std::logic_error);
  EXPECT_THROW((void)s.offset({0, 3}), std::logic_error);
  EXPECT_THROW((void)s.offset({0}), std::logic_error);  // rank mismatch
}

TEST(Shape, RejectsNonPositiveDims) {
  EXPECT_THROW(Shape({0, 3}), std::logic_error);
  EXPECT_THROW(Shape({2, -1}), std::logic_error);
}

TEST(Shape, EqualityAndToString) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_EQ(Shape({2, 3, 4}).to_string(), "[2x3x4]");
}

}  // namespace
}  // namespace chainnn
