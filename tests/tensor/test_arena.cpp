// TensorArena / ArenaAllocator — pooling, stats, lifetime safety.
#include "tensor/arena.hpp"

#include <cstdint>
#include <memory>
#include <utility>

#include "gtest/gtest.h"
#include "tensor/tensor.hpp"

namespace chainnn {
namespace {

TEST(TensorArena, ReusesIdenticallySizedBlocks) {
  auto arena = std::make_shared<TensorArena>();
  const Shape shape{2, 3, 8, 8};
  void* first_block = nullptr;
  {
    Tensor<std::int64_t> t(shape, ArenaAllocator<std::int64_t>(arena));
    first_block = t.mutable_data().data();
  }
  // The tensor died: its block is on the freelist, not back at the OS.
  ArenaStats s = arena->stats();
  EXPECT_EQ(s.allocations, 1);
  EXPECT_EQ(s.reuses, 0);
  EXPECT_EQ(s.bytes_in_use, 0);
  EXPECT_EQ(s.freelist_bytes,
            shape.num_elements() *
                static_cast<std::int64_t>(sizeof(std::int64_t)));

  Tensor<std::int64_t> again(shape, ArenaAllocator<std::int64_t>(arena));
  EXPECT_EQ(again.mutable_data().data(), first_block);  // same block back
  s = arena->stats();
  EXPECT_EQ(s.allocations, 2);
  EXPECT_EQ(s.reuses, 1);
  EXPECT_EQ(s.freelist_bytes, 0);
  EXPECT_DOUBLE_EQ(s.reuse_rate(), 0.5);
}

TEST(TensorArena, TracksHighWaterAcrossLiveTensors) {
  auto arena = std::make_shared<TensorArena>();
  const std::int64_t bytes16 =
      64 * static_cast<std::int64_t>(sizeof(std::int16_t));
  {
    Tensor<std::int16_t> a(Shape{64}, ArenaAllocator<std::int16_t>(arena));
    Tensor<std::int16_t> b(Shape{64}, ArenaAllocator<std::int16_t>(arena));
    EXPECT_EQ(arena->stats().bytes_in_use, 2 * bytes16);
  }
  const ArenaStats s = arena->stats();
  EXPECT_EQ(s.bytes_in_use, 0);
  EXPECT_EQ(s.high_water_bytes, 2 * bytes16);  // the peak survives
}

TEST(TensorArena, TrimReleasesFreelistOnly) {
  auto arena = std::make_shared<TensorArena>();
  Tensor<std::int16_t> live(Shape{16}, ArenaAllocator<std::int16_t>(arena));
  { Tensor<std::int16_t> dead(Shape{32}, ArenaAllocator<std::int16_t>(arena)); }
  EXPECT_GT(arena->stats().freelist_bytes, 0);
  arena->trim();
  const ArenaStats s = arena->stats();
  EXPECT_EQ(s.freelist_bytes, 0);
  EXPECT_EQ(s.bytes_in_use,
            16 * static_cast<std::int64_t>(sizeof(std::int16_t)));
  live.fill(3);  // the live block is untouched by trim
  EXPECT_EQ(live.at_flat(0), 3);
}

TEST(TensorArena, EscapingTensorKeepsArenaAlive) {
  // The lifetime property the serving layer relies on: per-layer result
  // tensors escape the request (and could escape the server); the
  // allocator's shared_ptr must keep the arena alive until the last one
  // dies, and releasing into a caller-dropped arena must be safe.
  Tensor<std::int16_t> escaped;
  {
    auto arena = std::make_shared<TensorArena>();
    escaped =
        Tensor<std::int16_t>(Shape{128}, ArenaAllocator<std::int16_t>(arena));
    escaped.fill(7);
  }  // the only named handle on the arena is gone
  EXPECT_EQ(escaped.at_flat(127), 7);
  escaped = Tensor<std::int16_t>();  // release into the still-alive arena
}

TEST(TensorArena, ZeroingAndFillConstructorsInitializeFromPool) {
  // A pooled block is recycled dirty; the value-initializing ctors must
  // still deliver their advertised contents.
  auto arena = std::make_shared<TensorArena>();
  const Shape shape{64};
  {
    Tensor<std::int16_t> dirty(shape, Uninit{},
                               ArenaAllocator<std::int16_t>(arena));
    dirty.fill(-1);
  }
  Tensor<std::int16_t> zeroed(shape, ArenaAllocator<std::int16_t>(arena));
  for (std::int64_t i = 0; i < zeroed.num_elements(); ++i)
    ASSERT_EQ(zeroed.at_flat(i), 0) << i;
  {
    Tensor<std::int16_t> refill(shape, std::int16_t{5},
                                ArenaAllocator<std::int16_t>(arena));
    for (std::int64_t i = 0; i < refill.num_elements(); ++i)
      ASSERT_EQ(refill.at_flat(i), 5) << i;
  }
}

TEST(TensorArena, CopiesAndComparisonsCrossAllocators) {
  // Value semantics must not care where the bytes live: an arena tensor
  // and a heap tensor with equal contents compare equal, and copies
  // work in both directions.
  auto arena = std::make_shared<TensorArena>();
  Tensor<std::int16_t> pooled(Shape{2, 3},
                              ArenaAllocator<std::int16_t>(arena));
  pooled.at(1, 2) = 42;
  Tensor<std::int16_t> heap = pooled;  // copy keeps the arena allocator
  EXPECT_EQ(heap, pooled);
  Tensor<std::int16_t> plain(Shape{2, 3});
  plain.at(1, 2) = 42;
  EXPECT_EQ(plain, pooled);
  plain.at(0, 0) = 1;
  EXPECT_NE(plain, pooled);

  // Moves steal the pooled buffer rather than copying it.
  const void* block = pooled.data().data();
  Tensor<std::int16_t> moved = std::move(pooled);
  EXPECT_EQ(moved.data().data(), block);
}

TEST(TensorArena, NullArenaAllocatorIsPlainHeap) {
  const ArenaAllocator<std::int16_t> alloc;
  EXPECT_EQ(alloc.arena(), nullptr);
  Tensor<std::int16_t> t(Shape{8}, alloc);  // must not crash or pool
  EXPECT_EQ(t.num_elements(), 8);
  EXPECT_EQ(t.at_flat(0), 0);
}

}  // namespace
}  // namespace chainnn
