#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace chainnn {
namespace {

const std::map<std::string, std::string> kDefaults = {
    {"model", "alexnet"}, {"batch", "4"}, {"verbose", "false"},
    {"scale", "1.5"}};

TEST(Cli, DefaultsApply) {
  CliFlags flags;
  const char* argv[] = {"prog"};
  std::string err;
  ASSERT_TRUE(flags.parse(1, argv, kDefaults, &err)) << err;
  EXPECT_EQ(flags.get_string("model"), "alexnet");
  EXPECT_EQ(flags.get_int("batch"), 4);
  EXPECT_FALSE(flags.get_bool("verbose"));
  EXPECT_DOUBLE_EQ(flags.get_double("scale"), 1.5);
}

TEST(Cli, EqualsForm) {
  CliFlags flags;
  const char* argv[] = {"prog", "--model=vgg16", "--batch=128"};
  std::string err;
  ASSERT_TRUE(flags.parse(3, argv, kDefaults, &err)) << err;
  EXPECT_EQ(flags.get_string("model"), "vgg16");
  EXPECT_EQ(flags.get_int("batch"), 128);
}

TEST(Cli, SpaceForm) {
  CliFlags flags;
  const char* argv[] = {"prog", "--batch", "32"};
  std::string err;
  ASSERT_TRUE(flags.parse(3, argv, kDefaults, &err)) << err;
  EXPECT_EQ(flags.get_int("batch"), 32);
}

TEST(Cli, BooleanSwitch) {
  CliFlags flags;
  const char* argv[] = {"prog", "--verbose"};
  std::string err;
  ASSERT_TRUE(flags.parse(2, argv, kDefaults, &err)) << err;
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(Cli, UnknownFlagRejected) {
  CliFlags flags;
  const char* argv[] = {"prog", "--nope=1"};
  std::string err;
  EXPECT_FALSE(flags.parse(2, argv, kDefaults, &err));
  EXPECT_NE(err.find("--nope"), std::string::npos);
}

TEST(Cli, MissingValueRejected) {
  CliFlags flags;
  const char* argv[] = {"prog", "--batch"};
  std::string err;
  EXPECT_FALSE(flags.parse(2, argv, kDefaults, &err));
}

TEST(Cli, PositionalCollected) {
  CliFlags flags;
  const char* argv[] = {"prog", "pos1", "--batch=2", "pos2"};
  std::string err;
  ASSERT_TRUE(flags.parse(4, argv, kDefaults, &err)) << err;
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "pos1");
  EXPECT_EQ(flags.positional()[1], "pos2");
}

TEST(Cli, UsageListsFlags) {
  const std::string usage = CliFlags::usage(kDefaults);
  EXPECT_NE(usage.find("--model=alexnet"), std::string::npos);
  EXPECT_NE(usage.find("--batch=4"), std::string::npos);
}

}  // namespace
}  // namespace chainnn
