#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace chainnn {
namespace {

const std::map<std::string, std::string> kDefaults = {
    {"model", "alexnet"}, {"batch", "4"}, {"verbose", "false"},
    {"scale", "1.5"}};

TEST(Cli, DefaultsApply) {
  CliFlags flags;
  const char* argv[] = {"prog"};
  std::string err;
  ASSERT_TRUE(flags.parse(1, argv, kDefaults, &err)) << err;
  EXPECT_EQ(flags.get_string("model"), "alexnet");
  EXPECT_EQ(flags.get_int("batch"), 4);
  EXPECT_FALSE(flags.get_bool("verbose"));
  EXPECT_DOUBLE_EQ(flags.get_double("scale"), 1.5);
}

TEST(Cli, EqualsForm) {
  CliFlags flags;
  const char* argv[] = {"prog", "--model=vgg16", "--batch=128"};
  std::string err;
  ASSERT_TRUE(flags.parse(3, argv, kDefaults, &err)) << err;
  EXPECT_EQ(flags.get_string("model"), "vgg16");
  EXPECT_EQ(flags.get_int("batch"), 128);
}

TEST(Cli, SpaceForm) {
  CliFlags flags;
  const char* argv[] = {"prog", "--batch", "32"};
  std::string err;
  ASSERT_TRUE(flags.parse(3, argv, kDefaults, &err)) << err;
  EXPECT_EQ(flags.get_int("batch"), 32);
}

TEST(Cli, BooleanSwitch) {
  CliFlags flags;
  const char* argv[] = {"prog", "--verbose"};
  std::string err;
  ASSERT_TRUE(flags.parse(2, argv, kDefaults, &err)) << err;
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(Cli, UnknownFlagRejected) {
  CliFlags flags;
  const char* argv[] = {"prog", "--nope=1"};
  std::string err;
  EXPECT_FALSE(flags.parse(2, argv, kDefaults, &err));
  EXPECT_NE(err.find("--nope"), std::string::npos);
}

TEST(Cli, MissingValueRejected) {
  CliFlags flags;
  const char* argv[] = {"prog", "--batch"};
  std::string err;
  EXPECT_FALSE(flags.parse(2, argv, kDefaults, &err));
}

TEST(Cli, PositionalCollected) {
  CliFlags flags;
  const char* argv[] = {"prog", "pos1", "--batch=2", "pos2"};
  std::string err;
  ASSERT_TRUE(flags.parse(4, argv, kDefaults, &err)) << err;
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "pos1");
  EXPECT_EQ(flags.positional()[1], "pos2");
}

TEST(Cli, UsageListsFlags) {
  const std::string usage = CliFlags::usage(kDefaults);
  EXPECT_NE(usage.find("--model=alexnet"), std::string::npos);
  EXPECT_NE(usage.find("--batch=4"), std::string::npos);
}

TEST(ExecModeFlag, ParsesEngines) {
  ExecModeSelection sel;
  std::string err;
  ASSERT_TRUE(parse_exec_mode_selection("analytical", false, false, &sel,
                                        &err));
  EXPECT_EQ(sel.mode, chain::ExecMode::kAnalytical);
  EXPECT_FALSE(sel.compare);
  EXPECT_FALSE(sel.none);
  EXPECT_STREQ(sel.name(), "analytical");

  ASSERT_TRUE(parse_exec_mode_selection("cycle-accurate", false, false, &sel,
                                        &err));
  EXPECT_EQ(sel.mode, chain::ExecMode::kCycleAccurate);
  ASSERT_TRUE(parse_exec_mode_selection("cycle", false, false, &sel, &err));
  EXPECT_EQ(sel.mode, chain::ExecMode::kCycleAccurate);
}

TEST(ExecModeFlag, CompareAndNoneArePerBinary) {
  ExecModeSelection sel;
  std::string err;
  ASSERT_TRUE(parse_exec_mode_selection("compare", true, false, &sel, &err));
  EXPECT_TRUE(sel.compare);
  EXPECT_STREQ(sel.name(), "compare");
  EXPECT_FALSE(parse_exec_mode_selection("compare", false, true, &sel, &err));
  EXPECT_NE(err.find("compare\""), std::string::npos);

  ASSERT_TRUE(parse_exec_mode_selection("none", false, true, &sel, &err));
  EXPECT_TRUE(sel.none);
  EXPECT_FALSE(parse_exec_mode_selection("none", true, false, &sel, &err));
}

TEST(ExecModeFlag, ErrorListsAcceptedValues) {
  ExecModeSelection sel;
  std::string err;
  EXPECT_FALSE(parse_exec_mode_selection("bogus", true, true, &sel, &err));
  EXPECT_NE(err.find("analytical"), std::string::npos);
  EXPECT_NE(err.find("cycle-accurate"), std::string::npos);
  EXPECT_NE(err.find("compare"), std::string::npos);
  EXPECT_NE(err.find("none"), std::string::npos);
  EXPECT_FALSE(parse_exec_mode_selection("bogus", false, false, &sel, &err));
  EXPECT_EQ(err.find("compare"), std::string::npos);
}

TEST(WorkersFlag, ValidatesPositive) {
  const std::map<std::string, std::string> defaults = {{"workers", "4"}};
  CliFlags flags;
  std::string err;
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv, defaults, &err));
  std::int64_t workers = 0;
  ASSERT_TRUE(parse_workers_flag(flags, "workers", &workers, &err));
  EXPECT_EQ(workers, 4);

  const char* bad[] = {"prog", "--workers=0"};
  ASSERT_TRUE(flags.parse(2, bad, defaults, &err));
  EXPECT_FALSE(parse_workers_flag(flags, "workers", &workers, &err));
  EXPECT_NE(err.find("--workers"), std::string::npos);

  const char* garbage[] = {"prog", "--workers=lots"};
  ASSERT_TRUE(flags.parse(2, garbage, defaults, &err));
  EXPECT_FALSE(parse_workers_flag(flags, "workers", &workers, &err));
}

TEST(ExecModeFlag, ConsumeStripsFlagFromArgv) {
  char a0[] = "prog", a1[] = "--exec-mode=compare", a2[] = "--other=1";
  char* argv[] = {a0, a1, a2};
  int argc = 3;
  ExecModeSelection sel;
  std::string err;
  ASSERT_TRUE(consume_exec_mode_flag(&argc, argv, true, false, &sel, &err));
  EXPECT_TRUE(sel.compare);
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "--other=1");
}

TEST(ExecModeFlag, ConsumeHandlesSpaceFormAndAbsence) {
  {
    char a0[] = "prog", a1[] = "--exec-mode", a2[] = "cycle";
    char* argv[] = {a0, a1, a2};
    int argc = 3;
    ExecModeSelection sel;
    std::string err;
    ASSERT_TRUE(consume_exec_mode_flag(&argc, argv, false, false, &sel,
                                       &err));
    EXPECT_EQ(sel.mode, chain::ExecMode::kCycleAccurate);
    EXPECT_EQ(argc, 1);
  }
  {
    char a0[] = "prog", a1[] = "--benchmark_min_time=0.01";
    char* argv[] = {a0, a1};
    int argc = 2;
    ExecModeSelection sel;  // defaults survive an absent flag
    std::string err;
    ASSERT_TRUE(consume_exec_mode_flag(&argc, argv, false, false, &sel,
                                       &err));
    EXPECT_EQ(sel.mode, chain::ExecMode::kAnalytical);
    EXPECT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "--benchmark_min_time=0.01");
  }
  {
    char a0[] = "prog", a1[] = "--exec-mode";
    char* argv[] = {a0, a1};
    int argc = 2;
    ExecModeSelection sel;
    std::string err;
    EXPECT_FALSE(consume_exec_mode_flag(&argc, argv, false, false, &sel,
                                        &err));
    EXPECT_NE(err.find("missing a value"), std::string::npos);
  }
}

}  // namespace
}  // namespace chainnn
