// WorkPool — the process-wide work-stealing pool (ROADMAP item 3).
//
// These suites run under TSan in CI (`ctest -L concurrency`), so they
// are written to exercise real interleavings: submit storms from many
// external threads, tasks that spawn tasks (the own-deque path), nested
// run_batch on a deliberately starved single-worker pool (the helping
// semantics that make nested sharding deadlock-free), and the blocking
// lane's guarantee that gated tasks never wait on each other.
#include "common/work_pool.hpp"

#include <atomic>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace chainnn::common {
namespace {

// Counts completions and lets the test block until a target is reached —
// submit() is fire-and-forget, so completion needs its own signal.
class Latch {
 public:
  explicit Latch(std::int64_t target) : target_(target) {}

  void count() {
    std::lock_guard<std::mutex> lock(mu_);
    if (++done_ == target_) cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return done_ >= target_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::int64_t done_ = 0;
  const std::int64_t target_;
};

TEST(WorkPool, RunBatchExecutesEveryTaskExactlyOnce) {
  WorkPool pool(4);
  constexpr std::int64_t kTasks = 200;
  std::vector<std::atomic<int>> runs(kTasks);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(kTasks);
  for (std::int64_t i = 0; i < kTasks; ++i)
    tasks.push_back([&runs, i] {
      runs[static_cast<std::size_t>(i)].fetch_add(1,
                                                  std::memory_order_relaxed);
    });
  pool.run_batch(std::move(tasks));
  for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
}

TEST(WorkPool, NestedRunBatchCompletesOnSingleWorkerPool) {
  // The helping semantics under test: every run_batch caller claims
  // items itself, so even a 1-worker pool saturated with nested batches
  // makes progress (the wait graph is a DAG by nesting depth). Without
  // helping, outer batches would own the only worker and the inner
  // batches could never run.
  WorkPool pool(1);
  std::atomic<std::int64_t> leaf_runs{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 4; ++i)
    outer.push_back([&pool, &leaf_runs] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 8; ++j)
        inner.push_back([&leaf_runs] {
          leaf_runs.fetch_add(1, std::memory_order_relaxed);
        });
      pool.run_batch(std::move(inner));
    });
  pool.run_batch(std::move(outer));
  EXPECT_EQ(leaf_runs.load(), 4 * 8);
}

TEST(WorkPool, SubmitStormFromManyThreadsRunsEverything) {
  WorkPool pool(3);
  constexpr std::int64_t kThreads = 8;
  constexpr std::int64_t kPerThread = 50;
  Latch latch(kThreads * kPerThread);
  std::atomic<std::int64_t> total{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (std::int64_t t = 0; t < kThreads; ++t)
    submitters.emplace_back([&pool, &latch, &total] {
      for (std::int64_t i = 0; i < kPerThread; ++i)
        pool.submit([&latch, &total] {
          total.fetch_add(1, std::memory_order_relaxed);
          latch.count();
        });
    });
  for (std::thread& t : submitters) t.join();
  latch.wait();
  EXPECT_EQ(total.load(), kThreads * kPerThread);
}

TEST(WorkPool, TasksSubmittedFromWorkerThreadsRun) {
  // submit() from a pool thread takes the own-deque (LIFO) path; the
  // fan-out below covers it alongside stealing by the other workers.
  WorkPool pool(2);
  constexpr std::int64_t kFanout = 16;
  Latch latch(1 + kFanout);
  std::atomic<std::int64_t> child_runs{0};
  std::atomic<bool> parent_on_pool{false};
  pool.submit([&] {
    parent_on_pool.store(pool.on_worker_thread());
    for (std::int64_t i = 0; i < kFanout; ++i)
      pool.submit([&latch, &child_runs] {
        child_runs.fetch_add(1, std::memory_order_relaxed);
        latch.count();
      });
    latch.count();
  });
  latch.wait();
  EXPECT_EQ(child_runs.load(), kFanout);
  EXPECT_TRUE(parent_on_pool.load());
  EXPECT_FALSE(pool.on_worker_thread());
}

TEST(WorkPool, BlockingLaneNeverMakesGatedTasksWaitOnEachOther) {
  // The invariant InferenceServer's drains (and the fleet tests that
  // gate several chips' requests at once) rely on: K blocking tasks
  // that all park on one gate must ALL reach the gate, however few
  // cores the host has — the lane grows a thread per ungated task
  // instead of queueing behind the parked ones.
  WorkPool pool(1);  // deliberately starved stealing lane
  constexpr std::int64_t kGated = 6;
  Latch all_started(kGated);
  Latch all_done(kGated);
  std::promise<void> open_gate;
  std::shared_future<void> gate = open_gate.get_future().share();
  for (std::int64_t i = 0; i < kGated; ++i)
    pool.submit_blocking([&all_started, &all_done, gate] {
      all_started.count();
      gate.wait();
      all_done.count();
    });
  all_started.wait();  // deadlocks here if gated tasks queue behind
  open_gate.set_value();
  all_done.wait();
}

TEST(WorkPool, BlockingLaneReusesParkedThreads) {
  WorkPool pool(1);
  // Sequential blocking tasks separated by a completion wait: after the
  // first completes its thread parks, so the rest reuse it rather than
  // growing the cache — observable as the pool shutting down promptly
  // with no thread left running (the destructor hangs otherwise).
  std::atomic<std::int64_t> runs{0};
  for (int i = 0; i < 10; ++i) {
    Latch done(1);
    pool.submit_blocking([&runs, &done] {
      runs.fetch_add(1, std::memory_order_relaxed);
      done.count();
    });
    done.wait();
  }
  EXPECT_EQ(runs.load(), 10);
}

TEST(WorkPool, RunBatchFromBlockingTaskCompletes) {
  // An InferenceServer drain (blocking lane) executing a sharded request
  // calls run_batch from a non-worker thread; helping semantics must
  // carry it even when the stealing worker is busy elsewhere.
  WorkPool pool(1);
  Latch done(1);
  std::atomic<std::int64_t> shard_runs{0};
  pool.submit_blocking([&pool, &shard_runs, &done] {
    std::vector<std::function<void()>> shards;
    for (int i = 0; i < 8; ++i)
      shards.push_back([&shard_runs] {
        shard_runs.fetch_add(1, std::memory_order_relaxed);
      });
    pool.run_batch(std::move(shards));
    done.count();
  });
  done.wait();
  EXPECT_EQ(shard_runs.load(), 8);
}

TEST(WorkPool, SharedPoolIsProcessWideSingleton) {
  WorkPool& a = WorkPool::shared();
  WorkPool& b = WorkPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1);
}

}  // namespace
}  // namespace chainnn::common
