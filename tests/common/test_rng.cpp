#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace chainnn {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16 && !any_diff; ++i)
    any_diff = a.next_u64() != b.next_u64();
  EXPECT_TRUE(any_diff);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng r(13);
  const int n = 20000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = r.gaussian();
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, GaussianScaled) {
  Rng r(17);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.gaussian(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ReseedRestartsStream) {
  Rng r(21);
  const std::uint64_t first = r.next_u64();
  (void)r.next_u64();
  r.reseed(21);
  EXPECT_EQ(r.next_u64(), first);
}

}  // namespace
}  // namespace chainnn
