#include "common/check.hpp"

#include <gtest/gtest.h>

namespace chainnn {
namespace {

TEST(Check, PassingConditionIsSilent) {
  EXPECT_NO_THROW(CHAINNN_CHECK(1 + 1 == 2));
}

TEST(Check, FailureThrowsLogicError) {
  EXPECT_THROW(CHAINNN_CHECK(false), std::logic_error);
}

TEST(Check, MessageIncludesExpressionAndContext) {
  try {
    CHAINNN_CHECK_MSG(2 < 1, "value was " << 42);
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2 < 1"), std::string::npos);
    EXPECT_NE(msg.find("value was 42"), std::string::npos);
    EXPECT_NE(msg.find("test_check.cpp"), std::string::npos);
  }
}

TEST(Check, ConditionEvaluatedOnce) {
  int calls = 0;
  auto count = [&calls]() {
    ++calls;
    return true;
  };
  CHAINNN_CHECK(count());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace chainnn
