#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace chainnn::strings {
namespace {

TEST(Strings, FmtFixed) {
  EXPECT_EQ(fmt_fixed(806.44, 1), "806.4");
  EXPECT_EQ(fmt_fixed(806.45, 0), "806");
  EXPECT_EQ(fmt_fixed(-1.5, 2), "-1.50");
  EXPECT_EQ(fmt_fixed(0.0, 3), "0.000");
}

TEST(Strings, FmtSiPicksScale) {
  EXPECT_EQ(fmt_si(3751e3, 2), "3.75 M");
  EXPECT_EQ(fmt_si(806.4e9, 1), "806.4 G");
  EXPECT_EQ(fmt_si(1.421e12, 2), "1.42 T");
  EXPECT_EQ(fmt_si(6510.0, 2), "6.51 k");
  EXPECT_EQ(fmt_si(42.0, 0), "42");
}

TEST(Strings, FmtBytesUsesBinaryUnits) {
  EXPECT_EQ(fmt_bytes(352.0 * 1024, 1), "352.0KB");
  EXPECT_EQ(fmt_bytes(24.5 * 1024 * 1024, 1), "24.5MB");
  EXPECT_EQ(fmt_bytes(512, 0), "512B");
  EXPECT_EQ(fmt_bytes(3.0 * 1024 * 1024 * 1024, 1), "3.0GB");
}

TEST(Strings, FmtPct) {
  EXPECT_EQ(fmt_pct(0.998, 1), "99.8%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
  EXPECT_EQ(fmt_pct(0.84, 1), "84.0%");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, " | "), "a | b | c");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("abcdef", 4), "abcdef");  // never truncates
  EXPECT_EQ(pad_right("abcdef", 4), "abcdef");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-f", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("", "a"));
}

}  // namespace
}  // namespace chainnn::strings
