#include "common/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace chainnn {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.set_header({"layer", "ms"});
  t.add_row({"conv1", "159.30"});
  t.add_row({"c2", "1.0"});
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("| layer | ms     |"), std::string::npos);
  EXPECT_NE(out.find("| conv1 | 159.30 |"), std::string::npos);
  EXPECT_NE(out.find("| c2    | 1.0    |"), std::string::npos);
}

TEST(TextTable, TitlePrinted) {
  TextTable t("Table II");
  t.set_header({"a"});
  t.add_row({"1"});
  EXPECT_EQ(t.to_ascii().rfind("Table II\n", 0), 0u);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(TextTable, SeparatorInsertsRule) {
  TextTable t;
  t.set_header({"a"});
  t.add_row({"x"});
  t.add_separator();
  t.add_row({"y"});
  const std::string out = t.to_ascii();
  // header rule + top + bottom + separator = 4 horizontal rules
  std::size_t rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+---", pos)) != std::string::npos;
       ++pos)
    ++rules;
  EXPECT_EQ(rules, 4u);
}

TEST(TextTable, MarkdownShape) {
  TextTable t;
  t.set_header({"k", "v"});
  t.add_row({"x", "1"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| k | v |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| x | 1 |"), std::string::npos);
}

TEST(TextTable, NumRows) {
  TextTable t;
  t.set_header({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
}

}  // namespace
}  // namespace chainnn
