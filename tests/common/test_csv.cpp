#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace chainnn {
namespace {

TEST(Csv, BasicEmission) {
  CsvWriter w({"a", "b"});
  w.add_row({"1", "2"});
  w.add_row({"3", "4"});
  EXPECT_EQ(w.to_string(), "a,b\n1,2\n3,4\n");
}

TEST(Csv, QuotesSpecialCells) {
  CsvWriter w({"x"});
  w.add_row({"has,comma"});
  w.add_row({"has\"quote"});
  w.add_row({"has\nnewline"});
  EXPECT_EQ(w.to_string(),
            "x\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(Csv, RejectsWrongWidth) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"1"}), std::logic_error);
}

TEST(Csv, WriteFileRoundTrip) {
  CsvWriter w({"h"});
  w.add_row({"v"});
  const std::string path = testing::TempDir() + "/chainnn_csv_test.csv";
  ASSERT_TRUE(w.write_file(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "h\nv\n");
}

}  // namespace
}  // namespace chainnn
