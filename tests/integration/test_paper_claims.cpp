// The paper's headline claims, checked against our models end to end.
#include <gtest/gtest.h>

#include "baseline/memory_centric.hpp"
#include "baseline/spatial_2d.hpp"
#include "dataflow/plan.hpp"
#include "dataflow/traffic.hpp"
#include "energy/area_model.hpp"
#include "energy/energy_model.hpp"
#include "nn/models.hpp"
#include "report/paper_constants.hpp"

namespace chainnn {
namespace {

TEST(PaperClaims, PeakThroughput806GopsAt700MHz) {
  const dataflow::ArrayShape array;
  EXPECT_NEAR(array.peak_ops_per_s() / 1e9, report::kPeakGops, 0.1);
}

TEST(PaperClaims, Utilization84To100ForMainstreamKernels) {
  // §III.B: "84-100% PE utilization ratio considering the mainstreaming
  // CNN parameters".
  const dataflow::ArrayShape array;
  for (const std::int64_t k : {3, 5, 7, 9, 11}) {
    const double eff = dataflow::utilization_row(array, k).efficiency;
    EXPECT_GE(eff, 0.84) << "K=" << k;
    EXPECT_LE(eff, 1.0) << "K=" << k;
  }
}

TEST(PaperClaims, EfficiencyAtLeast2_5xOverBaselines) {
  const energy::EnergyModel model = energy::EnergyModel::paper_calibrated();
  const energy::PowerBreakdown p =
      model.power(energy::paper_calibration_rates(), 700e6, 576);
  const double ours =
      energy::efficiency_gops_per_w(2.0 * 576 * 700e6, p.total());

  const baseline::MemoryCentricModel dadiannao;
  EXPECT_GE(ours / dadiannao.efficiency_gops_per_w(),
            report::kMinEfficiencyGain);

  const double eyeriss_scaled = energy::scale_efficiency_to_node(
      baseline::Spatial2dModel().config().published_efficiency_gops_per_w,
      65.0, 28.0);
  EXPECT_GE(ours / eyeriss_scaled, report::kMinEfficiencyGain - 0.1);
}

TEST(PaperClaims, CoreOnlyComparisonFig10) {
  // §V.D: DaDianNao's core-only efficiency (~3.0 TOPS/W) beats
  // Chain-NN's (~1.7 TOPS/W), but whole-chip Chain-NN wins 4x.
  const baseline::MemoryCentricModel dadiannao;
  const energy::EnergyModel model = energy::EnergyModel::paper_calibrated();
  const energy::PowerBreakdown p =
      model.power(energy::paper_calibration_rates(), 700e6, 576);
  const double our_core =
      energy::efficiency_gops_per_w(2.0 * 576 * 700e6, p.chain_w);
  const double our_total =
      energy::efficiency_gops_per_w(2.0 * 576 * 700e6, p.total());

  EXPECT_GT(dadiannao.core_only_efficiency_gops_per_w(), our_core);
  EXPECT_GT(our_total / dadiannao.efficiency_gops_per_w(), 3.5);
}

TEST(PaperClaims, IfmapReuseIsK2InsidePrimitives) {
  // §V.C: "ifmaps are reused K2 times averagely inside systolic
  // primitives": each streamed pixel feeds K2 MACs. Equivalently, MACs
  // per iMemory word must be ~K2 per resident kernel.
  const auto conv3 = nn::alexnet().conv_layers[2];
  const auto plan = dataflow::plan_layer(conv3, dataflow::ArrayShape{});
  const auto t = dataflow::model_traffic(plan, 1);
  const double words = static_cast<double>(t.imem_reads) / 2.0;
  const double macs = static_cast<double>(conv3.macs_per_image());
  const double macs_per_word_per_kernel =
      macs / words / static_cast<double>(plan.primitives);
  // (2K-1)/K streaming overhead and edge effects push it a bit under K².
  EXPECT_GT(macs_per_word_per_kernel, 0.5 * 9.0);
  EXPECT_LE(macs_per_word_per_kernel, 9.0 + 1e-9);
}

TEST(PaperClaims, KernelLoadOncePerBatchAmortizes) {
  // §V.B: "our architecture can benefit from a large batch size because
  // we just load kernels once per batch".
  const auto conv3 = nn::alexnet().conv_layers[2];
  const auto plan = dataflow::plan_layer(conv3, dataflow::ArrayShape{});
  const double f128 =
      128.0 / plan.seconds_per_batch(128);
  const double f4 = 4.0 / plan.seconds_per_batch(4);
  EXPECT_GT(f128, f4);  // larger batch -> higher fps
  const double load_share_128 =
      static_cast<double>(plan.kernel_load_cycles_per_batch()) /
      static_cast<double>(plan.cycles_per_batch(128));
  EXPECT_LT(load_share_128, 0.02);  // ~2% at batch 128 (Fig. 9: 1.23/58.4)
  const double load_share_4 =
      static_cast<double>(plan.kernel_load_cycles_per_batch()) /
      static_cast<double>(plan.cycles_per_batch(4));
  EXPECT_GT(load_share_4, 10.0 * load_share_128);
}

TEST(PaperClaims, GateCount3751k) {
  const energy::AreaModel area;
  EXPECT_NEAR(area.total_gates(576) / 1e3, report::kGateCountK, 1.0);
}

TEST(PaperClaims, MemoryHierarchyPowerShareSmall) {
  // §V.C: memory hierarchy (iMemory + oMemory) ~10.55% of chip power.
  const energy::EnergyModel model = energy::EnergyModel::paper_calibrated();
  const energy::PowerBreakdown p =
      model.power(energy::paper_calibration_rates(), 700e6, 576);
  EXPECT_NEAR(p.memory_hierarchy() / p.total(), 0.1055, 0.01);
}

}  // namespace
}  // namespace chainnn
