// Integration: small whole-network pipelines (conv on the chain, pooling
// and activation on the host) verified end to end against a float-model
// pipeline, plus plan coverage for every model-zoo layer.
#include <gtest/gtest.h>

#include "chain/accelerator.hpp"
#include "common/rng.hpp"
#include "fixed/quantize.hpp"
#include "nn/golden.hpp"
#include "nn/layers.hpp"
#include "nn/models.hpp"

namespace chainnn::chain {
namespace {

TEST(Networks, EveryZooLayerPlans) {
  const dataflow::ArrayShape array;
  for (const auto& net : nn::model_zoo()) {
    for (const auto& layer : net.conv_layers) {
      const auto plan = dataflow::plan_layer(layer, array);
      EXPECT_GE(plan.primitives, 1) << net.name << "/" << layer.name;
      EXPECT_GT(plan.cycles_per_image(), 0) << net.name << "/" << layer.name;
      EXPECT_GT(plan.utilization_per_image(), 0.0);
      EXPECT_LE(plan.utilization_per_image(), 1.0);
    }
  }
}

TEST(Networks, VggNeedsTwoChannelTiles) {
  const dataflow::ArrayShape array;
  const auto layers = nn::vgg16().conv_layers;
  // conv4_2: C=512 > 256 kMemory words per PE.
  const auto plan = dataflow::plan_layer(layers[8], array);
  EXPECT_EQ(plan.c_tiles, 2);
  // And oMemory caps resident kernels for the wide early layers.
  const auto p11 = dataflow::plan_layer(layers[0], array);
  EXPECT_LT(p11.primitives, 64);
}

// A LeNet-like two-conv pipeline, quantized and run on the chain with
// host pooling/ReLU, compared against the float pipeline.
TEST(Networks, TwoLayerPipelineTracksFloatModel) {
  nn::ConvLayerParams l1;
  l1.name = "conv1";
  l1.in_channels = 1;
  l1.out_channels = 4;
  l1.in_height = l1.in_width = 12;
  l1.kernel = 5;
  l1.validate();

  nn::ConvLayerParams l2;
  l2.name = "conv2";
  l2.in_channels = 4;
  l2.out_channels = 6;
  l2.in_height = l2.in_width = 4;  // after 2x2 pooling of 8x8
  l2.kernel = 3;
  l2.pad = 1;
  l2.validate();

  Rng rng(42);
  Tensor<float> x(Shape{1, 1, 12, 12});
  Tensor<float> w1(Shape{4, 1, 5, 5});
  Tensor<float> w2(Shape{6, 4, 3, 3});
  x.fill_random(rng, -1.0, 1.0);
  w1.fill_random(rng, -0.4, 0.4);
  w2.fill_random(rng, -0.4, 0.4);

  // --- float pipeline -----------------------------------------------------
  Tensor<float> f1 = nn::conv2d_float(l1, x, w1);
  nn::relu_inplace(f1);
  Tensor<float> fp = nn::max_pool(f1, nn::PoolParams{2, 2, 0});
  Tensor<float> f2 = nn::conv2d_float(l2, fp, w2);

  // --- fixed pipeline on the chain ----------------------------------------
  const fixed::FixedFormat fmt{8};
  auto quant = [&](const Tensor<float>& t) {
    const auto q = fixed::quantize(t.data(), fmt);
    return Tensor<std::int16_t>(t.shape(), q.raw);
  };
  AcceleratorConfig cfg;
  cfg.array.num_pes = 128;
  cfg.array.kmem_words_per_pe = 64;
  ChainAccelerator acc(cfg);

  const auto r1 = acc.run_layer(l1, quant(x), quant(w1));
  Tensor<std::int16_t> a1 = r1.ofmaps;
  nn::relu_inplace(a1);
  Tensor<std::int16_t> ap = nn::max_pool(a1, nn::PoolParams{2, 2, 0});
  const auto r2 = acc.run_layer(l2, ap, quant(w2));

  // Compare against float within quantization tolerance. Two conv layers
  // of ~25-36 taps each accumulate a few LSBs of rounding error.
  double worst = 0.0;
  for (std::int64_t i = 0; i < f2.num_elements(); ++i) {
    const double got =
        static_cast<double>(r2.ofmaps.at_flat(i)) / fmt.scale();
    worst = std::max(worst, std::abs(got - double{f2.at_flat(i)}));
  }
  EXPECT_LT(worst, 0.15);  // << signal range of ~8
}

TEST(Networks, Lenet1x1FinalLayerRuns) {
  const auto l = nn::lenet_mnist().conv_layers[3];  // 500->10, K=1
  Rng rng(7);
  Tensor<std::int16_t> x(Shape{1, l.in_channels, 1, 1});
  Tensor<std::int16_t> w(Shape{l.out_channels, l.in_channels, 1, 1});
  x.fill_random(rng, -32, 32);
  w.fill_random(rng, -8, 8);
  AcceleratorConfig cfg;  // default chain; c_tile limits to 256 channels
  ChainAccelerator acc(cfg);
  const auto res = acc.run_layer(l, x, w);
  EXPECT_EQ(res.accumulators, nn::conv2d_fixed_accum(l, x, w));
  EXPECT_EQ(res.plan.c_tiles, 2);  // 500 channels over 256-word kMemory
}

}  // namespace
}  // namespace chainnn::chain
