// Integration: AlexNet layers on the cycle-accurate chain at reduced
// spatial scale (full-size AlexNet runs live in the benches; these tests
// keep ctest fast while still covering every layer's parameter mix —
// stride 4, groups, channel counts — end to end against the golden model.
#include <gtest/gtest.h>

#include "chain/accelerator.hpp"
#include "common/rng.hpp"
#include "nn/golden.hpp"
#include "nn/models.hpp"

namespace chainnn::chain {
namespace {

// Shrinks a layer spatially (keeps kernel/stride/groups, trims channels).
nn::ConvLayerParams shrink(const nn::ConvLayerParams& p, std::int64_t hw,
                           std::int64_t c_div, std::int64_t m_div) {
  nn::ConvLayerParams q = p;
  q.in_height = q.in_width = hw;
  q.in_channels = std::max<std::int64_t>(p.groups, p.in_channels / c_div);
  q.out_channels = std::max<std::int64_t>(p.groups, p.out_channels / m_div);
  // Keep divisibility by groups.
  q.in_channels -= q.in_channels % q.groups;
  q.out_channels -= q.out_channels % q.groups;
  if (q.in_channels == 0) q.in_channels = q.groups;
  if (q.out_channels == 0) q.out_channels = q.groups;
  q.validate();
  return q;
}

class AlexNetLayer : public ::testing::TestWithParam<int> {};

TEST_P(AlexNetLayer, BitExactOnChain) {
  const int idx = GetParam();
  const auto full = nn::alexnet().conv_layers[static_cast<std::size_t>(idx)];
  // conv1 is 227x227; shrink to 27x27 (still exercises K=11, S=4).
  const std::int64_t hw = idx == 0 ? 27 : 15;
  const nn::ConvLayerParams p = shrink(full, hw, 8, 16);

  Rng rng(static_cast<std::uint64_t>(idx) + 100);
  Tensor<std::int16_t> x(Shape{1, p.in_channels, p.in_height, p.in_width});
  Tensor<std::int16_t> w(
      Shape{p.out_channels, p.channels_per_group(), p.kernel, p.kernel});
  x.fill_random(rng, -64, 64);
  w.fill_random(rng, -16, 16);

  AcceleratorConfig cfg;  // paper-default 576-PE chain
  ChainAccelerator acc(cfg);
  const LayerRunResult res = acc.run_layer(p, x, w);
  EXPECT_EQ(res.accumulators, nn::conv2d_fixed_accum(p, x, w))
      << p.to_string();
  EXPECT_EQ(res.stats.macs_performed, p.macs_total());
}

INSTANTIATE_TEST_SUITE_P(Layers, AlexNetLayer, ::testing::Range(0, 5));

TEST(AlexNetPlan, PaperScaleNumbers) {
  // Plan-level checks at FULL AlexNet scale (no simulation needed).
  const dataflow::ArrayShape array;
  const auto layers = nn::alexnet().conv_layers;

  // conv3: 64 primitives, 576 active PEs, 6 m-groups, channels fit.
  const auto p3 = dataflow::plan_layer(layers[2], array);
  EXPECT_EQ(p3.primitives, 64);
  EXPECT_EQ(p3.active_pes, 576);
  EXPECT_EQ(p3.m_groups, 6);
  EXPECT_EQ(p3.c_tile, 256);

  // conv2 (grouped): 23 primitives of 25 PEs, 12 m-groups.
  const auto p2 = dataflow::plan_layer(layers[1], array);
  EXPECT_EQ(p2.primitives, 23);
  EXPECT_EQ(p2.m_groups, 12);

  // conv1 (strided): phase-decomposed to 3x3-max primitives.
  const auto p1 = dataflow::plan_layer(layers[0], array);
  EXPECT_EQ(p1.taps, 9);
  EXPECT_EQ(p1.subconvs.size(), 16u);
  EXPECT_EQ(p1.row_block, 6);
}

TEST(AlexNetPlan, KernelResidencyNeverExceedsKmemory) {
  const dataflow::ArrayShape array;
  for (const auto& layer : nn::alexnet().conv_layers) {
    const auto plan = dataflow::plan_layer(layer, array);
    const auto n_subs = static_cast<std::int64_t>(plan.subconvs.size());
    EXPECT_LE(plan.c_tile * n_subs, array.kmem_words_per_pe)
        << layer.name;
  }
}

TEST(AlexNetPlan, OmemoryFootprintFits) {
  const dataflow::ArrayShape array;
  for (const auto& layer : nn::alexnet().conv_layers) {
    const auto plan = dataflow::plan_layer(layer, array);
    const std::int64_t words =
        plan.primitives * plan.row_block * layer.out_width();
    EXPECT_LE(words * 2, 25 * 1024) << layer.name;
  }
}

TEST(AlexNetPlan, TotalBatchTimeOrderOfPaper) {
  // Our schedule's AlexNet batch-128 conv time should land within ~35% of
  // the paper's total (our conv1 runs faster via phase decomposition,
  // conv2-5 slightly slower via explicit strip overheads).
  const dataflow::ArrayShape array;
  double total_ms = 0.0;
  for (const auto& layer : nn::alexnet().conv_layers) {
    const auto plan = dataflow::plan_layer(layer, array);
    total_ms += plan.seconds_per_batch(128) * 1e3;
  }
  EXPECT_GT(total_ms, 250.0);
  EXPECT_LT(total_ms, 530.0);  // paper: 393ms (Fig. 9 sum)
}

}  // namespace
}  // namespace chainnn::chain
