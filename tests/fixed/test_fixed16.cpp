#include "fixed/fixed16.hpp"

#include <gtest/gtest.h>

#include <cfenv>
#include <cmath>
#include <limits>

#include "common/rng.hpp"

namespace chainnn::fixed {
namespace {

TEST(FixedFormat, ScaleAndRange) {
  const FixedFormat q8{8};
  EXPECT_DOUBLE_EQ(q8.scale(), 256.0);
  EXPECT_DOUBLE_EQ(q8.resolution(), 1.0 / 256.0);
  EXPECT_DOUBLE_EQ(q8.max_value(), 32767.0 / 256.0);
  EXPECT_DOUBLE_EQ(q8.min_value(), -128.0);
  EXPECT_EQ(q8.to_string(), "Q7.8");
}

TEST(Fixed16, MultiplyIsExact32Bit) {
  EXPECT_EQ(Fixed16::multiply(Fixed16(32767), Fixed16(32767)),
            32767 * 32767);
  EXPECT_EQ(Fixed16::multiply(Fixed16(-32768), Fixed16(-32768)),
            std::int32_t{1073741824});
  EXPECT_EQ(Fixed16::multiply(Fixed16(-32768), Fixed16(32767)),
            -32768 * 32767);
  EXPECT_EQ(Fixed16::multiply(Fixed16(0), Fixed16(12345)), 0);
}

TEST(QuantizeScalar, ExactValuesRoundTrip) {
  const FixedFormat q8{8};
  EXPECT_EQ(quantize_scalar(1.0, q8, Rounding::kNearestEven,
                            Overflow::kSaturate),
            256);
  EXPECT_EQ(quantize_scalar(-0.5, q8, Rounding::kNearestEven,
                            Overflow::kSaturate),
            -128);
}

TEST(QuantizeScalar, SaturatesAndCounts) {
  const FixedFormat q8{8};
  NarrowingStats stats;
  EXPECT_EQ(quantize_scalar(1e6, q8, Rounding::kNearestEven,
                            Overflow::kSaturate, &stats),
            32767);
  EXPECT_EQ(quantize_scalar(-1e6, q8, Rounding::kNearestEven,
                            Overflow::kSaturate, &stats),
            -32768);
  EXPECT_EQ(stats.saturations, 2u);
  EXPECT_EQ(stats.count, 2u);
}

TEST(QuantizeScalar, RoundHalfToEven) {
  const FixedFormat q0{0};
  EXPECT_EQ(quantize_scalar(2.5, q0, Rounding::kNearestEven,
                            Overflow::kSaturate),
            2);
  EXPECT_EQ(quantize_scalar(3.5, q0, Rounding::kNearestEven,
                            Overflow::kSaturate),
            4);
  EXPECT_EQ(quantize_scalar(-2.5, q0, Rounding::kNearestEven,
                            Overflow::kSaturate),
            -2);
}

TEST(QuantizeScalar, NanQuantizesToZeroAndIsCounted) {
  // Regression: NaN used to survive nearbyint, fail both clamp
  // comparisons and reach the NaN -> int64 cast (undefined behaviour).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (const Rounding r :
       {Rounding::kNearestEven, Rounding::kNearestUp, Rounding::kTruncate}) {
    NarrowingStats stats;
    EXPECT_EQ(quantize_scalar(nan, FixedFormat{8}, r, Overflow::kSaturate,
                              &stats),
              0);
    EXPECT_EQ(stats.count, 1u);
    EXPECT_EQ(stats.invalids, 1u);
    EXPECT_EQ(stats.saturations, 0u);
    EXPECT_EQ(quantize_scalar(-nan, FixedFormat{8}, r, Overflow::kWrap), 0);
  }
}

TEST(QuantizeScalar, InfinitySaturatesCleanly) {
  const double inf = std::numeric_limits<double>::infinity();
  for (const Rounding r :
       {Rounding::kNearestEven, Rounding::kNearestUp, Rounding::kTruncate}) {
    NarrowingStats stats;
    EXPECT_EQ(quantize_scalar(inf, FixedFormat{8}, r, Overflow::kSaturate,
                              &stats),
              32767);
    EXPECT_EQ(quantize_scalar(-inf, FixedFormat{8}, r, Overflow::kSaturate,
                              &stats),
              -32768);
    EXPECT_EQ(stats.saturations, 2u);
    EXPECT_EQ(stats.invalids, 0u);
    // Non-finite inputs must not blow up the error telemetry.
    EXPECT_TRUE(std::isfinite(stats.max_abs_error));
    EXPECT_TRUE(std::isfinite(stats.sum_sq_error));
  }
}

TEST(QuantizeScalar, NearestEvenIgnoresFenvRoundingMode) {
  // Regression: kNearestEven used nearbyint, which honours the process
  // fenv — a caller under FE_DOWNWARD/FE_UPWARD changed every result.
  const FixedFormat q0{0};
  const int saved = std::fegetround();
  for (const int mode :
       {FE_DOWNWARD, FE_UPWARD, FE_TOWARDZERO, FE_TONEAREST}) {
    ASSERT_EQ(std::fesetround(mode), 0);
    EXPECT_EQ(quantize_scalar(2.5, q0, Rounding::kNearestEven,
                              Overflow::kSaturate),
              2)
        << "fenv mode " << mode;
    EXPECT_EQ(quantize_scalar(3.5, q0, Rounding::kNearestEven,
                              Overflow::kSaturate),
              4)
        << "fenv mode " << mode;
    EXPECT_EQ(quantize_scalar(-2.5, q0, Rounding::kNearestEven,
                              Overflow::kSaturate),
              -2)
        << "fenv mode " << mode;
    EXPECT_EQ(quantize_scalar(0.3, FixedFormat{8}, Rounding::kNearestEven,
                              Overflow::kSaturate),
              77)  // 76.8 rounds to 77 regardless of fenv
        << "fenv mode " << mode;
  }
  std::fesetround(saved);
}

TEST(NarrowingStats, MergeCombinesInvalids) {
  NarrowingStats a, b;
  a.invalids = 2;
  b.invalids = 3;
  a.merge(b);
  EXPECT_EQ(a.invalids, 5u);
}

TEST(QuantizeScalar, TruncateIsFloor) {
  const FixedFormat q0{0};
  EXPECT_EQ(
      quantize_scalar(2.9, q0, Rounding::kTruncate, Overflow::kSaturate), 2);
  EXPECT_EQ(
      quantize_scalar(-2.1, q0, Rounding::kTruncate, Overflow::kSaturate),
      -3);
}

TEST(QuantizeScalar, ErrorBoundedByHalfLsb) {
  const FixedFormat q8{8};
  Rng rng(3);
  NarrowingStats stats;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-100.0, 100.0);
    (void)quantize_scalar(v, q8, Rounding::kNearestEven, Overflow::kSaturate,
                          &stats);
  }
  EXPECT_EQ(stats.saturations, 0u);
  EXPECT_LE(stats.max_abs_error, 0.5 / 256.0 + 1e-12);
}

TEST(ShiftRightRounded, NearestEvenTies) {
  EXPECT_EQ(shift_right_rounded(6, 2, Rounding::kNearestEven), 2);   // 1.5->2
  EXPECT_EQ(shift_right_rounded(10, 2, Rounding::kNearestEven), 2);  // 2.5->2
  EXPECT_EQ(shift_right_rounded(14, 2, Rounding::kNearestEven), 4);  // 3.5->4
}

TEST(ShiftRightRounded, TruncateIsArithmeticShift) {
  EXPECT_EQ(shift_right_rounded(-1, 4, Rounding::kTruncate), -1);
  EXPECT_EQ(shift_right_rounded(-17, 4, Rounding::kTruncate), -2);
  EXPECT_EQ(shift_right_rounded(17, 4, Rounding::kTruncate), 1);
}

TEST(ShiftRightRounded, NegativeShiftIsLeftShift) {
  EXPECT_EQ(shift_right_rounded(3, -4, Rounding::kNearestEven), 48);
}

TEST(ShiftRightRounded, HugeShiftGoesToSignExtension) {
  EXPECT_EQ(shift_right_rounded(12345, 63, Rounding::kTruncate), 0);
  EXPECT_EQ(shift_right_rounded(-12345, 63, Rounding::kTruncate), -1);
}

TEST(Accumulator48, MacAccumulates) {
  Accumulator48 acc;
  acc.mac(Fixed16(256), Fixed16(256));  // 1.0 * 1.0 in Q8.8
  acc.mac(Fixed16(256), Fixed16(128));  // + 0.5
  EXPECT_EQ(acc.value(), 256 * 256 + 256 * 128);
  EXPECT_FALSE(acc.saturated());
}

TEST(Accumulator48, SaturatesAtBounds) {
  Accumulator48 acc(Accumulator48::kMax - 5);
  acc.add(100);
  EXPECT_EQ(acc.value(), Accumulator48::kMax);
  EXPECT_TRUE(acc.saturated());

  Accumulator48 neg(Accumulator48::kMin + 5);
  neg.add(-100);
  EXPECT_EQ(neg.value(), Accumulator48::kMin);
  EXPECT_TRUE(neg.saturated());
}

TEST(Accumulator48, MergePropagatesSaturation) {
  Accumulator48 a(10);
  Accumulator48 b(Accumulator48::kMax);
  b.add(1);
  ASSERT_TRUE(b.saturated());
  a.add(b);
  EXPECT_TRUE(a.saturated());
}

TEST(Accumulator48, NarrowToOutputFormat) {
  // 3.0 in Q8.8*Q8.8 product domain (2^16 scale) -> Q7.8 output.
  Accumulator48 acc(3 * 65536);
  const std::int16_t out = acc.narrow(FixedFormat{8}, FixedFormat{8},
                                      Rounding::kNearestEven,
                                      Overflow::kSaturate);
  EXPECT_EQ(out, 3 * 256);
}

TEST(NarrowToFixed16, MixedFormats) {
  // ifmap Q4, kernel Q10 -> acc has 14 frac bits; value 2.25.
  const std::int64_t acc = static_cast<std::int64_t>(2.25 * (1 << 14));
  EXPECT_EQ(narrow_to_fixed16(acc, 14, FixedFormat{8},
                              Rounding::kNearestEven, Overflow::kSaturate),
            static_cast<std::int16_t>(2.25 * 256));
}

TEST(NarrowToFixed16, SaturationCounted) {
  NarrowingStats stats;
  (void)narrow_to_fixed16(std::int64_t{1} << 40, 16, FixedFormat{8},
                          Rounding::kNearestEven, Overflow::kSaturate,
                          &stats);
  EXPECT_EQ(stats.saturations, 1u);
}

TEST(NarrowToFixed16, WrapMode) {
  // 0x18000 >> 0 with wrap keeps low 16 bits: 0x8000 -> -32768.
  EXPECT_EQ(narrow_to_fixed16(0x18000, 0, FixedFormat{0},
                              Rounding::kTruncate, Overflow::kWrap),
            std::int16_t{-32768});
}

TEST(NarrowingStats, MergeCombines) {
  NarrowingStats a, b;
  a.count = 2;
  a.saturations = 1;
  a.max_abs_error = 0.5;
  a.sum_sq_error = 1.0;
  b.count = 3;
  b.max_abs_error = 0.75;
  b.sum_sq_error = 0.5;
  a.merge(b);
  EXPECT_EQ(a.count, 5u);
  EXPECT_EQ(a.saturations, 1u);
  EXPECT_DOUBLE_EQ(a.max_abs_error, 0.75);
  EXPECT_DOUBLE_EQ(a.sum_sq_error, 1.5);
  EXPECT_DOUBLE_EQ(a.mean_sq_error(), 0.3);
}

// Property: narrowing then reconstructing stays within half an output LSB
// whenever no saturation occurs (swept over formats).
class NarrowProperty : public ::testing::TestWithParam<int> {};

TEST_P(NarrowProperty, ErrorWithinHalfLsb) {
  const int out_frac = GetParam();
  const FixedFormat out{out_frac};
  Rng rng(100 + out_frac);
  for (int i = 0; i < 200; ++i) {
    const int acc_frac = 16;
    const double v = rng.uniform(out.min_value() * 0.9,
                                 out.max_value() * 0.9);
    const auto acc = static_cast<std::int64_t>(
        std::llround(v * std::pow(2.0, acc_frac)));
    NarrowingStats stats;
    const std::int16_t raw = narrow_to_fixed16(
        acc, acc_frac, out, Rounding::kNearestEven, Overflow::kSaturate,
        &stats);
    EXPECT_EQ(stats.saturations, 0u);
    const double back = static_cast<double>(raw) / out.scale();
    const double exact = static_cast<double>(acc) / std::pow(2.0, acc_frac);
    EXPECT_LE(std::fabs(back - exact), 0.5 / out.scale() + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, NarrowProperty,
                         ::testing::Values(0, 4, 8, 12, 15));

}  // namespace
}  // namespace chainnn::fixed
