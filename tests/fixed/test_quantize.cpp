#include "fixed/quantize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.hpp"

namespace chainnn::fixed {
namespace {

TEST(ChooseFormat, PicksLargestFittingFracBits) {
  const std::vector<float> small = {0.1f, -0.2f, 0.05f};
  EXPECT_EQ(choose_format(small, FormatPolicy::kMaxAbs).frac_bits, 15);

  const std::vector<float> ones = {1.0f, -0.5f};
  // Q1.14 max = 32767/16384 = 1.99994 covers 1.0.
  EXPECT_EQ(choose_format(ones, FormatPolicy::kMaxAbs).frac_bits, 14);

  const std::vector<float> big = {100.0f};
  // Needs max >= 100: frac 8 gives 127.996.
  EXPECT_EQ(choose_format(big, FormatPolicy::kMaxAbs).frac_bits, 8);
}

TEST(ChooseFormat, AllZeroGetsMaxPrecision) {
  const std::vector<float> zeros(10, 0.0f);
  EXPECT_EQ(choose_format(zeros, FormatPolicy::kMaxAbs).frac_bits, 15);
}

TEST(ChooseFormat, FixedPolicyAlwaysQ8) {
  const std::vector<float> big = {1000.0f};
  EXPECT_EQ(choose_format(big, FormatPolicy::kFixedQ8_8).frac_bits, 8);
}

TEST(ChooseFormat, NanIgnoredDeterministically) {
  // Regression: the max-abs scan fed NaN through std::max, whose result
  // depends on argument order when a comparison involves NaN. NaN must
  // contribute no magnitude regardless of where it sits in the tensor.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const std::vector<float> leading = {nan, 1.0f, -0.5f};
  const std::vector<float> trailing = {1.0f, -0.5f, nan};
  const std::vector<float> interleaved = {1.0f, nan, -0.5f, nan};
  const std::vector<float> clean = {1.0f, -0.5f};
  const FixedFormat expect = choose_format(clean, FormatPolicy::kMaxAbs);
  EXPECT_EQ(choose_format(leading, FormatPolicy::kMaxAbs), expect);
  EXPECT_EQ(choose_format(trailing, FormatPolicy::kMaxAbs), expect);
  EXPECT_EQ(choose_format(interleaved, FormatPolicy::kMaxAbs), expect);

  FormatScanStats scan;
  EXPECT_EQ(choose_format(interleaved, FormatPolicy::kMaxAbs, &scan), expect);
  EXPECT_EQ(scan.nan_count, 2u);
  EXPECT_EQ(scan.inf_count, 0u);
  EXPECT_DOUBLE_EQ(scan.max_abs, 1.0);
}

TEST(ChooseFormat, AllNanBehavesLikeAllZero) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const std::vector<float> nans = {nan, nan, nan};
  EXPECT_EQ(choose_format(nans, FormatPolicy::kMaxAbs).frac_bits, 15);
}

TEST(ChooseFormat, InfinityForcesWidestRange) {
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<float> values = {0.25f, -inf, 0.5f};
  FormatScanStats scan;
  EXPECT_EQ(choose_format(values, FormatPolicy::kMaxAbs, &scan).frac_bits,
            0);
  EXPECT_EQ(scan.inf_count, 1u);
}

TEST(QuantizeAuto, NanTensorIsDeterministic) {
  // End to end: a tensor with NaN holes quantizes the same raw words in
  // any scan order, the NaNs land as 0 and are reported as invalids.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const std::vector<float> values = {nan, 0.75f, -0.25f, nan, 0.5f};
  const QuantizedTensor q = quantize_auto(values);
  EXPECT_EQ(q.format.frac_bits, 15);
  EXPECT_EQ(q.raw[0], 0);
  EXPECT_EQ(q.raw[3], 0);
  EXPECT_EQ(q.stats.invalids, 2u);
  EXPECT_EQ(q.stats.count, values.size());
}

TEST(Quantize, NoSaturationUnderChosenFormat) {
  Rng rng(5);
  std::vector<float> values(1000);
  for (auto& v : values)
    v = static_cast<float>(rng.gaussian(0.0, 3.0));
  const QuantizedTensor q = quantize_auto(values);
  EXPECT_EQ(q.stats.saturations, 0u);
  EXPECT_EQ(q.raw.size(), values.size());
}

TEST(Quantize, DequantizeRoundTripsWithinLsb) {
  std::vector<float> values = {0.25f, -1.75f, 3.125f};
  const QuantizedTensor q = quantize_auto(values);
  const std::vector<double> back = dequantize(q.raw, q.format);
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_NEAR(back[i], values[i], q.format.resolution() / 2 + 1e-9);
}

TEST(Quantize, ExactlyRepresentableValuesAreExact) {
  // Powers of two are exact in any format that can hold them.
  std::vector<float> values = {0.5f, 1.0f, 2.0f, -4.0f};
  const QuantizedTensor q = quantize(values, FixedFormat{10});
  const std::vector<double> back = dequantize(q.raw, q.format);
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_DOUBLE_EQ(back[i], values[i]);
  EXPECT_DOUBLE_EQ(q.stats.max_abs_error, 0.0);
}

TEST(Sqnr, InfiniteForExactSignal) {
  std::vector<float> values = {1.0f, -2.0f};
  const QuantizedTensor q = quantize(values, FixedFormat{8});
  EXPECT_TRUE(std::isinf(sqnr_db(values, q.raw, q.format)));
}

TEST(Sqnr, Around16BitTheoreticalForGaussian) {
  // 16-bit quantization of a well-scaled signal should land way above
  // 60 dB (6.02 dB/bit rule of thumb; headroom costs a few bits).
  Rng rng(6);
  std::vector<float> values(20000);
  for (auto& v : values)
    v = static_cast<float>(rng.gaussian(0.0, 1.0));
  const QuantizedTensor q = quantize_auto(values);
  const double db = sqnr_db(values, q.raw, q.format);
  EXPECT_GT(db, 60.0);
  EXPECT_LT(db, 110.0);
}

TEST(Sqnr, MismatchedSizesRejected) {
  std::vector<float> ref = {1.0f};
  std::vector<std::int16_t> raw = {1, 2};
  EXPECT_THROW((void)sqnr_db(ref, raw, FixedFormat{8}), std::logic_error);
}

// Property sweep: for every format, quantization error is bounded by half
// an LSB for in-range data.
class QuantizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantizeSweep, ErrorBound) {
  const FixedFormat fmt{GetParam()};
  Rng rng(50 + GetParam());
  std::vector<float> values(500);
  for (auto& v : values)
    v = static_cast<float>(
        rng.uniform(fmt.min_value() * 0.95, fmt.max_value() * 0.95));
  const QuantizedTensor q = quantize(values, fmt);
  EXPECT_EQ(q.stats.saturations, 0u);
  EXPECT_LE(q.stats.max_abs_error, fmt.resolution() / 2 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Formats, QuantizeSweep,
                         ::testing::Values(0, 2, 5, 8, 11, 15));

}  // namespace
}  // namespace chainnn::fixed
