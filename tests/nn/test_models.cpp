#include "nn/models.hpp"

#include <gtest/gtest.h>

namespace chainnn::nn {
namespace {

TEST(Models, AlexNetHasFiveConvLayers) {
  const NetworkModel net = alexnet();
  ASSERT_EQ(net.conv_layers.size(), 5u);
  for (const auto& l : net.conv_layers) l.validate();
}

TEST(Models, AlexNetMacsMatchPaper666M) {
  // §V.B: "totally 666 millions of MACs per 227x227 input image".
  const std::int64_t macs = alexnet().macs_per_image();
  EXPECT_EQ(macs, 665784864);  // rounds to 666M
  EXPECT_NEAR(static_cast<double>(macs) / 1e6, 666.0, 1.0);
}

TEST(Models, AlexNetLayerGeometry) {
  const auto layers = alexnet().conv_layers;
  EXPECT_EQ(layers[0].out_height(), 55);  // conv1: 227, K11, S4
  EXPECT_EQ(layers[1].out_height(), 27);  // conv2: 27 + pad 2, K5
  EXPECT_EQ(layers[2].out_height(), 13);
  EXPECT_EQ(layers[3].out_height(), 13);
  EXPECT_EQ(layers[4].out_height(), 13);
  EXPECT_EQ(layers[1].groups, 2);
  EXPECT_EQ(layers[3].groups, 2);
  EXPECT_EQ(layers[4].groups, 2);
  EXPECT_EQ(layers[0].kernel, 11);
  EXPECT_EQ(layers[1].kernel, 5);
  EXPECT_EQ(layers[2].kernel, 3);
}

TEST(Models, AlexNetKernelWordCounts) {
  // These drive the Fig. 9 kernel-load times (1 word/cycle).
  const auto layers = alexnet().conv_layers;
  EXPECT_EQ(layers[0].weight_count(), 34848);    // 96*3*121
  EXPECT_EQ(layers[1].weight_count(), 307200);   // 256*48*25
  EXPECT_EQ(layers[2].weight_count(), 884736);   // 384*256*9
  EXPECT_EQ(layers[3].weight_count(), 663552);   // 384*192*9
  EXPECT_EQ(layers[4].weight_count(), 442368);   // 256*192*9
}

TEST(Models, Vgg16ThirteenLayersAllK3) {
  const NetworkModel net = vgg16();
  ASSERT_EQ(net.conv_layers.size(), 13u);
  for (const auto& l : net.conv_layers) {
    l.validate();
    EXPECT_EQ(l.kernel, 3);
    EXPECT_EQ(l.stride, 1);
    EXPECT_EQ(l.pad, 1);
    EXPECT_EQ(l.out_height(), l.in_height);  // same-padding
  }
  // VGG-16 conv MACs ~ 15.3 GMAC per 224x224 image.
  EXPECT_NEAR(static_cast<double>(net.macs_per_image()) / 1e9, 15.3, 0.3);
}

TEST(Models, LenetShapesChain) {
  const NetworkModel net = lenet_mnist();
  ASSERT_EQ(net.conv_layers.size(), 4u);
  EXPECT_EQ(net.conv_layers[0].out_height(), 24);
  EXPECT_EQ(net.conv_layers[1].out_height(), 8);
  EXPECT_EQ(net.conv_layers[2].out_height(), 1);
  EXPECT_EQ(net.conv_layers[3].kernel, 1);
  for (const auto& l : net.conv_layers) l.validate();
}

TEST(Models, Cifar10Shapes) {
  const NetworkModel net = cifar10_quick();
  ASSERT_EQ(net.conv_layers.size(), 3u);
  for (const auto& l : net.conv_layers) {
    l.validate();
    EXPECT_EQ(l.kernel, 5);
  }
}

TEST(Models, ZooContainsAllFour) {
  const auto zoo = model_zoo();
  ASSERT_EQ(zoo.size(), 4u);
  EXPECT_EQ(zoo[0].name, "lenet");
  EXPECT_EQ(zoo[3].name, "vgg16");
}

TEST(Models, LookupByName) {
  EXPECT_EQ(model_by_name("alexnet").name, "alexnet");
  EXPECT_EQ(model_by_name("mnist").name, "lenet");
  EXPECT_EQ(model_by_name("cifar").name, "cifar10");
  EXPECT_THROW((void)model_by_name("resnet"), std::logic_error);
}

}  // namespace
}  // namespace chainnn::nn
