#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace chainnn::nn {
namespace {

TEST(Relu, ClampsNegatives) {
  Tensor<float> t(Shape{4}, 0.0f);
  t.at_flat(0) = -1.5f;
  t.at_flat(1) = 2.0f;
  t.at_flat(2) = -0.0f;
  t.at_flat(3) = 0.25f;
  relu_inplace(t);
  EXPECT_FLOAT_EQ(t.at_flat(0), 0.0f);
  EXPECT_FLOAT_EQ(t.at_flat(1), 2.0f);
  EXPECT_FLOAT_EQ(t.at_flat(2), 0.0f);
  EXPECT_FLOAT_EQ(t.at_flat(3), 0.25f);
}

TEST(Relu, FixedPointVariant) {
  Tensor<std::int16_t> t(Shape{3});
  t.at_flat(0) = -300;
  t.at_flat(1) = 300;
  t.at_flat(2) = 0;
  relu_inplace(t);
  EXPECT_EQ(t.at_flat(0), 0);
  EXPECT_EQ(t.at_flat(1), 300);
  EXPECT_EQ(t.at_flat(2), 0);
}

TEST(MaxPool, TwoByTwo) {
  Tensor<float> in(Shape{1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i)
    in.at_flat(i) = static_cast<float>(i);
  const PoolParams p{2, 2, 0};
  const Tensor<float> out = max_pool(in, p);
  ASSERT_EQ(out.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 1), 7.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 0), 13.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1, 1), 15.0f);
}

TEST(MaxPool, OverlappingAlexNetStyle) {
  // AlexNet pools 3x3 stride 2: 55 -> 27.
  Tensor<float> in(Shape{1, 1, 55, 55}, 1.0f);
  const PoolParams p{3, 2, 0};
  const Tensor<float> out = max_pool(in, p);
  EXPECT_EQ(out.shape(), Shape({1, 1, 27, 27}));
}

TEST(MaxPool, NegativeValuesSurvivePadding) {
  // All-negative input with padding: max must pick the real (negative)
  // values, not a zero injected by padding.
  Tensor<float> in(Shape{1, 1, 2, 2}, -5.0f);
  const PoolParams p{3, 2, 1};
  const Tensor<float> out = max_pool(in, p);
  for (std::int64_t i = 0; i < out.num_elements(); ++i)
    EXPECT_FLOAT_EQ(out.at_flat(i), -5.0f);
}

TEST(MaxPool, FixedPointMatchesFloatOrdering) {
  Rng rng(4);
  Tensor<std::int16_t> in(Shape{1, 2, 6, 6});
  in.fill_random(rng, -1000, 1000);
  const PoolParams p{2, 2, 0};
  const Tensor<std::int16_t> out = max_pool(in, p);
  // Spot-check one window.
  const std::int16_t expect = std::max(
      std::max(in.at(0, 1, 2, 2), in.at(0, 1, 2, 3)),
      std::max(in.at(0, 1, 3, 2), in.at(0, 1, 3, 3)));
  EXPECT_EQ(out.at(0, 1, 1, 1), expect);
}

TEST(AvgPool, UniformInput) {
  Tensor<float> in(Shape{1, 1, 4, 4}, 2.0f);
  const PoolParams p{2, 2, 0};
  const Tensor<float> out = avg_pool(in, p);
  for (std::int64_t i = 0; i < out.num_elements(); ++i)
    EXPECT_FLOAT_EQ(out.at_flat(i), 2.0f);
}

TEST(AvgPool, PaddingDilutes) {
  // One-pixel input, 2x2 window with pad 1: corner windows hold the pixel
  // plus three pad zeros -> value/4.
  Tensor<float> in(Shape{1, 1, 1, 1}, 4.0f);
  const PoolParams p{2, 1, 1};
  const Tensor<float> out = avg_pool(in, p);
  ASSERT_EQ(out.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 1.0f);
}

TEST(Lrn, UnitInputScalesDown) {
  Tensor<float> in(Shape{1, 5, 2, 2}, 1.0f);
  const Tensor<float> out =
      lrn_across_channels(in, 5, 1e-4, 0.75, 2.0);
  // denom = (2 + 1e-4/5 * sumsq)^0.75 with sumsq <= 5.
  for (std::int64_t i = 0; i < out.num_elements(); ++i) {
    EXPECT_GT(out.at_flat(i), 0.5f);
    EXPECT_LT(out.at_flat(i), 1.0f);
  }
}

TEST(Lrn, ChannelWindowClipped) {
  // Single channel: neighbourhood contains just itself.
  Tensor<float> in(Shape{1, 1, 1, 1}, 3.0f);
  const Tensor<float> out = lrn_across_channels(in, 5, 0.0, 0.75, 1.0);
  EXPECT_FLOAT_EQ(out.at_flat(0), 3.0f);  // alpha=0 -> denom=1
}

TEST(PoolParams, OutSize) {
  const PoolParams p{3, 2, 0};
  EXPECT_EQ(p.out_size(55), 27);
  EXPECT_EQ(p.out_size(13), 6);
}

}  // namespace
}  // namespace chainnn::nn
