#include "nn/golden.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fixed/quantize.hpp"

namespace chainnn::nn {
namespace {

ConvLayerParams tiny() {
  ConvLayerParams p;
  p.name = "tiny";
  p.in_channels = 1;
  p.out_channels = 1;
  p.in_height = p.in_width = 4;
  p.kernel = 3;
  return p;
}

TEST(GoldenFloat, HandComputed3x3) {
  const ConvLayerParams p = tiny();
  Tensor<float> x(Shape{1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i)
    x.at_flat(i) = static_cast<float>(i);
  Tensor<float> w(Shape{1, 1, 3, 3}, 1.0f);  // box filter
  const Tensor<float> y = conv2d_float(p, x, w);
  ASSERT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  // Sum of the 3x3 window starting at (0,0): rows 0-2, cols 0-2.
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 0 + 1 + 2 + 4 + 5 + 6 + 8 + 9 + 10);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 5 + 6 + 7 + 9 + 10 + 11 + 13 + 14 + 15);
}

TEST(GoldenFloat, IdentityKernelReproducesInput) {
  ConvLayerParams p = tiny();
  p.pad = 1;
  Rng rng(1);
  Tensor<float> x(Shape{1, 1, 4, 4});
  x.fill_random(rng, -1.0, 1.0);
  Tensor<float> w(Shape{1, 1, 3, 3}, 0.0f);
  w.at(0, 0, 1, 1) = 1.0f;  // centre tap
  const Tensor<float> y = conv2d_float(p, x, w);
  ASSERT_EQ(y.shape(), x.shape());
  EXPECT_DOUBLE_EQ(max_abs_diff(x, y), 0.0);
}

TEST(GoldenFloat, BiasAdded) {
  const ConvLayerParams p = tiny();
  Tensor<float> x(Shape{1, 1, 4, 4}, 0.0f);
  Tensor<float> w(Shape{1, 1, 3, 3}, 1.0f);
  Tensor<float> bias(Shape{1}, 2.5f);
  const Tensor<float> y = conv2d_float(p, x, w, &bias);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 2.5f);
}

TEST(GoldenFloat, StrideSkipsPositions) {
  ConvLayerParams p = tiny();
  p.in_height = p.in_width = 5;
  p.stride = 2;
  Tensor<float> x(Shape{1, 1, 5, 5});
  for (std::int64_t i = 0; i < 25; ++i)
    x.at_flat(i) = static_cast<float>(i);
  Tensor<float> w(Shape{1, 1, 3, 3}, 0.0f);
  w.at(0, 0, 0, 0) = 1.0f;  // top-left tap picks x[oy*2][ox*2]
  const Tensor<float> y = conv2d_float(p, x, w);
  ASSERT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 2.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 0), 10.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 12.0f);
}

TEST(GoldenFloat, GroupsIsolateChannels) {
  ConvLayerParams p = tiny();
  p.in_channels = 2;
  p.out_channels = 2;
  p.groups = 2;
  Tensor<float> x(Shape{1, 2, 4, 4}, 0.0f);
  // Put energy only in channel 1.
  for (std::int64_t r = 0; r < 4; ++r)
    for (std::int64_t c = 0; c < 4; ++c) x.at(0, 1, r, c) = 1.0f;
  Tensor<float> w(Shape{2, 1, 3, 3}, 1.0f);
  const Tensor<float> y = conv2d_float(p, x, w);
  // Output channel 0 reads only input channel 0 (all zero).
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 0, 0), 9.0f);
}

TEST(GoldenFixed, MatchesFloatForExactValues) {
  // Integer-valued data in Q8.8 is exact, so fixed and float agree.
  ConvLayerParams p = tiny();
  p.in_channels = 2;
  Rng rng(2);
  Tensor<std::int16_t> x(Shape{1, 2, 4, 4});
  Tensor<std::int16_t> w(Shape{1, 2, 3, 3});
  x.fill_random(rng, -4 * 256, 4 * 256);
  w.fill_random(rng, -256, 256);

  const fixed::FixedFormat q8{8};
  const FixedConvResult res =
      conv2d_fixed(p, x, w, q8, q8, q8, nullptr, fixed::Rounding::kNearestEven);

  Tensor<float> xf(Shape{1, 2, 4, 4});
  Tensor<float> wf(Shape{1, 2, 3, 3});
  for (std::int64_t i = 0; i < x.num_elements(); ++i)
    xf.at_flat(i) = static_cast<float>(x.at_flat(i)) / 256.0f;
  for (std::int64_t i = 0; i < w.num_elements(); ++i)
    wf.at_flat(i) = static_cast<float>(w.at_flat(i)) / 256.0f;
  const Tensor<float> yf = conv2d_float(p, xf, wf);

  for (std::int64_t i = 0; i < yf.num_elements(); ++i) {
    const double got =
        static_cast<double>(res.ofmaps.at_flat(i)) / 256.0;
    EXPECT_NEAR(got, yf.at_flat(i), 0.5 / 256.0 + 1e-9);
  }
}

TEST(GoldenFixed, AccumulatorIsExactProductSum) {
  const ConvLayerParams p = tiny();
  Tensor<std::int16_t> x(Shape{1, 1, 4, 4}, std::int16_t{3});
  Tensor<std::int16_t> w(Shape{1, 1, 3, 3}, std::int16_t{-2});
  const Tensor<std::int64_t> acc = conv2d_fixed_accum(p, x, w);
  for (std::int64_t i = 0; i < acc.num_elements(); ++i)
    EXPECT_EQ(acc.at_flat(i), 9 * 3 * -2);
}

TEST(GoldenFixed, BiasAlignedBeforeNarrow) {
  const ConvLayerParams p = tiny();
  Tensor<std::int16_t> x(Shape{1, 1, 4, 4}, std::int16_t{0});
  Tensor<std::int16_t> w(Shape{1, 1, 3, 3}, std::int16_t{0});
  Tensor<std::int16_t> bias(Shape{1}, std::int16_t{77});
  const fixed::FixedFormat q8{8};
  const FixedConvResult res = conv2d_fixed(p, x, w, q8, q8, q8, &bias);
  for (std::int64_t i = 0; i < res.ofmaps.num_elements(); ++i)
    EXPECT_EQ(res.ofmaps.at_flat(i), 77);
}

TEST(GoldenFixed, NarrowingSaturationReported) {
  const ConvLayerParams p = tiny();
  Tensor<std::int16_t> x(Shape{1, 1, 4, 4}, std::int16_t{32767});
  Tensor<std::int16_t> w(Shape{1, 1, 3, 3}, std::int16_t{32767});
  const fixed::FixedFormat q8{8};
  const FixedConvResult res = conv2d_fixed(p, x, w, q8, q8, q8);
  EXPECT_GT(res.narrowing.saturations, 0u);
  for (std::int64_t i = 0; i < res.ofmaps.num_elements(); ++i)
    EXPECT_EQ(res.ofmaps.at_flat(i), 32767);
}

}  // namespace
}  // namespace chainnn::nn
