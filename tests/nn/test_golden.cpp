#include "nn/golden.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fixed/quantize.hpp"

namespace chainnn::nn {
namespace {

ConvLayerParams tiny() {
  ConvLayerParams p;
  p.name = "tiny";
  p.in_channels = 1;
  p.out_channels = 1;
  p.in_height = p.in_width = 4;
  p.kernel = 3;
  return p;
}

TEST(GoldenFloat, HandComputed3x3) {
  const ConvLayerParams p = tiny();
  Tensor<float> x(Shape{1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i)
    x.at_flat(i) = static_cast<float>(i);
  Tensor<float> w(Shape{1, 1, 3, 3}, 1.0f);  // box filter
  const Tensor<float> y = conv2d_float(p, x, w);
  ASSERT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  // Sum of the 3x3 window starting at (0,0): rows 0-2, cols 0-2.
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 0 + 1 + 2 + 4 + 5 + 6 + 8 + 9 + 10);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 5 + 6 + 7 + 9 + 10 + 11 + 13 + 14 + 15);
}

TEST(GoldenFloat, IdentityKernelReproducesInput) {
  ConvLayerParams p = tiny();
  p.pad = 1;
  Rng rng(1);
  Tensor<float> x(Shape{1, 1, 4, 4});
  x.fill_random(rng, -1.0, 1.0);
  Tensor<float> w(Shape{1, 1, 3, 3}, 0.0f);
  w.at(0, 0, 1, 1) = 1.0f;  // centre tap
  const Tensor<float> y = conv2d_float(p, x, w);
  ASSERT_EQ(y.shape(), x.shape());
  EXPECT_DOUBLE_EQ(max_abs_diff(x, y), 0.0);
}

TEST(GoldenFloat, BiasAdded) {
  const ConvLayerParams p = tiny();
  Tensor<float> x(Shape{1, 1, 4, 4}, 0.0f);
  Tensor<float> w(Shape{1, 1, 3, 3}, 1.0f);
  Tensor<float> bias(Shape{1}, 2.5f);
  const Tensor<float> y = conv2d_float(p, x, w, &bias);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 2.5f);
}

TEST(GoldenFloat, StrideSkipsPositions) {
  ConvLayerParams p = tiny();
  p.in_height = p.in_width = 5;
  p.stride = 2;
  Tensor<float> x(Shape{1, 1, 5, 5});
  for (std::int64_t i = 0; i < 25; ++i)
    x.at_flat(i) = static_cast<float>(i);
  Tensor<float> w(Shape{1, 1, 3, 3}, 0.0f);
  w.at(0, 0, 0, 0) = 1.0f;  // top-left tap picks x[oy*2][ox*2]
  const Tensor<float> y = conv2d_float(p, x, w);
  ASSERT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 1), 2.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 0), 10.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 12.0f);
}

TEST(GoldenFloat, GroupsIsolateChannels) {
  ConvLayerParams p = tiny();
  p.in_channels = 2;
  p.out_channels = 2;
  p.groups = 2;
  Tensor<float> x(Shape{1, 2, 4, 4}, 0.0f);
  // Put energy only in channel 1.
  for (std::int64_t r = 0; r < 4; ++r)
    for (std::int64_t c = 0; c < 4; ++c) x.at(0, 1, r, c) = 1.0f;
  Tensor<float> w(Shape{2, 1, 3, 3}, 1.0f);
  const Tensor<float> y = conv2d_float(p, x, w);
  // Output channel 0 reads only input channel 0 (all zero).
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 0, 0), 9.0f);
}

TEST(GoldenFixed, MatchesFloatForExactValues) {
  // Integer-valued data in Q8.8 is exact, so fixed and float agree.
  ConvLayerParams p = tiny();
  p.in_channels = 2;
  Rng rng(2);
  Tensor<std::int16_t> x(Shape{1, 2, 4, 4});
  Tensor<std::int16_t> w(Shape{1, 2, 3, 3});
  x.fill_random(rng, -4 * 256, 4 * 256);
  w.fill_random(rng, -256, 256);

  const fixed::FixedFormat q8{8};
  const FixedConvResult res =
      conv2d_fixed(p, x, w, q8, q8, q8, nullptr, fixed::Rounding::kNearestEven);

  Tensor<float> xf(Shape{1, 2, 4, 4});
  Tensor<float> wf(Shape{1, 2, 3, 3});
  for (std::int64_t i = 0; i < x.num_elements(); ++i)
    xf.at_flat(i) = static_cast<float>(x.at_flat(i)) / 256.0f;
  for (std::int64_t i = 0; i < w.num_elements(); ++i)
    wf.at_flat(i) = static_cast<float>(w.at_flat(i)) / 256.0f;
  const Tensor<float> yf = conv2d_float(p, xf, wf);

  for (std::int64_t i = 0; i < yf.num_elements(); ++i) {
    const double got =
        static_cast<double>(res.ofmaps.at_flat(i)) / 256.0;
    EXPECT_NEAR(got, yf.at_flat(i), 0.5 / 256.0 + 1e-9);
  }
}

TEST(GoldenFixed, AccumulatorIsExactProductSum) {
  const ConvLayerParams p = tiny();
  Tensor<std::int16_t> x(Shape{1, 1, 4, 4}, std::int16_t{3});
  Tensor<std::int16_t> w(Shape{1, 1, 3, 3}, std::int16_t{-2});
  const Tensor<std::int64_t> acc = conv2d_fixed_accum(p, x, w);
  for (std::int64_t i = 0; i < acc.num_elements(); ++i)
    EXPECT_EQ(acc.at_flat(i), 9 * 3 * -2);
}

TEST(GoldenFixed, BiasAlignedBeforeNarrow) {
  const ConvLayerParams p = tiny();
  Tensor<std::int16_t> x(Shape{1, 1, 4, 4}, std::int16_t{0});
  Tensor<std::int16_t> w(Shape{1, 1, 3, 3}, std::int16_t{0});
  Tensor<std::int16_t> bias(Shape{1}, std::int16_t{77});
  const fixed::FixedFormat q8{8};
  const FixedConvResult res = conv2d_fixed(p, x, w, q8, q8, q8, &bias);
  for (std::int64_t i = 0; i < res.ofmaps.num_elements(); ++i)
    EXPECT_EQ(res.ofmaps.at_flat(i), 77);
}

TEST(GoldenFixed, NarrowingSaturationReported) {
  const ConvLayerParams p = tiny();
  Tensor<std::int16_t> x(Shape{1, 1, 4, 4}, std::int16_t{32767});
  Tensor<std::int16_t> w(Shape{1, 1, 3, 3}, std::int16_t{32767});
  const fixed::FixedFormat q8{8};
  const FixedConvResult res = conv2d_fixed(p, x, w, q8, q8, q8);
  EXPECT_GT(res.narrowing.saturations, 0u);
  for (std::int64_t i = 0; i < res.ofmaps.num_elements(); ++i)
    EXPECT_EQ(res.ofmaps.at_flat(i), 32767);
}

// --- edge cases: stride > kernel, asymmetric padding, 1x1 kernels ---------

TEST(GoldenEdge, StrideGreaterThanKernelSkipsPixels) {
  // K=2, S=3 on a 8x8 input: windows start at rows/cols {0, 3, 6}, and
  // pixel (oy*3+ky, ox*3+kx) is read — every third pixel band; the pixels
  // between windows must not contribute.
  ConvLayerParams p = tiny();
  p.in_height = p.in_width = 8;
  p.kernel = 2;
  p.stride = 3;
  p.validate();
  ASSERT_EQ(p.out_height(), 3);

  Tensor<float> x(Shape{1, 1, 8, 8});
  for (std::int64_t i = 0; i < 64; ++i)
    x.at_flat(i) = static_cast<float>(i);
  Tensor<float> w(Shape{1, 1, 2, 2}, 1.0f);
  const Tensor<float> y = conv2d_float(p, x, w);
  ASSERT_EQ(y.shape(), Shape({1, 1, 3, 3}));
  // Window at (0,0): pixels (0,0)=0, (0,1)=1, (1,0)=8, (1,1)=9.
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 0 + 1 + 8 + 9);
  // Window at (2,1): rows 6-7, cols 3-4.
  EXPECT_FLOAT_EQ(y.at(0, 0, 2, 1), 51 + 52 + 59 + 60);

  // Perturbing a skipped pixel (row 2 lies between the row-0 and row-3
  // windows) must not change any output.
  Tensor<float> x2 = x;
  x2.at(0, 0, 2, 2) = 1e6f;
  EXPECT_DOUBLE_EQ(max_abs_diff(y, conv2d_float(p, x2, w)), 0.0);
}

TEST(GoldenEdge, StrideGreaterThanKernelFixedMatchesFloat) {
  ConvLayerParams p = tiny();
  p.in_height = p.in_width = 9;
  p.kernel = 2;
  p.stride = 4;
  p.in_channels = 2;
  p.validate();
  Rng rng(7);
  Tensor<std::int16_t> x(Shape{1, 2, 9, 9});
  Tensor<std::int16_t> w(Shape{1, 2, 2, 2});
  x.fill_random(rng, -100, 100);
  w.fill_random(rng, -20, 20);
  const Tensor<std::int64_t> acc = conv2d_fixed_accum(p, x, w);
  // Exact integer cross-check against a hand-rolled window sum.
  for (std::int64_t oy = 0; oy < p.out_height(); ++oy)
    for (std::int64_t ox = 0; ox < p.out_width(); ++ox) {
      std::int64_t want = 0;
      for (std::int64_t c = 0; c < 2; ++c)
        for (std::int64_t ky = 0; ky < 2; ++ky)
          for (std::int64_t kx = 0; kx < 2; ++kx)
            want += std::int64_t{x.at(0, c, oy * 4 + ky, ox * 4 + kx)} *
                    std::int64_t{w.at(0, c, ky, kx)};
      EXPECT_EQ(acc.at(0, 0, oy, ox), want) << "at (" << oy << "," << ox
                                            << ")";
    }
}

TEST(GoldenEdge, AsymmetricPaddingShapesAndValues) {
  // pad_h=1, pad_w=0: rows gain padding, columns do not.
  ConvLayerParams p = tiny();
  p.in_height = 4;
  p.in_width = 6;
  p.pad_h = 1;
  p.pad_w = 0;
  p.validate();
  ASSERT_EQ(p.out_height(), 4);  // (4 + 2*1 - 3) + 1
  ASSERT_EQ(p.out_width(), 4);   // (6 + 2*0 - 3) + 1

  Tensor<float> x(Shape{1, 1, 4, 6}, 1.0f);
  Tensor<float> w(Shape{1, 1, 3, 3}, 1.0f);
  const Tensor<float> y = conv2d_float(p, x, w);
  // Top output row: the ky=0 taps fall in row padding -> 6 real taps.
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 6.0f);
  // Interior rows see the full 3x3 window (no column padding anywhere).
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 0), 9.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 2, 3), 9.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 3, 1), 6.0f);  // bottom row
}

TEST(GoldenEdge, AsymmetricPaddingMatchesSymmetricOnTransposedInput) {
  // Swapping the image axes and swapping (pad_h, pad_w) must transpose
  // the output — pins that each pad lands on its own axis.
  ConvLayerParams p = tiny();
  p.in_height = 5;
  p.in_width = 7;
  p.pad_h = 2;
  p.pad_w = 1;
  p.validate();
  Rng rng(8);
  Tensor<float> x(Shape{1, 1, 5, 7});
  x.fill_random(rng, -1.0, 1.0);
  Tensor<float> w(Shape{1, 1, 3, 3});
  w.fill_random(rng, -1.0, 1.0);
  const Tensor<float> y = conv2d_float(p, x, w);

  ConvLayerParams pt = p;
  pt.in_height = 7;
  pt.in_width = 5;
  pt.pad_h = 1;
  pt.pad_w = 2;
  Tensor<float> xt(Shape{1, 1, 7, 5});
  for (std::int64_t r = 0; r < 5; ++r)
    for (std::int64_t c = 0; c < 7; ++c) xt.at(0, 0, c, r) = x.at(0, 0, r, c);
  Tensor<float> wt(Shape{1, 1, 3, 3});
  for (std::int64_t r = 0; r < 3; ++r)
    for (std::int64_t c = 0; c < 3; ++c) wt.at(0, 0, c, r) = w.at(0, 0, r, c);
  const Tensor<float> yt = conv2d_float(pt, xt, wt);

  ASSERT_EQ(yt.shape(), Shape({1, 1, y.shape().dim(3), y.shape().dim(2)}));
  for (std::int64_t r = 0; r < y.shape().dim(2); ++r)
    for (std::int64_t c = 0; c < y.shape().dim(3); ++c)
      EXPECT_FLOAT_EQ(yt.at(0, 0, c, r), y.at(0, 0, r, c));
}

TEST(GoldenEdge, AsymmetricPaddingFixedAccumMatchesFloat) {
  ConvLayerParams p = tiny();
  p.in_height = 5;
  p.in_width = 4;
  p.pad_h = 0;
  p.pad_w = 2;
  p.validate();
  Rng rng(9);
  Tensor<std::int16_t> x(Shape{1, 1, 5, 4});
  Tensor<std::int16_t> w(Shape{1, 1, 3, 3});
  x.fill_random(rng, -64, 64);
  w.fill_random(rng, -16, 16);
  const Tensor<std::int64_t> acc = conv2d_fixed_accum(p, x, w);

  Tensor<float> xf(x.shape()), wf(w.shape());
  for (std::int64_t i = 0; i < x.num_elements(); ++i)
    xf.at_flat(i) = static_cast<float>(x.at_flat(i));
  for (std::int64_t i = 0; i < w.num_elements(); ++i)
    wf.at_flat(i) = static_cast<float>(w.at_flat(i));
  const Tensor<float> yf = conv2d_float(p, xf, wf);
  ASSERT_EQ(acc.shape(), yf.shape());
  for (std::int64_t i = 0; i < acc.num_elements(); ++i)
    EXPECT_EQ(static_cast<double>(acc.at_flat(i)),
              static_cast<double>(yf.at_flat(i)));
}

TEST(GoldenEdge, OneByOneKernelIsChannelMix) {
  // A 1x1 conv is a per-pixel linear mix of channels: no spatial reach,
  // output size equals input size, padding-free.
  ConvLayerParams p = tiny();
  p.in_channels = 3;
  p.out_channels = 2;
  p.kernel = 1;
  p.validate();
  ASSERT_EQ(p.out_height(), 4);
  Rng rng(10);
  Tensor<float> x(Shape{1, 3, 4, 4});
  x.fill_random(rng, -1.0, 1.0);
  Tensor<float> w(Shape{2, 3, 1, 1});
  w.fill_random(rng, -1.0, 1.0);
  const Tensor<float> y = conv2d_float(p, x, w);
  for (std::int64_t m = 0; m < 2; ++m)
    for (std::int64_t r = 0; r < 4; ++r)
      for (std::int64_t c = 0; c < 4; ++c) {
        double want = 0.0;  // conv2d_float accumulates in double
        for (std::int64_t ci = 0; ci < 3; ++ci)
          want += double{x.at(0, ci, r, c)} * double{w.at(m, ci, 0, 0)};
        EXPECT_FLOAT_EQ(y.at(0, m, r, c), static_cast<float>(want));
      }
}

TEST(GoldenEdge, OneByOneKernelStridedSubsamples) {
  // 1x1 with stride 2 picks every other pixel — the extreme of
  // stride > kernel.
  ConvLayerParams p = tiny();
  p.kernel = 1;
  p.stride = 2;
  p.in_height = p.in_width = 6;
  p.validate();
  ASSERT_EQ(p.out_height(), 3);
  Tensor<std::int16_t> x(Shape{1, 1, 6, 6});
  for (std::int64_t i = 0; i < 36; ++i)
    x.at_flat(i) = static_cast<std::int16_t>(i);
  Tensor<std::int16_t> w(Shape{1, 1, 1, 1}, std::int16_t{2});
  const Tensor<std::int64_t> acc = conv2d_fixed_accum(p, x, w);
  for (std::int64_t oy = 0; oy < 3; ++oy)
    for (std::int64_t ox = 0; ox < 3; ++ox)
      EXPECT_EQ(acc.at(0, 0, oy, ox), 2 * (6 * (2 * oy) + 2 * ox));
}

}  // namespace
}  // namespace chainnn::nn
