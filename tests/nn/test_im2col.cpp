#include "nn/im2col.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/golden.hpp"

namespace chainnn::nn {
namespace {

TEST(Im2col, PatchMatrixShape) {
  ConvLayerParams p;
  p.in_channels = 2;
  p.out_channels = 1;
  p.in_height = 5;
  p.in_width = 6;
  p.kernel = 3;
  const Tensor<float> x(Shape{1, 2, 5, 6}, 1.0f);
  const Tensor<float> cols = im2col_image(p, x, 0, 0);
  EXPECT_EQ(cols.shape(), Shape({2 * 9, 3 * 4}));
}

TEST(Im2col, PaddingZeroFilled) {
  ConvLayerParams p;
  p.in_channels = 1;
  p.out_channels = 1;
  p.in_height = p.in_width = 3;
  p.kernel = 3;
  p.pad = 1;
  const Tensor<float> x(Shape{1, 1, 3, 3}, 1.0f);
  const Tensor<float> cols = im2col_image(p, x, 0, 0);
  // First output position (0,0): tap (0,0) reads padded (-1,-1) => 0.
  EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0f);
  // Centre tap at centre output reads a real pixel.
  EXPECT_FLOAT_EQ(cols.at(4, 4), 1.0f);
}

// The central cross-check: im2col+GEMM must equal the direct golden conv
// on randomized layers, including stride / pad / groups.
struct Im2colCase {
  std::int64_t c, m, h, w, k, stride, pad, groups;
};

class Im2colEquivalence : public ::testing::TestWithParam<Im2colCase> {};

TEST_P(Im2colEquivalence, MatchesDirectConv) {
  const Im2colCase& tc = GetParam();
  ConvLayerParams p;
  p.batch = 2;
  p.in_channels = tc.c;
  p.out_channels = tc.m;
  p.in_height = tc.h;
  p.in_width = tc.w;
  p.kernel = tc.k;
  p.stride = tc.stride;
  p.pad = tc.pad;
  p.groups = tc.groups;
  p.validate();

  Rng rng(123);
  Tensor<float> x(Shape{p.batch, p.in_channels, p.in_height, p.in_width});
  Tensor<float> w(
      Shape{p.out_channels, p.channels_per_group(), p.kernel, p.kernel});
  Tensor<float> bias(Shape{p.out_channels});
  x.fill_random(rng, -1.0, 1.0);
  w.fill_random(rng, -1.0, 1.0);
  bias.fill_random(rng, -0.5, 0.5);

  const Tensor<float> direct = conv2d_float(p, x, w, &bias);
  const Tensor<float> gemm = conv2d_im2col(p, x, w, &bias);
  ASSERT_EQ(direct.shape(), gemm.shape());
  EXPECT_LE(max_abs_diff(direct, gemm), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Im2colEquivalence,
    ::testing::Values(Im2colCase{1, 1, 6, 6, 3, 1, 0, 1},
                      Im2colCase{3, 4, 8, 8, 3, 1, 1, 1},
                      Im2colCase{2, 2, 9, 7, 5, 1, 2, 1},
                      Im2colCase{4, 6, 11, 11, 3, 2, 1, 2},
                      Im2colCase{6, 4, 13, 9, 5, 4, 0, 2},
                      Im2colCase{1, 2, 7, 7, 1, 1, 0, 1},
                      Im2colCase{2, 2, 12, 12, 7, 3, 3, 1}));

}  // namespace
}  // namespace chainnn::nn
