// Mathematical properties of the golden convolution models. These are
// oracle-strengthening tests: properties that hold for any correct
// convolution, checked on randomized data, independent of any particular
// expected-value computation.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/golden.hpp"

namespace chainnn::nn {
namespace {

ConvLayerParams layer_k3(std::int64_t hw = 8, std::int64_t pad = 0) {
  ConvLayerParams p;
  p.name = "prop";
  p.in_channels = 2;
  p.out_channels = 2;
  p.in_height = p.in_width = hw;
  p.kernel = 3;
  p.pad = pad;
  p.validate();
  return p;
}

TEST(GoldenProperties, LinearityInIfmaps) {
  // conv(x1 + x2, w) == conv(x1, w) + conv(x2, w) for the exact wide
  // accumulators (integer arithmetic, no rounding inside).
  const ConvLayerParams p = layer_k3();
  Rng rng(1);
  Tensor<std::int16_t> x1(Shape{1, 2, 8, 8});
  Tensor<std::int16_t> x2(Shape{1, 2, 8, 8});
  Tensor<std::int16_t> w(Shape{2, 2, 3, 3});
  x1.fill_random(rng, -50, 50);
  x2.fill_random(rng, -50, 50);
  w.fill_random(rng, -10, 10);

  Tensor<std::int16_t> sum(Shape{1, 2, 8, 8});
  for (std::int64_t i = 0; i < sum.num_elements(); ++i)
    sum.at_flat(i) =
        static_cast<std::int16_t>(x1.at_flat(i) + x2.at_flat(i));

  const auto y1 = conv2d_fixed_accum(p, x1, w);
  const auto y2 = conv2d_fixed_accum(p, x2, w);
  const auto ys = conv2d_fixed_accum(p, sum, w);
  for (std::int64_t i = 0; i < ys.num_elements(); ++i)
    EXPECT_EQ(ys.at_flat(i), y1.at_flat(i) + y2.at_flat(i)) << i;
}

TEST(GoldenProperties, LinearityInKernels) {
  const ConvLayerParams p = layer_k3();
  Rng rng(2);
  Tensor<std::int16_t> x(Shape{1, 2, 8, 8});
  Tensor<std::int16_t> w1(Shape{2, 2, 3, 3});
  Tensor<std::int16_t> w2(Shape{2, 2, 3, 3});
  x.fill_random(rng, -50, 50);
  w1.fill_random(rng, -8, 8);
  w2.fill_random(rng, -8, 8);

  Tensor<std::int16_t> ws(Shape{2, 2, 3, 3});
  for (std::int64_t i = 0; i < ws.num_elements(); ++i)
    ws.at_flat(i) =
        static_cast<std::int16_t>(w1.at_flat(i) + w2.at_flat(i));

  const auto y1 = conv2d_fixed_accum(p, x, w1);
  const auto y2 = conv2d_fixed_accum(p, x, w2);
  const auto ys = conv2d_fixed_accum(p, x, ws);
  for (std::int64_t i = 0; i < ys.num_elements(); ++i)
    EXPECT_EQ(ys.at_flat(i), y1.at_flat(i) + y2.at_flat(i)) << i;
}

TEST(GoldenProperties, NegationFlipsSign) {
  const ConvLayerParams p = layer_k3(7, 1);
  Rng rng(3);
  Tensor<std::int16_t> x(Shape{1, 2, 7, 7});
  Tensor<std::int16_t> w(Shape{2, 2, 3, 3});
  x.fill_random(rng, -60, 60);
  w.fill_random(rng, -12, 12);

  Tensor<std::int16_t> xn(Shape{1, 2, 7, 7});
  for (std::int64_t i = 0; i < x.num_elements(); ++i)
    xn.at_flat(i) = static_cast<std::int16_t>(-x.at_flat(i));

  const auto y = conv2d_fixed_accum(p, x, w);
  const auto yn = conv2d_fixed_accum(p, xn, w);
  for (std::int64_t i = 0; i < y.num_elements(); ++i)
    EXPECT_EQ(yn.at_flat(i), -y.at_flat(i));
}

TEST(GoldenProperties, TranslationEquivariance) {
  // Shifting the (unpadded) input by one pixel shifts the output by one
  // pixel on the overlapping interior.
  ConvLayerParams p = layer_k3(10);
  p.in_channels = 1;
  p.out_channels = 1;
  Rng rng(4);
  Tensor<std::int16_t> x(Shape{1, 1, 10, 10});
  Tensor<std::int16_t> w(Shape{1, 1, 3, 3});
  x.fill_random(rng, -40, 40);
  w.fill_random(rng, -10, 10);

  Tensor<std::int16_t> xs(Shape{1, 1, 10, 10});  // shift down-right by 1
  for (std::int64_t r = 1; r < 10; ++r)
    for (std::int64_t c = 1; c < 10; ++c)
      xs.at(0, 0, r, c) = x.at(0, 0, r - 1, c - 1);

  const auto y = conv2d_fixed_accum(p, x, w);
  const auto ys = conv2d_fixed_accum(p, xs, w);
  for (std::int64_t r = 1; r < 8; ++r)
    for (std::int64_t c = 1; c < 8; ++c)
      EXPECT_EQ(ys.at(0, 0, r, c), y.at(0, 0, r - 1, c - 1))
          << r << "," << c;
}

TEST(GoldenProperties, PaddedConvRestrictsToUnpadded) {
  // The interior of a pad-1 conv equals the unpadded conv.
  const ConvLayerParams unpadded = layer_k3(9, 0);
  const ConvLayerParams padded = layer_k3(9, 1);
  Rng rng(5);
  Tensor<std::int16_t> x(Shape{1, 2, 9, 9});
  Tensor<std::int16_t> w(Shape{2, 2, 3, 3});
  x.fill_random(rng, -30, 30);
  w.fill_random(rng, -6, 6);

  const auto yu = conv2d_fixed_accum(unpadded, x, w);  // 7x7
  const auto yp = conv2d_fixed_accum(padded, x, w);    // 9x9
  for (std::int64_t m = 0; m < 2; ++m)
    for (std::int64_t r = 0; r < 7; ++r)
      for (std::int64_t c = 0; c < 7; ++c)
        EXPECT_EQ(yp.at(0, m, r + 1, c + 1), yu.at(0, m, r, c));
}

TEST(GoldenProperties, StrideSubsamplesDenseConv) {
  // A stride-2 conv equals every other output of the stride-1 conv.
  ConvLayerParams dense = layer_k3(11);
  ConvLayerParams strided = dense;
  strided.stride = 2;
  Rng rng(6);
  Tensor<std::int16_t> x(Shape{1, 2, 11, 11});
  Tensor<std::int16_t> w(Shape{2, 2, 3, 3});
  x.fill_random(rng, -30, 30);
  w.fill_random(rng, -6, 6);

  const auto yd = conv2d_fixed_accum(dense, x, w);
  const auto ys = conv2d_fixed_accum(strided, x, w);
  for (std::int64_t m = 0; m < 2; ++m)
    for (std::int64_t r = 0; r < strided.out_height(); ++r)
      for (std::int64_t c = 0; c < strided.out_width(); ++c)
        EXPECT_EQ(ys.at(0, m, r, c), yd.at(0, m, 2 * r, 2 * c));
}

TEST(GoldenProperties, GroupedConvEqualsPerGroupConvs) {
  // A 2-group conv equals two independent convs on the channel halves.
  ConvLayerParams grouped = layer_k3(8);
  grouped.in_channels = 4;
  grouped.out_channels = 4;
  grouped.groups = 2;
  Rng rng(7);
  Tensor<std::int16_t> x(Shape{1, 4, 8, 8});
  Tensor<std::int16_t> w(Shape{4, 2, 3, 3});
  x.fill_random(rng, -30, 30);
  w.fill_random(rng, -6, 6);

  const auto yg = conv2d_fixed_accum(grouped, x, w);

  ConvLayerParams half = layer_k3(8);
  half.in_channels = 2;
  half.out_channels = 2;
  for (std::int64_t g = 0; g < 2; ++g) {
    Tensor<std::int16_t> xh(Shape{1, 2, 8, 8});
    Tensor<std::int16_t> wh(Shape{2, 2, 3, 3});
    for (std::int64_t c = 0; c < 2; ++c)
      for (std::int64_t r = 0; r < 8; ++r)
        for (std::int64_t cc = 0; cc < 8; ++cc)
          xh.at(0, c, r, cc) = x.at(0, g * 2 + c, r, cc);
    for (std::int64_t i = 0; i < wh.num_elements(); ++i)
      wh.at_flat(i) = w.at_flat(g * wh.num_elements() + i);
    const auto yh = conv2d_fixed_accum(half, xh, wh);
    for (std::int64_t m = 0; m < 2; ++m)
      for (std::int64_t r = 0; r < 6; ++r)
        for (std::int64_t c = 0; c < 6; ++c)
          EXPECT_EQ(yg.at(0, g * 2 + m, r, c), yh.at(0, m, r, c));
  }
}

}  // namespace
}  // namespace chainnn::nn
