#include "nn/sparsity.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/layers.hpp"

namespace chainnn::nn {
namespace {

ConvLayerParams tiny() {
  ConvLayerParams p;
  p.name = "t";
  p.in_channels = 2;
  p.out_channels = 3;
  p.in_height = p.in_width = 6;
  p.kernel = 3;
  return p;
}

TEST(Sparsity, DenseTensorsHaveNoZeroMacs) {
  const ConvLayerParams p = tiny();
  Tensor<std::int16_t> x(Shape{1, 2, 6, 6}, std::int16_t{1});
  Tensor<std::int16_t> w(Shape{3, 2, 3, 3}, std::int16_t{2});
  const ZeroMacStats s = count_zero_macs(p, x, w);
  EXPECT_EQ(s.total_macs, p.macs_per_image());
  EXPECT_EQ(s.zero_macs, 0);
  EXPECT_DOUBLE_EQ(s.zero_fraction(), 0.0);
}

TEST(Sparsity, AllZeroIfmapsMakeEveryMacZero) {
  const ConvLayerParams p = tiny();
  Tensor<std::int16_t> x(Shape{1, 2, 6, 6}, std::int16_t{0});
  Tensor<std::int16_t> w(Shape{3, 2, 3, 3}, std::int16_t{2});
  const ZeroMacStats s = count_zero_macs(p, x, w);
  EXPECT_EQ(s.zero_macs, s.total_macs);
  EXPECT_EQ(s.zero_ifmap_macs, s.total_macs);
  EXPECT_EQ(s.zero_kernel_macs, 0);
}

TEST(Sparsity, PaddingTapsNotCounted) {
  ConvLayerParams p = tiny();
  p.pad = 1;
  Tensor<std::int16_t> x(Shape{1, 2, 6, 6}, std::int16_t{1});
  Tensor<std::int16_t> w(Shape{3, 2, 3, 3}, std::int16_t{1});
  const ZeroMacStats s = count_zero_macs(p, x, w);
  // Padded conv of a 6x6 input: real taps < E*E*K*K per channel.
  EXPECT_LT(s.total_macs, p.macs_per_image());
  EXPECT_EQ(s.zero_macs, 0);
}

TEST(Sparsity, ReluProducesRoughlyHalfZeros) {
  Rng rng(9);
  Tensor<std::int16_t> t(Shape{10000});
  t.fill_random(rng, -100, 100);
  relu_inplace(t);
  const double frac = zero_element_fraction(t);
  EXPECT_GT(frac, 0.45);
  EXPECT_LT(frac, 0.55);
}

TEST(Sparsity, InjectHitsTargetFraction) {
  Rng rng(10);
  Tensor<std::int16_t> t(Shape{20000});
  t.fill_random(rng, 1, 100);  // no natural zeros
  inject_sparsity(t, 0.3, 42);
  EXPECT_NEAR(zero_element_fraction(t), 0.3, 0.02);
}

TEST(Sparsity, InjectZeroAndOneFractions) {
  Rng rng(11);
  Tensor<std::int16_t> t(Shape{100});
  t.fill_random(rng, 1, 10);
  inject_sparsity(t, 0.0, 1);
  EXPECT_DOUBLE_EQ(zero_element_fraction(t), 0.0);
  inject_sparsity(t, 1.0, 1);
  EXPECT_DOUBLE_EQ(zero_element_fraction(t), 1.0);
}

TEST(Sparsity, InjectIsDeterministicPerSeed) {
  Rng rng(12);
  Tensor<std::int16_t> a(Shape{500});
  a.fill_random(rng, 1, 10);
  Tensor<std::int16_t> b = a;
  inject_sparsity(a, 0.5, 7);
  inject_sparsity(b, 0.5, 7);
  EXPECT_EQ(a, b);
}

TEST(Sparsity, ZeroFractionTracksInjectedIfmapSparsity) {
  ConvLayerParams p = tiny();
  p.in_height = p.in_width = 16;  // enough pixels for tight statistics
  Rng rng(13);
  Tensor<std::int16_t> x(Shape{1, 2, 16, 16});
  Tensor<std::int16_t> w(Shape{3, 2, 3, 3});
  x.fill_random(rng, 1, 50);
  w.fill_random(rng, 1, 10);
  inject_sparsity(x, 0.4, 3);
  const ZeroMacStats s = count_zero_macs(p, x, w);
  EXPECT_NEAR(s.zero_fraction(), 0.4, 0.05);
}

}  // namespace
}  // namespace chainnn::nn
