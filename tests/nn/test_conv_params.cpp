#include "nn/conv_params.hpp"

#include <gtest/gtest.h>

namespace chainnn::nn {
namespace {

ConvLayerParams basic() {
  ConvLayerParams p;
  p.name = "t";
  p.in_channels = 4;
  p.out_channels = 8;
  p.in_height = 10;
  p.in_width = 12;
  p.kernel = 3;
  return p;
}

TEST(ConvParams, OutputSizeNoPad) {
  const ConvLayerParams p = basic();
  EXPECT_EQ(p.out_height(), 8);
  EXPECT_EQ(p.out_width(), 10);
}

TEST(ConvParams, OutputSizeWithPadAndStride) {
  ConvLayerParams p = basic();
  p.pad = 1;
  EXPECT_EQ(p.out_height(), 10);
  p.stride = 2;
  EXPECT_EQ(p.out_height(), 5);  // (10+2-3)/2+1
  EXPECT_EQ(p.out_width(), 6);
}

TEST(ConvParams, AlexNetConv1Geometry) {
  ConvLayerParams p;
  p.in_channels = 3;
  p.out_channels = 96;
  p.in_height = p.in_width = 227;
  p.kernel = 11;
  p.stride = 4;
  EXPECT_EQ(p.out_height(), 55);
  EXPECT_EQ(p.macs_per_image(), 55LL * 55 * 96 * 11 * 11 * 3);
}

TEST(ConvParams, GroupedChannels) {
  ConvLayerParams p = basic();
  p.groups = 2;
  EXPECT_EQ(p.channels_per_group(), 2);
  EXPECT_EQ(p.out_channels_per_group(), 4);
  // Grouping divides the per-output MACs by G.
  EXPECT_EQ(p.macs_per_image(),
            p.out_height() * p.out_width() * p.out_channels * 9 * 2);
}

TEST(ConvParams, WeightCount) {
  ConvLayerParams p = basic();
  EXPECT_EQ(p.weight_count(), 8 * 4 * 9);
  p.groups = 2;
  EXPECT_EQ(p.weight_count(), 8 * 2 * 9);
}

TEST(ConvParams, MacsTotalScalesWithBatch) {
  ConvLayerParams p = basic();
  p.batch = 4;
  EXPECT_EQ(p.macs_total(), 4 * p.macs_per_image());
}

TEST(ConvParams, ValidateRejectsBadGroups) {
  ConvLayerParams p = basic();
  p.groups = 3;  // 4 % 3 != 0
  EXPECT_THROW(p.validate(), std::logic_error);
}

TEST(ConvParams, ValidateRejectsKernelLargerThanPaddedInput) {
  ConvLayerParams p = basic();
  p.kernel = 13;
  EXPECT_THROW(p.validate(), std::logic_error);
  p.pad = 2;  // 10 + 4 >= 13
  EXPECT_NO_THROW(p.validate());
}

TEST(ConvParams, WithBatch) {
  const ConvLayerParams p = basic().with_batch(128);
  EXPECT_EQ(p.batch, 128);
  EXPECT_EQ(p.in_channels, 4);  // everything else preserved
}

TEST(ConvParams, PixelCounts) {
  const ConvLayerParams p = basic();
  EXPECT_EQ(p.ifmap_pixels_per_image(), 4 * 10 * 12);
  EXPECT_EQ(p.ofmap_pixels_per_image(), 8 * 8 * 10);
}

TEST(ConvParams, TotalMacsHelper) {
  const std::vector<ConvLayerParams> layers = {basic(), basic()};
  EXPECT_EQ(total_macs_per_image(layers), 2 * basic().macs_per_image());
}

}  // namespace
}  // namespace chainnn::nn
