// The vectorized analytical MAC kernel (nn/conv_kernel.hpp) against the
// scalar sticky-saturation oracle it must match bit-for-bit.
//
// The contract under test: whenever the saturation-free proof admits a
// layer, the clamp-free fast kernel computes exactly what
// conv2d_fixed_accum computes; whenever saturation is actually possible
// the bound check must say so and the dispatcher must route to the
// scalar path (whose sticky clamps the fast kernel cannot reproduce).
#include "nn/conv_kernel.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "chain/accelerator.hpp"
#include "common/rng.hpp"
#include "fixed/fixed16.hpp"
#include "nn/golden.hpp"

namespace chainnn::nn {
namespace {

// Smallest tap count the static bound rejects: one more than
// kMax / 2^30 (the worst-case |product| of two int16 operands).
constexpr std::int64_t kStaticTapLimit =
    fixed::Accumulator48::kMax / (std::int64_t{1} << 30);  // 131071

// A 1x1-output layer with more taps than the static bound admits:
// C * K * K = 14564 * 9 = 131076 > 131071.
ConvLayerParams oversized_taps_layer() {
  ConvLayerParams p;
  p.name = "oversized";
  p.in_channels = 14564;
  p.out_channels = 1;
  p.in_height = p.in_width = 3;
  p.kernel = 3;
  p.validate();
  return p;
}

TEST(ConvKernelBound, StaticBoundMath) {
  ConvLayerParams p;
  p.in_height = p.in_width = 64;
  p.kernel = 3;
  // VGG's deepest conv: 512 * 3 * 3 = 4608 taps — far inside the bound.
  p.in_channels = 512;
  p.out_channels = 512;
  EXPECT_TRUE(saturation_free(p));

  // Exactly at the limit: taps == kMax / 2^30 is still provably safe.
  ConvLayerParams edge;
  edge.kernel = 1;
  edge.in_height = edge.in_width = 1;
  edge.in_channels = kStaticTapLimit;
  edge.out_channels = 1;
  EXPECT_TRUE(saturation_free(edge));
  edge.in_channels = kStaticTapLimit + 1;
  EXPECT_FALSE(saturation_free(edge));

  // Tighter operand magnitudes stretch the admissible tap count, and a
  // provably-zero operand admits anything.
  EXPECT_TRUE(saturation_free(edge, 1, 1));
  EXPECT_TRUE(saturation_free(edge, 0, 32768));
  EXPECT_FALSE(saturation_free(edge, 32768, 32768));
}

TEST(ConvKernelProperty, FastMatchesScalarOracleOnRandomLayers) {
  // Randomized layer geometries (kernel, stride, asymmetric padding,
  // groups, batch) with full-range int16 operands. Tap counts stay tiny,
  // so the static proof holds and the fast kernel must reproduce the
  // sticky-clamp oracle exactly — every clamp is provably dead.
  Rng rng(2024);
  for (int iter = 0; iter < 60; ++iter) {
    ConvLayerParams p;
    p.name = "prop";
    p.groups = rng.uniform_int(1, 2);
    p.kernel = rng.uniform_int(1, 5);
    p.stride = rng.uniform_int(1, 3);
    p.pad_h = rng.uniform_int(0, 2);
    p.pad_w = rng.uniform_int(0, 2);
    p.in_channels = p.groups * rng.uniform_int(1, 4);
    p.out_channels = p.groups * rng.uniform_int(1, 4);
    p.batch = rng.uniform_int(1, 2);
    // Keep at least one output site: H + 2*pad >= K.
    const std::int64_t lo =
        std::max<std::int64_t>(1, p.kernel - 2 * p.pad_h);
    p.in_height = rng.uniform_int(lo, 12);
    const std::int64_t lo_w =
        std::max<std::int64_t>(1, p.kernel - 2 * p.pad_w);
    p.in_width = rng.uniform_int(lo_w, 12);
    p.validate();
    ASSERT_TRUE(saturation_free(p));

    Tensor<std::int16_t> x(
        Shape{p.batch, p.in_channels, p.in_height, p.in_width});
    Tensor<std::int16_t> w(Shape{p.out_channels, p.channels_per_group(),
                                 p.kernel, p.kernel});
    x.fill_random(rng, -32768, 32767);
    w.fill_random(rng, -32768, 32767);

    const Tensor<std::int64_t> oracle = conv2d_fixed_accum(p, x, w);
    const Tensor<std::int64_t> fast = conv2d_fixed_accum_fast(p, x, w);
    ASSERT_EQ(oracle.shape(), fast.shape());
    for (std::int64_t i = 0; i < oracle.num_elements(); ++i)
      ASSERT_EQ(oracle.at_flat(i), fast.at_flat(i))
          << "site " << i << " of " << p.to_string();

    ConvDispatch d;
    const Tensor<std::int64_t> routed =
        conv2d_fixed_accum_dispatch(p, x, w, &d);
    EXPECT_EQ(d.fast, simd_kernel_enabled());
    EXPECT_FALSE(d.data_scanned);
    for (std::int64_t i = 0; i < oracle.num_elements(); ++i)
      ASSERT_EQ(oracle.at_flat(i), routed.at_flat(i)) << i;
  }
}

TEST(ConvKernelDispatch, AdversarialSaturatingTapsRouteToScalar) {
  // All taps at the int16 extreme: every product is (-2^15)^2 = 2^30 and
  // the running sum crosses kMax mid-accumulation. The operand scan
  // cannot tighten anything (the data really is worst-case), so the
  // dispatcher must reject the fast path and take the scalar oracle.
  const ConvLayerParams p = oversized_taps_layer();
  const Tensor<std::int16_t> x(
      Shape{1, p.in_channels, p.in_height, p.in_width},
      std::int16_t{-32768});
  Tensor<std::int16_t> w(Shape{1, p.in_channels, 3, 3},
                         std::int16_t{-32768});
  // A few trailing positive-weight taps (product ~ -2^30) after the
  // clamp engages: the sticky-saturated result now differs from the
  // unclamped sum, so a fast-path mis-route would be visible.
  const std::int64_t taps = p.in_channels * 9;
  for (std::int64_t i = taps - 4; i < taps; ++i)
    w.at_flat(i) = std::int16_t{32767};

  std::int64_t unclamped = 0;
  for (std::int64_t i = 0; i < taps; ++i)
    unclamped += static_cast<std::int64_t>(
        static_cast<std::int32_t>(x.at_flat(i)) *
        static_cast<std::int32_t>(w.at_flat(i)));

  ConvDispatch d;
  const Tensor<std::int64_t> routed =
      conv2d_fixed_accum_dispatch(p, x, w, &d);
  EXPECT_FALSE(d.fast);
  EXPECT_EQ(d.data_scanned, simd_kernel_enabled());

  const Tensor<std::int64_t> oracle = conv2d_fixed_accum(p, x, w);
  ASSERT_EQ(routed.num_elements(), 1);
  EXPECT_EQ(routed.at_flat(0), oracle.at_flat(0));
  // The clamp genuinely fired: sticky saturation lost information the
  // unclamped sum kept.
  EXPECT_NE(oracle.at_flat(0), unclamped);
}

TEST(ConvKernelDispatch, OperandScanAdmitsSmallMagnitudes) {
  // Same oversized-tap geometry, but the data is tiny: the static bound
  // fails, the scan proves |x|,|w| <= 2 and re-admits the fast path.
  const ConvLayerParams p = oversized_taps_layer();
  Rng rng(7);
  Tensor<std::int16_t> x(
      Shape{1, p.in_channels, p.in_height, p.in_width});
  Tensor<std::int16_t> w(Shape{1, p.in_channels, 3, 3});
  x.fill_random(rng, -2, 2);
  w.fill_random(rng, -2, 2);

  ConvDispatch d;
  const Tensor<std::int64_t> routed =
      conv2d_fixed_accum_dispatch(p, x, w, &d);
  EXPECT_EQ(d.fast, simd_kernel_enabled());
  EXPECT_EQ(d.data_scanned, simd_kernel_enabled());

  const Tensor<std::int64_t> oracle = conv2d_fixed_accum(p, x, w);
  for (std::int64_t i = 0; i < oracle.num_elements(); ++i)
    ASSERT_EQ(oracle.at_flat(i), routed.at_flat(i)) << i;
}

TEST(ConvKernelDispatch, RunStatsCountsAnalyticalDispatch) {
  chain::AcceleratorConfig cfg;
  cfg.exec_mode = chain::ExecMode::kAnalytical;
  chain::ChainAccelerator acc(cfg);

  ConvLayerParams p;
  p.name = "stats";
  p.in_channels = 2;
  p.out_channels = 2;
  p.in_height = p.in_width = 6;
  p.kernel = 3;
  p.validate();

  Rng rng(3);
  Tensor<std::int16_t> x(Shape{1, 2, 6, 6});
  Tensor<std::int16_t> w(Shape{2, 2, 3, 3});
  x.fill_random(rng, -100, 100);
  w.fill_random(rng, -100, 100);

  const chain::LayerRunResult r = acc.run_layer(p, x, w);
  if (simd_kernel_enabled()) {
    EXPECT_EQ(r.stats.kernel_fast_dispatches, 1);
    EXPECT_EQ(r.stats.kernel_scalar_dispatches, 0);
  } else {
    EXPECT_EQ(r.stats.kernel_fast_dispatches, 0);
    EXPECT_EQ(r.stats.kernel_scalar_dispatches, 1);
  }
}

}  // namespace
}  // namespace chainnn::nn
