// Design-space exploration: sweeps chain length and clock frequency and
// reports throughput / power / efficiency / AlexNet fps for each point —
// the §III.B claim that the 1D chain "involves fewer overheads when
// scaled up to a higher parallelism or clock frequency" made quantitative.
//
// The sweep itself uses the plan's closed forms (which ARE the analytical
// engine's timing model); a final spot check executes one channel-reduced
// layer through ChainAccelerator on the selected engine and confirms the
// sweep's closed-form cycles against executed cycles.
//
//   ./design_space [--model=alexnet] [--batch=128]
//                  [--exec-mode=analytical|cycle-accurate|none]
#include <chrono>
#include <iostream>

#include "chain/accelerator.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "dataflow/plan.hpp"
#include "energy/energy_model.hpp"
#include "nn/models.hpp"

using namespace chainnn;

namespace {

double network_seconds_per_batch(const nn::NetworkModel& net,
                                 const dataflow::ArrayShape& array,
                                 std::int64_t batch) {
  double s = 0.0;
  for (const auto& layer : net.conv_layers)
    s += dataflow::plan_layer(layer, array).seconds_per_batch(batch);
  return s;
}

// Executes a channel-reduced copy of the network's busiest K=3-ish layer
// and checks the executed cycle count equals the sweep's closed form.
int spot_check(const nn::NetworkModel& net, chain::ExecMode mode) {
  nn::ConvLayerParams p = net.conv_layers[net.conv_layers.size() / 2];
  p.in_channels = std::max<std::int64_t>(1, p.in_channels / 16);
  p.out_channels = std::max<std::int64_t>(1, p.out_channels / 16);
  if (p.groups > 1 && (p.in_channels % p.groups != 0 ||
                       p.out_channels % p.groups != 0))
    p.groups = 1;
  p.validate();

  Rng rng(11);
  Tensor<std::int16_t> x(Shape{1, p.in_channels, p.in_height, p.in_width});
  Tensor<std::int16_t> w(
      Shape{p.out_channels, p.channels_per_group(), p.kernel, p.kernel});
  x.fill_random(rng, -64, 64);
  w.fill_random(rng, -16, 16);

  chain::AcceleratorConfig cfg;
  cfg.exec_mode = mode;
  chain::ChainAccelerator acc(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = acc.run_layer(p, x, w);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  const std::int64_t executed =
      res.stats.stream_cycles + res.stats.drain_cycles;
  const std::int64_t closed_form = res.plan.cycles_per_image();
  std::cout << "spot check (" << p.name << " channels/16, "
            << chain::exec_mode_name(mode) << "): executed " << executed
            << " cycles vs closed-form " << closed_form << " => "
            << (executed == closed_form ? "match" : "MISMATCH") << ", "
            << strings::fmt_fixed(wall_ms, 2) << " ms wall\n";
  return executed == closed_form ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  std::string err;
  const std::map<std::string, std::string> defaults = {
      {"model", "alexnet"},
      {"batch", "128"},
      {"exec-mode", "analytical"}};
  if (!flags.parse(argc, argv, defaults, &err)) {
    std::cerr << err << "\n" << CliFlags::usage(defaults);
    return 1;
  }
  const auto net = nn::model_by_name(flags.get_string("model"));
  const std::int64_t batch = flags.get_int("batch");
  const std::string exec_mode_str = flags.get_string("exec-mode");
  chain::ExecMode exec_mode = chain::ExecMode::kAnalytical;
  if (exec_mode_str != "none" &&
      !chain::parse_exec_mode(exec_mode_str, &exec_mode)) {
    std::cerr << "unknown --exec-mode \"" << exec_mode_str
              << "\" (analytical | cycle-accurate | none)\n";
    return 1;
  }
  const energy::EnergyModel model = energy::EnergyModel::paper_calibrated();

  // --- chain-length sweep at 700 MHz ---------------------------------------
  TextTable t1("DSE — chain length sweep @700MHz (" + net.name +
               ", batch " + std::to_string(batch) + ")");
  t1.set_header({"PEs", "peak GOPS", "fps", "power mW", "GOPS/W",
                 "fps/W"});
  for (const std::int64_t pes : {144, 288, 576, 1152, 2304}) {
    dataflow::ArrayShape array;
    array.num_pes = pes;
    const double sec = network_seconds_per_batch(net, array, batch);
    const double fps = static_cast<double>(batch) / sec;
    // Time-weighted activity across layers: use the largest layer's plan
    // as representative (conservative for power).
    energy::ActivityRates rates = energy::paper_calibration_rates();
    const auto power = model.power(rates, array.clock_hz, pes);
    t1.add_row({std::to_string(pes),
                strings::fmt_fixed(array.peak_ops_per_s() / 1e9, 1),
                strings::fmt_fixed(fps, 1),
                strings::fmt_fixed(power.total() * 1e3, 1),
                strings::fmt_fixed(energy::efficiency_gops_per_w(
                                       array.peak_ops_per_s(),
                                       power.total()),
                                   1),
                strings::fmt_fixed(fps / power.total(), 1)});
  }
  std::cout << t1.to_ascii() << "\n";

  // --- frequency sweep at 576 PEs -------------------------------------------
  TextTable t2("DSE — clock sweep @576 PEs");
  t2.set_header({"MHz", "peak GOPS", "fps", "power mW", "GOPS/W"});
  for (const double mhz : {200.0, 350.0, 500.0, 700.0, 900.0}) {
    dataflow::ArrayShape array;
    array.clock_hz = mhz * 1e6;
    const double sec = network_seconds_per_batch(net, array, batch);
    const auto power = model.power(energy::paper_calibration_rates(),
                                   array.clock_hz, 576);
    t2.add_row({strings::fmt_fixed(mhz, 0),
                strings::fmt_fixed(array.peak_ops_per_s() / 1e9, 1),
                strings::fmt_fixed(static_cast<double>(batch) / sec, 1),
                strings::fmt_fixed(power.total() * 1e3, 1),
                strings::fmt_fixed(energy::efficiency_gops_per_w(
                                       array.peak_ops_per_s(),
                                       power.total()),
                                   1)});
  }
  std::cout << t2.to_ascii() << "\n";

  // --- batch-size sweep (kernel-load amortization, §V.B) --------------------
  TextTable t3("DSE — batch size (kernel loads amortize, §V.B)");
  t3.set_header({"batch", "fps", "load share"});
  dataflow::ArrayShape array;
  for (const std::int64_t b : {1, 4, 16, 64, 128, 512}) {
    const double sec = network_seconds_per_batch(net, array, b);
    double load_cycles = 0.0, total_cycles = 0.0;
    for (const auto& layer : net.conv_layers) {
      const auto plan = dataflow::plan_layer(layer, array);
      load_cycles += static_cast<double>(plan.kernel_load_cycles_per_batch());
      total_cycles += static_cast<double>(plan.cycles_per_batch(b));
    }
    t3.add_row({std::to_string(b),
                strings::fmt_fixed(static_cast<double>(b) / sec, 1),
                strings::fmt_pct(load_cycles / total_cycles, 2)});
  }
  std::cout << t3.to_ascii() << "\n";

  if (exec_mode_str == "none") return 0;
  return spot_check(net, exec_mode);
}
