// Design-space exploration: sweeps chain length and clock frequency and
// reports throughput / power / efficiency / AlexNet fps for each point —
// the §III.B claim that the 1D chain "involves fewer overheads when
// scaled up to a higher parallelism or clock frequency" made quantitative.
//
// Two views:
//   1. closed-form tables straight from the plans (instant, every chain
//      length / clock / batch), as before;
//   2. an *executed* sweep (serve::SweepDriver): a channel-reduced proxy
//      of the network actually runs end to end at every design point
//      through one InferenceServer, with a single PlanCache shared
//      across the points — per-point executed cycles / energy / fps plus
//      the plan-cache hit rate the sharing bought. Clock-variant points
//      share every plan with the 576-PE point (the clock is outside the
//      plan key), so the reported hit rate must be > 0; the binary exits
//      non-zero if it is not, or if any fidelity sample diverges.
//
//   ./design_space [--model=alexnet] [--batch=128]
//                  [--exec-mode=analytical|cycle-accurate|none]
//                  [--workers=1] [--exec-scale=16] [--sweep-batch=2]
//                  [--points=0 (0 = all)] [--fidelity-every=0]
#include <algorithm>
#include <iostream>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "dataflow/plan.hpp"
#include "energy/energy_model.hpp"
#include "nn/models.hpp"
#include "serve/sweep_driver.hpp"

using namespace chainnn;

namespace {

double network_seconds_per_batch(const nn::NetworkModel& net,
                                 const dataflow::ArrayShape& array,
                                 std::int64_t batch) {
  double s = 0.0;
  for (const auto& layer : net.conv_layers)
    s += dataflow::plan_layer(layer, array).seconds_per_batch(batch);
  return s;
}

void print_closed_form_tables(const nn::NetworkModel& net,
                              std::int64_t batch,
                              const energy::EnergyModel& model) {
  // --- chain-length sweep at 700 MHz ---------------------------------------
  TextTable t1("DSE — chain length sweep @700MHz (" + net.name +
               ", batch " + std::to_string(batch) + ")");
  t1.set_header({"PEs", "peak GOPS", "fps", "power mW", "GOPS/W",
                 "fps/W"});
  for (const std::int64_t pes : {144, 288, 576, 1152, 2304}) {
    dataflow::ArrayShape array;
    array.num_pes = pes;
    const double sec = network_seconds_per_batch(net, array, batch);
    const double fps = static_cast<double>(batch) / sec;
    // Time-weighted activity across layers: use the largest layer's plan
    // as representative (conservative for power).
    energy::ActivityRates rates = energy::paper_calibration_rates();
    const auto power = model.power(rates, array.clock_hz, pes);
    t1.add_row({std::to_string(pes),
                strings::fmt_fixed(array.peak_ops_per_s() / 1e9, 1),
                strings::fmt_fixed(fps, 1),
                strings::fmt_fixed(power.total() * 1e3, 1),
                strings::fmt_fixed(energy::efficiency_gops_per_w(
                                       array.peak_ops_per_s(),
                                       power.total()),
                                   1),
                strings::fmt_fixed(fps / power.total(), 1)});
  }
  std::cout << t1.to_ascii() << "\n";

  // --- frequency sweep at 576 PEs -------------------------------------------
  TextTable t2("DSE — clock sweep @576 PEs");
  t2.set_header({"MHz", "peak GOPS", "fps", "power mW", "GOPS/W"});
  for (const double mhz : {200.0, 350.0, 500.0, 700.0, 900.0}) {
    dataflow::ArrayShape array;
    array.clock_hz = mhz * 1e6;
    const double sec = network_seconds_per_batch(net, array, batch);
    const auto power = model.power(energy::paper_calibration_rates(),
                                   array.clock_hz, 576);
    t2.add_row({strings::fmt_fixed(mhz, 0),
                strings::fmt_fixed(array.peak_ops_per_s() / 1e9, 1),
                strings::fmt_fixed(static_cast<double>(batch) / sec, 1),
                strings::fmt_fixed(power.total() * 1e3, 1),
                strings::fmt_fixed(energy::efficiency_gops_per_w(
                                       array.peak_ops_per_s(),
                                       power.total()),
                                   1)});
  }
  std::cout << t2.to_ascii() << "\n";

  // --- batch-size sweep (kernel-load amortization, §V.B) --------------------
  TextTable t3("DSE — batch size (kernel loads amortize, §V.B)");
  t3.set_header({"batch", "fps", "load share"});
  dataflow::ArrayShape array;
  for (const std::int64_t b : {1, 4, 16, 64, 128, 512}) {
    const double sec = network_seconds_per_batch(net, array, b);
    double load_cycles = 0.0, total_cycles = 0.0;
    for (const auto& layer : net.conv_layers) {
      const auto plan = dataflow::plan_layer(layer, array);
      load_cycles += static_cast<double>(plan.kernel_load_cycles_per_batch());
      total_cycles += static_cast<double>(plan.cycles_per_batch(b));
    }
    t3.add_row({std::to_string(b),
                strings::fmt_fixed(static_cast<double>(b) / sec, 1),
                strings::fmt_pct(load_cycles / total_cycles, 2)});
  }
  std::cout << t3.to_ascii() << "\n";
}

// Executes the proxy network at every design point through the server,
// prints the per-point executed figures, and returns the exit code
// (0 unless the shared cache never hit or a fidelity sample diverged).
int run_executed_sweep(const nn::NetworkModel& net, const CliFlags& flags,
                       const ExecModeSelection& sel, std::int64_t workers) {
  const std::int64_t scale =
      std::max<std::int64_t>(1, flags.get_int("exec-scale"));
  const nn::NetworkModel proxy = serve::channel_reduced_proxy(net, scale);

  serve::SweepOptions opts;
  opts.exec_mode = sel.mode;
  opts.batch = std::max<std::int64_t>(1, flags.get_int("sweep-batch"));
  opts.num_workers = workers;
  opts.fidelity_sample_every_n = flags.get_int("fidelity-every");
  serve::SweepDriver driver(proxy, opts);

  std::vector<serve::SweepPointSpec> points = serve::default_sweep_points();
  const std::int64_t limit = flags.get_int("points");
  if (limit > 0 &&
      limit < static_cast<std::int64_t>(points.size()))
    points.resize(static_cast<std::size_t>(limit));

  const auto results = driver.run(points);

  TextTable t("DSE — executed sweep (" + proxy.name + ", batch " +
              std::to_string(opts.batch) + ", " +
              chain::exec_mode_name(sel.mode) + ", shared PlanCache)");
  t.set_header({"point", "PEs", "MHz", "Mcycles", "ms/img", "fps",
                "mJ/img", "hits", "miss", "hit rate"});
  std::uint64_t total_hits = 0;
  bool fidelity_ok = true;
  for (const auto& r : results) {
    total_hits += r.cache_hits;
    fidelity_ok = fidelity_ok && !r.fidelity_diverged;
    const double per_image = static_cast<double>(opts.batch);
    t.add_row({r.point.label, std::to_string(r.point.array.num_pes),
               strings::fmt_fixed(r.point.array.clock_hz / 1e6, 0),
               strings::fmt_fixed(static_cast<double>(r.total_cycles) / 1e6,
                                  2),
               strings::fmt_fixed(r.seconds * 1e3 / per_image, 2),
               strings::fmt_fixed(r.fps, 1),
               strings::fmt_fixed(r.energy_j * 1e3 / per_image, 2),
               std::to_string(r.cache_hits),
               std::to_string(r.cache_misses),
               strings::fmt_pct(r.cache_hit_rate(), 1)});
  }
  std::cout << t.to_ascii();

  const serve::PlanCacheStats cache = driver.plan_cache()->stats();
  std::cout << "plan cache: " << cache.entries << " entries, "
            << cache.hits << " hits / " << cache.lookups()
            << " lookups (" << strings::fmt_pct(cache.hit_rate(), 1)
            << ") across " << results.size() << " executed points\n";
  if (opts.fidelity_sample_every_n > 0)
    std::cout << "fidelity: sampled points cross-checked "
              << (fidelity_ok ? "clean" : "with DIVERGENCE") << "\n";

  if (!fidelity_ok) return 2;
  if (results.size() >= 2 && total_hits == 0) {
    std::cout << "ERROR: shared plan cache never hit across "
              << results.size() << " points\n";
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  std::string err;
  const std::map<std::string, std::string> defaults = {
      {"model", "alexnet"},      {"batch", "128"},
      {"exec-mode", "analytical"}, {"workers", "1"},
      {"exec-scale", "16"},      {"sweep-batch", "2"},
      {"points", "0"},           {"fidelity-every", "0"}};
  if (!flags.parse(argc, argv, defaults, &err)) {
    std::cerr << err << "\n" << CliFlags::usage(defaults);
    return 1;
  }
  ExecModeSelection sel;
  if (!parse_exec_mode_selection(flags.get_string("exec-mode"),
                                 /*allow_compare=*/false,
                                 /*allow_none=*/true, &sel, &err)) {
    std::cerr << err << "\n";
    return 1;
  }
  std::int64_t workers = 1;
  if (!parse_workers_flag(flags, "workers", &workers, &err)) {
    std::cerr << err << "\n";
    return 1;
  }

  const auto net = nn::model_by_name(flags.get_string("model"));
  const std::int64_t batch = flags.get_int("batch");
  const energy::EnergyModel model = energy::EnergyModel::paper_calibrated();

  print_closed_form_tables(net, batch, model);

  if (sel.none) return 0;
  return run_executed_sweep(net, flags, sel, workers);
}
