// Gateway demo: stand up the HTTP/JSON front door over the 3-chip
// heterogeneous fleet and talk to it the way an external client would —
// over a real socket, in JSON, with /metrics scraped at the end.
//
// Default mode drives itself: it binds an ephemeral port, submits a
// mixed (model, batch, priority, deadline) trace through one keep-alive
// connection, prints each wire response (status, chip, wall ms, cycles,
// digest), then scrapes /metrics and shows the fleet counters the
// gateway exports. Two probes ride along: a request whose deadline is
// already past at submit (must resolve "cancelled" over the wire, never
// executed) and an admission-gated request with an unmeetable deadline
// (must resolve "rejected" at submit). The demo exits non-zero if any
// exchange fails, so it doubles as an end-to-end smoke test of the
// socket + JSON + fleet stack.
//
//   ./gateway_demo [--requests=12] [--scale=4] [--threads-per-chip=1]
//                  [--port=0] [--serve=false]
//
// --serve=true skips the self-drive: it prints the bound address and
// serves until stdin closes — point curl at it:
//   curl -s http://127.0.0.1:PORT/healthz
//   curl -s -d '{"model":"lenet","batch":2}' http://127.0.0.1:PORT/v1/submit
//   curl -s http://127.0.0.1:PORT/metrics
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "net/gateway.hpp"
#include "net/http_client.hpp"
#include "net/json.hpp"
#include "serve/fleet.hpp"

using namespace chainnn;

namespace {

// Pulls a response field for display; "?" keeps the table aligned if a
// field is ever missing (which the final gate then reports).
std::string field(const net::Json& doc, const char* key) {
  const net::Json* v = doc.find(key);
  if (v == nullptr) return "?";
  if (v->is_string()) return v->as_string();
  return v->dump();
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  std::string err;
  const std::map<std::string, std::string> defaults = {
      {"requests", "12"},
      {"scale", "4"},
      {"threads-per-chip", "1"},
      {"port", "0"},
      {"serve", "false"}};
  if (!flags.parse(argc, argv, defaults, &err)) {
    std::cerr << err << "\n" << CliFlags::usage(defaults);
    return 1;
  }
  const std::int64_t requests =
      std::max<std::int64_t>(1, flags.get_int("requests"));

  serve::FleetOptions fo;
  fo.threads_per_chip =
      std::max<std::int64_t>(1, flags.get_int("threads-per-chip"));
  fo.preemption = true;
  serve::Fleet fleet(fo);

  net::GatewayOptions go;
  go.http.port = static_cast<std::uint16_t>(flags.get_int("port"));
  go.model_scale = std::max<std::int64_t>(1, flags.get_int("scale"));
  net::Gateway gateway(fleet, go);
  std::cout << "gateway listening on http://127.0.0.1:" << gateway.port()
            << "  (models served at 1/" << go.model_scale
            << " channel scale)\n";

  if (flags.get_bool("serve")) {
    std::cout << "serving until stdin closes; try:\n"
              << "  curl -s http://127.0.0.1:" << gateway.port()
              << "/healthz\n"
              << "  curl -s -d '{\"model\":\"lenet\",\"batch\":2}' "
              << "http://127.0.0.1:" << gateway.port() << "/v1/submit\n"
              << "  curl -s http://127.0.0.1:" << gateway.port()
              << "/metrics\n";
    std::string line;
    while (std::getline(std::cin, line)) {
    }
    return 0;
  }

  net::HttpClient client("127.0.0.1", gateway.port());
  net::HttpResponse resp;
  bool ok = true;

  if (!client.get("/healthz", &resp) || resp.status != 200) {
    std::cerr << "healthz failed: " << client.error() << "\n";
    return 2;
  }

  // Mixed trace plus the two deterministic probes, all on one
  // keep-alive connection. Deadlines on the trace are generous — the
  // demo shows routing and accounting, not manufactured misses.
  TextTable table("wire responses (" + std::to_string(requests) +
                  " trace requests + cancelled/rejected probes)");
  table.set_header({"id", "model", "batch", "tier", "status", "chip",
                    "wall ms", "cycles", "digest"});
  for (std::int64_t i = 0; i < requests + 2; ++i) {
    std::ostringstream body;
    std::string model = (i % 3 == 2) ? "cifar10" : "lenet";
    std::int64_t batch = std::int64_t{1} << (i % 3);
    std::string expect = "ok";
    body << "{\"model\": \"" << model << "\", \"batch\": " << batch;
    if (i < requests) {
      if (i % 4 == 0) body << ", \"priority\": 1";
      if (i % 2 == 1) body << ", \"deadline_ms\": 600000";
    } else if (i == requests) {
      body << ", \"deadline_ms\": -1";  // past at submit -> cancelled
      expect = "cancelled";
    } else {
      body << ", \"deadline_ms\": -1, \"admission\": true";  // rejected
      expect = "rejected";
    }
    body << "}";

    if (!client.post_json("/v1/submit", body.str(), &resp) ||
        resp.status != 200) {
      std::cerr << "submit " << i << " failed: "
                << (client.error().empty() ? "HTTP " + std::to_string(
                                                           resp.status)
                                           : client.error())
                << "\n";
      ok = false;
      continue;
    }
    const auto doc = net::Json::parse(resp.body);
    if (!doc) {
      std::cerr << "submit " << i << ": unparseable response body\n";
      ok = false;
      continue;
    }
    const bool tier1 = i < requests && i % 4 == 0;
    table.add_row({field(*doc, "id"), model, std::to_string(batch),
                   tier1 ? "1" : "0",
                   field(*doc, "status"), field(*doc, "chip"),
                   field(*doc, "wall_ms"), field(*doc, "cycles"),
                   field(*doc, "digest")});
    if (field(*doc, "status") != expect) {
      std::cerr << "submit " << i << ": expected status \"" << expect
                << "\", got \"" << field(*doc, "status") << "\"\n";
      ok = false;
    }
  }
  std::cout << "\n" << table.to_ascii() << "\n";

  // One scrape over the same connection: show the fleet-level counters
  // and the per-tier latency quantiles the gateway exports.
  if (!client.get("/metrics", &resp) || resp.status != 200) {
    std::cerr << "metrics scrape failed: " << client.error() << "\n";
    ok = false;
  } else {
    std::cout << "/metrics (fleet counters + latency quantiles):\n";
    std::istringstream lines(resp.body);
    std::string line;
    while (std::getline(lines, line))
      if (line.rfind("chainnn_fleet_", 0) == 0 ||
          line.rfind("chainnn_gateway_latency_quantile_ms", 0) == 0)
        std::cout << "  " << line << "\n";
  }

  const net::GatewayStats gs = gateway.stats();
  const serve::FleetStats fs = fleet.stats();
  std::cout << "\ngateway: " << gs.submits_ok << " ok, "
            << gs.submits_cancelled << " cancelled, " << gs.submits_rejected
            << " rejected over " << gs.http.requests
            << " HTTP requests on " << gs.http.connections_accepted
            << " connection(s)\n";

  if (!ok || gs.submits_ok != requests || gs.submits_cancelled != 1 ||
      gs.submits_rejected != 1 || gs.submits_failed != 0 ||
      gs.http.parse_errors != 0 || fs.failed != 0) {
    std::cerr << "GATEWAY DEMO FAILED: every trace request must resolve "
                 "\"ok\" over the wire, the probes must resolve "
                 "\"cancelled\" and \"rejected\", and the HTTP layer "
                 "must stay error-free\n";
    return 2;
  }
  return 0;
}
