// Exports a waveform dump of one strip pass to a GTKWave-compatible VCD
// file — the debugging view of the dual-channel systolic pipeline:
// channel head inputs, every PE's multiplexer select (the period-2K
// schedule of Fig. 6), the final psum register and the window-valid
// strobe (one completion per cycle after the K² warm-up).
//
//   ./export_vcd [--kernel=3] [--cols=9] [--out=chain_pass.vcd]
#include <fstream>
#include <iostream>

#include "chain/pass_dump.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "sim/vcd.hpp"

using namespace chainnn;

int main(int argc, char** argv) {
  CliFlags flags;
  std::string err;
  const std::map<std::string, std::string> defaults = {
      {"kernel", "3"}, {"cols", "9"}, {"out", "chain_pass.vcd"}};
  if (!flags.parse(argc, argv, defaults, &err)) {
    std::cerr << err << "\n" << CliFlags::usage(defaults);
    return 1;
  }
  const std::int64_t k = flags.get_int("kernel");
  const std::int64_t cols = flags.get_int("cols");
  if (cols < k) {
    std::cerr << "cols must be >= kernel\n";
    return 1;
  }

  const chain::StripPattern pattern(k, k, 2 * k - 1, cols, k, true);
  Rng rng(7);
  Tensor<std::int16_t> strip(Shape{2 * k - 1, cols});
  Tensor<std::int16_t> kernel(Shape{k, k});
  strip.fill_random(rng, -50, 50);
  kernel.fill_random(rng, -10, 10);

  const std::string vcd = chain::dump_pass_vcd(pattern, strip, kernel);
  const std::string path = flags.get_string("out");
  std::ofstream f(path);
  if (!f) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  f << vcd;
  std::cout << "wrote " << path << " (" << vcd.size() << " bytes): "
            << pattern.num_slots() + k * k << " cycles of a " << k << "x"
            << k << " primitive over a " << (2 * k - 1) << "x" << cols
            << " strip\n"
            << "open with: gtkwave " << path << "\n"
            << "signals: streamer.ch0_in/ch1_in, pe<i>.sel (period-"
            << 2 * k << " mux schedule), primitive.psum_out,\n"
            << "primitive.window_valid (asserts every cycle from slot "
            << k * k - 1 << " on — the paper's '" << k * k
            << "th cycle' steady state)\n";
  return 0;
}
