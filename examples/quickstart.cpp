// Quickstart: quantize a small convolution, run it on the cycle-accurate
// Chain-NN simulator, verify against the golden model, and print the
// cycle / traffic / utilization report.
//
//   ./quickstart [--pes=576] [--kernel=3] [--size=16]
#include <iostream>

#include "chain/accelerator.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "fixed/quantize.hpp"
#include "nn/golden.hpp"

using namespace chainnn;

int main(int argc, char** argv) {
  CliFlags flags;
  std::string err;
  const std::map<std::string, std::string> defaults = {
      {"pes", "576"}, {"kernel", "3"}, {"size", "16"}};
  if (!flags.parse(argc, argv, defaults, &err)) {
    std::cerr << err << "\n" << CliFlags::usage(defaults);
    return 1;
  }

  // 1. Describe a convolutional layer (paper Table I parameters).
  nn::ConvLayerParams layer;
  layer.name = "quickstart";
  layer.in_channels = 3;
  layer.out_channels = 8;
  layer.in_height = layer.in_width = flags.get_int("size");
  layer.kernel = flags.get_int("kernel");
  layer.pad = layer.kernel / 2;
  layer.validate();
  std::cout << "layer: " << layer.to_string() << "\n";

  // 2. Make float data and quantize to the 16-bit fixed-point formats
  //    the datapath uses (§IV.B).
  Rng rng(2024);
  Tensor<float> x_f(Shape{1, layer.in_channels, layer.in_height,
                          layer.in_width});
  Tensor<float> w_f(Shape{layer.out_channels, layer.in_channels,
                          layer.kernel, layer.kernel});
  x_f.fill_random(rng, -1.0, 1.0);
  w_f.fill_random(rng, -0.5, 0.5);

  const fixed::FixedFormat fmt{8};  // Q7.8
  const auto xq = fixed::quantize(x_f.data(), fmt);
  const auto wq = fixed::quantize(w_f.data(), fmt);
  Tensor<std::int16_t> x(x_f.shape(), xq.raw);
  Tensor<std::int16_t> w(w_f.shape(), wq.raw);
  std::cout << "quantized to " << fmt.to_string()
            << ", max quantization error "
            << strings::fmt_fixed(xq.stats.max_abs_error, 6) << "\n";

  // 3. Build the accelerator (the paper's 576-PE instantiation by
  //    default) and run the layer cycle-accurately.
  chain::AcceleratorConfig cfg;
  cfg.array.num_pes = flags.get_int("pes");
  chain::ChainAccelerator acc(cfg);
  const chain::LayerRunResult res = acc.run_layer(layer, x, w);

  // 4. Verify bit-exactness against the golden direct convolution.
  const Tensor<std::int64_t> golden = nn::conv2d_fixed_accum(layer, x, w);
  const bool exact = res.accumulators == golden;
  std::cout << "bit-exact vs golden model: " << (exact ? "YES" : "NO")
            << "\n\n";

  // 5. Report what the hardware did.
  std::cout << "plan:           " << res.plan.to_string() << "\n"
            << "stream cycles:  " << res.stats.stream_cycles << "\n"
            << "drain cycles:   " << res.stats.drain_cycles << "\n"
            << "kernel load:    " << res.stats.kernel_load_cycles
            << " cycles (1 word/cycle)\n"
            << "windows:        " << res.stats.windows_collected << "\n"
            << "MACs:           " << res.stats.macs_performed << "\n"
            << "utilization:    "
            << strings::fmt_pct(res.utilization(), 1) << "\n"
            << "time @700MHz:   "
            << strings::fmt_fixed(res.seconds() * 1e6, 1) << " us\n"
            << "throughput:     "
            << strings::fmt_fixed(res.achieved_ops_per_s() / 1e9, 1)
            << " GOPS (peak "
            << strings::fmt_fixed(cfg.array.peak_ops_per_s() / 1e9, 1)
            << ")\n\n"
            << "traffic — DRAM "
            << strings::fmt_bytes(
                   static_cast<double>(res.traffic.dram_bytes), 1)
            << ", iMemory "
            << strings::fmt_bytes(
                   static_cast<double>(res.traffic.imemory_bytes), 1)
            << ", kMemory "
            << strings::fmt_bytes(
                   static_cast<double>(res.traffic.kmemory_bytes), 1)
            << ", oMemory "
            << strings::fmt_bytes(
                   static_cast<double>(res.traffic.omemory_bytes), 1)
            << "\n";
  return exact ? 0 : 2;
}
