// Fleet demo: serve a mixed VGG-proxy / LeNet-proxy request trace on the
// 3-chip heterogeneous fleet (288 / 576 / 1152 PEs at staggered clocks)
// and show deadline-aware earliest-finish routing beating the best
// single chip on modelled throughput.
//
// Every request's latency on every chip is a closed form of the
// (layer geometry, array shape) pair — the Chain-NN property the router
// exploits — so the "what would one chip have needed" comparison is
// exact, not sampled. The demo exits non-zero if the fleet fails to
// beat the best single chip, a fidelity sample diverges, or any request
// fails: it doubles as a smoke test of the whole serving stack.
//
//   ./fleet_demo [--requests=24] [--scale=16] [--threads-per-chip=1]
//                [--fidelity-every=0]
//
// Fidelity sampling defaults to off here: a cycle-accurate replay of a
// VGG-proxy request takes minutes of host time and stalls its chip's
// worker long enough to blow realistic deadlines (bench_micro --fleet
// keeps sampling on, over proxies small enough to replay quickly).
#include <future>
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "serve/fleet.hpp"
#include "serve/sweep_driver.hpp"

using namespace chainnn;

int main(int argc, char** argv) {
  CliFlags flags;
  std::string err;
  const std::map<std::string, std::string> defaults = {
      {"requests", "24"},
      {"scale", "16"},
      {"threads-per-chip", "1"},
      {"fidelity-every", "0"}};
  if (!flags.parse(argc, argv, defaults, &err)) {
    std::cerr << err << "\n" << CliFlags::usage(defaults);
    return 1;
  }
  const std::int64_t requests = std::max<std::int64_t>(3,
                                                       flags.get_int("requests"));
  const std::int64_t scale = std::max<std::int64_t>(1, flags.get_int("scale"));

  // Channel-reduced proxies keep every layer's spatial geometry but
  // divide the channel counts, so full networks execute in milliseconds
  // while still exercising VGG's deep 3x3 stacks vs LeNet's small maps.
  const nn::NetworkModel vgg = serve::channel_reduced_proxy(nn::vgg16(), scale);
  const nn::NetworkModel lenet =
      serve::channel_reduced_proxy(nn::lenet_mnist(), 2);

  serve::FleetOptions fo;
  fo.threads_per_chip =
      std::max<std::int64_t>(1, flags.get_int("threads-per-chip"));
  fo.fidelity_sample_every_n = flags.get_int("fidelity-every");
  fo.preemption = true;  // higher tiers evict running lower-tier work
  serve::Fleet fleet(fo);

  std::cout << "fleet:\n";
  for (const serve::ChipSpec& chip : fleet.chips())
    std::cout << "  " << chip.name << ": " << chip.array.num_pes << " PEs @ "
              << strings::fmt_fixed(chip.array.clock_hz / 1e6, 0) << " MHz\n";

  // Mixed trace: VGG-heavy with LeNet interleave, batches 1/2/4, a
  // high-priority tier every fourth request, deadlines on every other.
  std::vector<serve::FleetTraceEntry> trace;
  for (std::int64_t i = 0; i < requests; ++i) {
    serve::FleetTraceEntry e;
    e.net = (i % 3 == 1) ? &lenet : &vgg;
    e.batch = std::int64_t{1} << (i % 3);
    if (i % 4 == 0) e.options.priority = 1;
    if (i % 2 == 1) e.options.deadline_ms = 600e3;
    trace.push_back(e);
  }

  const serve::FleetTraceReport report = serve::run_fleet_trace(fleet, trace);

  // Admission-control probe: a request whose microscopic deadline no
  // chip's modelled finish time can meet must be refused at submit —
  // kRejected, never executed, nothing charged to any backlog.
  serve::RequestOptions infeasible;
  infeasible.deadline_ms = 1e-3;
  infeasible.admission = true;
  const serve::InferenceResult rejected_probe =
      fleet.submit(vgg, 1, infeasible).get();
  fleet.wait_idle();
  const serve::FleetStats stats = fleet.stats();
  const std::size_t num_chips = fleet.chips().size();

  TextTable table("mixed trace: " + std::to_string(requests) +
                  " requests (VGG/" + std::to_string(scale) +
                  " proxy + LeNet proxy), routed by modelled earliest finish");
  table.set_header({"chip", "routed", "modelled busy (ms)",
                    "whole trace alone (ms)"});
  for (std::size_t c = 0; c < num_chips; ++c)
    table.add_row({fleet.chips()[c].name,
                   std::to_string(stats.chips[c].routed),
                   strings::fmt_fixed(report.busy_seconds[c] * 1e3, 3),
                   strings::fmt_fixed(report.single_chip_seconds[c] * 1e3,
                                      3)});
  std::cout << "\n" << table.to_ascii() << "\n";

  const double fleet_makespan = report.fleet_makespan_seconds();
  const double speedup = report.modelled_speedup();
  std::cout << "fleet modelled makespan: "
            << strings::fmt_fixed(fleet_makespan * 1e3, 3) << " ms ("
            << strings::fmt_fixed(
                   fleet_makespan == 0.0
                       ? 0.0
                       : static_cast<double>(report.completed) /
                             fleet_makespan,
                   1)
            << " modelled rps)\n"
            << "best single chip ("
            << fleet.chips()[report.best_single_chip()].name << "):     "
            << strings::fmt_fixed(report.best_single_seconds() * 1e3, 3)
            << " ms -> fleet is " << strings::fmt_fixed(speedup, 2)
            << "x faster\n"
            << "completed " << stats.completed << "/" << requests
            << ", deadline misses " << stats.deadline_misses
            << ", cancelled " << stats.cancelled << ", preemptions "
            << stats.preemptions << " (" << stats.resumes
            << " resumed), admission rejected " << stats.rejected
            << ", fidelity " << stats.fidelity_samples << " sampled / "
            << stats.fidelity_divergences << " diverged, plan cache "
            << strings::fmt_fixed(100.0 * stats.plan_cache.hit_rate(), 1)
            << "% hits (" << stats.plan_cache.entries << " entries)\n";

  if (stats.failed != 0 || stats.fidelity_divergences != 0 ||
      stats.completed != requests || speedup <= 1.0 ||
      rejected_probe.status != serve::RequestStatus::kRejected ||
      stats.resumes != stats.preemptions) {
    std::cerr << "FLEET DEMO FAILED: fleet must complete every request, "
                 "cross-check clean, beat the best single chip, reject "
                 "the infeasible-deadline probe, and resume every "
                 "preempted request\n";
    return 2;
  }
  return 0;
}
