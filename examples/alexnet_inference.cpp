// AlexNet inference on Chain-NN: runs the five convolutional layers (the
// paper's workload, §V.B) end to end — convolutions cycle-accurately on
// the chain, ReLU/pooling on the host — and reports per-layer cycles,
// traffic, modelled power and fps.
//
// Full 227x227 AlexNet at batch 1 takes a few minutes in the register-
// level simulator; the default --scale=4 divides channel counts by 4 for
// a quick run while keeping every geometry (K=11 stride 4, groups...)
// intact. Use --scale=1 for the full network.
//
//   ./alexnet_inference [--scale=4] [--verify=true]
#include <iostream>

#include "chain/accelerator.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "energy/energy_model.hpp"
#include "nn/golden.hpp"
#include "nn/layers.hpp"
#include "nn/models.hpp"

using namespace chainnn;

int main(int argc, char** argv) {
  CliFlags flags;
  std::string err;
  const std::map<std::string, std::string> defaults = {{"scale", "4"},
                                                       {"verify", "true"}};
  if (!flags.parse(argc, argv, defaults, &err)) {
    std::cerr << err << "\n" << CliFlags::usage(defaults);
    return 1;
  }
  const std::int64_t scale = flags.get_int("scale");
  const bool verify = flags.get_bool("verify");

  auto net = nn::alexnet();
  if (scale > 1) {
    for (auto& l : net.conv_layers) {
      l.in_channels = std::max(l.groups, l.in_channels / scale);
      l.out_channels = std::max(l.groups, l.out_channels / scale);
      l.in_channels -= l.in_channels % l.groups;
      l.out_channels -= l.out_channels % l.groups;
      l.validate();
    }
  }

  chain::ChainAccelerator acc{
      chain::AcceleratorConfig{}};  // the paper's 576-PE chip
  const energy::EnergyModel energy_model =
      energy::EnergyModel::paper_calibrated();
  Rng rng(1);

  // Input image and per-layer synthetic kernels.
  Tensor<std::int16_t> act(Shape{1, net.conv_layers[0].in_channels, 227,
                                 227});
  act.fill_random(rng, -64, 64);

  TextTable t("AlexNet conv layers on Chain-NN (scale 1/" +
              std::to_string(scale) + " channels)");
  t.set_header({"layer", "cycles", "ms @700MHz", "util", "GOPS",
                "power (mW)", "bit-exact"});
  double total_s = 0.0;
  std::int64_t total_load = 0;

  // AlexNet host-side pipeline pieces between convs.
  const nn::PoolParams pool{3, 2, 0};

  for (std::size_t i = 0; i < net.conv_layers.size(); ++i) {
    nn::ConvLayerParams layer = net.conv_layers[i];
    layer.in_height = act.shape().dim(2);
    layer.in_width = act.shape().dim(3);
    layer.validate();

    Tensor<std::int16_t> w(Shape{layer.out_channels,
                                 layer.channels_per_group(), layer.kernel,
                                 layer.kernel});
    w.fill_random(rng, -16, 16);

    const auto res = acc.run_layer(layer, act, w);
    bool exact = true;
    if (verify)
      exact = res.accumulators == nn::conv2d_fixed_accum(layer, act, w);

    const auto rates = energy::rates_from_plan(res.plan);
    const auto power = energy_model.power(rates, 700e6, 576);

    t.add_row({layer.name, std::to_string(res.stats.total_cycles()),
               strings::fmt_fixed(res.seconds() * 1e3, 3),
               strings::fmt_pct(res.utilization(), 1),
               strings::fmt_fixed(res.achieved_ops_per_s() / 1e9, 1),
               strings::fmt_fixed(power.total() * 1e3, 1),
               exact ? "yes" : "NO"});
    total_s += res.seconds();
    total_load += res.stats.kernel_load_cycles;

    // Host-side: ReLU always; pooling after conv1, conv2, conv5.
    Tensor<std::int16_t> out = res.ofmaps;
    nn::relu_inplace(out);
    if (i == 0 || i == 1 || i == 4) out = nn::max_pool(out, pool);
    act = std::move(out);
  }

  std::cout << t.to_ascii() << "\n"
            << "total conv time: " << strings::fmt_fixed(total_s * 1e3, 2)
            << " ms/image, kernel load "
            << strings::fmt_fixed(total_load / 700e6 * 1e3, 2)
            << " ms/batch\n"
            << "fps (batch 128, conv layers): "
            << strings::fmt_fixed(
                   128.0 / (128.0 * total_s + total_load / 700e6), 1)
            << "  (paper at full scale: 326.2)\n"
            << "final activation tensor: " << act.shape().to_string()
            << "\n";
  return 0;
}
