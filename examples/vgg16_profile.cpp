// VGG-16 profiling on Chain-NN: plans all thirteen conv layers at full
// scale and reports per-layer cycles, utilization, m-group / c-tile
// structure and traffic. Shows the c-tiling path (C = 512 > 256 kMemory
// words) and the oMemory-capped residency of the wide early layers.
//
// The binary then *executes* a channel-reduced proxy of the network
// (full-size geometry, channels divided by --exec-scale) end to end
// through NetworkRunner on the selected engine:
//
//   --exec-mode=analytical      (default) golden ofmaps + closed-form
//                               cycles/traffic; fast enough to run every
//                               invocation.
//   --exec-mode=cycle-accurate  the register-level simulator (slow).
//   --exec-mode=compare         both, asserting identical results and
//                               reporting the wall-clock speedup.
//   --exec-mode=none            skip execution (plan table only).
//
// Both engines of a compare run resolve plans through one shared
// serve::PlanCache (the second run hits on every layer — VGG's repeated
// 3x3 shapes already hit within one run), and --workers shards the batch
// through BatchExecutor.
//
//   ./vgg16_profile [--batch=4] [--pes=576] [--exec-mode=analytical]
//                   [--exec-scale=16] [--workers=1]
#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>

#include "chain/network_runner.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "dataflow/traffic.hpp"
#include "energy/energy_model.hpp"
#include "nn/models.hpp"
#include "serve/inference_server.hpp"
#include "serve/sweep_driver.hpp"

using namespace chainnn;

namespace {

struct ExecutedRun {
  chain::NetworkRunResult result;
  double wall_ms = 0.0;
};

ExecutedRun execute_proxy(const nn::NetworkModel& proxy,
                          const dataflow::ArrayShape& array,
                          chain::ExecMode mode, std::int64_t workers,
                          const std::shared_ptr<serve::PlanCache>& cache) {
  chain::AcceleratorConfig cfg;
  cfg.array = array;
  cfg.exec_mode = mode;
  chain::ChainAccelerator acc(cfg, cache);
  const energy::EnergyModel energy = energy::EnergyModel::paper_calibrated();
  chain::NetworkRunner runner(acc, energy);

  Rng rng(7);
  Tensor<std::int16_t> input(
      Shape{1, proxy.conv_layers.front().in_channels,
            proxy.conv_layers.front().in_height,
            proxy.conv_layers.front().in_width});
  input.fill_random(rng, -64, 64);

  chain::NetworkRunOptions opts;
  opts.verify_against_golden = false;  // compare mode checks equality
  opts.num_workers = workers;
  opts.plan_cache = cache;
  // VGG-16 pool placement (2x2/2 after blocks 1..5) so the flowing
  // activations shrink spatially the way the real network does.
  opts.inter_layer.assign(proxy.conv_layers.size(), chain::InterLayerOp{});
  for (const std::size_t after : {1u, 3u, 6u, 9u, 12u}) {
    if (after < opts.inter_layer.size()) {
      opts.inter_layer[after].pool = true;
      opts.inter_layer[after].pool_params = nn::PoolParams{2, 2, 0};
    }
  }

  ExecutedRun run;
  const auto t0 = std::chrono::steady_clock::now();
  run.result = runner.run(proxy, input, opts);
  const auto t1 = std::chrono::steady_clock::now();
  run.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  std::string err;
  const std::map<std::string, std::string> defaults = {
      {"batch", "4"},
      {"pes", "576"},
      {"exec-mode", "analytical"},
      {"exec-scale", "16"},
      {"workers", "1"}};
  if (!flags.parse(argc, argv, defaults, &err)) {
    std::cerr << err << "\n" << CliFlags::usage(defaults);
    return 1;
  }
  const std::int64_t batch = flags.get_int("batch");
  ExecModeSelection sel;
  if (!parse_exec_mode_selection(flags.get_string("exec-mode"),
                                 /*allow_compare=*/true,
                                 /*allow_none=*/true, &sel, &err)) {
    std::cerr << err << "\n";
    return 1;
  }
  std::int64_t workers = 1;
  if (!parse_workers_flag(flags, "workers", &workers, &err)) {
    std::cerr << err << "\n";
    return 1;
  }

  dataflow::ArrayShape array;
  array.num_pes = flags.get_int("pes");
  const auto net = nn::vgg16();
  const energy::EnergyModel energy_model =
      energy::EnergyModel::paper_calibrated();

  TextTable t("VGG-16 on Chain-NN (" + std::to_string(array.num_pes) +
              " PEs @ 700 MHz, batch " + std::to_string(batch) + ")");
  t.set_header({"layer", "prims", "m-grp", "c-tiles", "ms/img", "util",
                "DRAM MB/b", "oMem MB/b", "mW"});
  double total_ms = 0.0;
  double total_energy_j = 0.0;
  for (const auto& layer : net.conv_layers) {
    const auto plan = dataflow::plan_layer(layer, array);
    const auto traffic = dataflow::model_traffic(plan, batch);
    const double ms =
        static_cast<double>(plan.cycles_per_image()) / array.clock_hz * 1e3;
    const auto rates = energy::rates_from_plan(plan);
    const auto power = energy_model.power(rates, array.clock_hz,
                                          array.num_pes);
    t.add_row({layer.name, std::to_string(plan.primitives),
               std::to_string(plan.m_groups),
               std::to_string(plan.c_tiles), strings::fmt_fixed(ms, 2),
               strings::fmt_pct(plan.utilization_per_image(), 1),
               strings::fmt_fixed(
                   static_cast<double>(traffic.dram_total()) / 1048576.0, 1),
               strings::fmt_fixed(
                   static_cast<double>(traffic.omem_total()) / 1048576.0, 1),
               strings::fmt_fixed(power.total() * 1e3, 1)});
    total_ms += ms;
    total_energy_j += power.total() * ms / 1e3;
  }
  std::cout << t.to_ascii() << "\n"
            << "total: " << strings::fmt_fixed(total_ms, 1)
            << " ms/image ("
            << strings::fmt_fixed(1000.0 / total_ms, 1) << " fps), "
            << strings::fmt_fixed(total_energy_j * 1e3, 1)
            << " mJ/image for "
            << strings::fmt_fixed(
                   static_cast<double>(net.macs_per_image()) / 1e9, 1)
            << " GMAC\n"
            << "note: VGG's K=3 layers regroup into 64 primitives "
               "(100% PE allocation); early 224x224 layers\nare capped by "
               "oMemory partial capacity, and C=512 layers run two "
               "kMemory channel residencies\nwith a psum spill between "
               "them.\n";

  if (sel.none) return 0;

  // --- execution: channel-reduced proxy through the selected engine --------
  const std::int64_t scale =
      std::max<std::int64_t>(1, flags.get_int("exec-scale"));
  const nn::NetworkModel proxy = serve::channel_reduced_proxy(net, scale);
  const auto cache = std::make_shared<serve::PlanCache>();

  std::cout << "\nexecuting " << proxy.name
            << " (channels/" << scale << ", one image) — exec-mode "
            << sel.name() << ", workers " << workers << "\n";
  if (sel.compare) {
    const ExecutedRun fast = execute_proxy(
        proxy, array, chain::ExecMode::kAnalytical, workers, cache);
    const ExecutedRun slow = execute_proxy(
        proxy, array, chain::ExecMode::kCycleAccurate, workers, cache);
    std::string why;
    const bool identical =
        serve::network_runs_identical(fast.result, slow.result, &why);
    const serve::PlanCacheStats cs = cache->stats();
    std::cout << "cycle-accurate: " << strings::fmt_fixed(slow.wall_ms, 1)
              << " ms wall, analytical: "
              << strings::fmt_fixed(fast.wall_ms, 1) << " ms wall => "
              << strings::fmt_fixed(slow.wall_ms / fast.wall_ms, 1)
              << "x speedup; ofmaps/cycles/traffic "
              << (identical ? "identical" : "DIFFER (" + why + ")") << "\n"
              << "plan cache: " << cs.entries << " entries, " << cs.hits
              << "/" << cs.lookups() << " hits ("
              << strings::fmt_pct(cs.hit_rate(), 1)
              << ") across both engines\n";
    return identical ? 0 : 2;
  }
  const ExecutedRun run =
      execute_proxy(proxy, array, sel.mode, workers, cache);
  const serve::PlanCacheStats cs = cache->stats();
  std::cout << "wall: " << strings::fmt_fixed(run.wall_ms, 1)
            << " ms for " << run.result.layers.size()
            << " conv layers; modelled "
            << strings::fmt_fixed(run.result.total_seconds() * 1e3, 2)
            << " ms/image on-chip ("
            << strings::fmt_fixed(run.result.fps(batch), 1) << " fps at batch "
            << batch << "); plan cache " << cs.hits << "/" << cs.lookups()
            << " hits\n";
  return 0;
}
