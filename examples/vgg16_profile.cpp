// VGG-16 profiling on Chain-NN: plans all thirteen conv layers at full
// scale (no simulation needed — the closed forms are validated against
// the cycle simulator by the test suite) and reports per-layer cycles,
// utilization, m-group / c-tile structure and traffic. Shows the c-tiling
// path (C = 512 > 256 kMemory words) and the oMemory-capped residency of
// the wide early layers.
//
//   ./vgg16_profile [--batch=4] [--pes=576]
#include <iostream>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "dataflow/traffic.hpp"
#include "energy/energy_model.hpp"
#include "nn/models.hpp"

using namespace chainnn;

int main(int argc, char** argv) {
  CliFlags flags;
  std::string err;
  const std::map<std::string, std::string> defaults = {{"batch", "4"},
                                                       {"pes", "576"}};
  if (!flags.parse(argc, argv, defaults, &err)) {
    std::cerr << err << "\n" << CliFlags::usage(defaults);
    return 1;
  }
  const std::int64_t batch = flags.get_int("batch");

  dataflow::ArrayShape array;
  array.num_pes = flags.get_int("pes");
  const auto net = nn::vgg16();
  const energy::EnergyModel energy_model =
      energy::EnergyModel::paper_calibrated();

  TextTable t("VGG-16 on Chain-NN (" + std::to_string(array.num_pes) +
              " PEs @ 700 MHz, batch " + std::to_string(batch) + ")");
  t.set_header({"layer", "prims", "m-grp", "c-tiles", "ms/img", "util",
                "DRAM MB/b", "oMem MB/b", "mW"});
  double total_ms = 0.0;
  double total_energy_j = 0.0;
  for (const auto& layer : net.conv_layers) {
    const auto plan = dataflow::plan_layer(layer, array);
    const auto traffic = dataflow::model_traffic(plan, batch);
    const double ms =
        static_cast<double>(plan.cycles_per_image()) / array.clock_hz * 1e3;
    const auto rates = energy::rates_from_plan(plan);
    const auto power = energy_model.power(rates, array.clock_hz,
                                          array.num_pes);
    t.add_row({layer.name, std::to_string(plan.primitives),
               std::to_string(plan.m_groups),
               std::to_string(plan.c_tiles), strings::fmt_fixed(ms, 2),
               strings::fmt_pct(plan.utilization_per_image(), 1),
               strings::fmt_fixed(
                   static_cast<double>(traffic.dram_total()) / 1048576.0, 1),
               strings::fmt_fixed(
                   static_cast<double>(traffic.omem_total()) / 1048576.0, 1),
               strings::fmt_fixed(power.total() * 1e3, 1)});
    total_ms += ms;
    total_energy_j += power.total() * ms / 1e3;
  }
  std::cout << t.to_ascii() << "\n"
            << "total: " << strings::fmt_fixed(total_ms, 1)
            << " ms/image ("
            << strings::fmt_fixed(1000.0 / total_ms, 1) << " fps), "
            << strings::fmt_fixed(total_energy_j * 1e3, 1)
            << " mJ/image for "
            << strings::fmt_fixed(
                   static_cast<double>(net.macs_per_image()) / 1e9, 1)
            << " GMAC\n"
            << "note: VGG's K=3 layers regroup into 64 primitives "
               "(100% PE allocation); early 224x224 layers\nare capped by "
               "oMemory partial capacity, and C=512 layers run two "
               "kMemory channel residencies\nwith a psum spill between "
               "them.\n";
  return 0;
}
