// Sparsity study: runs a small two-layer network on the chain, measures
// how ReLU between the layers creates zero ifmap operands for the second
// convolution, and prices zero-gating with the calibrated energy model.
//
//   ./sparsity_study [--channels=8] [--size=14]
#include <iostream>

#include "chain/network_runner.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "nn/sparsity.hpp"

using namespace chainnn;

int main(int argc, char** argv) {
  CliFlags flags;
  std::string err;
  const std::map<std::string, std::string> defaults = {{"channels", "8"},
                                                       {"size", "14"}};
  if (!flags.parse(argc, argv, defaults, &err)) {
    std::cerr << err << "\n" << CliFlags::usage(defaults);
    return 1;
  }
  const std::int64_t ch = flags.get_int("channels");
  const std::int64_t hw = flags.get_int("size");

  nn::NetworkModel net;
  net.name = "sparsity-study";
  nn::ConvLayerParams l1;
  l1.name = "conv1";
  l1.in_channels = 3;
  l1.out_channels = ch;
  l1.in_height = l1.in_width = hw;
  l1.kernel = 3;
  l1.pad = 1;
  nn::ConvLayerParams l2 = l1;
  l2.name = "conv2";
  l2.in_channels = ch;
  l2.out_channels = ch;
  net.conv_layers = {l1, l2};

  chain::AcceleratorConfig cfg;
  chain::ChainAccelerator acc(cfg);
  const auto model = energy::EnergyModel::paper_calibrated();
  chain::NetworkRunner runner(acc, model);

  Rng rng(2025);
  Tensor<std::int16_t> input(Shape{1, 3, hw, hw});
  input.fill_random(rng, -128, 128);

  const auto res = runner.run(net, input);
  std::cout << "network verified bit-exact: "
            << (res.all_verified() ? "YES" : "NO") << "\n\n";

  // Layer-2 input is the ReLU'd layer-1 output captured implicitly by
  // the runner; recreate its sparsity for the report.
  Tensor<std::int16_t> l1_out = res.layers[0].run.ofmaps;
  nn::relu_inplace(l1_out);
  const double act_sparsity = nn::zero_element_fraction(l1_out);

  TextTable t("post-ReLU sparsity and gating opportunity");
  t.set_header({"quantity", "value"});
  t.add_row({"layer-1 output zero fraction (after ReLU)",
             strings::fmt_pct(act_sparsity, 1)});

  Tensor<std::int16_t> w2(Shape{l2.out_channels, l2.in_channels, 3, 3});
  w2.fill_random(rng, -16, 16);
  nn::ConvLayerParams l2_resolved = res.layers[1].layer;
  const auto zs = nn::count_zero_macs(l2_resolved, l1_out, w2);
  t.add_row({"layer-2 zero-operand MAC fraction",
             strings::fmt_pct(zs.zero_fraction(), 1)});

  const auto base =
      model.power(energy::paper_calibration_rates(), 700e6, 576);
  const double gated =
      base.chain_w * (1.0 - 0.55 * zs.zero_fraction()) + base.kmem_w +
      base.imem_w + base.omem_w;
  t.add_row({"chip power without gating",
             strings::fmt_fixed(base.total() * 1e3, 1) + " mW"});
  t.add_row({"chip power with zero-gating (55% of PE energy gateable)",
             strings::fmt_fixed(gated * 1e3, 1) + " mW"});
  t.add_row({"efficiency with gating",
             strings::fmt_fixed(energy::efficiency_gops_per_w(
                                    2.0 * 576 * 700e6, gated),
                                1) +
                 " GOPS/W (paper baseline: 1421.0)"});
  std::cout << t.to_ascii();
  return res.all_verified() ? 0 : 2;
}
