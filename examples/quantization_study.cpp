// Quantization study: the C++ counterpart of the paper's
// "float-point-to-fix-point simulator" (§V.A). Sweeps Q-formats for a
// conv layer, runs the fixed-point golden model and the chain simulator,
// and reports SQNR / max error / saturation counts so a user can pick
// per-layer formats for 16-bit deployment.
//
//   ./quantization_study [--size=16] [--kernel=5]
#include <iostream>

#include "chain/accelerator.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "fixed/quantize.hpp"
#include "nn/golden.hpp"

using namespace chainnn;

int main(int argc, char** argv) {
  CliFlags flags;
  std::string err;
  const std::map<std::string, std::string> defaults = {{"size", "16"},
                                                       {"kernel", "5"}};
  if (!flags.parse(argc, argv, defaults, &err)) {
    std::cerr << err << "\n" << CliFlags::usage(defaults);
    return 1;
  }

  nn::ConvLayerParams layer;
  layer.name = "quant";
  layer.in_channels = 8;
  layer.out_channels = 8;
  layer.in_height = layer.in_width = flags.get_int("size");
  layer.kernel = flags.get_int("kernel");
  layer.pad = layer.kernel / 2;
  layer.validate();

  Rng rng(7);
  Tensor<float> x_f(Shape{1, layer.in_channels, layer.in_height,
                          layer.in_width});
  Tensor<float> w_f(Shape{layer.out_channels, layer.in_channels,
                          layer.kernel, layer.kernel});
  x_f.fill_random(rng, -1.0, 1.0);
  for (auto& w : w_f.mutable_data())
    w = static_cast<float>(rng.gaussian(0.0, 0.15));

  const Tensor<float> y_ref = nn::conv2d_float(layer, x_f, w_f);

  const auto auto_fmt = fixed::choose_format(x_f.data(),
                                             fixed::FormatPolicy::kMaxAbs);
  std::cout << "layer: " << layer.to_string() << "\n"
            << "auto-chosen ifmap format: " << auto_fmt.to_string()
            << "\n\n";

  TextTable t("Q-format sweep — fixed-point conv vs float reference");
  t.set_header({"format", "SQNR (dB)", "max |err|", "saturations",
                "chain == golden"});
  for (const int frac : {4, 6, 8, 10, 12, 14}) {
    const fixed::FixedFormat fmt{frac};
    const auto xq = fixed::quantize(x_f.data(), fmt);
    const auto wq = fixed::quantize(w_f.data(), fmt);
    Tensor<std::int16_t> x(x_f.shape(), xq.raw);
    Tensor<std::int16_t> w(w_f.shape(), wq.raw);

    const nn::FixedConvResult fixed_res =
        nn::conv2d_fixed(layer, x, w, fmt, fmt, fmt);

    // Also run the chain once per format to confirm the hardware matches
    // the golden model in every numeric regime.
    chain::AcceleratorConfig cfg;
    cfg.array.num_pes = 128;
    cfg.array.kmem_words_per_pe = 64;
    cfg.ifmap_fmt = cfg.kernel_fmt = cfg.ofmap_fmt = fmt;
    chain::ChainAccelerator acc(cfg);
    const auto chain_res = acc.run_layer(layer, x, w);
    const bool match = chain_res.ofmaps == fixed_res.ofmaps;

    // Error of the fixed conv vs the float reference.
    double sig = 0.0, noise = 0.0, max_err = 0.0;
    for (std::int64_t i = 0; i < y_ref.num_elements(); ++i) {
      const double ref = double{y_ref.at_flat(i)};
      const double got =
          static_cast<double>(fixed_res.ofmaps.at_flat(i)) / fmt.scale();
      sig += ref * ref;
      noise += (ref - got) * (ref - got);
      max_err = std::max(max_err, std::abs(ref - got));
    }
    const double sqnr =
        noise == 0.0 ? 999.0 : 10.0 * std::log10(sig / noise);
    t.add_row({fmt.to_string(), strings::fmt_fixed(sqnr, 1),
               strings::fmt_fixed(max_err, 6),
               std::to_string(fixed_res.narrowing.saturations),
               match ? "yes" : "NO"});
  }
  std::cout << t.to_ascii()
            << "\nhigh fraction counts quantize finely but saturate once "
               "accumulated outputs exceed the\nrepresentable range — the "
               "usual accuracy/headroom trade the paper's simulator "
               "navigated\nper network.\n";
  return 0;
}
