// Parallel Pareto design-space search (ROADMAP item 4): expands the
// (chain length x clock x kernel storage x oMemory x per-layer channel
// mode) grid from the paper's 576-PE/700MHz seed with the no-hierarchy
// closed-form evaluator, prunes dominated points, and emits the Pareto
// frontier as a machine-readable artifact (pareto.json) plus a markdown
// table.
//
// The top-k frontier points are then *re-executed* end to end through
// serve::SweepDriver — the closed forms must reproduce the executed
// cycles exactly and the executed energy to ~double precision, so the
// artifact is validated against the same engines the serving stack runs.
//
//   ./design_search [--model=alexnet] [--scale=1] [--batch=1]
//                   [--max-points=12000] [--topk=4] [--workers=0]
//                   [--pareto-json=pareto.json]   ("" = don't write)
//
// Exit codes: 0 ok; 2 when the frontier is empty, the paper point fell
// off it, nothing was pruned, or a re-executed point disagrees with the
// closed forms.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "serve/design_search.hpp"
#include "serve/router.hpp"
#include "serve/sweep_driver.hpp"

using namespace chainnn;

namespace {

std::string modes_string(const serve::EvaluatedDesignPoint& p) {
  std::string s;
  for (const std::uint8_t d : p.layer_dual) s += d ? 'D' : 'S';
  return s;
}

void write_pareto_json(const std::string& path, const nn::NetworkModel& net,
                       const serve::DesignSearchResult& result) {
  std::ostringstream os;
  os << "{\n  \"model\": \"" << net.name << "\",\n  \"stats\": {"
     << "\"evaluated\": " << result.stats.evaluated
     << ", \"infeasible\": " << result.stats.infeasible
     << ", \"pruned\": " << result.stats.pruned
     << ", \"frontier\": " << result.stats.frontier
     << ", \"waves\": " << result.stats.waves
     << ", \"points_per_sec\": " << result.stats.points_per_sec
     << ", \"contains_paper_point\": "
     << (result.stats.contains_paper_point ? "true" : "false") << "},\n"
     << "  \"frontier\": [\n";
  for (std::size_t i = 0; i < result.frontier.size(); ++i) {
    const serve::EvaluatedDesignPoint& p = result.frontier[i];
    os << "    {\"label\": \"" << p.label << "\""
       << ", \"num_pes\": " << p.array.num_pes
       << ", \"clock_mhz\": " << p.array.clock_hz / 1e6
       << ", \"kmem_words_per_pe\": " << p.array.kmem_words_per_pe
       << ", \"omemory_bytes\": " << p.memory.omemory_bytes
       << ", \"modes\": \"" << modes_string(p) << "\""
       << ", \"cycles\": " << p.cost.total_cycles
       << ", \"seconds\": " << p.cost.seconds
       << ", \"energy_j\": " << p.cost.energy_j
       << ", \"area_gates\": " << p.cost.area_gates << "}"
       << (i + 1 < result.frontier.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::ofstream out(path);
  out << os.str();
  std::cout << "wrote " << path << " (" << result.frontier.size()
            << " frontier points)\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  std::string err;
  const std::map<std::string, std::string> defaults = {
      {"model", "alexnet"},   {"scale", "1"},
      {"batch", "1"},         {"max-points", "12000"},
      {"topk", "4"},          {"workers", "0"},
      {"pareto-json", "pareto.json"}};
  if (!flags.parse(argc, argv, defaults, &err)) {
    std::cerr << err << "\n" << CliFlags::usage(defaults);
    return 1;
  }
  const auto net = nn::model_by_name(flags.get_string("model"));
  const std::int64_t scale = std::max<std::int64_t>(1, flags.get_int("scale"));
  const nn::NetworkModel proxy = serve::channel_reduced_proxy(net, scale);

  auto cache = std::make_shared<serve::PlanCache>();
  serve::DesignSearchOptions opts;
  opts.batch = std::max<std::int64_t>(1, flags.get_int("batch"));
  opts.max_points = flags.get_int("max-points");
  opts.num_workers = flags.get_int("workers");
  opts.plan_cache = cache;
  serve::DesignSearch search(proxy, serve::DesignSpaceGrid::paper_default(),
                             opts);
  const serve::DesignSearchResult result = search.run();
  const serve::DesignSearchStats& s = result.stats;

  std::cout << "design search (" << proxy.name << ", batch " << opts.batch
            << "): " << s.evaluated << " points in " << s.waves
            << " waves, " << strings::fmt_fixed(s.points_per_sec / 1e3, 1)
            << "k points/s\n"
            << "  frontier " << s.frontier << ", pruned " << s.pruned << " ("
            << strings::fmt_pct(s.pruned_fraction(), 1) << "), infeasible "
            << s.infeasible << ", paper point "
            << (s.contains_paper_point ? "ON" : "OFF") << " the frontier\n\n";

  // Markdown table: the k cheapest-by-cycles frontier points that an
  // executed sweep can reproduce (uniform channel mode — the per-request
  // ArrayShape override sets dual_channel globally).
  std::vector<const serve::EvaluatedDesignPoint*> rerun;
  for (const serve::EvaluatedDesignPoint& p : result.frontier)
    if (p.uniform_mode()) rerun.push_back(&p);
  std::sort(rerun.begin(), rerun.end(),
            [](const auto* a, const auto* b) {
              return a->cost.total_cycles != b->cost.total_cycles
                         ? a->cost.total_cycles < b->cost.total_cycles
                         : a->id < b->id;
            });
  const std::size_t topk = static_cast<std::size_t>(
      std::max<std::int64_t>(1, flags.get_int("topk")));
  if (rerun.size() > topk) rerun.resize(topk);

  std::cout << "| point | PEs | MHz | kw/PE | oMem KB | Mcycles | mJ | "
               "Mgates |\n|---|---|---|---|---|---|---|---|\n";
  for (const auto* p : rerun)
    std::cout << "| " << p->label << " | " << p->array.num_pes << " | "
              << strings::fmt_fixed(p->array.clock_hz / 1e6, 0) << " | "
              << p->array.kmem_words_per_pe << " | "
              << p->memory.omemory_bytes / 1024 << " | "
              << strings::fmt_fixed(
                     static_cast<double>(p->cost.total_cycles) / 1e6, 3)
              << " | " << strings::fmt_fixed(p->cost.energy_j * 1e3, 3)
              << " | "
              << strings::fmt_fixed(p->cost.area_gates / 1e6, 2) << " |\n";
  std::cout << "\n";

  // Validate the closed forms end to end: every tabled point re-executes
  // through SweepDriver (its own server carries the point's memory
  // config; the plan cache is shared with the search, so plans are not
  // rebuilt).
  bool executed_ok = true;
  for (const auto* p : rerun) {
    serve::SweepOptions so;
    so.batch = opts.batch;
    so.plan_cache = cache;
    so.memory = p->memory;
    serve::SweepDriver driver(proxy, so);
    dataflow::ArrayShape array = p->array;
    array.dual_channel = p->layer_dual.empty() || p->layer_dual.front() != 0;
    const auto executed = driver.run({{p->label, array}});
    const auto& r = executed.front();
    const double energy_rel =
        r.energy_j == 0.0 ? std::abs(p->cost.energy_j - r.energy_j)
                          : std::abs(p->cost.energy_j - r.energy_j) /
                                std::abs(r.energy_j);
    const bool ok = r.total_cycles == p->cost.total_cycles &&
                    energy_rel <= 1e-9;
    executed_ok = executed_ok && ok;
    std::cout << "re-executed " << p->label << ": cycles "
              << r.total_cycles << (r.total_cycles == p->cost.total_cycles
                                        ? " (exact match)"
                                        : " (MISMATCH)")
              << ", energy rel err " << energy_rel << (ok ? "" : "  <-- FAIL")
              << "\n";
  }

  const std::string json_path = flags.get_string("pareto-json");
  if (!json_path.empty()) write_pareto_json(json_path, proxy, result);

  if (s.frontier == 0) {
    std::cout << "ERROR: empty frontier\n";
    return 2;
  }
  if (!s.contains_paper_point) {
    std::cout << "ERROR: paper point (576 PEs @ 700 MHz) fell off the "
                 "frontier\n";
    return 2;
  }
  if (s.pruned == 0) {
    std::cout << "ERROR: dominance pruning eliminated nothing\n";
    return 2;
  }
  if (!executed_ok) {
    std::cout << "ERROR: executed sweep disagrees with the closed forms\n";
    return 2;
  }
  return 0;
}
