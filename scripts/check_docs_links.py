#!/usr/bin/env python3
"""Relative-link checker for the repo's markdown tree (stdlib only).

Usage: check_docs_links.py [REPO_ROOT]

Scans every tracked *.md file (README.md, docs/, and friends) for
markdown links and fails (exit 1) when a *relative* link points at a
file that does not exist, or an intra-document `#fragment` names a
heading the target file does not contain. External links (http/https/
mailto) are deliberately not fetched — CI must not depend on the
network — and bare URLs outside link syntax are ignored.

Heading anchors follow the GitHub convention: lowercase, spaces to
hyphens, punctuation (except hyphens/underscores) stripped.
"""

import os
import re
import sys

# [text](target) — stops at the first unescaped ')'; images share the
# syntax via the leading '!', which the pattern happily includes.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)

SKIP_DIRS = {".git", "build", "build-rel", "build-san", "build-tsan",
             "build-warn", "build-clang", ".github"}


def anchor_of(heading):
    """GitHub-style anchor for a heading line's text."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def anchors_in(path, cache={}):
    if path not in cache:
        with open(path, encoding="utf-8") as f:
            body = CODE_FENCE_RE.sub("", f.read())
        cache[path] = {anchor_of(h) for h in HEADING_RE.findall(body)}
    return cache[path]


def check_file(md_path, root):
    """Returns a list of 'file:target: why' problem strings."""
    with open(md_path, encoding="utf-8") as f:
        body = CODE_FENCE_RE.sub("", f.read())
    problems = []
    rel_md = os.path.relpath(md_path, root)
    for match in LINK_RE.finditer(body):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        # The badge row's ../../actions/... links resolve on GitHub's
        # web UI (relative to the repo page), not in the worktree.
        if target.startswith("../../actions/"):
            continue
        path_part, _, fragment = target.partition("#")
        dest = (md_path if not path_part
                else os.path.normpath(
                    os.path.join(os.path.dirname(md_path), path_part)))
        if not os.path.exists(dest):
            problems.append(f"{rel_md}: broken link -> {target}")
            continue
        if fragment and dest.endswith(".md"):
            if fragment not in anchors_in(dest):
                problems.append(
                    f"{rel_md}: missing anchor -> {target}")
    return problems


def main(argv):
    root = os.path.abspath(argv[1]) if len(argv) > 1 else os.path.abspath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
    problems = []
    count = 0
    for md_path in sorted(markdown_files(root)):
        count += 1
        problems.extend(check_file(md_path, root))
    for problem in problems:
        print(f"BROKEN: {problem}", file=sys.stderr)
    print(f"checked {count} markdown file(s): "
          f"{len(problems)} broken link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
