#!/usr/bin/env python3
"""CI perf-regression gate over BENCH_serve.json.

Usage: compare_bench.py CURRENT_JSON BASELINE_JSON

Compares the serving benchmark emitted by `bench_micro --serve --fleet`
against the committed baseline and fails (exit 1) when:

  * analytical requests/sec drops more than 25% below baseline (wall
    clock — the generous margin absorbs runner-to-runner noise);
  * the plan-cache hit rate drops more than 5 points below baseline
    (deterministic for a fixed request mix: a drop means a caching
    regression, not noise);
  * any request failed or any fidelity sample diverged (bit-identity of
    the two engines is non-negotiable);
  * the fleet section (when present in both files) stops beating the
    best single chip in modelled throughput, loses more than 25% of its
    modelled rps (closed forms — deterministic for a fixed trace), or
    mis-counts the trace's one deliberately-cancelled request;
  * the preemption counters disagree with themselves (resumes must never
    exceed preemptions — every resume consumes a checkpoint);
  * the admission A/B (same trace with admission control off, then on)
    stops showing admission keeping missed deadlines no worse than the
    uncontrolled run — and clearing them entirely whenever it rejected
    anything — or stops rejecting exactly the trace's
    deliberately-infeasible requests (deterministic: their modelled
    chain seconds alone exceed the microscopic deadlines);
  * the kernel section (when present in both files) reports a
    dispatcher that is not bit-identical to the scalar MAC reference, or
    — on a CHAINNN_SIMD build — a fast-path dispatch rate of zero or
    SIMD throughput below the scalar reference (the vectorized path must
    never lose to the code it replaces; a scalar-only build skips the
    two SIMD gates since its dispatcher IS the scalar reference);
  * the gateway soak section (when present in both files, emitted by
    bench_soak) shows any client transport error, HTTP 5xx, server-side
    parse error or wire-vs-direct digest mismatch, loses a request
    (completed + cancelled + rejected must cover every submit), or its
    p99 latency blows past 4x baseline (with an absolute floor
    absorbing scheduler jitter on small runs);
  * the durability section (when present in both files) shows request
    journaling costing more than 10% of journal-off throughput (the
    ratio is same-run A/B — runner speed cancels, so the margin is
    tight), a crash-drill recovery that did not replay exactly the
    in-flight set the cut journal describes, or any failed request on
    either journaling side or during recovery.

Either file may carry an optional "analyze" stanza (at any nesting
level) recording static-analysis provenance — compiler, -Wthread-safety
/ clang-tidy / TSan lane versions — for the run that produced it. The
stanza is documentation, not a metric: it is stripped before comparison,
so its presence in only one of the two files never trips the
section-presence gates and its contents are never diffed.

Prints a markdown delta table to stdout and appends it to
$GITHUB_STEP_SUMMARY when set. Stdlib only.
"""

import json
import os
import sys

RPS_DROP_TOLERANCE = 0.25  # fail below 75% of baseline
HIT_RATE_DROP_TOLERANCE = 0.05  # fail below baseline - 5 points
GATEWAY_P99_TOLERANCE = 4.0  # fail above 4x baseline p99
GATEWAY_P99_FLOOR_MS = 50.0  # ... but never below this absolute budget
JOURNAL_OVERHEAD_FLOOR = 0.9  # journal-on rps >= 0.9x journal-off rps


def strip_analyze(obj):
    """Removes every "analyze" provenance stanza, at any depth."""
    if isinstance(obj, dict):
        return {
            k: strip_analyze(v) for k, v in obj.items() if k != "analyze"
        }
    if isinstance(obj, list):
        return [strip_analyze(v) for v in obj]
    return obj


def fmt(value):
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


class Gate:
    def __init__(self):
        self.rows = []
        self.failures = []

    def check(self, metric, baseline, current, ok, requirement):
        status = "ok" if ok else "**FAIL**"
        delta = ""
        if isinstance(baseline, (int, float)) and isinstance(
            current, (int, float)
        ) and baseline:
            delta = f"{100.0 * (current - baseline) / baseline:+.1f}%"
        self.rows.append(
            (metric, fmt(baseline), fmt(current), delta, requirement, status)
        )
        if not ok:
            self.failures.append(f"{metric}: {requirement} "
                                 f"(baseline {fmt(baseline)}, "
                                 f"current {fmt(current)})")

    def table(self):
        lines = [
            "| metric | baseline | current | delta | requirement | status |",
            "|---|---|---|---|---|---|",
        ]
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        current = strip_analyze(json.load(f))
    with open(argv[2]) as f:
        baseline = strip_analyze(json.load(f))

    gate = Gate()
    gate.check(
        "analytical_rps",
        baseline["analytical_rps"],
        current["analytical_rps"],
        current["analytical_rps"]
        >= (1.0 - RPS_DROP_TOLERANCE) * baseline["analytical_rps"],
        f">= {100 * (1 - RPS_DROP_TOLERANCE):.0f}% of baseline",
    )
    gate.check(
        "cache_hit_rate",
        baseline["cache_hit_rate"],
        current["cache_hit_rate"],
        current["cache_hit_rate"]
        >= baseline["cache_hit_rate"] - HIT_RATE_DROP_TOLERANCE,
        f">= baseline - {HIT_RATE_DROP_TOLERANCE}",
    )
    gate.check("fidelity_divergences", 0, current["fidelity_divergences"],
               current["fidelity_divergences"] == 0, "== 0")
    gate.check("failed", 0, current["failed"], current["failed"] == 0, "== 0")

    fleet = current.get("fleet")
    fleet_base = baseline.get("fleet")
    if fleet is not None and fleet_base is not None:
        gate.check(
            "fleet.modelled_speedup",
            fleet_base["modelled_speedup"],
            fleet["modelled_speedup"],
            fleet["modelled_speedup"] > 1.0,
            "> 1.0 (fleet beats best single chip)",
        )
        gate.check(
            "fleet.fleet_modelled_rps",
            fleet_base["fleet_modelled_rps"],
            fleet["fleet_modelled_rps"],
            fleet["fleet_modelled_rps"]
            >= (1.0 - RPS_DROP_TOLERANCE) * fleet_base["fleet_modelled_rps"],
            f">= {100 * (1 - RPS_DROP_TOLERANCE):.0f}% of baseline",
        )
        gate.check("fleet.fidelity_divergences", 0,
                   fleet["fidelity_divergences"],
                   fleet["fidelity_divergences"] == 0, "== 0")
        gate.check("fleet.cancelled", fleet_base["cancelled"],
                   fleet["cancelled"],
                   fleet["cancelled"] == fleet_base["cancelled"],
                   "== baseline (one past-deadline request in the trace)")
        gate.check("fleet.resumes", fleet_base.get("resumes", 0),
                   fleet.get("resumes", 0),
                   fleet.get("resumes", 0) <= fleet.get("preemptions", 0),
                   "<= preemptions (every resume consumes a checkpoint)")
        adm = fleet.get("admission")
        adm_base = fleet_base.get("admission")
        if adm is not None and adm_base is not None:
            # Admission must never make deadline outcomes worse, and on a
            # run that actually rejected infeasible work it must clear the
            # board. A strict `<` here would fail the perfect run where
            # both A/B sides miss zero deadlines.
            gate.check(
                "fleet.admission.missed_with",
                adm_base["missed_with"],
                adm["missed_with"],
                adm["missed_with"] <= adm["missed_without"]
                and (adm["rejected"] == 0 or adm["missed_with"] == 0),
                "<= missed_without, and == 0 when anything was rejected",
            )
            gate.check(
                "fleet.admission.rejected",
                adm_base["rejected"],
                adm["rejected"],
                adm["rejected"] == adm_base["rejected"],
                "== baseline (the trace's infeasible-deadline requests)",
            )
            gate.check("fleet.admission.failed", 0, adm["failed"],
                       adm["failed"] == 0, "== 0")
        elif (adm is None) != (adm_base is None):
            gate.check("fleet.admission section", adm_base is not None,
                       adm is not None, False,
                       "present in both current and baseline")
    elif (fleet is None) != (fleet_base is None):
        gate.check("fleet section", fleet_base is not None, fleet is not None,
                   False, "present in both current and baseline")

    kernel = current.get("kernel")
    kernel_base = baseline.get("kernel")
    if kernel is not None and kernel_base is not None:
        gate.check("kernel.bit_identical", True, kernel["bit_identical"],
                   kernel["bit_identical"] is True,
                   "dispatcher bit-identical to the scalar reference")
        if kernel["simd_enabled"]:
            gate.check("kernel.dispatch_rate",
                       kernel_base["dispatch_rate"],
                       kernel["dispatch_rate"],
                       kernel["dispatch_rate"] > 0.0,
                       "> 0 (SIMD build must take the fast path)")
            gate.check(
                "kernel.dispatch_gmacs",
                kernel_base["scalar_gmacs"],
                kernel["dispatch_gmacs"],
                kernel["dispatch_gmacs"] >= kernel["scalar_gmacs"],
                ">= this run's scalar_gmacs (SIMD never loses to scalar)",
            )
    elif (kernel is None) != (kernel_base is None):
        gate.check("kernel section", kernel_base is not None,
                   kernel is not None, False,
                   "present in both current and baseline")

    gw = current.get("gateway")
    gw_base = baseline.get("gateway")
    if gw is not None and gw_base is not None:
        gate.check("gateway.errors", 0, gw["errors"],
                   gw["errors"] == 0, "== 0 (client transport errors)")
        gate.check("gateway.http_5xx", 0, gw["http_5xx"],
                   gw["http_5xx"] == 0, "== 0")
        gate.check("gateway.parse_errors", 0, gw["parse_errors"],
                   gw["parse_errors"] == 0, "== 0 (server-side HTTP parses)")
        gate.check("gateway.digest_mismatches", 0, gw["digest_mismatches"],
                   gw["digest_mismatches"] == 0,
                   "== 0 (wire results bit-identical to direct submits)")
        accounted = gw["completed"] + gw["cancelled"] + gw["rejected"]
        gate.check("gateway.completed", gw_base["requests"], accounted,
                   accounted == gw["requests"],
                   "completed + cancelled + rejected == requests")
        p99_budget = max(
            GATEWAY_P99_TOLERANCE * gw_base["p99_ms"], GATEWAY_P99_FLOOR_MS
        )
        gate.check(
            "gateway.p99_ms",
            gw_base["p99_ms"],
            gw["p99_ms"],
            gw["p99_ms"] <= p99_budget,
            f"<= max({GATEWAY_P99_TOLERANCE:.0f}x baseline, "
            f"{GATEWAY_P99_FLOOR_MS:.0f}ms)",
        )
    elif (gw is None) != (gw_base is None):
        gate.check("gateway section", gw_base is not None, gw is not None,
                   False, "present in both current and baseline")

    dur = current.get("durability")
    dur_base = baseline.get("durability")
    if dur is not None and dur_base is not None:
        # Same-run A/B: journal-on vs journal-off rps from this very run,
        # so runner speed cancels and the 0.9 floor can stay tight.
        gate.check(
            "durability.overhead_ratio",
            dur_base["overhead_ratio"],
            dur["overhead_ratio"],
            dur["overhead_ratio"] >= JOURNAL_OVERHEAD_FLOOR,
            f">= {JOURNAL_OVERHEAD_FLOOR} (journal-on rps vs journal-off)",
        )
        gate.check(
            "durability.recovery_replayed",
            dur_base["recovery_replayed"],
            dur["recovery_replayed"],
            dur["recovery_replayed"] == dur["recovery_expected_in_flight"]
            and dur["recovery_replayed"] > 0,
            "== recovery_expected_in_flight, > 0 (no lost/duplicated "
            "requests across the crash)",
        )
        gate.check("durability.failed", 0, dur["failed"],
                   dur["failed"] == 0, "== 0")
    elif (dur is None) != (dur_base is None):
        gate.check("durability section", dur_base is not None,
                   dur is not None, False,
                   "present in both current and baseline")

    dse = current.get("dse")
    dse_base = baseline.get("dse")
    if dse is not None and dse_base is not None:
        # The design-space search's structural invariants: a non-empty
        # Pareto frontier that still contains the paper's 576-PE/700MHz
        # instantiation, with dominance pruning actually eliminating
        # points (a zero pruned fraction means the evaluator or the
        # dominance test regressed into never firing).
        gate.check("dse.frontier", dse_base["frontier"], dse["frontier"],
                   dse["frontier"] > 0, "> 0 (non-empty Pareto frontier)")
        gate.check(
            "dse.contains_paper_point",
            dse_base["contains_paper_point"],
            dse["contains_paper_point"],
            dse["contains_paper_point"] is True,
            "paper 576@700 point on the frontier",
        )
        gate.check(
            "dse.pruned_fraction",
            dse_base["pruned_fraction"],
            dse["pruned_fraction"],
            dse["pruned_fraction"] > 0,
            "> 0 (dominance pruning eliminates points)",
        )
    elif (dse is None) != (dse_base is None):
        gate.check("dse section", dse_base is not None, dse is not None,
                   False, "present in both current and baseline")

    title = "### BENCH_serve regression gate\n\n"
    report = title + gate.table() + "\n"
    print(report)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as f:
            f.write(report + "\n")

    if gate.failures:
        for failure in gate.failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
