#!/usr/bin/env python3
"""Regression tests for compare_bench.py (stdlib unittest, run by CTest).

Pins the gate semantics that have actually bitten:

  * an admission A/B where BOTH runs miss zero deadlines must pass — the
    old strict `missed_with < missed_without` check failed the perfect
    run (the better the scheduler got, the redder CI turned);
  * admission that rejected work but still missed deadlines must fail;
  * the gateway section's zero-error and p99 gates, and the
    present-in-one-file-only failure mode shared with the fleet section;
  * the kernel section's SIMD-vs-scalar gates, including the
    CHAINNN_SIMD=OFF lane where the dispatcher IS the scalar reference
    and the SIMD-only gates must not fire.
"""

import copy
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import compare_bench  # noqa: E402


def serve_doc():
    """A BENCH_serve.json document that passes every gate against itself."""
    return {
        "analytical_rps": 100.0,
        "cache_hit_rate": 0.95,
        "fidelity_divergences": 0,
        "failed": 0,
        "fleet": {
            "modelled_speedup": 1.8,
            "fleet_modelled_rps": 50.0,
            "fidelity_divergences": 0,
            "cancelled": 1,
            "preemptions": 2,
            "resumes": 2,
            "admission": {
                "missed_without": 3,
                "missed_with": 0,
                "rejected": 3,
                "failed": 0,
            },
        },
        "kernel": {
            "model": "vgg16/8",
            "layers": 13,
            "macs": 250000000,
            "simd_enabled": True,
            "scalar_gmacs": 0.2,
            "dispatch_gmacs": 0.8,
            "speedup": 4.0,
            "fast_dispatches": 13,
            "data_scans": 0,
            "dispatch_rate": 1.0,
            "bit_identical": True,
        },
        "gateway": {
            "connections": 128,
            "requests": 256,
            "completed": 250,
            "cancelled": 4,
            "rejected": 2,
            "errors": 0,
            "http_5xx": 0,
            "parse_errors": 0,
            "digest_mismatches": 0,
            "p50_ms": 4.0,
            "p99_ms": 12.0,
            "p999_ms": 20.0,
            "rps": 300.0,
        },
        "durability": {
            "requests": 12,
            "journal_off_rps": 35.0,
            "journal_on_rps": 34.0,
            "overhead_ratio": 0.97,
            "journal_records": 24,
            "journal_bytes": 34912,
            "journal_fsyncs": 3,
            "recovery_expected_in_flight": 12,
            "recovery_replayed": 12,
            "recovery_resumed_from_checkpoint": 0,
            "recovery_wall_ms": 340.0,
            "failed": 0,
        },
        "dse": {
            "model": "alexnet",
            "evaluated": 12000,
            "points_per_sec": 250000.0,
            "infeasible": 0,
            "pruned": 11700,
            "pruned_fraction": 0.975,
            "frontier": 299,
            "waves": 9,
            "contains_paper_point": True,
        },
    }


class GateTest(unittest.TestCase):
    def run_gate(self, current, baseline):
        with tempfile.TemporaryDirectory() as tmp:
            cur_path = os.path.join(tmp, "current.json")
            base_path = os.path.join(tmp, "baseline.json")
            with open(cur_path, "w") as f:
                json.dump(current, f)
            with open(base_path, "w") as f:
                json.dump(baseline, f)
            # Silence the markdown table; failures still reach stderr.
            saved_stdout = sys.stdout
            sys.stdout = open(os.devnull, "w")
            try:
                return compare_bench.main(["compare_bench.py", cur_path,
                                           base_path])
            finally:
                sys.stdout.close()
                sys.stdout = saved_stdout

    def test_identical_docs_pass(self):
        self.assertEqual(self.run_gate(serve_doc(), serve_doc()), 0)

    def test_perfect_admission_run_passes(self):
        # THE regression: zero missed deadlines on both A/B sides used to
        # fail the strict `missed_with < missed_without` comparison.
        current = serve_doc()
        current["fleet"]["admission"]["missed_without"] = 0
        current["fleet"]["admission"]["missed_with"] = 0
        self.assertEqual(self.run_gate(current, serve_doc()), 0)

    def test_admission_making_things_worse_fails(self):
        current = serve_doc()
        current["fleet"]["admission"]["missed_without"] = 1
        current["fleet"]["admission"]["missed_with"] = 2
        self.assertEqual(self.run_gate(current, serve_doc()), 1)

    def test_admission_rejecting_but_still_missing_fails(self):
        # Rejected infeasible work yet still missed a deadline: the
        # admission decision and the miss accounting disagree.
        current = serve_doc()
        current["fleet"]["admission"]["missed_without"] = 2
        current["fleet"]["admission"]["missed_with"] = 1
        self.assertEqual(self.run_gate(current, serve_doc()), 1)

    def test_no_rejections_tolerates_equal_misses(self):
        current = serve_doc()
        current["fleet"]["admission"]["rejected"] = 0
        current["fleet"]["admission"]["missed_without"] = 2
        current["fleet"]["admission"]["missed_with"] = 2
        baseline = serve_doc()
        baseline["fleet"]["admission"]["rejected"] = 0
        self.assertEqual(self.run_gate(current, baseline), 0)

    def test_rps_regression_fails(self):
        current = serve_doc()
        current["analytical_rps"] = 60.0  # below the 75% floor
        self.assertEqual(self.run_gate(current, serve_doc()), 1)

    def test_gateway_5xx_fails(self):
        current = serve_doc()
        current["gateway"]["http_5xx"] = 1
        self.assertEqual(self.run_gate(current, serve_doc()), 1)

    def test_gateway_transport_error_fails(self):
        current = serve_doc()
        current["gateway"]["errors"] = 3
        self.assertEqual(self.run_gate(current, serve_doc()), 1)

    def test_gateway_digest_mismatch_fails(self):
        current = serve_doc()
        current["gateway"]["digest_mismatches"] = 1
        self.assertEqual(self.run_gate(current, serve_doc()), 1)

    def test_gateway_lost_request_fails(self):
        current = serve_doc()
        current["gateway"]["completed"] -= 1  # one request unaccounted for
        self.assertEqual(self.run_gate(current, serve_doc()), 1)

    def test_gateway_p99_within_floor_passes(self):
        # Small absolute latencies ride the 50ms floor, not the 4x ratio.
        current = serve_doc()
        current["gateway"]["p99_ms"] = 49.0
        self.assertEqual(self.run_gate(current, serve_doc()), 0)

    def test_gateway_p99_blowup_fails(self):
        current = serve_doc()
        current["gateway"]["p99_ms"] = 51.0
        baseline = serve_doc()
        baseline["gateway"]["p99_ms"] = 10.0  # 4x => 40ms < 50ms floor
        self.assertEqual(self.run_gate(current, baseline), 1)

    def test_kernel_bit_identity_loss_fails(self):
        current = serve_doc()
        current["kernel"]["bit_identical"] = False
        self.assertEqual(self.run_gate(current, serve_doc()), 1)

    def test_kernel_simd_slower_than_scalar_fails(self):
        current = serve_doc()
        current["kernel"]["dispatch_gmacs"] = 0.1  # below its own scalar
        self.assertEqual(self.run_gate(current, serve_doc()), 1)

    def test_kernel_zero_dispatch_rate_on_simd_build_fails(self):
        current = serve_doc()
        current["kernel"]["dispatch_rate"] = 0.0
        self.assertEqual(self.run_gate(current, serve_doc()), 1)

    def test_kernel_scalar_build_skips_simd_gates(self):
        # The CHAINNN_SIMD=OFF lane: the dispatcher IS the scalar
        # reference, so zero fast-path dispatches and dispatch throughput
        # within noise of scalar must pass against a SIMD baseline.
        current = serve_doc()
        current["kernel"]["simd_enabled"] = False
        current["kernel"]["dispatch_rate"] = 0.0
        current["kernel"]["fast_dispatches"] = 0
        current["kernel"]["dispatch_gmacs"] = 0.19  # noise below scalar
        current["kernel"]["speedup"] = 0.95
        self.assertEqual(self.run_gate(current, serve_doc()), 0)

    def test_kernel_section_must_match_presence(self):
        current = serve_doc()
        del current["kernel"]
        self.assertEqual(self.run_gate(current, serve_doc()), 1)
        baseline = serve_doc()
        del baseline["kernel"]
        self.assertEqual(self.run_gate(serve_doc(), baseline), 1)

    def test_gateway_section_must_match_presence(self):
        current = serve_doc()
        del current["gateway"]
        self.assertEqual(self.run_gate(current, serve_doc()), 1)
        baseline = serve_doc()
        del baseline["gateway"]
        self.assertEqual(self.run_gate(serve_doc(), baseline), 1)

    def test_gateway_absent_everywhere_is_fine(self):
        current = serve_doc()
        baseline = serve_doc()
        del current["gateway"]
        del baseline["gateway"]
        self.assertEqual(self.run_gate(current, baseline), 0)

    def test_fleet_admission_equal_misses_no_rejections_mixed(self):
        # copy.deepcopy guard: serve_doc() must hand out fresh objects
        # (a shared nested dict would let one test poison another).
        a, b = serve_doc(), serve_doc()
        self.assertIsNot(a["fleet"]["admission"], b["fleet"]["admission"])
        self.assertEqual(a, copy.deepcopy(b))

    def test_durability_overhead_over_floor_passes(self):
        # The ratio is same-run A/B, so it is compared against the fixed
        # 0.9 floor, not against the baseline's own ratio — a faster
        # baseline run must never fail a current run that meets the floor.
        current = serve_doc()
        current["durability"]["overhead_ratio"] = 0.91
        baseline = serve_doc()
        baseline["durability"]["overhead_ratio"] = 1.05
        self.assertEqual(self.run_gate(current, baseline), 0)

    def test_durability_journal_too_expensive_fails(self):
        current = serve_doc()
        current["durability"]["overhead_ratio"] = 0.85
        self.assertEqual(self.run_gate(current, serve_doc()), 1)

    def test_durability_lost_request_in_recovery_fails(self):
        # Replay must cover exactly the in-flight set of the cut journal:
        # one short is a lost request, regardless of the baseline counts.
        current = serve_doc()
        current["durability"]["recovery_replayed"] = 11
        self.assertEqual(self.run_gate(current, serve_doc()), 1)

    def test_durability_empty_recovery_fails(self):
        # The bench cuts the journal right after its last SUBMIT, so a
        # drill that found nothing in flight means the cut (or the
        # analysis) is broken, not that the system is durable.
        current = serve_doc()
        current["durability"]["recovery_expected_in_flight"] = 0
        current["durability"]["recovery_replayed"] = 0
        self.assertEqual(self.run_gate(current, serve_doc()), 1)

    def test_durability_failed_request_fails(self):
        current = serve_doc()
        current["durability"]["failed"] = 1
        self.assertEqual(self.run_gate(current, serve_doc()), 1)

    def test_durability_section_must_match_presence(self):
        current = serve_doc()
        del current["durability"]
        self.assertEqual(self.run_gate(current, serve_doc()), 1)
        baseline = serve_doc()
        del baseline["durability"]
        self.assertEqual(self.run_gate(serve_doc(), baseline), 1)

    def test_durability_absent_everywhere_is_fine(self):
        current = serve_doc()
        baseline = serve_doc()
        del current["durability"]
        del baseline["durability"]
        self.assertEqual(self.run_gate(current, baseline), 0)

    def test_dse_empty_frontier_fails(self):
        current = serve_doc()
        current["dse"]["frontier"] = 0
        self.assertEqual(self.run_gate(current, serve_doc()), 1)

    def test_dse_paper_point_off_frontier_fails(self):
        current = serve_doc()
        current["dse"]["contains_paper_point"] = False
        self.assertEqual(self.run_gate(current, serve_doc()), 1)

    def test_dse_zero_pruning_fails(self):
        current = serve_doc()
        current["dse"]["pruned"] = 0
        current["dse"]["pruned_fraction"] = 0.0
        self.assertEqual(self.run_gate(current, serve_doc()), 1)

    def test_dse_section_must_match_presence(self):
        current = serve_doc()
        del current["dse"]
        self.assertEqual(self.run_gate(current, serve_doc()), 1)
        baseline = serve_doc()
        del baseline["dse"]
        self.assertEqual(self.run_gate(serve_doc(), baseline), 1)

    def test_dse_absent_everywhere_is_fine(self):
        current = serve_doc()
        baseline = serve_doc()
        del current["dse"]
        del baseline["dse"]
        self.assertEqual(self.run_gate(current, baseline), 0)

    def test_analyze_stanza_in_current_only_passes(self):
        # The static-analysis provenance stanza is documentation, not a
        # gated section: present only in the current file it must not
        # trip the presence-xor machinery.
        current = serve_doc()
        current["analyze"] = {
            "compiler": "clang 18",
            "thread_safety": True,
            "clang_tidy": "18.1",
            "tsan": "gcc-13 -fsanitize=thread",
        }
        self.assertEqual(self.run_gate(current, serve_doc()), 0)

    def test_analyze_stanza_in_baseline_only_passes(self):
        baseline = serve_doc()
        baseline["analyze"] = {"compiler": "clang 18"}
        self.assertEqual(self.run_gate(serve_doc(), baseline), 0)

    def test_nested_analyze_stanza_is_ignored(self):
        # Stripping is recursive: sections may carry their own provenance
        # (e.g. the gateway soak recording which lane produced it), and a
        # mismatch in those must not be diffed either.
        current = serve_doc()
        current["fleet"]["analyze"] = {"lane": "tsan"}
        current["gateway"]["analyze"] = {"lane": "asan"}
        self.assertEqual(self.run_gate(current, serve_doc()), 0)

    def test_analyze_stanza_does_not_mask_real_absence(self):
        # A current file whose gateway section is just provenance-plus-
        # nothing must still fail the real gates (stripping removes the
        # stanza, not the section it sits in).
        current = serve_doc()
        current["gateway"] = {"analyze": {"lane": "tsan"}}
        with open(os.devnull, "w") as devnull:
            saved = sys.stderr
            sys.stderr = devnull
            try:
                with self.assertRaises(KeyError):
                    # Section present but gutted -> the required metrics
                    # are genuinely missing, which must not pass silently.
                    self.run_gate(current, serve_doc())
            finally:
                sys.stderr = saved

    def test_strip_analyze_pure(self):
        doc = serve_doc()
        doc["analyze"] = {"compiler": "clang"}
        stripped = compare_bench.strip_analyze(doc)
        self.assertNotIn("analyze", stripped)
        self.assertIn("analyze", doc)  # input untouched
        expected = serve_doc()
        self.assertEqual(stripped, expected)


if __name__ == "__main__":
    unittest.main()
