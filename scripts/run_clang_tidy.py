#!/usr/bin/env python3
"""Run clang-tidy over the project's own sources, in parallel.

Stdlib-only driver around `clang-tidy -p <build-dir>`: reads
compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS is always ON, see
the root CMakeLists.txt), keeps the entries under the repo's src/ tree
(tests and bench binaries are not part of the lint gate; third-party
GoogleTest sources never are), and fans the files out over a worker
pool. Exit status is non-zero if any file produced diagnostics —
.clang-tidy sets WarningsAsErrors: '*', so "has output" and "failed"
coincide and CI can gate on the exit code alone.

Usage:
  scripts/run_clang_tidy.py [-p BUILD_DIR] [-j N] [--clang-tidy BIN]
                            [--filter SUBSTR] [files...]

Explicit file arguments (repo-relative or absolute) restrict the run;
--filter keeps compile-command entries whose path contains SUBSTR.
"""

import argparse
import json
import multiprocessing
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load_sources(build_dir, filt, explicit):
    """Files from compile_commands.json under src/, deduplicated."""
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        sys.exit(
            f"error: {db_path} not found — configure the build first "
            "(cmake -B build -S .)"
        )
    with open(db_path, encoding="utf-8") as fh:
        entries = json.load(fh)

    src_root = os.path.join(REPO_ROOT, "src") + os.sep
    wanted = {os.path.abspath(p) for p in explicit} if explicit else None
    files = []
    for entry in entries:
        path = os.path.abspath(
            os.path.join(entry.get("directory", ""), entry["file"])
        )
        if not path.startswith(src_root):
            continue
        if wanted is not None and path not in wanted:
            continue
        if filt and filt not in path:
            continue
        if path not in files:
            files.append(path)
    return files


def run_one(args):
    tidy, build_dir, path = args
    proc = subprocess.run(
        [tidy, "-p", build_dir, "--quiet", path],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    # clang-tidy prints "N warnings generated" chatter to stderr even on
    # clean files; diagnostics proper go to stdout. A non-zero exit with
    # empty stdout (e.g. a compile-command mismatch) still must fail.
    output = proc.stdout.strip()
    if proc.returncode != 0 and not output:
        output = proc.stderr.strip()
    return path, proc.returncode, output


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-p", "--build-dir", default="build")
    parser.add_argument("-j", "--jobs", type=int, default=os.cpu_count() or 1)
    parser.add_argument("--clang-tidy", default=None)
    parser.add_argument("--filter", default=None)
    parser.add_argument("files", nargs="*")
    args = parser.parse_args()

    tidy = args.clang_tidy or shutil.which("clang-tidy")
    if not tidy:
        sys.exit("error: clang-tidy not found on PATH (use --clang-tidy)")

    build_dir = os.path.abspath(args.build_dir)
    files = load_sources(build_dir, args.filter, args.files)
    if not files:
        sys.exit("error: no matching sources in compile_commands.json")
    print(f"clang-tidy ({tidy}): {len(files)} files, -j{args.jobs}")

    failed = 0
    jobs = [(tidy, build_dir, path) for path in files]
    with multiprocessing.Pool(processes=max(1, args.jobs)) as pool:
        for path, code, output in pool.imap_unordered(run_one, jobs):
            rel = os.path.relpath(path, REPO_ROOT)
            if code != 0 or output:
                failed += 1
                print(f"FAIL {rel}")
                if output:
                    print(output)
            else:
                print(f"  ok {rel}")

    if failed:
        print(f"\n{failed}/{len(files)} files have clang-tidy findings")
        return 1
    print(f"\nall {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
