// Reproduces Table V: the state-of-the-art comparison between DaDianNao
// (memory-centric), Eyeriss (2D spatial) and Chain-NN, with our modelled
// Chain-NN column next to the published one, plus the §V.D area-
// efficiency analysis.
#include <benchmark/benchmark.h>

#include <iostream>

#include "baseline/memory_centric.hpp"
#include "baseline/spatial_2d.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "energy/area_model.hpp"
#include "energy/energy_model.hpp"
#include "report/paper_constants.hpp"

namespace {

using namespace chainnn;

void print_table5() {
  const energy::EnergyModel model = energy::EnergyModel::paper_calibrated();
  const energy::PowerBreakdown p =
      model.power(energy::paper_calibration_rates(), 700e6, 576);
  const energy::AreaModel area;
  const baseline::MemoryCentricModel dadiannao;
  const baseline::Spatial2dModel eyeriss;

  const double peak_ops = 2.0 * 576 * 700e6;
  const double modelled_power_mw = p.total() * 1e3;
  const double modelled_eff =
      energy::efficiency_gops_per_w(peak_ops, p.total());

  TextTable t("Table V — comparison with state-of-the-art works");
  t.set_header({"metric", "DaDianNao [10]", "Eyeriss [12]",
                "Chain-NN (paper)", "Chain-NN (our model)"});
  t.add_row({"Technology", report::kDaDianNao.technology,
             report::kEyeriss.technology, report::kChainNN.technology,
             "simulated 28nm"});
  t.add_row({"Gate count", "N/A", "1852k", "3751k",
             strings::fmt_fixed(area.total_gates(576) / 1e3, 0) + "k"});
  t.add_row({"On-chip memory", report::kDaDianNao.onchip_memory,
             report::kEyeriss.onchip_memory, report::kChainNN.onchip_memory,
             "352.0KB SRAM"});
  t.add_row({"Parallelism", "288x16", "168", "576", "576"});
  t.add_row({"Core freq. (MHz)", "606", "250", "700", "700"});
  t.add_row({"Power",
             strings::fmt_fixed(dadiannao.total_power_w(), 2) + "W",
             strings::fmt_fixed(eyeriss.config().power_w * 1e3, 0) + "mW",
             "567.5mW",
             strings::fmt_fixed(modelled_power_mw, 1) + "mW"});
  t.add_row({"Peak throughput (GOPS)",
             strings::fmt_fixed(dadiannao.peak_ops_per_s() / 1e9, 1),
             strings::fmt_fixed(eyeriss.peak_ops_per_s() / 1e9, 1),
             "806.4", strings::fmt_fixed(peak_ops / 1e9, 1)});
  t.add_row({"Energy eff. (GOPS/W)",
             strings::fmt_fixed(dadiannao.efficiency_gops_per_w(), 1),
             strings::fmt_fixed(
                 eyeriss.config().published_efficiency_gops_per_w, 1) +
                 "*",
             "1421.0", strings::fmt_fixed(modelled_eff, 1)});
  std::cout << t.to_ascii()
            << "*: scaled to 28nm the paper expects Eyeriss at "
            << strings::fmt_fixed(
                   energy::scale_efficiency_to_node(
                       eyeriss.config().published_efficiency_gops_per_w,
                       65.0, 28.0),
                   1)
            << " GOPS/W (paper: 570.1).\n\n";

  TextTable g("§V.D — efficiency gains and area");
  g.set_header({"claim", "paper", "our model"});
  g.add_row({"vs DaDianNao (GOPS/W ratio)", "4.1x",
             strings::fmt_fixed(
                 modelled_eff / dadiannao.efficiency_gops_per_w(), 1) +
                 "x"});
  g.add_row(
      {"vs Eyeriss @28nm (GOPS/W ratio)", "2.5x",
       strings::fmt_fixed(modelled_eff /
                              energy::scale_efficiency_to_node(
                                  eyeriss.config()
                                      .published_efficiency_gops_per_w,
                                  65.0, 28.0),
                          1) +
           "x"});
  g.add_row({"gates per PE", "6.51k vs 11.02k",
             strings::fmt_fixed(report::kGatesPerPeK, 2) + "k vs " +
                 strings::fmt_fixed(report::kEyerissGatesPerPeK, 2) + "k"});
  g.add_row({"area efficiency", "1.7x",
             strings::fmt_fixed(
                 energy::area_efficiency_ratio(
                     report::kGatesPerPeK, report::kEyerissGatesPerPeK),
                 2) +
                 "x"});
  std::cout << g.to_ascii() << "\n";
}

void BM_BaselineModels(benchmark::State& state) {
  for (auto _ : state) {
    baseline::MemoryCentricModel dadiannao;
    baseline::Spatial2dModel eyeriss;
    benchmark::DoNotOptimize(dadiannao.efficiency_gops_per_w());
    benchmark::DoNotOptimize(eyeriss.efficiency_gops_per_w());
  }
}
BENCHMARK(BM_BaselineModels);

}  // namespace

int main(int argc, char** argv) {
  print_table5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
