// Reproduces Fig. 10: the Chain-NN power breakdown (1D chain / kMemory /
// iMemory / oMemory) and the power-efficiency comparison with DaDianNao
// (core-only vs whole chip), plus a clock/chain-size extrapolation the
// calibrated energy model enables.
#include <benchmark/benchmark.h>

#include <iostream>

#include "baseline/memory_centric.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "energy/energy_model.hpp"
#include "report/paper_constants.hpp"

namespace {

using namespace chainnn;

void print_fig10() {
  const energy::EnergyModel model = energy::EnergyModel::paper_calibrated();
  const energy::ActivityRates rates = energy::paper_calibration_rates();
  const energy::PowerBreakdown p = model.power(rates, 700e6, 576);

  TextTable t("Fig. 10 — Chain-NN power breakdown (mW)");
  t.set_header({"component", "paper", "model", "share"});
  const double total = p.total();
  t.add_row({"1D chain arch.", strings::fmt_fixed(report::kChainPowerMw, 2),
             strings::fmt_fixed(p.chain_w * 1e3, 2),
             strings::fmt_pct(p.chain_w / total, 2)});
  t.add_row({"kMemory", strings::fmt_fixed(report::kKmemPowerMw, 2),
             strings::fmt_fixed(p.kmem_w * 1e3, 2),
             strings::fmt_pct(p.kmem_w / total, 2)});
  t.add_row({"iMemory", strings::fmt_fixed(report::kImemPowerMw, 2),
             strings::fmt_fixed(p.imem_w * 1e3, 2),
             strings::fmt_pct(p.imem_w / total, 2)});
  t.add_row({"oMemory", strings::fmt_fixed(report::kOmemPowerMw, 2),
             strings::fmt_fixed(p.omem_w * 1e3, 2),
             strings::fmt_pct(p.omem_w / total, 2)});
  t.add_separator();
  t.add_row({"total", strings::fmt_fixed(report::kPowerW * 1e3, 1),
             strings::fmt_fixed(total * 1e3, 1), "100%"});
  std::cout << t.to_ascii() << "\n";

  const double peak_ops = 2.0 * 576 * 700e6;
  const baseline::MemoryCentricModel dadiannao;
  TextTable c("Fig. 10 — efficiency comparison with DaDianNao (GOPS/W)");
  c.set_header({"design", "core-only", "whole chip"});
  c.add_row({"DaDianNao [10] (5584.9 GOPS, 15.97 W)",
             strings::fmt_fixed(dadiannao.core_only_efficiency_gops_per_w(),
                                1),
             strings::fmt_fixed(dadiannao.efficiency_gops_per_w(), 1)});
  c.add_row({"Chain-NN (806.4 GOPS, " +
                 strings::fmt_fixed(total * 1e3, 1) + " mW)",
             strings::fmt_fixed(
                 energy::efficiency_gops_per_w(peak_ops, p.chain_w), 1),
             strings::fmt_fixed(
                 energy::efficiency_gops_per_w(peak_ops, total), 1)});
  std::cout << c.to_ascii()
            << "paper: DaDianNao core-only 3035.3 / total 349.7; Chain-NN "
               "core-only 1727.8 / total 1421.0.\nThe memory-centric "
               "design wins on core-only efficiency but pays ~88% of its "
               "power in eDRAM;\nChain-NN moves reuse into the chain and "
               "wins 4.1x on the whole chip.\n\n";

  // Extension: model-based scaling (enabled by the calibrated model).
  TextTable s("Extension — modelled efficiency vs chain size @700MHz");
  s.set_header({"PEs", "peak GOPS", "power (mW)", "GOPS/W"});
  for (const std::int64_t pes : {144, 288, 576, 1152, 2304}) {
    const energy::PowerBreakdown ps = model.power(rates, 700e6, pes);
    const double ops = 2.0 * static_cast<double>(pes) * 700e6;
    s.add_row({std::to_string(pes),
               strings::fmt_fixed(ops / 1e9, 1),
               strings::fmt_fixed(ps.total() * 1e3, 1),
               strings::fmt_fixed(
                   energy::efficiency_gops_per_w(ops, ps.total()), 1)});
  }
  std::cout << s.to_ascii() << "\n";
}

void BM_PowerModel(benchmark::State& state) {
  const energy::EnergyModel model = energy::EnergyModel::paper_calibrated();
  const energy::ActivityRates rates = energy::paper_calibration_rates();
  for (auto _ : state)
    benchmark::DoNotOptimize(model.power(rates, 700e6, 576));
}
BENCHMARK(BM_PowerModel);

}  // namespace

int main(int argc, char** argv) {
  print_fig10();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
