// Ablation: zero-operand gating. Chain-NN (unlike the paper's cited
// related work Cnvlutin [13] / EIE [14]) does not exploit sparsity; since
// ReLU feeds every layer after the first, a large share of MACs carry a
// zero ifmap operand. This bench measures the exact zero-MAC fraction on
// the simulator at several activation sparsity levels and prices what
// multiplier operand-isolation would save with the calibrated energy
// model — a quantified "future work" extension of the paper.
#include <benchmark/benchmark.h>

#include <iostream>

#include "chain/accelerator.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "energy/energy_model.hpp"
#include "nn/golden.hpp"
#include "nn/sparsity.hpp"

namespace {

using namespace chainnn;

// Fraction of chain (PE array) energy spent in the multiplier+adder that
// gating can save on a zero operand (registers/mux still toggle).
constexpr double kGateableShare = 0.55;

void print_ablation() {
  nn::ConvLayerParams layer;
  layer.name = "conv3-like";
  layer.in_channels = 16;
  layer.out_channels = 24;
  layer.in_height = layer.in_width = 13;
  layer.kernel = 3;
  layer.pad = 1;
  layer.validate();

  const energy::EnergyModel model = energy::EnergyModel::paper_calibrated();
  const energy::ActivityRates rates = energy::paper_calibration_rates();
  const energy::PowerBreakdown base = model.power(rates, 700e6, 576);

  TextTable t("Ablation — zero-gating vs activation sparsity (" +
              layer.name + ")");
  t.set_header({"injected sparsity", "zero-MAC fraction (measured)",
                "chain power (mW)", "chip power (mW)", "GOPS/W",
                "bit-exact"});
  for (const double sparsity : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    Rng rng(11);
    Tensor<std::int16_t> x(
        Shape{1, layer.in_channels, layer.in_height, layer.in_width});
    Tensor<std::int16_t> w(Shape{layer.out_channels, layer.in_channels,
                                 layer.kernel, layer.kernel});
    x.fill_random(rng, 1, 127);  // strictly nonzero before injection
    w.fill_random(rng, -31, 31);
    nn::inject_sparsity(x, sparsity, 5);

    // Exact zero-operand MAC count (these are the MACs the verified
    // chain performs).
    const nn::ZeroMacStats zs = nn::count_zero_macs(layer, x, w);

    chain::AcceleratorConfig cfg;
    chain::ChainAccelerator acc(cfg);
    const auto res = acc.run_layer(layer, x, w);
    const bool exact =
        res.accumulators == nn::conv2d_fixed_accum(layer, x, w);

    const double gated_chain =
        base.chain_w * (1.0 - kGateableShare * zs.zero_fraction());
    const double chip =
        gated_chain + base.kmem_w + base.imem_w + base.omem_w;
    t.add_row({strings::fmt_pct(sparsity, 0),
               strings::fmt_pct(zs.zero_fraction(), 1),
               strings::fmt_fixed(gated_chain * 1e3, 1),
               strings::fmt_fixed(chip * 1e3, 1),
               strings::fmt_fixed(
                   energy::efficiency_gops_per_w(2.0 * 576 * 700e6, chip),
                   1),
               exact ? "yes" : "NO"});
  }
  std::cout << t.to_ascii()
            << "zero-gating assumes " << strings::fmt_pct(kGateableShare, 0)
            << " of PE energy (multiplier + psum adder) is isolatable on a "
               "zero operand.\nAt typical post-ReLU sparsity (~50%) the "
               "1421 GOPS/W chip would approach 1.9 TOPS/W —\nthe "
               "direction the paper's related work ([13],[14]) pursues.\n\n";
}

void BM_ZeroMacCount(benchmark::State& state) {
  nn::ConvLayerParams layer;
  layer.in_channels = 8;
  layer.out_channels = 8;
  layer.in_height = layer.in_width = 16;
  layer.kernel = 3;
  Rng rng(1);
  Tensor<std::int16_t> x(Shape{1, 8, 16, 16});
  Tensor<std::int16_t> w(Shape{8, 8, 3, 3});
  x.fill_random(rng, -64, 64);
  w.fill_random(rng, -16, 16);
  for (auto _ : state)
    benchmark::DoNotOptimize(nn::count_zero_macs(layer, x, w));
}
BENCHMARK(BM_ZeroMacCount)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
