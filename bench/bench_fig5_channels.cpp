// Reproduces the Fig. 5 analysis as an ablation: single-channel PEs reach
// only 1/K of the dual-channel throughput (§IV.C), measured on the
// cycle-accurate simulator (not just the analytic model).
#include <benchmark/benchmark.h>

#include <iostream>

#include "chain/accelerator.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "nn/golden.hpp"

namespace {

using namespace chainnn;

struct ChannelResult {
  std::int64_t cycles_dual = 0;
  std::int64_t cycles_single = 0;
  bool bit_exact = false;
};

ChannelResult run_case(std::int64_t k, std::int64_t hw) {
  nn::ConvLayerParams p;
  p.name = "fig5";
  p.in_channels = 2;
  p.out_channels = 2;
  p.in_height = p.in_width = hw;
  p.kernel = k;
  p.validate();

  Rng rng(static_cast<std::uint64_t>(k));
  Tensor<std::int16_t> x(Shape{1, 2, hw, hw});
  Tensor<std::int16_t> w(Shape{2, 2, k, k});
  x.fill_random(rng, -64, 64);
  w.fill_random(rng, -16, 16);

  chain::AcceleratorConfig dual;
  dual.array.num_pes = 2 * k * k;  // two primitives
  dual.array.kmem_words_per_pe = 16;
  chain::AcceleratorConfig single = dual;
  single.array.dual_channel = false;

  chain::ChainAccelerator ad(dual);
  chain::ChainAccelerator as(single);
  const auto rd = ad.run_layer(p, x, w);
  const auto rs = as.run_layer(p, x, w);

  ChannelResult res;
  res.cycles_dual = rd.stats.stream_cycles;
  res.cycles_single = rs.stats.stream_cycles;
  res.bit_exact = rd.accumulators == rs.accumulators &&
                  rd.accumulators == nn::conv2d_fixed_accum(p, x, w);
  return res;
}

void print_fig5() {
  TextTable t(
      "Fig. 5 ablation — dual-channel vs single-channel PE throughput");
  t.set_header({"K", "stream cycles (dual)", "stream cycles (single)",
                "slowdown", "paper model (=K)", "bit-exact"});
  for (const std::int64_t k : {2, 3, 5, 7}) {
    const std::int64_t hw = 6 * k;
    const ChannelResult r = run_case(k, hw);
    const double slowdown = static_cast<double>(r.cycles_single) /
                            static_cast<double>(r.cycles_dual);
    t.add_row({std::to_string(k), std::to_string(r.cycles_dual),
               std::to_string(r.cycles_single),
               strings::fmt_fixed(slowdown, 2) + "x",
               std::to_string(k) + "x", r.bit_exact ? "yes" : "NO"});
  }
  std::cout << t.to_ascii()
            << "paper §IV.C: a one-channel PE architecture achieves only "
               "1/K of the peak throughput;\nthe dual-channel PE restores "
               "100% utilization at the cost of one extra ifmap channel.\n\n";
}

void BM_DualChannelSim(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_case(3, 18).cycles_dual);
  }
}
BENCHMARK(BM_DualChannelSim)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
