// Reproduces Table II: the number of active PEs in a 576-PE systolic
// chain for kernel sizes 3x3 .. 11x11, plus a wider sweep showing how the
// 1D regrouping behaves for arbitrary K and chain lengths.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "dataflow/plan.hpp"
#include "report/paper_constants.hpp"

namespace {

using namespace chainnn;

void print_table2() {
  dataflow::ArrayShape array;  // 576 PEs
  TextTable t("Table II — active PEs in a 576-PE systolic chain");
  t.set_header({"Kernel", "#PEs/primitive", "#active primitives",
                "#active PEs", "efficiency (measured)",
                "efficiency (paper)"});
  for (const auto& paper_row : report::kTable2) {
    const auto r = dataflow::utilization_row(array, paper_row.kernel);
    t.add_row({std::to_string(r.kernel) + "x" + std::to_string(r.kernel),
               std::to_string(r.pes_per_primitive),
               std::to_string(r.active_primitives),
               std::to_string(r.active_pes),
               strings::fmt_pct(r.efficiency, 1),
               strings::fmt_fixed(paper_row.efficiency_pct, 1) + "%"});
  }
  std::cout << t.to_ascii()
            << "note: the paper prints 100% for 9x9 although 567/576 = "
               "98.4%; raw counts match exactly.\n\n";

  // Extension sweep: efficiency across chain lengths (the §III.B claim
  // that the 1D organization relaxes 2D placement constraints).
  TextTable s("Extension — PE utilization vs chain length");
  s.set_header({"chain PEs", "K=3", "K=5", "K=7", "K=9", "K=11"});
  for (const std::int64_t pes : {144, 288, 576, 1152, 2304}) {
    dataflow::ArrayShape a;
    a.num_pes = pes;
    std::vector<std::string> row{std::to_string(pes)};
    for (const std::int64_t k : {3, 5, 7, 9, 11})
      row.push_back(
          strings::fmt_pct(dataflow::utilization_row(a, k).efficiency, 1));
    s.add_row(row);
  }
  std::cout << s.to_ascii() << "\n";
}

void BM_UtilizationRow(benchmark::State& state) {
  dataflow::ArrayShape array;
  const std::int64_t k = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dataflow::utilization_row(array, k));
  }
}
BENCHMARK(BM_UtilizationRow)->Arg(3)->Arg(11);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
