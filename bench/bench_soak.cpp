// Gateway soak: many concurrent keep-alive HTTP connections driving a
// mixed-tier trace through the JSON front door, with client-side
// latency quantiles and a wire-vs-direct bit-identity phase. Results
// land in a "gateway" section merged into BENCH_serve.json (alongside
// bench_micro's serve/fleet sections) and are gated by
// scripts/compare_bench.py: zero transport errors, zero 5xx, zero
// server-side parse errors, zero digest mismatches, every submit
// accounted for, and p99 within budget of the committed baseline.
//
//   ./bench_soak [--connections=128] [--requests-per-connection=4]
//                [--identity-requests=6] [--scale=4]
//                [--threads-per-chip=1] [--json=BENCH_serve.json]
//
// Two phases, each on a fresh fleet + gateway:
//
//   1. Identity (sequential): the same mixed requests go through the
//      wire and through Fleet::submit on a twin fleet with identical
//      options. Sequential submission makes routing — and therefore
//      per-server request ids, and therefore the id-seeded generated
//      inputs — deterministic, so the wire response's (cycles, digest)
//      must equal the direct result's bit for bit. Under the concurrent
//      soak ids are assigned by arrival order, so bit-identity is only
//      checkable here.
//
//   2. Soak (concurrent): every connection is a thread with its own
//      persistent HttpClient issuing keep-alive submits. The trace
//      mixes models, batches and priority tiers, and two deterministic
//      probes exercise the non-ok verdicts over the wire: one
//      already-past deadline (resolves "cancelled") and one
//      admission-gated unmeetable deadline (resolves "rejected").
//      Latency is recorded client-side (request write to response
//      read) into a LatencyHistogram; the JSON reports p50/p99/p999.
//
// --json=- prints the gateway section to stdout without touching any
// file (the CTest smoke uses this). Otherwise the section is spliced
// into the existing JSON document at --json, preserving bench_micro's
// sections untouched (insertion-ordered parse-edit-dump).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "net/gateway.hpp"
#include "net/http_client.hpp"
#include "net/json.hpp"
#include "nn/models.hpp"
#include "serve/fleet.hpp"
#include "serve/latency_histogram.hpp"
#include "serve/sweep_driver.hpp"

namespace {

using namespace chainnn;

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return std::string(buf);
}

// One logical trace request; the same mix feeds both phases.
struct TraceRequest {
  std::string model;
  std::int64_t batch = 1;
  std::int32_t priority = 0;
  double deadline_ms = 0.0;  // 0 = none
};

TraceRequest trace_request(std::int64_t conn, std::int64_t r) {
  TraceRequest t;
  t.model = ((conn + r) % 3 == 2) ? "cifar10" : "lenet";
  t.batch = std::int64_t{1} << ((conn + r) % 2);  // 1, 2
  t.priority = static_cast<std::int32_t>(conn % 3);
  if (r % 2 == 1) t.deadline_ms = 600e3;  // generous: accounting, not misses
  return t;
}

std::string submit_body(const TraceRequest& t) {
  std::ostringstream body;
  body << "{\"model\": \"" << t.model << "\", \"batch\": " << t.batch;
  if (t.priority != 0) body << ", \"priority\": " << t.priority;
  if (t.deadline_ms != 0.0)
    body << ", \"deadline_ms\": " << net::json_number(t.deadline_ms);
  body << "}";
  return body.str();
}

serve::FleetOptions fleet_options(std::int64_t threads_per_chip) {
  serve::FleetOptions fo;
  fo.threads_per_chip = threads_per_chip;
  fo.preemption = true;
  fo.fidelity_sample_every_n = 0;  // no cycle-accurate replays mid-soak
  return fo;
}

// Phase 1: sequential wire-vs-direct comparison on twin fleets.
// Returns the number of mismatching responses (0 on a healthy stack).
std::int64_t identity_phase(std::int64_t count, std::int64_t scale,
                            std::int64_t threads_per_chip) {
  serve::Fleet wire_fleet(fleet_options(threads_per_chip));
  serve::Fleet direct_fleet(fleet_options(threads_per_chip));
  net::GatewayOptions go;
  go.model_scale = scale;
  net::Gateway gateway(wire_fleet, go);
  net::HttpClient client("127.0.0.1", gateway.port());

  std::map<std::string, nn::NetworkModel> proxies;
  std::int64_t mismatches = 0;
  for (std::int64_t i = 0; i < count; ++i) {
    const TraceRequest t = trace_request(i, i / 2);
    net::HttpResponse resp;
    if (!client.post_json("/v1/submit", submit_body(t), &resp) ||
        resp.status != 200) {
      std::cerr << "identity " << i << ": wire submit failed ("
                << client.error() << ")\n";
      ++mismatches;
      continue;
    }
    const auto doc = net::Json::parse(resp.body);

    if (proxies.find(t.model) == proxies.end())
      proxies.emplace(t.model, serve::channel_reduced_proxy(
                                   nn::model_by_name(t.model), scale));
    serve::RequestOptions ro;
    ro.priority = t.priority;
    if (t.deadline_ms != 0.0) ro.deadline_ms = t.deadline_ms;
    const serve::InferenceResult direct =
        direct_fleet.submit(proxies.at(t.model), t.batch, ro).get();

    const net::Json* cycles = doc ? doc->find("cycles") : nullptr;
    const net::Json* digest = doc ? doc->find("digest") : nullptr;
    const net::Json* status = doc ? doc->find("status") : nullptr;
    const net::Json* chip = doc ? doc->find("chip") : nullptr;
    const bool same =
        doc && status && status->is_string() &&
        status->as_string() ==
            net::request_status_name(direct.status) &&
        chip && chip->is_string() && chip->as_string() == direct.chip &&
        cycles && cycles->is_integer() &&
        cycles->as_int() == net::run_cycles(direct.run) &&
        digest && digest->is_string() &&
        digest->as_string() == hex16(net::run_digest(direct.run));
    if (!same) {
      std::cerr << "identity " << i << ": wire response diverged from "
                << "direct submit (model " << t.model << ", batch "
                << t.batch << ")\n";
      ++mismatches;
    }
  }
  return mismatches;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags;
  const std::map<std::string, std::string> defaults = {
      {"connections", "128"},      {"requests-per-connection", "4"},
      {"identity-requests", "6"},  {"scale", "4"},
      {"threads-per-chip", "1"},   {"json", "BENCH_serve.json"}};
  std::string error;
  if (!flags.parse(argc, argv, defaults, &error)) {
    std::cerr << "bench_soak: " << error << "\n" << CliFlags::usage(defaults);
    return 1;
  }
  const std::int64_t connections =
      std::max<std::int64_t>(1, flags.get_int("connections"));
  const std::int64_t per =
      std::max<std::int64_t>(1, flags.get_int("requests-per-connection"));
  const std::int64_t identity_requests =
      std::max<std::int64_t>(0, flags.get_int("identity-requests"));
  const std::int64_t scale =
      std::max<std::int64_t>(1, flags.get_int("scale"));
  const std::int64_t threads_per_chip =
      std::max<std::int64_t>(1, flags.get_int("threads-per-chip"));

  const std::int64_t digest_mismatches =
      identity_phase(identity_requests, scale, threads_per_chip);

  // Phase 2: the concurrent soak, on a fresh fleet + gateway so the
  // /metrics counters describe exactly this phase.
  serve::Fleet fleet(fleet_options(threads_per_chip));
  net::GatewayOptions go;
  go.model_scale = scale;
  go.http.max_connections = connections + 8;  // headroom for the scrape
  net::Gateway gateway(fleet, go);
  const std::uint16_t port = gateway.port();

  serve::LatencyHistogram latency;
  std::atomic<std::int64_t> errors{0};
  const auto worker = [&](std::int64_t conn) {
    net::HttpClient client("127.0.0.1", port, /*timeout_s=*/300.0);
    for (std::int64_t r = 0; r < per; ++r) {
      std::string body;
      if (conn == 0 && r == 0) {
        // Past deadline at submit: resolves "cancelled", never runs.
        body = "{\"model\": \"lenet\", \"batch\": 1, \"deadline_ms\": -1}";
      } else if (conn == std::min<std::int64_t>(1, connections - 1) &&
                 r == per - 1) {
        // Admission-gated unmeetable deadline: resolves "rejected".
        body = "{\"model\": \"lenet\", \"batch\": 1, \"deadline_ms\": -1, "
               "\"admission\": true}";
      } else {
        body = submit_body(trace_request(conn, r));
      }
      net::HttpResponse resp;
      const auto t0 = std::chrono::steady_clock::now();
      const bool ok = client.post_json("/v1/submit", body, &resp);
      const auto t1 = std::chrono::steady_clock::now();
      latency.record(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
      if (!ok || resp.status != 200) {
        errors.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const auto doc = net::Json::parse(resp.body);
      if (!doc || doc->find("status") == nullptr ||
          doc->find("digest") == nullptr)
        errors.fetch_add(1, std::memory_order_relaxed);
    }
  };

  const auto soak_t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(connections));
  for (std::int64_t c = 0; c < connections; ++c)
    threads.emplace_back(worker, c);
  for (auto& t : threads) t.join();
  const double wall_seconds = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - soak_t0)
                                  .count();

  // Post-soak scrape: /metrics must still answer after the burst.
  {
    net::HttpClient client("127.0.0.1", port);
    net::HttpResponse resp;
    if (!client.get("/metrics", &resp) || resp.status != 200 ||
        resp.body.find("chainnn_fleet_completed_total") == std::string::npos)
      errors.fetch_add(1, std::memory_order_relaxed);
  }

  const net::GatewayStats gs = gateway.stats();
  const auto snap = latency.snapshot();
  const std::int64_t requests = connections * per;
  const std::int64_t accounted =
      gs.submits_ok + gs.submits_cancelled + gs.submits_rejected;
  const double rps =
      wall_seconds == 0.0 ? 0.0 : static_cast<double>(requests) / wall_seconds;

  net::Json section(net::JsonObject{
      {"connections", net::Json(connections)},
      {"requests", net::Json(requests)},
      {"identity_requests", net::Json(identity_requests)},
      {"completed", net::Json(gs.submits_ok)},
      {"cancelled", net::Json(gs.submits_cancelled)},
      {"rejected", net::Json(gs.submits_rejected)},
      {"errors", net::Json(errors.load())},
      {"http_5xx", net::Json(gs.http.responses_5xx)},
      {"parse_errors", net::Json(gs.http.parse_errors)},
      {"digest_mismatches", net::Json(digest_mismatches)},
      {"p50_ms", net::Json(snap.p50_ms())},
      {"p99_ms", net::Json(snap.p99_ms())},
      {"p999_ms", net::Json(snap.p999_ms())},
      {"rps", net::Json(rps)},
      {"wall_seconds", net::Json(wall_seconds)}});
  std::cout << "{\"gateway\": " << section.dump() << "}\n";

  const std::string path = flags.get_string("json");
  if (!path.empty() && path != "-") {
    // Splice into the existing document (bench_micro's serve/fleet
    // sections) rather than clobbering it; a fresh file gets just the
    // gateway section.
    net::Json doc{net::JsonObject{}};
    std::ifstream in(path);
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      std::string parse_error;
      auto parsed = net::Json::parse(text.str(), &parse_error);
      if (parsed && parsed->is_object()) {
        doc = std::move(*parsed);
      } else {
        std::cerr << "bench_soak: cannot splice into " << path << " ("
                  << parse_error << "); rewriting it\n";
      }
    }
    doc.set("gateway", std::move(section));
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    out << doc.dump() << "\n";
  }

  // The soak doubles as a hard gate: a lost request, transport error,
  // 5xx, parse error or digest mismatch is a failure here, before
  // compare_bench.py ever sees the JSON.
  if (digest_mismatches != 0 || errors.load() != 0 ||
      gs.http.responses_5xx != 0 || gs.http.parse_errors != 0 ||
      gs.submits_failed != 0 || accounted != requests) {
    std::cerr << "BENCH_SOAK FAILED: digest_mismatches=" << digest_mismatches
              << " errors=" << errors.load() << " 5xx="
              << gs.http.responses_5xx << " parse_errors="
              << gs.http.parse_errors << " accounted=" << accounted << "/"
              << requests << "\n";
    return 2;
  }
  return 0;
}
