// Reproduces Table IV: memory communication breakdown (MByte) for the
// five AlexNet conv layers at batch 4, per memory level, plus the §V.C
// derived quantities (ifmap reuse factor (2K-1)/K and the kMemory
// activity factor ~1/KE).
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "dataflow/traffic.hpp"
#include "nn/models.hpp"
#include "report/paper_constants.hpp"

namespace {

using namespace chainnn;

constexpr double kMB = 1024.0 * 1024.0;

void print_table4() {
  const dataflow::ArrayShape array;
  const auto net = nn::alexnet();
  const std::int64_t batch = 4;

  TextTable t("Table IV — memory communication breakdown, batch 4 (MB)");
  t.set_header({"layer", "DRAM paper", "DRAM ours", "iMem paper",
                "iMem ours", "kMem paper", "kMem ours", "oMem paper",
                "oMem ours"});
  double tot[4] = {};
  for (std::size_t i = 0; i < net.conv_layers.size(); ++i) {
    const auto& layer = net.conv_layers[i];
    const auto plan = dataflow::plan_layer(layer, array);
    const auto traffic = dataflow::model_traffic(plan, batch);
    const double dram = static_cast<double>(traffic.dram_total()) / kMB;
    const double imem = static_cast<double>(traffic.imem_reads) / kMB;
    const double kmem = static_cast<double>(traffic.kmem_total()) / kMB;
    const double omem = static_cast<double>(traffic.omem_total()) / kMB;
    const auto& paper = report::kTable4[i];
    t.add_row({layer.name, strings::fmt_fixed(paper.dram_mb, 1),
               strings::fmt_fixed(dram, 1),
               strings::fmt_fixed(paper.imem_mb, 1),
               strings::fmt_fixed(imem, 1),
               strings::fmt_fixed(paper.kmem_mb, 1),
               strings::fmt_fixed(kmem, 1),
               strings::fmt_fixed(paper.omem_mb, 1),
               strings::fmt_fixed(omem, 1)});
    tot[0] += dram;
    tot[1] += imem;
    tot[2] += kmem;
    tot[3] += omem;
  }
  t.add_separator();
  t.add_row({"total", strings::fmt_fixed(report::kTable4TotalDram, 1),
             strings::fmt_fixed(tot[0], 1),
             strings::fmt_fixed(report::kTable4TotalImem, 1),
             strings::fmt_fixed(tot[1], 1),
             strings::fmt_fixed(report::kTable4TotalKmem, 1),
             strings::fmt_fixed(tot[2], 1),
             strings::fmt_fixed(report::kTable4TotalOmem, 1),
             strings::fmt_fixed(tot[3], 1)});
  std::cout << t.to_ascii()
            << "conv1 differs by design: the paper's strided model "
               "re-streams strips S=4 times from DRAM;\nour phase "
               "decomposition keeps strips resident (less DRAM, more "
               "iMemory re-reads). conv2-5 match\nthe paper's counting "
               "rules. oMemory >> kMemory > iMemory ordering is "
               "reproduced everywhere.\n\n";

  // §V.C derived quantities.
  TextTable d("§V.C — derived reuse/activity factors");
  d.set_header({"layer", "ifmap reuse (2K-1)/K", "kMem activity (ours)",
                "kMem activity (paper)"});
  for (std::size_t i = 0; i < net.conv_layers.size(); ++i) {
    const auto& layer = net.conv_layers[i];
    const auto plan = dataflow::plan_layer(layer, array);
    d.add_row({layer.name,
               strings::fmt_fixed(dataflow::ifmap_reuse_factor(plan), 3),
               strings::fmt_pct(dataflow::kmem_activity_factor(plan), 2),
               i == 2 ? "2.22%" : "-"});
  }
  std::cout << d.to_ascii() << "\n";
}

void BM_TrafficModelAlexNet(benchmark::State& state) {
  const dataflow::ArrayShape array;
  const auto net = nn::alexnet();
  for (auto _ : state) {
    for (const auto& layer : net.conv_layers) {
      const auto plan = dataflow::plan_layer(layer, array);
      benchmark::DoNotOptimize(dataflow::model_traffic(plan, 4));
    }
  }
}
BENCHMARK(BM_TrafficModelAlexNet);

}  // namespace

int main(int argc, char** argv) {
  print_table4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
