// Reproduces Fig. 9: the time distribution of the five AlexNet
// convolutional layers at batch 128 (convolution time vs kernel-load
// time), plus the fps figures quoted in §V.B.
//
// Three views are printed:
//   1. the paper's idealized timing model (MACs / active PEs, x stride
//      for strided layers) — this is what Fig. 9 plots;
//   2. our schedule's closed-form cycle counts (strip patterns, phase
//      decomposition for conv1);
//   3. measured cycles from the register-level simulator on one image
//      (bit-exactness asserted against the golden model), scaled to the
//      batch for comparison.
#include <benchmark/benchmark.h>

#include <iostream>

#include "chain/accelerator.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "nn/golden.hpp"
#include "nn/models.hpp"
#include "report/comparison.hpp"
#include "report/paper_constants.hpp"

namespace {

using namespace chainnn;

// One-image cycle-accurate measurement; channels reduced so the run fits
// in a few seconds — layer geometry (H/W/K/S/groups) stays full-size and
// the cycle count is scaled back by the exact channel ratio.
struct SimMeasurement {
  double scaled_cycles = 0.0;
  bool bit_exact = false;
};

SimMeasurement simulate_layer(const nn::ConvLayerParams& full) {
  nn::ConvLayerParams p = full;
  const std::int64_t c_div = full.in_channels >= 48 ? 16 : 1;
  const std::int64_t m_div = full.out_channels >= 96 ? 16 : 1;
  p.in_channels = full.in_channels / c_div;
  p.out_channels = full.out_channels / m_div;
  p.validate();

  Rng rng(99);
  Tensor<std::int16_t> x(Shape{1, p.in_channels, p.in_height, p.in_width});
  Tensor<std::int16_t> w(
      Shape{p.out_channels, p.channels_per_group(), p.kernel, p.kernel});
  x.fill_random(rng, -64, 64);
  w.fill_random(rng, -16, 16);

  chain::ChainAccelerator acc{chain::AcceleratorConfig{}};
  const auto res = acc.run_layer(p, x, w);

  SimMeasurement m;
  m.bit_exact = res.accumulators == nn::conv2d_fixed_accum(p, x, w);
  // Cycles scale with channels streamed (c) and with m-groups; recover
  // the full-size count through the plan ratio.
  const auto plan_full = acc.plan(full);
  const auto plan_small = res.plan;
  const double ratio =
      static_cast<double>(plan_full.cycles_per_image()) /
      static_cast<double>(plan_small.cycles_per_image());
  m.scaled_cycles =
      static_cast<double>(res.stats.stream_cycles + res.stats.drain_cycles) *
      ratio;
  return m;
}

void print_fig9() {
  const dataflow::ArrayShape array;
  const auto net = nn::alexnet();
  const std::int64_t batch = 128;

  TextTable t("Fig. 9 — AlexNet conv layer times, batch 128 (ms)");
  t.set_header({"layer", "paper conv", "paper load", "paper-model conv",
                "our-schedule conv", "sim (scaled)", "load (ours)",
                "bit-exact"});
  double total_ours = 0.0, total_paper = 0.0, total_load = 0.0;
  double total_paper_model = 0.0;
  for (std::size_t i = 0; i < net.conv_layers.size(); ++i) {
    const auto& layer = net.conv_layers[i];
    const auto plan = dataflow::plan_layer(layer, array);
    const double paper_model_ms =
        static_cast<double>(plan.paper_model_cycles_per_image()) * batch /
        array.clock_hz * 1e3;
    const double ours_ms =
        static_cast<double>(plan.cycles_per_image()) * batch /
        array.clock_hz * 1e3;
    const double load_ms =
        static_cast<double>(plan.kernel_load_cycles_per_batch()) /
        array.clock_hz * 1e3;
    const SimMeasurement sim = simulate_layer(layer);
    const double sim_ms = sim.scaled_cycles * batch / array.clock_hz * 1e3;

    t.add_row({layer.name, strings::fmt_fixed(report::kFig9[i].conv_ms, 2),
               strings::fmt_fixed(report::kFig9[i].kernel_load_ms, 2),
               strings::fmt_fixed(paper_model_ms, 2),
               strings::fmt_fixed(ours_ms, 2),
               strings::fmt_fixed(sim_ms, 2),
               strings::fmt_fixed(load_ms, 2),
               sim.bit_exact ? "yes" : "NO"});
    total_ours += ours_ms;
    total_paper += report::kFig9[i].conv_ms;
    total_paper_model += paper_model_ms;
    total_load += load_ms;
  }
  std::cout << t.to_ascii();

  const double fps128_ours = batch / ((total_ours + total_load) / 1e3);
  const double fps128_paper_model =
      batch / ((total_paper_model + total_load) / 1e3);
  double ours4 = 0.0;
  for (const auto& layer : net.conv_layers) {
    const auto plan = dataflow::plan_layer(layer, array);
    ours4 += plan.seconds_per_batch(4);
  }
  const double fps4_ours = 4.0 / ours4;

  report::ComparisonTable fps("fps (AlexNet, 5 conv layers)", "fps");
  fps.add("batch 128 (paper model)", report::kFpsBatch128,
          fps128_paper_model);
  fps.add("batch 128 (our schedule)", report::kFpsBatch128, fps128_ours);
  fps.add("batch 4 (our schedule)", report::kFpsBatch4, fps4_ours);
  std::cout << fps.render();
  std::cout << "kernel-load total: paper " << report::kKernelLoadTotalMs
            << " ms, ours " << strings::fmt_fixed(total_load, 2)
            << " ms (1 word/cycle, once per batch)\n"
            << "note: our conv1 runs the stride-phase decomposition and "
               "beats the paper's 1/S strided\nmodel; conv2-5 carry "
               "explicit strip ramp-in/out, so each is a few percent "
               "slower than the\npaper's idealized numbers. Shape (layer "
               "ordering, load<<conv) is preserved.\n\n";
}

void BM_PlanAlexNet(benchmark::State& state) {
  const dataflow::ArrayShape array;
  const auto net = nn::alexnet();
  for (auto _ : state) {
    for (const auto& layer : net.conv_layers)
      benchmark::DoNotOptimize(
          dataflow::plan_layer(layer, array).cycles_per_image());
  }
}
BENCHMARK(BM_PlanAlexNet);

}  // namespace

int main(int argc, char** argv) {
  print_fig9();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
