// Reproduces Fig. 9: the time distribution of the five AlexNet
// convolutional layers at batch 128 (convolution time vs kernel-load
// time), plus the fps figures quoted in §V.B.
//
// Three views are printed:
//   1. the paper's idealized timing model (MACs / active PEs, x stride
//      for strided layers) — this is what Fig. 9 plots;
//   2. our schedule's closed-form cycle counts (strip patterns, phase
//      decomposition for conv1);
//   3. executed cycles from one image on the selected engine
//      (bit-exactness asserted against the golden model), scaled to the
//      batch for comparison.
//
// --exec-mode selects the engine for view 3:
//   analytical      (default) — golden ofmaps + closed-form accounting;
//                   equals the simulator exactly, orders of magnitude
//                   faster, so the whole figure prints in milliseconds.
//   cycle-accurate  — the register-level simulator.
//   compare         — runs both, asserts identical cycles, and reports
//                   the per-layer and total wall-clock speedup.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <string>

#include "chain/accelerator.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "nn/golden.hpp"
#include "nn/models.hpp"
#include "report/comparison.hpp"
#include "report/paper_constants.hpp"

namespace {

using namespace chainnn;

// One-image measurement on the selected engine; channels reduced so the
// cycle-accurate run fits in a few seconds — layer geometry (H/W/K/S/
// groups) stays full-size and the cycle count is scaled back by the
// exact channel ratio.
struct SimMeasurement {
  double scaled_cycles = 0.0;
  double wall_ms = 0.0;
  bool bit_exact = false;
};

SimMeasurement simulate_layer(const nn::ConvLayerParams& full,
                              chain::ExecMode mode) {
  nn::ConvLayerParams p = full;
  const std::int64_t c_div = full.in_channels >= 48 ? 16 : 1;
  const std::int64_t m_div = full.out_channels >= 96 ? 16 : 1;
  p.in_channels = full.in_channels / c_div;
  p.out_channels = full.out_channels / m_div;
  p.validate();

  Rng rng(99);
  Tensor<std::int16_t> x(Shape{1, p.in_channels, p.in_height, p.in_width});
  Tensor<std::int16_t> w(
      Shape{p.out_channels, p.channels_per_group(), p.kernel, p.kernel});
  x.fill_random(rng, -64, 64);
  w.fill_random(rng, -16, 16);

  chain::AcceleratorConfig cfg;
  cfg.exec_mode = mode;
  chain::ChainAccelerator acc(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = acc.run_layer(p, x, w);
  const auto t1 = std::chrono::steady_clock::now();

  SimMeasurement m;
  m.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.bit_exact = res.accumulators == nn::conv2d_fixed_accum(p, x, w);
  // Cycles scale with channels streamed (c) and with m-groups; recover
  // the full-size count through the plan ratio.
  const auto plan_full = acc.plan(full);
  const auto plan_small = res.plan;
  const double ratio =
      static_cast<double>(plan_full.cycles_per_image()) /
      static_cast<double>(plan_small.cycles_per_image());
  m.scaled_cycles =
      static_cast<double>(res.stats.stream_cycles + res.stats.drain_cycles) *
      ratio;
  return m;
}

// Returns false if compare mode found a divergence (or any executed
// layer was not bit-exact) so the binary can fail loudly.
bool print_fig9(chain::ExecMode mode, bool compare) {
  const dataflow::ArrayShape array;
  const auto net = nn::alexnet();
  const std::int64_t batch = 128;

  TextTable t(std::string("Fig. 9 — AlexNet conv layer times, batch 128 "
                          "(ms); exec: ") +
              (compare ? "compare" : chain::exec_mode_name(mode)));
  t.set_header({"layer", "paper conv", "paper load", "paper-model conv",
                "our-schedule conv", "exec (scaled)", "load (ours)",
                "bit-exact"});
  double total_ours = 0.0, total_paper = 0.0, total_load = 0.0;
  double total_paper_model = 0.0;
  double wall_analytical_ms = 0.0, wall_cycle_ms = 0.0;
  bool cycles_identical = true;
  bool all_bit_exact = true;
  for (std::size_t i = 0; i < net.conv_layers.size(); ++i) {
    const auto& layer = net.conv_layers[i];
    const auto plan = dataflow::plan_layer(layer, array);
    const double paper_model_ms =
        static_cast<double>(plan.paper_model_cycles_per_image()) * batch /
        array.clock_hz * 1e3;
    const double ours_ms =
        static_cast<double>(plan.cycles_per_image()) * batch /
        array.clock_hz * 1e3;
    const double load_ms =
        static_cast<double>(plan.kernel_load_cycles_per_batch()) /
        array.clock_hz * 1e3;
    SimMeasurement sim;
    if (compare) {
      const SimMeasurement fast =
          simulate_layer(layer, chain::ExecMode::kAnalytical);
      const SimMeasurement slow =
          simulate_layer(layer, chain::ExecMode::kCycleAccurate);
      wall_analytical_ms += fast.wall_ms;
      wall_cycle_ms += slow.wall_ms;
      cycles_identical =
          cycles_identical && fast.scaled_cycles == slow.scaled_cycles;
      sim = fast;
      sim.bit_exact = fast.bit_exact && slow.bit_exact;
    } else {
      sim = simulate_layer(layer, mode);
    }
    all_bit_exact = all_bit_exact && sim.bit_exact;
    const double sim_ms = sim.scaled_cycles * batch / array.clock_hz * 1e3;

    t.add_row({layer.name, strings::fmt_fixed(report::kFig9[i].conv_ms, 2),
               strings::fmt_fixed(report::kFig9[i].kernel_load_ms, 2),
               strings::fmt_fixed(paper_model_ms, 2),
               strings::fmt_fixed(ours_ms, 2),
               strings::fmt_fixed(sim_ms, 2),
               strings::fmt_fixed(load_ms, 2),
               sim.bit_exact ? "yes" : "NO"});
    total_ours += ours_ms;
    total_paper += report::kFig9[i].conv_ms;
    total_paper_model += paper_model_ms;
    total_load += load_ms;
  }
  std::cout << t.to_ascii();

  if (compare) {
    std::cout << "exec-mode speedup (channel-reduced layers, one image): "
              << "cycle-accurate " << strings::fmt_fixed(wall_cycle_ms, 1)
              << " ms vs analytical "
              << strings::fmt_fixed(wall_analytical_ms, 2) << " ms => "
              << strings::fmt_fixed(wall_cycle_ms / wall_analytical_ms, 1)
              << "x, cycle counts "
              << (cycles_identical ? "identical" : "DIFFER") << "\n\n";
  }

  const double fps128_ours = batch / ((total_ours + total_load) / 1e3);
  const double fps128_paper_model =
      batch / ((total_paper_model + total_load) / 1e3);
  double ours4 = 0.0;
  for (const auto& layer : net.conv_layers) {
    const auto plan = dataflow::plan_layer(layer, array);
    ours4 += plan.seconds_per_batch(4);
  }
  const double fps4_ours = 4.0 / ours4;

  report::ComparisonTable fps("fps (AlexNet, 5 conv layers)", "fps");
  fps.add("batch 128 (paper model)", report::kFpsBatch128,
          fps128_paper_model);
  fps.add("batch 128 (our schedule)", report::kFpsBatch128, fps128_ours);
  fps.add("batch 4 (our schedule)", report::kFpsBatch4, fps4_ours);
  std::cout << fps.render();
  std::cout << "kernel-load total: paper " << report::kKernelLoadTotalMs
            << " ms, ours " << strings::fmt_fixed(total_load, 2)
            << " ms (1 word/cycle, once per batch)\n"
            << "note: our conv1 runs the stride-phase decomposition and "
               "beats the paper's 1/S strided\nmodel; conv2-5 carry "
               "explicit strip ramp-in/out, so each is a few percent "
               "slower than the\npaper's idealized numbers. Shape (layer "
               "ordering, load<<conv) is preserved.\n\n";
  return cycles_identical && all_bit_exact;
}

void BM_PlanAlexNet(benchmark::State& state) {
  const dataflow::ArrayShape array;
  const auto net = nn::alexnet();
  for (auto _ : state) {
    for (const auto& layer : net.conv_layers)
      benchmark::DoNotOptimize(
          dataflow::plan_layer(layer, array).cycles_per_image());
  }
}
BENCHMARK(BM_PlanAlexNet);

}  // namespace

int main(int argc, char** argv) {
  // Strip --exec-mode before google-benchmark sees the argv (shared
  // helper; vgg16_profile / design_space use the CliFlags form).
  ExecModeSelection sel;
  std::string err;
  if (!consume_exec_mode_flag(&argc, argv, /*allow_compare=*/true,
                              /*allow_none=*/false, &sel, &err)) {
    std::cerr << err << "\n";
    return 1;
  }

  const bool ok = print_fig9(sel.mode, sel.compare);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return ok ? 0 : 2;
}
