// Ablation: per-PE MAC pipeline depth (§IV.B leaves "other pipelining
// schemes" as future work; §V.B fixes 3 stages / 1.428 ns / 700 MHz).
// Sweeps the stage count through the calibrated timing model and reports
// clock, peak throughput, AlexNet fps, power and efficiency per design
// point — quantifying why the paper's 3-stage choice sits near the knee.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "dataflow/plan.hpp"
#include "energy/energy_model.hpp"
#include "energy/timing_model.hpp"
#include "nn/models.hpp"

namespace {

using namespace chainnn;

void print_ablation() {
  const energy::TimingModel timing;
  const energy::EnergyModel energy_model =
      energy::EnergyModel::paper_calibrated();
  const auto net = nn::alexnet();

  TextTable t("Ablation — MAC pipeline depth (576 PEs)");
  t.set_header({"stages", "critical path (ns)", "clock (MHz)",
                "peak GOPS", "AlexNet fps (b128)", "power (mW)",
                "GOPS/W"});
  for (const int stages : {1, 2, 3, 4, 6, 8}) {
    dataflow::ArrayShape array;
    array.pipeline_stages = stages;
    array.clock_hz = timing.max_clock_hz(stages);

    double batch_s = 0.0;
    for (const auto& layer : net.conv_layers)
      batch_s += dataflow::plan_layer(layer, array).seconds_per_batch(128);

    // Power: calibrated activity at the new clock, PE energy scaled by
    // the flop-count change.
    energy::ActivityRates rates = energy::paper_calibration_rates();
    energy::PowerBreakdown p =
        energy_model.power(rates, array.clock_hz, array.num_pes);
    p.chain_w *= timing.pe_energy_scale(stages);

    const double peak = timing.peak_ops_per_s(stages, array.num_pes);
    t.add_row({std::to_string(stages),
               strings::fmt_fixed(timing.critical_path_s(stages) * 1e9, 3),
               strings::fmt_fixed(array.clock_hz / 1e6, 0),
               strings::fmt_fixed(peak / 1e9, 1),
               strings::fmt_fixed(128.0 / batch_s, 1),
               strings::fmt_fixed(p.total() * 1e3, 1),
               strings::fmt_fixed(
                   energy::efficiency_gops_per_w(peak, p.total()), 1)});
  }
  std::cout << t.to_ascii()
            << "3 stages is the paper's design point (1.428 ns, 700 MHz); "
               "deeper pipelines buy little clock\nonce register overhead "
               "dominates and pay flop energy on every PE.\n\n";
}

void BM_TimingModel(benchmark::State& state) {
  const energy::TimingModel timing;
  for (auto _ : state)
    benchmark::DoNotOptimize(timing.max_clock_hz(3));
}
BENCHMARK(BM_TimingModel);

}  // namespace

int main(int argc, char** argv) {
  print_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
