// Microbenchmarks (google-benchmark timing): simulator speed, golden
// convolution speed, pattern generation and planning cost. These size the
// simulation substrate itself rather than reproduce a paper figure.
//
// Batch mode: `bench_micro --batch 8 --workers 4 [--layer-size 32]
// [--channels 4] [--kernel 3] [--repeats 3]` times the serial path
// against the BatchExecutor worker pool on the same batch, checks the
// results are bit-identical, and prints one JSON object to stdout.
//
// Serve mode: `bench_micro --serve [--requests 12] [--serve-threads 2]
// [--serve-model lenet] [--serve-scale 2] [--serve-batch 2]
// [--fidelity-every 4] [--json BENCH_serve.json]` times the same
// request mix through an InferenceServer on each engine (warm plan
// cache, fidelity sampling off so no replay pollutes a timing window),
// then runs an untimed fidelity pass (1-in-N of the nominal traffic,
// every request cross-checked), and emits one machine-readable JSON
// object (requests/sec analytical vs cycle-accurate, plan-cache hit
// rate, fidelity counters) to stdout and to --json, seeding the serving
// perf trajectory in CI. The same JSON always carries a "kernel"
// section: GMAC/s of the exact scalar MAC reference vs the analytical
// engine's dispatcher over the VGG-16 channel-reduced proxy layers
// (--kernel-scale), with the saturation-free fast-path dispatch rate —
// the figure compare_bench.py gates per CHAINNN_SIMD lane.
//
// Fleet mode: `--fleet [--fleet-requests 24] [--fleet-threads 1]
// [--fleet-fidelity-every 6]` additionally drives a mixed
// (model, batch, priority, deadline) trace through the 3-chip
// heterogeneous Fleet and nests the routing metrics under "fleet" in
// the same JSON: per-chip routed counts and modelled busy seconds,
// modelled fleet rps vs the best single chip replaying the whole trace
// (deterministic closed forms — the fleet must win), wall rps, and the
// deadline-miss / cancellation counters (the trace deliberately
// includes one request whose deadline is already past at submit).
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chain/accelerator.hpp"
#include "chain/batch_executor.hpp"
#include "chain/scan_pattern.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "fixed/quantize.hpp"
#include "nn/conv_kernel.hpp"
#include "nn/golden.hpp"
#include "nn/models.hpp"
#include "serve/design_search.hpp"
#include "serve/durable.hpp"
#include "serve/fleet.hpp"
#include "serve/inference_server.hpp"
#include "serve/journal.hpp"
#include "serve/sweep_driver.hpp"

namespace {

using namespace chainnn;

nn::ConvLayerParams bench_layer(std::int64_t k) {
  nn::ConvLayerParams p;
  p.name = "bench";
  p.in_channels = 4;
  p.out_channels = 8;
  p.in_height = p.in_width = 32;
  p.kernel = k;
  p.validate();
  return p;
}

void BM_GoldenConv(benchmark::State& state) {
  const auto p = bench_layer(state.range(0));
  Rng rng(1);
  Tensor<std::int16_t> x(Shape{1, p.in_channels, p.in_height, p.in_width});
  Tensor<std::int16_t> w(
      Shape{p.out_channels, p.in_channels, p.kernel, p.kernel});
  x.fill_random(rng, -64, 64);
  w.fill_random(rng, -16, 16);
  for (auto _ : state)
    benchmark::DoNotOptimize(nn::conv2d_fixed_accum(p, x, w));
  state.SetItemsProcessed(state.iterations() * p.macs_per_image());
}
BENCHMARK(BM_GoldenConv)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_ChainSimulator(benchmark::State& state) {
  const auto p = bench_layer(state.range(0));
  Rng rng(2);
  Tensor<std::int16_t> x(Shape{1, p.in_channels, p.in_height, p.in_width});
  Tensor<std::int16_t> w(
      Shape{p.out_channels, p.in_channels, p.kernel, p.kernel});
  x.fill_random(rng, -64, 64);
  w.fill_random(rng, -16, 16);
  chain::AcceleratorConfig cfg;
  cfg.array.num_pes = 576;
  for (auto _ : state) {
    chain::ChainAccelerator acc(cfg);
    const auto res = acc.run_layer(p, x, w);
    benchmark::DoNotOptimize(res.stats.stream_cycles);
    state.counters["sim_cycles"] = static_cast<double>(
        res.stats.stream_cycles + res.stats.drain_cycles);
  }
  state.SetItemsProcessed(state.iterations() * p.macs_per_image());
}
BENCHMARK(BM_ChainSimulator)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_PatternGeneration(benchmark::State& state) {
  const std::int64_t k = state.range(0);
  for (auto _ : state) {
    chain::StripPattern pat(k, k, 2 * k - 1, 64, k, true);
    benchmark::DoNotOptimize(pat.completions());
  }
}
BENCHMARK(BM_PatternGeneration)->Arg(3)->Arg(11);

void BM_PlanVgg16(benchmark::State& state) {
  const dataflow::ArrayShape array;
  const auto net = nn::vgg16();
  for (auto _ : state)
    for (const auto& layer : net.conv_layers)
      benchmark::DoNotOptimize(
          dataflow::plan_layer(layer, array).cycles_per_image());
}
BENCHMARK(BM_PlanVgg16);

void BM_QuantizeTensor(benchmark::State& state) {
  Rng rng(3);
  Tensor<float> t(Shape{256 * 1024});
  t.fill_random(rng, -2.0, 2.0);
  for (auto _ : state) {
    auto q = fixed::quantize(t.data(), fixed::FixedFormat{8});
    benchmark::DoNotOptimize(q.raw.data());
  }
  state.SetBytesProcessed(state.iterations() * t.num_elements() * 4);
}
BENCHMARK(BM_QuantizeTensor)->Unit(benchmark::kMillisecond);

double run_once(chain::BatchExecutor& exec, const nn::ConvLayerParams& layer,
                const Tensor<std::int16_t>& x, const Tensor<std::int16_t>& w,
                chain::LayerRunResult* out) {
  const auto t0 = std::chrono::steady_clock::now();
  *out = exec.run_layer(layer, x, w);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

int run_batch_bench(int argc, const char* const* argv) {
  CliFlags flags;
  const std::map<std::string, std::string> defaults = {
      {"batch", "8"},   {"workers", "4"}, {"layer-size", "32"},
      {"channels", "4"}, {"out-channels", "8"}, {"kernel", "3"},
      {"repeats", "1"}};
  std::string error;
  if (!flags.parse(argc, argv, defaults, &error)) {
    std::cerr << "bench_micro batch mode: " << error << "\n"
              << CliFlags::usage(defaults);
    return 1;
  }

  for (const char* flag : {"batch", "workers", "layer-size", "channels",
                           "out-channels", "kernel"}) {
    if (flags.get_int(flag) < 1) {
      std::cerr << "bench_micro batch mode: --" << flag
                << " must be a positive integer, got \""
                << flags.get_string(flag) << "\"\n";
      return 1;
    }
  }

  nn::ConvLayerParams p;
  p.name = "batch_bench";
  p.batch = flags.get_int("batch");
  p.in_channels = flags.get_int("channels");
  p.out_channels = flags.get_int("out-channels");
  p.in_height = p.in_width = flags.get_int("layer-size");
  p.kernel = flags.get_int("kernel");
  p.validate();

  Rng rng(7);
  Tensor<std::int16_t> x(
      Shape{p.batch, p.in_channels, p.in_height, p.in_width});
  Tensor<std::int16_t> w(
      Shape{p.out_channels, p.in_channels, p.kernel, p.kernel});
  x.fill_random(rng, -64, 64);
  w.fill_random(rng, -16, 16);

  const chain::AcceleratorConfig cfg;
  const std::int64_t workers = flags.get_int("workers");
  const std::int64_t repeats = std::max<std::int64_t>(1, flags.get_int("repeats"));
  chain::BatchExecutor serial(cfg, {.num_workers = 1});
  chain::BatchExecutor parallel(cfg, {.num_workers = workers});

  chain::LayerRunResult rs, rp;
  double serial_ms = 0.0, parallel_ms = 0.0;
  for (std::int64_t i = 0; i < repeats; ++i) {
    const double s = run_once(serial, p, x, w, &rs);
    const double q = run_once(parallel, p, x, w, &rp);
    if (i == 0 || s < serial_ms) serial_ms = s;      // best-of-N
    if (i == 0 || q < parallel_ms) parallel_ms = q;
  }

  const bool identical =
      rs.ofmaps == rp.ofmaps && rs.accumulators == rp.accumulators &&
      rs.stats.total_cycles() == rp.stats.total_cycles() &&
      rs.traffic.dram_bytes == rp.traffic.dram_bytes &&
      rs.traffic.imemory_bytes == rp.traffic.imemory_bytes &&
      rs.traffic.kmemory_bytes == rp.traffic.kmemory_bytes &&
      rs.traffic.omemory_bytes == rp.traffic.omemory_bytes;

  std::cout << "{\"batch\": " << p.batch << ", \"workers\": " << workers
            << ", \"layer\": \"" << p.in_height << "x" << p.in_width << "x"
            << p.in_channels << "->" << p.out_channels << " k" << p.kernel
            << "\", \"serial_ms\": " << serial_ms
            << ", \"parallel_ms\": " << parallel_ms
            << ", \"speedup\": " << serial_ms / parallel_ms
            << ", \"sim_cycles\": " << rp.stats.total_cycles()
            << ", \"bit_identical\": " << (identical ? "true" : "false")
            << "}\n";
  return identical ? 0 : 2;
}

// Times `count` identical requests on one engine through `server`,
// waiting for all of them; returns requests/sec.
double time_requests(serve::InferenceServer& server,
                     const nn::NetworkModel& net, std::int64_t batch,
                     std::int64_t count, chain::ExecMode mode) {
  std::vector<std::future<serve::InferenceResult>> futures;
  futures.reserve(static_cast<std::size_t>(count));
  serve::RequestOptions ro;
  ro.exec_mode = mode;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < count; ++i)
    futures.push_back(server.submit(net, batch, ro));
  for (auto& f : futures) f.get();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return secs == 0.0 ? 0.0 : static_cast<double>(count) / secs;
}

// MAC-kernel phase: GMAC/s of the exact scalar sticky-clamp reference
// vs the analytical engine's dispatcher (vectorized saturation-free
// fast path when the build enables CHAINNN_SIMD) over the VGG-16
// channel-reduced proxy layers, plus the fast-path dispatch rate.
// Appends `"kernel": {...}` to `json`; returns false if the dispatcher
// is not bit-identical to the scalar reference on any layer.
bool run_kernel_phase(const CliFlags& flags, std::ostringstream& json) {
  const std::int64_t scale =
      std::max<std::int64_t>(1, flags.get_int("kernel-scale"));
  const nn::NetworkModel net =
      serve::channel_reduced_proxy(nn::vgg16(), scale);
  Rng rng(11);
  double scalar_seconds = 0.0;
  double dispatch_seconds = 0.0;
  std::int64_t macs = 0;
  std::int64_t fast_dispatches = 0;
  std::int64_t data_scans = 0;
  bool identical = true;
  for (const nn::ConvLayerParams& p : net.conv_layers) {
    Tensor<std::int16_t> x(Shape{1, p.in_channels, p.in_height, p.in_width});
    Tensor<std::int16_t> w(
        Shape{p.out_channels, p.in_channels / p.groups, p.kernel, p.kernel});
    x.fill_random(rng, -64, 64);
    w.fill_random(rng, -16, 16);

    const auto t0 = std::chrono::steady_clock::now();
    const Tensor<std::int64_t> ref = nn::conv2d_fixed_accum(p, x, w);
    const auto t1 = std::chrono::steady_clock::now();
    nn::ConvDispatch d;
    const Tensor<std::int64_t> got =
        nn::conv2d_fixed_accum_dispatch(p, x, w, &d);
    const auto t2 = std::chrono::steady_clock::now();

    scalar_seconds += std::chrono::duration<double>(t1 - t0).count();
    dispatch_seconds += std::chrono::duration<double>(t2 - t1).count();
    macs += p.macs_per_image();
    if (d.fast) ++fast_dispatches;
    if (d.data_scanned) ++data_scans;
    identical = identical && ref == got;
  }
  const auto gmacs = [macs](double seconds) {
    return seconds == 0.0 ? 0.0 : static_cast<double>(macs) / seconds / 1e9;
  };
  const double scalar_gmacs = gmacs(scalar_seconds);
  const double dispatch_gmacs = gmacs(dispatch_seconds);
  const std::int64_t layers =
      static_cast<std::int64_t>(net.conv_layers.size());
  json << ", \"kernel\": {\"model\": \"" << net.name
       << "\", \"layers\": " << layers << ", \"macs\": " << macs
       << ", \"simd_enabled\": "
       << (nn::simd_kernel_enabled() ? "true" : "false")
       << ", \"scalar_gmacs\": " << scalar_gmacs
       << ", \"dispatch_gmacs\": " << dispatch_gmacs
       << ", \"speedup\": "
       << (scalar_gmacs == 0.0 ? 0.0 : dispatch_gmacs / scalar_gmacs)
       << ", \"fast_dispatches\": " << fast_dispatches
       << ", \"data_scans\": " << data_scans << ", \"dispatch_rate\": "
       << static_cast<double>(fast_dispatches) / static_cast<double>(layers)
       << ", \"bit_identical\": " << (identical ? "true" : "false") << "}";
  return identical;
}

// Admission-control A/B: the same deadline-laden trace (a few normal
// requests plus `doomed` requests whose microscopic deadlines no chip
// can meet) replayed on two fresh fleets — admission off, then on.
// Without admission every doomed request costs a missed deadline
// (expired at pickup, or completed late); with admission each is
// rejected at submit and costs nothing. Appends `"admission": {...}`
// inside the fleet object and returns false unless admission strictly
// reduced missed deadlines and rejected exactly the doomed requests.
bool run_admission_phase(const nn::NetworkModel& net,
                         std::int64_t threads_per_chip,
                         std::ostringstream& json) {
  constexpr std::int64_t kNormal = 9;
  constexpr std::int64_t kDoomed = 3;
  const auto run_side = [&](bool admission) {
    serve::FleetOptions fo;
    fo.threads_per_chip = threads_per_chip;
    fo.preemption = true;
    serve::Fleet fleet(fo);
    std::vector<std::future<serve::InferenceResult>> futures;
    for (std::int64_t i = 0; i < kNormal + kDoomed; ++i) {
      serve::RequestOptions ro;
      ro.priority = i % 2;
      // Doomed requests get a positive-but-unmeetable deadline: the
      // modelled chain seconds alone exceed 10 us, so admission-off can
      // only expire them at pickup or finish them late — either way a
      // missed deadline — while admission-on rejects them at submit.
      ro.deadline_ms = (i % 4 == 3) ? 1e-2 : 600e3;
      ro.admission = admission;
      futures.push_back(fleet.submit(net, /*batch=*/1 + i % 2, ro));
    }
    for (auto& f : futures) (void)f.get();
    fleet.wait_idle();
    return fleet.stats();
  };

  const serve::FleetStats without = run_side(false);
  const serve::FleetStats with = run_side(true);
  json << ", \"admission\": {\"requests\": " << (kNormal + kDoomed)
       << ", \"doomed\": " << kDoomed
       << ", \"missed_without\": " << without.missed_deadlines()
       << ", \"missed_with\": " << with.missed_deadlines()
       << ", \"rejected\": " << with.rejected
       << ", \"failed\": " << (without.failed + with.failed) << "}";
  return without.failed == 0 && with.failed == 0 &&
         with.rejected == kDoomed && without.rejected == 0 &&
         with.missed_deadlines() < without.missed_deadlines();
}

// Drives a mixed request trace through a 3-chip heterogeneous Fleet and
// appends `"fleet": {...}` to `json`. Returns false if a trace request
// failed, a fidelity sample diverged, the routed fleet does not beat
// the best single chip in modelled throughput, or the admission A/B did
// not reduce missed deadlines.
bool run_fleet_phase(const CliFlags& flags, std::ostringstream& json) {
  const std::int64_t requests =
      std::max<std::int64_t>(3, flags.get_int("fleet-requests"));
  const std::int64_t scale =
      std::max<std::int64_t>(1, flags.get_int("serve-scale"));
  const nn::NetworkModel net_a =
      serve::channel_reduced_proxy(nn::lenet_mnist(), scale);
  const nn::NetworkModel net_b =
      serve::channel_reduced_proxy(nn::cifar10_quick(), scale);

  serve::FleetOptions fo;
  fo.threads_per_chip =
      std::max<std::int64_t>(1, flags.get_int("fleet-threads"));
  fo.fidelity_sample_every_n = flags.get_int("fleet-fidelity-every");
  fo.preemption = true;
  serve::Fleet fleet(fo);
  const std::size_t num_chips = fleet.chips().size();

  // Mixed trace: two models, three batch sizes, a high-priority tier on
  // every fourth request, deadlines on every other one (generous — a
  // loaded CI runner stalled on a multi-second cycle-accurate fidelity
  // replay must not blow them, or the deterministic cancelled==1 gate
  // below turns flaky).
  std::vector<serve::FleetTraceEntry> trace;
  for (std::int64_t i = 0; i < requests; ++i) {
    serve::FleetTraceEntry e;
    e.net = (i % 3 == 2) ? &net_b : &net_a;
    e.batch = std::int64_t{1} << (i % 3);  // 1, 2, 4
    if (i % 4 == 0) e.options.priority = 1;
    if (i % 2 == 1) e.options.deadline_ms = 600e3;
    trace.push_back(e);
  }

  // The routed trace vs every chip replaying it alone (modelled,
  // deterministic — the fleet must win), plus one request whose
  // deadline is already past at submit (it must resolve Cancelled and
  // be counted, not executed; it stays outside the trace comparison).
  const serve::FleetTraceReport report = serve::run_fleet_trace(fleet, trace);
  serve::RequestOptions past_deadline;
  past_deadline.deadline_ms = -1.0;
  const serve::InferenceResult cancelled_probe =
      fleet.submit(net_a, 1, past_deadline).get();

  // Preemption burst, outside the timed trace comparison: slow tier-0
  // batch-8 requests seize every chip, and once they are mid-run a
  // tier-2 chaser lands on each — the workers must checkpoint the
  // running requests at their next layer boundary and serve the urgent
  // tier first. Counts are reported, not gated (whether a burst victim
  // is still mid-run when its chaser arrives is host timing), but
  // resumes must always balance preemptions once the fleet drains.
  {
    std::vector<std::future<serve::InferenceResult>> burst;
    serve::RequestOptions slow;  // tier 0, several layer boundaries
    for (std::size_t c = 0; c < num_chips; ++c)
      burst.push_back(fleet.submit(net_b, /*batch=*/8, slow));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    serve::RequestOptions chaser;
    chaser.priority = 2;
    for (std::size_t c = 0; c < num_chips; ++c)
      burst.push_back(fleet.submit(net_b, /*batch=*/1, chaser));
    for (auto& f : burst) (void)f.get();
  }
  fleet.wait_idle();
  const serve::FleetStats stats = fleet.stats();

  const double fleet_makespan = report.fleet_makespan_seconds();
  const double fleet_modelled_rps =
      fleet_makespan == 0.0
          ? 0.0
          : static_cast<double>(report.completed) / fleet_makespan;
  // Same numerator as fleet_modelled_rps: the single-chip denominator
  // already prices exactly the completed requests, so both rps figures
  // describe the same request set.
  const double best_single_modelled_rps =
      report.best_single_seconds() == 0.0
          ? 0.0
          : static_cast<double>(report.completed) /
                report.best_single_seconds();

  json << ", \"fleet\": {\"requests\": " << trace.size()
       << ", \"completed\": " << report.completed
       << ", \"chips\": [";
  for (std::size_t c = 0; c < num_chips; ++c) {
    if (c > 0) json << ", ";
    json << "{\"name\": \"" << fleet.chips()[c].name
         << "\", \"num_pes\": " << fleet.chips()[c].array.num_pes
         << ", \"routed\": " << stats.chips[c].routed
         << ", \"modelled_busy_seconds\": " << report.busy_seconds[c]
         << ", \"single_chip_trace_seconds\": "
         << report.single_chip_seconds[c] << "}";
  }
  json << "], \"fleet_modelled_rps\": " << fleet_modelled_rps
       << ", \"best_single_chip\": \""
       << fleet.chips()[report.best_single_chip()].name << "\""
       << ", \"best_single_modelled_rps\": " << best_single_modelled_rps
       << ", \"modelled_speedup\": " << report.modelled_speedup()
       << ", \"wall_rps\": "
       << (report.wall_seconds == 0.0
               ? 0.0
               : static_cast<double>(report.completed) / report.wall_seconds)
       << ", \"deadline_misses\": " << stats.deadline_misses
       << ", \"deadline_expired\": " << stats.deadline_expired
       << ", \"cancelled\": " << stats.cancelled
       << ", \"preemptions\": " << stats.preemptions
       << ", \"resumes\": " << stats.resumes
       << ", \"fidelity_samples\": " << stats.fidelity_samples
       << ", \"fidelity_divergences\": " << stats.fidelity_divergences
       << ", \"failed\": " << stats.failed;
  const bool admission_ok =
      run_admission_phase(net_a, fo.threads_per_chip, json);
  json << "}";

  return stats.failed == 0 && stats.fidelity_divergences == 0 &&
         stats.cancelled == 1 &&
         cancelled_probe.status == serve::RequestStatus::kCancelled &&
         report.modelled_speedup() > 1.0 && stats.resumes == stats.preemptions &&
         admission_ok;
}

// Durability A/B plus a crash drill. The same analytical trace runs
// through two fresh fleets — journal off, then journal on with batched
// fsync (the serving configuration) — and then the journal that was
// just written is cut right after its last SUBMIT record, simulating a
// crash with requests still in flight, and recovered into a third
// fleet. Appends `"durability": {...}` to `json`. Returns false when a
// request failed on either side, the recovery did not replay exactly
// the in-flight set the cut journal describes, or a replayed request
// did not complete cleanly. The journaling throughput overhead
// (journal_on_rps / journal_off_rps, same-run so runner speed cancels)
// is gated by compare_bench.py, not here.
bool run_durability_phase(const CliFlags& flags, std::ostringstream& json) {
  const std::int64_t requests =
      std::max<std::int64_t>(6, flags.get_int("durability-requests"));
  const std::int64_t scale =
      std::max<std::int64_t>(1, flags.get_int("serve-scale"));
  const nn::NetworkModel net =
      serve::channel_reduced_proxy(nn::lenet_mnist(), scale);
  const std::string journal_path =
      (std::filesystem::temp_directory_path() /
       ("chainnn_bench_durability_" + std::to_string(::getpid()) + ".jrnl"))
          .string();

  struct Side {
    double rps = 0.0;
    serve::FleetStats stats;
  };
  const auto run_side = [&](std::shared_ptr<serve::Journal> journal) {
    serve::FleetOptions fo;
    fo.threads_per_chip = 1;
    fo.preemption = true;
    fo.journal = std::move(journal);
    serve::Fleet fleet(fo);
    std::vector<std::future<serve::InferenceResult>> futures;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < requests; ++i) {
      serve::RequestOptions ro;
      if (i % 3 == 2) ro.priority = 1;
      futures.push_back(fleet.submit(net, /*batch=*/1 + i % 2, ro));
    }
    for (auto& f : futures) (void)f.get();
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    fleet.wait_idle();
    Side side;
    side.rps = secs == 0.0 ? 0.0 : static_cast<double>(requests) / secs;
    side.stats = fleet.stats();
    return side;
  };

  const auto make_journal = [&journal_path] {
    serve::JournalOptions jo;
    jo.path = journal_path;
    jo.fsync_every_records = 8;
    return std::make_shared<serve::Journal>(jo);
  };

  // Warm-up pass (untimed), then best-of-2 interleaved measurements per
  // side: a short wall-clock window on a shared CI runner is noisy, and
  // the 0.9 overhead gate needs the ratio, not the absolute numbers, to
  // be stable. The journal file on disk after the loop is the one the
  // last journal-on pass wrote (the Journal ctor truncates), so the
  // reported journal counters and the crash drill both use that pass.
  std::int64_t side_failed = run_side(nullptr).stats.failed;
  Side off, on;
  for (int rep = 0; rep < 2; ++rep) {
    const Side off_pass = run_side(nullptr);
    const Side on_pass = run_side(make_journal());
    side_failed += off_pass.stats.failed + on_pass.stats.failed;
    if (off_pass.rps > off.rps) off.rps = off_pass.rps;
    on.stats = on_pass.stats;
    if (on_pass.rps > on.rps) on.rps = on_pass.rps;
  }

  // Crash drill: cut right after the last SUBMIT record — its terminal
  // record can only come later in the log, so the cut always leaves at
  // least that request in flight.
  std::string bytes;
  {
    std::ifstream in(journal_path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  const serve::JournalReadResult log =
      serve::read_records(std::string_view(bytes).substr(12));
  std::size_t cut = 12, pos = 12;
  for (const serve::JournalRecord& rec : log.records) {
    pos += 12 + 1 + rec.payload.size();
    if (rec.type == serve::RecordType::kSubmit) cut = pos;
  }
  const std::string cut_path = journal_path + ".cut";
  {
    std::ofstream out(cut_path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
  }
  const serve::JournalAnalysis expected = serve::analyze_journal_file(cut_path);

  serve::FleetOptions rec_opts;
  rec_opts.threads_per_chip = 1;
  rec_opts.preemption = true;
  serve::Fleet recovered(rec_opts);
  const auto r0 = std::chrono::steady_clock::now();
  serve::RecoveryReport report = recovered.recover(cut_path);
  bool replays_ok = report.replayed > 0 &&
                    report.replayed ==
                        static_cast<std::int64_t>(expected.in_flight.size());
  for (auto& [tag, future] : report.futures) {
    (void)tag;
    if (future.get().status != serve::RequestStatus::kOk) replays_ok = false;
  }
  const double recovery_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - r0)
                                 .count();
  recovered.wait_idle();
  const serve::FleetStats rec_stats = recovered.stats();

  std::error_code ec;
  std::filesystem::remove(journal_path, ec);
  std::filesystem::remove(cut_path, ec);

  const std::int64_t failed = side_failed + rec_stats.failed;
  json << ", \"durability\": {\"requests\": " << requests
       << ", \"journal_off_rps\": " << off.rps
       << ", \"journal_on_rps\": " << on.rps
       << ", \"overhead_ratio\": "
       << (off.rps == 0.0 ? 0.0 : on.rps / off.rps)
       << ", \"journal_records\": " << on.stats.journal.records_appended
       << ", \"journal_bytes\": " << on.stats.journal.bytes_appended
       << ", \"journal_fsyncs\": " << on.stats.journal.fsyncs
       << ", \"recovery_expected_in_flight\": " << expected.in_flight.size()
       << ", \"recovery_replayed\": " << report.replayed
       << ", \"recovery_resumed_from_checkpoint\": "
       << report.resumed_from_checkpoint
       << ", \"recovery_wall_ms\": " << recovery_ms
       << ", \"failed\": " << failed << "}";
  return failed == 0 && replays_ok;
}

// Design-space-search phase: runs serve::DesignSearch over the paper
// grid on the full (unscaled) model and reports exploration throughput
// plus the frontier/pruning shape. Appends `"dse": {...}` to `json`.
// Returns false when the frontier is empty, the paper's 576@700
// instantiation fell off it, or dominance pruning eliminated nothing —
// any of which means the search or the closed-form evaluator regressed.
bool run_dse_phase(const CliFlags& flags, std::ostringstream& json) {
  const nn::NetworkModel net =
      nn::model_by_name(flags.get_string("dse-model"));
  serve::DesignSearchOptions opts;
  opts.max_points = std::max<std::int64_t>(1, flags.get_int("dse-max-points"));
  serve::DesignSearch search(net, serve::DesignSpaceGrid::paper_default(),
                             opts);
  const serve::DesignSearchStats s = search.run().stats;
  json << ", \"dse\": {\"model\": \"" << net.name << "\""
       << ", \"evaluated\": " << s.evaluated
       << ", \"points_per_sec\": " << s.points_per_sec
       << ", \"infeasible\": " << s.infeasible
       << ", \"pruned\": " << s.pruned
       << ", \"pruned_fraction\": " << s.pruned_fraction()
       << ", \"frontier\": " << s.frontier << ", \"waves\": " << s.waves
       << ", \"contains_paper_point\": "
       << (s.contains_paper_point ? "true" : "false") << "}";
  return s.frontier > 0 && s.contains_paper_point && s.pruned > 0;
}

int run_serve_bench(int argc, const char* const* argv) {
  CliFlags flags;
  const std::map<std::string, std::string> defaults = {
      {"serve", "true"},         {"requests", "8"},
      {"serve-threads", "2"},    {"serve-model", "lenet"},
      {"serve-scale", "2"},      {"serve-batch", "2"},
      {"fidelity-every", "4"},   {"json", "BENCH_serve.json"},
      {"fleet", "false"},        {"fleet-requests", "24"},
      {"fleet-threads", "1"},    {"fleet-fidelity-every", "6"},
      {"kernel-scale", "8"},     {"durability-requests", "12"},
      {"dse-model", "alexnet"},  {"dse-max-points", "12000"}};
  std::string error;
  if (!flags.parse(argc, argv, defaults, &error)) {
    std::cerr << "bench_micro serve mode: " << error << "\n"
              << CliFlags::usage(defaults);
    return 1;
  }
  const std::int64_t requests = std::max<std::int64_t>(1,
                                                       flags.get_int("requests"));
  const std::int64_t batch = std::max<std::int64_t>(1,
                                                    flags.get_int("serve-batch"));
  const std::int64_t fidelity_every = flags.get_int("fidelity-every");
  const nn::NetworkModel net = serve::channel_reduced_proxy(
      nn::model_by_name(flags.get_string("serve-model")),
      std::max<std::int64_t>(1, flags.get_int("serve-scale")));

  // Timing server: fidelity sampling OFF so no cycle-accurate replay
  // lands inside the analytical timing window (and vice versa).
  auto cache = std::make_shared<serve::PlanCache>();
  serve::ServerOptions so;
  so.num_threads = std::max<std::int64_t>(1, flags.get_int("serve-threads"));
  so.fidelity_sample_every_n = 0;
  so.plan_cache = cache;
  serve::InferenceServer server(so);

  // Warm-up: one untimed request per engine, so both timed windows run
  // against a warm plan cache and steady worker threads.
  {
    serve::RequestOptions warm;
    warm.exec_mode = chain::ExecMode::kAnalytical;
    (void)server.submit(net, batch, warm).get();
    warm.exec_mode = chain::ExecMode::kCycleAccurate;
    (void)server.submit(net, batch, warm).get();
  }

  // Cache counters are reported as the delta over the timed windows
  // only, so the metric tracks serving-path caching and not warm-up or
  // fidelity-replay lookups.
  const serve::PlanCacheStats cache_before = cache->stats();
  const double analytical_rps = time_requests(
      server, net, batch, requests, chain::ExecMode::kAnalytical);
  const double cycle_rps = time_requests(
      server, net, batch, requests, chain::ExecMode::kCycleAccurate);
  const serve::PlanCacheStats cache_after = cache->stats();
  const serve::PlanCacheStats timed{cache_after.hits - cache_before.hits,
                                    cache_after.misses - cache_before.misses,
                                    cache_after.entries};

  // Fidelity pass, untimed: its own server (sampling every request,
  // 1-in-N of the nominal traffic) on the same shared cache.
  std::int64_t fidelity_samples = 0;
  std::int64_t fidelity_divergences = 0;
  if (fidelity_every > 0) {
    serve::ServerOptions fso = so;
    fso.fidelity_sample_every_n = 1;
    serve::InferenceServer fidelity_server(fso);
    const std::int64_t samples =
        std::max<std::int64_t>(1, requests / fidelity_every);
    std::vector<std::future<serve::InferenceResult>> futures;
    for (std::int64_t i = 0; i < samples; ++i)
      futures.push_back(fidelity_server.submit(net, batch, {}));
    for (auto& f : futures) f.get();
    const serve::ServerStats fs = fidelity_server.stats();
    fidelity_samples = fs.fidelity_samples;
    fidelity_divergences = fs.fidelity_divergences;
  }

  const serve::ServerStats stats = server.stats();
  std::ostringstream json;
  json << "{\"model\": \"" << net.name << "\", \"requests_per_mode\": "
       << requests << ", \"batch\": " << batch
       << ", \"serve_threads\": " << so.num_threads
       << ", \"analytical_rps\": " << analytical_rps
       << ", \"cycle_accurate_rps\": " << cycle_rps
       << ", \"speedup\": "
       << (cycle_rps == 0.0 ? 0.0 : analytical_rps / cycle_rps)
       << ", \"cache_hits\": " << timed.hits
       << ", \"cache_misses\": " << timed.misses
       << ", \"cache_hit_rate\": " << timed.hit_rate()
       << ", \"fidelity_samples\": " << fidelity_samples
       << ", \"fidelity_divergences\": " << fidelity_divergences
       << ", \"timed_requests\": " << 2 * requests
       << ", \"failed\": " << stats.failed;
  bool fleet_ok = true;
  if (flags.get_bool("fleet")) fleet_ok = run_fleet_phase(flags, json);
  const bool kernel_ok = run_kernel_phase(flags, json);
  const bool durability_ok = run_durability_phase(flags, json);
  const bool dse_ok = run_dse_phase(flags, json);
  json << "}";
  std::cout << json.str() << "\n";

  const std::string path = flags.get_string("json");
  if (!path.empty() && path != "-") {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return 1;
    }
    out << json.str() << "\n";
  }
  // The serving bench doubles as a smoke check: every request must
  // complete, every fidelity sample must cross-check clean, the routed
  // fleet must beat the best single chip in modelled throughput, the
  // kernel dispatcher must stay bit-identical to the scalar reference,
  // the crash drill must replay exactly the journalled in-flight set,
  // and the design-space search must keep the paper point Pareto-optimal.
  return stats.failed == 0 && fidelity_divergences == 0 && fleet_ok &&
                 kernel_ok && durability_ok && dse_ok
             ? 0
             : 2;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--serve", 0) == 0 || arg.rfind("--fleet", 0) == 0)
      return run_serve_bench(argc, argv);
    if (arg.rfind("--batch", 0) == 0 || arg.rfind("--workers", 0) == 0)
      return run_batch_bench(argc, argv);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
