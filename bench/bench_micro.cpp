// Microbenchmarks (google-benchmark timing): simulator speed, golden
// convolution speed, pattern generation and planning cost. These size the
// simulation substrate itself rather than reproduce a paper figure.
#include <benchmark/benchmark.h>

#include "chain/accelerator.hpp"
#include "chain/scan_pattern.hpp"
#include "common/rng.hpp"
#include "fixed/quantize.hpp"
#include "nn/golden.hpp"
#include "nn/models.hpp"

namespace {

using namespace chainnn;

nn::ConvLayerParams bench_layer(std::int64_t k) {
  nn::ConvLayerParams p;
  p.name = "bench";
  p.in_channels = 4;
  p.out_channels = 8;
  p.in_height = p.in_width = 32;
  p.kernel = k;
  p.validate();
  return p;
}

void BM_GoldenConv(benchmark::State& state) {
  const auto p = bench_layer(state.range(0));
  Rng rng(1);
  Tensor<std::int16_t> x(Shape{1, p.in_channels, p.in_height, p.in_width});
  Tensor<std::int16_t> w(
      Shape{p.out_channels, p.in_channels, p.kernel, p.kernel});
  x.fill_random(rng, -64, 64);
  w.fill_random(rng, -16, 16);
  for (auto _ : state)
    benchmark::DoNotOptimize(nn::conv2d_fixed_accum(p, x, w));
  state.SetItemsProcessed(state.iterations() * p.macs_per_image());
}
BENCHMARK(BM_GoldenConv)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_ChainSimulator(benchmark::State& state) {
  const auto p = bench_layer(state.range(0));
  Rng rng(2);
  Tensor<std::int16_t> x(Shape{1, p.in_channels, p.in_height, p.in_width});
  Tensor<std::int16_t> w(
      Shape{p.out_channels, p.in_channels, p.kernel, p.kernel});
  x.fill_random(rng, -64, 64);
  w.fill_random(rng, -16, 16);
  chain::AcceleratorConfig cfg;
  cfg.array.num_pes = 576;
  for (auto _ : state) {
    chain::ChainAccelerator acc(cfg);
    const auto res = acc.run_layer(p, x, w);
    benchmark::DoNotOptimize(res.stats.stream_cycles);
    state.counters["sim_cycles"] = static_cast<double>(
        res.stats.stream_cycles + res.stats.drain_cycles);
  }
  state.SetItemsProcessed(state.iterations() * p.macs_per_image());
}
BENCHMARK(BM_ChainSimulator)->Arg(3)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_PatternGeneration(benchmark::State& state) {
  const std::int64_t k = state.range(0);
  for (auto _ : state) {
    chain::StripPattern pat(k, k, 2 * k - 1, 64, k, true);
    benchmark::DoNotOptimize(pat.completions());
  }
}
BENCHMARK(BM_PatternGeneration)->Arg(3)->Arg(11);

void BM_PlanVgg16(benchmark::State& state) {
  const dataflow::ArrayShape array;
  const auto net = nn::vgg16();
  for (auto _ : state)
    for (const auto& layer : net.conv_layers)
      benchmark::DoNotOptimize(
          dataflow::plan_layer(layer, array).cycles_per_image());
}
BENCHMARK(BM_PlanVgg16);

void BM_QuantizeTensor(benchmark::State& state) {
  Rng rng(3);
  Tensor<float> t(Shape{256 * 1024});
  t.fill_random(rng, -2.0, 2.0);
  for (auto _ : state) {
    auto q = fixed::quantize(t.data(), fixed::FixedFormat{8});
    benchmark::DoNotOptimize(q.raw.data());
  }
  state.SetBytesProcessed(state.iterations() * t.num_elements() * 4);
}
BENCHMARK(BM_QuantizeTensor)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
