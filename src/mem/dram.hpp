// Off-chip DRAM model: traffic counting per operand class.
//
// The paper excludes DRAM energy from the chip power figure but reports
// DRAM traffic in Table IV; we count it per operand so the table can be
// reproduced and so an optional DRAM-energy line can be shown.
#pragma once

#include <cstdint>
#include <string>

namespace chainnn::mem {

enum class Operand { kIfmap, kKernel, kOfmap, kPsum };

[[nodiscard]] const char* operand_name(Operand op);

struct DramStats {
  std::uint64_t read_bytes[4] = {};   // indexed by Operand
  std::uint64_t write_bytes[4] = {};

  [[nodiscard]] std::uint64_t total_read_bytes() const;
  [[nodiscard]] std::uint64_t total_write_bytes() const;
  [[nodiscard]] std::uint64_t total_bytes() const {
    return total_read_bytes() + total_write_bytes();
  }
  void merge(const DramStats& o);
};

class DramModel {
 public:
  explicit DramModel(std::string name = "DRAM") : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  void read_bytes(Operand op, std::uint64_t bytes);
  void write_bytes(Operand op, std::uint64_t bytes);

  [[nodiscard]] const DramStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  std::string name_;
  DramStats stats_;
};

}  // namespace chainnn::mem
