#include "mem/sram.hpp"

#include "common/check.hpp"

namespace chainnn::mem {

SramModel::SramModel(std::string name, std::uint64_t size_bytes,
                     std::uint64_t word_bytes)
    : name_(std::move(name)),
      size_bytes_(size_bytes),
      word_bytes_(word_bytes) {
  CHAINNN_CHECK(size_bytes_ > 0);
  CHAINNN_CHECK(word_bytes_ > 0);
}

void SramModel::reserve(std::uint64_t bytes) {
  CHAINNN_CHECK_MSG(reserved_ + bytes <= size_bytes_,
                    name_ << ": reserve " << bytes << "B over capacity ("
                          << reserved_ << "/" << size_bytes_ << " used)");
  reserved_ += bytes;
}

void SramModel::release(std::uint64_t bytes) {
  CHAINNN_CHECK_MSG(bytes <= reserved_,
                    name_ << ": release " << bytes << "B but only "
                          << reserved_ << "B reserved");
  reserved_ -= bytes;
}

void SramModel::read_words(std::uint64_t words) {
  stats_.reads += words;
  stats_.read_bytes += words * word_bytes_;
}

void SramModel::write_words(std::uint64_t words) {
  stats_.writes += words;
  stats_.write_bytes += words * word_bytes_;
}

double SramModel::activity_factor(std::uint64_t cycles) const {
  if (cycles == 0) return 0.0;
  return static_cast<double>(stats_.reads + stats_.writes) /
         static_cast<double>(cycles);
}

}  // namespace chainnn::mem
