#include "mem/hierarchy.hpp"

namespace chainnn::mem {

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig& cfg)
    : cfg_(cfg),
      imemory_("iMemory", cfg.imemory_bytes, cfg.word_bytes),
      omemory_("oMemory", cfg.omemory_bytes, cfg.word_bytes),
      kmemory_("kMemory", cfg.kmemory_bytes, cfg.word_bytes),
      dram_("DRAM") {}

void MemoryHierarchy::reset_stats() {
  imemory_.reset_stats();
  omemory_.reset_stats();
  kmemory_.reset_stats();
  dram_.reset_stats();
}

HierarchySnapshot snapshot(const MemoryHierarchy& h) {
  return HierarchySnapshot{h.imemory().stats(), h.omemory().stats(),
                           h.kmemory().stats(), h.dram().stats()};
}

namespace {

std::uint64_t delta_bytes(const SramStats& now, const SramStats& before) {
  return now.total_bytes() - before.total_bytes();
}

}  // namespace

LayerTraffic traffic_since(const MemoryHierarchy& h,
                           const HierarchySnapshot& before,
                           const std::string& layer_name) {
  LayerTraffic t;
  t.layer_name = layer_name;
  t.imemory_bytes = delta_bytes(h.imemory().stats(), before.imem);
  t.omemory_bytes = delta_bytes(h.omemory().stats(), before.omem);
  t.kmemory_bytes = delta_bytes(h.kmemory().stats(), before.kmem);
  t.dram_bytes = h.dram().stats().total_bytes() - before.dram.total_bytes();
  return t;
}

}  // namespace chainnn::mem
