// The Chain-NN memory hierarchy instance (Fig. 7 of the paper):
// off-chip DRAM + iMemory / oMemory on the side of the chain + kMemory
// distributed into the PEs.
#pragma once

#include <cstdint>
#include <memory>

#include "mem/dram.hpp"
#include "mem/sram.hpp"

namespace chainnn::mem {

struct HierarchyConfig {
  std::uint64_t imemory_bytes = 32 * 1024;   // §V.B: 32KB iMemory
  std::uint64_t omemory_bytes = 25 * 1024;   // §V.B: 25KB oMemory
  std::uint64_t kmemory_bytes = 295 * 1024;  // §V.B: 295KB over 576 PEs
  std::uint64_t word_bytes = 2;              // 16-bit datapath words
};

// Owns the four memory models and gives the dataflow/accelerator layers a
// single object to charge traffic to.
class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const HierarchyConfig& cfg = {});

  [[nodiscard]] SramModel& imemory() { return imemory_; }
  [[nodiscard]] SramModel& omemory() { return omemory_; }
  [[nodiscard]] SramModel& kmemory() { return kmemory_; }
  [[nodiscard]] DramModel& dram() { return dram_; }
  [[nodiscard]] const SramModel& imemory() const { return imemory_; }
  [[nodiscard]] const SramModel& omemory() const { return omemory_; }
  [[nodiscard]] const SramModel& kmemory() const { return kmemory_; }
  [[nodiscard]] const DramModel& dram() const { return dram_; }

  [[nodiscard]] const HierarchyConfig& config() const { return cfg_; }

  // Total on-chip memory (the paper's "352KB on-chip memory").
  [[nodiscard]] std::uint64_t total_onchip_bytes() const {
    return cfg_.imemory_bytes + cfg_.omemory_bytes + cfg_.kmemory_bytes;
  }

  void reset_stats();

 private:
  HierarchyConfig cfg_;
  SramModel imemory_;
  SramModel omemory_;
  SramModel kmemory_;
  DramModel dram_;
};

// Traffic snapshot for one layer — the row format of the paper's
// Table IV ("memory communication breakdown", MByte per layer).
struct LayerTraffic {
  std::string layer_name;
  std::uint64_t dram_bytes = 0;
  std::uint64_t imemory_bytes = 0;
  std::uint64_t kmemory_bytes = 0;
  std::uint64_t omemory_bytes = 0;
};

// Captures the difference between two hierarchy snapshots as one layer's
// traffic (call snapshot() before and after running a layer).
struct HierarchySnapshot {
  SramStats imem, omem, kmem;
  DramStats dram;
};

[[nodiscard]] HierarchySnapshot snapshot(const MemoryHierarchy& h);
[[nodiscard]] LayerTraffic traffic_since(const MemoryHierarchy& h,
                                         const HierarchySnapshot& before,
                                         const std::string& layer_name);

}  // namespace chainnn::mem
