// On-chip SRAM model: capacity bookkeeping and access counting.
//
// The Chain-NN hierarchy (§IV.D / §V.B) uses three on-chip memories:
//   iMemory  32 KB  — ifmap strip buffer feeding the dual channels
//   oMemory  25 KB  — partial-sum / ofmap tile buffer
//   kMemory 295 KB  — per-PE register files holding stationary kernels
//
// This model counts accesses (per word) and enforces capacity when a
// client reserves space; energy is attached later by the energy module so
// the same traffic numbers can be priced under different technologies.
#pragma once

#include <cstdint>
#include <string>

namespace chainnn::mem {

struct SramStats {
  std::uint64_t reads = 0;        // word reads
  std::uint64_t writes = 0;       // word writes
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;

  [[nodiscard]] std::uint64_t total_bytes() const {
    return read_bytes + write_bytes;
  }
  void merge(const SramStats& o) {
    reads += o.reads;
    writes += o.writes;
    read_bytes += o.read_bytes;
    write_bytes += o.write_bytes;
  }
};

class SramModel {
 public:
  // `word_bytes` is the access granularity (2 for 16-bit datapath words).
  SramModel(std::string name, std::uint64_t size_bytes,
            std::uint64_t word_bytes = 2);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t size_bytes() const { return size_bytes_; }
  [[nodiscard]] std::uint64_t word_bytes() const { return word_bytes_; }

  // Reserves `bytes` of capacity for a tile; throws if it does not fit.
  // Reservations model allocation decisions made by the tiler, so a
  // schedule that would overflow the physical SRAM fails loudly.
  void reserve(std::uint64_t bytes);
  void release(std::uint64_t bytes);
  [[nodiscard]] std::uint64_t reserved_bytes() const { return reserved_; }
  [[nodiscard]] std::uint64_t free_bytes() const {
    return size_bytes_ - reserved_;
  }

  void read_words(std::uint64_t words);
  void write_words(std::uint64_t words);

  [[nodiscard]] const SramStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  // Average accesses per cycle over `cycles` (the "activity factor" the
  // paper quotes for kMemory, §V.C).
  [[nodiscard]] double activity_factor(std::uint64_t cycles) const;

 private:
  std::string name_;
  std::uint64_t size_bytes_;
  std::uint64_t word_bytes_;
  std::uint64_t reserved_ = 0;
  SramStats stats_;
};

}  // namespace chainnn::mem
