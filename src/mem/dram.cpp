#include "mem/dram.hpp"

namespace chainnn::mem {

const char* operand_name(Operand op) {
  switch (op) {
    case Operand::kIfmap: return "ifmap";
    case Operand::kKernel: return "kernel";
    case Operand::kOfmap: return "ofmap";
    case Operand::kPsum: return "psum";
  }
  return "?";
}

std::uint64_t DramStats::total_read_bytes() const {
  std::uint64_t t = 0;
  for (std::uint64_t b : read_bytes) t += b;
  return t;
}

std::uint64_t DramStats::total_write_bytes() const {
  std::uint64_t t = 0;
  for (std::uint64_t b : write_bytes) t += b;
  return t;
}

void DramStats::merge(const DramStats& o) {
  for (int i = 0; i < 4; ++i) {
    read_bytes[i] += o.read_bytes[i];
    write_bytes[i] += o.write_bytes[i];
  }
}

void DramModel::read_bytes(Operand op, std::uint64_t bytes) {
  stats_.read_bytes[static_cast<int>(op)] += bytes;
}

void DramModel::write_bytes(Operand op, std::uint64_t bytes) {
  stats_.write_bytes[static_cast<int>(op)] += bytes;
}

}  // namespace chainnn::mem
