// 16-bit fixed-point arithmetic as implemented by the Chain-NN datapath.
//
// §IV.B: "each PE is in charge of a 16-bit fixed-point MAC operation".
// Operands (ifmap pixels, kernel weights, ofmap results) are signed 16-bit
// values in a Qm.n format; the partial-sum chain accumulates products in a
// wide accumulator (48 bits here) so no rounding happens inside a systolic
// primitive — only when a finished ofmap value is written back.
//
// The *format* (number of fraction bits) is a property of a tensor /
// layer, not of each scalar, mirroring hardware where the datapath moves
// raw bits and the interpretation lives in the compiler. Fixed16 is a raw
// 16-bit value; FixedFormat supplies conversions.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "common/check.hpp"

namespace chainnn::fixed {

// Rounding mode applied when narrowing (float->fixed, accumulator->fixed).
enum class Rounding {
  kNearestEven,  // round half to even (default; matches typical DC synthesis)
  kNearestUp,    // round half away from zero
  kTruncate,     // drop fraction bits (cheapest hardware)
};

// Saturation vs wraparound on overflow when narrowing.
enum class Overflow {
  kSaturate,  // clamp to representable range (what the RTL does)
  kWrap,      // two's-complement wraparound (for experiments)
};

// Describes a signed fixed-point format with `frac_bits` fraction bits in
// a 16-bit word: value = raw * 2^-frac_bits.
struct FixedFormat {
  int frac_bits = 8;

  [[nodiscard]] constexpr double scale() const {
    return static_cast<double>(1LL << frac_bits);
  }
  [[nodiscard]] constexpr double resolution() const { return 1.0 / scale(); }
  [[nodiscard]] constexpr double max_value() const {
    return 32767.0 / scale();
  }
  [[nodiscard]] constexpr double min_value() const {
    return -32768.0 / scale();
  }
  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const FixedFormat&,
                                   const FixedFormat&) = default;
};

// A raw 16-bit fixed-point value. Trivially copyable; arithmetic that
// needs a format takes one explicitly.
class Fixed16 {
 public:
  constexpr Fixed16() = default;
  constexpr explicit Fixed16(std::int16_t raw) : raw_(raw) {}

  [[nodiscard]] constexpr std::int16_t raw() const { return raw_; }

  // Interprets the raw bits under `fmt`.
  [[nodiscard]] constexpr double to_double(FixedFormat fmt) const {
    return static_cast<double>(raw_) / fmt.scale();
  }

  // Exact 32-bit product of two 16-bit operands (the multiplier output in
  // the PE MAC). The product has 2*frac_bits fraction bits.
  [[nodiscard]] static constexpr std::int32_t multiply(Fixed16 a, Fixed16 b) {
    return static_cast<std::int32_t>(a.raw_) *
           static_cast<std::int32_t>(b.raw_);
  }

  friend constexpr bool operator==(Fixed16, Fixed16) = default;

 private:
  std::int16_t raw_ = 0;
};

// Statistics gathered while narrowing values (quantization telemetry the
// paper's float-to-fixed simulator produced to pick formats).
//
// `invalids` counts inputs with no fixed-point image (NaN), which
// quantize to 0; `saturations` counts out-of-range inputs (including
// ±Inf) clamped to the format limits. Non-finite inputs are excluded
// from the error accumulators so max_abs_error / mean_sq_error stay
// finite and meaningful.
struct NarrowingStats {
  std::uint64_t count = 0;
  std::uint64_t saturations = 0;
  std::uint64_t invalids = 0;  // NaN inputs mapped to 0
  double max_abs_error = 0.0;
  double sum_sq_error = 0.0;

  [[nodiscard]] double mean_sq_error() const {
    return count == 0 ? 0.0 : sum_sq_error / static_cast<double>(count);
  }
  void merge(const NarrowingStats& other);
};

// Converts `value` to raw fixed-point under `fmt` with the given rounding
// and overflow behaviour; updates `stats` if non-null.
//
// Non-finite inputs are well defined: NaN quantizes to 0 (counted in
// stats->invalids) and ±Inf saturates to the format limits (counted in
// stats->saturations). kNearestEven rounds half to even regardless of
// the process floating-point environment — a caller that has changed
// the fenv rounding mode (std::fesetround) gets the same raw words.
[[nodiscard]] std::int16_t quantize_scalar(double value, FixedFormat fmt,
                                           Rounding rounding,
                                           Overflow overflow,
                                           NarrowingStats* stats = nullptr);

// The 48-bit partial-sum accumulator of a systolic primitive.
//
// Products (32-bit, 2*frac_bits fraction) are summed exactly; hardware
// sizes the register so K²·C accumulations of 32-bit products cannot
// overflow 48 bits for supported layer shapes. Overflow is detected and
// saturated (and counted) rather than silently wrapped.
class Accumulator48 {
 public:
  static constexpr std::int64_t kMax = (1LL << 47) - 1;
  static constexpr std::int64_t kMin = -(1LL << 47);

  constexpr Accumulator48() = default;
  constexpr explicit Accumulator48(std::int64_t v) : value_(clamp(v)) {}

  [[nodiscard]] constexpr std::int64_t value() const { return value_; }
  [[nodiscard]] constexpr bool saturated() const { return saturated_; }

  // acc += a*b  (one MAC). Returns *this for chaining.
  Accumulator48& mac(Fixed16 a, Fixed16 b) {
    return add(Fixed16::multiply(a, b));
  }

  // acc += addend (e.g. merging a primitive's psum with oMemory contents).
  Accumulator48& add(std::int64_t addend) {
    const std::int64_t next = value_ + addend;  // |value_| ≤ 2^47, no UB
    if (next > kMax || next < kMin) {
      saturated_ = true;
      value_ = next > kMax ? kMax : kMin;
    } else {
      value_ = next;
    }
    return *this;
  }

  Accumulator48& add(const Accumulator48& other) {
    add(other.value_);
    saturated_ = saturated_ || other.saturated_;
    return *this;
  }

  // Narrows the accumulator (2*frac_bits fraction) back to a 16-bit value
  // with `fmt.frac_bits` fraction bits — the write-back requantization.
  [[nodiscard]] std::int16_t narrow(FixedFormat operand_fmt,
                                    FixedFormat out_fmt, Rounding rounding,
                                    Overflow overflow,
                                    NarrowingStats* stats = nullptr) const;

  friend constexpr bool operator==(const Accumulator48&,
                                   const Accumulator48&) = default;

 private:
  static constexpr std::int64_t clamp(std::int64_t v) {
    return v > kMax ? kMax : (v < kMin ? kMin : v);
  }

  std::int64_t value_ = 0;
  bool saturated_ = false;
};

// Shifts `v` right by `shift` bits with the selected rounding. `shift` may
// be negative (left shift, exact).
[[nodiscard]] std::int64_t shift_right_rounded(std::int64_t v, int shift,
                                               Rounding rounding);

// Narrows a wide accumulator value carrying `acc_frac_bits` fraction bits
// into a 16-bit word with `out_fmt.frac_bits` fraction bits. This is the
// general write-back requantization (ifmap and kernel formats may differ,
// so the accumulator fraction count is their sum).
[[nodiscard]] std::int16_t narrow_to_fixed16(std::int64_t acc,
                                             int acc_frac_bits,
                                             FixedFormat out_fmt,
                                             Rounding rounding,
                                             Overflow overflow,
                                             NarrowingStats* stats = nullptr);

}  // namespace chainnn::fixed
