// Float→fixed conversion policy — the C++ equivalent of the paper's
// "float-point-to-fix-point simulator ... integrated with MatConvnet"
// (§V.A). Given a tensor of floats it picks a Q-format from the dynamic
// range, converts, and reports the quantization error statistics used to
// validate that 16 bits suffice.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fixed/fixed16.hpp"

namespace chainnn::fixed {

// How the fraction-bit count is chosen.
enum class FormatPolicy {
  kMaxAbs,     // largest frac_bits such that max|x| still fits (default)
  kFixedQ8_8,  // always Q8.8 (frac_bits=8) — simple hardware-wide format
};

struct QuantizedTensor {
  std::vector<std::int16_t> raw;
  FixedFormat format;
  NarrowingStats stats;
};

// Telemetry from the dynamic-range scan behind format selection.
struct FormatScanStats {
  std::uint64_t nan_count = 0;  // NaN inputs (carry no magnitude, skipped)
  std::uint64_t inf_count = 0;  // ±Inf inputs (force the widest range)
  double max_abs = 0.0;         // over the non-NaN inputs (±Inf propagates)
};

// Chooses a format for `values` under `policy`. With kMaxAbs, an all-zero
// input gets the maximum precision format (frac_bits = 15).
//
// The scan is deterministic for non-finite data: NaN contributes no
// magnitude (it is counted in `scan`, not fed through std::max, whose
// result for NaN operands depends on argument order), and ±Inf exceeds
// every representable range, forcing Q15.0. Pass `scan` to observe how
// many such values were seen.
[[nodiscard]] FixedFormat choose_format(std::span<const float> values,
                                        FormatPolicy policy,
                                        FormatScanStats* scan = nullptr);

// Quantizes `values` into 16-bit raw words under `fmt`.
[[nodiscard]] QuantizedTensor quantize(std::span<const float> values,
                                       FixedFormat fmt,
                                       Rounding rounding = Rounding::kNearestEven);

// Convenience: choose_format + quantize.
[[nodiscard]] QuantizedTensor quantize_auto(
    std::span<const float> values, FormatPolicy policy = FormatPolicy::kMaxAbs,
    Rounding rounding = Rounding::kNearestEven);

// Reconstructs doubles from raw words (for error measurement / display).
[[nodiscard]] std::vector<double> dequantize(std::span<const std::int16_t> raw,
                                             FixedFormat fmt);

// Signal-to-quantization-noise ratio in dB between `reference` and the
// dequantized `raw`; +inf if the error is exactly zero.
[[nodiscard]] double sqnr_db(std::span<const float> reference,
                             std::span<const std::int16_t> raw,
                             FixedFormat fmt);

}  // namespace chainnn::fixed
