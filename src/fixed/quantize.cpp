#include "fixed/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace chainnn::fixed {

FixedFormat choose_format(std::span<const float> values,
                          FormatPolicy policy, FormatScanStats* scan) {
  double max_abs = 0.0;
  for (float v : values) {
    if (std::isnan(v)) {
      // NaN carries no magnitude; feeding it through std::max would make
      // the result depend on argument order (NaN comparisons are false).
      if (scan) ++scan->nan_count;
      continue;
    }
    if (scan && std::isinf(v)) ++scan->inf_count;
    const double a = std::fabs(double{v});
    if (a > max_abs) max_abs = a;
  }
  if (scan) scan->max_abs = max_abs;

  if (policy == FormatPolicy::kFixedQ8_8) return FixedFormat{8};
  if (max_abs == 0.0) return FixedFormat{15};

  // Find the largest frac_bits in [0, 15] whose max representable value
  // covers max_abs.
  for (int frac = 15; frac >= 0; --frac) {
    const FixedFormat fmt{frac};
    if (max_abs <= fmt.max_value()) return fmt;
  }
  return FixedFormat{0};  // values exceed Q15.0 range; saturation will apply
}

QuantizedTensor quantize(std::span<const float> values, FixedFormat fmt,
                         Rounding rounding) {
  QuantizedTensor out;
  out.format = fmt;
  out.raw.reserve(values.size());
  for (float v : values)
    out.raw.push_back(quantize_scalar(double{v}, fmt, rounding,
                                      Overflow::kSaturate, &out.stats));
  return out;
}

QuantizedTensor quantize_auto(std::span<const float> values,
                              FormatPolicy policy, Rounding rounding) {
  return quantize(values, choose_format(values, policy), rounding);
}

std::vector<double> dequantize(std::span<const std::int16_t> raw,
                               FixedFormat fmt) {
  std::vector<double> out;
  out.reserve(raw.size());
  for (std::int16_t r : raw)
    out.push_back(static_cast<double>(r) / fmt.scale());
  return out;
}

double sqnr_db(std::span<const float> reference,
               std::span<const std::int16_t> raw, FixedFormat fmt) {
  CHAINNN_CHECK(reference.size() == raw.size());
  double signal = 0.0;
  double noise = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double ref = double{reference[i]};
    const double got = static_cast<double>(raw[i]) / fmt.scale();
    signal += ref * ref;
    const double e = ref - got;
    noise += e * e;
  }
  if (noise == 0.0) return std::numeric_limits<double>::infinity();
  if (signal == 0.0) return -std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(signal / noise);
}

}  // namespace chainnn::fixed
