#include "fixed/fixed16.hpp"

#include <cmath>

namespace chainnn::fixed {

std::string FixedFormat::to_string() const {
  return "Q" + std::to_string(15 - frac_bits) + "." +
         std::to_string(frac_bits);
}

void NarrowingStats::merge(const NarrowingStats& other) {
  count += other.count;
  saturations += other.saturations;
  invalids += other.invalids;
  if (other.max_abs_error > max_abs_error)
    max_abs_error = other.max_abs_error;
  sum_sq_error += other.sum_sq_error;
}

namespace {

// Saturates a wide integer into int16 range, recording the event.
std::int16_t saturate16(std::int64_t v, Overflow overflow,
                        NarrowingStats* stats) {
  if (v > 32767 || v < -32768) {
    if (stats) ++stats->saturations;
    if (overflow == Overflow::kSaturate)
      return v > 0 ? std::int16_t{32767} : std::int16_t{-32768};
    // Wraparound: keep the low 16 bits, interpreted as two's complement.
    return static_cast<std::int16_t>(static_cast<std::uint16_t>(
        static_cast<std::uint64_t>(v) & 0xffffULL));
  }
  return static_cast<std::int16_t>(v);
}

// Round half to even without consulting the floating-point environment.
// std::nearbyint honours the fenv rounding mode, so a caller running
// under e.g. FE_DOWNWARD would silently change every quantized word.
// For |x| < 2^52, floor(x) and x - floor(x) are exact in double, so the
// tie test is exact; for |x| >= 2^52 every double is an integer already.
double round_half_to_even(double x) {
  const double f = std::floor(x);
  const double frac = x - f;
  if (frac > 0.5) return f + 1.0;
  if (frac < 0.5) return f;
  return std::fmod(f, 2.0) == 0.0 ? f : f + 1.0;
}

}  // namespace

std::int16_t quantize_scalar(double value, FixedFormat fmt,
                             Rounding rounding, Overflow overflow,
                             NarrowingStats* stats) {
  if (std::isnan(value)) {
    // NaN has no fixed-point image. nearbyint(NaN) stays NaN, both clamp
    // comparisons below are false, and casting NaN to int64 is undefined
    // behaviour — define the result as 0 and count the event instead.
    if (stats) {
      ++stats->count;
      ++stats->invalids;
    }
    return 0;
  }
  const double scaled = value * fmt.scale();
  double rounded = 0.0;
  switch (rounding) {
    case Rounding::kNearestEven:
      rounded = round_half_to_even(scaled);
      break;
    case Rounding::kNearestUp:
      rounded = std::round(scaled);
      break;
    case Rounding::kTruncate:
      // Hardware truncation drops fraction bits of the two's-complement
      // value, which is a floor, not round-toward-zero.
      rounded = std::floor(scaled);
      break;
  }
  // Clamp through a 64-bit value before saturation so huge floats — and
  // ±Inf, which survives the rounding above — are safe to cast.
  double clamped = rounded;
  if (clamped > 1e18) clamped = 1e18;
  if (clamped < -1e18) clamped = -1e18;
  const auto wide = static_cast<std::int64_t>(clamped);
  const std::int16_t raw = saturate16(wide, overflow, stats);
  if (stats) {
    ++stats->count;
    if (std::isfinite(value)) {
      const double err = value - static_cast<double>(raw) / fmt.scale();
      const double abs_err = std::fabs(err);
      if (abs_err > stats->max_abs_error) stats->max_abs_error = abs_err;
      stats->sum_sq_error += err * err;
    }
  }
  return raw;
}

std::int64_t shift_right_rounded(std::int64_t v, int shift,
                                 Rounding rounding) {
  if (shift <= 0) {
    // Left shift; guard against overflow by clamping to int64 limits.
    const int left = -shift;
    if (left >= 63) return v >= 0 ? Accumulator48::kMax : Accumulator48::kMin;
    return v << left;
  }
  if (shift >= 63) return v < 0 ? -1 : 0;

  const std::int64_t floor_shifted = v >> shift;  // arithmetic shift
  const std::int64_t remainder = v - (floor_shifted << shift);
  const std::int64_t half = std::int64_t{1} << (shift - 1);

  switch (rounding) {
    case Rounding::kTruncate:
      // Dropping bits of a two's-complement value is an arithmetic shift,
      // i.e. floor.
      return floor_shifted;
    case Rounding::kNearestUp:
      if (v >= 0) return floor_shifted + (remainder >= half ? 1 : 0);
      // Negative: round half away from zero.
      return floor_shifted + (remainder > half ? 1 : 0);
    case Rounding::kNearestEven: {
      if (remainder > half) return floor_shifted + 1;
      if (remainder < half) return floor_shifted;
      // Exactly halfway: round to even.
      return (floor_shifted % 2 == 0) ? floor_shifted : floor_shifted + 1;
    }
  }
  return floor_shifted;
}

std::int16_t narrow_to_fixed16(std::int64_t acc, int acc_frac_bits,
                               FixedFormat out_fmt, Rounding rounding,
                               Overflow overflow, NarrowingStats* stats) {
  const int shift = acc_frac_bits - out_fmt.frac_bits;
  const std::int64_t shifted = shift_right_rounded(acc, shift, rounding);
  const std::int16_t raw = saturate16(shifted, overflow, stats);
  if (stats) {
    ++stats->count;
    const double exact = static_cast<double>(acc) /
                         std::pow(2.0, static_cast<double>(acc_frac_bits));
    const double err = exact - static_cast<double>(raw) / out_fmt.scale();
    const double abs_err = std::fabs(err);
    if (abs_err > stats->max_abs_error) stats->max_abs_error = abs_err;
    stats->sum_sq_error += err * err;
  }
  return raw;
}

std::int16_t Accumulator48::narrow(FixedFormat operand_fmt,
                                   FixedFormat out_fmt, Rounding rounding,
                                   Overflow overflow,
                                   NarrowingStats* stats) const {
  // Accumulator carries 2*operand frac bits; move to out_fmt.frac_bits.
  return narrow_to_fixed16(value_, 2 * operand_fmt.frac_bits, out_fmt,
                           rounding, overflow, stats);
}

}  // namespace chainnn::fixed
