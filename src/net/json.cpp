#include "net/json.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace chainnn::net {

const Json* Json::find(std::string_view key) const {
  const auto* obj = std::get_if<JsonObject>(&value_);
  if (!obj) return nullptr;
  for (const auto& [k, v] : *obj)
    if (k == key) return &v;
  return nullptr;
}

void Json::set(std::string key, Json value) {
  auto& obj = std::get<JsonObject>(value_);
  for (auto& [k, v] : obj) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj.emplace_back(std::move(key), std::move(value));
}

namespace {

// Recursive-descent parser over a string_view with an explicit cursor.
// Depth is capped so a hostile deeply-nested body cannot overflow the
// stack of a gateway worker.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> parse(std::string* error) {
    std::optional<Json> value = parse_value(0);
    if (!value) {
      if (error) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error)
        *error = "trailing characters at offset " + std::to_string(pos_);
      return std::nullopt;
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  std::optional<Json> fail(const std::string& why) {
    error_ = why + " at offset " + std::to_string(pos_);
    return std::nullopt;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<Json> parse_value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"': {
        std::string s;
        if (!parse_string(&s)) return std::nullopt;
        return Json(std::move(s));
      }
      case 't':
        if (literal("true")) return Json(true);
        return fail("invalid literal");
      case 'f':
        if (literal("false")) return Json(false);
        return fail("invalid literal");
      case 'n':
        if (literal("null")) return Json(nullptr);
        return fail("invalid literal");
      default:
        return parse_number();
    }
  }

  std::optional<Json> parse_object(int depth) {
    ++pos_;  // '{'
    JsonObject obj;
    skip_ws();
    if (consume('}')) return Json(std::move(obj));
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      if (!parse_string(&key)) return std::nullopt;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      std::optional<Json> value = parse_value(depth + 1);
      if (!value) return std::nullopt;
      obj.emplace_back(std::move(key), std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return Json(std::move(obj));
      return fail("expected ',' or '}'");
    }
  }

  std::optional<Json> parse_array(int depth) {
    ++pos_;  // '['
    JsonArray arr;
    skip_ws();
    if (consume(']')) return Json(std::move(arr));
    for (;;) {
      std::optional<Json> value = parse_value(depth + 1);
      if (!value) return std::nullopt;
      arr.push_back(std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return Json(std::move(arr));
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return false;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              fail("invalid \\u escape");
              return false;
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences — the gateway never needs
          // astral-plane fidelity, only lossless-enough round-trips).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("invalid escape");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9'))
      return fail("invalid number");
    // Leading zero must not be followed by more digits (strict JSON).
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9')
      return fail("leading zero in number");
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
      ++pos_;
    bool integral = true;
    if (consume('.')) {
      integral = false;
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9'))
        return fail("digits required after '.'");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9'))
        return fail("digits required in exponent");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    const std::string_view lexeme = text_.substr(start, pos_ - start);
    if (integral) {
      std::int64_t i = 0;
      const auto [ptr, ec] =
          std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(), i);
      if (ec == std::errc() && ptr == lexeme.data() + lexeme.size())
        return Json(i);
      // Out-of-range integer lexeme: keep it as a double.
    }
    double d = 0.0;
    const auto [ptr, ec] =
        std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(), d);
    if (ec != std::errc() || ptr != lexeme.data() + lexeme.size())
      return fail("invalid number");
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  return Parser(text).parse(error);
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";  // JSON has no Inf/NaN
  std::array<char, 64> buf;
  const auto [ptr, ec] =
      std::to_chars(buf.data(), buf.data() + buf.size(), value);
  if (ec != std::errc()) return "0";
  return std::string(buf.data(), ptr);
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += esc;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void Json::dump_to(std::string& out) const {
  if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    out += std::to_string(*i);
  } else if (const auto* d = std::get_if<double>(&value_)) {
    out += json_number(*d);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    out += json_quote(*s);
  } else if (const auto* a = std::get_if<JsonArray>(&value_)) {
    out.push_back('[');
    for (std::size_t i = 0; i < a->size(); ++i) {
      if (i > 0) out += ", ";
      (*a)[i].dump_to(out);
    }
    out.push_back(']');
  } else {
    const auto& obj = std::get<JsonObject>(value_);
    out.push_back('{');
    for (std::size_t i = 0; i < obj.size(); ++i) {
      if (i > 0) out += ", ";
      out += json_quote(obj[i].first);
      out += ": ";
      obj[i].second.dump_to(out);
    }
    out.push_back('}');
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

}  // namespace chainnn::net
