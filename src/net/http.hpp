// Minimal HTTP/1.1 message layer: request parsing, response rendering,
// and response parsing (for the in-tree client and the soak driver).
//
// Scope is deliberately small — exactly what a JSON inference gateway
// needs and nothing more:
//   * fixed-length bodies only (Content-Length); Transfer-Encoding is
//     answered 501, a missing length on POST means "no body";
//   * keep-alive per HTTP/1.1 defaults (1.1: persistent unless
//     "Connection: close"; 1.0: close unless "keep-alive");
//   * hard limits on request-line, header-block and body sizes, each
//     mapping to its own 4xx — a malformed or hostile peer costs one
//     error response and a closed socket, never a crash or an
//     unbounded buffer.
//
// HttpParser is incremental: feed() bytes as they arrive, next() yields
// complete requests (possibly several per feed — pipelining works) or
// kError with the 4xx/5xx status to answer before closing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace chainnn::net {

struct HttpRequest {
  std::string method;   // uppercase-only token, e.g. "GET"
  std::string target;   // request target, e.g. "/v1/submit"
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  // First header value matching `name` (case-insensitive), or nullptr.
  [[nodiscard]] const std::string* header(std::string_view name) const;
  [[nodiscard]] bool keep_alive() const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  // Extra headers beyond Content-Type/Content-Length/Connection.
  std::vector<std::pair<std::string, std::string>> headers;
};

[[nodiscard]] const char* http_status_reason(int status);

// Renders status line + headers + body with an explicit Content-Length
// and a Connection header matching `keep_alive`.
[[nodiscard]] std::string serialize_response(const HttpResponse& response,
                                             bool keep_alive);
[[nodiscard]] std::string serialize_request(const HttpRequest& request);

struct HttpLimits {
  std::size_t max_request_line = 8 * 1024;
  std::size_t max_header_bytes = 32 * 1024;  // request line + all headers
  std::size_t max_body_bytes = 4 * 1024 * 1024;
};

class HttpParser {
 public:
  enum class Status {
    kNeedMore,  // no complete request buffered yet
    kReady,     // *out filled with one complete request
    kError,     // protocol violation; see error_status()/error()
  };

  explicit HttpParser(HttpLimits limits = {}) : limits_(limits) {}

  // Appends raw bytes from the socket.
  void feed(const char* data, std::size_t n) { buffer_.append(data, n); }
  void feed(std::string_view data) { buffer_.append(data); }

  // Extracts the next complete request from the buffer. After kError the
  // parser is poisoned (the connection must be closed — resynchronizing
  // inside a corrupt byte stream is how request-smuggling bugs start).
  [[nodiscard]] Status next(HttpRequest* out);

  // With kError: the HTTP status to answer (400 / 413 / 431 / 501) and
  // a one-line reason.
  [[nodiscard]] int error_status() const { return error_status_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  // True when a partial request sits in the buffer (for distinguishing
  // "peer closed between requests" from "peer closed mid-request").
  [[nodiscard]] bool mid_request() const { return !buffer_.empty(); }

 private:
  Status fail(int status, std::string why);

  HttpLimits limits_;
  std::string buffer_;
  bool poisoned_ = false;
  int error_status_ = 0;
  std::string error_;
};

// Parses one complete "HTTP/1.1 200 OK\r\n...\r\n\r\nbody" response held
// fully in `text` (the client reads until Content-Length is satisfied).
// Returns false on malformed input.
[[nodiscard]] bool parse_response_head(std::string_view head, int* status,
                                       std::vector<std::pair<std::string,
                                                             std::string>>*
                                           headers,
                                       std::string* why);

[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

}  // namespace chainnn::net
