#include "net/gateway.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "net/json.hpp"
#include "serve/sweep_driver.hpp"

namespace chainnn::net {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

HttpResponse json_error(int status, std::string_view message) {
  HttpResponse resp;
  resp.status = status;
  resp.body = "{\"error\": " + json_quote(message) + "}";
  return resp;
}

bool known_model(const std::string& name) {
  return name == "alexnet" || name == "vgg16" || name == "lenet" ||
         name == "mnist" || name == "cifar10" || name == "cifar";
}

std::string digest_hex(std::uint64_t digest) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, digest);
  return std::string(buf);
}

}  // namespace

std::uint64_t run_digest(const chain::NetworkRunResult& run) {
  // FNV-1a 64-bit over the little-endian bytes of the final activations
  // (explicit byte order keeps the digest platform-independent).
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ULL;
  };
  for (const std::int16_t v : run.final_activations.data()) {
    const auto u = static_cast<std::uint16_t>(v);
    mix(static_cast<std::uint8_t>(u & 0xFF));
    mix(static_cast<std::uint8_t>(u >> 8));
  }
  return h;
}

std::int64_t run_cycles(const chain::NetworkRunResult& run) {
  std::int64_t cycles = 0;
  for (const auto& layer : run.layers) cycles += layer.run.stats.total_cycles();
  return cycles;
}

const char* request_status_name(serve::RequestStatus status) {
  switch (status) {
    case serve::RequestStatus::kOk: return "ok";
    case serve::RequestStatus::kCancelled: return "cancelled";
    case serve::RequestStatus::kRejected: return "rejected";
    case serve::RequestStatus::kFailed: return "failed";
  }
  return "unknown";
}

Gateway::Gateway(serve::Fleet& fleet, GatewayOptions options)
    : fleet_(fleet), opts_(std::move(options)) {
  server_ = std::make_unique<HttpServer>(
      opts_.http,
      [this](const HttpRequest& request) { return handle(request); });
}

GatewayStats Gateway::stats() const {
  GatewayStats out;
  {
    MutexLock lock(mu_);
    out.submits_ok = submits_ok_;
    out.submits_cancelled = submits_cancelled_;
    out.submits_rejected = submits_rejected_;
    out.submits_failed = submits_failed_;
    out.bad_requests = bad_requests_;
  }
  out.http = server_->stats();
  return out;
}

serve::LatencyHistogram& Gateway::tier_histogram(std::int32_t priority) {
  MutexLock lock(mu_);
  auto& slot = tiers_[priority];
  if (!slot) slot = std::make_unique<serve::LatencyHistogram>();
  return *slot;
}

HttpResponse Gateway::handle(const HttpRequest& request) {
  if (request.target == "/healthz") {
    if (request.method != "GET" && request.method != "HEAD")
      return json_error(405, "use GET " + request.target);
    HttpResponse resp;
    resp.body = "{\"status\": \"ok\"}";
    return resp;
  }
  if (request.target == "/metrics") {
    if (request.method != "GET" && request.method != "HEAD")
      return json_error(405, "use GET " + request.target);
    HttpResponse resp;
    resp.content_type = "text/plain; version=0.0.4";
    resp.body = metrics_text();
    return resp;
  }
  if (request.target == "/v1/submit") {
    if (request.method != "POST")
      return json_error(405, "use POST " + request.target);
    return handle_submit(request);
  }
  return json_error(404, "no such endpoint: " + request.target);
}

HttpResponse Gateway::handle_submit(const HttpRequest& request) {
  const auto bad = [this](std::string_view why) {
    {
      MutexLock lock(mu_);
      ++bad_requests_;
    }
    return json_error(400, why);
  };

  std::string parse_error;
  const std::optional<Json> body = Json::parse(request.body, &parse_error);
  if (!body) return bad("invalid JSON body: " + parse_error);
  if (!body->is_object()) return bad("request body must be a JSON object");

  // Strict key set: a typo like "deadline" silently running without a
  // deadline is worse than a 400.
  for (const auto& [key, value] : body->as_object()) {
    if (key != "model" && key != "batch" && key != "priority" &&
        key != "deadline_ms" && key != "exec_mode" && key != "array" &&
        key != "admission")
      return bad("unknown key \"" + key + "\"");
  }

  const Json* model_field = body->find("model");
  if (!model_field || !model_field->is_string())
    return bad("\"model\" (string) is required");
  const std::string& model_name = model_field->as_string();
  if (!known_model(model_name))
    return bad("unknown model \"" + model_name +
               "\"; valid: alexnet vgg16 lenet cifar10");

  std::int64_t batch = 1;
  if (const Json* f = body->find("batch")) {
    if (!f->is_integer()) return bad("\"batch\" must be an integer");
    batch = f->as_int();
    if (batch < 1 || batch > opts_.max_batch)
      return bad("\"batch\" must be in [1, " +
                 std::to_string(opts_.max_batch) + "]");
  }

  serve::RequestOptions options;
  if (const Json* f = body->find("priority")) {
    if (!f->is_integer()) return bad("\"priority\" must be an integer");
    const std::int64_t p = f->as_int();
    if (p < INT32_MIN || p > INT32_MAX) return bad("\"priority\" out of range");
    options.priority = static_cast<std::int32_t>(p);
  }
  if (const Json* f = body->find("deadline_ms")) {
    if (!f->is_number()) return bad("\"deadline_ms\" must be a number");
    options.deadline_ms = f->as_double();
  }
  if (const Json* f = body->find("exec_mode")) {
    if (!f->is_string()) return bad("\"exec_mode\" must be a string");
    const std::string& mode = f->as_string();
    if (mode == "analytical")
      options.exec_mode = chain::ExecMode::kAnalytical;
    else if (mode == "cycle_accurate" || mode == "cycle-accurate")
      options.exec_mode = chain::ExecMode::kCycleAccurate;
    else
      return bad("\"exec_mode\" must be \"analytical\" or \"cycle_accurate\"");
  }
  if (const Json* f = body->find("admission")) {
    if (!f->is_bool()) return bad("\"admission\" must be a boolean");
    options.admission = f->as_bool();
  }
  if (const Json* f = body->find("array")) {
    if (!f->is_object()) return bad("\"array\" must be an object");
    dataflow::ArrayShape array;
    for (const auto& [key, value] : f->as_object()) {
      if (key == "num_pes") {
        if (!value.is_integer() || value.as_int() < 1)
          return bad("\"array.num_pes\" must be a positive integer");
        array.num_pes = value.as_int();
      } else if (key == "kmem_words_per_pe") {
        if (!value.is_integer() || value.as_int() < 1)
          return bad("\"array.kmem_words_per_pe\" must be a positive integer");
        array.kmem_words_per_pe = value.as_int();
      } else if (key == "clock_hz") {
        if (!value.is_number() || value.as_double() <= 0)
          return bad("\"array.clock_hz\" must be a positive number");
        array.clock_hz = value.as_double();
      } else if (key == "dual_channel") {
        if (!value.is_bool()) return bad("\"array.dual_channel\" must be a boolean");
        array.dual_channel = value.as_bool();
      } else {
        return bad("unknown key \"array." + key + "\"");
      }
    }
    options.array = array;
  }

  // Resolve (and cache) the served model.
  std::shared_ptr<const nn::NetworkModel> model;
  {
    MutexLock lock(mu_);
    auto& slot = models_[model_name];
    if (!slot) {
      nn::NetworkModel net = nn::model_by_name(model_name);
      if (opts_.model_scale > 1)
        net = serve::channel_reduced_proxy(net, opts_.model_scale);
      slot = std::make_shared<const nn::NetworkModel>(std::move(net));
    }
    model = slot;
  }

  const auto t0 = Clock::now();
  serve::InferenceResult result;
  try {
    result = fleet_.submit(*model, batch, options).get();
  } catch (const std::exception& e) {
    {
      MutexLock lock(mu_);
      ++submits_failed_;
    }
    return json_error(500, std::string("request failed: ") + e.what());
  }
  const double gateway_ms = ms_since(t0);
  tier_histogram(options.priority).record(gateway_ms);
  {
    MutexLock lock(mu_);
    switch (result.status) {
      case serve::RequestStatus::kOk: ++submits_ok_; break;
      case serve::RequestStatus::kCancelled: ++submits_cancelled_; break;
      case serve::RequestStatus::kRejected: ++submits_rejected_; break;
      case serve::RequestStatus::kFailed: ++submits_failed_; break;
    }
  }

  JsonObject out;
  out.emplace_back("id", Json(result.request_id));
  out.emplace_back("status", Json(request_status_name(result.status)));
  out.emplace_back("chip", Json(result.chip));
  out.emplace_back("exec_mode", Json(chain::exec_mode_name(result.exec_mode)));
  out.emplace_back("wall_ms", Json(result.wall_ms));
  out.emplace_back("queue_ms", Json(result.queue_ms));
  out.emplace_back("gateway_ms", Json(gateway_ms));
  out.emplace_back("modelled_seconds", Json(result.modelled_seconds));
  out.emplace_back("preemptions", Json(result.preemptions));
  out.emplace_back("resumed", Json(result.resumed));
  out.emplace_back("deadline_missed", Json(result.deadline_missed));
  out.emplace_back("deadline_expired", Json(result.deadline_expired));
  out.emplace_back("completed_layers", Json(result.completed_layers));
  out.emplace_back("cycles", Json(run_cycles(result.run)));
  out.emplace_back("digest", Json(digest_hex(run_digest(result.run))));

  HttpResponse resp;
  resp.body = Json(std::move(out)).dump();
  return resp;
}

// --- /metrics --------------------------------------------------------------

namespace {

class PromWriter {
 public:
  explicit PromWriter(std::string* out) : out_(*out) {}

  void family(std::string_view name, std::string_view type,
              std::string_view help) {
    out_ += "# HELP ";
    out_ += name;
    out_ += ' ';
    out_ += help;
    out_ += "\n# TYPE ";
    out_ += name;
    out_ += ' ';
    out_ += type;
    out_ += '\n';
  }

  void sample(std::string_view name, std::string_view labels, double value) {
    out_ += name;
    if (!labels.empty()) {
      out_ += '{';
      out_ += labels;
      out_ += '}';
    }
    out_ += ' ';
    out_ += json_number(value);  // shortest round-trip, Prometheus-safe
    out_ += '\n';
  }

  void counter(std::string_view name, std::string_view help, double value) {
    family(name, "counter", help);
    sample(name, "", value);
  }

  void gauge(std::string_view name, std::string_view help, double value) {
    family(name, "gauge", help);
    sample(name, "", value);
  }

 private:
  std::string& out_;
};

}  // namespace

std::string Gateway::metrics_text() const {
  std::string text;
  PromWriter w(&text);

  // -- gateway + HTTP front door ------------------------------------------
  {
    MutexLock lock(mu_);
    w.family("chainnn_gateway_submits_total", "counter",
             "Resolved /v1/submit requests by outcome.");
    w.sample("chainnn_gateway_submits_total", "outcome=\"ok\"",
             static_cast<double>(submits_ok_));
    w.sample("chainnn_gateway_submits_total", "outcome=\"cancelled\"",
             static_cast<double>(submits_cancelled_));
    w.sample("chainnn_gateway_submits_total", "outcome=\"rejected\"",
             static_cast<double>(submits_rejected_));
    w.sample("chainnn_gateway_submits_total", "outcome=\"failed\"",
             static_cast<double>(submits_failed_));
    w.counter("chainnn_gateway_bad_requests_total",
              "Submit bodies refused by validation (HTTP 400).",
              static_cast<double>(bad_requests_));
  }
  const HttpServerStats http = server_->stats();
  w.counter("chainnn_http_connections_accepted_total",
            "TCP connections accepted.",
            static_cast<double>(http.connections_accepted));
  w.counter("chainnn_http_connections_rejected_total",
            "TCP connections refused at the connection cap (HTTP 503).",
            static_cast<double>(http.connections_rejected));
  w.counter("chainnn_http_requests_total",
            "Complete HTTP requests parsed and handled.",
            static_cast<double>(http.requests));
  w.counter("chainnn_http_parse_errors_total",
            "Malformed HTTP requests answered 4xx/5xx by the parser.",
            static_cast<double>(http.parse_errors));
  w.counter("chainnn_http_responses_5xx_total",
            "Handler responses with a 5xx status.",
            static_cast<double>(http.responses_5xx));

  // -- fleet ---------------------------------------------------------------
  const serve::FleetStats fleet = fleet_.stats();
  w.counter("chainnn_fleet_submitted_total",
            "Requests submitted across all chips.",
            static_cast<double>(fleet.submitted));
  w.counter("chainnn_fleet_completed_total", "Requests resolved kOk.",
            static_cast<double>(fleet.completed));
  w.counter("chainnn_fleet_failed_total", "Requests that threw.",
            static_cast<double>(fleet.failed));
  w.counter("chainnn_fleet_cancelled_total", "Requests resolved kCancelled.",
            static_cast<double>(fleet.cancelled));
  w.counter("chainnn_fleet_rejected_total",
            "Requests refused by admission control at submit.",
            static_cast<double>(fleet.rejected));
  w.counter("chainnn_fleet_deadline_misses_total",
            "Requests completed after their deadline.",
            static_cast<double>(fleet.deadline_misses));
  w.counter("chainnn_fleet_deadline_expired_total",
            "Requests cancelled because their deadline passed.",
            static_cast<double>(fleet.deadline_expired));
  w.counter("chainnn_fleet_missed_deadlines_total",
            "deadline_misses + deadline_expired (the admission-gate figure).",
            static_cast<double>(fleet.missed_deadlines()));
  w.counter("chainnn_fleet_preemptions_total",
            "Running requests checkpointed for a higher tier.",
            static_cast<double>(fleet.preemptions));
  w.counter("chainnn_fleet_resumes_total",
            "Checkpointed requests picked back up.",
            static_cast<double>(fleet.resumes));
  w.counter("chainnn_fleet_fidelity_samples_total",
            "Requests re-run on the other engine for cross-checking.",
            static_cast<double>(fleet.fidelity_samples));
  w.counter("chainnn_fleet_fidelity_divergences_total",
            "Fidelity cross-checks that found a mismatch.",
            static_cast<double>(fleet.fidelity_divergences));
  w.gauge("chainnn_fleet_modelled_makespan_seconds",
          "Busiest chip's cumulative modelled busy seconds.",
          fleet.modelled_makespan_seconds());

  // -- durability (all zero for a fleet without a journal) -----------------
  w.counter("chainnn_journal_records_appended_total",
            "Records appended to the request journal.",
            static_cast<double>(fleet.journal.records_appended));
  w.counter("chainnn_journal_bytes_appended_total",
            "Framed journal bytes appended (excluding the header).",
            static_cast<double>(fleet.journal.bytes_appended));
  w.counter("chainnn_journal_fsyncs_total",
            "fsync() calls issued by the journal writer.",
            static_cast<double>(fleet.journal.fsyncs));
  w.counter("chainnn_fleet_recovered_requests_total",
            "In-flight requests replayed by Fleet::recover().",
            static_cast<double>(fleet.recovered_requests));
  w.counter("chainnn_fleet_checkpoint_handoffs_total",
            "Recovered checkpoints resumed on a different chip.",
            static_cast<double>(fleet.checkpoint_handoffs));

  // -- plan cache ----------------------------------------------------------
  w.counter("chainnn_plan_cache_hits_total", "Plan cache lookup hits.",
            static_cast<double>(fleet.plan_cache.hits));
  w.counter("chainnn_plan_cache_misses_total", "Plan cache lookup misses.",
            static_cast<double>(fleet.plan_cache.misses));
  w.counter("chainnn_plan_cache_evictions_total", "Plans evicted (LRU).",
            static_cast<double>(fleet.plan_cache.evictions));
  w.gauge("chainnn_plan_cache_entries", "Plans currently cached.",
          static_cast<double>(fleet.plan_cache.entries));
  w.gauge("chainnn_plan_cache_bytes", "Approximate bytes of cached plans.",
          static_cast<double>(fleet.plan_cache.bytes));
  w.gauge("chainnn_plan_cache_hit_rate", "hits / lookups (0 when idle).",
          fleet.plan_cache.hit_rate());

  // -- tensor arena --------------------------------------------------------
  w.gauge("chainnn_arena_bytes_in_use",
          "Tensor-pool bytes held by live tensors, summed over chips.",
          static_cast<double>(fleet.arena.bytes_in_use));
  w.gauge("chainnn_arena_high_water_bytes",
          "Sum of per-chip peak tensor-pool bytes in use.",
          static_cast<double>(fleet.arena.high_water_bytes));
  w.gauge("chainnn_arena_freelist_bytes",
          "Tensor-pool bytes retained for reuse, summed over chips.",
          static_cast<double>(fleet.arena.freelist_bytes));
  w.counter("chainnn_arena_allocations_total",
            "Tensor-pool allocations served.",
            static_cast<double>(fleet.arena.allocations));
  w.counter("chainnn_arena_reuses_total",
            "Tensor-pool allocations served from the freelist.",
            static_cast<double>(fleet.arena.reuses));
  w.gauge("chainnn_arena_reuse_rate", "reuses / allocations (0 when idle).",
          fleet.arena.reuse_rate());

  // -- per chip ------------------------------------------------------------
  w.family("chainnn_chip_routed_total", "counter",
           "Requests the router placed on this chip.");
  for (const auto& chip : fleet.chips)
    w.sample("chainnn_chip_routed_total", "chip=\"" + chip.name + "\"",
             static_cast<double>(chip.routed));
  w.family("chainnn_chip_completed_total", "counter",
           "Requests this chip resolved kOk.");
  for (const auto& chip : fleet.chips)
    w.sample("chainnn_chip_completed_total", "chip=\"" + chip.name + "\"",
             static_cast<double>(chip.server.completed));
  w.family("chainnn_chip_preemptions_total", "counter",
           "Preemptions on this chip.");
  for (const auto& chip : fleet.chips)
    w.sample("chainnn_chip_preemptions_total", "chip=\"" + chip.name + "\"",
             static_cast<double>(chip.server.preemptions));
  w.family("chainnn_chip_backlog_seconds", "gauge",
           "Modelled seconds still queued or running on this chip.");
  for (const auto& chip : fleet.chips)
    w.sample("chainnn_chip_backlog_seconds", "chip=\"" + chip.name + "\"",
             chip.backlog_seconds);
  w.family("chainnn_chip_dispatched_seconds_total", "counter",
           "Cumulative modelled seconds dispatched to this chip.");
  for (const auto& chip : fleet.chips)
    w.sample("chainnn_chip_dispatched_seconds_total",
             "chip=\"" + chip.name + "\"", chip.dispatched_seconds);
  w.family("chainnn_chip_peak_queue_depth", "gauge",
           "Deepest queue this chip has seen.");
  for (const auto& chip : fleet.chips)
    w.sample("chainnn_chip_peak_queue_depth", "chip=\"" + chip.name + "\"",
             static_cast<double>(chip.server.peak_queue_depth));

  // -- per-tier latency histograms ----------------------------------------
  w.family("chainnn_gateway_request_latency_ms", "histogram",
           "End-to-end /v1/submit latency (parse to future resolution).");
  std::vector<std::pair<std::int32_t, serve::LatencyHistogram::Snapshot>>
      tiers;
  {
    MutexLock lock(mu_);
    tiers.reserve(tiers_.size());
    for (const auto& [priority, hist] : tiers_)
      tiers.emplace_back(priority, hist->snapshot());
  }
  for (const auto& [priority, snap] : tiers) {
    const std::string tier = "tier=\"" + std::to_string(priority) + "\"";
    std::uint64_t cumulative = 0;
    for (int i = 0; i < serve::LatencyHistogram::kFiniteBuckets; ++i) {
      const std::uint64_t in_bucket = snap.counts[static_cast<std::size_t>(i)];
      cumulative += in_bucket;
      // Sparse emission: a bucket line only where the cumulative count
      // moves (plus +Inf below) keeps the scrape compact and stays a
      // valid non-decreasing Prometheus histogram.
      if (in_bucket == 0) continue;
      w.sample("chainnn_gateway_request_latency_ms_bucket",
               tier + ",le=\"" +
                   json_number(serve::LatencyHistogram::bucket_upper_ms(i)) +
                   "\"",
               static_cast<double>(cumulative));
    }
    w.sample("chainnn_gateway_request_latency_ms_bucket",
             tier + ",le=\"+Inf\"", static_cast<double>(snap.count));
    w.sample("chainnn_gateway_request_latency_ms_sum", tier, snap.sum_ms);
    w.sample("chainnn_gateway_request_latency_ms_count", tier,
             static_cast<double>(snap.count));
  }
  w.family("chainnn_gateway_latency_quantile_ms", "gauge",
           "Latency quantiles from the log-bucket histogram (upper bounds).");
  for (const auto& [priority, snap] : tiers) {
    const std::string tier = "tier=\"" + std::to_string(priority) + "\"";
    w.sample("chainnn_gateway_latency_quantile_ms",
             tier + ",quantile=\"0.5\"", snap.p50_ms());
    w.sample("chainnn_gateway_latency_quantile_ms",
             tier + ",quantile=\"0.99\"", snap.p99_ms());
    w.sample("chainnn_gateway_latency_quantile_ms",
             tier + ",quantile=\"0.999\"", snap.p999_ms());
  }

  return text;
}

}  // namespace chainnn::net
