#include "net/http_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <system_error>
#include <utility>

namespace chainnn::net {

namespace {

// Thread-safe errno rendering: std::strerror writes a shared static
// buffer (concurrency-mt-unsafe), so format through std::error_code.
std::string errno_message() {
  return std::error_code(errno, std::generic_category()).message();
}

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

HttpClient::HttpClient(std::string host, std::uint16_t port, double timeout_s)
    : host_(std::move(host)), port_(port), timeout_s_(timeout_s) {}

HttpClient::~HttpClient() { close(); }

HttpClient::HttpClient(HttpClient&& other) noexcept
    : host_(std::move(other.host_)),
      port_(other.port_),
      timeout_s_(other.timeout_s_),
      fd_(std::exchange(other.fd_, -1)),
      rx_(std::move(other.rx_)),
      error_(std::move(other.error_)) {}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    close();
    host_ = std::move(other.host_);
    port_ = other.port_;
    timeout_s_ = other.timeout_s_;
    fd_ = std::exchange(other.fd_, -1);
    rx_ = std::move(other.rx_);
    error_ = std::move(other.error_);
  }
  return *this;
}

void HttpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rx_.clear();
}

bool HttpClient::fail(std::string why) {
  error_ = std::move(why);
  close();
  return false;
}

bool HttpClient::ensure_connected() {
  if (fd_ >= 0) return true;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return fail(std::string("socket(): ") + errno_message());

  // Request/response bodies are small; latency matters more than
  // coalescing for the soak's p99 measurements.
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1)
    return fail("invalid address: " + host_);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    return fail("connect(" + host_ + ":" + std::to_string(port_) +
                "): " + errno_message());
  rx_.clear();
  return true;
}

bool HttpClient::request(const HttpRequest& req, HttpResponse* resp) {
  if (!ensure_connected()) return false;
  if (!send_all(fd_, serialize_request(req)))
    return fail(std::string("send(): ") + errno_message());
  return read_response(resp);
}

bool HttpClient::get(const std::string& target, HttpResponse* resp) {
  HttpRequest req;
  req.method = "GET";
  req.target = target;
  req.version = "HTTP/1.1";
  return request(req, resp);
}

bool HttpClient::post_json(const std::string& target, std::string body,
                           HttpResponse* resp) {
  HttpRequest req;
  req.method = "POST";
  req.target = target;
  req.version = "HTTP/1.1";
  req.headers.emplace_back("Content-Type", "application/json");
  req.body = std::move(body);
  return request(req, resp);
}

bool HttpClient::read_response(HttpResponse* resp) {
  const int timeout_ms =
      timeout_s_ <= 0 ? -1 : static_cast<int>(timeout_s_ * 1000.0);
  char buf[16 * 1024];

  const auto read_more = [&]() -> bool {
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) return fail(std::string("poll(): ") + errno_message());
    if (ready == 0)
      return fail("timed out after " + std::to_string(timeout_s_) +
                  "s waiting for response");
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return fail("server closed connection mid-response");
    if (n < 0) {
      if (errno == EINTR) return true;
      return fail(std::string("recv(): ") + errno_message());
    }
    rx_.append(buf, static_cast<std::size_t>(n));
    return true;
  };

  // --- head ------------------------------------------------------------
  std::size_t head_end = std::string::npos;
  std::size_t body_start = 0;
  for (;;) {
    head_end = rx_.find("\r\n\r\n");
    if (head_end != std::string::npos) {
      body_start = head_end + 4;
      break;
    }
    head_end = rx_.find("\n\n");
    if (head_end != std::string::npos) {
      body_start = head_end + 2;
      break;
    }
    if (!read_more()) return false;
  }

  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string why;
  if (!parse_response_head(std::string_view(rx_.data(), head_end), &status,
                           &headers, &why))
    return fail("malformed response: " + why);

  std::size_t content_length = 0;
  bool server_wants_close = false;
  std::string content_type;
  for (const auto& [k, v] : headers) {
    if (iequals(k, "Content-Length")) {
      std::uint64_t parsed = 0;
      const auto [ptr, ec] =
          std::from_chars(v.data(), v.data() + v.size(), parsed);
      if (ec != std::errc() || ptr != v.data() + v.size())
        return fail("malformed Content-Length in response");
      content_length = static_cast<std::size_t>(parsed);
    } else if (iequals(k, "Connection")) {
      server_wants_close = iequals(v, "close");
    } else if (iequals(k, "Content-Type")) {
      content_type = v;
    }
  }

  // --- body ------------------------------------------------------------
  while (rx_.size() - body_start < content_length)
    if (!read_more()) return false;

  resp->status = status;
  resp->content_type = std::move(content_type);
  resp->headers = std::move(headers);
  resp->body = rx_.substr(body_start, content_length);
  rx_.erase(0, body_start + content_length);

  if (server_wants_close) close();
  return true;
}

}  // namespace chainnn::net
