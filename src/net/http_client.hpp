// HttpClient — a blocking HTTP/1.1 client holding ONE persistent
// keep-alive connection. This is the measurement instrument for the
// gateway: the soak driver owns hundreds of these (one per simulated
// session) and the integration tests use it to round-trip requests, so
// it reuses the same message layer (http.hpp) the server is built on —
// a framing bug cannot hide by being symmetric, because the unit tests
// also exercise the parser against hand-written byte strings.
//
// request() lazily (re)connects, writes the serialized request, and
// blocks until the full response (head + Content-Length body) arrives
// or timeout_s passes without progress. On any transport error the
// socket is dropped and the next request() reconnects — the caller
// just sees `false` + error(). Responses carrying "Connection: close"
// also drop the socket, honoring the server's choice.
#pragma once

#include <cstdint>
#include <string>

#include "net/http.hpp"

namespace chainnn::net {

class HttpClient {
 public:
  HttpClient(std::string host, std::uint16_t port, double timeout_s = 30.0);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;

  // Performs one request/response exchange. Returns false on connect,
  // send, read-timeout or malformed-response errors; see error().
  [[nodiscard]] bool request(const HttpRequest& req, HttpResponse* resp);

  [[nodiscard]] bool get(const std::string& target, HttpResponse* resp);
  [[nodiscard]] bool post_json(const std::string& target, std::string body,
                               HttpResponse* resp);

  [[nodiscard]] const std::string& error() const { return error_; }
  // True while the persistent socket is connected.
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  void close();

 private:
  bool ensure_connected();
  bool read_response(HttpResponse* resp);
  bool fail(std::string why);  // drops the socket, records why, -> false

  std::string host_;
  std::uint16_t port_;
  double timeout_s_;
  int fd_ = -1;
  std::string rx_;  // bytes read past the previous response (pipelining)
  std::string error_;
};

}  // namespace chainnn::net
