#include "net/http.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace chainnn::net {

namespace {

char lower(char c) {
  return static_cast<char>(
      std::tolower(static_cast<unsigned char>(c)));
}

// Trims optional whitespace (SP / HTAB) around a header value.
std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

bool is_token_char(char c) {
  // RFC 9110 token characters; enough to reject separators and controls.
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'':
    case '*': case '+': case '-': case '.': case '^': case '_':
    case '`': case '|': case '~':
      return true;
    default:
      return false;
  }
}

bool valid_token(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), is_token_char);
}

}  // namespace

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (lower(a[i]) != lower(b[i])) return false;
  return true;
}

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [k, v] : headers)
    if (iequals(k, name)) return &v;
  return nullptr;
}

bool HttpRequest::keep_alive() const {
  const std::string* connection = header("Connection");
  if (version == "HTTP/1.0")
    return connection && iequals(*connection, "keep-alive");
  return !(connection && iequals(*connection, "close"));
}

const char* http_status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 413: return "Content Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string serialize_response(const HttpResponse& response,
                               bool keep_alive) {
  std::string out;
  out.reserve(128 + response.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += http_status_reason(response.status);
  out += "\r\n";
  if (!response.content_type.empty()) {
    out += "Content-Type: ";
    out += response.content_type;
    out += "\r\n";
  }
  for (const auto& [k, v] : response.headers) {
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

std::string serialize_request(const HttpRequest& request) {
  std::string out;
  out.reserve(128 + request.body.size());
  out += request.method;
  out += ' ';
  out += request.target;
  out += ' ';
  out += request.version.empty() ? "HTTP/1.1" : request.version;
  out += "\r\n";
  for (const auto& [k, v] : request.headers) {
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
  }
  if (!request.body.empty() || request.method == "POST") {
    out += "Content-Length: ";
    out += std::to_string(request.body.size());
    out += "\r\n";
  }
  out += "\r\n";
  out += request.body;
  return out;
}

HttpParser::Status HttpParser::fail(int status, std::string why) {
  poisoned_ = true;
  error_status_ = status;
  error_ = std::move(why);
  return Status::kError;
}

HttpParser::Status HttpParser::next(HttpRequest* out) {
  if (poisoned_) return Status::kError;

  // Locate the end of the header block. Both CRLFCRLF and bare LFLF are
  // accepted (lenient in line endings, strict in everything else).
  std::size_t head_end = buffer_.find("\r\n\r\n");
  std::size_t body_start = 0;
  if (head_end != std::string::npos) {
    body_start = head_end + 4;
  } else {
    head_end = buffer_.find("\n\n");
    if (head_end == std::string::npos) {
      if (buffer_.size() > limits_.max_header_bytes)
        return fail(431, "header block exceeds " +
                             std::to_string(limits_.max_header_bytes) +
                             " bytes");
      return Status::kNeedMore;
    }
    body_start = head_end + 2;
  }
  if (head_end > limits_.max_header_bytes)
    return fail(431, "header block exceeds " +
                         std::to_string(limits_.max_header_bytes) + " bytes");

  const std::string_view head(buffer_.data(), head_end);

  // --- request line --------------------------------------------------
  std::size_t line_end = head.find('\n');
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  if (!request_line.empty() && request_line.back() == '\r')
    request_line.remove_suffix(1);
  if (request_line.size() > limits_.max_request_line)
    return fail(431, "request line exceeds " +
                         std::to_string(limits_.max_request_line) + " bytes");

  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos
                                    : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos)
    return fail(400, "malformed request line");
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target =
      request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (!valid_token(method) || target.empty() || target.front() != '/')
    return fail(400, "malformed request line");
  if (version != "HTTP/1.1" && version != "HTTP/1.0")
    return fail(400, "unsupported HTTP version");

  // --- headers -------------------------------------------------------
  HttpRequest request;
  request.method = std::string(method);
  request.target = std::string(target);
  request.version = std::string(version);
  std::size_t content_length = 0;
  bool have_content_length = false;
  std::size_t pos = line_end == std::string_view::npos ? head.size()
                                                       : line_end + 1;
  while (pos < head.size()) {
    std::size_t eol = head.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? head.substr(pos)
                                : head.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? head.size() : eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0)
      return fail(400, "malformed header line");
    const std::string_view name = line.substr(0, colon);
    if (!valid_token(name))
      return fail(400, "malformed header name");
    const std::string_view value = trim(line.substr(colon + 1));
    if (iequals(name, "Transfer-Encoding"))
      return fail(501, "Transfer-Encoding is not supported");
    if (iequals(name, "Content-Length")) {
      std::uint64_t parsed = 0;
      const auto [ptr, ec] = std::from_chars(
          value.data(), value.data() + value.size(), parsed);
      if (ec != std::errc() || ptr != value.data() + value.size() ||
          value.empty())
        return fail(400, "invalid Content-Length");
      if (have_content_length && parsed != content_length)
        return fail(400, "conflicting Content-Length headers");
      if (parsed > limits_.max_body_bytes)
        return fail(413, "body exceeds " +
                             std::to_string(limits_.max_body_bytes) +
                             " bytes");
      content_length = static_cast<std::size_t>(parsed);
      have_content_length = true;
    }
    request.headers.emplace_back(std::string(name), std::string(value));
  }

  // --- body ----------------------------------------------------------
  if (buffer_.size() - body_start < content_length)
    return Status::kNeedMore;
  request.body = buffer_.substr(body_start, content_length);
  buffer_.erase(0, body_start + content_length);
  *out = std::move(request);
  return Status::kReady;
}

bool parse_response_head(
    std::string_view head, int* status,
    std::vector<std::pair<std::string, std::string>>* headers,
    std::string* why) {
  const auto fail = [why](const char* msg) {
    if (why) *why = msg;
    return false;
  };
  std::size_t pos = 0;
  std::size_t eol = head.find('\n');
  std::string_view status_line =
      eol == std::string_view::npos ? head : head.substr(0, eol);
  if (!status_line.empty() && status_line.back() == '\r')
    status_line.remove_suffix(1);
  if (status_line.substr(0, 5) != "HTTP/") return fail("not an HTTP response");
  const std::size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos || sp + 4 > status_line.size())
    return fail("malformed status line");
  const std::string_view code = status_line.substr(sp + 1, 3);
  int parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(code.data(), code.data() + code.size(), parsed);
  if (ec != std::errc() || ptr != code.data() + code.size())
    return fail("malformed status code");
  *status = parsed;
  pos = eol == std::string_view::npos ? head.size() : eol + 1;
  while (pos < head.size()) {
    eol = head.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? head.substr(pos)
                                : head.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? head.size() : eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0)
      return fail("malformed response header");
    headers->emplace_back(std::string(line.substr(0, colon)),
                          std::string(trim(line.substr(colon + 1))));
  }
  return true;
}

}  // namespace chainnn::net
