// Json — a minimal, dependency-free JSON value: parse + dump.
//
// Just enough JSON for the gateway's wire format and for splicing the
// soak driver's "gateway" section into BENCH_serve.json: null / bool /
// number / string / array / object, strict parsing (trailing garbage,
// unterminated strings, bad escapes and malformed numbers are errors —
// the HTTP front door must answer 400, never guess), and round-trip
// dumping (integers stay integers; doubles print via std::to_chars, the
// shortest representation that parses back to the same value, so a
// parse-edit-dump cycle over a bench JSON does not rewrite untouched
// numbers).
//
// Objects preserve insertion order (a vector of pairs, not a map):
// dumped output stays diffable against the committed baselines. Lookup
// is linear — fine for the handful of keys a request body carries.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace chainnn::net {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::vector<std::pair<std::string, Json>>;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(std::int64_t i) : value_(i) {}
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}
  Json(std::uint64_t u) : value_(static_cast<double>(u)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(value_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(value_) ||
           std::holds_alternative<std::int64_t>(value_);
  }
  // An integer lexeme (no '.', no exponent) that fit std::int64_t.
  [[nodiscard]] bool is_integer() const {
    return std::holds_alternative<std::int64_t>(value_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<JsonArray>(value_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<JsonObject>(value_);
  }

  // Accessors assert the type via std::get (std::bad_variant_access on
  // misuse — gateway code always type-checks first).
  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] double as_double() const {
    if (const auto* i = std::get_if<std::int64_t>(&value_))
      return static_cast<double>(*i);
    return std::get<double>(value_);
  }
  [[nodiscard]] std::int64_t as_int() const {
    if (const auto* d = std::get_if<double>(&value_))
      return static_cast<std::int64_t>(*d);
    return std::get<std::int64_t>(value_);
  }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(value_);
  }
  [[nodiscard]] const JsonArray& as_array() const {
    return std::get<JsonArray>(value_);
  }
  [[nodiscard]] JsonArray& as_array() { return std::get<JsonArray>(value_); }
  [[nodiscard]] const JsonObject& as_object() const {
    return std::get<JsonObject>(value_);
  }
  [[nodiscard]] JsonObject& as_object() {
    return std::get<JsonObject>(value_);
  }

  // Object member by key; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const;
  // Sets (or replaces) an object member, preserving insertion order.
  void set(std::string key, Json value);

  // Strict parse of a complete JSON document. Returns nullopt and fills
  // `error` (position + reason) on any syntax violation, including
  // trailing non-whitespace.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text,
                                                 std::string* error = nullptr);

  // Compact serialization (no whitespace). Numbers round-trip: int64
  // lexemes stay integral, doubles use the shortest form that parses
  // back identically.
  [[nodiscard]] std::string dump() const;

 private:
  void dump_to(std::string& out) const;

  std::variant<std::nullptr_t, bool, double, std::int64_t, std::string,
               JsonArray, JsonObject>
      value_;
};

// Serialize one double the way Json::dump does (shortest round-trip) —
// shared with the bench emitters that stream JSON by hand.
[[nodiscard]] std::string json_number(double value);
// Escape + quote a string for JSON embedding.
[[nodiscard]] std::string json_quote(std::string_view s);

}  // namespace chainnn::net
