#include "net/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <stdexcept>
#include <system_error>
#include <utility>
#include <vector>

#include "net/json.hpp"

namespace chainnn::net {

namespace {

using Clock = std::chrono::steady_clock;

// Polling granularity for reads and accepts: short enough that stop()
// and idle timeouts bite promptly, long enough to stay off the CPU.
constexpr int kPollMs = 100;

// Writes the whole buffer, retrying short sends. MSG_NOSIGNAL: a peer
// that hung up costs EPIPE here, not SIGPIPE for the process.
bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

HttpResponse error_response(int status, std::string_view message) {
  HttpResponse resp;
  resp.status = status;
  resp.body = "{\"error\": " + json_quote(message) + "}";
  return resp;
}

// std::error_code::message() over std::strerror: strerror writes a
// shared static buffer, which concurrency-mt-unsafe rightly flags.
[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(
      what + ": " + std::error_code(errno, std::generic_category()).message());
}

}  // namespace

HttpServer::HttpServer(HttpServerOptions options, HttpHandler handler)
    : opts_(std::move(options)), handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket()");

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("invalid bind address: " + opts_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("bind(" + opts_.bind_address + ":" +
                std::to_string(opts_.port) + ")");
  }
  if (::listen(listen_fd_, opts_.listen_backlog) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("listen()");
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("getsockname()");
  }
  port_ = ntohs(bound.sin_port);

  accept_thread_ = std::thread(&HttpServer::accept_loop, this);
}

HttpServer::~HttpServer() { stop(); }

HttpServerStats HttpServer::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void HttpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    reap_finished();
    if (ready <= 0) continue;

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    MutexLock lock(mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    if (static_cast<std::int64_t>(connections_.size()) >=
        opts_.max_connections) {
      ++stats_.connections_rejected;
      send_all(fd, serialize_response(
                       error_response(503, "server at connection capacity"),
                       /*keep_alive=*/false));
      ::close(fd);
      continue;
    }
    ++stats_.connections_accepted;
    connections_.emplace_back();
    const auto it = std::prev(connections_.end());
    it->fd = fd;
    it->thread = std::thread(&HttpServer::connection_loop, this, it);
  }
}

void HttpServer::connection_loop(std::list<Connection>::iterator self) {
  const int fd = self->fd;
  HttpParser parser(opts_.limits);
  const auto idle_timeout = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(opts_.idle_timeout_s));
  auto last_activity = Clock::now();
  char buf[16 * 1024];
  bool open = true;

  while (open && !stopping_.load(std::memory_order_relaxed)) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      // The timeout also covers a peer dribbling a request one byte at
      // a time: inactivity mid-request is a slow-loris, not a client.
      if (Clock::now() - last_activity > idle_timeout) break;
      continue;
    }

    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // peer closed (0) or hard error (<0)
    last_activity = Clock::now();
    parser.feed(buf, static_cast<std::size_t>(n));

    for (;;) {
      HttpRequest request;
      const HttpParser::Status status = parser.next(&request);
      if (status == HttpParser::Status::kNeedMore) break;
      if (status == HttpParser::Status::kError) {
        {
          MutexLock lock(mu_);
          ++stats_.parse_errors;
        }
        send_all(fd, serialize_response(
                         error_response(parser.error_status(), parser.error()),
                         /*keep_alive=*/false));
        open = false;
        break;
      }

      {
        MutexLock lock(mu_);
        ++stats_.requests;
      }
      HttpResponse response;
      try {
        response = handler_(request);
      } catch (const std::exception& e) {
        response = error_response(500, e.what());
      } catch (...) {
        response = error_response(500, "unhandled exception");
      }
      if (response.status >= 500) {
        MutexLock lock(mu_);
        ++stats_.responses_5xx;
      }
      const bool keep_alive = request.keep_alive();
      if (!send_all(fd, serialize_response(response, keep_alive))) {
        open = false;
        break;
      }
      if (!keep_alive) {
        open = false;
        break;
      }
    }
  }

  // Close and deregister atomically: stop() shuts down fds of entries
  // still in connections_, so the fd must not be recycled while listed.
  MutexLock lock(mu_);
  ::close(fd);
  reaped_.push_back(std::move(self->thread));
  connections_.erase(self);
}

void HttpServer::reap_finished() {
  std::vector<std::thread> done;
  {
    MutexLock lock(mu_);
    done.swap(reaped_);
  }
  for (std::thread& t : done) t.join();
}

void HttpServer::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (;;) {
    std::vector<std::thread> done;
    bool drained = false;
    {
      MutexLock lock(mu_);
      for (Connection& c : connections_) ::shutdown(c.fd, SHUT_RDWR);
      done.swap(reaped_);
      drained = connections_.empty();
    }
    for (std::thread& t : done) t.join();
    if (drained && done.empty()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace chainnn::net
