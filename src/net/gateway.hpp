// Gateway — the HTTP/JSON front door over a serve::Fleet.
//
// Three endpoints:
//   POST /v1/submit   {"model": "alexnet", "batch": 4, "priority": 1,
//                      "deadline_ms": 250, "exec_mode": "analytical",
//                      "admission": true,
//                      "array": {"num_pes": 288, "clock_hz": 9e8}}
//                     -> blocks on the fleet future and answers the full
//                        outcome: {"id", "status", "chip", "wall_ms",
//                        "queue_ms", "modelled_seconds", "preemptions",
//                        "resumed", "deadline_missed", "deadline_expired",
//                        "completed_layers", "cycles", "digest", ...}.
//                        `cycles` and `digest` (FNV-1a over the final
//                        activations) make bit-identity checkable over
//                        the wire: the same request submitted directly
//                        via Fleet::submit must produce the same pair.
//   GET  /metrics     Prometheus text exposition of FleetStats,
//                     per-chip ServerStats, PlanCacheStats, the HTTP
//                     server's own counters, and per-priority-tier
//                     latency histograms (buckets + p50/p99/p999).
//   GET  /healthz     {"status": "ok"} — liveness only.
//
// Validation is strict: unknown body keys, wrong types, unknown models
// and out-of-range batches are answered 400 with a reason, before
// anything touches the fleet. A resolved future — kOk, kCancelled or
// kRejected — is a 200 whose "status" field carries the verdict; HTTP
// 5xx is reserved for requests that threw, so the soak driver's
// "zero 5xx" gate means "the serving stack never errored", not "no
// deadline was ever missed".
//
// Model instances are cached per (name, scale): GatewayOptions::
// model_scale runs named networks through channel_reduced_proxy so a
// soak of hundreds of requests executes in seconds while keeping every
// layer's geometry (and therefore the planning/routing behaviour).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/thread_annotations.hpp"
#include "net/http_server.hpp"
#include "serve/fleet.hpp"
#include "serve/latency_histogram.hpp"

namespace chainnn::net {

struct GatewayOptions {
  HttpServerOptions http;
  // > 1 serves channel-reduced proxies of the named models (see
  // serve::channel_reduced_proxy); 1 serves the full networks.
  std::int64_t model_scale = 1;
  std::int64_t max_batch = 64;
};

struct GatewayStats {
  std::int64_t submits_ok = 0;         // future resolved kOk
  std::int64_t submits_cancelled = 0;  // future resolved kCancelled
  std::int64_t submits_rejected = 0;   // future resolved kRejected
  std::int64_t submits_failed = 0;     // future threw -> answered 500
  std::int64_t bad_requests = 0;       // body validation failures -> 400
  HttpServerStats http;
};

class Gateway {
 public:
  // Binds and starts serving immediately (throws on bind failure, like
  // HttpServer). The fleet must outlive the gateway.
  explicit Gateway(serve::Fleet& fleet, GatewayOptions options = {});

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  [[nodiscard]] std::uint16_t port() const { return server_->port(); }
  [[nodiscard]] GatewayStats stats() const;

  // The /metrics payload (exposed for tests that cross-check the scrape
  // against FleetStats without going through a socket).
  [[nodiscard]] std::string metrics_text() const;

  void stop() { server_->stop(); }

 private:
  HttpResponse handle(const HttpRequest& request);
  HttpResponse handle_submit(const HttpRequest& request);
  // Histogram for one priority tier, created on first use.
  serve::LatencyHistogram& tier_histogram(std::int32_t priority);

  serve::Fleet& fleet_;
  GatewayOptions opts_;

  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<const nn::NetworkModel>> models_
      CHAINNN_GUARDED_BY(mu_);
  // Unique_ptr values: histograms must not move once handed out —
  // record() runs outside the lock (the histogram itself is lock-free,
  // see serve/latency_histogram.hpp). Only the map is mu_-guarded.
  std::map<std::int32_t, std::unique_ptr<serve::LatencyHistogram>> tiers_
      CHAINNN_GUARDED_BY(mu_);
  std::int64_t submits_ok_ CHAINNN_GUARDED_BY(mu_) = 0;
  std::int64_t submits_cancelled_ CHAINNN_GUARDED_BY(mu_) = 0;
  std::int64_t submits_rejected_ CHAINNN_GUARDED_BY(mu_) = 0;
  std::int64_t submits_failed_ CHAINNN_GUARDED_BY(mu_) = 0;
  std::int64_t bad_requests_ CHAINNN_GUARDED_BY(mu_) = 0;

  std::unique_ptr<HttpServer> server_;  // last: stops before members die
};

// FNV-1a 64-bit digest over a run's final activations — the wire-level
// bit-identity witness. Exposed so tests and the soak driver can compute
// the expected digest from a direct Fleet::submit result.
[[nodiscard]] std::uint64_t run_digest(const chain::NetworkRunResult& run);
// Total cycles across the run's layers (the "cycles" response field).
[[nodiscard]] std::int64_t run_cycles(const chain::NetworkRunResult& run);

[[nodiscard]] const char* request_status_name(serve::RequestStatus status);

}  // namespace chainnn::net
