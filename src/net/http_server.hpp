// HttpServer — a small, dependency-free HTTP/1.1 server over POSIX
// sockets: a blocking accept loop plus one worker thread per live
// connection, each multiplexing reads through poll() so shutdown and
// idle timeouts interrupt a quiet socket.
//
// The per-connection-thread model is deliberate: the gateway's
// /v1/submit handler blocks on an inference future (possibly for the
// whole modelled run plus queueing), so an event-loop worker shared
// between connections would head-of-line-block every other request on
// it. Hundreds of mostly-waiting threads are cheap; a stalled chip
// starving unrelated connections is not. max_connections caps the
// thread count — excess connections are answered 503 and closed, which
// a load generator reads as explicit overload, not a hang.
//
// Lifecycle: the constructor binds/listens (throws std::runtime_error
// on failure — a busy port must not produce a half-alive server) and
// starts accepting; stop() (idempotent, also run by the destructor)
// closes the listener, shuts down every live connection socket and
// joins all threads. port() reports the actually-bound port, so
// requesting port 0 yields an ephemeral listener for tests and local
// demos.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "net/http.hpp"

namespace chainnn::net {

struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral, read back via port()
  int listen_backlog = 256;
  std::int64_t max_connections = 1024;
  double idle_timeout_s = 30.0;  // keep-alive connections idle this long
  HttpLimits limits;
};

struct HttpServerStats {
  std::int64_t connections_accepted = 0;
  std::int64_t connections_rejected = 0;  // over max_connections -> 503
  std::int64_t requests = 0;              // complete requests handled
  std::int64_t parse_errors = 0;          // 4xx/5xx answered by the parser
  std::int64_t responses_5xx = 0;         // handler-produced 5xx
};

// Maps one parsed request to the response to send. Runs on the
// connection's thread; throwing is answered with a plain 500.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  HttpServer(HttpServerOptions options, HttpHandler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] HttpServerStats stats() const;

  // Stops accepting, disconnects every live connection and joins all
  // threads. Safe to call more than once.
  void stop();

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
  };

  void accept_loop();
  void connection_loop(std::list<Connection>::iterator self);
  // Joins connection threads that have finished (moved to reaped_).
  void reap_finished();

  HttpServerOptions opts_;
  HttpHandler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  mutable Mutex mu_;
  // A connection thread reads its own entry's fd through the iterator it
  // was handed; that read is ordered by thread creation, not by mu_ (the
  // entry is fully initialised before the thread exists). The list
  // structure itself — insertion, erasure, iteration — is mu_-guarded.
  std::list<Connection> connections_ CHAINNN_GUARDED_BY(mu_);
  std::vector<std::thread> reaped_ CHAINNN_GUARDED_BY(mu_);
  HttpServerStats stats_ CHAINNN_GUARDED_BY(mu_);
};

}  // namespace chainnn::net
