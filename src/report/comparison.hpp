// Paper-vs-measured comparison rows for the bench binaries: uniform
// formatting of reproduced values next to the published ones with a
// ratio, so EXPERIMENTS.md can be assembled straight from bench output.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"

namespace chainnn::report {

class ComparisonTable {
 public:
  // `value_label` e.g. "time (ms)" or "traffic (MB)".
  explicit ComparisonTable(std::string title, std::string value_label);

  void add(const std::string& item, double paper, double measured);
  // For rows where the paper gives no number.
  void add_measured_only(const std::string& item, double measured);

  [[nodiscard]] std::string render() const;

  // Largest |measured/paper - 1| over the rows with paper values; the
  // shape check used in EXPERIMENTS.md.
  [[nodiscard]] double worst_relative_error() const;

 private:
  struct Row {
    std::string item;
    bool has_paper = false;
    double paper = 0.0;
    double measured = 0.0;
  };
  std::string title_;
  std::string value_label_;
  std::vector<Row> rows_;
};

}  // namespace chainnn::report
