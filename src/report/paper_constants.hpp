// Every number the paper reports, as named constants, so the bench
// binaries can print "paper vs measured" rows and the tests can pin the
// reproduction targets. Section/table references are given per constant.
#pragma once

#include <array>
#include <cstdint>

namespace chainnn::report {

// --- Chip instantiation (§V.B, Table V) -----------------------------------
inline constexpr std::int64_t kNumPes = 576;
inline constexpr double kClockHz = 700e6;
inline constexpr double kCriticalPathNs = 1.428;
inline constexpr double kPeakGops = 806.4;
inline constexpr double kPowerW = 0.5675;
inline constexpr double kEfficiencyGopsPerW = 1421.0;
inline constexpr double kGateCountK = 3751.0;
inline constexpr double kGatesPerPeK = 6.51;
inline constexpr double kOnChipKiB = 352.0;
inline constexpr double kIMemoryKiB = 32.0;
inline constexpr double kKMemoryKiB = 295.0;
inline constexpr double kOMemoryKiB = 25.0;
inline constexpr std::int64_t kKernelWordsPerPe = 256;
inline constexpr int kPipelineStages = 3;

// --- Table II: active PEs in the 576-PE chain -----------------------------
struct Table2Row {
  std::int64_t kernel;
  std::int64_t pes_per_primitive;
  std::int64_t active_primitives;
  std::int64_t active_pes;
  double efficiency_pct;  // as printed in the paper
};
// Note: the paper prints 100% for the 9x9 row although 567/576 = 98.4% —
// kept verbatim here; the bench prints both and EXPERIMENTS.md discusses
// the discrepancy.
inline constexpr std::array<Table2Row, 5> kTable2 = {{
    {3, 9, 64, 576, 100.0},
    {5, 25, 23, 575, 99.8},
    {7, 49, 11, 539, 93.6},
    {9, 81, 7, 567, 100.0},
    {11, 121, 4, 484, 84.0},
}};

// --- Fig. 9: AlexNet layer times, batch 128 (ms) --------------------------
struct Fig9Row {
  const char* layer;
  double conv_ms;
  double kernel_load_ms;
};
inline constexpr std::array<Fig9Row, 5> kFig9 = {{
    {"conv1", 159.30, 0.05},
    {"conv2", 102.10, 0.43},
    {"conv3", 57.20, 1.23},
    {"conv4", 42.90, 0.93},
    {"conv5", 28.60, 0.62},
}};
inline constexpr double kBatchMs = 349.92;        // §V.B (as printed)
inline constexpr double kKernelLoadTotalMs = 3.25;
inline constexpr double kFpsBatch128 = 326.2;
inline constexpr double kFpsBatch4 = 275.6;
inline constexpr std::int64_t kAlexNetMacsMillions = 666;  // §V.B

// --- Table IV: memory traffic, batch 4 (MByte) -----------------------------
struct Table4Row {
  const char* layer;
  double dram_mb;
  double imem_mb;
  double kmem_mb;
  double omem_mb;
};
inline constexpr std::array<Table4Row, 5> kTable4 = {{
    {"conv1", 9.0, 6.6, 15.4, 13.9},
    {"conv2", 5.5, 8.7, 17.8, 143.3},
    {"conv3", 4.3, 4.8, 37.2, 265.8},
    {"conv4", 3.4, 3.6, 27.9, 199.4},
    {"conv5", 2.3, 2.4, 18.6, 132.9},
}};
inline constexpr double kTable4TotalDram = 24.5;
inline constexpr double kTable4TotalImem = 26.2;
inline constexpr double kTable4TotalKmem = 116.8;
inline constexpr double kTable4TotalOmem = 755.3;

// --- Fig. 10: power breakdown (mW) -----------------------------------------
inline constexpr double kChainPowerMw = 466.71;
inline constexpr double kKmemPowerMw = 40.15;
inline constexpr double kImemPowerMw = 3.91;
inline constexpr double kOmemPowerMw = 56.70;
inline constexpr double kCoreOnlyGopsPerW = 1727.8;
// kMemory activity factor for AlexNet conv3 (§V.C).
inline constexpr double kKmemActivityConv3 = 0.0222;

// --- Table V: state-of-the-art comparison -----------------------------------
struct ComparisonColumn {
  const char* name;
  const char* technology;
  double gate_count_k;     // <0 = not reported
  const char* onchip_memory;
  const char* parallelism;
  double clock_mhz;
  double power_w;
  double peak_gops;
  double efficiency_gops_per_w;
};
inline constexpr ComparisonColumn kDaDianNao = {
    "DaDianNao [10]", "STM 28nm", -1.0, "36MB eDRAM", "288x16",
    606.0, 15.97, 5584.9, 349.7};
inline constexpr ComparisonColumn kEyeriss = {
    "Eyeriss [12]", "TSMC 65nm", 1852.0, "181.5KB SRAM", "168",
    250.0, 0.450, 84.0, 245.6};
inline constexpr ComparisonColumn kChainNN = {
    "Chain-NN", "TSMC 28nm", 3751.0, "352.0KB SRAM", "576",
    700.0, 0.5675, 806.4, 1421.0};
// Fig. 10 / §V.D: DaDianNao power split and core-only efficiency.
inline constexpr double kDaDianNaoCoreW = 1.84;
inline constexpr double kDaDianNaoMemoryW = 14.13;
inline constexpr double kDaDianNaoCoreOnlyGopsPerW = 3035.3;
inline constexpr double kEyerissScaledTo28nmGopsPerW = 570.1;
inline constexpr double kEyerissGatesPerPeK = 11.02;
inline constexpr double kAreaEfficiencyRatio = 1.7;  // §V.D

// --- headline claims (§I / abstract) -----------------------------------------
inline constexpr double kMinEfficiencyGain = 2.5;  // vs best prior work
inline constexpr double kMaxEfficiencyGain = 4.1;
inline constexpr double kUtilizationLowPct = 84.0;
inline constexpr double kUtilizationHighPct = 100.0;

}  // namespace chainnn::report
