#include "report/comparison.hpp"

#include <cmath>

#include "common/strings.hpp"

namespace chainnn::report {

ComparisonTable::ComparisonTable(std::string title, std::string value_label)
    : title_(std::move(title)), value_label_(std::move(value_label)) {}

void ComparisonTable::add(const std::string& item, double paper,
                          double measured) {
  rows_.push_back(Row{item, true, paper, measured});
}

void ComparisonTable::add_measured_only(const std::string& item,
                                        double measured) {
  rows_.push_back(Row{item, false, 0.0, measured});
}

std::string ComparisonTable::render() const {
  TextTable t(title_);
  t.set_header({"item", "paper " + value_label_, "measured " + value_label_,
                "measured/paper"});
  for (const Row& r : rows_) {
    if (r.has_paper) {
      const double ratio = r.paper == 0.0 ? 0.0 : r.measured / r.paper;
      t.add_row({r.item, strings::fmt_fixed(r.paper, 2),
                 strings::fmt_fixed(r.measured, 2),
                 strings::fmt_fixed(ratio, 3)});
    } else {
      t.add_row({r.item, "-", strings::fmt_fixed(r.measured, 2), "-"});
    }
  }
  return t.to_ascii();
}

double ComparisonTable::worst_relative_error() const {
  double worst = 0.0;
  for (const Row& r : rows_) {
    if (!r.has_paper || r.paper == 0.0) continue;
    worst = std::max(worst, std::fabs(r.measured / r.paper - 1.0));
  }
  return worst;
}

}  // namespace chainnn::report
