// Intentionally empty: paper_constants.hpp is all constexpr data. The TU
// exists so the target has a stable archive even if future constants need
// out-of-line definitions.
#include "report/paper_constants.hpp"
