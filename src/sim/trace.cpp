#include "sim/trace.hpp"

#include <sstream>

namespace chainnn::sim {

void Trace::record(std::uint64_t cycle, std::string source,
                   std::string message) {
  if (!enabled_) return;
  TraceEvent ev{cycle, std::move(source), std::move(message)};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
    return;
  }
  ring_[next_] = std::move(ev);
  next_ = (next_ + 1) % capacity_;
  wrapped_ = true;
}

std::vector<TraceEvent> Trace::events() const {
  if (!wrapped_) return ring_;
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  return out;
}

std::string Trace::to_string() const {
  std::ostringstream os;
  for (const TraceEvent& ev : events())
    os << "[" << ev.cycle << "] " << ev.source << ": " << ev.message
       << '\n';
  return os.str();
}

void Trace::clear() {
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
}

}  // namespace chainnn::sim
