// Minimal VCD (Value Change Dump) writer — the waveform debugging tool
// an RTL engineer would reach for. The chain module uses it to dump a
// single strip pass (channel inputs, mux selects, psums) for inspection
// in GTKWave-compatible viewers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace chainnn::sim {

class VcdWriter {
 public:
  // `timescale` e.g. "1ns" (one unit per chain cycle at ~700MHz ≈ 1.4ns;
  // cycle indices are what matter, not absolute time).
  explicit VcdWriter(std::string timescale = "1ns");

  // Declares a signal of `width` bits under `scope.name`; returns its
  // handle. All declarations must precede the first change().
  std::int64_t add_signal(const std::string& scope, const std::string& name,
                          int width);

  // Records signal `id` holding `value` from time `t` on. Idempotent for
  // unchanged values (VCD only stores changes).
  void change(std::int64_t t, std::int64_t id, std::int64_t value);

  // Renders the complete VCD document.
  [[nodiscard]] std::string render() const;

  // Writes to `path`; false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  struct Signal {
    std::string scope;
    std::string name;
    int width = 1;
    std::string code;  // VCD identifier code
    std::int64_t last_value = 0;
    bool has_value = false;
  };
  struct Change {
    std::int64_t time;
    std::int64_t id;
    std::int64_t value;
  };

  static std::string code_for(std::int64_t index);

  std::string timescale_;
  std::vector<Signal> signals_;
  std::vector<Change> changes_;
  bool sealed_ = false;
};

}  // namespace chainnn::sim
