#include "sim/counters.hpp"

#include "common/check.hpp"

namespace chainnn::sim {

Counters::Handle Counters::handle(const std::string& name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return Handle(it->second);
  const std::size_t i = values_.size();
  values_.push_back(0);
  index_.emplace(name, i);
  return Handle(i);
}

std::uint64_t Counters::get(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? 0 : values_[it->second];
}

std::map<std::string, std::uint64_t> Counters::snapshot() const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, i] : index_) out[name] = values_[i];
  return out;
}

void Counters::reset() {
  for (auto& v : values_) v = 0;
}

}  // namespace chainnn::sim
