#include "sim/vcd.hpp"

#include <algorithm>
#include <bitset>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace chainnn::sim {

VcdWriter::VcdWriter(std::string timescale)
    : timescale_(std::move(timescale)) {}

std::string VcdWriter::code_for(std::int64_t index) {
  // Printable identifier codes '!'..'~' in a base-94 positional scheme.
  std::string code;
  std::int64_t v = index;
  do {
    code.push_back(static_cast<char>('!' + v % 94));
    v /= 94;
  } while (v > 0);
  return code;
}

std::int64_t VcdWriter::add_signal(const std::string& scope,
                                   const std::string& name, int width) {
  CHAINNN_CHECK_MSG(!sealed_, "declare all signals before change()");
  CHAINNN_CHECK(width >= 1 && width <= 64);
  Signal s;
  s.scope = scope;
  s.name = name;
  s.width = width;
  s.code = code_for(static_cast<std::int64_t>(signals_.size()));
  signals_.push_back(std::move(s));
  return static_cast<std::int64_t>(signals_.size()) - 1;
}

void VcdWriter::change(std::int64_t t, std::int64_t id, std::int64_t value) {
  sealed_ = true;
  CHAINNN_CHECK(id >= 0 &&
                id < static_cast<std::int64_t>(signals_.size()));
  Signal& s = signals_[static_cast<std::size_t>(id)];
  if (s.has_value && s.last_value == value) return;
  s.has_value = true;
  s.last_value = value;
  changes_.push_back(Change{t, id, value});
}

std::string VcdWriter::render() const {
  std::ostringstream os;
  os << "$date chain-nn simulation $end\n"
     << "$version chain-nn vcd writer $end\n"
     << "$timescale " << timescale_ << " $end\n";

  // Group declarations by scope.
  std::map<std::string, std::vector<const Signal*>> by_scope;
  for (const Signal& s : signals_) by_scope[s.scope].push_back(&s);
  for (const auto& [scope, sigs] : by_scope) {
    os << "$scope module " << scope << " $end\n";
    for (const Signal* s : sigs)
      os << "$var wire " << s->width << " " << s->code << " " << s->name
         << " $end\n";
    os << "$upscope $end\n";
  }
  os << "$enddefinitions $end\n";

  // Changes in time order (stable sort keeps declaration order at ties).
  std::vector<Change> sorted = changes_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Change& a, const Change& b) {
                     return a.time < b.time;
                   });
  std::int64_t current_time = -1;
  for (const Change& c : sorted) {
    if (c.time != current_time) {
      os << '#' << c.time << '\n';
      current_time = c.time;
    }
    const Signal& s = signals_[static_cast<std::size_t>(c.id)];
    if (s.width == 1) {
      os << (c.value & 1) << s.code << '\n';
    } else {
      os << 'b';
      for (int bit = s.width - 1; bit >= 0; --bit)
        os << ((c.value >> bit) & 1);
      os << ' ' << s.code << '\n';
    }
  }
  return os.str();
}

bool VcdWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << render();
  return static_cast<bool>(f);
}

}  // namespace chainnn::sim
