// Named statistic counters for simulators and memory models.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace chainnn::sim {

// A bag of named monotonic counters. Lookup by name is only done when a
// counter handle is created; incrementing a handle is a plain add, so the
// simulation inner loop stays cheap.
class Counters {
 public:
  // Stable handle to a counter (index into the value array).
  class Handle {
   public:
    Handle() = default;

   private:
    friend class Counters;
    explicit Handle(std::size_t i) : index_(i) {}
    std::size_t index_ = 0;
  };

  // Returns (creating if needed) the handle for `name`.
  Handle handle(const std::string& name);

  void add(Handle h, std::uint64_t delta = 1) { values_[h.index_] += delta; }

  [[nodiscard]] std::uint64_t get(const std::string& name) const;
  [[nodiscard]] std::uint64_t get(Handle h) const { return values_[h.index_]; }

  // Name -> value, sorted by name (for reports and tests).
  [[nodiscard]] std::map<std::string, std::uint64_t> snapshot() const;

  void reset();

 private:
  std::map<std::string, std::size_t> index_;
  std::vector<std::uint64_t> values_;
};

}  // namespace chainnn::sim
