// Register primitives for two-phase (compute / commit) cycle simulation.
//
// The chain simulator models RTL registers explicitly: during a cycle all
// next-state values are computed from current values ("compute" phase),
// then all registers advance together ("commit" phase). That rules out
// read-after-write races regardless of module evaluation order — the same
// guarantee a synchronous netlist gives.
#pragma once

#include <cstddef>
#include <vector>

#include "common/check.hpp"

namespace chainnn::sim {

// A single D-flip-flop-like register.
template <typename T>
class Register {
 public:
  Register() = default;
  explicit Register(T reset) : cur_(reset), next_(reset) {}

  // Value visible during the current cycle (Q output).
  [[nodiscard]] const T& get() const { return cur_; }

  // Schedules the value to appear after the next commit (D input).
  void set_next(T v) { next_ = std::move(v); }

  // By default a register holds its value; call set_next to change it.
  void commit() { cur_ = next_; }

  void reset(T v) {
    cur_ = v;
    next_ = v;
  }

 private:
  T cur_{};
  T next_{};
};

// A chain of registers with taps — models a shift-register channel
// (e.g. the OddIF/EvenIF paths). Position 0 is the register closest to
// the input; tap(i) reads the value delayed by (i+1) cycles.
template <typename T>
class ShiftChain {
 public:
  explicit ShiftChain(std::size_t length, T reset = T{})
      : regs_(length, reset) {}

  [[nodiscard]] std::size_t length() const { return regs_.size(); }

  // Value after (i+1) register delays.
  [[nodiscard]] const T& tap(std::size_t i) const {
    CHAINNN_CHECK_MSG(i < regs_.size(), "tap " << i << " of "
                                               << regs_.size());
    return regs_[i];
  }

  // Shifts `in` into position 0; all stages advance one step. This is the
  // combined compute+commit for the chain (it has no combinational
  // feedback, so a single-phase shift is race-free as long as the caller
  // samples taps before shifting).
  void shift(T in) {
    for (std::size_t i = regs_.size(); i-- > 1;)
      regs_[i] = std::move(regs_[i - 1]);
    if (!regs_.empty()) regs_[0] = std::move(in);
  }

  void reset(T v) {
    for (auto& r : regs_) r = v;
  }

 private:
  std::vector<T> regs_;
};

// Fixed-latency delay line: push one value per cycle, pop the value from
// `latency` cycles ago. Latency 0 passes through.
template <typename T>
class DelayLine {
 public:
  explicit DelayLine(std::size_t latency, T reset = T{})
      : buf_(latency == 0 ? 1 : latency, reset), latency_(latency) {}

  [[nodiscard]] std::size_t latency() const { return latency_; }

  // Advances one cycle: returns the value pushed `latency` cycles ago.
  T step(T in) {
    if (latency_ == 0) return in;
    T out = std::move(buf_[head_]);
    buf_[head_] = std::move(in);
    head_ = (head_ + 1) % latency_;
    return out;
  }

  void reset(T v) {
    for (auto& b : buf_) b = v;
    head_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t latency_ = 0;
  std::size_t head_ = 0;
};

}  // namespace chainnn::sim
