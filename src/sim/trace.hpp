// Bounded event trace for debugging cycle simulations.
//
// Disabled traces cost one branch per event. Enabled traces keep the last
// `capacity` events in a ring buffer (a full waveform dump of a 576-PE
// chain over millions of cycles would be useless and enormous; the ring
// keeps the window around a failure).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace chainnn::sim {

struct TraceEvent {
  std::uint64_t cycle = 0;
  std::string source;
  std::string message;
};

class Trace {
 public:
  explicit Trace(std::size_t capacity = 4096) : capacity_(capacity) {}

  void enable(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(std::uint64_t cycle, std::string source, std::string message);

  // Events in chronological order (oldest first).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  // Renders one line per event.
  [[nodiscard]] std::string to_string() const;

  void clear();

 private:
  std::size_t capacity_;
  bool enabled_ = false;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;   // insertion point when the ring is full
  bool wrapped_ = false;
};

}  // namespace chainnn::sim
