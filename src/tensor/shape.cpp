#include "tensor/shape.hpp"

#include <sstream>

namespace chainnn {

std::int64_t Shape::num_elements() const {
  std::int64_t n = 1;
  for (std::int64_t d : dims_) n *= d;
  return n;
}

std::vector<std::int64_t> Shape::strides() const {
  std::vector<std::int64_t> s(dims_.size(), 1);
  for (std::size_t i = dims_.size(); i-- > 1;)
    s[i - 1] = s[i] * dims_[i];
  return s;
}

std::int64_t Shape::offset(std::initializer_list<std::int64_t> index) const {
  CHAINNN_CHECK_MSG(index.size() == dims_.size(),
                    "index rank " << index.size() << " vs shape rank "
                                  << dims_.size());
  const auto st = strides();
  std::int64_t off = 0;
  std::size_t i = 0;
  for (std::int64_t ix : index) {
    CHAINNN_CHECK_MSG(ix >= 0 && ix < dims_[i],
                      "index " << ix << " out of bounds for dim " << i
                               << " size " << dims_[i]);
    off += ix * st[i];
    ++i;
  }
  return off;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i != 0) os << 'x';
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace chainnn
