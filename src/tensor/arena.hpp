// TensorArena — a pooled allocator for the serving hot path's tensors.
//
// Every layer of every request allocates the same handful of buffer
// sizes (a VGG-16 request allocates the same 13 accumulator surfaces and
// 13 ofmap surfaces as the previous one), but the default allocator
// hands each of them to the OS and back. A TensorArena keeps released
// blocks on an exact-size freelist instead: the first request of a shape
// pays the OS, every later identical allocation is a pop. Blocks come
// from ::operator new (so alignment suits any tensor element type) and
// return to the OS only when the arena dies or trim() is called.
//
// Lifetime: ArenaAllocator holds the arena by shared_ptr, so a tensor
// allocated from an arena keeps the arena alive however far it escapes
// (per-layer results outlive the request that produced them — a
// raw-pointer arena would dangle). "Request-scoped" therefore means the
// request's working tensors return to the freelist as they are
// destroyed during and at the end of the request, ready for the next
// one — not that the arena frees memory mid-flight.
//
// Thread safety: all arena operations lock a single mutex. The serving
// layer gives each chip its own arena (ServerOptions::arena defaults to
// a server-owned one), so cross-request contention stays within a chip;
// shard tasks of one request do share an arena, and the annotations
// below let clang's -Wthread-safety prove the locking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_annotations.hpp"

namespace chainnn {

struct ArenaStats {
  std::int64_t bytes_in_use = 0;      // held by live tensors right now
  std::int64_t high_water_bytes = 0;  // peak bytes_in_use over the life
  std::int64_t freelist_bytes = 0;    // retained, awaiting reuse
  std::int64_t allocations = 0;       // total allocate() calls served
  std::int64_t reuses = 0;            // subset served from the freelist

  [[nodiscard]] double reuse_rate() const {
    return allocations > 0
               ? static_cast<double>(reuses) / static_cast<double>(allocations)
               : 0.0;
  }
};

class TensorArena {
 public:
  TensorArena() = default;
  ~TensorArena();

  TensorArena(const TensorArena&) = delete;
  TensorArena& operator=(const TensorArena&) = delete;

  // A block of at least `bytes`, aligned for any fundamental type:
  // popped from the freelist when an identically-sized block was
  // released before, fresh from ::operator new otherwise.
  [[nodiscard]] void* allocate(std::size_t bytes);
  // Returns a block to the freelist. `bytes` must be the size it was
  // allocated with (the allocator contract already guarantees this).
  void release(void* block, std::size_t bytes);

  // Hands every freelist block back to the OS (live blocks are
  // untouched). Stats other than freelist_bytes are preserved.
  void trim();

  [[nodiscard]] ArenaStats stats() const;

 private:
  mutable Mutex mu_;
  // Exact-size buckets: tensor shapes repeat across layers/requests, so
  // exact matching reuses aggressively without the waste of rounding.
  std::unordered_map<std::size_t, std::vector<void*>> freelist_
      CHAINNN_GUARDED_BY(mu_);
  ArenaStats stats_ CHAINNN_GUARDED_BY(mu_);
};

// std-compatible allocator over an optional TensorArena. Three
// deliberate choices:
//   * construct() with no arguments default-initializes instead of
//     value-initializing, which is what makes Tensor's Uninit tag skip
//     the zero-fill for outputs every element of which is overwritten;
//     explicit fills (Tensor's zeroing and fill constructors pass a
//     value) are unaffected.
//   * a null arena falls back to ::operator new/delete, so default
//     Tensors behave exactly as before.
//   * all propagate_on_* are true and copies keep the source allocator:
//     the allocator must travel with (and outlive decisions about) the
//     memory it manages, and the shared_ptr makes that safe.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() = default;
  explicit ArenaAllocator(std::shared_ptr<TensorArena> arena)
      : arena_(std::move(arena)) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other)  // NOLINT(runtime/explicit)
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (arena_) return static_cast<T*>(arena_->allocate(bytes));
    return static_cast<T*>(::operator new(bytes));
  }
  void deallocate(T* p, std::size_t n) {
    if (arena_)
      arena_->release(p, n * sizeof(T));
    else
      ::operator delete(p);
  }

  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    if constexpr (sizeof...(Args) == 0)
      ::new (static_cast<void*>(p)) U;  // default-init: Uninit support
    else
      ::new (static_cast<void*>(p)) U(std::forward<Args>(args)...);
  }

  [[nodiscard]] const std::shared_ptr<TensorArena>& arena() const {
    return arena_;
  }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }

 private:
  std::shared_ptr<TensorArena> arena_;
};

}  // namespace chainnn
