// Shape algebra for N-dimensional row-major tensors.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace chainnn {

// Dimension sizes, outermost first (e.g. {N, C, H, W}).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
    validate();
  }

  [[nodiscard]] std::size_t rank() const { return dims_.size(); }
  [[nodiscard]] std::int64_t dim(std::size_t i) const {
    CHAINNN_CHECK_MSG(i < dims_.size(), "dim " << i << " of rank " << rank());
    return dims_[i];
  }
  [[nodiscard]] const std::vector<std::int64_t>& dims() const { return dims_; }

  // Total element count (product of dims; 1 for rank 0).
  [[nodiscard]] std::int64_t num_elements() const;

  // Row-major strides (innermost stride 1).
  [[nodiscard]] std::vector<std::int64_t> strides() const;

  // Flat offset of a multi-index (bounds-checked).
  [[nodiscard]] std::int64_t offset(
      std::initializer_list<std::int64_t> index) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Shape&, const Shape&) = default;

 private:
  void validate() const {
    for (std::int64_t d : dims_)
      CHAINNN_CHECK_MSG(d > 0, "non-positive dimension in " << to_string());
  }

  std::vector<std::int64_t> dims_;
};

}  // namespace chainnn
