// Row-major N-dimensional tensor with value semantics.
//
// The simulator moves 16-bit raw words (Tensor<std::int16_t>); the golden
// models use Tensor<float> / Tensor<double>; accumulator-level references
// use Tensor<std::int64_t>. Data is owned (std::vector); copies are deep,
// moves are cheap — Rule of Zero throughout.
//
// Allocation: storage comes from an ArenaAllocator. Default-constructed
// allocators are plain ::operator new (exactly the old behaviour); the
// serving hot path passes an allocator bound to a TensorArena so
// repeated layer-shaped buffers are pooled across layers and requests
// (see tensor/arena.hpp). The Uninit tag skips the zero-fill for output
// tensors every element of which is overwritten before any read — the
// zero-fill of a VGG-sized accumulator surface is pure waste when the
// kernel's first touch of every row is a store.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "tensor/arena.hpp"
#include "tensor/shape.hpp"

namespace chainnn {

// Tag requesting default-initialized (indeterminate) tensor elements.
// Only for outputs whose every element is written before any read.
struct Uninit {};

template <typename T>
class Tensor {
 public:
  using allocator_type = ArenaAllocator<T>;

  Tensor() = default;

  explicit Tensor(Shape shape, allocator_type alloc = {})
      : shape_(std::move(shape)),
        strides_(shape_.strides()),
        data_(static_cast<std::size_t>(shape_.num_elements()), T{}, alloc) {}

  Tensor(Shape shape, Uninit, allocator_type alloc = {})
      : shape_(std::move(shape)),
        strides_(shape_.strides()),
        data_(static_cast<std::size_t>(shape_.num_elements()), alloc) {}

  Tensor(Shape shape, T fill_value, allocator_type alloc = {})
      : shape_(std::move(shape)),
        strides_(shape_.strides()),
        data_(static_cast<std::size_t>(shape_.num_elements()), fill_value,
              alloc) {}

  Tensor(Shape shape, std::vector<T> data)
      : shape_(std::move(shape)),
        strides_(shape_.strides()),
        data_(data.begin(), data.end()) {
    CHAINNN_CHECK_MSG(
        static_cast<std::int64_t>(data_.size()) == shape_.num_elements(),
        "data size " << data_.size() << " vs shape " << shape_.to_string());
  }

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::int64_t num_elements() const {
    return static_cast<std::int64_t>(data_.size());
  }
  [[nodiscard]] std::span<const T> data() const { return data_; }
  [[nodiscard]] std::span<T> mutable_data() { return data_; }

  // Flat element access.
  [[nodiscard]] const T& at_flat(std::int64_t i) const {
    CHAINNN_CHECK_MSG(i >= 0 && i < num_elements(),
                      "flat index " << i << " of " << num_elements());
    return data_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] T& at_flat(std::int64_t i) {
    CHAINNN_CHECK_MSG(i >= 0 && i < num_elements(),
                      "flat index " << i << " of " << num_elements());
    return data_[static_cast<std::size_t>(i)];
  }

  // Multi-index access; rank checked, bounds checked.
  [[nodiscard]] const T& operator()(
      std::initializer_list<std::int64_t> index) const {
    return data_[static_cast<std::size_t>(shape_.offset(index))];
  }
  [[nodiscard]] T& operator()(std::initializer_list<std::int64_t> index) {
    return data_[static_cast<std::size_t>(shape_.offset(index))];
  }

  // Convenience fixed-rank accessors for the common layouts.
  [[nodiscard]] const T& at(std::int64_t a, std::int64_t b) const {
    return (*this)({a, b});
  }
  [[nodiscard]] T& at(std::int64_t a, std::int64_t b) {
    return (*this)({a, b});
  }
  [[nodiscard]] const T& at(std::int64_t a, std::int64_t b,
                            std::int64_t c) const {
    return (*this)({a, b, c});
  }
  [[nodiscard]] T& at(std::int64_t a, std::int64_t b, std::int64_t c) {
    return (*this)({a, b, c});
  }
  [[nodiscard]] const T& at(std::int64_t a, std::int64_t b, std::int64_t c,
                            std::int64_t d) const {
    return (*this)({a, b, c, d});
  }
  [[nodiscard]] T& at(std::int64_t a, std::int64_t b, std::int64_t c,
                      std::int64_t d) {
    return (*this)({a, b, c, d});
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  // Fills with deterministic uniform values (for integral T, a range of
  // small magnitudes so fixed-point accumulations stay well-conditioned).
  void fill_random(Rng& rng, double lo, double hi) {
    for (T& v : data_) {
      if constexpr (std::is_integral_v<T>) {
        v = static_cast<T>(rng.uniform_int(static_cast<std::int64_t>(lo),
                                           static_cast<std::int64_t>(hi)));
      } else {
        v = static_cast<T>(rng.uniform(lo, hi));
      }
    }
  }

  friend bool operator==(const Tensor&, const Tensor&) = default;

 private:
  Shape shape_;
  std::vector<std::int64_t> strides_;
  std::vector<T, ArenaAllocator<T>> data_;
};

// Maximum absolute elementwise difference between equal-shaped tensors.
template <typename T>
[[nodiscard]] double max_abs_diff(const Tensor<T>& a, const Tensor<T>& b) {
  CHAINNN_CHECK(a.shape() == b.shape());
  double m = 0.0;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    const double d = std::abs(static_cast<double>(da[i]) -
                              static_cast<double>(db[i]));
    if (d > m) m = d;
  }
  return m;
}

}  // namespace chainnn
