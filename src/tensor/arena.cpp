#include "tensor/arena.hpp"

#include <algorithm>

namespace chainnn {

TensorArena::~TensorArena() {
  // Allocator clients hold the arena by shared_ptr, so reaching the
  // destructor means no live blocks remain — only the freelist.
  trim();
}

void* TensorArena::allocate(std::size_t bytes) {
  {
    MutexLock lock(mu_);
    ++stats_.allocations;
    stats_.bytes_in_use += static_cast<std::int64_t>(bytes);
    stats_.high_water_bytes =
        std::max(stats_.high_water_bytes, stats_.bytes_in_use);
    auto it = freelist_.find(bytes);
    if (it != freelist_.end() && !it->second.empty()) {
      void* block = it->second.back();
      it->second.pop_back();
      ++stats_.reuses;
      stats_.freelist_bytes -= static_cast<std::int64_t>(bytes);
      return block;
    }
  }
  // The OS call happens outside the lock: shard tasks allocating fresh
  // blocks concurrently should not serialize on each other.
  return ::operator new(bytes);
}

void TensorArena::release(void* block, std::size_t bytes) {
  MutexLock lock(mu_);
  freelist_[bytes].push_back(block);
  stats_.bytes_in_use -= static_cast<std::int64_t>(bytes);
  stats_.freelist_bytes += static_cast<std::int64_t>(bytes);
}

void TensorArena::trim() {
  std::unordered_map<std::size_t, std::vector<void*>> drained;
  {
    MutexLock lock(mu_);
    drained.swap(freelist_);
    stats_.freelist_bytes = 0;
  }
  for (auto& [bytes, blocks] : drained)
    for (void* block : blocks) ::operator delete(block);
}

ArenaStats TensorArena::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace chainnn
