#include "baseline/spatial_2d.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace chainnn::baseline {

Spatial2dModel::Spatial2dModel(const Spatial2dConfig& cfg) : cfg_(cfg) {
  CHAINNN_CHECK(cfg_.pe_rows > 0 && cfg_.pe_cols > 0 && cfg_.clock_hz > 0);
}

double Spatial2dModel::peak_ops_per_s() const {
  return 2.0 * static_cast<double>(num_pes()) * cfg_.clock_hz;
}

double Spatial2dModel::efficiency_gops_per_w() const {
  return energy::efficiency_gops_per_w(peak_ops_per_s(), cfg_.power_w);
}

double Spatial2dModel::mapping_utilization(
    const nn::ConvLayerParams& layer) const {
  layer.validate();
  const std::int64_t k = layer.kernel;
  if (k > cfg_.pe_rows) return 0.0;  // kernel does not fit the array rows

  // Row-stationary placement: each logical pass occupies a K-row by
  // W-col region, W = min(E_w, pe_cols); vertical replication packs
  // floor(rows/K) independent passes.
  const std::int64_t vert_sets = cfg_.pe_rows / k;
  const std::int64_t cols_used = std::min(layer.out_width(), cfg_.pe_cols);
  const std::int64_t used = vert_sets * k * cols_used;
  return static_cast<double>(used) /
         static_cast<double>(num_pes());
}

std::int64_t Spatial2dModel::cycles_per_image(
    const nn::ConvLayerParams& layer) const {
  const double util = mapping_utilization(layer);
  CHAINNN_CHECK_MSG(util > 0.0, layer.name << " does not map onto the array");
  const double cycles =
      static_cast<double>(layer.macs_per_image()) /
      (static_cast<double>(num_pes()) * util);
  return static_cast<std::int64_t>(cycles + 0.5);
}

double Spatial2dModel::seconds_per_image(
    const nn::ConvLayerParams& layer) const {
  return static_cast<double>(cycles_per_image(layer)) / cfg_.clock_hz;
}

}  // namespace chainnn::baseline
