// 2D spatial accelerator model (taxonomy class 2 of §III.A, Fig. 2(b);
// Eyeriss [12] is the paper's representative).
//
// PEs form a 2D grid with local scratchpads and an on-chip network; data
// is reused between PEs (row-stationary in Eyeriss), which cuts memory
// traffic at the price of per-PE control and NoC overhead — the paper's
// Table V quotes 11.02k gates per PE vs Chain-NN's 6.51k.
//
// Published figures carried as configuration: 168 PEs (12x14), 250 MHz
// in 65 nm, peak 84.0 GOPS, 450 mW, 181.5 KB SRAM, 245.6 GOPS/W (570.1
// expected when scaled to 28 nm per the paper's footnote).
#pragma once

#include <cstdint>

#include "energy/energy_model.hpp"
#include "nn/conv_params.hpp"

namespace chainnn::baseline {

struct Spatial2dConfig {
  std::int64_t pe_rows = 12;
  std::int64_t pe_cols = 14;
  double clock_hz = 250e6;
  double power_w = 0.450;
  double sram_bytes = 181.5 * 1024;
  double technology_nm = 65.0;
  double published_efficiency_gops_per_w = 245.6;
  double gates_per_pe = 11020.0;
};

class Spatial2dModel {
 public:
  explicit Spatial2dModel(const Spatial2dConfig& cfg = {});

  [[nodiscard]] const Spatial2dConfig& config() const { return cfg_; }

  [[nodiscard]] std::int64_t num_pes() const {
    return cfg_.pe_rows * cfg_.pe_cols;
  }
  [[nodiscard]] double peak_ops_per_s() const;
  [[nodiscard]] double efficiency_gops_per_w() const;

  // Row-stationary mapping utilization: a kernel of height K occupies K
  // PE rows (psum accumulation) and E or fewer columns; sets of kernels
  // replicate until rows/cols run out. 2D placement constraints leave
  // PEs idle when K or E do not divide the array — the reconfigurability
  // cost the paper contrasts with the 1D chain (§III.A.2).
  [[nodiscard]] double mapping_utilization(
      const nn::ConvLayerParams& layer) const;

  [[nodiscard]] std::int64_t cycles_per_image(
      const nn::ConvLayerParams& layer) const;
  [[nodiscard]] double seconds_per_image(
      const nn::ConvLayerParams& layer) const;

 private:
  Spatial2dConfig cfg_;
};

}  // namespace chainnn::baseline
