// Memory-centric accelerator model (taxonomy class 1 of §III.A, Fig. 2(a);
// DaDianNao [10] is the paper's representative).
//
// In this class the processor core is a stack of MAC units with no
// inter-PE data paths: every operand moves between the core and the
// (large, on-chip) memory, so the memory system dominates power. The
// model is calibrated to the published DaDianNao figures the paper's
// Table V / Fig. 10 quote:
//
//   parallelism 288x16 = 4608 MACs, 606 MHz, peak 5584.9 GOPS,
//   power 15.97 W split 1.84 W core (11.52%) / 14.13 W memory (88.48%),
//   36 MB eDRAM.
//
// Per-MAC event counts follow the taxonomy: two operand reads and one
// partial-sum read-modify-write against memory per MAC (no reuse inside
// the core).
#pragma once

#include <cstdint>

#include "energy/energy_model.hpp"
#include "nn/conv_params.hpp"

namespace chainnn::baseline {

struct MemoryCentricConfig {
  std::int64_t mac_units = 288 * 16;
  double clock_hz = 606e6;
  double core_power_w = 1.84;
  double memory_power_w = 14.13;
  double edram_bytes = 36.0 * 1024 * 1024;
  double technology_nm = 28.0;
};

class MemoryCentricModel {
 public:
  explicit MemoryCentricModel(const MemoryCentricConfig& cfg = {});

  [[nodiscard]] const MemoryCentricConfig& config() const { return cfg_; }

  [[nodiscard]] double peak_ops_per_s() const;
  [[nodiscard]] double total_power_w() const;
  [[nodiscard]] double efficiency_gops_per_w() const;
  [[nodiscard]] double core_only_efficiency_gops_per_w() const;

  // Derived per-MAC energies (J) implied by the published power split.
  [[nodiscard]] double core_energy_per_mac_j() const;
  [[nodiscard]] double memory_energy_per_mac_j() const;

  // Simple timing model: MACs / (units x utilization); utilization is
  // limited by how well M*E*E output parallelism covers the MAC stack.
  [[nodiscard]] std::int64_t cycles_per_image(
      const nn::ConvLayerParams& layer) const;
  [[nodiscard]] double seconds_per_image(
      const nn::ConvLayerParams& layer) const;
  // Energy per image: every MAC pays the core plus memory per-MAC cost.
  [[nodiscard]] double energy_per_image_j(
      const nn::ConvLayerParams& layer) const;

 private:
  MemoryCentricConfig cfg_;
};

}  // namespace chainnn::baseline
