#include "baseline/memory_centric.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace chainnn::baseline {

MemoryCentricModel::MemoryCentricModel(const MemoryCentricConfig& cfg)
    : cfg_(cfg) {
  CHAINNN_CHECK(cfg_.mac_units > 0 && cfg_.clock_hz > 0);
}

double MemoryCentricModel::peak_ops_per_s() const {
  return 2.0 * static_cast<double>(cfg_.mac_units) * cfg_.clock_hz;
}

double MemoryCentricModel::total_power_w() const {
  return cfg_.core_power_w + cfg_.memory_power_w;
}

double MemoryCentricModel::efficiency_gops_per_w() const {
  return energy::efficiency_gops_per_w(peak_ops_per_s(), total_power_w());
}

double MemoryCentricModel::core_only_efficiency_gops_per_w() const {
  return energy::efficiency_gops_per_w(peak_ops_per_s(), cfg_.core_power_w);
}

double MemoryCentricModel::core_energy_per_mac_j() const {
  const double macs_per_s =
      static_cast<double>(cfg_.mac_units) * cfg_.clock_hz;
  return cfg_.core_power_w / macs_per_s;
}

double MemoryCentricModel::memory_energy_per_mac_j() const {
  const double macs_per_s =
      static_cast<double>(cfg_.mac_units) * cfg_.clock_hz;
  return cfg_.memory_power_w / macs_per_s;
}

std::int64_t MemoryCentricModel::cycles_per_image(
    const nn::ConvLayerParams& layer) const {
  layer.validate();
  // Output-parallel mapping: up to `mac_units` output sites computed per
  // cycle-tap; utilization drops when the output plane is smaller.
  const std::int64_t sites =
      layer.out_channels * layer.out_height() * layer.out_width();
  const std::int64_t per_wave = std::min<std::int64_t>(cfg_.mac_units, sites);
  const double util = static_cast<double>(per_wave) /
                      static_cast<double>(cfg_.mac_units);
  const double cycles = static_cast<double>(layer.macs_per_image()) /
                        (static_cast<double>(cfg_.mac_units) * util);
  return static_cast<std::int64_t>(cycles + 0.5);
}

double MemoryCentricModel::seconds_per_image(
    const nn::ConvLayerParams& layer) const {
  return static_cast<double>(cycles_per_image(layer)) / cfg_.clock_hz;
}

double MemoryCentricModel::energy_per_image_j(
    const nn::ConvLayerParams& layer) const {
  const double macs = static_cast<double>(layer.macs_per_image());
  return macs * (core_energy_per_mac_j() + memory_energy_per_mac_j());
}

}  // namespace chainnn::baseline
