#include "serve/sweep_driver.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace chainnn::serve {

SweepDriver::SweepDriver(nn::NetworkModel network, SweepOptions options)
    : net_(std::move(network)),
      opts_(std::move(options)),
      cache_(opts_.plan_cache ? opts_.plan_cache
                              : std::make_shared<PlanCache>()) {
  CHAINNN_CHECK_MSG(!net_.conv_layers.empty(),
                    "cannot sweep an empty network");
  CHAINNN_CHECK_MSG(opts_.batch >= 1,
                    "batch must be >= 1, got " << opts_.batch);
}

std::vector<SweepPointResult> SweepDriver::run(
    const std::vector<SweepPointSpec>& points) {
  ServerOptions so;
  so.accelerator.exec_mode = opts_.exec_mode;
  if (opts_.memory) so.accelerator.memory = *opts_.memory;
  so.num_threads = opts_.server_threads;
  so.max_queue = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(points.size()));
  so.fidelity_sample_every_n = opts_.fidelity_sample_every_n;
  so.plan_cache = cache_;
  so.input_seed = opts_.input_seed;
  InferenceServer server(so);

  // One input for the whole sweep, so every point executes the same
  // workload and the per-point figures are directly comparable.
  const nn::ConvLayerParams& first = net_.conv_layers.front();
  Tensor<std::int16_t> input(Shape{opts_.batch, first.in_channels,
                                   first.in_height, first.in_width});
  Rng rng(opts_.input_seed);
  input.fill_random(rng, -64, 64);

  std::vector<SweepPointResult> results;
  results.reserve(points.size());
  for (const SweepPointSpec& point : points) {
    RequestOptions ro;
    ro.array = point.array;
    ro.num_workers = opts_.num_workers;
    ro.inter_layer = opts_.inter_layer;
    // Points are submitted and awaited in turn, so the sweep's cache
    // carry-over between points is deterministic whatever server_threads
    // is.
    InferenceResult res = server.submit(net_, input, ro).get();

    SweepPointResult r;
    r.point = point;
    r.run = std::move(res.run);
    for (const auto& layer : r.run.layers) {
      r.total_cycles += layer.run.stats.total_cycles();
      // Per-point cache deltas come from the primary run's own RunStats,
      // not global cache snapshots: a fidelity replay re-looks-up the
      // point's freshly-inserted plans and would otherwise report
      // always-hitting noise that masks cross-point sharing regressions
      // (design_space's exit-code guard relies on these numbers).
      r.cache_hits +=
          static_cast<std::uint64_t>(layer.run.stats.plan_cache_hits);
      r.cache_misses +=
          static_cast<std::uint64_t>(layer.run.stats.plan_cache_misses);
    }
    r.seconds = r.run.total_seconds();
    r.energy_j = r.run.total_energy_j();
    // The run executed the whole batch (kernel loads already amortized
    // in-run), so fps is direct — NetworkRunResult::fps() extrapolates
    // from a single-image run and would be ~batch-fold off here.
    r.fps = r.seconds == 0.0
                ? 0.0
                : static_cast<double>(opts_.batch) / r.seconds;
    r.fidelity_sampled = res.fidelity.sampled;
    r.fidelity_diverged = res.fidelity.diverged;
    // Server-side stamps: wall_ms covers the execution attempts only,
    // queue_ms the wait before pickup. Folding the wait into wall_ms
    // would charge earlier points' service time to whichever point
    // queued behind them whenever the server is shared.
    r.wall_ms = res.wall_ms;
    r.queue_ms = res.queue_ms;
    results.push_back(std::move(r));
  }
  return results;
}

std::vector<SweepPointSpec> default_sweep_points() {
  // The paper point first, then its clock variants (which share every
  // cached plan with it — the clock is outside the plan key), then the
  // other chain lengths. Ordered so any prefix of >= 2 points already
  // exercises cross-point cache hits.
  std::vector<SweepPointSpec> points;
  points.push_back({"pes-576", dataflow::ArrayShape{}});
  for (const double mhz : {350.0, 900.0}) {
    dataflow::ArrayShape array;
    array.clock_hz = mhz * 1e6;
    points.push_back(
        {"clk-" + std::to_string(static_cast<int>(mhz)), array});
  }
  for (const std::int64_t pes : {144, 288, 1152}) {
    dataflow::ArrayShape array;
    array.num_pes = pes;
    points.push_back({"pes-" + std::to_string(pes), array});
  }
  return points;
}

nn::NetworkModel channel_reduced_proxy(const nn::NetworkModel& net,
                                       std::int64_t scale) {
  CHAINNN_CHECK_MSG(scale >= 1, "scale must be >= 1, got " << scale);
  CHAINNN_CHECK_MSG(!net.conv_layers.empty(),
                    "cannot reduce an empty network");
  nn::NetworkModel proxy;
  proxy.name = net.name + "/" + std::to_string(scale);
  std::int64_t prev_out = net.conv_layers.front().in_channels;
  for (nn::ConvLayerParams layer : net.conv_layers) {
    layer.in_channels = prev_out;
    layer.out_channels =
        std::max<std::int64_t>(1, layer.out_channels / scale);
    if (layer.groups > 1 && (layer.in_channels % layer.groups != 0 ||
                             layer.out_channels % layer.groups != 0))
      layer.groups = 1;
    layer.validate();
    prev_out = layer.out_channels;
    proxy.conv_layers.push_back(std::move(layer));
  }
  return proxy;
}

}  // namespace chainnn::serve
