// InferenceServer — an async request scheduler over the Chain-NN
// execution stack.
//
// submit(network, input | batch, options) returns a std::future; drain
// tasks on the process-wide common::WorkPool (its blocking lane — a
// request may park on a user hook for arbitrarily long) drain a bounded
// queue (submit blocks when the queue is full — backpressure, not
// drops). The server owns no threads: a drain task is scheduled
// whenever the queue grows and fewer than num_threads are live, runs
// requests until the queue is empty, and retires, so an idle server
// costs nothing and a fleet of servers shares one thread cache instead
// of pinning num_threads threads apiece. Every request runs a whole
// network through NetworkRunner on its own accelerator instance; all
// plan lookups of all drains resolve through one shared PlanCache, so a
// request only pays planning cost the first time its (layer, array)
// shape is seen by the process.
//
// Scheduling: the queue is a priority heap, not a FIFO. Higher
// RequestOptions::priority tiers always dequeue first; within a tier the
// order is earliest-deadline-first (requests without a deadline sort
// last), and ties fall back to submission order, so a server driven
// without priorities or deadlines behaves exactly like the old FIFO.
// With ServerOptions::enable_preemption, higher tiers do not just
// overtake the queue — they evict the chip: a running lower-tier request
// is checkpointed at its next layer boundary (chain::RunCheckpoint),
// re-enqueued, and resumed later with a bit-identical final result.
//
// Deadlines and cancellation: RequestOptions::deadline_ms is a wall
// budget from submission. A request whose deadline has already passed
// when a worker picks it up — including a deadline in the past at
// submit — is not executed; mid-run, the deadline (and the optional
// RequestOptions::cancel token) is polled at NetworkRunner's inter-layer
// checkpoints and the run aborts at the next one. Either way the future
// resolves normally with RequestStatus::kCancelled (never an exception),
// and the cancellation is counted in ServerStats. A request that runs to
// completion past its deadline stays kOk but is flagged deadline_missed
// and counted in ServerStats::deadline_misses.
//
// Per-request knobs:
//   * ExecMode — capacity-planning requests run on the analytical fast
//     path, fidelity-sensitive ones cycle-accurately, in one process;
//   * array    — a per-request ArrayShape override, which is what lets
//     SweepDriver push whole design-space points through one server;
//   * num_workers — batch sharding via BatchExecutor inside the request.
//
// Fidelity sampling: with ServerOptions::fidelity_sample_every_n = N,
// every Nth request is re-executed on the *other* engine (analytical ↔
// cycle-accurate) and the two runs are cross-checked — ofmaps, cycles,
// per-level traffic, per-layer power and the whole-run traffic/energy
// rollups must be bit-identical (the PR-2 equivalence guarantee, now
// continuously monitored in production traffic).
// Divergences are recorded in ServerStats and flagged on the result.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chain/network_runner.hpp"
#include "common/thread_annotations.hpp"
#include "energy/energy_model.hpp"
#include "nn/models.hpp"
#include "serve/plan_cache.hpp"

namespace chainnn::serve {

// True when two network runs agree on every figure the engines must
// reproduce identically: per-layer ofmaps/accumulators, total cycles,
// per-level traffic, per-layer power, the final activations, and the
// whole-run traffic/energy/seconds rollups. `why`, if given, receives a
// description of the first mismatch.
[[nodiscard]] bool network_runs_identical(const chain::NetworkRunResult& a,
                                          const chain::NetworkRunResult& b,
                                          std::string* why = nullptr);

// Terminal state of a request. Futures only ever resolve with kOk,
// kCancelled or kRejected (errors resolve the future with the exception
// instead); kFailed appears solely on the InferenceResult handed to
// ServerOptions::completion_hook for a request that threw.
enum class RequestStatus {
  kOk,         // ran to completion
  kCancelled,  // deadline passed or cancel token set before/mid-run
  kRejected,   // admission control refused it at submit (Fleet only);
               // the request never reached a server queue or executed
  kFailed,     // request threw (hook-only; the promise carries the error)
};

struct RequestOptions {
  // Engine for this request; nullopt uses the server accelerator's mode.
  std::optional<chain::ExecMode> exec_mode;
  // Design-point override: run this request on a different chain shape
  // (PE count, clock, ...). Plans are still shared through the cache
  // with every other request whose structural key matches.
  std::optional<dataflow::ArrayShape> array;
  // Batch sharding inside the request (BatchExecutor worker threads).
  std::int64_t num_workers = 1;
  // Scheduling tier: higher values always dequeue before lower ones.
  std::int32_t priority = 0;
  // Wall-clock budget in milliseconds from submission; nullopt = none.
  // Doubles as the EDF key within a priority tier. May be zero or
  // negative (a deadline already in the past): such a request resolves
  // kCancelled without executing.
  std::optional<double> deadline_ms;
  // External cancellation: set to true at any time to abort the request
  // at its next inter-layer checkpoint (or before it starts).
  std::shared_ptr<std::atomic<bool>> cancel;
  // Deadline-feasibility admission control (opt-in, honoured by
  // Fleet::submit; a standalone InferenceServer ignores it — it has no
  // router to size the request against). With admission set and a
  // deadline_ms given, a request whose modelled finish time
  // (backlog + closed-form chain seconds, see
  // dataflow::RequestCycleEstimate::feasible_within) exceeds the
  // deadline on *every* chip is refused at submit: its future resolves
  // immediately with RequestStatus::kRejected, nothing is charged to any
  // backlog, and the request never executes.
  bool admission = false;
  // Modelled execution seconds, stamped by the Fleet router when it
  // dispatches the request; echoed back on InferenceResult so completion
  // hooks can retire the backlog they admitted. Informational here.
  double modelled_seconds = 0.0;
  // Fleet-wide durable id, stamped by Fleet::submit when the fleet
  // journals (0 = not journaled). Unlike request_id — which is
  // per-server and restarts from 1 with the process — the tag is unique
  // across chips and across restarts, so journal records written before
  // a crash still identify requests replayed after it. Echoed on
  // InferenceResult and passed to every journal-facing hook.
  std::uint64_t tag = 0;
  // Resume this request from a recovered checkpoint instead of running
  // it from scratch (Fleet::recover). The first execution attempt adopts
  // the checkpointed layer prefix verbatim; on the chip that captured
  // the checkpoint the final result is bit-identical to an uninterrupted
  // run, on any other chip the ofmaps stay value-identical.
  std::shared_ptr<chain::RunCheckpoint> resume;
  // Forwarded to NetworkRunOptions.
  bool verify_against_golden = false;
  std::vector<chain::InterLayerOp> inter_layer;
  std::function<void(std::int64_t, Tensor<std::int16_t>&)> weight_init;
};

struct FidelityReport {
  bool sampled = false;   // this request was re-run on the other engine
  bool diverged = false;  // cross-check failed (counted in ServerStats)
  std::string detail;     // first mismatch, empty when clean
};

struct InferenceResult {
  std::int64_t request_id = 0;
  // Fleet-wide durable id (RequestOptions::tag), 0 when not journaled.
  std::uint64_t tag = 0;
  RequestStatus status = RequestStatus::kOk;
  chain::ExecMode exec_mode = chain::ExecMode::kAnalytical;
  chain::NetworkRunResult run;  // empty when status == kCancelled
  FidelityReport fidelity;
  // Conv layers fully executed before a mid-run cancellation stopped the
  // request (equals the network size for kOk results; includes layers
  // preserved in a checkpoint for a request cancelled while preempted).
  std::int64_t completed_layers = 0;
  bool deadline_missed = false;  // completed, but after its deadline
  // kCancelled because the deadline passed (as opposed to the cancel
  // token); counted separately in ServerStats::deadline_expired.
  bool deadline_expired = false;
  // Times this request was checkpointed at a layer boundary to yield the
  // worker to a strictly-higher-priority request.
  std::int64_t preemptions = 0;
  // The terminal execution attempt resumed from a checkpoint.
  bool resumed = false;
  std::string chip;              // ServerOptions::name of the executing chip
  double modelled_seconds = 0.0;  // echoed from RequestOptions
  // Modelled seconds already retired through ServerOptions::
  // preemption_hook for layers completed before a preemption: a
  // completion hook retiring backlog must charge only
  // modelled_seconds - modelled_seconds_retired, or a preempted request
  // gets double-retracted (see serve::Fleet).
  double modelled_seconds_retired = 0.0;
  // Wait before the terminal attempt started: submit -> execution start,
  // or for a preempted request (re-)enqueue -> resume start.
  double queue_ms = 0.0;
  // Execution wall time across every attempt (excludes queueing).
  double wall_ms = 0.0;
};

struct ServerStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;  // kOk resolutions
  std::int64_t failed = 0;  // request threw (promise carries the error)
  std::int64_t cancelled = 0;        // kCancelled resolutions
  std::int64_t deadline_misses = 0;  // completed after their deadline
  // Subset of `cancelled` whose cancellation was deadline-caused (the
  // "missed deadline" figure alongside deadline_misses: one counts runs
  // that finished late, the other runs that never finished in time).
  std::int64_t deadline_expired = 0;
  // Times a running request was checkpointed at a layer boundary to
  // yield to a strictly-higher-priority request, and times a checkpointed
  // request was picked back up. resumes <= preemptions always; they are
  // equal once every preempted request has resumed and completed (a
  // request cancelled while checkpointed is a preemption that never
  // resumes).
  std::int64_t preemptions = 0;
  std::int64_t resumes = 0;
  std::int64_t analytical_runs = 0;
  std::int64_t cycle_accurate_runs = 0;
  std::int64_t fidelity_samples = 0;
  std::int64_t fidelity_divergences = 0;
  std::int64_t peak_queue_depth = 0;
  PlanCacheStats plan_cache;
  // The chip's tensor pool (filled on read, like plan_cache).
  ArenaStats arena;
};

// The paper-default accelerator with the analytical engine selected —
// the sensible base config for a serving process (cycle-accurate runs
// are opt-in per request or arrive via fidelity sampling).
[[nodiscard]] inline chain::AcceleratorConfig analytical_accelerator_config() {
  chain::AcceleratorConfig cfg;
  cfg.exec_mode = chain::ExecMode::kAnalytical;
  return cfg;
}

struct ServerOptions {
  // Base accelerator config; requests override exec_mode / array.
  chain::AcceleratorConfig accelerator = analytical_accelerator_config();
  energy::EnergyModel energy = energy::EnergyModel::paper_calibrated();
  // Name stamped on every InferenceResult::chip — lets fleet members be
  // told apart downstream. Empty for a standalone server.
  std::string name;
  // Maximum drain tasks live on the shared WorkPool for this server —
  // the server's concurrency cap (it owns no threads of its own).
  std::int64_t num_threads = 2;
  std::int64_t max_queue = 64;  // submit() blocks while this many queued
  // Re-run every Nth request (by submission id) on the other engine and
  // cross-check. 0 disables sampling.
  std::int64_t fidelity_sample_every_n = 0;
  // Shared plan cache; nullptr creates a server-owned one.
  std::shared_ptr<PlanCache> plan_cache;
  // Tensor pool for every request's working buffers (accumulator and
  // ofmap surfaces, shard slices — see tensor/arena.hpp); nullptr
  // creates a server-owned one, so a request's buffers return to the
  // pool as it completes and the next request reallocates them for
  // free. Semantics-free: results are bit-identical with or without.
  std::shared_ptr<TensorArena> arena;
  // Preemptive scheduling: when a strictly-higher-priority request is
  // queued while a lower-tier request runs, the worker checkpoints the
  // running request at its next inter-layer boundary (RunCheckpoint),
  // re-enqueues it — original id, priority and deadline, so it keeps its
  // place among tier peers — and picks up the urgent request. The
  // re-enqueued request later resumes from the checkpoint; a resumed
  // run's result is bit-identical to an uninterrupted one (ofmaps,
  // cycles, traffic — pinned by tests/serve/test_sched_properties.cpp).
  // Off by default: a non-preemptive server schedules exactly as before.
  // Re-enqueueing a checkpoint may transiently exceed max_queue (a
  // worker cannot block on its own backpressure).
  bool enable_preemption = false;
  // Called (outside the server lock) when a running request is
  // checkpointed, with the modelled chain seconds of the layers this
  // attempt newly completed — capped so the cumulative credit never
  // exceeds RequestOptions::modelled_seconds. The Fleet uses it to give
  // a preempted request credit for completed layers in the chip's
  // modelled backlog ("resume-aware backlog accounting").
  std::function<void(std::int64_t request_id, double retired_seconds)>
      preemption_hook;
  // Called (outside the server lock) right after a preemption banks a
  // checkpoint, with the request's durable tag and the checkpoint
  // itself. The Fleet journals it so a crash between the preemption and
  // the eventual completion can resume from the banked layer prefix
  // instead of replaying from scratch. Fires after preemption_hook.
  std::function<void(std::uint64_t tag, const chain::RunCheckpoint& cp)>
      checkpoint_hook;
  // Seed for inputs generated by the submit(net, batch, ...) overload.
  std::uint64_t input_seed = 7;
  // Called once per request, outside the server lock, immediately
  // *before* its future resolves — so by the time a caller observes the
  // result, the hook has already run (the Fleet relies on this to have
  // retired routed backlog; tests use it to observe completion order).
  // Every outcome fires it: kOk and kCancelled hooks receive the same
  // result the future carries; for a request that threw, the hook
  // receives a stub with status kFailed and only request_id / chip /
  // modelled_seconds populated (the promise carries the error itself).
  // wait_idle() returns only after all hooks have fired.
  std::function<void(const InferenceResult&)> completion_hook;
  // TEST HOOK: mutates the fidelity replay before the cross-check, so
  // tests can prove an injected divergence is caught and counted.
  std::function<void(std::int64_t request_id, chain::NetworkRunResult&)>
      fidelity_mutator_for_test;
};

class InferenceServer {
 public:
  explicit InferenceServer(ServerOptions options = {});
  // Drains the queue (pending requests still execute), then waits for
  // every drain task to retire before releasing the server state.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // Enqueues one request; blocks while the queue is full. The future
  // resolves when a worker finishes the run (or rethrows its error).
  [[nodiscard]] std::future<InferenceResult> submit(nn::NetworkModel net,
                                                    Tensor<std::int16_t> input,
                                                    RequestOptions options = {});
  // Convenience: generates a deterministic random input of `batch`
  // images shaped for the network's first layer.
  [[nodiscard]] std::future<InferenceResult> submit(
      const nn::NetworkModel& net, std::int64_t batch,
      RequestOptions options = {});

  // Blocks until every submitted request has completed.
  void wait_idle();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const std::shared_ptr<PlanCache>& plan_cache() const {
    return cache_;
  }
  // The (shared or server-owned) tensor pool requests allocate from.
  [[nodiscard]] const std::shared_ptr<TensorArena>& arena() const {
    return arena_;
  }
  [[nodiscard]] const ServerOptions& options() const { return opts_; }

 private:
  struct Task;
  struct State;  // queue + counters (hidden so the header stays light)

  // Claims the next request id (inputs are derived from it before the
  // task enters the queue, so ids identify inputs even under concurrent
  // submitters).
  [[nodiscard]] std::int64_t allocate_id();
  // Blocks while the queue is full, then queues the task.
  [[nodiscard]] std::future<InferenceResult> enqueue(Task&& task);
  // Runs the task (resuming its checkpoint when it carries one). Returns
  // nullopt when the run was preempted: the task now carries an updated
  // checkpoint and must be re-enqueued by the caller.
  [[nodiscard]] std::optional<InferenceResult> execute_request(Task& task);
  [[nodiscard]] chain::NetworkRunResult run_network(
      const chain::AcceleratorConfig& cfg, const Task& task,
      const std::function<bool()>& cancel_check,
      const std::function<bool()>& preempt_check = {},
      std::shared_ptr<const chain::RunCheckpoint> resume = nullptr);
  // One drain task: pops and runs requests until the queue is empty,
  // then retires (a later enqueue schedules a fresh drain).
  void drain_loop();

  ServerOptions opts_;
  std::shared_ptr<PlanCache> cache_;
  std::shared_ptr<TensorArena> arena_;
  State* state_ = nullptr;
};

}  // namespace chainnn::serve
