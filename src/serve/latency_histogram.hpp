// LatencyHistogram — lock-cheap fixed log-bucket latency counters.
//
// The gateway records one sample per HTTP request on its hot path, so
// recording must not serialize connections behind a mutex: record() is
// three relaxed atomic increments into fixed geometric buckets (ratio
// 2^(1/4), ~19% worst-case quantile error — well inside the 4x runner
// noise the CI gate tolerates). Reading is snapshot-based: snapshot()
// copies the counters once and answers count/sum/p50/p99/p999 and the
// cumulative Prometheus buckets from the copy, so a concurrent scrape
// sees one consistent-enough view without ever blocking a writer.
//
// Bucket i (0-based) covers latencies up to kMinMs * 2^(i/4); the last
// bucket is the +Inf overflow. quantile() returns the upper bound of the
// bucket containing the requested rank — a conservative (never
// under-reported) figure, which is the right bias for a latency gate.
//
// Thread-safety-annotation exception (documented in README "Static
// analysis & concurrency discipline"): this class deliberately carries
// no CHAINNN_GUARDED_BY annotations. Its counters are synchronized by
// std::atomic with relaxed ordering, not by a mutex, so there is no
// capability for the analysis to track. The relaxed ordering is sound
// here because the counters are independent monotone totals: a snapshot
// may be torn *across* counters (count vs sum sampled an increment
// apart) but never within one, and the quantile math tolerates that by
// design. TSan agrees: atomics are not data races.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace chainnn::serve {

class LatencyHistogram {
 public:
  // 96 finite buckets from 1us: upper bound of the last finite bucket is
  // 0.001ms * 2^(95/4) ~ 14.2 seconds; slower samples land in +Inf.
  static constexpr int kFiniteBuckets = 96;
  static constexpr double kMinMs = 1e-3;

  // Upper bound of finite bucket i in milliseconds.
  [[nodiscard]] static double bucket_upper_ms(int i);

  void record(double ms);

  struct Snapshot {
    std::vector<std::uint64_t> counts;  // kFiniteBuckets + 1 (overflow)
    std::uint64_t count = 0;
    double sum_ms = 0.0;

    // Upper bound of the bucket holding the p-th quantile sample
    // (p in [0, 1]); 0 when the histogram is empty. The overflow bucket
    // reports the last finite bound (nothing tighter is known).
    [[nodiscard]] double quantile_ms(double p) const;
    [[nodiscard]] double p50_ms() const { return quantile_ms(0.50); }
    [[nodiscard]] double p99_ms() const { return quantile_ms(0.99); }
    [[nodiscard]] double p999_ms() const { return quantile_ms(0.999); }
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kFiniteBuckets + 1> counts_{};
  std::atomic<std::uint64_t> count_{0};
  // Total in nanoseconds so the sum stays a lock-free integer; ~584
  // years of accumulated latency before wrap.
  std::atomic<std::uint64_t> sum_ns_{0};
};

}  // namespace chainnn::serve
