// SweepDriver — executed design-space exploration.
//
// The closed-form tables of examples/design_space.cpp rank design points
// by the plan's analytic cycle counts alone. Following the whole-life /
// full-network evaluation methodology of the related accelerator-DSE
// literature, this driver instead *executes* the workload network end to
// end at every design point: each point becomes one request (per-request
// ArrayShape override) through a shared InferenceServer, so
//
//   * ofmaps are actually computed (and optionally fidelity-sampled
//     cycle-accurately) rather than assumed;
//   * per-point latency / energy roll up from per-layer executed runs;
//   * one PlanCache spans all points — points differing only in clock
//     frequency share every plan, and repeated layer shapes hit across
//     the whole sweep. Per-point hit/miss deltas are reported so sweeps
//     can see what the cache saved them.
//
// The cache is semantics-free: a sweep with a shared cache produces
// per-point cycles/energy identical to a cold-cache sweep
// (tests/serve/test_sweep_driver.cpp pins this).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dataflow/array_shape.hpp"
#include "nn/models.hpp"
#include "serve/inference_server.hpp"

namespace chainnn::serve {

struct SweepPointSpec {
  std::string label;
  dataflow::ArrayShape array;
};

struct SweepPointResult {
  SweepPointSpec point;
  chain::NetworkRunResult run;  // the executed network at this point

  // Rolled-up executed figures (whole batch / per image at the point's
  // clock).
  std::int64_t total_cycles = 0;
  double seconds = 0.0;
  double energy_j = 0.0;
  double fps = 0.0;

  // Plan lookups of this point's primary run (from RunStats; fidelity
  // replays are excluded so the numbers reflect cross-point sharing).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  [[nodiscard]] double cache_hit_rate() const {
    return PlanCacheStats{cache_hits, cache_misses, 0}.hit_rate();
  }

  bool fidelity_sampled = false;
  bool fidelity_diverged = false;
  // Host wall time *executing* this point, stamped server-side around
  // the execution attempts only (InferenceResult::wall_ms). Queue wait —
  // time between submission and pickup, which with server_threads > 1 or
  // co-tenant traffic on a shared server belongs to scheduling, not to
  // the point — is reported separately, never folded into wall_ms
  // (tests/serve/test_sweep_driver.cpp pins the split).
  double wall_ms = 0.0;
  double queue_ms = 0.0;
};

struct SweepOptions {
  chain::ExecMode exec_mode = chain::ExecMode::kAnalytical;
  std::int64_t batch = 1;
  std::int64_t num_workers = 1;   // batch sharding inside each point
  std::int64_t server_threads = 1;
  std::int64_t fidelity_sample_every_n = 0;  // forwarded to the server
  // Cache shared across the points (and with any other holder); nullptr
  // creates a driver-owned cache.
  std::shared_ptr<PlanCache> plan_cache;
  std::vector<chain::InterLayerOp> inter_layer;
  std::uint64_t input_seed = 7;
  // Memory hierarchy of the server's accelerator, for sweeps validating
  // design points whose oMemory differs from the paper default (the
  // per-point ArrayShape override covers the chain and kernel-storage
  // axes; memory capacities live in the accelerator config). nullopt
  // keeps the default HierarchyConfig.
  std::optional<mem::HierarchyConfig> memory;
};

class SweepDriver {
 public:
  SweepDriver(nn::NetworkModel network, SweepOptions options = {});

  // Executes `network` at every point, in order, through one
  // InferenceServer. Points are independent requests; the cache carries
  // over between them.
  [[nodiscard]] std::vector<SweepPointResult> run(
      const std::vector<SweepPointSpec>& points);

  [[nodiscard]] const std::shared_ptr<PlanCache>& plan_cache() const {
    return cache_;
  }
  [[nodiscard]] const nn::NetworkModel& network() const { return net_; }

 private:
  nn::NetworkModel net_;
  SweepOptions opts_;
  std::shared_ptr<PlanCache> cache_;
};

// The standard executed-DSE point set: chain lengths around the paper's
// 576-PE instantiation at 700 MHz, plus clock scaling at 576 PEs (clock
// points share every cached plan with the 576-PE length point — the
// clock is not part of the plan key).
[[nodiscard]] std::vector<SweepPointSpec> default_sweep_points();

// Channel-reduced execution proxy: keeps every layer's geometry (H/W/K/
// stride/groups) but divides channel counts by `scale` so full networks
// execute quickly; the first layer's input channels are preserved.
[[nodiscard]] nn::NetworkModel channel_reduced_proxy(
    const nn::NetworkModel& net, std::int64_t scale);

}  // namespace chainnn::serve
