// Router — deadline-aware, model-driven request placement.
//
// Chain-NN's fixed dataflow makes a layer's latency a *closed form* of
// (layer geometry, array shape) — dataflow::estimate_request_cycles over
// a cached ExecutionPlan. The router exploits that: instead of guessing
// from load averages, it computes the modelled chain seconds a request
// will take on every chip of a heterogeneous fleet (plans fetched by
// PlanKey through the shared serve::PlanCache, so sizing is a hash
// lookup after the first sighting of a shape), adds the chip's current
// modelled backlog, and picks the earliest finish time. The estimate is
// exact for the request's chain time — the analytical engine executes
// the very same closed forms — so routing quality degrades only through
// host-side effects (queueing granularity, worker scheduling), not
// through model error.
//
// The router is execution-agnostic: it never runs anything. Fleet calls
// route()/dispatch() at submission and complete() from the per-chip
// completion hook, keeping per-chip backlogs in modelled seconds.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chain/network_runner.hpp"
#include "common/thread_annotations.hpp"
#include "mem/hierarchy.hpp"
#include "nn/models.hpp"
#include "serve/plan_cache.hpp"

namespace chainnn::serve {

// One simulated accelerator of a fleet.
struct ChipSpec {
  std::string name;
  dataflow::ArrayShape array;
  mem::HierarchyConfig memory;
};

// The standard 3-chip heterogeneous fleet: the paper's 576-PE chip plus
// a half-length higher-clocked chip and a double-length lower-clocked
// one, with SRAM capacities scaled to the chain length. No chip
// dominates the others across all layer shapes, so earliest-finish
// routing has real work to do.
[[nodiscard]] std::vector<ChipSpec> default_fleet_chips();

// The conv layers of `net` as NetworkRunner will actually execute them
// for a {batch, C0, in_height, in_width} input: per-layer H/W resolved
// from the flowing activations (pooling in `inter_layer` shrinks the
// next layer's input, exactly as in NetworkRunner::run).
[[nodiscard]] std::vector<nn::ConvLayerParams> resolve_network_layers(
    const nn::NetworkModel& net, std::int64_t batch, std::int64_t in_height,
    std::int64_t in_width, const std::vector<chain::InterLayerOp>& inter_layer);

struct RouteDecision {
  std::size_t chip = 0;
  std::string chip_name;
  // Modelled chain seconds this request needs on the chosen chip.
  double request_seconds = 0.0;
  // Modelled seconds of work already routed to (and not yet completed
  // by) the chosen chip when the decision was taken.
  double backlog_seconds = 0.0;
  [[nodiscard]] double finish_seconds() const {
    return backlog_seconds + request_seconds;
  }
  std::int64_t request_cycles = 0;  // at the chosen chip's clock
  // Admission verdict: false when an admission deadline was given and
  // even the earliest-finish chip cannot make it (the fields above then
  // describe that infeasible-but-best chip; nothing was charged to any
  // backlog). Always true when no admission deadline was asked for.
  bool admitted = true;
};

class Router {
 public:
  Router(std::vector<ChipSpec> chips, std::shared_ptr<PlanCache> cache);

  [[nodiscard]] const std::vector<ChipSpec>& chips() const { return chips_; }

  // Modelled chain time of `batch` images of `net` on chip `chip`.
  // `array_override`, when set, replaces the chip's array (a request
  // pinning its own ArrayShape still gets backlog-aware placement).
  [[nodiscard]] dataflow::RequestCycleEstimate modelled_request_cycles(
      std::size_t chip, const nn::NetworkModel& net, std::int64_t batch,
      std::int64_t in_height, std::int64_t in_width,
      const std::vector<chain::InterLayerOp>& inter_layer,
      const std::optional<dataflow::ArrayShape>& array_override = {}) const;
  [[nodiscard]] double modelled_request_seconds(
      std::size_t chip, const nn::NetworkModel& net, std::int64_t batch,
      std::int64_t in_height, std::int64_t in_width,
      const std::vector<chain::InterLayerOp>& inter_layer,
      const std::optional<dataflow::ArrayShape>& array_override = {}) const;

  // Earliest-finish-time placement over the current backlogs. Pure: the
  // backlog is only charged when the caller commits with dispatch().
  [[nodiscard]] RouteDecision route(
      const nn::NetworkModel& net, std::int64_t batch,
      std::int64_t in_height, std::int64_t in_width,
      const std::vector<chain::InterLayerOp>& inter_layer,
      const std::optional<dataflow::ArrayShape>& array_override = {}) const;

  // route() + dispatch() under one lock hold: concurrent submitters each
  // see the backlog the previous decision committed, so two simultaneous
  // requests cannot both pick the same chip off a stale snapshot (the
  // cycle estimation itself still runs outside the lock). This is what
  // Fleet::submit uses.
  //
  // `admission_deadline_s`, when set, turns the call into admission
  // control: the earliest-finish chip is still chosen, but if even its
  // modelled finish (backlog + closed-form request seconds, see
  // dataflow::RequestCycleEstimate::feasible_within) exceeds the
  // deadline — and earliest-finish minimizes that figure, so every other
  // chip is worse — the decision comes back with admitted == false and
  // NOTHING is dispatched: no backlog charge, no routed count, nothing
  // to retract.
  [[nodiscard]] RouteDecision route_and_dispatch(
      const nn::NetworkModel& net, std::int64_t batch,
      std::int64_t in_height, std::int64_t in_width,
      const std::vector<chain::InterLayerOp>& inter_layer,
      const std::optional<dataflow::ArrayShape>& array_override = {},
      const std::optional<double>& admission_deadline_s = {});

  // Commits a decision: charges its modelled seconds to the chip's
  // backlog and counts the dispatch.
  void dispatch(const RouteDecision& decision);
  // Reverses a committed decision whose request never reached a server
  // queue (the enqueue threw after routing): backlog, cumulative
  // dispatched seconds and the routed count all give the seconds back,
  // so a failed submit cannot permanently skew placement.
  void retract(const RouteDecision& decision);
  // Retires `request_seconds` of backlog from `chip` (completion hook).
  void complete(std::size_t chip, double request_seconds);

  [[nodiscard]] std::vector<double> backlog_seconds() const;
  [[nodiscard]] std::vector<std::int64_t> routed_counts() const;
  // Cumulative modelled seconds ever dispatched per chip — the fleet's
  // modelled busy time, from which a trace's modelled makespan follows.
  [[nodiscard]] std::vector<double> dispatched_seconds() const;

 private:
  // Per-chip request seconds (and total cycles), estimated without
  // touching the backlogs; requires no lock.
  struct Estimates {
    std::vector<dataflow::RequestCycleEstimate> cycles;
    std::vector<double> seconds;
  };
  [[nodiscard]] Estimates estimate_all(
      const nn::NetworkModel& net, std::int64_t batch,
      std::int64_t in_height, std::int64_t in_width,
      const std::vector<chain::InterLayerOp>& inter_layer,
      const std::optional<dataflow::ArrayShape>& array_override) const;
  // Cycle cost of already-resolved layers on one chip; requires no lock.
  [[nodiscard]] dataflow::RequestCycleEstimate cycles_for_resolved(
      std::size_t chip, const std::vector<nn::ConvLayerParams>& layers,
      std::int64_t batch,
      const std::optional<dataflow::ArrayShape>& array_override) const;
  // Picks the earliest finish over backlog_.
  [[nodiscard]] RouteDecision pick_locked(const Estimates& est) const
      CHAINNN_REQUIRES(mu_);

  std::vector<ChipSpec> chips_;
  std::shared_ptr<PlanCache> cache_;
  mutable Mutex mu_;
  std::vector<double> backlog_ CHAINNN_GUARDED_BY(mu_);
  std::vector<double> dispatched_ CHAINNN_GUARDED_BY(mu_);
  std::vector<std::int64_t> routed_ CHAINNN_GUARDED_BY(mu_);
};

}  // namespace chainnn::serve
