// Durable serving state — wire formats over the journal framing.
//
// Everything here rides the record framing of serve/journal.hpp; the
// byte layouts are specified normatively in docs/WIRE_FORMATS.md. Two
// design decisions carry the whole file:
//
//   * ExecutionPlan is a pure function of (layer, array, memory) —
//     dataflow::plan_layer — so plans are serialized as those three
//     inputs and re-planned on load, field-for-field identical to the
//     original (the same purity the PlanCache is built on). That keeps
//     checkpoint records small and the format stable against internal
//     plan-structure changes.
//   * chain::RunCheckpoint is captured only at layer boundaries, where
//     the accelerator holds no in-flight state, so its serialization is
//     exhaustive by construction: the executed layer prefix (results
//     with RunStats / traffic / power verbatim), the boundary
//     activations, and the weight-stream RNG state. Resuming a loaded
//     checkpoint on the same chip is bit-identical to the uninterrupted
//     run; on a different chip the remaining layers re-plan and the
//     ofmaps stay value-identical (the PR-5 guarantee the router's
//     cross-chip handoff leans on).
//
// The journal's request records (SUBMIT / CHECKPOINT / COMPLETE /
// CANCEL / REJECT) and the PlanCache snapshot format live here too, plus
// analyze_journal — the pure replay analysis Fleet::recover() is built
// on (pure so that recovering twice from the same bytes reconstructs the
// same in-flight set).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chain/network_runner.hpp"
#include "nn/models.hpp"
#include "serve/journal.hpp"
#include "serve/plan_cache.hpp"

namespace chainnn::serve {

// --- component serializers (exposed for tests) -----------------------------

void write_layer_params(ByteWriter& w, const nn::ConvLayerParams& p);
[[nodiscard]] nn::ConvLayerParams read_layer_params(ByteReader& r);

void write_array_shape(ByteWriter& w, const dataflow::ArrayShape& a);
[[nodiscard]] dataflow::ArrayShape read_array_shape(ByteReader& r);

void write_hierarchy(ByteWriter& w, const mem::HierarchyConfig& m);
[[nodiscard]] mem::HierarchyConfig read_hierarchy(ByteReader& r);

void write_tensor_i16(ByteWriter& w, const Tensor<std::int16_t>& t);
[[nodiscard]] Tensor<std::int16_t> read_tensor_i16(ByteReader& r);

void write_tensor_i64(ByteWriter& w, const Tensor<std::int64_t>& t);
[[nodiscard]] Tensor<std::int64_t> read_tensor_i64(ByteReader& r);

// --- RunCheckpoint ---------------------------------------------------------

void write_checkpoint(ByteWriter& w, const chain::RunCheckpoint& cp);
// Re-plans each layer's ExecutionPlan via dataflow::plan_layer (pure, so
// the result is field-for-field the plan that was serialized).
[[nodiscard]] chain::RunCheckpoint read_checkpoint(ByteReader& r);

// --- journal request records -----------------------------------------------

// Everything a SUBMIT record persists about a request: enough to replay
// it from scratch after a crash. Wall-clock scheduling state
// (deadline_ms, admission, cancel tokens) is deliberately *not*
// replayed — a deadline is a budget from the original submission
// instant, which does not survive a restart — and weight_init functions
// cannot be persisted (recovered replays draw the default deterministic
// weight stream, the serving common case).
struct SubmitRecord {
  std::uint64_t tag = 0;     // fleet-wide journal id (RequestOptions::tag)
  std::string chip_name;     // chip the router placed the request on
  nn::NetworkModel net;
  Tensor<std::int16_t> input;
  std::int64_t priority = 0;
  std::int64_t num_workers = 1;
  bool verify_against_golden = false;
  std::optional<chain::ExecMode> exec_mode;
  std::optional<dataflow::ArrayShape> array;
  std::vector<chain::InterLayerOp> inter_layer;
};

[[nodiscard]] std::string encode_submit(const SubmitRecord& rec);
[[nodiscard]] SubmitRecord decode_submit(std::string_view payload);

struct CheckpointRecord {
  std::uint64_t tag = 0;
  std::string chip_name;  // chip the checkpoint was captured on
  chain::RunCheckpoint checkpoint;
};

[[nodiscard]] std::string encode_checkpoint_record(const CheckpointRecord&);
// Same payload without materializing a CheckpointRecord (a checkpoint
// owns every banked ofmap tensor, so the struct copy would dwarf the
// encode itself on the preemption hot path).
[[nodiscard]] std::string encode_checkpoint_payload(
    std::uint64_t tag, std::string_view chip_name,
    const chain::RunCheckpoint& cp);
[[nodiscard]] CheckpointRecord decode_checkpoint_record(
    std::string_view payload);

// Why a CANCEL record was written (terminal outcomes that are not kOk).
enum class CancelReason : std::uint8_t {
  kToken = 0,     // cancel token / non-deadline cancellation
  kDeadline = 1,  // deadline expired before or during the run
  kFailed = 2,    // the request threw (promise carried the error)
};

[[nodiscard]] std::string encode_complete(std::uint64_t tag);
[[nodiscard]] std::string encode_cancel(std::uint64_t tag,
                                        CancelReason reason);
[[nodiscard]] std::string encode_reject(std::uint64_t tag);

struct TerminalRecord {
  std::uint64_t tag = 0;
  CancelReason reason = CancelReason::kToken;  // kCancel records only
};
[[nodiscard]] TerminalRecord decode_terminal(std::string_view payload,
                                             RecordType type);

// --- replay analysis -------------------------------------------------------

struct InFlightRequest {
  SubmitRecord submit;
  // Last CHECKPOINT captured before the crash; null = replay from
  // scratch.
  std::shared_ptr<chain::RunCheckpoint> checkpoint;
  std::string checkpoint_chip;  // where it was captured (empty if none)
};

struct JournalAnalysis {
  std::int64_t submits = 0;
  std::int64_t completed = 0;
  std::int64_t cancelled = 0;
  std::int64_t rejected = 0;
  std::int64_t checkpoints = 0;
  std::uint64_t max_tag = 0;
  // SUBMITs with no terminal record in the log, in submission order —
  // exactly the requests a recovery must resubmit.
  std::vector<InFlightRequest> in_flight;
  bool truncated_tail = false;
  std::int64_t checksum_errors = 0;
};

// Pure: the same records always produce the same analysis, which is what
// makes recovery idempotent (recover, complete, journal again — the
// second log analyzes to an empty in-flight set).
[[nodiscard]] JournalAnalysis analyze_journal(const JournalReadResult& log);
// read_journal_file + analyze_journal (throws JournalError on a missing
// file, bad magic or version mismatch).
[[nodiscard]] JournalAnalysis analyze_journal_file(const std::string& path);

// --- PlanCache snapshots ---------------------------------------------------

// Writes every resident entry's (layer, array, memory) inputs, MRU
// first, under the snapshot magic. Returns entries written.
std::int64_t save_plan_cache(const PlanCache& cache, const std::string& path);

struct SnapshotLoadResult {
  std::int64_t entries_loaded = 0;
  bool truncated_tail = false;
  std::int64_t checksum_errors = 0;
};

// Warm-starts `cache` by re-planning each snapshot entry (LRU-first, so
// the rebuilt cache has the same recency order the snapshot captured).
// Torn tails and checksum failures degrade gracefully — the valid prefix
// still warms the cache; version mismatch refuses (JournalError).
SnapshotLoadResult load_plan_cache(PlanCache& cache, const std::string& path);

}  // namespace chainnn::serve
