#include "serve/inference_server.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <sstream>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "common/work_pool.hpp"

namespace chainnn::serve {

namespace {
using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}
}  // namespace

bool network_runs_identical(const chain::NetworkRunResult& a,
                            const chain::NetworkRunResult& b,
                            std::string* why) {
  const auto fail = [why](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  if (a.layers.size() != b.layers.size())
    return fail("layer counts differ");
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    const auto& la = a.layers[i].run;
    const auto& lb = b.layers[i].run;
    const std::string name = a.layers[i].layer.name;
    if (!(la.accumulators == lb.accumulators))
      return fail("accumulators differ at layer " + name);
    if (!(la.ofmaps == lb.ofmaps))
      return fail("ofmaps differ at layer " + name);
    if (la.stats.total_cycles() != lb.stats.total_cycles()) {
      std::ostringstream os;
      os << "cycles differ at layer " << name << ": "
         << la.stats.total_cycles() << " vs " << lb.stats.total_cycles();
      return fail(os.str());
    }
    if (la.traffic.dram_bytes != lb.traffic.dram_bytes ||
        la.traffic.imemory_bytes != lb.traffic.imemory_bytes ||
        la.traffic.kmemory_bytes != lb.traffic.kmemory_bytes ||
        la.traffic.omemory_bytes != lb.traffic.omemory_bytes)
      return fail("traffic differs at layer " + name);
    // Power is a pure function of the plan, so the engines must agree on
    // it bit for bit; comparing it (and the energy rollups below)
    // extends fidelity sampling to the figures capacity planning
    // consumes, not just the tensors.
    const energy::PowerBreakdown& pa = a.layers[i].power;
    const energy::PowerBreakdown& pb = b.layers[i].power;
    if (pa.chain_w != pb.chain_w || pa.kmem_w != pb.kmem_w ||
        pa.imem_w != pb.imem_w || pa.omem_w != pb.omem_w)
      return fail("power differs at layer " + name);
  }
  if (!(a.final_activations == b.final_activations))
    return fail("final activations differ");
  // Whole-run rollups: LayerTraffic totals and the energy/time figures.
  // Per-layer identity already implies these, but the rollups are what
  // dashboards and sweeps actually read, so pin them directly too.
  std::uint64_t traffic_a = 0, traffic_b = 0;
  for (const auto& l : a.layers)
    traffic_a += l.run.traffic.dram_bytes + l.run.traffic.imemory_bytes +
                 l.run.traffic.kmemory_bytes + l.run.traffic.omemory_bytes;
  for (const auto& l : b.layers)
    traffic_b += l.run.traffic.dram_bytes + l.run.traffic.imemory_bytes +
                 l.run.traffic.kmemory_bytes + l.run.traffic.omemory_bytes;
  if (traffic_a != traffic_b) return fail("traffic rollup differs");
  if (a.total_energy_j() != b.total_energy_j())
    return fail("energy rollup differs");
  if (a.total_seconds() != b.total_seconds())
    return fail("seconds rollup differs");
  return true;
}

struct InferenceServer::Task {
  std::int64_t id = 0;
  nn::NetworkModel net;
  Tensor<std::int16_t> input;
  RequestOptions options;
  // Absolute deadline derived from deadline_ms at submission time;
  // nullopt when the request has none.
  std::optional<Clock::time_point> deadline;
  Clock::time_point enqueued;
  std::promise<InferenceResult> promise;
  // Set while the request sits in the queue preempted: the next pickup
  // resumes from here instead of starting over.
  std::shared_ptr<chain::RunCheckpoint> checkpoint;
  // Modelled seconds already credited through preemption_hook for the
  // checkpointed layers; caps further credit and is echoed on the result
  // so completion hooks retire only the remainder.
  double modelled_retired = 0.0;
  std::int64_t preempt_count = 0;
  // Execution wall milliseconds of earlier, preempted attempts: the
  // final result's wall_ms covers every attempt, not just the last.
  double wall_ms_accum = 0.0;

  // Heap order (std::push_heap keeps the max on top, so "less" means
  // "scheduled later"): lower priority tier first loses; within a tier
  // the later deadline loses (EDF, no deadline = latest possible); ties
  // fall back to submission order, which makes a priority-less,
  // deadline-less server exactly the old FIFO.
  [[nodiscard]] static bool scheduled_after(const Task& a, const Task& b) {
    if (a.options.priority != b.options.priority)
      return a.options.priority < b.options.priority;
    const auto da = a.deadline.value_or(Clock::time_point::max());
    const auto db = b.deadline.value_or(Clock::time_point::max());
    if (da != db) return da > db;
    return a.id > b.id;
  }
};

struct InferenceServer::State {
  mutable Mutex mu;
  CondVar space_ready;  // queue dropped below max_queue
  CondVar idle;         // completed caught up to submitted / drains retired
  // Heap ordered by Task::scheduled_after.
  std::vector<Task> queue CHAINNN_GUARDED_BY(mu);

  std::int64_t next_id CHAINNN_GUARDED_BY(mu) = 0;
  std::int64_t in_flight CHAINNN_GUARDED_BY(mu) = 0;
  // Drain tasks live on the shared WorkPool for this server. The
  // invariant a drain's exit protocol maintains: the queue is non-empty
  // only while at least one drain is scheduled (a drain retires under mu
  // in the same critical section that observes the queue empty, so any
  // later enqueue sees the decremented count and schedules afresh).
  std::int64_t scheduled_drains CHAINNN_GUARDED_BY(mu) = 0;
  // Workers that have committed to yield (preempt_check returned true)
  // but have not yet re-enqueued their checkpointed task. Caps
  // simultaneous yields at the number of waiting higher-tier tasks, so
  // one urgent arrival cannot stampede every busy worker into a
  // checkpoint it will immediately resume.
  std::int64_t yielding CHAINNN_GUARDED_BY(mu) = 0;
  ServerStats stats CHAINNN_GUARDED_BY(mu);  // plan_cache filled on read
};

InferenceServer::InferenceServer(ServerOptions options)
    : opts_(std::move(options)),
      cache_(opts_.plan_cache ? opts_.plan_cache
                              : std::make_shared<PlanCache>()),
      arena_(opts_.arena ? opts_.arena : std::make_shared<TensorArena>()),
      state_(new State) {
  CHAINNN_CHECK_MSG(opts_.num_threads >= 1,
                    "num_threads must be >= 1, got " << opts_.num_threads);
  CHAINNN_CHECK_MSG(opts_.max_queue >= 1,
                    "max_queue must be >= 1, got " << opts_.max_queue);
}

InferenceServer::~InferenceServer() {
  {
    // Pending requests still execute (their drains are already
    // scheduled); wait for the last drain to retire so no pool task
    // references this server afterwards. Drains never sleep — they
    // retire the moment the queue is empty — so this terminates.
    MutexLock lock(state_->mu);
    while (!(state_->queue.empty() && state_->in_flight == 0 &&
             state_->scheduled_drains == 0))
      state_->idle.wait(state_->mu);
  }
  delete state_;
}

std::future<InferenceResult> InferenceServer::submit(
    nn::NetworkModel net, Tensor<std::int16_t> input,
    RequestOptions options) {
  CHAINNN_CHECK_MSG(!net.conv_layers.empty(),
                    "cannot serve an empty network");
  CHAINNN_CHECK(input.shape().rank() == 4);
  CHAINNN_CHECK_MSG(options.num_workers >= 1,
                    "num_workers must be >= 1, got " << options.num_workers);

  Task task;
  task.id = allocate_id();
  task.net = std::move(net);
  task.input = std::move(input);
  task.options = std::move(options);
  // A recovered checkpoint enters through the same banked-checkpoint
  // slot a live preemption uses, so the resume path downstream is
  // identical (execute_request adopts the prefix, is_resume counts it).
  task.checkpoint = std::move(task.options.resume);
  return enqueue(std::move(task));
}

std::future<InferenceResult> InferenceServer::submit(
    const nn::NetworkModel& net, std::int64_t batch,
    RequestOptions options) {
  CHAINNN_CHECK_MSG(batch >= 1, "batch must be >= 1, got " << batch);
  CHAINNN_CHECK_MSG(!net.conv_layers.empty(),
                    "cannot serve an empty network");
  CHAINNN_CHECK_MSG(options.num_workers >= 1,
                    "num_workers must be >= 1, got " << options.num_workers);
  // The id is claimed before the input is generated, so the input is a
  // pure function of (input_seed, request_id) even under concurrent
  // submitters — a logged divergence can be reproduced offline from the
  // id alone.
  Task task;
  task.id = allocate_id();
  const nn::ConvLayerParams& first = net.conv_layers.front();
  task.input = Tensor<std::int16_t>(
      Shape{batch, first.in_channels, first.in_height, first.in_width});
  // Rng SplitMix64-expands its seed, so the xor'd id is enough to
  // decorrelate per-request streams.
  Rng rng(opts_.input_seed ^ static_cast<std::uint64_t>(task.id));
  task.input.fill_random(rng, -64, 64);
  task.net = net;
  task.options = std::move(options);
  task.checkpoint = std::move(task.options.resume);
  return enqueue(std::move(task));
}

std::int64_t InferenceServer::allocate_id() {
  MutexLock lock(state_->mu);
  return ++state_->next_id;
}

std::future<InferenceResult> InferenceServer::enqueue(Task&& task) {
  task.enqueued = Clock::now();
  if (task.options.deadline_ms)
    task.deadline =
        task.enqueued + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                *task.options.deadline_ms));
  std::future<InferenceResult> future = task.promise.get_future();
  {
    MutexLock lock(state_->mu);
    // Explicit wait loop (not a predicate lambda) so the guarded reads
    // stay inside this annotated function body.
    while (static_cast<std::int64_t>(state_->queue.size()) >=
           opts_.max_queue)
      state_->space_ready.wait(state_->mu);
    ++state_->stats.submitted;
    state_->queue.push_back(std::move(task));
    std::push_heap(state_->queue.begin(), state_->queue.end(),
                   Task::scheduled_after);
    state_->stats.peak_queue_depth =
        std::max(state_->stats.peak_queue_depth,
                 static_cast<std::int64_t>(state_->queue.size()));
    // Schedule drains up to the concurrency cap. The demand is the
    // queued tasks plus the ones drains are already executing (each
    // in-flight request occupies one drain), so a second drain spins up
    // for a task that arrives while the first is mid-run.
    const std::int64_t demand =
        static_cast<std::int64_t>(state_->queue.size()) + state_->in_flight;
    while (state_->scheduled_drains < std::min(opts_.num_threads, demand)) {
      ++state_->scheduled_drains;
      common::WorkPool::shared().submit_blocking([this] { drain_loop(); });
    }
  }
  return future;
}

void InferenceServer::wait_idle() {
  MutexLock lock(state_->mu);
  while (!(state_->queue.empty() && state_->in_flight == 0))
    state_->idle.wait(state_->mu);
}

ServerStats InferenceServer::stats() const {
  ServerStats s;
  {
    MutexLock lock(state_->mu);
    s = state_->stats;
  }
  s.plan_cache = cache_->stats();
  s.arena = arena_->stats();
  return s;
}

chain::NetworkRunResult InferenceServer::run_network(
    const chain::AcceleratorConfig& cfg, const Task& task,
    const std::function<bool()>& cancel_check,
    const std::function<bool()>& preempt_check,
    std::shared_ptr<const chain::RunCheckpoint> resume) {
  chain::ChainAccelerator acc(cfg, cache_);
  chain::NetworkRunner runner(acc, opts_.energy);
  chain::NetworkRunOptions ro;
  ro.verify_against_golden = task.options.verify_against_golden;
  ro.inter_layer = task.options.inter_layer;
  ro.weight_init = task.options.weight_init;
  ro.num_workers = task.options.num_workers;
  ro.plan_cache = cache_;
  ro.arena = arena_;
  ro.cancel_check = cancel_check;
  ro.preempt_check = preempt_check;
  ro.resume = std::move(resume);
  return runner.run(task.net, task.input, ro);
}

std::optional<InferenceResult> InferenceServer::execute_request(Task& task) {
  InferenceResult out;
  out.request_id = task.id;
  out.tag = task.options.tag;
  out.chip = opts_.name;
  out.modelled_seconds = task.options.modelled_seconds;
  out.resumed = task.checkpoint != nullptr;
  // The layers a previous attempt already banked; credit for this
  // attempt's preemption counts only layers beyond them.
  const std::size_t banked =
      task.checkpoint ? task.checkpoint->layers.size() : 0;

  chain::AcceleratorConfig cfg = opts_.accelerator;
  if (task.options.array) cfg.array = *task.options.array;
  if (task.options.exec_mode) cfg.exec_mode = *task.options.exec_mode;
  out.exec_mode = cfg.exec_mode;

  // Cancellation applies to the primary run only: a fidelity replay
  // exists to cross-check a result that was already produced, so
  // interrupting it would only manufacture false divergences.
  const std::optional<Clock::time_point> deadline = task.deadline;
  const std::shared_ptr<std::atomic<bool>> token = task.options.cancel;
  // The cancel decision and its classification (deadline vs token) must
  // come from the same Clock::now() sample: re-sampling at the catch
  // site would let a token-cancelled request be re-classified
  // deadline_expired when the deadline passes between the check and the
  // catch. The deadline is tested first — when both causes hold at the
  // same instant, the deadline wins (the classification the scheduling
  // oracle in test_sched_properties expects).
  bool deadline_caused_cancel = false;
  std::function<bool()> cancel_check;
  if (deadline || token)
    cancel_check = [deadline, token, &deadline_caused_cancel] {
      const auto now = Clock::now();
      if (deadline && now > *deadline) {
        deadline_caused_cancel = true;
        return true;
      }
      if (token && token->load(std::memory_order_relaxed)) {
        deadline_caused_cancel = false;
        return true;
      }
      return false;
    };
  // Preemption: yield at the next layer boundary when a strictly-higher
  // tier is waiting. The queue is a max-heap, so its front is the next
  // request a free worker would take — but yields are capped at the
  // number of waiting higher-tier tasks: with several workers mid-run
  // on low tiers, a single urgent arrival must evict one of them, not
  // stampede all of them into checkpoints they would immediately
  // resume. A worker whose check returns true is committed (the run
  // throws RunPreempted unconditionally) and stays counted in
  // `yielding` until its checkpoint is re-enqueued.
  std::function<bool()> preempt_check;
  if (opts_.enable_preemption)
    preempt_check = [this, pri = task.options.priority] {
      MutexLock lock(state_->mu);
      // Fast path: the heap front is the highest-priority waiter, so a
      // front at or below this tier means nothing could preempt.
      if (state_->queue.empty() ||
          state_->queue.front().options.priority <= pri)
        return false;
      // Count only *live* higher-tier waiters: a queued request whose
      // cancel token is already set or whose deadline has already passed
      // resolves at pickup without touching the chip, so checkpointing a
      // healthy run to make room for it would be pure wasted work.
      const auto now = Clock::now();
      std::int64_t higher = 0;
      for (const Task& queued : state_->queue) {
        if (queued.options.priority <= pri) continue;
        if (queued.options.cancel &&
            queued.options.cancel->load(std::memory_order_relaxed))
          continue;
        if (queued.deadline && now > *queued.deadline) continue;
        ++higher;
      }
      if (higher <= state_->yielding) return false;
      ++state_->yielding;
      return true;
    };

  const auto t0 = Clock::now();
  out.queue_ms = ms_between(task.enqueued, t0);
  try {
    out.run = run_network(cfg, task, cancel_check, preempt_check,
                          task.checkpoint);
    out.completed_layers =
        static_cast<std::int64_t>(out.run.layers.size());
  } catch (const chain::RunCancelled& cancelled) {
    out.status = RequestStatus::kCancelled;
    out.completed_layers = cancelled.completed_layers();
    // Classified by the cancel_check sample that aborted the run, not a
    // fresh Clock::now() — exactly one terminal deadline classification
    // per request.
    out.deadline_expired = deadline_caused_cancel;
    out.run = chain::NetworkRunResult{};
  } catch (const chain::RunPreempted& preempted) {
    // The yield committed by preempt_check is complete: release the
    // slot here — before the user-supplied hook below runs — so a
    // throwing preemption_hook cannot leak the counter and silently
    // disable preemption for the rest of the server's life.
    {
      MutexLock lock(state_->mu);
      --state_->yielding;
    }
    // This attempt's execution time must survive the re-enqueue, or the
    // final result's wall_ms would only cover the last attempt.
    task.wall_ms_accum += ms_between(t0, Clock::now());
    // Bank the checkpoint on the task and retire the modelled seconds of
    // the layers this attempt newly completed — capped so cumulative
    // credit never exceeds what the router charged at dispatch (a later
    // completion or cancellation retires exactly the remainder, so the
    // request is never double-retracted).
    const std::shared_ptr<chain::RunCheckpoint>& cp = preempted.checkpoint();
    double newly = 0.0;
    for (std::size_t i = banked; i < cp->layers.size(); ++i)
      newly += cp->layers[i].run.seconds();
    const double headroom = std::max(
        0.0, task.options.modelled_seconds - task.modelled_retired);
    const double retired = std::min(newly, headroom);
    task.modelled_retired += retired;
    task.checkpoint = cp;
    ++task.preempt_count;
    if (opts_.preemption_hook) opts_.preemption_hook(task.id, retired);
    // Journal the banked prefix (after the backlog credit, so a replay
    // from this checkpoint observes the same accounting order).
    if (opts_.checkpoint_hook && task.options.tag != 0)
      opts_.checkpoint_hook(task.options.tag, *cp);
    return std::nullopt;
  }
  out.preemptions = task.preempt_count;
  out.modelled_seconds_retired = task.modelled_retired;
  const auto t1 = Clock::now();
  out.wall_ms = task.wall_ms_accum + ms_between(t0, t1);
  if (out.status == RequestStatus::kOk && deadline && t1 > *deadline)
    out.deadline_missed = true;

  const std::int64_t n = opts_.fidelity_sample_every_n;
  if (out.status == RequestStatus::kOk && n > 0 && task.id % n == 0) {
    // Replay on the other engine and cross-check. NetworkRunner re-draws
    // the same deterministic weights and the input tensor is the stored
    // one, so the two runs are comparable bit for bit.
    chain::AcceleratorConfig replay_cfg = cfg;
    replay_cfg.exec_mode = cfg.exec_mode == chain::ExecMode::kAnalytical
                               ? chain::ExecMode::kCycleAccurate
                               : chain::ExecMode::kAnalytical;
    chain::NetworkRunResult replay = run_network(replay_cfg, task, {});
    if (opts_.fidelity_mutator_for_test)
      opts_.fidelity_mutator_for_test(task.id, replay);
    out.fidelity.sampled = true;
    out.fidelity.diverged =
        !network_runs_identical(out.run, replay, &out.fidelity.detail);
  }
  return out;
}

void InferenceServer::drain_loop() {
  MutexLock lock(state_->mu);
  for (;;) {
    if (state_->queue.empty()) {
      // Retire. The decrement happens in the same critical section that
      // observed the queue empty, so an enqueue can never race a drain
      // out of existence: it either sees the task-less queue before the
      // push (and the push's spawn loop schedules afresh against the
      // decremented count) or the still-counted drain picks its task up
      // on the next iteration. The idle signal is for the destructor,
      // which waits for the drain count to hit zero before releasing
      // the server state a drain dereferences.
      --state_->scheduled_drains;
      state_->idle.notify_all();
      return;
    }
    std::pop_heap(state_->queue.begin(), state_->queue.end(),
                  Task::scheduled_after);
    Task task = std::move(state_->queue.back());
    state_->queue.pop_back();
    ++state_->in_flight;
    lock.Unlock();
    state_->space_ready.notify_one();

    // A request already past its deadline (or cancelled) when it reaches
    // the front — including a deadline in the past at submit, and a
    // checkpointed request cancelled before its resume — resolves
    // kCancelled without touching the execution stack (the checkpointed
    // layers still count as completed work on the result).
    // One Clock::now() sample decides both whether the request is dead
    // on arrival and how the cancellation is classified: a token-set
    // request whose deadline passes between two separate samples must
    // not flip to deadline_expired. Deadline wins when both causes hold
    // at the sampled instant (matching the mid-run classification).
    const auto pickup_now = Clock::now();
    const bool deadline_dead_on_arrival =
        task.deadline && pickup_now > *task.deadline;
    const bool dead_on_arrival =
        deadline_dead_on_arrival ||
        (task.options.cancel &&
         task.options.cancel->load(std::memory_order_relaxed));
    const bool is_resume = !dead_on_arrival && task.checkpoint != nullptr;

    InferenceResult result;
    std::exception_ptr error;
    bool preempted = false;
    if (dead_on_arrival) {
      result.request_id = task.id;
      result.tag = task.options.tag;
      result.chip = opts_.name;
      result.modelled_seconds = task.options.modelled_seconds;
      result.modelled_seconds_retired = task.modelled_retired;
      result.preemptions = task.preempt_count;
      result.completed_layers =
          task.checkpoint
              ? static_cast<std::int64_t>(task.checkpoint->layers.size())
              : 0;
      result.status = RequestStatus::kCancelled;
      result.deadline_expired = deadline_dead_on_arrival;
      result.queue_ms = ms_between(task.enqueued, pickup_now);
      // A preempted request cancelled at pickup already executed (and
      // banked) attempts; dropping them would break the invariant that
      // wall_ms covers every execution attempt.
      result.wall_ms = task.wall_ms_accum;
    } else {
      try {
        std::optional<InferenceResult> maybe = execute_request(task);
        if (maybe) {
          result = std::move(*maybe);
        } else {
          preempted = true;
        }
      } catch (...) {
        error = std::current_exception();
      }
    }

    lock.Lock();
    if (is_resume) ++state_->stats.resumes;
    if (preempted) {
      // Give the checkpointed request its queue slot back (bypassing
      // backpressure — a drain cannot block on its own submit gate).
      ++state_->stats.preemptions;
      // Restart the queue clock: queue_ms on the final attempt measures
      // the wait since this re-enqueue, not the request's own earlier
      // execution time (which wall_ms_accum already carries).
      task.enqueued = Clock::now();
      state_->queue.push_back(std::move(task));
      std::push_heap(state_->queue.begin(), state_->queue.end(),
                     Task::scheduled_after);
      state_->stats.peak_queue_depth =
          std::max(state_->stats.peak_queue_depth,
                   static_cast<std::int64_t>(state_->queue.size()));
      --state_->in_flight;
      // The queue just grew: top drains back up to the cap (this drain
      // continues — by now it may pick up the urgent request itself).
      const std::int64_t demand =
          static_cast<std::int64_t>(state_->queue.size()) +
          state_->in_flight;
      while (state_->scheduled_drains <
             std::min(opts_.num_threads, demand)) {
        ++state_->scheduled_drains;
        common::WorkPool::shared().submit_blocking([this] { drain_loop(); });
      }
      continue;
    }
    if (error) {
      ++state_->stats.failed;
    } else if (result.status == RequestStatus::kCancelled) {
      ++state_->stats.cancelled;
      if (result.deadline_expired) ++state_->stats.deadline_expired;
    } else {
      ++state_->stats.completed;
      if (result.exec_mode == chain::ExecMode::kAnalytical)
        ++state_->stats.analytical_runs;
      else
        ++state_->stats.cycle_accurate_runs;
      if (result.deadline_missed) ++state_->stats.deadline_misses;
      if (result.fidelity.sampled) {
        ++state_->stats.fidelity_samples;
        if (result.fidelity.diverged) ++state_->stats.fidelity_divergences;
      }
    }
    lock.Unlock();
    // Fulfill outside the lock: future continuations must not run under
    // the server mutex. The hook runs *before* the promise resolves, so
    // by the time a caller observes the result the routed backlog has
    // already been retired (and test observers have recorded the
    // completion).
    if (opts_.completion_hook) {
      if (error) {
        // The promise carries the error; the hook still needs the id
        // and routed accounting to retire the request.
        InferenceResult failed;
        failed.request_id = task.id;
        failed.tag = task.options.tag;
        failed.chip = opts_.name;
        failed.modelled_seconds = task.options.modelled_seconds;
        failed.modelled_seconds_retired = task.modelled_retired;
        failed.status = RequestStatus::kFailed;
        opts_.completion_hook(failed);
      } else {
        opts_.completion_hook(result);
      }
    }
    if (error) {
      task.promise.set_exception(error);
    } else {
      task.promise.set_value(std::move(result));
    }
    // The request only stops counting as in-flight once its hook has run
    // and its future resolved, so wait_idle() => every hook has fired
    // (the Fleet relies on this to read fully-retired backlogs).
    lock.Lock();
    --state_->in_flight;
    if (state_->queue.empty() && state_->in_flight == 0)
      state_->idle.notify_all();
  }
}

}  // namespace chainnn::serve
