#include "serve/inference_server.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace chainnn::serve {

bool network_runs_identical(const chain::NetworkRunResult& a,
                            const chain::NetworkRunResult& b,
                            std::string* why) {
  const auto fail = [why](const std::string& msg) {
    if (why) *why = msg;
    return false;
  };
  if (a.layers.size() != b.layers.size())
    return fail("layer counts differ");
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    const auto& la = a.layers[i].run;
    const auto& lb = b.layers[i].run;
    const std::string name = a.layers[i].layer.name;
    if (!(la.accumulators == lb.accumulators))
      return fail("accumulators differ at layer " + name);
    if (!(la.ofmaps == lb.ofmaps))
      return fail("ofmaps differ at layer " + name);
    if (la.stats.total_cycles() != lb.stats.total_cycles()) {
      std::ostringstream os;
      os << "cycles differ at layer " << name << ": "
         << la.stats.total_cycles() << " vs " << lb.stats.total_cycles();
      return fail(os.str());
    }
    if (la.traffic.dram_bytes != lb.traffic.dram_bytes ||
        la.traffic.imemory_bytes != lb.traffic.imemory_bytes ||
        la.traffic.kmemory_bytes != lb.traffic.kmemory_bytes ||
        la.traffic.omemory_bytes != lb.traffic.omemory_bytes)
      return fail("traffic differs at layer " + name);
  }
  if (!(a.final_activations == b.final_activations))
    return fail("final activations differ");
  return true;
}

struct InferenceServer::Task {
  std::int64_t id = 0;
  nn::NetworkModel net;
  Tensor<std::int16_t> input;
  RequestOptions options;
  std::promise<InferenceResult> promise;
};

struct InferenceServer::State {
  mutable std::mutex mu;
  std::condition_variable work_ready;   // queue gained a task / stopping
  std::condition_variable space_ready;  // queue dropped below max_queue
  std::condition_variable idle;         // completed caught up to submitted
  std::deque<Task> queue;
  std::vector<std::thread> threads;
  bool stop = false;

  std::int64_t next_id = 0;
  std::int64_t in_flight = 0;
  ServerStats stats;  // plan_cache filled on read
};

InferenceServer::InferenceServer(ServerOptions options)
    : opts_(std::move(options)),
      cache_(opts_.plan_cache ? opts_.plan_cache
                              : std::make_shared<PlanCache>()),
      state_(new State) {
  CHAINNN_CHECK_MSG(opts_.num_threads >= 1,
                    "num_threads must be >= 1, got " << opts_.num_threads);
  CHAINNN_CHECK_MSG(opts_.max_queue >= 1,
                    "max_queue must be >= 1, got " << opts_.max_queue);
  for (std::int64_t t = 0; t < opts_.num_threads; ++t)
    state_->threads.emplace_back([this] { worker_loop(); });
}

InferenceServer::~InferenceServer() {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->stop = true;
  }
  state_->work_ready.notify_all();
  for (std::thread& t : state_->threads) t.join();
  delete state_;
}

std::future<InferenceResult> InferenceServer::submit(
    nn::NetworkModel net, Tensor<std::int16_t> input,
    RequestOptions options) {
  CHAINNN_CHECK_MSG(!net.conv_layers.empty(),
                    "cannot serve an empty network");
  CHAINNN_CHECK(input.shape().rank() == 4);
  CHAINNN_CHECK_MSG(options.num_workers >= 1,
                    "num_workers must be >= 1, got " << options.num_workers);

  Task task;
  task.id = allocate_id();
  task.net = std::move(net);
  task.input = std::move(input);
  task.options = std::move(options);
  return enqueue(std::move(task));
}

std::future<InferenceResult> InferenceServer::submit(
    const nn::NetworkModel& net, std::int64_t batch,
    RequestOptions options) {
  CHAINNN_CHECK_MSG(batch >= 1, "batch must be >= 1, got " << batch);
  CHAINNN_CHECK_MSG(!net.conv_layers.empty(),
                    "cannot serve an empty network");
  CHAINNN_CHECK_MSG(options.num_workers >= 1,
                    "num_workers must be >= 1, got " << options.num_workers);
  // The id is claimed before the input is generated, so the input is a
  // pure function of (input_seed, request_id) even under concurrent
  // submitters — a logged divergence can be reproduced offline from the
  // id alone.
  Task task;
  task.id = allocate_id();
  const nn::ConvLayerParams& first = net.conv_layers.front();
  task.input = Tensor<std::int16_t>(
      Shape{batch, first.in_channels, first.in_height, first.in_width});
  // Rng SplitMix64-expands its seed, so the xor'd id is enough to
  // decorrelate per-request streams.
  Rng rng(opts_.input_seed ^ static_cast<std::uint64_t>(task.id));
  task.input.fill_random(rng, -64, 64);
  task.net = net;
  task.options = std::move(options);
  return enqueue(std::move(task));
}

std::int64_t InferenceServer::allocate_id() {
  std::lock_guard<std::mutex> lock(state_->mu);
  return ++state_->next_id;
}

std::future<InferenceResult> InferenceServer::enqueue(Task&& task) {
  std::future<InferenceResult> future = task.promise.get_future();
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->space_ready.wait(lock, [this] {
    return static_cast<std::int64_t>(state_->queue.size()) <
           opts_.max_queue;
  });
  ++state_->stats.submitted;
  state_->queue.push_back(std::move(task));
  state_->stats.peak_queue_depth =
      std::max(state_->stats.peak_queue_depth,
               static_cast<std::int64_t>(state_->queue.size()));
  lock.unlock();
  state_->work_ready.notify_one();
  return future;
}

void InferenceServer::wait_idle() {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->idle.wait(lock, [this] {
    return state_->queue.empty() && state_->in_flight == 0;
  });
}

ServerStats InferenceServer::stats() const {
  ServerStats s;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    s = state_->stats;
  }
  s.plan_cache = cache_->stats();
  return s;
}

chain::NetworkRunResult InferenceServer::run_network(
    const chain::AcceleratorConfig& cfg, const Task& task) {
  chain::ChainAccelerator acc(cfg, cache_);
  chain::NetworkRunner runner(acc, opts_.energy);
  chain::NetworkRunOptions ro;
  ro.verify_against_golden = task.options.verify_against_golden;
  ro.inter_layer = task.options.inter_layer;
  ro.weight_init = task.options.weight_init;
  ro.num_workers = task.options.num_workers;
  ro.plan_cache = cache_;
  return runner.run(task.net, task.input, ro);
}

InferenceResult InferenceServer::execute_request(Task& task) {
  InferenceResult out;
  out.request_id = task.id;

  chain::AcceleratorConfig cfg = opts_.accelerator;
  if (task.options.array) cfg.array = *task.options.array;
  if (task.options.exec_mode) cfg.exec_mode = *task.options.exec_mode;
  out.exec_mode = cfg.exec_mode;

  const auto t0 = std::chrono::steady_clock::now();
  out.run = run_network(cfg, task);
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

  const std::int64_t n = opts_.fidelity_sample_every_n;
  if (n > 0 && task.id % n == 0) {
    // Replay on the other engine and cross-check. NetworkRunner re-draws
    // the same deterministic weights and the input tensor is the stored
    // one, so the two runs are comparable bit for bit.
    chain::AcceleratorConfig replay_cfg = cfg;
    replay_cfg.exec_mode = cfg.exec_mode == chain::ExecMode::kAnalytical
                               ? chain::ExecMode::kCycleAccurate
                               : chain::ExecMode::kAnalytical;
    chain::NetworkRunResult replay = run_network(replay_cfg, task);
    if (opts_.fidelity_mutator_for_test)
      opts_.fidelity_mutator_for_test(task.id, replay);
    out.fidelity.sampled = true;
    out.fidelity.diverged =
        !network_runs_identical(out.run, replay, &out.fidelity.detail);
  }
  return out;
}

void InferenceServer::worker_loop() {
  std::unique_lock<std::mutex> lock(state_->mu);
  for (;;) {
    state_->work_ready.wait(lock, [this] {
      return state_->stop || !state_->queue.empty();
    });
    // Drain-then-stop: pending requests still execute after stop so
    // their futures always resolve.
    if (state_->queue.empty()) {
      if (state_->stop) return;
      continue;
    }
    Task task = std::move(state_->queue.front());
    state_->queue.pop_front();
    ++state_->in_flight;
    lock.unlock();
    state_->space_ready.notify_one();

    InferenceResult result;
    std::exception_ptr error;
    try {
      result = execute_request(task);
    } catch (...) {
      error = std::current_exception();
    }

    lock.lock();
    --state_->in_flight;
    if (error) {
      ++state_->stats.failed;
    } else {
      ++state_->stats.completed;
      if (result.exec_mode == chain::ExecMode::kAnalytical)
        ++state_->stats.analytical_runs;
      else
        ++state_->stats.cycle_accurate_runs;
      if (result.fidelity.sampled) {
        ++state_->stats.fidelity_samples;
        if (result.fidelity.diverged) ++state_->stats.fidelity_divergences;
      }
    }
    if (state_->queue.empty() && state_->in_flight == 0)
      state_->idle.notify_all();
    lock.unlock();
    // Fulfill outside the lock: future continuations must not run under
    // the server mutex.
    if (error) {
      task.promise.set_exception(error);
    } else {
      task.promise.set_value(std::move(result));
    }
    lock.lock();
  }
}

}  // namespace chainnn::serve
