// Fleet — multi-chip serving with deadline-aware, model-driven routing.
//
// A Fleet owns one InferenceServer per simulated chip (heterogeneous
// ArrayShapes — by default the 3-chip set of default_fleet_chips()) and
// a Router that places every submitted request on the chip with the
// earliest *modelled* finish time: the request's closed-form chain
// seconds on each chip (via the shared PlanCache) plus the chip's
// modelled backlog of already-routed work. All chips share one
// PlanCache, so a layer shape is planned once per (geometry, array)
// fleet-wide.
//
// Routing only chooses *where* a request runs; execution identity is
// untouched — the same request produces a bit-identical
// NetworkRunResult whether it is submitted to the fleet or run directly
// on the chosen chip's configuration (tests/serve/test_fleet.cpp pins
// this, with fidelity sampling cross-checking both engines on top).
//
// Priority, deadlines and cancellation are per-chip InferenceServer
// behaviour (see inference_server.hpp): the fleet forwards
// RequestOptions verbatim, and FleetStats aggregates the per-chip
// deadline-miss / cancellation accounting next to the routing counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "serve/durable.hpp"
#include "serve/inference_server.hpp"
#include "serve/journal.hpp"
#include "serve/router.hpp"

namespace chainnn::serve {

struct FleetOptions {
  // Chips of the fleet; empty selects default_fleet_chips(). Each chip's
  // server runs with the base accelerator config below, re-shaped to the
  // chip's array and memory.
  std::vector<ChipSpec> chips;
  chain::AcceleratorConfig accelerator = analytical_accelerator_config();
  energy::EnergyModel energy = energy::EnergyModel::paper_calibrated();
  std::int64_t threads_per_chip = 1;
  std::int64_t max_queue_per_chip = 64;
  // Forwarded to every chip server (each samples its own Nth request).
  std::int64_t fidelity_sample_every_n = 0;
  // Preemptive scheduling on every chip server (see
  // ServerOptions::enable_preemption): a strictly-higher-priority
  // arrival checkpoints the running lower-tier request at its next layer
  // boundary. The fleet wires the per-chip preemption hooks so a
  // preempted request's completed layers are retired from the chip's
  // modelled backlog immediately ("resume-aware backlog accounting") and
  // the completion hook retires only the remainder.
  bool preemption = false;
  // Fleet-wide plan cache; nullptr creates a fleet-owned one.
  std::shared_ptr<PlanCache> plan_cache;
  // Base seed for generated inputs; each chip decorrelates it so two
  // chips never draw identical request inputs from equal local ids.
  std::uint64_t input_seed = 7;
  // Durable request journal (see serve/journal.hpp). When set, every
  // submit is assigned a fleet-wide tag and journaled (SUBMIT with the
  // routed chip and the concrete input tensor) before it reaches a chip
  // queue; every preemption journals its checkpoint; every outcome
  // journals a terminal record (COMPLETE / CANCEL / REJECT). A later
  // process can then Fleet::recover() the log: requests with a terminal
  // record are done, the rest are replayed — from their last journaled
  // checkpoint when one exists. nullptr = no journaling (zero overhead).
  std::shared_ptr<Journal> journal;
};

struct FleetChipStats {
  std::string name;
  ServerStats server;
  std::int64_t routed = 0;          // requests placed on this chip
  double backlog_seconds = 0.0;     // modelled work still queued/running
  double dispatched_seconds = 0.0;  // cumulative modelled busy time
};

struct FleetStats {
  std::vector<FleetChipStats> chips;
  // Sums over the chips.
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t cancelled = 0;
  std::int64_t deadline_misses = 0;
  std::int64_t deadline_expired = 0;  // cancelled because the deadline passed
  std::int64_t preemptions = 0;
  std::int64_t resumes = 0;
  std::int64_t fidelity_samples = 0;
  std::int64_t fidelity_divergences = 0;
  // Requests refused by admission control at submit (RequestOptions::
  // admission + deadline infeasible on every chip). Fleet-level: a
  // rejected request never reaches a chip server, so it appears in no
  // per-chip counter.
  std::int64_t rejected = 0;
  // Durability counters (all zero for a fleet without a journal).
  JournalStats journal;                     // the fleet journal's appends
  std::int64_t recovered_requests = 0;      // replayed by recover()
  // Recovered checkpoints resumed on a different chip than the one that
  // captured them (the original chip is gone from this fleet). The
  // resumed run re-plans the remaining layers for the new chip: ofmaps
  // stay value-identical, cycles are the new chip's.
  std::int64_t checkpoint_handoffs = 0;
  PlanCacheStats plan_cache;
  // Tensor-pool figures summed over the chips (each chip owns its own
  // arena; high_water_bytes sums the per-chip peaks, an upper bound on
  // the fleet's simultaneous peak).
  ArenaStats arena;

  // Deadlines not served in time, both ways a deadline can be lost:
  // completed-but-late plus cancelled-because-expired. The figure the
  // admission-control benchmark gate compares (admission on must never
  // increase it).
  [[nodiscard]] std::int64_t missed_deadlines() const {
    return deadline_misses + deadline_expired;
  }

  // Modelled makespan of everything dispatched so far: the busiest
  // chip's modelled busy time (chips run in parallel). The figure a
  // single chip would need is the *sum* of that chip's modelled seconds
  // over all requests — see Router::modelled_request_seconds.
  [[nodiscard]] double modelled_makespan_seconds() const;
};

// What Fleet::recover() did with a journal: the log's totals, the
// requests it replayed, and a future per replay so the caller can await
// (and check) every recovered result.
struct RecoveryReport {
  std::int64_t journal_submits = 0;   // SUBMIT records in the log
  std::int64_t journal_completed = 0; // terminal COMPLETE records
  std::int64_t journal_cancelled = 0; // terminal CANCEL records
  std::int64_t journal_rejected = 0;  // terminal REJECT records
  std::int64_t replayed = 0;          // in-flight requests resubmitted
  std::int64_t resumed_from_checkpoint = 0;  // replays with a checkpoint
  std::int64_t checkpoint_handoffs = 0;  // resumed on a different chip
  std::int64_t plan_cache_entries_loaded = 0;  // snapshot warm-start
  bool truncated_tail = false;   // the log ended in a torn record
  std::int64_t checksum_errors = 0;
  // One (tag, future) per replayed request, in original submission
  // order. Tags are the journaled ones, so results can be matched
  // against pre-crash expectations.
  std::vector<std::pair<std::uint64_t, std::future<InferenceResult>>> futures;
};

class Fleet {
 public:
  explicit Fleet(FleetOptions options = {});

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  // Routes the request to the chip with the earliest modelled finish
  // time and enqueues it there (blocking on that chip's backpressure).
  // The resolved InferenceResult carries the chip's name and the
  // modelled seconds the router charged. With RequestOptions::admission
  // and a deadline_ms, a request infeasible on every chip is refused
  // instead: the future resolves immediately with
  // RequestStatus::kRejected (request never executes, nothing charged).
  [[nodiscard]] std::future<InferenceResult> submit(
      nn::NetworkModel net, Tensor<std::int16_t> input,
      RequestOptions options = {});
  // Convenience: deterministic random input of `batch` images (shaped by
  // the network's first layer), generated by the chosen chip's server.
  [[nodiscard]] std::future<InferenceResult> submit(
      const nn::NetworkModel& net, std::int64_t batch,
      RequestOptions options = {});

  // The decision submit(net, batch, options) would take right now,
  // without committing it (for tests and capacity planning).
  [[nodiscard]] RouteDecision plan_route(
      const nn::NetworkModel& net, std::int64_t batch,
      const RequestOptions& options = {}) const;

  // Replays a crashed fleet's journal into this one. Requests with a
  // terminal record are left alone; every other SUBMIT is resubmitted in
  // its original order — resuming from its last journaled checkpoint
  // when one exists. A replay is pinned to the chip that held it before
  // the crash (checkpoint chip first, routed chip otherwise) so a
  // same-topology recovery reproduces the pre-crash results bit for bit
  // (ofmaps AND cycles); when that chip is not part of this fleet the
  // request falls back to normal earliest-finish routing — for a
  // checkpointed request that is a cross-chip handoff (counted in
  // FleetStats::checkpoint_handoffs): remaining layers re-plan for the
  // new chip and the final ofmaps stay value-identical.
  //
  // `plan_snapshot_path`, when non-empty, first warm-starts the shared
  // PlanCache from a save_plan_cache() snapshot.
  //
  // If this fleet journals (FleetOptions::journal), replayed requests
  // are re-journaled under their original tags, so recovery is
  // idempotent: a second recovery from the new log finds every replay
  // either terminal or in-flight-with-checkpoint, never duplicated.
  // Throws JournalError on a missing/garbled journal (bad magic,
  // version mismatch); a torn tail or checksum failure is NOT an error —
  // the valid prefix recovers and the report flags the damage.
  [[nodiscard]] RecoveryReport recover(const std::string& journal_path,
                                       const std::string& plan_snapshot_path =
                                           "");

  // Blocks until every chip drained its queue.
  void wait_idle();

  [[nodiscard]] FleetStats stats() const;
  [[nodiscard]] const std::vector<ChipSpec>& chips() const {
    return router_->chips();
  }
  [[nodiscard]] Router& router() { return *router_; }
  [[nodiscard]] const Router& router() const { return *router_; }
  [[nodiscard]] const std::shared_ptr<PlanCache>& plan_cache() const {
    return cache_;
  }

 private:
  // Shared admission/rejection bookkeeping for both submit overloads.
  [[nodiscard]] std::optional<std::future<InferenceResult>> try_reject(
      const RouteDecision& decision, std::uint64_t tag);
  // Claims the request's fleet-wide tag (when journaling and not already
  // assigned by recovery) and appends its SUBMIT record — and, for a
  // refused admission, the REJECT record — to the journal. No-op without
  // a journal.
  void journal_submit(const RouteDecision& decision,
                      const nn::NetworkModel& net,
                      const Tensor<std::int16_t>& input,
                      RequestOptions& options);

  // Concurrency contract: Fleet itself holds no mutex. Every mutable
  // member is either written once in the constructor and read-only
  // afterwards (opts_, cache_, router_, servers_ — the pointers, not the
  // pointees, which synchronize internally; see Router and
  // InferenceServer), or a lone atomic counter (rejected_). That is why
  // nothing here is CHAINNN_GUARDED_BY anything — there is no capability
  // to name, and the thread-safety analysis has nothing to check.
  FleetOptions opts_;
  std::shared_ptr<PlanCache> cache_;
  std::atomic<std::int64_t> rejected_{0};
  // Fleet-wide durable tags (monotone from 1; recover() bumps it past
  // the journaled maximum so post-recovery submits never collide).
  std::atomic<std::uint64_t> next_tag_{0};
  std::atomic<std::int64_t> recovered_{0};
  std::atomic<std::int64_t> handoffs_{0};
  // Destruction order matters: the chip servers' worker threads call the
  // router from their completion and preemption hooks, so router_ must
  // outlive servers_ (members are destroyed in reverse declaration
  // order).
  std::unique_ptr<Router> router_;
  std::vector<std::unique_ptr<InferenceServer>> servers_;
};

// --- fleet-vs-single-chip trace evaluation ---------------------------------
//
// bench_micro --fleet and examples/fleet_demo both push a request trace
// through a fleet and compare its modelled makespan against each chip
// serving the whole trace alone; this shared rollup keeps the two
// front-ends from drifting apart on the comparison semantics.

struct FleetTraceEntry {
  const nn::NetworkModel* net = nullptr;
  std::int64_t batch = 1;
  RequestOptions options;
};

struct FleetTraceReport {
  std::int64_t completed = 0;  // requests that resolved kOk
  // Per chip: modelled seconds of the trace work that actually executed
  // there, and what the chip would need to serve the same work alone.
  // Both sides cover exactly the completed requests — a cancelled or
  // failed entry is priced into neither, so it cannot tilt the speedup.
  std::vector<double> busy_seconds;
  std::vector<double> single_chip_seconds;
  double wall_seconds = 0.0;  // submit of first -> resolution of last

  // Modelled makespan of the routed trace: the busiest chip.
  [[nodiscard]] double fleet_makespan_seconds() const;
  [[nodiscard]] std::size_t best_single_chip() const;
  [[nodiscard]] double best_single_seconds() const;
  // best single chip / fleet makespan; > 1 means the fleet wins.
  [[nodiscard]] double modelled_speedup() const;
};

// Submits every entry through the fleet (batch overload — inputs are
// generated by the routed chip's server), waits for all futures, and
// rolls up the comparison. Cancelled/failed entries count toward neither
// `completed` nor either side's seconds.
[[nodiscard]] FleetTraceReport run_fleet_trace(
    Fleet& fleet, const std::vector<FleetTraceEntry>& trace);

}  // namespace chainnn::serve
