// DesignSearch — parallel Pareto design-space exploration with dominance
// pruning (ROADMAP item 4).
//
// SweepDriver *executes* a handful of hand-picked points; this subsystem
// instead treats the design space — chain length x clock x per-PE kernel
// words x oMemory capacity x per-layer channel mode — as a state-space
// search, the way the related multi-core reachability work (ltsmin)
// treats model states:
//
//   * points are canonical index tuples into a DesignSpaceGrid; the
//     neighborhood generator steps one axis index (or flips one layer's
//     channel mode), so exploration expands in waves from the paper's
//     576-PE / 700 MHz seed;
//   * canonical-form deduplication: a hash-consed visited set, sharded
//     and mutex-striped, admits each point exactly once however many
//     workers discover it simultaneously;
//   * per-point cost comes from the no-hierarchy closed forms
//     (dataflow::estimate_point_cost's accumulate path) over per-layer
//     LayerCostModels hash-consed per (chain, kmem, omem, mode) — the
//     clock axis and the batch never rebuild a plan;
//   * dominance pruning: a point strictly worse on cycles AND energy AND
//     area than a frontier member is dropped on evaluation — it is
//     counted, but never stored. Memory stays O(frontier + wave), not
//     O(points). Pruned points still *expand* (their neighbors are
//     generated), so the reachable grid is covered exhaustively and the
//     frontier is exactly the Pareto-maximal set of every evaluated
//     point — which is what makes the oracle test below possible;
//   * determinism: the frontier is maintained concurrently under a lock,
//     but the Pareto-maximal subset of a fixed point set is unique under
//     strict dominance whatever the insertion order, wave membership is
//     a pure function of the previous wave, and results are sorted
//     canonically — so the frontier is independent of worker count.
//     tests/serve/test_design_search.cpp pins 1-vs-N worker identity and
//     frontier equality against an exhaustive-enumeration oracle.
//
// Workers come from the process-wide common::WorkPool (run_batch helping
// semantics): the search owns no threads and composes with a serving
// fleet on the same pool.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chain/network_runner.hpp"
#include "common/work_pool.hpp"
#include "dataflow/point_cost.hpp"
#include "nn/models.hpp"
#include "serve/plan_cache.hpp"

namespace chainnn::serve {

// The axes of the search. Every axis vector must be non-empty and
// strictly increasing; neighbors step +-1 along an axis.
struct DesignSpaceGrid {
  std::vector<std::int64_t> num_pes;
  std::vector<double> clock_hz;
  std::vector<std::int64_t> kmem_words_per_pe;
  std::vector<std::uint64_t> omemory_bytes;
  // Explore per-layer single-vs-dual ifmap channel mode (Fig. 5(a) vs
  // (b)) as one boolean axis per layer. Off = every layer dual-channel.
  bool per_layer_channel_modes = true;

  // The release-CI grid around the paper's instantiation: 16 chain
  // lengths x 21 clocks x 4 kernel storages x 5 oMemory sizes (6720
  // configurations, x 2^layers channel modes), containing the paper's
  // 576 PEs / 700 MHz / 256 words / 25KB point.
  [[nodiscard]] static DesignSpaceGrid paper_default();

  [[nodiscard]] std::int64_t configurations() const {
    return static_cast<std::int64_t>(num_pes.size() * clock_hz.size() *
                                     kmem_words_per_pe.size() *
                                     omemory_bytes.size());
  }
};

// Canonical form of a point: axis indices plus the per-layer channel
// mask (bit i set = layer i streams dual-channel). Hash-consing and the
// visited set key on this, never on the expanded configuration.
struct DesignPointId {
  std::int32_t pes = 0, clock = 0, kmem = 0, omem = 0;
  std::uint64_t mode_mask = ~0ull;

  friend bool operator==(const DesignPointId&, const DesignPointId&) = default;
  friend auto operator<=>(const DesignPointId&, const DesignPointId&) = default;
  [[nodiscard]] std::size_t hash() const;
};

// One evaluated point, expanded back to the configuration it denotes.
struct EvaluatedDesignPoint {
  DesignPointId id;
  std::string label;                     // "pes576-clk700-kw256-om25-m3f"
  dataflow::ArrayShape array;            // num_pes/clock/kmem stamped
  mem::HierarchyConfig memory;           // omemory stamped
  std::vector<std::uint8_t> layer_dual;  // per-layer channel mode
  dataflow::PointCost cost;

  // True when every layer streams the same mode — exactly the points an
  // executed SweepDriver re-run can reproduce (its per-request ArrayShape
  // sets dual_channel globally).
  [[nodiscard]] bool uniform_mode() const;
};

struct DesignSearchStats {
  std::int64_t evaluated = 0;   // costed points (== visited)
  std::int64_t infeasible = 0;  // some layer unmappable at the point
  std::int64_t pruned = 0;      // feasible but Pareto-dominated
  std::int64_t frontier = 0;
  std::int64_t waves = 0;
  double wall_seconds = 0.0;
  double points_per_sec = 0.0;
  bool contains_paper_point = false;  // 576@700/256w/25KB on the frontier
  [[nodiscard]] double pruned_fraction() const {
    return evaluated == 0
               ? 0.0
               : static_cast<double>(pruned) / static_cast<double>(evaluated);
  }
};

struct DesignSearchResult {
  // The Pareto-maximal evaluated points, sorted by canonical id.
  std::vector<EvaluatedDesignPoint> frontier;
  DesignSearchStats stats;
  // Every evaluated point (same order guarantees), only with
  // DesignSearchOptions::collect_evaluated — the oracle tests' hook.
  std::vector<EvaluatedDesignPoint> evaluated;
};

struct DesignSearchOptions {
  std::int64_t batch = 1;
  // Evaluation budget; the search stops expanding once reached (the
  // truncation is canonical-order, so still deterministic). <= 0 means
  // the whole reachable grid.
  std::int64_t max_points = 200000;
  // <= 1 runs the wave loop serially on the calling thread (the oracle
  // baseline); anything else fans each wave out over `pool`.
  std::int64_t num_workers = 0;
  // Pool for parallel waves; nullptr uses WorkPool::shared().
  common::WorkPool* pool = nullptr;
  energy::EnergyModel energy = energy::EnergyModel::paper_calibrated();
  energy::AreaModel area;
  std::vector<chain::InterLayerOp> inter_layer;
  // Plans resolve through this cache when given (shared with a serving
  // fleet or a SweepDriver re-execution); nullptr plans directly.
  std::shared_ptr<PlanCache> plan_cache;
  bool collect_evaluated = false;
};

class DesignSearch {
 public:
  DesignSearch(nn::NetworkModel network, DesignSpaceGrid grid,
               DesignSearchOptions options = {});
  ~DesignSearch();

  DesignSearch(const DesignSearch&) = delete;
  DesignSearch& operator=(const DesignSearch&) = delete;

  // Expands the grid from the seed (the paper point when the grid
  // contains it, the axis midpoints otherwise) until exhaustion or
  // max_points. Deterministic: equal grids and options produce equal
  // results whatever the worker count.
  [[nodiscard]] DesignSearchResult run();

  [[nodiscard]] const nn::NetworkModel& network() const { return net_; }
  [[nodiscard]] const DesignSpaceGrid& grid() const { return grid_; }

 private:
  struct Impl;

  nn::NetworkModel net_;
  DesignSpaceGrid grid_;
  DesignSearchOptions opts_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace chainnn::serve
