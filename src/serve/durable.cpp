#include "serve/durable.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "dataflow/plan.hpp"

namespace chainnn::serve {

namespace {

// Guards against a corrupted-but-checksum-valid (or adversarial) count
// field committing the reader to a multi-gigabyte allocation.
constexpr std::uint64_t kMaxReasonableCount = 1ull << 24;

void check_count(std::uint64_t n, const char* what) {
  if (n > kMaxReasonableCount)
    throw JournalError(std::string("implausible ") + what + " count in " +
                       "journal payload: " + std::to_string(n));
}

}  // namespace

// --- component serializers -------------------------------------------------

void write_layer_params(ByteWriter& w, const nn::ConvLayerParams& p) {
  w.str(p.name);
  w.i64(p.batch);
  w.i64(p.in_channels);
  w.i64(p.out_channels);
  w.i64(p.in_height);
  w.i64(p.in_width);
  w.i64(p.kernel);
  w.i64(p.stride);
  w.i64(p.pad);
  w.i64(p.groups);
  w.i64(p.pad_h);
  w.i64(p.pad_w);
}

nn::ConvLayerParams read_layer_params(ByteReader& r) {
  nn::ConvLayerParams p;
  p.name = r.str();
  p.batch = r.i64();
  p.in_channels = r.i64();
  p.out_channels = r.i64();
  p.in_height = r.i64();
  p.in_width = r.i64();
  p.kernel = r.i64();
  p.stride = r.i64();
  p.pad = r.i64();
  p.groups = r.i64();
  p.pad_h = r.i64();
  p.pad_w = r.i64();
  return p;
}

void write_array_shape(ByteWriter& w, const dataflow::ArrayShape& a) {
  w.i64(a.num_pes);
  w.i64(a.kmem_words_per_pe);
  w.f64(a.clock_hz);
  w.i64(a.pipeline_stages);
  w.u8(a.dual_channel ? 1 : 0);
}

dataflow::ArrayShape read_array_shape(ByteReader& r) {
  dataflow::ArrayShape a;
  a.num_pes = r.i64();
  a.kmem_words_per_pe = r.i64();
  a.clock_hz = r.f64();
  a.pipeline_stages = static_cast<int>(r.i64());
  a.dual_channel = r.u8() != 0;
  return a;
}

void write_hierarchy(ByteWriter& w, const mem::HierarchyConfig& m) {
  w.u64(m.imemory_bytes);
  w.u64(m.omemory_bytes);
  w.u64(m.kmemory_bytes);
  w.u64(m.word_bytes);
}

mem::HierarchyConfig read_hierarchy(ByteReader& r) {
  mem::HierarchyConfig m;
  m.imemory_bytes = r.u64();
  m.omemory_bytes = r.u64();
  m.kmemory_bytes = r.u64();
  m.word_bytes = r.u64();
  return m;
}

namespace {

void write_shape(ByteWriter& w, const Shape& s) {
  w.u64(s.rank());
  for (const std::int64_t d : s.dims()) w.i64(d);
}

Shape read_shape(ByteReader& r) {
  const std::uint64_t rank = r.u64();
  check_count(rank, "tensor rank");
  std::vector<std::int64_t> dims;
  dims.reserve(rank);
  for (std::uint64_t i = 0; i < rank; ++i) dims.push_back(r.i64());
  return Shape(std::move(dims));
}

}  // namespace

void write_tensor_i16(ByteWriter& w, const Tensor<std::int16_t>& t) {
  write_shape(w, t.shape());
  w.i16_span(t.data());
}

Tensor<std::int16_t> read_tensor_i16(ByteReader& r) {
  Shape shape = read_shape(r);
  std::vector<std::int16_t> data = r.i16_vec();
  return Tensor<std::int16_t>(std::move(shape), std::move(data));
}

void write_tensor_i64(ByteWriter& w, const Tensor<std::int64_t>& t) {
  write_shape(w, t.shape());
  w.i64_span(t.data());
}

Tensor<std::int64_t> read_tensor_i64(ByteReader& r) {
  Shape shape = read_shape(r);
  std::vector<std::int64_t> data = r.i64_vec();
  return Tensor<std::int64_t>(std::move(shape), std::move(data));
}

// --- RunCheckpoint ---------------------------------------------------------

namespace {

void write_run_stats(ByteWriter& w, const chain::RunStats& s) {
  w.i64(s.kernel_load_cycles);
  w.i64(s.stream_cycles);
  w.i64(s.drain_cycles);
  w.i64(s.windows_collected);
  w.i64(s.macs_performed);
  w.i64(s.passes);
  w.i64(s.plan_cache_hits);
  w.i64(s.plan_cache_misses);
  w.i64(s.plan_cache_entries);
  w.i64(s.kernel_fast_dispatches);
  w.i64(s.kernel_scalar_dispatches);
}

chain::RunStats read_run_stats(ByteReader& r) {
  chain::RunStats s;
  s.kernel_load_cycles = r.i64();
  s.stream_cycles = r.i64();
  s.drain_cycles = r.i64();
  s.windows_collected = r.i64();
  s.macs_performed = r.i64();
  s.passes = r.i64();
  s.plan_cache_hits = r.i64();
  s.plan_cache_misses = r.i64();
  s.plan_cache_entries = r.i64();
  s.kernel_fast_dispatches = r.i64();
  s.kernel_scalar_dispatches = r.i64();
  return s;
}

void write_traffic(ByteWriter& w, const mem::LayerTraffic& t) {
  w.str(t.layer_name);
  w.u64(t.dram_bytes);
  w.u64(t.imemory_bytes);
  w.u64(t.kmemory_bytes);
  w.u64(t.omemory_bytes);
}

mem::LayerTraffic read_traffic(ByteReader& r) {
  mem::LayerTraffic t;
  t.layer_name = r.str();
  t.dram_bytes = r.u64();
  t.imemory_bytes = r.u64();
  t.kmemory_bytes = r.u64();
  t.omemory_bytes = r.u64();
  return t;
}

void write_narrowing(ByteWriter& w, const fixed::NarrowingStats& n) {
  w.u64(n.count);
  w.u64(n.saturations);
  w.u64(n.invalids);
  w.f64(n.max_abs_error);
  w.f64(n.sum_sq_error);
}

fixed::NarrowingStats read_narrowing(ByteReader& r) {
  fixed::NarrowingStats n;
  n.count = r.u64();
  n.saturations = r.u64();
  n.invalids = r.u64();
  n.max_abs_error = r.f64();
  n.sum_sq_error = r.f64();
  return n;
}

void write_power(ByteWriter& w, const energy::PowerBreakdown& p) {
  w.f64(p.chain_w);
  w.f64(p.kmem_w);
  w.f64(p.imem_w);
  w.f64(p.omem_w);
}

energy::PowerBreakdown read_power(ByteReader& r) {
  energy::PowerBreakdown p;
  p.chain_w = r.f64();
  p.kmem_w = r.f64();
  p.imem_w = r.f64();
  p.omem_w = r.f64();
  return p;
}

void write_layer_run_result(ByteWriter& w, const chain::LayerRunResult& lr) {
  // The plan is a pure function of these three inputs (plan_layer), so
  // serializing them IS serializing the plan — the reader re-derives it
  // field for field.
  write_layer_params(w, lr.plan.layer);
  write_array_shape(w, lr.plan.array);
  write_hierarchy(w, lr.plan.memory);
  write_tensor_i64(w, lr.accumulators);
  write_tensor_i16(w, lr.ofmaps);
  write_run_stats(w, lr.stats);
  write_traffic(w, lr.traffic);
  write_narrowing(w, lr.narrowing);
  w.f64(lr.clock_hz());
}

chain::LayerRunResult read_layer_run_result(ByteReader& r) {
  const nn::ConvLayerParams layer = read_layer_params(r);
  const dataflow::ArrayShape array = read_array_shape(r);
  const mem::HierarchyConfig memory = read_hierarchy(r);
  chain::LayerRunResult lr;
  lr.plan = dataflow::plan_layer(layer, array, memory);
  lr.accumulators = read_tensor_i64(r);
  lr.ofmaps = read_tensor_i16(r);
  lr.stats = read_run_stats(r);
  lr.traffic = read_traffic(r);
  lr.narrowing = read_narrowing(r);
  lr.restore_clock_hz(r.f64());
  return lr;
}

void write_network_layer_result(ByteWriter& w,
                                const chain::NetworkLayerResult& nl) {
  write_layer_params(w, nl.layer);
  write_layer_run_result(w, nl.run);
  write_power(w, nl.power);
  w.u8(nl.verified ? 1 : 0);
}

chain::NetworkLayerResult read_network_layer_result(ByteReader& r) {
  chain::NetworkLayerResult nl;
  nl.layer = read_layer_params(r);
  nl.run = read_layer_run_result(r);
  nl.power = read_power(r);
  nl.verified = r.u8() != 0;
  return nl;
}

}  // namespace

void write_checkpoint(ByteWriter& w, const chain::RunCheckpoint& cp) {
  w.i64(cp.next_layer);
  w.u64(cp.layers.size());
  for (const chain::NetworkLayerResult& nl : cp.layers)
    write_network_layer_result(w, nl);
  write_tensor_i16(w, cp.activations);
  const Rng::Snapshot rng = cp.weight_rng.snapshot();
  for (const std::uint64_t s : rng.state) w.u64(s);
  w.u8(rng.have_cached_gauss ? 1 : 0);
  w.f64(rng.cached_gauss);
}

chain::RunCheckpoint read_checkpoint(ByteReader& r) {
  chain::RunCheckpoint cp;
  cp.next_layer = r.i64();
  const std::uint64_t n = r.u64();
  check_count(n, "checkpoint layer");
  cp.layers.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    cp.layers.push_back(read_network_layer_result(r));
  cp.activations = read_tensor_i16(r);
  Rng::Snapshot rng;
  for (std::uint64_t& s : rng.state) s = r.u64();
  rng.have_cached_gauss = r.u8() != 0;
  rng.cached_gauss = r.f64();
  cp.weight_rng.restore(rng);
  return cp;
}

// --- journal request records -----------------------------------------------

namespace {

void write_inter_layer(ByteWriter& w,
                       const std::vector<chain::InterLayerOp>& ops) {
  w.u64(ops.size());
  for (const chain::InterLayerOp& op : ops) {
    w.u8(op.relu ? 1 : 0);
    w.u8(op.pool ? 1 : 0);
    w.i64(op.pool_params.window);
    w.i64(op.pool_params.stride);
    w.i64(op.pool_params.pad);
  }
}

std::vector<chain::InterLayerOp> read_inter_layer(ByteReader& r) {
  const std::uint64_t n = r.u64();
  check_count(n, "inter-layer op");
  std::vector<chain::InterLayerOp> ops;
  ops.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    chain::InterLayerOp op;
    op.relu = r.u8() != 0;
    op.pool = r.u8() != 0;
    op.pool_params.window = r.i64();
    op.pool_params.stride = r.i64();
    op.pool_params.pad = r.i64();
    ops.push_back(op);
  }
  return ops;
}

void write_network_model(ByteWriter& w, const nn::NetworkModel& net) {
  w.str(net.name);
  w.u64(net.conv_layers.size());
  for (const nn::ConvLayerParams& l : net.conv_layers)
    write_layer_params(w, l);
}

nn::NetworkModel read_network_model(ByteReader& r) {
  nn::NetworkModel net;
  net.name = r.str();
  const std::uint64_t n = r.u64();
  check_count(n, "network layer");
  net.conv_layers.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    net.conv_layers.push_back(read_layer_params(r));
  return net;
}

}  // namespace

std::string encode_submit(const SubmitRecord& rec) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RecordType::kSubmit));
  w.u64(rec.tag);
  w.str(rec.chip_name);
  write_network_model(w, rec.net);
  write_tensor_i16(w, rec.input);
  w.i64(rec.priority);
  w.i64(rec.num_workers);
  w.u8(rec.verify_against_golden ? 1 : 0);
  w.u8(rec.exec_mode ? 1 : 0);
  if (rec.exec_mode)
    w.u8(*rec.exec_mode == chain::ExecMode::kAnalytical ? 1 : 0);
  w.u8(rec.array ? 1 : 0);
  if (rec.array) write_array_shape(w, *rec.array);
  write_inter_layer(w, rec.inter_layer);
  return w.take();
}

SubmitRecord decode_submit(std::string_view payload) {
  ByteReader r(payload);
  SubmitRecord rec;
  rec.tag = r.u64();
  rec.chip_name = r.str();
  rec.net = read_network_model(r);
  rec.input = read_tensor_i16(r);
  rec.priority = r.i64();
  rec.num_workers = r.i64();
  rec.verify_against_golden = r.u8() != 0;
  if (r.u8() != 0)
    rec.exec_mode = r.u8() != 0 ? chain::ExecMode::kAnalytical
                                : chain::ExecMode::kCycleAccurate;
  if (r.u8() != 0) rec.array = read_array_shape(r);
  rec.inter_layer = read_inter_layer(r);
  return rec;
}

std::string encode_checkpoint_payload(std::uint64_t tag,
                                      std::string_view chip_name,
                                      const chain::RunCheckpoint& cp) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RecordType::kCheckpoint));
  w.u64(tag);
  w.str(chip_name);
  write_checkpoint(w, cp);
  return w.take();
}

std::string encode_checkpoint_record(const CheckpointRecord& rec) {
  return encode_checkpoint_payload(rec.tag, rec.chip_name, rec.checkpoint);
}

CheckpointRecord decode_checkpoint_record(std::string_view payload) {
  ByteReader r(payload);
  CheckpointRecord rec;
  rec.tag = r.u64();
  rec.chip_name = r.str();
  rec.checkpoint = read_checkpoint(r);
  return rec;
}

std::string encode_complete(std::uint64_t tag) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RecordType::kComplete));
  w.u64(tag);
  return w.take();
}

std::string encode_cancel(std::uint64_t tag, CancelReason reason) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RecordType::kCancel));
  w.u64(tag);
  w.u8(static_cast<std::uint8_t>(reason));
  return w.take();
}

std::string encode_reject(std::uint64_t tag) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(RecordType::kReject));
  w.u64(tag);
  return w.take();
}

TerminalRecord decode_terminal(std::string_view payload, RecordType type) {
  ByteReader r(payload);
  TerminalRecord rec;
  rec.tag = r.u64();
  if (type == RecordType::kCancel)
    rec.reason = static_cast<CancelReason>(r.u8());
  return rec;
}

// --- replay analysis -------------------------------------------------------

JournalAnalysis analyze_journal(const JournalReadResult& log) {
  JournalAnalysis out;
  out.truncated_tail = log.truncated_tail;
  out.checksum_errors = log.checksum_errors;

  // Submission-ordered; an index map resolves later records by tag.
  std::vector<InFlightRequest> by_order;
  std::unordered_map<std::uint64_t, std::size_t> index;
  std::unordered_map<std::uint64_t, bool> terminal;

  for (const JournalRecord& rec : log.records) {
    switch (rec.type) {
      case RecordType::kSubmit: {
        InFlightRequest req;
        req.submit = decode_submit(rec.payload);
        out.max_tag = std::max(out.max_tag, req.submit.tag);
        ++out.submits;
        index[req.submit.tag] = by_order.size();
        terminal[req.submit.tag] = false;
        by_order.push_back(std::move(req));
        break;
      }
      case RecordType::kCheckpoint: {
        CheckpointRecord cp = decode_checkpoint_record(rec.payload);
        ++out.checkpoints;
        const auto it = index.find(cp.tag);
        if (it == index.end()) break;  // checkpoint for an unknown tag
        by_order[it->second].checkpoint =
            std::make_shared<chain::RunCheckpoint>(std::move(cp.checkpoint));
        by_order[it->second].checkpoint_chip = std::move(cp.chip_name);
        break;
      }
      case RecordType::kComplete:
      case RecordType::kCancel:
      case RecordType::kReject: {
        const TerminalRecord t = decode_terminal(rec.payload, rec.type);
        if (rec.type == RecordType::kComplete)
          ++out.completed;
        else if (rec.type == RecordType::kCancel)
          ++out.cancelled;
        else
          ++out.rejected;
        const auto it = terminal.find(t.tag);
        if (it != terminal.end()) it->second = true;
        break;
      }
      case RecordType::kPlanEntry:
        // Snapshot record in a journal: ignore (forward compatibility —
        // the framing survives, the reader just has no use for it).
        break;
    }
  }

  for (InFlightRequest& req : by_order)
    if (!terminal[req.submit.tag]) out.in_flight.push_back(std::move(req));
  return out;
}

JournalAnalysis analyze_journal_file(const std::string& path) {
  return analyze_journal(read_journal_file(path));
}

// --- PlanCache snapshots ---------------------------------------------------

std::int64_t save_plan_cache(const PlanCache& cache, const std::string& path) {
  const std::vector<PlanCache::EntryInputs> entries = cache.entry_inputs();
  std::string bytes;
  {
    ByteWriter header;
    for (const char c : kSnapshotMagic)
      header.u8(static_cast<std::uint8_t>(c));
    header.u32(kJournalFormatVersion);
    bytes = header.take();
  }
  for (const PlanCache::EntryInputs& e : entries) {
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(RecordType::kPlanEntry));
    write_layer_params(w, e.layer);
    write_array_shape(w, e.array);
    write_hierarchy(w, e.memory);
    bytes += frame_record(w.bytes());
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    throw JournalError("cannot open snapshot for writing: " + path + " (" +
                       std::strerror(errno) + ")");
  const bool ok = ::write(fd, bytes.data(), bytes.size()) ==
                  static_cast<ssize_t>(bytes.size());
  ::fsync(fd);
  ::close(fd);
  if (!ok) throw JournalError("cannot write snapshot: " + path);
  return static_cast<std::int64_t>(entries.size());
}

SnapshotLoadResult load_plan_cache(PlanCache& cache, const std::string& path) {
  const JournalReadResult log = read_journal_file(path, kSnapshotMagic);
  SnapshotLoadResult out;
  out.truncated_tail = log.truncated_tail;
  out.checksum_errors = log.checksum_errors;
  // Records are MRU-first; replay LRU-first so the rebuilt cache's
  // recency order matches the one the snapshot captured.
  for (auto it = log.records.rbegin(); it != log.records.rend(); ++it) {
    if (it->type != RecordType::kPlanEntry) continue;
    ByteReader r(it->payload);
    const nn::ConvLayerParams layer = read_layer_params(r);
    const dataflow::ArrayShape array = read_array_shape(r);
    const mem::HierarchyConfig memory = read_hierarchy(r);
    // plan_for re-plans (a miss) and inserts; purity makes the entry
    // identical to the one that was snapshotted.
    (void)cache.plan_for(layer, array, memory);
    ++out.entries_loaded;
  }
  return out;
}

}  // namespace chainnn::serve
