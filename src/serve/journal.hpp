// Journal — append-only, checksummed record log for durable serving.
//
// This is the framing layer of the durability stack (see
// docs/WIRE_FORMATS.md for the normative spec): a journal file is an
// 8-byte magic + 4-byte format version header followed by records of
//
//   [u32 payload_len][u64 fnv1a64(payload)][payload bytes]
//
// with every multi-byte integer little-endian. The first payload byte is
// the RecordType; everything after it is type-specific (encoded by
// serve/durable.hpp). The framing gives crash recovery its two load-
// bearing properties:
//
//   * A torn tail — a record the process was mid-append on when it died
//     — is detected (fewer bytes than the length prefix promises) and
//     cleanly ignored: the reader returns the valid prefix and flags
//     truncated_tail. A crash therefore loses at most the record being
//     written, never the ability to parse the log.
//   * Corruption anywhere is caught by the per-record FNV-1a checksum:
//     the reader stops at the first mismatching record, counts it in
//     checksum_errors, and returns the records before it — an error
//     verdict, not a crash.
//
// A version mismatch in the header is a refusal (JournalError): a new
// binary never silently misreads an old log, and vice versa.
//
// Journal (the writer) is thread-safe: appends serialize under one
// mutex, each append is a single write() call (so concurrent journals to
// the same fd never interleave a record), and fsync batching is
// controlled by JournalOptions::fsync_every_records.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.hpp"

namespace chainnn::serve {

// --- byte-level primitives (little-endian, fixed-width) --------------------

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);  // IEEE-754 bits, little-endian
  void str(std::string_view s) {
    u64(s.size());
    buf_.append(s);
  }
  void i16_span(std::span<const std::int16_t> v);
  void i64_span(std::span<const std::int64_t> v);

  [[nodiscard]] const std::string& bytes() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

// Thrown on any malformed input the reader cannot continue past:
// truncated payloads during decode, bad magic, version mismatch.
class JournalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(u64());
  }
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<std::int16_t> i16_vec();
  [[nodiscard]] std::vector<std::int64_t> i64_vec();

  [[nodiscard]] std::size_t remaining() const {
    return bytes_.size() - pos_;
  }
  [[nodiscard]] bool done() const { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) const {
    if (bytes_.size() - pos_ < n)
      throw JournalError("journal payload truncated: need " +
                         std::to_string(n) + " byte(s), have " +
                         std::to_string(bytes_.size() - pos_));
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// FNV-1a 64-bit over a byte string — the same hash the gateway uses for
// wire digests, reused here as the per-record checksum.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

// --- record framing --------------------------------------------------------

inline constexpr std::uint32_t kJournalFormatVersion = 1;
inline constexpr char kJournalMagic[8] = {'C', 'N', 'N', 'J',
                                          'R', 'N', 'L', '\0'};
// PlanCache snapshots share the framing (header + checksummed records)
// under their own magic, so a journal is never mistaken for a snapshot.
inline constexpr char kSnapshotMagic[8] = {'C', 'N', 'N', 'S',
                                           'N', 'A', 'P', '\0'};

// First byte of every record payload.
enum class RecordType : std::uint8_t {
  kSubmit = 1,      // request accepted: tag, routed chip, model, input,
                    // scheduling options (written before the enqueue)
  kCheckpoint = 2,  // preemption checkpoint: tag + full RunCheckpoint
  kComplete = 3,    // terminal kOk
  kCancel = 4,      // terminal kCancelled / kFailed (reason byte)
  kReject = 5,      // admission refused the request at submit
  kPlanEntry = 6,   // snapshot files: one cached plan's (layer, array,
                    // memory) inputs
};

struct JournalRecord {
  RecordType type = RecordType::kSubmit;
  std::string payload;  // type-specific bytes *after* the type byte
};

struct JournalReadResult {
  std::vector<JournalRecord> records;
  // A trailing record shorter than its length prefix promised (the
  // classic crash-mid-append) was dropped.
  bool truncated_tail = false;
  // Reading stopped at a record whose checksum did not match (1 at
  // most — nothing after a corrupt record can be trusted).
  std::int64_t checksum_errors = 0;
  // Bytes of the file that parsed clean (header + whole valid records).
  std::uint64_t valid_bytes = 0;
};

// Frames `payload` (type byte + body) into length/checksum/payload.
[[nodiscard]] std::string frame_record(std::string_view payload);

// Parses the body of a journal/snapshot file after its header has been
// validated. Never throws on torn or corrupt data — that is the normal
// crash case — only on programmer error.
[[nodiscard]] JournalReadResult read_records(std::string_view body);

// Reads a whole file under `magic`: validates header (JournalError on
// missing file, short header, bad magic or version mismatch), then
// parses records. A file holding only a valid header yields an empty
// record list — an empty journal is a journal, not an error.
[[nodiscard]] JournalReadResult read_journal_file(
    const std::string& path,
    std::span<const char, 8> magic = kJournalMagic);

// --- the append-only writer ------------------------------------------------

struct JournalOptions {
  std::string path;
  // fsync after every Nth appended record; 0 disables fsync entirely
  // (the OS still flushes on close — fine for tests and benches that
  // only care about the bytes, wrong for real crash durability).
  std::int64_t fsync_every_records = 1;
};

struct JournalStats {
  std::int64_t records_appended = 0;
  std::int64_t bytes_appended = 0;  // framed bytes, excluding the header
  std::int64_t fsyncs = 0;
};

class Journal {
 public:
  // Creates/truncates the file and writes a fresh header. Throws
  // JournalError when the file cannot be opened.
  explicit Journal(JournalOptions options);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Appends one framed record ([0] of `payload` must be the RecordType
  // byte). One write() per record; fsync per JournalOptions.
  void append(std::string_view payload);
  // Forces an fsync now (e.g. before handing the path to a recovery).
  void sync();

  [[nodiscard]] JournalStats stats() const;
  [[nodiscard]] const std::string& path() const { return opts_.path; }

 private:
  JournalOptions opts_;
  mutable Mutex mu_;
  int fd_ CHAINNN_GUARDED_BY(mu_) = -1;
  std::int64_t since_fsync_ CHAINNN_GUARDED_BY(mu_) = 0;
  JournalStats stats_ CHAINNN_GUARDED_BY(mu_);
};

}  // namespace chainnn::serve
