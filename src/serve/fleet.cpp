#include "serve/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace chainnn::serve {

double FleetStats::modelled_makespan_seconds() const {
  double makespan = 0.0;
  for (const FleetChipStats& chip : chips)
    makespan = std::max(makespan, chip.dispatched_seconds);
  return makespan;
}

Fleet::Fleet(FleetOptions options)
    : opts_(std::move(options)),
      cache_(opts_.plan_cache ? opts_.plan_cache
                              : std::make_shared<PlanCache>()) {
  if (opts_.chips.empty()) opts_.chips = default_fleet_chips();
  CHAINNN_CHECK_MSG(opts_.threads_per_chip >= 1,
                    "threads_per_chip must be >= 1, got "
                        << opts_.threads_per_chip);
  router_ = std::make_unique<Router>(opts_.chips, cache_);

  servers_.reserve(opts_.chips.size());
  Router* router = router_.get();
  for (std::size_t c = 0; c < opts_.chips.size(); ++c) {
    const ChipSpec& chip = opts_.chips[c];
    ServerOptions so;
    so.accelerator = opts_.accelerator;
    so.accelerator.array = chip.array;
    so.accelerator.memory = chip.memory;
    so.energy = opts_.energy;
    so.name = chip.name;
    so.num_threads = opts_.threads_per_chip;
    so.max_queue = opts_.max_queue_per_chip;
    so.fidelity_sample_every_n = opts_.fidelity_sample_every_n;
    so.plan_cache = cache_;
    so.enable_preemption = opts_.preemption;
    // Request ids are per-server, so decorrelate the generated-input
    // streams per chip (SplitMix64 expands the seed; a golden-ratio
    // stride keeps chip streams disjoint for any realistic id range).
    so.input_seed =
        opts_.input_seed + 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(c + 1);
    // Resume-aware backlog accounting: a preemption retires the modelled
    // seconds of the layers already completed, and the completion hook
    // retires only the remainder — together exactly modelled_seconds,
    // never more, so a request that is preempted and then cancelled is
    // not double-retracted (the clamp guards float dust, not logic).
    so.preemption_hook = [router, c](std::int64_t, double retired_seconds) {
      router->complete(c, retired_seconds);
    };
    // The raw Journal pointer in the hooks is safe: opts_ (and its
    // journal shared_ptr) outlives servers_ — members destroy in
    // reverse declaration order, and ~InferenceServer joins its drains.
    Journal* journal = opts_.journal.get();
    so.completion_hook = [router, c, journal](const InferenceResult& r) {
      router->complete(c, std::max(0.0, r.modelled_seconds -
                                            r.modelled_seconds_retired));
      // Terminal record *after* the backlog retire and *before* the
      // future resolves (the server fires this hook first), so a log
      // with a terminal record never describes a request a caller has
      // not yet been able to observe as done.
      if (journal && r.tag != 0) {
        switch (r.status) {
          case RequestStatus::kOk:
            journal->append(encode_complete(r.tag));
            break;
          case RequestStatus::kCancelled:
            journal->append(encode_cancel(r.tag,
                                          r.deadline_expired
                                              ? CancelReason::kDeadline
                                              : CancelReason::kToken));
            break;
          case RequestStatus::kFailed:
            journal->append(encode_cancel(r.tag, CancelReason::kFailed));
            break;
          case RequestStatus::kRejected:
            break;  // rejections are journaled at submit, not here
        }
      }
    };
    if (journal) {
      const std::string chip_name = chip.name;
      so.checkpoint_hook = [journal, chip_name](
                               std::uint64_t tag,
                               const chain::RunCheckpoint& cp) {
        journal->append(encode_checkpoint_payload(tag, chip_name, cp));
      };
    }
    servers_.push_back(std::make_unique<InferenceServer>(std::move(so)));
  }
}

namespace {
// The deadline an admission-controlled request must be feasible within,
// in seconds; nullopt disables admission for this submit.
std::optional<double> admission_deadline_s(const RequestOptions& options) {
  if (!options.admission || !options.deadline_ms) return std::nullopt;
  return *options.deadline_ms / 1e3;
}
}  // namespace

std::optional<std::future<InferenceResult>> Fleet::try_reject(
    const RouteDecision& decision, std::uint64_t tag) {
  if (decision.admitted) return std::nullopt;
  // Infeasible on every chip: resolve the future right here with
  // kRejected. The router charged nothing, no server ever sees the
  // request, and the trace rollups skip it like any non-kOk entry.
  ++rejected_;
  InferenceResult r;
  r.tag = tag;
  r.status = RequestStatus::kRejected;
  r.chip = decision.chip_name;  // best (still infeasible) chip, for info
  r.modelled_seconds = decision.request_seconds;
  std::promise<InferenceResult> promise;
  std::future<InferenceResult> future = promise.get_future();
  promise.set_value(std::move(r));
  return future;
}

void Fleet::journal_submit(const RouteDecision& decision,
                           const nn::NetworkModel& net,
                           const Tensor<std::int16_t>& input,
                           RequestOptions& options) {
  if (!opts_.journal) return;
  if (options.tag == 0) options.tag = 1 + next_tag_.fetch_add(1);
  SubmitRecord rec;
  rec.tag = options.tag;
  rec.chip_name = decision.chip_name;
  rec.net = net;
  rec.input = input;
  rec.priority = options.priority;
  rec.num_workers = options.num_workers;
  rec.verify_against_golden = options.verify_against_golden;
  rec.exec_mode = options.exec_mode;
  rec.array = options.array;
  rec.inter_layer = options.inter_layer;
  // SUBMIT hits the log *before* the request can reach a chip queue, so
  // a crash at any later point finds the request journaled: the
  // recovery either sees a terminal record too (done) or replays it —
  // a request is never silently lost.
  opts_.journal->append(encode_submit(rec));
  // A refused admission is terminal at submit; pair the records here so
  // the log never carries a dangling SUBMIT for a request that already
  // resolved kRejected.
  if (!decision.admitted) opts_.journal->append(encode_reject(options.tag));
}

std::future<InferenceResult> Fleet::submit(nn::NetworkModel net,
                                           Tensor<std::int16_t> input,
                                           RequestOptions options) {
  // Mirror InferenceServer::submit's request validation *before* routing:
  // a dispatch charges the chip's backlog, and only the completion hook
  // retires it, so a request rejected after routing must be retracted.
  CHAINNN_CHECK_MSG(!net.conv_layers.empty(),
                    "cannot serve an empty network");
  CHAINNN_CHECK(input.shape().rank() == 4);
  CHAINNN_CHECK_MSG(options.num_workers >= 1,
                    "num_workers must be >= 1, got " << options.num_workers);
  const RouteDecision decision = router_->route_and_dispatch(
      net, input.shape().dim(0), input.shape().dim(2), input.shape().dim(3),
      options.inter_layer, options.array, admission_deadline_s(options));
  journal_submit(decision, net, input, options);
  const std::uint64_t tag = options.tag;
  if (auto rejected = try_reject(decision, tag))
    return std::move(*rejected);
  options.modelled_seconds = decision.request_seconds;
  try {
    return servers_[decision.chip]->submit(std::move(net), std::move(input),
                                           std::move(options));
  } catch (...) {
    router_->retract(decision);
    // The enqueue never happened, so no completion hook will ever write
    // a terminal record — close the SUBMIT out here or a recovery would
    // replay a request whose submitter saw an exception.
    if (opts_.journal && tag != 0)
      opts_.journal->append(encode_cancel(tag, CancelReason::kFailed));
    throw;
  }
}

std::future<InferenceResult> Fleet::submit(const nn::NetworkModel& net,
                                           std::int64_t batch,
                                           RequestOptions options) {
  CHAINNN_CHECK_MSG(batch >= 1, "batch must be >= 1, got " << batch);
  CHAINNN_CHECK_MSG(!net.conv_layers.empty(),
                    "cannot serve an empty network");
  CHAINNN_CHECK_MSG(options.num_workers >= 1,
                    "num_workers must be >= 1, got " << options.num_workers);
  const nn::ConvLayerParams& first = net.conv_layers.front();
  if (opts_.journal) {
    // A journaled SUBMIT must carry the concrete input tensor (the
    // server-side generator keys on per-server request ids, which
    // restart from 1 with the process and so cannot reproduce the input
    // after a crash). Generate it here, keyed by the durable tag, and
    // take the explicit-input path.
    if (options.tag == 0) options.tag = 1 + next_tag_.fetch_add(1);
    Tensor<std::int16_t> input(
        Shape{batch, first.in_channels, first.in_height, first.in_width});
    Rng rng(opts_.input_seed ^ (0x9E3779B97F4A7C15ull * options.tag));
    input.fill_random(rng, -64, 64);
    return submit(net, std::move(input), std::move(options));
  }
  const RouteDecision decision = router_->route_and_dispatch(
      net, batch, first.in_height, first.in_width, options.inter_layer,
      options.array, admission_deadline_s(options));
  if (auto rejected = try_reject(decision, options.tag))
    return std::move(*rejected);
  options.modelled_seconds = decision.request_seconds;
  try {
    return servers_[decision.chip]->submit(net, batch, std::move(options));
  } catch (...) {
    router_->retract(decision);
    throw;
  }
}

RecoveryReport Fleet::recover(const std::string& journal_path,
                              const std::string& plan_snapshot_path) {
  RecoveryReport report;
  if (!plan_snapshot_path.empty()) {
    const SnapshotLoadResult snap =
        load_plan_cache(*cache_, plan_snapshot_path);
    report.plan_cache_entries_loaded = snap.entries_loaded;
  }
  JournalAnalysis log = analyze_journal_file(journal_path);
  report.journal_submits = log.submits;
  report.journal_completed = log.completed;
  report.journal_cancelled = log.cancelled;
  report.journal_rejected = log.rejected;
  report.truncated_tail = log.truncated_tail;
  report.checksum_errors = log.checksum_errors;

  // New tags must clear every journaled one: replays keep their original
  // tags and post-recovery submits continue past the maximum.
  std::uint64_t cur = next_tag_.load();
  while (cur < log.max_tag &&
         !next_tag_.compare_exchange_weak(cur, log.max_tag)) {
  }

  const std::vector<ChipSpec>& fleet_chips = router_->chips();
  for (InFlightRequest& req : log.in_flight) {
    SubmitRecord& s = req.submit;
    RequestOptions options;
    options.tag = s.tag;
    options.priority = static_cast<std::int32_t>(s.priority);
    options.num_workers = s.num_workers;
    options.verify_against_golden = s.verify_against_golden;
    options.exec_mode = s.exec_mode;
    options.array = s.array;
    options.inter_layer = s.inter_layer;
    if (req.checkpoint) {
      options.resume = req.checkpoint;
      ++report.resumed_from_checkpoint;
    }

    // Pin the replay to the chip that held it pre-crash — the chip the
    // last checkpoint was captured on, else the chip the router placed
    // it on — so a same-topology recovery reproduces the original run
    // bit for bit (same array => same plans, cycles and ofmaps).
    const std::string& pin_name =
        req.checkpoint ? req.checkpoint_chip : s.chip_name;
    std::optional<std::size_t> pin;
    for (std::size_t c = 0; c < fleet_chips.size(); ++c) {
      if (fleet_chips[c].name == pin_name) {
        pin = c;
        break;
      }
    }

    std::future<InferenceResult> fut;
    if (pin) {
      // Manual dispatch: charge the pinned chip's backlog exactly as
      // route_and_dispatch would have, then enqueue directly.
      RouteDecision d;
      d.chip = *pin;
      d.chip_name = pin_name;
      d.request_seconds = router_->modelled_request_seconds(
          *pin, s.net, s.input.shape().dim(0), s.input.shape().dim(2),
          s.input.shape().dim(3), s.inter_layer, s.array);
      router_->dispatch(d);
      journal_submit(d, s.net, s.input, options);
      options.modelled_seconds = d.request_seconds;
      try {
        fut = servers_[*pin]->submit(std::move(s.net), std::move(s.input),
                                     std::move(options));
      } catch (...) {
        router_->retract(d);
        if (opts_.journal)
          opts_.journal->append(encode_cancel(s.tag, CancelReason::kFailed));
        throw;
      }
    } else {
      // The pre-crash chip is not part of this fleet: fall back to
      // normal routing. With a checkpoint in hand this is the
      // cross-chip handoff — the resumed layers re-plan for the new
      // chip and the ofmaps stay value-identical (the PR-5 guarantee).
      if (req.checkpoint) {
        ++handoffs_;
        ++report.checkpoint_handoffs;
      }
      fut = submit(std::move(s.net), std::move(s.input), std::move(options));
    }
    ++recovered_;
    ++report.replayed;
    report.futures.emplace_back(s.tag, std::move(fut));
  }
  return report;
}

RouteDecision Fleet::plan_route(const nn::NetworkModel& net,
                                std::int64_t batch,
                                const RequestOptions& options) const {
  CHAINNN_CHECK_MSG(!net.conv_layers.empty(),
                    "cannot route an empty network");
  const nn::ConvLayerParams& first = net.conv_layers.front();
  return router_->route(net, batch, first.in_height, first.in_width,
                        options.inter_layer, options.array);
}

void Fleet::wait_idle() {
  for (const auto& server : servers_) server->wait_idle();
}

double FleetTraceReport::fleet_makespan_seconds() const {
  double makespan = 0.0;
  for (const double busy : busy_seconds) makespan = std::max(makespan, busy);
  return makespan;
}

std::size_t FleetTraceReport::best_single_chip() const {
  CHAINNN_CHECK(!single_chip_seconds.empty());
  std::size_t best = 0;
  for (std::size_t c = 1; c < single_chip_seconds.size(); ++c)
    if (single_chip_seconds[c] < single_chip_seconds[best]) best = c;
  return best;
}

double FleetTraceReport::best_single_seconds() const {
  return single_chip_seconds[best_single_chip()];
}

double FleetTraceReport::modelled_speedup() const {
  const double makespan = fleet_makespan_seconds();
  return makespan == 0.0 ? 0.0 : best_single_seconds() / makespan;
}

FleetTraceReport run_fleet_trace(Fleet& fleet,
                                 const std::vector<FleetTraceEntry>& trace) {
  const std::size_t num_chips = fleet.chips().size();
  FleetTraceReport report;
  report.busy_seconds.assign(num_chips, 0.0);
  report.single_chip_seconds.assign(num_chips, 0.0);

  // Per-entry modelled seconds on every chip, priced up front; charged
  // below only for entries that actually complete, so a cancelled or
  // failed request drops out of *both* sides of the comparison and
  // cannot tilt the modelled speedup toward the fleet.
  std::vector<std::vector<double>> entry_seconds(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const FleetTraceEntry& e = trace[i];
    CHAINNN_CHECK_MSG(e.net && !e.net->conv_layers.empty(),
                      "trace entry without a network");
    const nn::ConvLayerParams& first = e.net->conv_layers.front();
    entry_seconds[i].resize(num_chips);
    // The entry's per-request array override applies on both sides:
    // busy_seconds accrues override-based modelled_seconds, so pricing
    // the single-chip replay on the chip's native array would compare
    // two different workloads.
    for (std::size_t c = 0; c < num_chips; ++c)
      entry_seconds[i][c] = fleet.router().modelled_request_seconds(
          c, *e.net, e.batch, first.in_height, first.in_width,
          e.options.inter_layer, e.options.array);
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(trace.size());
  for (const FleetTraceEntry& e : trace)
    futures.push_back(fleet.submit(*e.net, e.batch, e.options));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const InferenceResult r = futures[i].get();
    if (r.status != RequestStatus::kOk) continue;
    ++report.completed;
    for (std::size_t c = 0; c < num_chips; ++c) {
      report.single_chip_seconds[c] += entry_seconds[i][c];
      if (fleet.chips()[c].name == r.chip)
        report.busy_seconds[c] += r.modelled_seconds;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  report.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return report;
}

FleetStats Fleet::stats() const {
  FleetStats out;
  const std::vector<double> backlog = router_->backlog_seconds();
  const std::vector<double> dispatched = router_->dispatched_seconds();
  const std::vector<std::int64_t> routed = router_->routed_counts();
  out.chips.reserve(servers_.size());
  for (std::size_t c = 0; c < servers_.size(); ++c) {
    FleetChipStats chip;
    chip.name = opts_.chips[c].name;
    chip.server = servers_[c]->stats();
    chip.routed = routed[c];
    chip.backlog_seconds = backlog[c];
    chip.dispatched_seconds = dispatched[c];
    out.submitted += chip.server.submitted;
    out.completed += chip.server.completed;
    out.failed += chip.server.failed;
    out.cancelled += chip.server.cancelled;
    out.deadline_misses += chip.server.deadline_misses;
    out.deadline_expired += chip.server.deadline_expired;
    out.preemptions += chip.server.preemptions;
    out.resumes += chip.server.resumes;
    out.fidelity_samples += chip.server.fidelity_samples;
    out.fidelity_divergences += chip.server.fidelity_divergences;
    out.arena.bytes_in_use += chip.server.arena.bytes_in_use;
    out.arena.high_water_bytes += chip.server.arena.high_water_bytes;
    out.arena.freelist_bytes += chip.server.arena.freelist_bytes;
    out.arena.allocations += chip.server.arena.allocations;
    out.arena.reuses += chip.server.arena.reuses;
    out.chips.push_back(std::move(chip));
  }
  out.rejected = rejected_.load();
  out.recovered_requests = recovered_.load();
  out.checkpoint_handoffs = handoffs_.load();
  if (opts_.journal) out.journal = opts_.journal->stats();
  out.plan_cache = cache_->stats();
  return out;
}

}  // namespace chainnn::serve
