#include "serve/plan_cache.hpp"

#include <utility>

namespace chainnn::serve {

std::uint64_t plan_footprint_bytes(const dataflow::ExecutionPlan& plan) {
  // Flat constant for the map node, LRU node and allocator slack; the
  // variable part is the subconv/strip vectors and the layer name.
  std::uint64_t bytes = sizeof(dataflow::ExecutionPlan) + 128;
  bytes += plan.layer.name.capacity();
  bytes += plan.subconvs.capacity() * sizeof(dataflow::SubConvPlan);
  for (const dataflow::SubConvPlan& sp : plan.subconvs)
    bytes += sp.strips.capacity() * sizeof(dataflow::Strip);
  return bytes;
}

PlanCache::PlanCache(PlanCacheOptions options) : opts_(options) {}

void PlanCache::touch(Entry& entry) {
  if (entry.lru != lru_.begin())
    lru_.splice(lru_.begin(), lru_, entry.lru);
}

void PlanCache::evict_to_budget() {
  if (opts_.max_bytes == 0) return;
  // Never evict the most recently used entry: the caller of the insert
  // that triggered this is about to use it, and a budget below one plan
  // must not empty the cache entirely.
  while (bytes_ > opts_.max_bytes && map_.size() > 1) {
    const dataflow::PlanKey victim = lru_.back();
    const auto it = map_.find(victim);
    bytes_ -= it->second.bytes;
    lru_.pop_back();
    map_.erase(it);
    ++evictions_;
  }
}

std::shared_ptr<const dataflow::ExecutionPlan> PlanCache::shared_plan_for(
    const nn::ConvLayerParams& layer, const dataflow::ArrayShape& array,
    const mem::HierarchyConfig& memory, Lookup* lookup) {
  // plan_layer validates too, but a cache hit must reject exactly the
  // same inputs a direct call would (batch is not part of the key).
  layer.validate();
  const dataflow::PlanKey key = dataflow::PlanKey::from(layer, array, memory);

  std::shared_ptr<const dataflow::ExecutionPlan> entry;
  {
    MutexLock lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      entry = it->second.plan;
      touch(it->second);
      ++hits_;
      if (lookup) *lookup = {true, map_.size()};
    }
  }

  if (!entry) {
    // Plan outside the lock so concurrent misses don't serialize; a
    // racing double-compute is benign (both produce the same plan, the
    // first insert wins and the loser's copy is dropped).
    auto fresh = std::make_shared<dataflow::ExecutionPlan>(
        dataflow::plan_layer(layer, array, memory));
    const std::uint64_t fresh_bytes = plan_footprint_bytes(*fresh);
    MutexLock lock(mu_);
    auto [it, inserted] = map_.try_emplace(key);
    if (inserted) {
      lru_.push_front(key);
      it->second = Entry{std::move(fresh), fresh_bytes, lru_.begin()};
      bytes_ += fresh_bytes;
      evict_to_budget();
    } else {
      touch(it->second);
    }
    entry = it->second.plan;
    ++misses_;
    if (lookup) *lookup = {false, map_.size()};
  }
  return entry;
}

dataflow::ExecutionPlan PlanCache::plan_for(const nn::ConvLayerParams& layer,
                                            const dataflow::ArrayShape& array,
                                            const mem::HierarchyConfig& memory,
                                            Lookup* lookup) {
  const std::shared_ptr<const dataflow::ExecutionPlan> entry =
      shared_plan_for(layer, array, memory, lookup);
  // Re-stamp the caller's exact inputs: the cached entry may have been
  // built for a different batch / name / clock (all outside the key), and
  // the derived structure is invariant to them, so the patched copy is
  // field-for-field what plan_layer(layer, array, memory) returns.
  dataflow::ExecutionPlan plan = *entry;
  plan.layer = layer;
  plan.array = array;
  plan.memory = memory;
  return plan;
}

PlanCacheStats PlanCache::stats() const {
  MutexLock lock(mu_);
  return {hits_, misses_, map_.size(), evictions_, bytes_};
}

std::uint64_t PlanCache::size() const {
  MutexLock lock(mu_);
  return map_.size();
}

std::vector<PlanCache::EntryInputs> PlanCache::entry_inputs() const {
  MutexLock lock(mu_);
  std::vector<EntryInputs> out;
  out.reserve(map_.size());
  // lru_ front = MRU, so snapshots preserve recency order (the loader
  // replays them LRU-first to rebuild the same ordering).
  for (const dataflow::PlanKey& key : lru_) {
    const auto it = map_.find(key);
    if (it == map_.end()) continue;  // unreachable; defensive
    const dataflow::ExecutionPlan& plan = *it->second.plan;
    out.push_back({plan.layer, plan.array, plan.memory});
  }
  return out;
}

void PlanCache::clear() {
  MutexLock lock(mu_);
  map_.clear();
  lru_.clear();
  bytes_ = 0;
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

}  // namespace chainnn::serve
