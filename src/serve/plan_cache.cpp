#include "serve/plan_cache.hpp"

#include <utility>

namespace chainnn::serve {

dataflow::ExecutionPlan PlanCache::plan_for(const nn::ConvLayerParams& layer,
                                            const dataflow::ArrayShape& array,
                                            const mem::HierarchyConfig& memory,
                                            Lookup* lookup) {
  // plan_layer validates too, but a cache hit must reject exactly the
  // same inputs a direct call would (batch is not part of the key).
  layer.validate();
  const dataflow::PlanKey key = dataflow::PlanKey::from(layer, array, memory);

  std::shared_ptr<const dataflow::ExecutionPlan> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      entry = it->second;
      ++hits_;
      if (lookup) *lookup = {true, map_.size()};
    }
  }

  if (!entry) {
    // Plan outside the lock so concurrent misses don't serialize; a
    // racing double-compute is benign (both produce the same plan, the
    // first insert wins and the loser's copy is dropped).
    auto fresh = std::make_shared<dataflow::ExecutionPlan>(
        dataflow::plan_layer(layer, array, memory));
    std::lock_guard<std::mutex> lock(mu_);
    entry = map_.emplace(key, std::move(fresh)).first->second;
    ++misses_;
    if (lookup) *lookup = {false, map_.size()};
  }

  // Re-stamp the caller's exact inputs: the cached entry may have been
  // built for a different batch / name / clock (all outside the key), and
  // the derived structure is invariant to them, so the patched copy is
  // field-for-field what plan_layer(layer, array, memory) returns.
  dataflow::ExecutionPlan plan = *entry;
  plan.layer = layer;
  plan.array = array;
  plan.memory = memory;
  return plan;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {hits_, misses_, map_.size()};
}

std::uint64_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace chainnn::serve
