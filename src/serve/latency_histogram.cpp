#include "serve/latency_histogram.hpp"

#include <cmath>

namespace chainnn::serve {

double LatencyHistogram::bucket_upper_ms(int i) {
  return kMinMs * std::exp2(static_cast<double>(i) / 4.0);
}

void LatencyHistogram::record(double ms) {
  if (!(ms >= 0.0)) ms = 0.0;  // NaN / negative clock dust -> bucket 0
  int idx = 0;
  if (ms > kMinMs) {
    // First bucket whose upper bound covers the sample: ceil of the
    // log-ratio in quarter-octaves.
    idx = static_cast<int>(std::ceil(4.0 * std::log2(ms / kMinMs)));
    if (idx < 0) idx = 0;
    if (idx > kFiniteBuckets) idx = kFiniteBuckets;  // +Inf overflow
  }
  counts_[static_cast<std::size_t>(idx)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(static_cast<std::uint64_t>(ms * 1e6),
                    std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  s.counts.resize(kFiniteBuckets + 1);
  // Bucket counts are summed rather than trusting count_: a scrape
  // racing a record() must still report count == sum(buckets), or the
  // Prometheus +Inf cumulative bucket would disagree with _count.
  for (int i = 0; i <= kFiniteBuckets; ++i) {
    s.counts[static_cast<std::size_t>(i)] =
        counts_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    s.count += s.counts[static_cast<std::size_t>(i)];
  }
  s.sum_ms =
      static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) / 1e6;
  return s;
}

double LatencyHistogram::Snapshot::quantile_ms(double p) const {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the quantile sample, 1-based; ceil so p = 0.5 of 2 samples
  // picks the first, p = 1.0 the last.
  const double exact = p * static_cast<double>(count);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(exact));
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (int i = 0; i <= kFiniteBuckets; ++i) {
    cumulative += counts[static_cast<std::size_t>(i)];
    if (cumulative >= rank)
      return bucket_upper_ms(i < kFiniteBuckets ? i : kFiniteBuckets - 1);
  }
  return bucket_upper_ms(kFiniteBuckets - 1);  // unreachable
}

}  // namespace chainnn::serve
