// PlanCache — a thread-safe, shared cache in front of dataflow::plan_layer.
//
// Chain-NN's fixed 1D-chain dataflow makes an ExecutionPlan a pure
// function of (layer geometry, array shape, memory capacities), so plans
// can be computed once and shared: across the layers of a network (VGG's
// repeated 3x3 blocks), across batch sizes, across requests of a serving
// process, and across the design points of a sweep (points differing
// only in clock frequency share every entry — see dataflow::PlanKey for
// exactly which fields discriminate).
//
// The cache is semantics-free by construction: plan_for() re-stamps the
// caller's layer / array / memory verbatim into the fetched copy, so the
// returned plan is field-for-field identical to what plan_layer would
// have built (tests/serve/test_plan_cache.cpp pins this equivalence).
// Sharing one cache between threads is safe; lookups under contention
// return identical plans.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "dataflow/plan.hpp"

namespace chainnn::serve {

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t entries = 0;

  [[nodiscard]] std::uint64_t lookups() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    return lookups() == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups());
  }
};

class PlanCache {
 public:
  PlanCache() = default;
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Outcome of one plan_for() call, for callers that surface cache
  // behaviour in their own accounting (RunStats).
  struct Lookup {
    bool hit = false;
    std::uint64_t entries = 0;  // cache size after this lookup
  };

  // The plan plan_layer(layer, array, memory) would build, served from
  // the cache when the structural key matches a previous call. Throws
  // exactly when plan_layer would (the layer is validated and unmappable
  // layers are planned — and fail — outside the cache).
  [[nodiscard]] dataflow::ExecutionPlan plan_for(
      const nn::ConvLayerParams& layer, const dataflow::ArrayShape& array,
      const mem::HierarchyConfig& memory, Lookup* lookup = nullptr);

  [[nodiscard]] PlanCacheStats stats() const;
  [[nodiscard]] std::uint64_t size() const;
  void clear();  // drops entries and resets the hit/miss counters

 private:
  mutable std::mutex mu_;
  std::unordered_map<dataflow::PlanKey,
                     std::shared_ptr<const dataflow::ExecutionPlan>,
                     dataflow::PlanKeyHash>
      map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace chainnn::serve
