// PlanCache — a thread-safe, shared cache in front of dataflow::plan_layer.
//
// Chain-NN's fixed 1D-chain dataflow makes an ExecutionPlan a pure
// function of (layer geometry, array shape, memory capacities), so plans
// can be computed once and shared: across the layers of a network (VGG's
// repeated 3x3 blocks), across batch sizes, across requests of a serving
// process, and across the design points of a sweep (points differing
// only in clock frequency share every entry — see dataflow::PlanKey for
// exactly which fields discriminate).
//
// The cache is semantics-free by construction: plan_for() re-stamps the
// caller's layer / array / memory verbatim into the fetched copy, so the
// returned plan is field-for-field identical to what plan_layer would
// have built (tests/serve/test_plan_cache.cpp pins this equivalence).
// Sharing one cache between threads is safe; lookups under contention
// return identical plans.
//
// Long-running fleets see an unbounded stream of (layer, array) shapes,
// so the cache can be given a byte budget (PlanCacheOptions::max_bytes):
// entries are kept in LRU order and the least-recently-used ones are
// evicted once the approximate resident footprint exceeds the budget.
// Eviction only ever costs a re-plan on the next miss — results stay
// bit-identical (eviction is as semantics-free as the cache itself).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "dataflow/plan.hpp"

namespace chainnn::serve {

struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t entries = 0;
  std::uint64_t evictions = 0;  // entries dropped to stay under max_bytes
  std::uint64_t bytes = 0;      // approximate resident footprint

  [[nodiscard]] std::uint64_t lookups() const { return hits + misses; }
  [[nodiscard]] double hit_rate() const {
    return lookups() == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups());
  }
};

struct PlanCacheOptions {
  // LRU byte budget over the approximate per-entry footprint
  // (plan_footprint_bytes). 0 = unbounded (the historical behaviour).
  // The most recently used entry is never evicted, so a budget smaller
  // than one plan degrades to a one-entry cache rather than thrashing to
  // zero.
  std::uint64_t max_bytes = 0;
};

// Approximate heap footprint of one cached plan: the struct itself plus
// its owned vectors/strings. Used for the LRU budget; deliberately an
// estimate (malloc overhead and map/list nodes are charged as a flat
// constant).
[[nodiscard]] std::uint64_t plan_footprint_bytes(
    const dataflow::ExecutionPlan& plan);

class PlanCache {
 public:
  explicit PlanCache(PlanCacheOptions options = {});
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Outcome of one plan_for() call, for callers that surface cache
  // behaviour in their own accounting (RunStats).
  struct Lookup {
    bool hit = false;
    std::uint64_t entries = 0;  // cache size after this lookup
  };

  // The plan plan_layer(layer, array, memory) would build, served from
  // the cache when the structural key matches a previous call. Throws
  // exactly when plan_layer would (the layer is validated and unmappable
  // layers are planned — and fail — outside the cache).
  [[nodiscard]] dataflow::ExecutionPlan plan_for(
      const nn::ConvLayerParams& layer, const dataflow::ArrayShape& array,
      const mem::HierarchyConfig& memory, Lookup* lookup = nullptr);

  // The cached entry itself, without plan_for's re-stamping copy (an
  // ExecutionPlan owns per-subconv strip vectors, so the copy dominates
  // the cost of sizing a request on the routing hot path). The entry
  // carries the layer/array/memory of whichever call first populated it
  // — equal to the caller's in every PlanKey field but possibly not
  // outside the key (batch, name, clock, dual_channel, pipeline_stages,
  // iMemory/kMemory capacities) — so callers must read only key-derived
  // structure, or closed forms taking the caller's array explicitly
  // (dataflow::estimate_request_cycles(plan, array, batch)).
  [[nodiscard]] std::shared_ptr<const dataflow::ExecutionPlan>
  shared_plan_for(const nn::ConvLayerParams& layer,
                  const dataflow::ArrayShape& array,
                  const mem::HierarchyConfig& memory,
                  Lookup* lookup = nullptr);

  [[nodiscard]] PlanCacheStats stats() const;
  [[nodiscard]] std::uint64_t size() const;
  [[nodiscard]] const PlanCacheOptions& options() const { return opts_; }
  void clear();  // drops entries and resets the hit/miss counters

  // The (layer, array, memory) inputs of every resident entry, MRU
  // first — everything a snapshot needs to rebuild the cache, because a
  // plan is a pure function of these inputs (re-planning them on load
  // reproduces each entry field for field). Used by durable.cpp's
  // PlanCache snapshot writer.
  struct EntryInputs {
    nn::ConvLayerParams layer;
    dataflow::ArrayShape array;
    mem::HierarchyConfig memory;
  };
  [[nodiscard]] std::vector<EntryInputs> entry_inputs() const;

 private:
  struct Entry {
    std::shared_ptr<const dataflow::ExecutionPlan> plan;
    std::uint64_t bytes = 0;
    std::list<dataflow::PlanKey>::iterator lru;  // position in lru_
  };

  void touch(Entry& entry) CHAINNN_REQUIRES(mu_);
  void evict_to_budget() CHAINNN_REQUIRES(mu_);

  PlanCacheOptions opts_;
  mutable Mutex mu_;
  std::unordered_map<dataflow::PlanKey, Entry, dataflow::PlanKeyHash> map_
      CHAINNN_GUARDED_BY(mu_);
  std::list<dataflow::PlanKey> lru_ CHAINNN_GUARDED_BY(mu_);  // front = MRU
  std::uint64_t bytes_ CHAINNN_GUARDED_BY(mu_) = 0;
  std::uint64_t hits_ CHAINNN_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ CHAINNN_GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ CHAINNN_GUARDED_BY(mu_) = 0;
};

}  // namespace chainnn::serve
