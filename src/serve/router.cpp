#include "serve/router.hpp"

#include <limits>
#include <utility>

#include "common/check.hpp"

namespace chainnn::serve {

std::vector<ChipSpec> default_fleet_chips() {
  // SRAM capacities scale with chain length (the paper's §V.B sizes are
  // per-576-PE); clocks are staggered so neither the short nor the long
  // chain dominates every layer shape.
  const auto scaled = [](std::int64_t num_pes, double clock_hz) {
    ChipSpec chip;
    chip.array.num_pes = num_pes;
    chip.array.clock_hz = clock_hz;
    const mem::HierarchyConfig base;
    const auto scale = [num_pes](std::uint64_t bytes) {
      return bytes * static_cast<std::uint64_t>(num_pes) / 576;
    };
    chip.memory.imemory_bytes = scale(base.imemory_bytes);
    chip.memory.omemory_bytes = scale(base.omemory_bytes);
    chip.memory.kmemory_bytes = scale(base.kmemory_bytes);
    return chip;
  };
  ChipSpec small = scaled(288, 900e6);
  small.name = "pe288";
  ChipSpec paper = scaled(576, 700e6);
  paper.name = "pe576";
  ChipSpec large = scaled(1152, 500e6);
  large.name = "pe1152";
  return {small, paper, large};
}

std::vector<nn::ConvLayerParams> resolve_network_layers(
    const nn::NetworkModel& net, std::int64_t batch, std::int64_t in_height,
    std::int64_t in_width,
    const std::vector<chain::InterLayerOp>& inter_layer) {
  CHAINNN_CHECK_MSG(batch >= 1, "batch must be >= 1, got " << batch);
  std::vector<nn::ConvLayerParams> resolved;
  resolved.reserve(net.conv_layers.size());
  std::int64_t h = in_height;
  std::int64_t w = in_width;
  for (std::size_t i = 0; i < net.conv_layers.size(); ++i) {
    nn::ConvLayerParams layer = net.conv_layers[i];
    layer.batch = batch;
    layer.in_height = h;
    layer.in_width = w;
    layer.validate();
    h = layer.out_height();
    w = layer.out_width();
    const chain::InterLayerOp op = i < inter_layer.size()
                                       ? inter_layer[i]
                                       : chain::InterLayerOp{};
    if (op.pool) {
      h = op.pool_params.out_size(h);
      w = op.pool_params.out_size(w);
    }
    resolved.push_back(std::move(layer));
  }
  return resolved;
}

Router::Router(std::vector<ChipSpec> chips, std::shared_ptr<PlanCache> cache)
    : chips_(std::move(chips)),
      cache_(std::move(cache)),
      backlog_(chips_.size(), 0.0),
      dispatched_(chips_.size(), 0.0),
      routed_(chips_.size(), 0) {
  CHAINNN_CHECK_MSG(!chips_.empty(), "a fleet needs at least one chip");
  CHAINNN_CHECK_MSG(cache_ != nullptr, "router needs a shared PlanCache");
}

dataflow::RequestCycleEstimate Router::cycles_for_resolved(
    std::size_t chip, const std::vector<nn::ConvLayerParams>& layers,
    std::int64_t batch,
    const std::optional<dataflow::ArrayShape>& array_override) const {
  CHAINNN_CHECK_MSG(chip < chips_.size(),
                    "chip " << chip << " out of range");
  const dataflow::ArrayShape& array =
      array_override ? *array_override : chips_[chip].array;
  dataflow::RequestCycleEstimate total;
  for (const nn::ConvLayerParams& layer : layers) {
    // Shared fetch: sizing a request stays a hash lookup per layer, not
    // a deep plan copy; the caller's array goes to the closed forms
    // explicitly since the cached entry's array may differ outside the
    // key.
    const std::shared_ptr<const dataflow::ExecutionPlan> plan =
        cache_->shared_plan_for(layer, array, chips_[chip].memory);
    const dataflow::RequestCycleEstimate est =
        dataflow::estimate_request_cycles(*plan, array, batch);
    total.kernel_load_cycles += est.kernel_load_cycles;
    total.stream_cycles += est.stream_cycles;
    total.drain_cycles += est.drain_cycles;
  }
  return total;
}

dataflow::RequestCycleEstimate Router::modelled_request_cycles(
    std::size_t chip, const nn::NetworkModel& net, std::int64_t batch,
    std::int64_t in_height, std::int64_t in_width,
    const std::vector<chain::InterLayerOp>& inter_layer,
    const std::optional<dataflow::ArrayShape>& array_override) const {
  return cycles_for_resolved(
      chip, resolve_network_layers(net, batch, in_height, in_width, inter_layer),
      batch, array_override);
}

double Router::modelled_request_seconds(
    std::size_t chip, const nn::NetworkModel& net, std::int64_t batch,
    std::int64_t in_height, std::int64_t in_width,
    const std::vector<chain::InterLayerOp>& inter_layer,
    const std::optional<dataflow::ArrayShape>& array_override) const {
  const dataflow::ArrayShape& array =
      array_override ? *array_override : chips_[chip].array;
  return modelled_request_cycles(chip, net, batch, in_height, in_width,
                                 inter_layer, array_override)
      .seconds(array.clock_hz);
}

Router::Estimates Router::estimate_all(
    const nn::NetworkModel& net, std::int64_t batch, std::int64_t in_height,
    std::int64_t in_width,
    const std::vector<chain::InterLayerOp>& inter_layer,
    const std::optional<dataflow::ArrayShape>& array_override) const {
  // Plan lookups may plan on a cold cache, so estimation never holds the
  // router lock. The resolved geometry is chip-independent, so resolve
  // (and validate) once, not once per chip.
  const std::vector<nn::ConvLayerParams> layers =
      resolve_network_layers(net, batch, in_height, in_width, inter_layer);
  Estimates est;
  est.cycles.resize(chips_.size());
  est.seconds.resize(chips_.size());
  for (std::size_t c = 0; c < chips_.size(); ++c) {
    est.cycles[c] = cycles_for_resolved(c, layers, batch, array_override);
    const dataflow::ArrayShape& array =
        array_override ? *array_override : chips_[c].array;
    est.seconds[c] = est.cycles[c].seconds(array.clock_hz);
  }
  return est;
}

RouteDecision Router::pick_locked(const Estimates& est) const {
  RouteDecision best;
  double best_finish = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < chips_.size(); ++c) {
    const double finish = backlog_[c] + est.seconds[c];
    if (finish < best_finish) {
      best_finish = finish;
      best.chip = c;
      best.chip_name = chips_[c].name;
      best.request_seconds = est.seconds[c];
      best.backlog_seconds = backlog_[c];
      best.request_cycles = est.cycles[c].total();
    }
  }
  return best;
}

RouteDecision Router::route(
    const nn::NetworkModel& net, std::int64_t batch, std::int64_t in_height,
    std::int64_t in_width,
    const std::vector<chain::InterLayerOp>& inter_layer,
    const std::optional<dataflow::ArrayShape>& array_override) const {
  const Estimates est = estimate_all(net, batch, in_height, in_width,
                                     inter_layer, array_override);
  MutexLock lock(mu_);
  return pick_locked(est);
}

RouteDecision Router::route_and_dispatch(
    const nn::NetworkModel& net, std::int64_t batch, std::int64_t in_height,
    std::int64_t in_width,
    const std::vector<chain::InterLayerOp>& inter_layer,
    const std::optional<dataflow::ArrayShape>& array_override,
    const std::optional<double>& admission_deadline_s) {
  const Estimates est = estimate_all(net, batch, in_height, in_width,
                                     inter_layer, array_override);
  MutexLock lock(mu_);
  RouteDecision decision = pick_locked(est);
  if (admission_deadline_s) {
    const dataflow::ArrayShape& array =
        array_override ? *array_override : chips_[decision.chip].array;
    if (!est.cycles[decision.chip].feasible_within(
            array.clock_hz, decision.backlog_seconds,
            *admission_deadline_s)) {
      // Earliest finish already misses the deadline => so does every
      // chip. Reject without charging anything.
      decision.admitted = false;
      return decision;
    }
  }
  backlog_[decision.chip] += decision.request_seconds;
  dispatched_[decision.chip] += decision.request_seconds;
  ++routed_[decision.chip];
  return decision;
}

void Router::dispatch(const RouteDecision& decision) {
  CHAINNN_CHECK_MSG(decision.chip < chips_.size(),
                    "chip " << decision.chip << " out of range");
  MutexLock lock(mu_);
  backlog_[decision.chip] += decision.request_seconds;
  dispatched_[decision.chip] += decision.request_seconds;
  ++routed_[decision.chip];
}

void Router::retract(const RouteDecision& decision) {
  CHAINNN_CHECK_MSG(decision.chip < chips_.size(),
                    "chip " << decision.chip << " out of range");
  MutexLock lock(mu_);
  backlog_[decision.chip] -= decision.request_seconds;
  if (backlog_[decision.chip] < 0.0) backlog_[decision.chip] = 0.0;
  dispatched_[decision.chip] -= decision.request_seconds;
  if (dispatched_[decision.chip] < 0.0) dispatched_[decision.chip] = 0.0;
  if (routed_[decision.chip] > 0) --routed_[decision.chip];
}

void Router::complete(std::size_t chip, double request_seconds) {
  CHAINNN_CHECK_MSG(chip < chips_.size(), "chip " << chip << " out of range");
  MutexLock lock(mu_);
  backlog_[chip] -= request_seconds;
  if (backlog_[chip] < 0.0) backlog_[chip] = 0.0;  // float dust
}

std::vector<double> Router::backlog_seconds() const {
  MutexLock lock(mu_);
  return backlog_;
}

std::vector<std::int64_t> Router::routed_counts() const {
  MutexLock lock(mu_);
  return routed_;
}

std::vector<double> Router::dispatched_seconds() const {
  MutexLock lock(mu_);
  return dispatched_;
}

}  // namespace chainnn::serve
