#include "serve/design_search.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/check.hpp"
#include "serve/router.hpp"

namespace chainnn::serve {

namespace {

// Per-layer cost models for one (chain length, kmem words, omem bytes)
// combination — everything a point needs except its clock and channel
// mask, both of which are outside the plan entirely. A search over C
// clocks and 2^L masks builds each combination exactly once.
struct ComboModels {
  bool feasible = true;
  std::string reason;
  // [layer][mode]; mode 0 = single-channel, 1 = dual-channel. The plan
  // is mode-independent (dual_channel is outside PlanKey), so both
  // models read the same plan, re-stamped with the mode they cost.
  std::vector<std::array<dataflow::LayerCostModel, 2>> layers;
  double area_gates = 0.0;
};

std::uint64_t combo_key(std::int32_t pes, std::int32_t kmem,
                        std::int32_t omem) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(pes)) << 42) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(kmem)) << 21) ^
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(omem));
}

struct IdHash {
  std::size_t operator()(const DesignPointId& id) const { return id.hash(); }
};

template <typename T>
std::int32_t index_of(const std::vector<T>& axis, T value) {
  for (std::size_t i = 0; i < axis.size(); ++i)
    if (axis[i] == value) return static_cast<std::int32_t>(i);
  return -1;
}

}  // namespace

std::size_t DesignPointId::hash() const {
  // FNV-1a over the canonical fields.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint32_t>(pes));
  mix(static_cast<std::uint32_t>(clock));
  mix(static_cast<std::uint32_t>(kmem));
  mix(static_cast<std::uint32_t>(omem));
  mix(mode_mask);
  return static_cast<std::size_t>(h);
}

bool EvaluatedDesignPoint::uniform_mode() const {
  if (layer_dual.empty()) return true;
  for (const std::uint8_t d : layer_dual)
    if (d != layer_dual.front()) return false;
  return true;
}

DesignSpaceGrid DesignSpaceGrid::paper_default() {
  DesignSpaceGrid g;
  g.num_pes = {72,  144, 216, 288,  360,  432,  504,  576,
               648, 720, 864, 1008, 1152, 1440, 1728, 2304};
  for (int mhz = 200; mhz <= 1200; mhz += 50)
    g.clock_hz.push_back(static_cast<double>(mhz) * 1e6);
  g.kmem_words_per_pe = {64, 128, 256, 512};
  // The paper's 25KB oMemory caps the axis: larger oMemories strictly
  // reduce cycles through better output blocking, so extending above the
  // paper's provisioning would push the 576@700 instantiation off the
  // frontier by construction. The search asks what *cheaper* memory
  // provisioning trades away, not whether more SRAM helps (it does).
  g.omemory_bytes = {4 * 1024, 8 * 1024, 12 * 1024, 16 * 1024, 25 * 1024};
  return g;
}

struct DesignSearch::Impl {
  static constexpr std::size_t kStripes = 64;

  std::vector<nn::ConvLayerParams> layers;
  DesignPointId paper_id;
  bool grid_has_paper_point = false;

  struct ComboStripe {
    Mutex mu;
    std::unordered_map<std::uint64_t, std::shared_ptr<const ComboModels>>
        map CHAINNN_GUARDED_BY(mu);
  };
  std::array<ComboStripe, kStripes> combos;

  struct VisitStripe {
    Mutex mu;
    std::unordered_set<DesignPointId, IdHash> set CHAINNN_GUARDED_BY(mu);
  };
  std::array<VisitStripe, kStripes> visited;

  Mutex frontier_mu;
  std::vector<EvaluatedDesignPoint> frontier CHAINNN_GUARDED_BY(frontier_mu);

  // First sight of a canonical form wins; later discoverers see false.
  bool visit(const DesignPointId& id) {
    VisitStripe& s = visited[id.hash() % kStripes];
    MutexLock lock(s.mu);
    return s.set.insert(id).second;
  }

  // Insert-if-undominated; evicts members the newcomer dominates. The
  // final content is the unique Pareto-maximal subset of everything ever
  // offered, whatever the arrival order — which is the determinism
  // argument for concurrent maintenance.
  void offer(const EvaluatedDesignPoint& p) {
    MutexLock lock(frontier_mu);
    for (const EvaluatedDesignPoint& e : frontier)
      if (e.cost.dominates(p.cost)) return;
    std::erase_if(frontier, [&p](const EvaluatedDesignPoint& e) {
      return p.cost.dominates(e.cost);
    });
    frontier.push_back(p);
  }
};

DesignSearch::DesignSearch(nn::NetworkModel network, DesignSpaceGrid grid,
                           DesignSearchOptions options)
    : net_(std::move(network)),
      grid_(std::move(grid)),
      opts_(std::move(options)),
      impl_(std::make_unique<Impl>()) {
  CHAINNN_CHECK_MSG(!net_.conv_layers.empty(),
                    "cannot search an empty network");
  CHAINNN_CHECK_MSG(opts_.batch >= 1,
                    "batch must be >= 1, got " << opts_.batch);
  const auto strictly_increasing = [](const auto& axis) {
    if (axis.empty()) return false;
    for (std::size_t i = 1; i < axis.size(); ++i)
      if (!(axis[i - 1] < axis[i])) return false;
    return true;
  };
  CHAINNN_CHECK_MSG(strictly_increasing(grid_.num_pes) &&
                        strictly_increasing(grid_.clock_hz) &&
                        strictly_increasing(grid_.kmem_words_per_pe) &&
                        strictly_increasing(grid_.omemory_bytes),
                    "every grid axis must be non-empty and strictly "
                    "increasing");

  const nn::ConvLayerParams& first = net_.conv_layers.front();
  impl_->layers = resolve_network_layers(net_, opts_.batch, first.in_height,
                                         first.in_width, opts_.inter_layer);
  CHAINNN_CHECK_MSG(!grid_.per_layer_channel_modes ||
                        impl_->layers.size() <= 64,
                    "per-layer channel modes support at most 64 layers, got "
                        << impl_->layers.size());
}

DesignSearch::~DesignSearch() = default;

DesignSearchResult DesignSearch::run() {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t num_layers = impl_->layers.size();
  const std::uint64_t all_dual =
      num_layers >= 64 ? ~0ull : ((1ull << num_layers) - 1);

  // The paper point's canonical id, when the grid contains it.
  {
    DesignPointId id;
    id.pes = index_of<std::int64_t>(grid_.num_pes, 576);
    id.clock = index_of<double>(grid_.clock_hz, 700e6);
    id.kmem = index_of<std::int64_t>(grid_.kmem_words_per_pe, 256);
    id.omem = index_of<std::uint64_t>(grid_.omemory_bytes, 25 * 1024);
    id.mode_mask = all_dual;
    impl_->grid_has_paper_point =
        id.pes >= 0 && id.clock >= 0 && id.kmem >= 0 && id.omem >= 0;
    if (impl_->grid_has_paper_point) impl_->paper_id = id;
  }

  DesignPointId seed;
  if (impl_->grid_has_paper_point) {
    seed = impl_->paper_id;
  } else {
    seed.pes = static_cast<std::int32_t>(grid_.num_pes.size() / 2);
    seed.clock = static_cast<std::int32_t>(grid_.clock_hz.size() / 2);
    seed.kmem = static_cast<std::int32_t>(grid_.kmem_words_per_pe.size() / 2);
    seed.omem = static_cast<std::int32_t>(grid_.omemory_bytes.size() / 2);
    seed.mode_mask = all_dual;
  }

  const auto models_for = [this](const DesignPointId& id)
      -> std::shared_ptr<const ComboModels> {
    const std::uint64_t key = combo_key(id.pes, id.kmem, id.omem);
    Impl::ComboStripe& stripe =
        impl_->combos[key % Impl::kStripes];
    {
      MutexLock lock(stripe.mu);
      const auto it = stripe.map.find(key);
      if (it != stripe.map.end()) return it->second;
    }
    // Build outside the stripe lock (pure — a racing duplicate build
    // produces an identical object and is discarded below).
    auto built = std::make_shared<ComboModels>();
    dataflow::ArrayShape array;
    array.num_pes = grid_.num_pes[static_cast<std::size_t>(id.pes)];
    array.kmem_words_per_pe =
        grid_.kmem_words_per_pe[static_cast<std::size_t>(id.kmem)];
    array.clock_hz = grid_.clock_hz.front();  // unused by the models
    mem::HierarchyConfig memory;
    memory.omemory_bytes =
        grid_.omemory_bytes[static_cast<std::size_t>(id.omem)];
    memory.kmemory_bytes = static_cast<std::uint64_t>(array.num_pes) *
                           static_cast<std::uint64_t>(
                               array.kmem_words_per_pe) *
                           memory.word_bytes;
    built->area_gates = opts_.area.total_gates(
        array.num_pes, dataflow::point_sram_bytes(array, memory));
    for (const nn::ConvLayerParams& layer : impl_->layers) {
      try {
        dataflow::ExecutionPlan plan =
            opts_.plan_cache ? opts_.plan_cache->plan_for(layer, array, memory)
                             : dataflow::plan_layer(layer, array, memory);
        std::array<dataflow::LayerCostModel, 2> modes;
        plan.array.dual_channel = false;
        modes[0] = dataflow::layer_cost_model(plan);
        plan.array.dual_channel = true;
        modes[1] = dataflow::layer_cost_model(plan);
        built->layers.push_back(modes);
      } catch (const std::exception& e) {
        built->feasible = false;
        built->reason = layer.name + ": " + e.what();
        break;
      }
    }
    MutexLock lock(stripe.mu);
    const auto [it, inserted] = stripe.map.emplace(key, std::move(built));
    return it->second;
  };

  const auto evaluate = [this, &models_for,
                         num_layers](const DesignPointId& id) {
    EvaluatedDesignPoint p;
    p.id = id;
    p.array.num_pes = grid_.num_pes[static_cast<std::size_t>(id.pes)];
    p.array.kmem_words_per_pe =
        grid_.kmem_words_per_pe[static_cast<std::size_t>(id.kmem)];
    p.array.clock_hz = grid_.clock_hz[static_cast<std::size_t>(id.clock)];
    p.memory.omemory_bytes =
        grid_.omemory_bytes[static_cast<std::size_t>(id.omem)];
    p.memory.kmemory_bytes = static_cast<std::uint64_t>(p.array.num_pes) *
                             static_cast<std::uint64_t>(
                                 p.array.kmem_words_per_pe) *
                             p.memory.word_bytes;
    p.layer_dual.resize(num_layers);
    for (std::size_t i = 0; i < num_layers; ++i)
      p.layer_dual[i] =
          static_cast<std::uint8_t>((id.mode_mask >> i) & 1);
    {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "pes%lld-clk%d-kw%lld-om%lluk",
                    static_cast<long long>(p.array.num_pes),
                    static_cast<int>(p.array.clock_hz / 1e6),
                    static_cast<long long>(p.array.kmem_words_per_pe),
                    static_cast<unsigned long long>(
                        p.memory.omemory_bytes / 1024));
      p.label = buf;
      const std::uint64_t all =
          num_layers >= 64 ? ~0ull : ((1ull << num_layers) - 1);
      if (id.mode_mask != all) {
        std::snprintf(buf, sizeof(buf), "-m%llx",
                      static_cast<unsigned long long>(id.mode_mask));
        p.label += buf;
      }
    }
    const std::shared_ptr<const ComboModels> combo = models_for(id);
    if (!combo->feasible) {
      p.cost.feasible = false;
      p.cost.infeasible_reason = combo->reason;
      return p;
    }
    std::vector<const dataflow::LayerCostModel*> refs;
    refs.reserve(num_layers);
    for (std::size_t i = 0; i < num_layers; ++i)
      refs.push_back(&combo->layers[i][p.layer_dual[i]]);
    p.cost = dataflow::accumulate_point_cost(refs, p.array.clock_hz,
                                             p.array.num_pes, opts_.batch,
                                             opts_.energy, combo->area_gates);
    return p;
  };

  const auto neighbors = [this, num_layers](const DesignPointId& id,
                                            std::vector<DesignPointId>& out) {
    out.clear();
    const auto step = [&out, &id](std::int32_t DesignPointId::* axis,
                                  std::int32_t limit) {
      DesignPointId n = id;
      if (id.*axis > 0) {
        n.*axis = id.*axis - 1;
        out.push_back(n);
      }
      if (id.*axis + 1 < limit) {
        n.*axis = id.*axis + 1;
        out.push_back(n);
      }
    };
    step(&DesignPointId::pes, static_cast<std::int32_t>(grid_.num_pes.size()));
    step(&DesignPointId::clock,
         static_cast<std::int32_t>(grid_.clock_hz.size()));
    step(&DesignPointId::kmem,
         static_cast<std::int32_t>(grid_.kmem_words_per_pe.size()));
    step(&DesignPointId::omem,
         static_cast<std::int32_t>(grid_.omemory_bytes.size()));
    if (grid_.per_layer_channel_modes) {
      for (std::size_t i = 0; i < num_layers && i < 64; ++i) {
        DesignPointId n = id;
        n.mode_mask = id.mode_mask ^ (1ull << i);
        out.push_back(n);
      }
    }
  };

  const bool serial = opts_.num_workers == 1;
  common::WorkPool* pool =
      serial ? nullptr
             : (opts_.pool ? opts_.pool : &common::WorkPool::shared());

  DesignSearchResult result;
  DesignSearchStats& stats = result.stats;

  std::vector<DesignPointId> wave = {seed};
  impl_->visit(seed);
  while (!wave.empty()) {
    ++stats.waves;
    std::vector<EvaluatedDesignPoint> evald(wave.size());
    const std::size_t chunk = 64;
    const std::size_t num_chunks = (wave.size() + chunk - 1) / chunk;
    std::vector<std::vector<DesignPointId>> discovered(num_chunks);

    const auto process = [&](std::size_t c) {
      std::vector<DesignPointId> scratch;
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(wave.size(), lo + chunk);
      for (std::size_t i = lo; i < hi; ++i) {
        evald[i] = evaluate(wave[i]);
        if (evald[i].cost.feasible) impl_->offer(evald[i]);
        // Pruned or not, the point expands: coverage of the reachable
        // grid is what makes the frontier the exact Pareto set (see
        // header comment); pruning saves storage, not reachability.
        neighbors(wave[i], scratch);
        for (const DesignPointId& n : scratch)
          if (impl_->visit(n)) discovered[c].push_back(n);
      }
    };
    if (serial || num_chunks == 1) {
      for (std::size_t c = 0; c < num_chunks; ++c) process(c);
    } else {
      std::vector<std::function<void()>> tasks;
      tasks.reserve(num_chunks);
      for (std::size_t c = 0; c < num_chunks; ++c)
        tasks.push_back([&process, c] { process(c); });
      pool->run_batch(std::move(tasks));
    }

    stats.evaluated += static_cast<std::int64_t>(wave.size());
    for (const EvaluatedDesignPoint& p : evald)
      if (!p.cost.feasible) ++stats.infeasible;
    if (opts_.collect_evaluated)
      result.evaluated.insert(result.evaluated.end(),
                              std::make_move_iterator(evald.begin()),
                              std::make_move_iterator(evald.end()));

    std::vector<DesignPointId> next;
    for (std::vector<DesignPointId>& d : discovered)
      next.insert(next.end(), d.begin(), d.end());
    // Which chunk won a contended visit() is timing-dependent; the
    // union is not. Canonical order restores determinism.
    std::sort(next.begin(), next.end());
    if (opts_.max_points > 0) {
      const std::int64_t remaining = opts_.max_points - stats.evaluated;
      if (remaining <= 0) break;
      if (static_cast<std::int64_t>(next.size()) > remaining)
        next.resize(static_cast<std::size_t>(remaining));
    }
    wave = std::move(next);
  }

  {
    MutexLock lock(impl_->frontier_mu);
    result.frontier = impl_->frontier;
  }
  std::sort(result.frontier.begin(), result.frontier.end(),
            [](const EvaluatedDesignPoint& a, const EvaluatedDesignPoint& b) {
              return a.id < b.id;
            });
  stats.frontier = static_cast<std::int64_t>(result.frontier.size());
  stats.pruned = stats.evaluated - stats.infeasible - stats.frontier;
  if (impl_->grid_has_paper_point)
    for (const EvaluatedDesignPoint& p : result.frontier)
      if (p.id == impl_->paper_id) {
        stats.contains_paper_point = true;
        break;
      }
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  stats.points_per_sec =
      stats.wall_seconds > 0.0
          ? static_cast<double>(stats.evaluated) / stats.wall_seconds
          : 0.0;
  return result;
}

}  // namespace chainnn::serve
