#include "serve/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace chainnn::serve {

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::i16_span(std::span<const std::int16_t> v) {
  u64(v.size());
  for (const std::int16_t x : v) {
    const auto u = static_cast<std::uint16_t>(x);
    buf_.push_back(static_cast<char>(u & 0xFF));
    buf_.push_back(static_cast<char>((u >> 8) & 0xFF));
  }
}

void ByteWriter::i64_span(std::span<const std::int64_t> v) {
  u64(v.size());
  for (const std::int64_t x : v) i64(x);
}

std::uint8_t ByteReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(
             static_cast<std::uint8_t>(bytes_[pos_ + i]))
         << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(bytes_[pos_ + i]))
         << (8 * i);
  pos_ += 8;
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint64_t n = u64();
  need(n);
  std::string s(bytes_.substr(pos_, n));
  pos_ += n;
  return s;
}

std::vector<std::int16_t> ByteReader::i16_vec() {
  const std::uint64_t n = u64();
  need(2 * n);
  std::vector<std::int16_t> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto lo =
        static_cast<std::uint16_t>(static_cast<std::uint8_t>(bytes_[pos_]));
    const auto hi = static_cast<std::uint16_t>(
        static_cast<std::uint8_t>(bytes_[pos_ + 1]));
    v.push_back(static_cast<std::int16_t>(
        static_cast<std::uint16_t>(lo | (hi << 8))));
    pos_ += 2;
  }
  return v;
}

std::vector<std::int64_t> ByteReader::i64_vec() {
  const std::uint64_t n = u64();
  need(8 * n);
  std::vector<std::int64_t> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(i64());
  return v;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string frame_record(std::string_view payload) {
  CHAINNN_CHECK_MSG(!payload.empty(), "record payload must carry a type byte");
  CHAINNN_CHECK_MSG(payload.size() <= 0xFFFFFFFFull,
                    "record payload too large: " << payload.size());
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u64(fnv1a64(payload));
  std::string framed = w.take();
  framed.append(payload);
  return framed;
}

JournalReadResult read_records(std::string_view body) {
  JournalReadResult out;
  std::size_t pos = 0;
  while (pos < body.size()) {
    // A record needs at least its 12-byte prefix plus 1 payload byte.
    if (body.size() - pos < 12) {
      out.truncated_tail = true;
      break;
    }
    ByteReader prefix(body.substr(pos, 12));
    const std::uint32_t len = prefix.u32();
    const std::uint64_t checksum = prefix.u64();
    if (len == 0 || body.size() - pos - 12 < len) {
      // A zero length can only come from a torn prefix (frame_record
      // refuses empty payloads), and a short payload is the tear itself.
      out.truncated_tail = true;
      break;
    }
    const std::string_view payload = body.substr(pos + 12, len);
    if (fnv1a64(payload) != checksum) {
      // Bit rot (or an overwritten region): unlike a torn tail this is
      // not a clean crash artifact, so it is *counted*, and nothing
      // after it is trusted.
      ++out.checksum_errors;
      break;
    }
    JournalRecord rec;
    rec.type = static_cast<RecordType>(static_cast<std::uint8_t>(payload[0]));
    rec.payload.assign(payload.substr(1));
    out.records.push_back(std::move(rec));
    pos += 12 + len;
    out.valid_bytes = pos;
  }
  return out;
}

JournalReadResult read_journal_file(const std::string& path,
                                    std::span<const char, 8> magic) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw JournalError("cannot open journal file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();

  const std::size_t header = 8 + 4;
  if (bytes.size() < header)
    throw JournalError("journal file too short for its header: " + path);
  if (std::memcmp(bytes.data(), magic.data(), 8) != 0)
    throw JournalError("journal file has wrong magic: " + path);
  ByteReader version_reader(std::string_view(bytes).substr(8, 4));
  const std::uint32_t version = version_reader.u32();
  if (version != kJournalFormatVersion)
    throw JournalError("journal format version " + std::to_string(version) +
                       " != supported " +
                       std::to_string(kJournalFormatVersion) + ": " + path);

  JournalReadResult out =
      read_records(std::string_view(bytes).substr(header));
  out.valid_bytes += header;
  return out;
}

Journal::Journal(JournalOptions options) : opts_(std::move(options)) {
  CHAINNN_CHECK_MSG(!opts_.path.empty(), "journal needs a path");
  const int fd = ::open(opts_.path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
  if (fd < 0)
    throw JournalError("cannot open journal for writing: " + opts_.path +
                       " (" + std::strerror(errno) + ")");
  ByteWriter header;
  for (const char c : kJournalMagic) header.u8(static_cast<std::uint8_t>(c));
  header.u32(kJournalFormatVersion);
  const std::string& bytes = header.bytes();
  if (::write(fd, bytes.data(), bytes.size()) !=
      static_cast<ssize_t>(bytes.size())) {
    ::close(fd);
    throw JournalError("cannot write journal header: " + opts_.path);
  }
  MutexLock lock(mu_);
  fd_ = fd;
}

Journal::~Journal() {
  MutexLock lock(mu_);
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void Journal::append(std::string_view payload) {
  const std::string framed = frame_record(payload);
  MutexLock lock(mu_);
  CHAINNN_CHECK_MSG(fd_ >= 0, "journal already closed");
  // One write() per record: concurrent appends are serialized by mu_,
  // and a crash mid-write leaves at most one torn record at the tail —
  // exactly what read_records truncates.
  if (::write(fd_, framed.data(), framed.size()) !=
      static_cast<ssize_t>(framed.size()))
    throw JournalError("journal append failed: " + opts_.path + " (" +
                       std::strerror(errno) + ")");
  ++stats_.records_appended;
  stats_.bytes_appended += static_cast<std::int64_t>(framed.size());
  if (opts_.fsync_every_records > 0 &&
      ++since_fsync_ >= opts_.fsync_every_records) {
    ::fsync(fd_);
    since_fsync_ = 0;
    ++stats_.fsyncs;
  }
}

void Journal::sync() {
  MutexLock lock(mu_);
  if (fd_ < 0) return;
  ::fsync(fd_);
  since_fsync_ = 0;
  ++stats_.fsyncs;
}

JournalStats Journal::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace chainnn::serve
