// String formatting helpers shared by the report tables and examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace chainnn::strings {

// Fixed-decimal formatting, e.g. fmt_fixed(806.4, 1) -> "806.4".
[[nodiscard]] std::string fmt_fixed(double v, int decimals);

// Formats with SI-style suffix chosen by magnitude: 1.42 k, 3.75 M, ...
[[nodiscard]] std::string fmt_si(double v, int decimals);

// Human-readable byte count using binary units (KB = 1024 B, as the paper
// uses): "352.0KB", "24.5MB".
[[nodiscard]] std::string fmt_bytes(double bytes, int decimals);

// Percentage with a trailing '%': fmt_pct(0.998, 1) -> "99.8%".
[[nodiscard]] std::string fmt_pct(double fraction, int decimals);

// Joins `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               const std::string& sep);

// Left/right padding to a field width (spaces).
[[nodiscard]] std::string pad_left(const std::string& s, std::size_t width);
[[nodiscard]] std::string pad_right(const std::string& s, std::size_t width);

// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(const std::string& s,
                               const std::string& prefix);

}  // namespace chainnn::strings
